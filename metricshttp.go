package preemptdb

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
)

// Metrics export surface: the structured snapshot behind DB.Metrics, the
// Chrome trace export behind DB.TraceSnapshot, and the optional
// Config.MetricsAddr HTTP listener that serves both.

// Metrics returns a point-in-time snapshot of the per-phase latency
// decomposition: for each priority class, Summary percentiles for admission
// queue wait, execution, preempted pauses (per pause and per transaction),
// resume latency, group-commit WAL wait, and end-to-end latency — plus the
// uintr delivery latency from SendUIPI post to handler recognition. The
// snapshot JSON-serializes with stable field names. On a sharded database
// the per-shard histograms merge exactly (bucket counts sum), so percentiles
// are those of the combined sample population, never averages of per-shard
// percentiles.
func (db *DB) Metrics() metrics.RegistrySnapshot {
	regs := make([]*metrics.Registry, 0, len(db.shards)+1)
	for _, sh := range db.shards {
		regs = append(regs, sh.reg)
	}
	// The front-end registry carries the network edge's counters (conns shed,
	// open-connection gauge); counters sum and its empty histograms merge as
	// zeros, so including it never skews the latency percentiles.
	regs = append(regs, db.frontReg)
	return metrics.MergedSnapshot(regs)
}

// ShardMetrics returns shard si's own latency snapshot — the per-shard view
// behind the Metrics aggregate (hi-prio p99 per shard, etc.).
func (db *DB) ShardMetrics(si int) metrics.RegistrySnapshot {
	return db.shards[si].reg.Snapshot()
}

// NumShards reports the configured shard count.
func (db *DB) NumShards() int { return len(db.shards) }

// TraceSnapshot renders the per-core scheduling-event rings as a Chrome
// trace-event JSON document (loadable in ui.perfetto.dev or
// chrome://tracing). Safe to call while the database runs; events
// overwritten mid-snapshot are skipped, not torn. On a sharded database the
// shards' cores appear side by side, renumbered shard*Workers+core. Returns
// an error only when tracing is disabled (Config.TraceCapacity < 0).
func (db *DB) TraceSnapshot() ([]byte, error) {
	all, err := db.traceEvents()
	if err != nil {
		return nil, err
	}
	return pcontext.ChromeTrace(all)
}

// MetricsAddr returns the bound address of the Config.MetricsAddr HTTP
// listener, or nil when no listener is running. With "host:0" in the config
// this is how the chosen port is discovered.
func (db *DB) MetricsAddr() net.Addr {
	if db.mln == nil {
		return nil
	}
	return db.mln.Addr()
}

// startMetricsServer binds addr and serves the export endpoints until Close.
func (db *DB) startMetricsServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		db.Metrics().WritePrometheus(w)
		writePromCounters(w, db.Stats())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(db.Metrics())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		data, err := db.TraceSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	// /trace/txn?id=N exports one transaction's cross-shard span tree.
	mux.HandleFunc("/trace/txn", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "trace/txn: bad or missing id parameter", http.StatusBadRequest)
			return
		}
		data, err := db.TraceTxn(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	// /debug/sched is the live scheduler view: per-core queue depths and
	// seqlock-sampled slot tables (state, class, trace tag, starvation).
	mux.HandleFunc("/debug/sched", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(db.SchedState())
	})
	// /debug/flight serves the most recent SLO-breach flight-recorder bundle.
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		rec := db.LastFlightRecord()
		if rec == nil {
			http.Error(w, "no flight record captured (no SLO breach, or SLOs not configured)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(rec)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	db.mln, db.msrv = ln, srv
	go srv.Serve(ln)
	return nil
}

// stopMetricsServer tears the listener down; idempotent.
func (db *DB) stopMetricsServer() {
	if db.msrv != nil {
		db.msrv.Close()
		db.msrv, db.mln = nil, nil
	}
}

// writePromCounters renders the Stats counters as Prometheus counter/gauge
// families alongside the latency summaries.
func writePromCounters(w http.ResponseWriter, st Stats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP preemptdb_%s %s\n# TYPE preemptdb_%s counter\npreemptdb_%s %d\n",
			name, help, name, name, v)
	}
	counter("commits_total", "Committed transactions.", st.Commits)
	counter("aborts_total", "Aborted transactions.", st.Aborts)
	counter("interrupts_sent_total", "User interrupts issued by the scheduler.", st.InterruptsSent)
	counter("passive_switches_total", "Interrupt-driven context switches.", st.PassiveSwitches)
	counter("active_switches_total", "Voluntary context switches.", st.ActiveSwitches)
	counter("starvation_skips_total", "Dispatches withheld by starvation prevention.", st.StarvationSkips)
	counter("log_bytes_total", "Framed WAL bytes written.", st.LogBytes)
	counter("log_batches_total", "Group-commit batches written.", st.LogBatches)
	counter("morsels_stolen_total", "Parallel-scan morsels run by idle workers.", st.MorselsStolen)
	walFailed := 0
	if st.WALFailed {
		walFailed = 1
	}
	fmt.Fprintf(w, "# HELP preemptdb_wal_failed Whether the WAL has latched a permanent failure.\n# TYPE preemptdb_wal_failed gauge\npreemptdb_wal_failed %d\n", walFailed)
}
