// Package-level benchmarks: one testing.B entry per figure in the paper's
// evaluation (§6). Each benchmark iteration executes the complete experiment
// at a shortened measurement window and reports its headline numbers as
// custom metrics, so `go test -bench=. -benchmem` regenerates every figure.
//
// cmd/preemptbench runs the same experiments at full duration with printed
// tables; EXPERIMENTS.md records paper-vs-measured for each.
package preemptdb_test

import (
	"io"
	"testing"
	"time"

	"preemptdb/internal/bench"
)

// benchOptions shortens the measurement window so the full suite completes
// in minutes; shapes are stable well below the paper's 30 s windows.
func benchOptions(b *testing.B) bench.Options {
	return bench.Options{
		Duration: 1200 * time.Millisecond,
		Out:      io.Discard,
	}
}

// BenchmarkUintrDeliveryLatency reproduces §6.1's measurement that user
// interrupt delivery is sub-microsecond between two threads.
func BenchmarkUintrDeliveryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.UintrLatency(benchOptions(b), 20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanNanos, "delivery-ns")
	}
}

// BenchmarkContextSwitch measures §4.2's lightweight transaction context
// switch (one SwapContext round trip = two switches).
func BenchmarkContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.ContextSwitch(benchOptions(b), 200000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MeanRoundTrip.Nanoseconds()), "roundtrip-ns")
	}
}

// BenchmarkFig1SchedulingLatency reproduces Figure 1 (right): scheduling
// latency of high-priority transactions under Wait/Yield/Preempt.
func BenchmarkFig1SchedulingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := bench.Fig1(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rs[0].NewOrderSched.P99), "wait-p99-ns")
		b.ReportMetric(float64(rs[1].NewOrderSched.P99), "coop-p99-ns")
		b.ReportMetric(float64(rs[2].NewOrderSched.P99), "preempt-p99-ns")
	}
}

// BenchmarkFig8Overhead reproduces Figure 8: standard TPC-C throughput with
// and without the user-interrupt machinery (paper: ~1.7% slowdown).
func BenchmarkFig8Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig8(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BaselineTPS, "baseline-tps")
		b.ReportMetric(res.WithUintrTPS, "uintr-tps")
		b.ReportMetric(res.OverheadPct, "overhead-%")
	}
}

// BenchmarkFig9Scalability reproduces Figure 9: mixed-workload throughput
// across worker counts and policies.
func BenchmarkFig9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig9(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1].Result // largest worker count, PreemptDB
		b.ReportMetric(last.NewOrderTPS, "preempt-neworder-tps")
		b.ReportMetric(last.Q2TPS, "preempt-q2-tps")
	}
}

// BenchmarkFig10Latency reproduces Figure 10: end-to-end latency of NewOrder
// (top) and Q2 (bottom); PreemptDB cuts NewOrder tails 88–96% vs Wait while
// preserving Q2.
func BenchmarkFig10Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := bench.Fig10(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rs[0].NewOrder.P99), "wait-neworder-p99-ns")
		b.ReportMetric(float64(rs[2].NewOrder.P99), "preempt-neworder-p99-ns")
		b.ReportMetric(float64(rs[0].Q2.P99), "wait-q2-p99-ns")
		b.ReportMetric(float64(rs[2].Q2.P99), "preempt-q2-p99-ns")
	}
}

// BenchmarkFig11YieldInterval reproduces Figure 11: the cooperative yield
// interval sweep plus handcrafted cooperative and PreemptDB references.
func BenchmarkFig11YieldInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig11(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		finest, coarsest := pts[0].Result, pts[len(pts)-3].Result
		preempt := pts[len(pts)-1].Result
		b.ReportMetric(float64(finest.NewOrder.P99), "coop-finest-neworder-p99-ns")
		b.ReportMetric(float64(coarsest.NewOrder.P99), "coop-coarsest-neworder-p99-ns")
		b.ReportMetric(float64(preempt.NewOrder.P99), "preempt-neworder-p99-ns")
	}
}

// BenchmarkFig12Starvation reproduces Figure 12: Q2 throughput and NewOrder
// p99 across starvation thresholds under overload.
func BenchmarkFig12Starvation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig12(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Result.Q2TPS, "wait-q2-tps")
		b.ReportMetric(pts[1].Result.Q2TPS, "thr0-q2-tps")
		b.ReportMetric(pts[len(pts)-1].Result.Q2TPS, "throff-q2-tps")
	}
}

// BenchmarkFig13ArrivalInterval reproduces Figure 13: geomean latency vs
// arrival interval for all policies.
func BenchmarkFig13ArrivalInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := bench.Fig13(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		wait := m["Wait"]
		preempt := m["PreemptDB"]
		// Lightest load = largest interval (last point).
		b.ReportMetric(wait[len(wait)-1].Result.NewOrder.Geomean, "wait-light-geomean-ns")
		b.ReportMetric(preempt[len(preempt)-1].Result.NewOrder.Geomean, "preempt-light-geomean-ns")
	}
}
