package preemptdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"preemptdb/internal/dtx"
)

func openShardedMem(t *testing.T, shards int) *DB {
	t.Helper()
	db, err := Open("", Config{Shards: shards, Workers: 2, SyncEachCommit: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.CreateTable("kv")
	return db
}

func shardKey(t *testing.T, db *DB, i int) []byte {
	t.Helper()
	return []byte(fmt.Sprintf("k-%04d", i))
}

func TestShardRoutingAndPointOps(t *testing.T) {
	db := openShardedMem(t, 4)
	const n = 200
	for i := 0; i < n; i++ {
		k := shardKey(t, db, i)
		if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", k, k) }); err != nil {
			t.Fatalf("insert %s: %v", k, err)
		}
	}
	// Keys actually spread across shards.
	populated := 0
	for si, sh := range db.shards {
		tab, err := sh.eng.Table("kv")
		if err != nil {
			t.Fatal(err)
		}
		cnt := 0
		tx := sh.eng.Begin(nil)
		tx.Scan(tab, nil, nil, func(k, v []byte) bool { cnt++; return true })
		tx.Abort()
		if cnt > 0 {
			populated++
		}
		_ = si
	}
	if populated < 2 {
		t.Fatalf("hash routing left %d of 4 shards populated", populated)
	}
	// Every key readable back through the facade, updated, deleted.
	for i := 0; i < n; i++ {
		k := shardKey(t, db, i)
		if err := db.Exec(High, func(tx *Txn) error {
			v, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			if !bytes.Equal(v, k) {
				return fmt.Errorf("got %q want %q", v, k)
			}
			return tx.Update("kv", k, append(v, '!'))
		}); err != nil {
			t.Fatalf("get/update %s: %v", k, err)
		}
	}
	if err := db.Run(func(tx *Txn) error { return tx.Delete("kv", shardKey(t, db, 0)) }); err != nil {
		t.Fatal(err)
	}
	err := db.Run(func(tx *Txn) error {
		_, err := tx.Get("kv", shardKey(t, db, 0))
		return err
	})
	if !IsNotFound(err) {
		t.Fatalf("deleted key still visible: %v", err)
	}
}

func TestShardScanMergesGlobalOrder(t *testing.T) {
	db := openShardedMem(t, 3)
	const n = 300
	for i := 0; i < n; i++ {
		k := shardKey(t, db, i)
		if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", k, k) }); err != nil {
			t.Fatal(err)
		}
	}
	check := func(desc bool, from, to []byte, wantFirst, wantCount int) {
		t.Helper()
		var keys [][]byte
		scan := func(tx *Txn) error {
			collect := func(k, v []byte) bool {
				keys = append(keys, append([]byte(nil), k...))
				return true
			}
			if desc {
				return tx.ScanDesc("kv", from, to, collect)
			}
			return tx.Scan("kv", from, to, collect)
		}
		if err := db.Run(scan); err != nil {
			t.Fatal(err)
		}
		if len(keys) != wantCount {
			t.Fatalf("desc=%v: got %d rows want %d", desc, len(keys), wantCount)
		}
		for i := 1; i < len(keys); i++ {
			c := bytes.Compare(keys[i-1], keys[i])
			if (desc && c <= 0) || (!desc && c >= 0) {
				t.Fatalf("desc=%v: order violated at %d: %q vs %q", desc, i, keys[i-1], keys[i])
			}
		}
		if wantCount > 0 && !bytes.Equal(keys[0], shardKey(t, db, wantFirst)) {
			t.Fatalf("desc=%v: first key %q want %q", desc, keys[0], shardKey(t, db, wantFirst))
		}
	}
	check(false, nil, nil, 0, n)
	check(true, nil, nil, n-1, n)
	check(false, shardKey(t, db, 10), shardKey(t, db, 20), 10, 10)
	check(true, shardKey(t, db, 10), shardKey(t, db, 20), 19, 10)
}

func TestShardScanIndexMerge(t *testing.T) {
	cfg := Config{Shards: 3, Workers: 2, Schema: func(db *DB) error {
		db.CreateTable("kv")
		// Index by the value's first byte: non-unique across and within shards.
		return db.CreateIndex("kv", "by_val", func(key, row []byte) []byte { return row[:1] })
	}}
	db, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 120
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("k-%04d", i))
		v := []byte{byte('a' + i%4), byte(i)}
		if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", k, v) }); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	count := 0
	if err := db.Run(func(tx *Txn) error {
		return tx.ScanIndex("kv", "by_val", nil, nil, func(k, v []byte) bool {
			got = append(got, k[0])
			count++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("index scan saw %d rows, want %d", count, n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("index keys out of order at %d: %c > %c", i, got[i-1], got[i])
		}
	}
	count = 0
	last := byte(0xff)
	if err := db.Run(func(tx *Txn) error {
		return tx.ScanIndexDesc("kv", "by_val", nil, nil, func(k, v []byte) bool {
			if k[0] > last {
				t.Fatalf("desc index keys out of order: %c after %c", k[0], last)
			}
			last = k[0]
			count++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("desc index scan saw %d rows, want %d", count, n)
	}
}

// crossPair returns two keys guaranteed to hash to different shards.
func crossPair(nShards int) (a, b []byte) {
	a = []byte("acct-0000")
	for i := 1; ; i++ {
		b = []byte(fmt.Sprintf("acct-%04d", i))
		if dtx.ShardOf(b, nShards) != dtx.ShardOf(a, nShards) {
			return a, b
		}
	}
}

func TestCrossShardCommitAtomic(t *testing.T) {
	db := openShardedMem(t, 4)
	a, b := crossPair(4)
	put := func(k []byte, v byte) {
		if err := db.Run(func(tx *Txn) error { return tx.Put("kv", k, []byte{v}) }); err != nil {
			t.Fatal(err)
		}
	}
	put(a, 100)
	put(b, 100)
	// Transfer: both writes land or neither.
	transfer := func(amount byte) error {
		return db.Run(func(tx *Txn) error {
			av, err := tx.Get("kv", a)
			if err != nil {
				return err
			}
			bv, err := tx.Get("kv", b)
			if err != nil {
				return err
			}
			if err := tx.Put("kv", a, []byte{av[0] - amount}); err != nil {
				return err
			}
			return tx.Put("kv", b, []byte{bv[0] + amount})
		})
	}
	if err := transfer(30); err != nil {
		t.Fatal(err)
	}
	var sum int
	read := func() {
		sum = 0
		if err := db.Run(func(tx *Txn) error {
			for _, k := range [][]byte{a, b} {
				v, err := tx.Get("kv", k)
				if err != nil {
					return err
				}
				sum += int(v[0])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	read()
	if sum != 200 {
		t.Fatalf("sum after transfer = %d, want 200", sum)
	}
	// A failing transaction body publishes nothing on any shard.
	wantErr := fmt.Errorf("boom")
	err := db.Run(func(tx *Txn) error {
		if err := tx.Put("kv", a, []byte{0}); err != nil {
			return err
		}
		if err := tx.Put("kv", b, []byte{0}); err != nil {
			return err
		}
		return wantErr
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	read()
	if sum != 200 {
		t.Fatalf("sum after aborted transfer = %d, want 200", sum)
	}
}

func TestCrossShardConcurrentTransfers(t *testing.T) {
	db := openShardedMem(t, 4)
	const accounts = 16
	const initial = 1000
	keys := make([][]byte, accounts)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("acct-%04d", i))
		k := keys[i]
		if err := db.Run(func(tx *Txn) error {
			var v [8]byte
			putUint(v[:], initial)
			return tx.Put("kv", k, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				from := keys[(g*13+i)%accounts]
				to := keys[(g*7+i*3+1)%accounts]
				if bytes.Equal(from, to) {
					continue
				}
				err := db.Exec(Low, func(tx *Txn) error {
					fv, err := tx.Get("kv", from)
					if err != nil {
						return err
					}
					tv, err := tx.Get("kv", to)
					if err != nil {
						return err
					}
					var a, b [8]byte
					putUint(a[:], getUint(fv)-1)
					putUint(b[:], getUint(tv)+1)
					if err := tx.Put("kv", from, a[:]); err != nil {
						return err
					}
					return tx.Put("kv", to, b[:])
				})
				if err != nil && !IsConflict(err) {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	if err := db.Run(func(tx *Txn) error {
		for _, k := range keys {
			v, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			total += getUint(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money created/destroyed by non-atomic cross-shard commit)", total, accounts*initial)
	}
}

func putUint(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getUint(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestShardStatsAggregation(t *testing.T) {
	db := openShardedMem(t, 4)
	// Directed single-shard commits: RouteKey pins the scheduler AND the only
	// key touched, so each commit lands wholly on one shard.
	const perKey = 25
	keys := [][]byte{[]byte("stat-a"), []byte("stat-b"), []byte("stat-c"), []byte("stat-d")}
	for _, k := range keys {
		for i := 0; i < perKey; i++ {
			k := k
			if err := db.ExecOpts(TxnOptions{RouteKey: k}, func(tx *Txn) error {
				return tx.Put("kv", k, []byte{byte(i)})
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	per := db.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries, want 4", len(per))
	}
	agg := db.Stats()
	var sum Stats
	for _, st := range per {
		sum.add(st)
	}
	if sum.Commits != agg.Commits {
		t.Fatalf("aggregate commits %d != per-shard sum %d", agg.Commits, sum.Commits)
	}
	if agg.Commits < uint64(perKey*len(keys)) {
		t.Fatalf("aggregate commits %d < %d submitted", agg.Commits, perKey*len(keys))
	}
	totalAborts := sum.AbortsConflict + sum.AbortsDeadline + sum.AbortsCanceled +
		sum.AbortsQueueFull + sum.AbortsWALFailed + sum.AbortsOther
	aggAborts := agg.AbortsConflict + agg.AbortsDeadline + agg.AbortsCanceled +
		agg.AbortsQueueFull + agg.AbortsWALFailed + agg.AbortsOther
	if totalAborts != aggAborts {
		t.Fatalf("per-reason abort sums disagree: shards %d vs aggregate %d", totalAborts, aggAborts)
	}
	// Each routed key's shard saw its commits: at least one shard has >= perKey.
	spread := 0
	for _, st := range per {
		if st.Commits >= perKey {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("no shard recorded the routed commits")
	}
	// Merged metrics count at least the committed requests' total-phase samples.
	m := db.Metrics()
	var perPhase uint64
	for i := range db.shards {
		perPhase += db.ShardMetrics(i).Lo.Total.Count
	}
	if m.Lo.Total.Count != perPhase {
		t.Fatalf("merged lo total count %d != per-shard sum %d", m.Lo.Total.Count, perPhase)
	}
}

func TestShardDurabilityReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 3, Workers: 2, SyncEachCommit: true,
		Schema: func(db *DB) error { db.CreateTable("kv"); return nil },
	}
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("k-%04d", i))
		if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", k, k) }); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-shard transfer survives too.
	a, b := crossPair(3)
	if err := db.Run(func(tx *Txn) error {
		if err := tx.Put("kv", a, []byte("A")); err != nil {
			return err
		}
		return tx.Put("kv", b, []byte("B"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckpointDisk(); err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+20; i++ {
		k := []byte(fmt.Sprintf("k-%04d", i))
		if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", k, k) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Per-shard directory layout on disk.
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", i))); err != nil {
			t.Fatalf("shard dir missing: %v", err)
		}
	}
	db2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n+20; i++ {
		k := []byte(fmt.Sprintf("k-%04d", i))
		if err := db2.Run(func(tx *Txn) error {
			v, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			if !bytes.Equal(v, k) {
				return fmt.Errorf("key %q: got %q", k, v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range map[string]string{string(a): "A", string(b): "B"} {
		k, want := []byte(k), []byte(want)
		if err := db2.Run(func(tx *Txn) error {
			v, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			if !bytes.Equal(v, want) {
				return fmt.Errorf("key %q: got %q want %q", k, v, want)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSingleShardLayoutUnchanged(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, SyncEachCommit: true,
		Schema: func(db *DB) error { db.CreateTable("kv"); return nil },
	}
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", []byte("k"), []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Flat layout: WAL segments in the root, no shard-0 subdirectory, and no
	// 2PC decision table in the schema.
	if _, err := os.Stat(filepath.Join(dir, "shard-0")); !os.IsNotExist(err) {
		t.Fatalf("single-shard open created shard-0 dir (err=%v)", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".log" {
			found = true
		}
	}
	if !found {
		t.Fatal("no WAL segment in the root directory")
	}
	db2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.shards[0].eng.Table(dtx.DecisionTable); err == nil {
		t.Fatal("single-shard database grew a 2PC decision table")
	}
}

func TestShardParallelScan(t *testing.T) {
	db := openShardedMem(t, 3)
	const n = 500
	for i := 0; i < n; i++ {
		k := shardKey(t, db, i)
		if err := db.Run(func(tx *Txn) error { return tx.Insert("kv", k, k) }); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seen := make(map[string]bool)
	if err := db.Exec(Low, func(tx *Txn) error {
		return tx.ParallelScan("kv", nil, nil, 4, func(k, v []byte) bool {
			mu.Lock()
			seen[string(k)] = true
			mu.Unlock()
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("parallel scan visited %d distinct keys, want %d", len(seen), n)
	}
}

func TestShardsConfigValidation(t *testing.T) {
	if _, err := Open("", Config{Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := Open("", Config{Shards: maxShards + 1}); err == nil {
		t.Fatal("oversized Shards accepted")
	}
	db, err := Open("", Config{Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumShards() != 1 {
		t.Fatalf("Shards=0 gave %d shards, want 1", db.NumShards())
	}
	db.Close()
}
