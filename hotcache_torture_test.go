package preemptdb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Cache-coherence torture: concurrent read-modify-write writers, cross-shard
// transfer transactions (2PC when Shards > 1), deadline expiries, and
// submitter cancels, against readers that assert linearizability of the
// hot-key cache — per-key counters observed through transactions and through
// CachedGet must never go backwards, snapshot sums must hold exactly, and
// the final state must equal the committed-increment accounting.

func TestCacheCoherenceTorture(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) { cacheTorture(t, shards) })
	}
}

func cacheTorture(t *testing.T, shards int) {
	db, err := Open("", Config{Shards: shards, Workers: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.CreateTable("kv")

	// Counter keys: single-key increments, per-key success accounting.
	const nkeys = 8
	keys := make([][]byte, nkeys)
	var committed [nkeys]atomic.Uint64
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ctr-%04d", i))
		k := keys[i]
		if err := db.Run(func(tx *Txn) error {
			var v [8]byte
			return tx.Put("kv", k, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Account keys: cross-shard transfers preserving the total.
	const naccts, initial = 8, 1000
	accts := make([][]byte, naccts)
	for i := range accts {
		accts[i] = []byte(fmt.Sprintf("acct-%04d", i))
		k := accts[i]
		if err := db.Run(func(tx *Txn) error {
			var v [8]byte
			putUint(v[:], initial)
			return tx.Put("kv", k, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}

	tolerable := func(err error) bool {
		return IsConflict(err) || IsDeadlineExceeded(err) || IsCanceled(err) || errors.Is(err, ErrQueueFull)
	}
	inc := func(k []byte) func(tx *Txn) error {
		return func(tx *Txn) error {
			v, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			var nv [8]byte
			putUint(nv[:], getUint(v)+1)
			return tx.Put("kv", k, nv[:])
		}
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup

	// Increment writers: mostly plain commits, with a sprinkling of tight
	// deadlines (expire mid-flight) and submit-then-cancel — both must close
	// the cache's write window on their abort paths.
	const incIters = 250
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < incIters; i++ {
				ki := (w*5 + i) % nkeys
				k := keys[ki]
				switch i % 9 {
				case 3:
					opts := TxnOptions{Timeout: time.Duration(1+i%40) * time.Microsecond}
					if err := db.ExecOpts(opts, inc(k)); err == nil {
						committed[ki].Add(1)
					} else if !tolerable(err) {
						t.Errorf("deadline writer: %v", err)
						return
					}
				case 6:
					p, err := db.SubmitOpts(TxnOptions{}, inc(k))
					if err != nil {
						if !tolerable(err) {
							t.Errorf("submit: %v", err)
							return
						}
						continue
					}
					p.Cancel()
					if err := p.Wait(); err == nil {
						committed[ki].Add(1) // raced past the cancel: it committed
					} else if !tolerable(err) {
						t.Errorf("canceled writer: %v", err)
						return
					}
				default:
					if err := db.Exec(Low, inc(k)); err == nil {
						committed[ki].Add(1)
					} else if !tolerable(err) {
						t.Errorf("writer: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Transfer writers: two-key transactions that cross shard boundaries
	// (2PC prepare/resolve with the cache's in-doubt write windows).
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < incIters; i++ {
				from := accts[(g*13+i)%naccts]
				to := accts[(g*7+i*3+1)%naccts]
				if string(from) == string(to) {
					continue
				}
				err := db.Exec(Low, func(tx *Txn) error {
					fv, err := tx.Get("kv", from)
					if err != nil {
						return err
					}
					tv, err := tx.Get("kv", to)
					if err != nil {
						return err
					}
					var a, b [8]byte
					putUint(a[:], getUint(fv)-1)
					putUint(b[:], getUint(tv)+1)
					if err := tx.Put("kv", from, a[:]); err != nil {
						return err
					}
					return tx.Put("kv", to, b[:])
				})
				if err != nil && !tolerable(err) {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(g)
	}

	// Monotonic readers: per reader, a key's counter observed through a
	// transaction or through CachedGet must never decrease — a stale cache
	// hit is exactly a decrease.
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			var last [nkeys]uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ki := (r*3 + i) % nkeys
				k := keys[ki]
				var v uint64
				if err := db.Run(func(tx *Txn) error {
					b, err := tx.Get("kv", k)
					if err != nil {
						return err
					}
					v = getUint(b)
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if v < last[ki] {
					t.Errorf("stale transactional read: key %d went %d -> %d", ki, last[ki], v)
					return
				}
				last[ki] = v
				if c, ok := db.CachedGet("kv", k); ok {
					cv := getUint(c)
					if cv < last[ki] {
						t.Errorf("stale cache hit: key %d cached %d after observing %d", ki, cv, last[ki])
						return
					}
					last[ki] = cv
				}
			}
		}(r)
	}

	// Snapshot-sum readers: the account total must hold exactly in every
	// snapshot, single- and multi-shard alike. Across shards that exactness
	// rests on the cross-shard resolution gate — a 2PC transfer publishes all
	// its participants inside one critical section of the gate, and a
	// multi-shard reader whose lazily-established per-shard snapshots
	// straddle a resolution fails with a retryable conflict instead of
	// observing the transfer on one shard but not the other.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var total uint64
				if err := db.Run(func(tx *Txn) error {
					total = 0
					for _, k := range accts {
						v, err := tx.Get("kv", k)
						if err != nil {
							return err
						}
						total += getUint(v)
					}
					return nil
				}); err != nil {
					t.Errorf("sum reader: %v", err)
					return
				}
				if total != naccts*initial {
					t.Errorf("snapshot sum = %d, want %d (torn or stale read)", total, naccts*initial)
					return
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	// Final accounting: every successful increment is visible, nothing extra.
	for ki, k := range keys {
		var v uint64
		if err := db.Run(func(tx *Txn) error {
			b, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			v = getUint(b)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if want := committed[ki].Load(); v != want {
			t.Errorf("key %d: final = %d, committed = %d", ki, v, want)
		}
	}
	// Quiesced account total: transfers conserved money through the cache's
	// 2PC invalidation windows.
	var total uint64
	if err := db.Run(func(tx *Txn) error {
		total = 0
		for _, k := range accts {
			v, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			total += getUint(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != naccts*initial {
		t.Errorf("final account total = %d, want %d", total, naccts*initial)
	}
	st := db.Stats()
	if st.CacheHits == 0 {
		t.Error("torture finished without a single cache hit")
	}
	if st.CacheInvalidations == 0 {
		t.Error("torture finished without a single invalidation")
	}
}

// TestCacheCrossShardInvalidation: a deterministic 2PC check — a cross-shard
// transaction invalidates cached entries on every participant shard at its
// commit point, and post-resolve reads refill with the new values.
func TestCacheCrossShardInvalidation(t *testing.T) {
	db, err := Open("", Config{Shards: 4, Workers: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.CreateTable("kv")
	a, b := []byte("acct-a"), []byte("acct-b")
	for _, k := range [][]byte{a, b} {
		k := k
		if err := db.Run(func(tx *Txn) error {
			var v [8]byte
			putUint(v[:], 100)
			return tx.Put("kv", k, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	readKey := func(k []byte) uint64 {
		t.Helper()
		var v uint64
		if err := db.Run(func(tx *Txn) error {
			b, err := tx.Get("kv", k)
			if err != nil {
				return err
			}
			v = getUint(b)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Fill the cache on both shards, then hit it once more.
	for i := 0; i < 2; i++ {
		if readKey(a) != 100 || readKey(b) != 100 {
			t.Fatal("seed values wrong")
		}
	}
	if db.Stats().CacheHits == 0 {
		t.Fatal("warm-up reads never hit the cache")
	}

	// Cross-shard transfer: 2PC with prepare/resolve on both shards.
	if err := db.Run(func(tx *Txn) error {
		var av, bv [8]byte
		putUint(av[:], 70)
		putUint(bv[:], 130)
		if err := tx.Put("kv", a, av[:]); err != nil {
			return err
		}
		return tx.Put("kv", b, bv[:])
	}); err != nil {
		t.Fatal(err)
	}
	if got := readKey(a); got != 70 {
		t.Fatalf("a after cross-shard commit = %d, want 70 (stale cache)", got)
	}
	if got := readKey(b); got != 130 {
		t.Fatalf("b after cross-shard commit = %d, want 130 (stale cache)", got)
	}
	// And the refilled entries serve the new values.
	if got := readKey(a); got != 70 {
		t.Fatalf("a refilled = %d, want 70", got)
	}
	if c, ok := db.CachedGet("kv", b); ok && getUint(c) != 130 {
		t.Fatalf("cached b = %d, want 130", getUint(c))
	}
}
