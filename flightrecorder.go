package preemptdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
)

// SLO-triggered flight recorder: when a transaction's end-to-end latency
// breaches its class target (Config.SLOHigh/SLOLow), the breach detector —
// one atomic compare on the metrics recording path — wakes a recorder
// goroutine that captures a diagnosis bundle of everything a tail-latency
// investigation needs: the scheduling-trace rings around the breach, every
// core's slot table, queue depths, starvation levels, in-flight 2PC
// transactions, and the full latency/counter snapshot. Captures are spaced by
// Config.SLOCooldown so a storm produces one bundle, not thousands.

// sloBreach is the hot-path → recorder notification. It carries only what
// the recording site knows; the recorder captures everything else itself.
type sloBreach struct {
	class metrics.Class
	lat   int64
}

// ShardPrepared lists one shard's in-doubt 2PC transactions (prepared,
// unresolved) at capture time.
type ShardPrepared struct {
	Shard int      `json:"shard"`
	GIDs  []uint64 `json:"gids"`
}

// FlightRecord is the diagnosis bundle the flight recorder captures on an
// SLO breach. It JSON-serializes with stable field names; the /debug/flight
// endpoint and Config.FlightRecorderDir files carry exactly this shape.
type FlightRecord struct {
	// Time is the capture instant; Class/LatencyNanos/SLONanos identify the
	// breach that triggered it (the transaction's class, its observed
	// end-to-end latency, and the target it missed).
	Time         time.Time `json:"time"`
	Class        string    `json:"class"`
	LatencyNanos int64     `json:"latency_nanos"`
	SLONanos     int64     `json:"slo_nanos"`
	// BreachesHi/BreachesLo count SLO breaches per class since Open
	// (including ones the cooldown suppressed).
	BreachesHi uint64 `json:"breaches_hi"`
	BreachesLo uint64 `json:"breaches_lo"`
	// Stats and Metrics are the full counter and latency snapshots at capture.
	Stats   Stats                    `json:"stats"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
	// Sched is the live scheduler view: per-core queue depths and
	// seqlock-sampled slot tables with starvation levels.
	Sched SchedDebug `json:"sched"`
	// InFlight2PC lists prepared-but-unresolved cross-shard transactions per
	// shard (empty entries omitted).
	InFlight2PC []ShardPrepared `json:"in_flight_2pc,omitempty"`
	// Trace is the raw per-core scheduling-event rings at capture — the
	// events surrounding the breach, exportable per transaction with
	// pcontext.ChromeTraceTxn. Nil when tracing is disabled.
	Trace []pcontext.CoreEvents `json:"trace,omitempty"`
}

// startFlightRecorder wires the breach detector and starts the recorder
// goroutine. No-op unless an SLO target is configured.
func (db *DB) startFlightRecorder() {
	cfg := db.cfg
	if cfg.SLOHigh <= 0 && cfg.SLOLow <= 0 {
		return
	}
	db.frCh = make(chan sloBreach, 1)
	hook := func(c metrics.Class, lat int64) {
		// Non-blocking: the hook runs on the transaction's worker inside the
		// latency-recording path. A full channel means a capture is already
		// pending; the per-class breach counters still record this one.
		select {
		case db.frCh <- sloBreach{class: c, lat: lat}:
		default:
		}
	}
	for _, sh := range db.shards {
		if cfg.SLOHigh > 0 {
			sh.reg.SetSLO(metrics.ClassHi, int64(cfg.SLOHigh))
		}
		if cfg.SLOLow > 0 {
			sh.reg.SetSLO(metrics.ClassLo, int64(cfg.SLOLow))
		}
		sh.reg.SetBreachHook(hook)
	}
	db.frStop = make(chan struct{})
	db.frWG.Add(1)
	go db.flightRecorderLoop()
}

// stopFlightRecorder detaches the hooks and stops the recorder; idempotent.
func (db *DB) stopFlightRecorder() {
	if db.frStop == nil {
		return
	}
	for _, sh := range db.shards {
		sh.reg.SetBreachHook(nil)
	}
	close(db.frStop)
	db.frWG.Wait()
	db.frStop = nil
}

func (db *DB) flightRecorderLoop() {
	defer db.frWG.Done()
	cooldown := db.cfg.SLOCooldown
	if cooldown <= 0 {
		cooldown = time.Second
	}
	var last time.Time
	for {
		select {
		case <-db.frStop:
			return
		case b := <-db.frCh:
			now := time.Now()
			if !last.IsZero() && now.Sub(last) < cooldown {
				continue
			}
			last = now
			rec := db.captureFlightRecord(b)
			db.lastFlight.Store(rec)
			if dir := db.cfg.FlightRecorderDir; dir != "" {
				db.writeFlightRecord(dir, rec)
			}
		}
	}
}

// captureFlightRecord assembles the bundle. Everything it reads is a
// concurrent-safe snapshot (atomic counters, histogram snapshots, seqlock
// slot tables, trace-ring copies), so the capture runs while the database
// serves traffic.
func (db *DB) captureFlightRecord(b sloBreach) *FlightRecord {
	var slo int64
	if len(db.shards) > 0 {
		slo = db.shards[0].reg.SLO(b.class)
	}
	rec := &FlightRecord{
		Time:         time.Now(),
		Class:        b.class.String(),
		LatencyNanos: b.lat,
		SLONanos:     slo,
		Stats:        db.Stats(),
		Metrics:      db.Metrics(),
		Sched:        db.SchedState(),
	}
	rec.BreachesHi = rec.Metrics.SLOBreachesHi
	rec.BreachesLo = rec.Metrics.SLOBreachesLo
	for si, sh := range db.shards {
		if gids := sh.eng.PreparedGIDs(); len(gids) > 0 {
			rec.InFlight2PC = append(rec.InFlight2PC, ShardPrepared{Shard: si, GIDs: gids})
		}
	}
	if cores, err := db.traceEvents(); err == nil {
		rec.Trace = cores
	}
	return rec
}

// writeFlightRecord persists rec as an indented JSON file under dir
// (created if missing). Failures are reported on stderr, never propagated —
// the recorder must not take the database down.
func (db *DB) writeFlightRecord(dir string, rec *FlightRecord) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "preemptdb: flight recorder: %v\n", err)
		return
	}
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "preemptdb: flight recorder: %v\n", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%d.json", rec.Time.UnixNano()))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "preemptdb: flight recorder: %v\n", err)
	}
}

// LastFlightRecord returns the most recent flight-recorder bundle, or nil
// when no SLO breach has been captured (or no SLO is configured). The record
// is immutable once published; callers may hold it indefinitely.
func (db *DB) LastFlightRecord() *FlightRecord {
	return db.lastFlight.Load()
}

// SLOBreaches reports cumulative SLO breach counts (hi, lo) across shards,
// including breaches within the capture cooldown.
func (db *DB) SLOBreaches() (hi, lo uint64) {
	for _, sh := range db.shards {
		hi += sh.reg.SLOBreaches(metrics.ClassHi)
		lo += sh.reg.SLOBreaches(metrics.ClassLo)
	}
	return hi, lo
}
