package server

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"preemptdb"
)

// startRawServer starts a server and returns its address plus the DB, for
// tests that speak the wire protocol byte-by-byte. configure (optional) runs
// before the listener opens.
func startRawServer(t *testing.T, configure func(*Server)) (string, *preemptdb.DB) {
	t.Helper()
	db, err := preemptdb.Open("", preemptdb.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	srv.Logf = t.Logf
	if configure != nil {
		configure(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr.String(), db
}

func mustDialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// roundTripRaw writes one framed payload and decodes the response frame.
func roundTripRaw(t *testing.T, conn net.Conn, payload []byte) (uint8, string) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrame(conn, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	status, msg, _, err := decodeResults(resp)
	if err != nil {
		t.Fatalf("decodeResults: %v", err)
	}
	return status, msg
}

// TestMalformedPayloadsGetTypedErrorFrame feeds well-framed but malformed
// payloads and requires (a) a typed statusError response for each, and (b)
// that the connection stays usable — verified by a successful ping between
// cases on the same connection.
func TestMalformedPayloadsGetTypedErrorFrame(t *testing.T) {
	addr, _ := startRawServer(t, nil)
	conn := mustDialRaw(t, addr)

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty payload", nil},
		{"unknown request kind", []byte{99}},
		{"txn with no body", []byte{reqTxn}},
		{"txn priority only", []byte{reqTxn, 1}},
		{"txn truncated mid-op", append([]byte{reqTxn, 0}, binary.AppendUvarint(nil, 3)...)},
		{"txn oversized op count", append([]byte{reqTxn, 0}, binary.AppendUvarint(nil, 1<<20)...)},
		{"create table with no name", []byte{reqCreateTable}},
		{"create index unsupported", []byte{reqCreateIndex, 1, 2, 3}},
		{"deadline txn with no timeout", []byte{reqTxnDeadline}},
		{"deadline txn truncated after timeout", binary.AppendUvarint([]byte{reqTxnDeadline}, 500)},
	}
	for _, tc := range cases {
		status, msg := roundTripRaw(t, conn, tc.payload)
		if status != statusError {
			t.Errorf("%s: status = %d (%q), want statusError", tc.name, status, msg)
		}
		if msg == "" {
			t.Errorf("%s: error frame carries no message", tc.name)
		}
		// The connection must survive the malformed request.
		if status, msg := roundTripRaw(t, conn, []byte{reqPing}); status != statusOK || msg != "pong" {
			t.Fatalf("%s: connection unusable after malformed payload: %d %q", tc.name, status, msg)
		}
	}
}

// TestRandomPayloadsNeverWedgeConnection sends pseudo-random well-framed
// payloads; every one must produce exactly one response frame (valid or
// typed error) with the connection intact throughout.
func TestRandomPayloadsNeverWedgeConnection(t *testing.T) {
	addr, _ := startRawServer(t, nil)
	conn := mustDialRaw(t, addr)

	r := rand.New(rand.NewPCG(0xfeed, 0xbeef))
	for i := 0; i < 200; i++ {
		n := r.IntN(64)
		payload := make([]byte, n)
		for j := range payload {
			payload[j] = byte(r.Uint32())
		}
		// Every frame gets an answer; status content is payload-dependent.
		roundTripRaw(t, conn, payload)
	}
	if status, msg := roundTripRaw(t, conn, []byte{reqPing}); status != statusOK || msg != "pong" {
		t.Fatalf("connection unusable after random payloads: %d %q", status, msg)
	}
}

// TestTruncatedFrameClosedByIdleTimeout: a frame header promising more bytes
// than ever arrive must not wedge the handler forever — the idle timeout
// closes the connection.
func TestTruncatedFrameClosedByIdleTimeout(t *testing.T) {
	addr, _ := startRawServer(t, func(s *Server) { s.IdleTimeout = 100 * time.Millisecond })
	conn := mustDialRaw(t, addr)

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 10)); err != nil { // 90 bytes never come
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to drop the truncated connection")
	} else if errors.Is(err, io.EOF) {
		// closed by the server: the expected outcome
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server kept the truncated connection open past its idle timeout")
	}
}

// TestTxnTimeoutDeadlineStatus: a wire transaction whose deadline cannot be
// met fails with the typed deadline error, and the connection remains
// usable for an identical transaction with a generous deadline.
func TestTxnTimeoutDeadlineStatus(t *testing.T) {
	addr, db := startRawServer(t, nil)
	if err := db.Run(func(tx *preemptdb.Txn) error { return nil }); err != nil {
		t.Fatal(err)
	}
	db.CreateTable("t")
	if err := db.Run(func(tx *preemptdb.Txn) error {
		val := make([]byte, 32)
		for i := 0; i < 20000; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(i))
			if err := tx.Insert("t", k[:], val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 50µs cannot cover a 20k-row scan: the transaction is shed in the
	// queue or unwound mid-scan — either way the typed deadline error.
	_, err = c.TxnTimeout(preemptdb.Low, 50*time.Microsecond, []ScriptOp{ScanOp("t", nil, nil, 0)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("TxnTimeout err = %v", err)
	}

	// Same script with a generous deadline succeeds on the same connection.
	res, err := c.TxnTimeout(preemptdb.Low, 30*time.Second, []ScriptOp{ScanOp("t", nil, nil, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Keys) != 20000 {
		t.Fatalf("scan saw %d rows", len(res[0].Keys))
	}
}
