// Package server provides a TCP network layer for PreemptDB: a wire
// protocol, a Server that executes client transactions through the
// priority scheduler, and a Client.
//
// The protocol is deliberately simple — length-prefixed binary frames, one
// request/response pair per transaction. A transaction is shipped as a
// script of operations executed atomically on the server inside one
// engine transaction, tagged with a priority; a high-priority script
// preempts in-flight low-priority work exactly like an embedded caller.
// (The paper's evaluation excludes networking to isolate scheduling; this
// layer exists for the library's sake and is benchmarked separately.)
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op codes for transaction script operations.
const (
	opGet uint8 = iota + 1
	opInsert
	opUpdate
	opPut
	opDelete
	opScan
	opScanDesc
)

// Request types.
const (
	reqTxn uint8 = iota + 1
	reqCreateTable
	reqCreateIndex // reserved; extractors cannot cross the wire
	reqStats
	reqPing
	// reqTxnDeadline is reqTxn preceded by a uvarint relative timeout in
	// microseconds (relative so the two machines' clocks never have to
	// agree); the server arms it as an absolute deadline on receipt.
	reqTxnDeadline
	// reqMetrics asks for the structured latency snapshot (DB.Metrics); the
	// response carries the JSON document in the message string. The request
	// body is empty — trailing bytes are malformed.
	reqMetrics
	// reqSchedState asks for the live scheduler introspection snapshot
	// (DB.SchedState): per-core queue depths and seqlock-sampled slot tables
	// — slot state, class, trace tag, starvation level. The response carries
	// the JSON document in the message string; the request body is empty.
	reqSchedState
	// reqTxnTrace is reqTxn preceded by a uvarint trace id (0 = let the
	// server assign one) and a uvarint trace-collection timeout in
	// microseconds. The server runs the script under that trace id and ships
	// the transaction's merged cross-shard Chrome trace (DB.TraceTxn) back in
	// the response message — the wire form of end-to-end trace propagation.
	reqTxnTrace
)

// Response status codes.
const (
	statusOK uint8 = iota
	statusNotFound
	statusDuplicate
	statusConflict
	statusError
	// statusDeadline: the transaction missed its deadline (shed while
	// queued or canceled mid-flight).
	statusDeadline
	// statusCanceled: the transaction was canceled server-side.
	statusCanceled
	// statusQueueFull: rejected up front — scheduler queues full or
	// admission control shed the request.
	statusQueueFull
	// statusReadOnly: the database's write-ahead log latched a permanent
	// failure and the server only accepts reads until restarted on a
	// recovered directory.
	statusReadOnly
)

// maxFrame bounds a single frame (16 MiB) to keep a misbehaving peer from
// ballooning server memory.
const maxFrame = 16 << 20

// Wire errors.
var (
	ErrFrameTooLarge = errors.New("server: frame exceeds limit")
	ErrMalformed     = errors.New("server: malformed frame")
)

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendBytes appends a uvarint-length-prefixed blob.
func appendBytes(b, blob []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// reader walks a payload buffer.
type reader struct{ b []byte }

func (r *reader) u8() (uint8, error) {
	if len(r.b) < 1 {
		return 0, ErrMalformed
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrMalformed
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.b)) < n {
		return nil, ErrMalformed
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) str() (string, error) {
	v, err := r.bytes()
	return string(v), err
}

func (r *reader) empty() bool { return len(r.b) == 0 }

// ScriptOp is one operation in a transaction script.
type ScriptOp struct {
	Op         uint8
	Table      string
	Index      string // scans over a secondary index (optional)
	Key, Value []byte // Key/Value double as From/To for scans
	Limit      uint32 // scans: max rows (0 = unlimited)
}

// OpResult is the outcome of one script operation.
type OpResult struct {
	Status uint8
	Value  []byte   // point reads
	Keys   [][]byte // scans
	Values [][]byte // scans
}

func appendScriptBody(b []byte, priority uint8, ops []ScriptOp) []byte {
	b = append(b, priority)
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for _, op := range ops {
		b = append(b, op.Op)
		b = appendString(b, op.Table)
		b = appendString(b, op.Index)
		b = appendBytes(b, op.Key)
		b = appendBytes(b, op.Value)
		b = binary.AppendUvarint(b, uint64(op.Limit))
	}
	return b
}

func encodeScript(b []byte, priority uint8, ops []ScriptOp) []byte {
	return appendScriptBody(append(b, reqTxn), priority, ops)
}

// encodeScriptDeadline frames a reqTxnDeadline request: the relative timeout
// (microseconds) precedes the ordinary script body.
func encodeScriptDeadline(b []byte, priority uint8, timeoutMicros uint64, ops []ScriptOp) []byte {
	b = append(b, reqTxnDeadline)
	b = binary.AppendUvarint(b, timeoutMicros)
	return appendScriptBody(b, priority, ops)
}

// encodeScriptTrace frames a reqTxnTrace request: trace id and
// trace-collection timeout (microseconds) precede the ordinary script body.
func encodeScriptTrace(b []byte, priority uint8, traceID, traceTimeoutMicros uint64, ops []ScriptOp) []byte {
	b = append(b, reqTxnTrace)
	b = binary.AppendUvarint(b, traceID)
	b = binary.AppendUvarint(b, traceTimeoutMicros)
	return appendScriptBody(b, priority, ops)
}

func decodeScript(r *reader) (priority uint8, ops []ScriptOp, err error) {
	return decodeScriptMode(r, true)
}

// decodeScriptMode decodes a script body. With copyData, keys and values are
// copied out of the payload (safe regardless of buffer reuse); without it
// they alias the payload — the front-end's zero-copy mode, valid because
// batch frames are escape-copied exactly once at read time and never reused.
func decodeScriptMode(r *reader, copyData bool) (priority uint8, ops []ScriptOp, err error) {
	if priority, err = r.u8(); err != nil {
		return 0, nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > 1<<16 {
		return 0, nil, fmt.Errorf("%w: script of %d ops", ErrMalformed, n)
	}
	ops = make([]ScriptOp, n)
	for i := range ops {
		op := &ops[i]
		if op.Op, err = r.u8(); err != nil {
			return 0, nil, err
		}
		if op.Table, err = r.str(); err != nil {
			return 0, nil, err
		}
		if op.Index, err = r.str(); err != nil {
			return 0, nil, err
		}
		var kb, vb []byte
		if kb, err = r.bytes(); err != nil {
			return 0, nil, err
		}
		if vb, err = r.bytes(); err != nil {
			return 0, nil, err
		}
		if copyData {
			op.Key = append([]byte(nil), kb...)
			op.Value = append([]byte(nil), vb...)
		} else {
			op.Key, op.Value = kb, vb
		}
		lim, err := r.uvarint()
		if err != nil {
			return 0, nil, err
		}
		op.Limit = uint32(lim)
	}
	return priority, ops, nil
}

func encodeResults(b []byte, status uint8, msg string, results []OpResult) []byte {
	b = append(b, status)
	b = appendString(b, msg)
	b = binary.AppendUvarint(b, uint64(len(results)))
	for _, res := range results {
		b = append(b, res.Status)
		b = appendBytes(b, res.Value)
		b = binary.AppendUvarint(b, uint64(len(res.Keys)))
		for i := range res.Keys {
			b = appendBytes(b, res.Keys[i])
			b = appendBytes(b, res.Values[i])
		}
	}
	return b
}

func decodeResults(payload []byte) (status uint8, msg string, results []OpResult, err error) {
	r := &reader{payload}
	if status, err = r.u8(); err != nil {
		return 0, "", nil, err
	}
	if msg, err = r.str(); err != nil {
		return 0, "", nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, "", nil, err
	}
	if n > 1<<16 {
		return 0, "", nil, ErrMalformed
	}
	results = make([]OpResult, n)
	for i := range results {
		res := &results[i]
		if res.Status, err = r.u8(); err != nil {
			return 0, "", nil, err
		}
		var v []byte
		if v, err = r.bytes(); err != nil {
			return 0, "", nil, err
		}
		res.Value = append([]byte(nil), v...)
		rows, err := r.uvarint()
		if err != nil {
			return 0, "", nil, err
		}
		if rows > 1<<24 {
			return 0, "", nil, ErrMalformed
		}
		for j := uint64(0); j < rows; j++ {
			k, err := r.bytes()
			if err != nil {
				return 0, "", nil, err
			}
			val, err := r.bytes()
			if err != nil {
				return 0, "", nil, err
			}
			res.Keys = append(res.Keys, append([]byte(nil), k...))
			res.Values = append(res.Values, append([]byte(nil), val...))
		}
	}
	if !r.empty() {
		return 0, "", nil, ErrMalformed
	}
	return status, msg, results, nil
}
