package server

import (
	"encoding/binary"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"preemptdb/internal/metrics"
)

// Sharded connection front-end. Instead of one goroutine per connection
// blocking in readFrame, connections are hashed across N conn shards at
// accept time. Each shard owns an event-loop goroutine (epoll on Linux, a
// thin read-pump fallback elsewhere) that parses frames zero-copy out of a
// per-shard read buffer, plus a small worker pool that executes the decoded
// scripts. Requests are classified into a priority class from the first
// frame a connection sends, and per-class connection/in-flight limits shed
// excess load at the network edge — with a typed statusQueueFull frame,
// never silently — before the request can consume an engine admission slot.

const (
	classNone int32 = -1 // connection not yet classified
	classLo   int32 = 0
	classHi   int32 = 1

	// maxPipeline bounds how many parsed-but-unexecuted frames a single
	// connection may buffer before its read side is paused (event-loop
	// registration dropped, or the pump goroutine parked). Backpressure in
	// the kernel socket buffer then throttles the client.
	maxPipeline = 256

	// workersPerShard sizes each shard's execution pool. Workers block in
	// ExecOpts for the duration of a script, so a few per shard keep the
	// shard responsive while one connection runs a long transaction.
	workersPerShard = 4
)

type frontend struct {
	s      *Server
	reg    *metrics.Registry // the DB's front-end registry (conns shed/open)
	shards []*connShard

	// Per-class accounting and limits (index classLo/classHi; 0 = unlimited).
	conns         [2]atomic.Int64
	inflight      [2]atomic.Int64
	connLimit     [2]int64
	inflightLimit [2]int64

	next atomic.Uint64 // round-robin shard pick for the pump path

	stop     chan struct{}
	stopOnce sync.Once
}

type connShard struct {
	fe      *frontend
	id      int
	runq    chan *econn
	open    atomic.Int64 // connections currently assigned to this shard
	poller  *poller      // nil on the goroutine-pump path
	readBuf []byte       // event-loop read scratch (loop goroutine only)

	mu    sync.Mutex
	conns map[*econn]struct{}
}

// econn is one front-end connection: the original net.Conn (used for writes
// and deadlines), the dup'd file when the connection is registered in an
// event loop, and the pending-batch queue handed to the shard workers.
type econn struct {
	fe *frontend
	sh *connShard
	nc net.Conn
	f  *os.File // event-loop path: dup'd fd registered with epoll
	fd int

	class atomic.Int32

	mu      sync.Mutex
	cond    *sync.Cond // signaled when pending drains (pump backpressure)
	pending [][]byte   // escape-copied complete frames awaiting execution
	active  bool       // a worker currently owns this connection
	stalled bool       // read side paused until the workers catch up
	closed  bool

	wmu sync.Mutex // serializes response writes (workers + inline fast path)
	bw  *writerTo

	// Reader-goroutine state: leftover partial frame bytes, the frame-slice
	// parse scratch, and a response scratch for inline/shed replies.
	partial  []byte
	frames   [][]byte
	rscratch []byte

	lastActive atomic.Int64 // ns timestamp of the last byte received

	closeOnce sync.Once
}

// writerTo is a tiny buffered writer over the conn; bufio.Writer would do,
// but keeping the byte slice visible lets a whole batch of responses go out
// in one write syscall without intermediate copies growing unchecked.
type writerTo struct {
	nc  net.Conn
	buf []byte
}

func (w *writerTo) writeFrame(payload []byte) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
}

func (w *writerTo) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.nc.Write(w.buf)
	// Keep the grown array, drop oversized one-off spikes.
	if cap(w.buf) > 1<<20 {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	return err
}

func newFrontend(s *Server, nshards int) *frontend {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0) / 2
		if nshards < 1 {
			nshards = 1
		}
		if nshards > 8 {
			nshards = 8
		}
	}
	cfg := s.db.Config()
	fe := &frontend{
		s:    s,
		reg:  s.db.FrontendRegistry(),
		stop: make(chan struct{}),
	}
	fe.connLimit[classLo] = int64(cfg.LoConnLimit)
	fe.connLimit[classHi] = int64(cfg.HiConnLimit)
	fe.inflightLimit[classLo] = int64(cfg.LoInFlightLimit)
	fe.inflightLimit[classHi] = int64(cfg.HiInFlightLimit)
	for i := 0; i < nshards; i++ {
		fe.shards = append(fe.shards, &connShard{
			fe:      fe,
			id:      i,
			runq:    make(chan *econn, 256),
			readBuf: make([]byte, 64<<10),
			conns:   make(map[*econn]struct{}),
		})
	}
	return fe
}

// start launches the shard event loops and worker pools. Called once from
// Listen so tests can flip Server knobs (noPoller, timeouts) after New.
func (fe *frontend) start() {
	for _, sh := range fe.shards {
		if !fe.s.noPoller {
			sh.poller = newPoller()
		}
		if sh.poller != nil {
			fe.s.wg.Add(1)
			go sh.pollLoop()
		}
		for w := 0; w < workersPerShard; w++ {
			fe.s.wg.Add(1)
			go sh.worker()
		}
	}
}

// shutdown stops workers and loops and force-closes every front-end
// connection (both the original fd and the event-loop dup).
func (fe *frontend) shutdown() {
	fe.stopOnce.Do(func() {
		close(fe.stop)
		for _, sh := range fe.shards {
			sh.mu.Lock()
			conns := make([]*econn, 0, len(sh.conns))
			for c := range sh.conns {
				conns = append(conns, c)
			}
			sh.mu.Unlock()
			for _, c := range conns {
				c.close()
			}
			if sh.poller != nil {
				sh.poller.close()
			}
		}
	})
}

// adopt takes ownership of a freshly accepted connection: dup the fd and
// register it with the shard's event loop when a poller is running,
// otherwise hand it to a per-connection read pump feeding the same shard
// workers. Shard assignment hashes the fd (stable, cheap) on the poller
// path and round-robins on the pump path.
func (fe *frontend) adopt(nc net.Conn) {
	c := &econn{fe: fe, nc: nc, bw: &writerTo{nc: nc}}
	c.cond = sync.NewCond(&c.mu)
	c.class.Store(classNone)
	c.lastActive.Store(time.Now().UnixNano())

	var sh *connShard
	if fe.shards[0].poller != nil {
		if f, fd, ok := dupForPoller(nc); ok {
			c.f, c.fd = f, fd
			sh = fe.shards[fd%len(fe.shards)]
		}
	}
	if sh == nil { // pump fallback (non-TCP listener, dup failure, or no poller)
		sh = fe.shards[int(fe.next.Add(1))%len(fe.shards)]
	}
	c.sh = sh
	sh.mu.Lock()
	sh.conns[c] = struct{}{}
	sh.mu.Unlock()
	sh.open.Add(1)
	fe.reg.AddConnsOpen(1)

	if c.f != nil {
		if err := sh.poller.add(c); err == nil {
			return
		}
		// Registration failed: fall back to the pump on the original conn.
		c.f.Close()
		c.f = nil
	}
	fe.s.wg.Add(1)
	go c.pump()
}

func (c *econn) close() {
	c.closeOnce.Do(func() {
		if cl := c.class.Load(); cl != classNone {
			c.fe.conns[cl].Add(-1)
		}
		c.sh.mu.Lock()
		delete(c.sh.conns, c)
		c.sh.mu.Unlock()
		c.sh.open.Add(-1)
		c.fe.reg.AddConnsOpen(-1)
		if c.f != nil {
			if c.sh.poller != nil {
				c.sh.poller.remove(c)
			}
			c.f.Close()
		}
		c.nc.Close()
		s := c.fe.s
		s.mu.Lock()
		delete(s.conns, c.nc)
		s.mu.Unlock()
		c.mu.Lock()
		c.closed = true
		c.pending = nil
		c.cond.Broadcast()
		c.mu.Unlock()
	})
}

// advance parses the contiguous byte run data (previous partial + new read)
// into complete frames and routes them; the unconsumed tail is saved as the
// new partial. data may alias c.partial — the leftover copy is an
// overlapping memmove, which copy() handles. Returns false when the
// connection must close (poisoned framing, shed at classification, or a
// write failure on an inline response).
func (c *econn) advance(data []byte) bool {
	var consumed int
	var err error
	c.frames, consumed, err = parseFrames(c.frames[:0], data)
	if err != nil {
		return false
	}
	ok := true
	if len(c.frames) > 0 {
		ok = c.serveFrames(c.frames)
	}
	c.partial = append(c.partial[:0], data[consumed:]...)
	if len(c.partial) == 0 && cap(c.partial) > 64<<10 {
		c.partial = nil // release a jumbo-frame high-water mark
	}
	return ok
}

// parseFrames extracts complete length-prefixed frames from data as
// subslices (zero-copy), reusing dst as the slice-header scratch. consumed
// is the byte count covered by the returned frames.
func parseFrames(dst [][]byte, data []byte) (frames [][]byte, consumed int, err error) {
	frames = dst
	for {
		rest := data[consumed:]
		if len(rest) < 4 {
			return
		}
		n := binary.BigEndian.Uint32(rest)
		if n > maxFrame {
			err = ErrFrameTooLarge
			return
		}
		if uint64(len(rest)) < 4+uint64(n) {
			return
		}
		frames = append(frames, rest[4:4+n])
		consumed += 4 + int(n)
	}
}

// serveFrames handles one read's worth of complete frames: classify the
// connection on its first frame (shedding over-limit classes with a typed
// frame), answer single idle-connection requests inline when they need no
// engine transaction, and otherwise escape-copy the batch — the only copy a
// request ever gets — onto the worker queue.
func (c *econn) serveFrames(frames [][]byte) bool {
	s := c.fe.s
	if c.class.Load() == classNone {
		class := classifyFrame(frames[0])
		if !c.fe.admitConn(class) {
			c.fe.reg.IncConnsShed()
			resp := encodeResults(c.rscratch[:0], statusQueueFull,
				"server: connection limit reached for priority class", nil)
			c.rscratch = resp[:0]
			c.write(resp)
			return false
		}
		c.class.Store(class)
	}
	if len(frames) == 1 && c.idle() {
		if resp, ok := s.fastResponse(c.rscratch[:0], frames[0]); ok {
			c.rscratch = resp[:0]
			return c.write(resp) == nil
		}
	}
	batch := make([][]byte, len(frames))
	for i, f := range frames {
		batch[i] = append([]byte(nil), f...)
	}
	c.enqueue(batch)
	return true
}

// classifyFrame derives the connection's priority class from its first
// frame. Only a well-formed transaction frame can claim the high class: a
// malformed or non-transactional first frame classifies Low, so garbage
// cannot bypass admission into the protected class.
func classifyFrame(frame []byte) int32 {
	r := &reader{frame}
	kind, err := r.u8()
	if err != nil {
		return classLo
	}
	switch kind {
	case reqTxn:
	case reqTxnDeadline:
		if _, err := r.uvarint(); err != nil {
			return classLo
		}
	default:
		return classLo
	}
	prio, err := r.u8()
	if err != nil || prio == 0 {
		return classLo
	}
	return classHi
}

func (fe *frontend) admitConn(class int32) bool {
	limit := fe.connLimit[class]
	n := fe.conns[class].Add(1)
	if limit > 0 && n > limit {
		fe.conns[class].Add(-1)
		return false
	}
	return true
}

func (fe *frontend) admitRequest(class int32) bool {
	if class == classNone {
		class = classLo
	}
	limit := fe.inflightLimit[class]
	n := fe.inflight[class].Add(1)
	if limit > 0 && n > limit {
		fe.inflight[class].Add(-1)
		return false
	}
	return true
}

func (fe *frontend) releaseRequest(class int32) {
	if class == classNone {
		class = classLo
	}
	fe.inflight[class].Add(-1)
}

func (c *econn) idle() bool {
	c.mu.Lock()
	ok := !c.active && len(c.pending) == 0
	c.mu.Unlock()
	return ok
}

// enqueue appends a batch to the connection's pending queue and schedules it
// on the shard's worker pool if no worker already owns the connection. When
// the queue outruns the workers, the read side is paused (event-loop
// deregistration; the pump parks itself in waitDrain).
func (c *econn) enqueue(batch [][]byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.pending = append(c.pending, batch...)
	if len(c.pending) > maxPipeline && !c.stalled && c.f != nil && c.sh.poller != nil {
		c.stalled = true
		c.sh.poller.pause(c)
	}
	if c.active {
		c.mu.Unlock()
		return
	}
	c.active = true
	c.mu.Unlock()
	select {
	case c.sh.runq <- c:
	case <-c.fe.stop:
	}
}

// waitDrain blocks the pump reader until the workers have caught up.
func (c *econn) waitDrain() {
	c.mu.Lock()
	for len(c.pending) > maxPipeline && !c.closed {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// write sends one response frame outside a worker batch (inline fast path,
// classification shed). wmu orders it against worker-written responses.
func (c *econn) write(resp []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if wt := c.fe.s.WriteTimeout; wt > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(wt))
	}
	c.bw.writeFrame(resp)
	return c.bw.flush()
}

// worker executes pending batches for connections handed over the run queue.
func (sh *connShard) worker() {
	defer sh.fe.s.wg.Done()
	var scratch []byte
	for {
		select {
		case c := <-sh.runq:
			scratch = c.serveBatches(scratch)
		case <-sh.fe.stop:
			return
		}
	}
}

// serveBatches drains the connection's pending queue: each swap of the queue
// is one batch, answered with one flush — a pipelined client gets one write
// syscall per batch, exactly like the legacy buffered path.
func (c *econn) serveBatches(scratch []byte) []byte {
	s := c.fe.s
	for {
		c.mu.Lock()
		batch := c.pending
		c.pending = nil
		if len(batch) == 0 {
			c.active = false
			resume := c.stalled
			c.stalled = false
			c.cond.Broadcast()
			c.mu.Unlock()
			if resume && c.f != nil && c.sh.poller != nil {
				c.sh.poller.resume(c)
			}
			return scratch
		}
		c.cond.Broadcast()
		c.mu.Unlock()

		c.wmu.Lock()
		if wt := s.WriteTimeout; wt > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(wt))
		}
		for _, frame := range batch {
			resp := s.respond(scratch[:0], c, frame)
			scratch = resp
			c.bw.writeFrame(resp)
		}
		err := c.bw.flush()
		c.wmu.Unlock()
		if err != nil {
			c.close()
			return scratch
		}
		c.lastActive.Store(time.Now().UnixNano())
	}
}

// respond executes one frame with edge admission applied: transaction frames
// count against the connection class's in-flight limit and are shed with a
// typed statusQueueFull frame when over it; a deadline-carrying transaction
// whose timeout is already below the admission controller's EWMA queue-delay
// estimate is shed immediately with statusDeadline, before it can consume
// decode or scheduler work. The connection always survives request-level
// shedding.
func (s *Server) respond(b []byte, c *econn, frame []byte) []byte {
	if len(frame) > 0 && (frame[0] == reqTxn || frame[0] == reqTxnDeadline) {
		class := c.class.Load()
		if !c.fe.admitRequest(class) {
			c.fe.reg.IncConnsShed()
			return encodeResults(b, statusQueueFull,
				"server: in-flight limit reached for priority class", nil)
		}
		defer c.fe.releaseRequest(class)
		if frame[0] == reqTxnDeadline {
			if micros, n := binary.Uvarint(frame[1:]); n > 0 && micros > 0 {
				if est := s.db.QueueDelayEstimate(); est > time.Duration(micros)*time.Microsecond {
					return encodeResults(b, statusDeadline,
						"server: queue delay estimate exceeds request deadline", nil)
				}
			}
		}
	}
	resp, err := s.dispatchMode(b, frame, true)
	if err != nil {
		resp = encodeResults(b[:0], statusError, err.Error(), nil)
	}
	return resp
}

// fastResponse answers requests that need no engine transaction straight
// from the reader goroutine: ping, and single-op Get scripts whose key is
// resident in the hot-key cache (served at the newest committed version
// without entering a scheduler core). frame aliases the read buffer; the
// response is fully encoded before return, so nothing escapes. Returns
// false — falling through to the full path — for anything else, including
// malformed scripts, so the fast path can never mask a typed error.
func (s *Server) fastResponse(b, frame []byte) ([]byte, bool) {
	if len(frame) == 1 && frame[0] == reqPing {
		return encodeResults(b, statusOK, "pong", nil), true
	}
	if len(frame) < 2 || frame[0] != reqTxn {
		return nil, false
	}
	r := &reader{frame[2:]} // skip kind + priority: class is already fixed
	nops, err := r.uvarint()
	if err != nil || nops != 1 {
		return nil, false
	}
	op, err := r.u8()
	if err != nil || op != opGet {
		return nil, false
	}
	table, err := r.str()
	if err != nil {
		return nil, false
	}
	index, err := r.bytes()
	if err != nil || len(index) != 0 {
		return nil, false
	}
	key, err := r.bytes()
	if err != nil {
		return nil, false
	}
	if _, err := r.bytes(); err != nil { // value (unused for Get)
		return nil, false
	}
	if _, err := r.uvarint(); err != nil || !r.empty() { // limit + exact length
		return nil, false
	}
	v, ok := s.db.CachedGet(table, key)
	if !ok {
		return nil, false
	}
	res := [1]OpResult{{Status: statusOK, Value: v}}
	return encodeResults(b, statusOK, "", res[:]), true
}

// pump is the portable reader: one goroutine per connection doing blocking
// reads into a private buffer, feeding the same parse/classify/batch path as
// the event loop. Used on non-Linux platforms and as a per-connection
// fallback when fd extraction fails.
func (c *econn) pump() {
	s := c.fe.s
	defer s.wg.Done()
	defer c.close()
	buf := make([]byte, 32<<10)
	for {
		if it := s.IdleTimeout; it > 0 {
			c.nc.SetReadDeadline(time.Now().Add(it))
		}
		n, err := c.nc.Read(buf)
		if n > 0 {
			c.lastActive.Store(time.Now().UnixNano())
			data := buf[:n]
			if len(c.partial) > 0 {
				c.partial = append(c.partial, data...)
				data = c.partial
			}
			if !c.advance(data) {
				return
			}
			c.waitDrain()
		}
		if err != nil {
			// An idle timeout with work still in flight is not idleness —
			// the worker is producing the response; keep reading.
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() && !c.idle() {
				continue
			}
			return
		}
	}
}

// ShardConns reports the number of open connections per connection shard.
// Nil when the server runs the legacy goroutine-per-connection front-end.
func (s *Server) ShardConns() []int64 {
	if s.fe == nil {
		return nil
	}
	out := make([]int64, len(s.fe.shards))
	for i, sh := range s.fe.shards {
		out[i] = sh.open.Load()
	}
	return out
}
