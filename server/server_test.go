package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"preemptdb"
	"preemptdb/internal/pcontext"
)

// startServer returns a running server + connected client.
func startServer(t *testing.T, cfg preemptdb.Config) (*Client, *Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	db, err := preemptdb.Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, srv
}

func TestPing(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestCRUDOverWire(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("kv", []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("kv", []byte("a"), []byte("dup")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	v, err := c.Get("kv", []byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := c.Put("kv", []byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("kv", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("kv", []byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestAtomicScript(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	c.CreateTable("accounts")
	if _, err := c.Txn(preemptdb.Low, []ScriptOp{
		InsertOp("accounts", []byte("x"), []byte{100}),
		InsertOp("accounts", []byte("y"), []byte{100}),
	}); err != nil {
		t.Fatal(err)
	}
	// A script that fails midway must roll back entirely.
	_, err := c.Txn(preemptdb.Low, []ScriptOp{
		UpdateOp("accounts", []byte("x"), []byte{50}),
		UpdateOp("accounts", []byte("missing"), []byte{1}), // fails
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	v, _ := c.Get("accounts", []byte("x"))
	if v[0] != 100 {
		t.Fatalf("partial script committed: x=%d", v[0])
	}
	// Read-your-writes inside a script.
	res, err := c.Txn(preemptdb.Low, []ScriptOp{
		UpdateOp("accounts", []byte("x"), []byte{75}),
		GetOp("accounts", []byte("x")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Value[0] != 75 {
		t.Fatalf("read-your-writes: %d", res[1].Value[0])
	}
}

func TestScansOverWire(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	c.CreateTable("t")
	var ops []ScriptOp
	for i := 0; i < 20; i++ {
		ops = append(ops, InsertOp("t", []byte{byte(i)}, []byte{byte(i * 2)}))
	}
	if _, err := c.Txn(preemptdb.Low, ops); err != nil {
		t.Fatal(err)
	}
	keys, values, err := c.Scan("t", []byte{5}, []byte{15}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0][0] != 5 || values[9][0] != 28 {
		t.Fatalf("scan: %d rows", len(keys))
	}
	// Limit.
	keys, _, err = c.Scan("t", nil, nil, 3)
	if err != nil || len(keys) != 3 {
		t.Fatalf("limited scan: %d rows, %v", len(keys), err)
	}
	// Descending.
	res, err := c.Txn(preemptdb.Low, []ScriptOp{ScanDescOp("t", nil, nil, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Keys) != 2 || res[0].Keys[0][0] != 19 {
		t.Fatalf("desc scan: %v", res[0].Keys)
	}
}

func TestGetMissingInsideScript(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	c.CreateTable("t")
	res, err := c.Txn(preemptdb.Low, []ScriptOp{GetOp("t", []byte("nope"))})
	if err != nil {
		t.Fatal(err)
	}
	if !NotFound(res[0]) {
		t.Fatal("missing key not flagged")
	}
}

func TestHighPriorityOverWire(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{Policy: preemptdb.PolicyPreempt})
	c.CreateTable("t")
	if _, err := c.Txn(preemptdb.High, []ScriptOp{
		PutOp("t", []byte("hi"), []byte("there")),
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats == "" {
		t.Fatal("empty stats")
	}
}

func TestUnknownTableError(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	if _, err := c.Get("missing-table", []byte("k")); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	c0, srv := startServer(t, preemptdb.Config{Workers: 2})
	c0.CreateTable("ctr")
	c0.Insert("ctr", []byte("n"), []byte{0, 0})
	addr := srv.lis.Addr().String()

	const clients, perClient = 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				key := []byte(fmt.Sprintf("c%d-%d", id, j))
				if err := cl.Insert("ctr", key, []byte("v")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	keys, _, err := c0.Scan("ctr", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != clients*perClient+1 {
		t.Fatalf("rows = %d", len(keys))
	}
}

func TestMalformedFrameDropsConnection(t *testing.T) {
	_, srv := startServer(t, preemptdb.Config{})
	conn, err := net.Dial("tcp", srv.lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame with an unknown request type.
	if err := writeFrame(conn, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	status, msg, _, err := decodeResults(resp)
	if err != nil || status != statusError || msg == "" {
		t.Fatalf("status=%d msg=%q err=%v", status, msg, err)
	}
	// Connection must be closed afterwards.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(conn); err == nil {
		t.Fatal("connection survived protocol error")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	huge := make([]byte, 5)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	buf.Write(huge)
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtocolRoundtripQuick(t *testing.T) {
	err := quick.Check(func(table, index string, key, value []byte, limit uint32, hi bool) bool {
		ops := []ScriptOp{{Op: opScan, Table: table, Index: index, Key: key, Value: value, Limit: limit}}
		var prio uint8
		if hi {
			prio = 1
		}
		payload := encodeScript(nil, prio, ops)
		r := &reader{payload}
		kind, err := r.u8()
		if err != nil || kind != reqTxn {
			return false
		}
		gotPrio, gotOps, err := decodeScript(r)
		if err != nil || gotPrio != prio || len(gotOps) != 1 {
			return false
		}
		op := gotOps[0]
		return op.Table == table && op.Index == index &&
			bytes.Equal(op.Key, key) && bytes.Equal(op.Value, value) && op.Limit == limit
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResultsRoundtripQuick(t *testing.T) {
	err := quick.Check(func(status uint8, msg string, val []byte, k1, v1 []byte) bool {
		in := []OpResult{
			{Status: statusOK, Value: val},
			{Status: statusNotFound, Keys: [][]byte{k1}, Values: [][]byte{v1}},
		}
		payload := encodeResults(nil, status, msg, in)
		gs, gm, out, err := decodeResults(payload)
		if err != nil || gs != status || gm != msg || len(out) != 2 {
			return false
		}
		return bytes.Equal(out[0].Value, val) &&
			len(out[1].Keys) == 1 && bytes.Equal(out[1].Keys[0], k1) && bytes.Equal(out[1].Values[0], v1)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	_, srv := startServer(t, preemptdb.Config{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedRequests drives the buffered write path: all K request frames
// go out in a single write before ANY response is read, so the server parses
// the whole batch off its read buffer, accumulates K responses in the write
// buffer, and flushes once when the batch drains. Responses must come back
// complete and in request order.
func TestPipelinedRequests(t *testing.T) {
	c, srv := startServer(t, preemptdb.Config{})
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const K = 32
	sendBatch := func(frames [][]byte) {
		t.Helper()
		var batch bytes.Buffer
		for _, f := range frames {
			if err := writeFrame(&batch, f); err != nil {
				t.Fatal(err)
			}
		}
		// One Write call: every frame is on the wire before the first read.
		if _, err := conn.Write(batch.Bytes()); err != nil {
			t.Fatal(err)
		}
	}

	// Batch 1: K inserts, pipelined.
	frames := make([][]byte, K)
	for i := range frames {
		key := []byte(fmt.Sprintf("k%03d", i))
		val := []byte(fmt.Sprintf("v%d", i))
		frames[i] = encodeScript(nil, 0, []ScriptOp{{Op: opInsert, Table: "kv", Key: key, Value: val}})
	}
	sendBatch(frames)
	for i := 0; i < K; i++ {
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatalf("insert response %d: %v", i, err)
		}
		status, msg, _, err := decodeResults(resp)
		if err != nil || status != statusOK {
			t.Fatalf("insert response %d: status=%d msg=%q err=%v", i, status, msg, err)
		}
	}

	// Batch 2: K gets, pipelined; ordering is proven by each value matching
	// its request's key.
	for i := range frames {
		key := []byte(fmt.Sprintf("k%03d", i))
		frames[i] = encodeScript(nil, 0, []ScriptOp{{Op: opGet, Table: "kv", Key: key}})
	}
	sendBatch(frames)
	for i := 0; i < K; i++ {
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatalf("get response %d: %v", i, err)
		}
		status, msg, results, err := decodeResults(resp)
		if err != nil || status != statusOK {
			t.Fatalf("get response %d: status=%d msg=%q err=%v", i, status, msg, err)
		}
		want := fmt.Sprintf("v%d", i)
		if len(results) != 1 || string(results[0].Value) != want {
			t.Fatalf("get response %d: got %q, want %q", i, results, want)
		}
	}

	// The plain client still works on its own connection after the raw
	// pipelined session (frame sync was never lost).
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedStateOverWire: the reqSchedState frame ships the live scheduler
// introspection snapshot as JSON.
func TestSchedStateOverWire(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{Workers: 2})
	raw, err := c.SchedState()
	if err != nil {
		t.Fatal(err)
	}
	var dbg preemptdb.SchedDebug
	if err := json.Unmarshal(raw, &dbg); err != nil {
		t.Fatalf("sched state is not valid JSON: %v\n%s", err, raw)
	}
	if len(dbg.Shards) == 0 {
		t.Fatal("sched state has no shards")
	}
	for _, ss := range dbg.Shards {
		if len(ss.Workers) != 2 {
			t.Fatalf("shard %d: %d workers in snapshot, want 2", ss.Shard, len(ss.Workers))
		}
		for _, ws := range ss.Workers {
			if len(ws.Slots) == 0 {
				t.Fatalf("worker %d: empty slot table", ws.Worker)
			}
		}
	}
}

// TestTxnTracedOverWire: the reqTxnTrace frame runs the script under a trace
// id and ships back the transaction's merged Chrome trace.
func TestTxnTracedOverWire(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{Workers: 1, TraceSampling: 1})
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	results, trace, err := c.TxnTraced(preemptdb.High, 0, time.Second, []ScriptOp{
		PutOp("kv", []byte("a"), []byte("1")),
		GetOp("kv", []byte("a")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !bytes.Equal(results[1].Value, []byte("1")) {
		t.Fatalf("bad results: %+v", results)
	}
	if trace == nil {
		t.Fatal("no trace returned despite TraceSampling 1")
	}
	if err := pcontext.ValidateChromeTrace(trace); err != nil {
		t.Fatalf("wire trace invalid: %v", err)
	}
	// Client-supplied trace ids name the span verbatim.
	_, trace, err = c.TxnTraced(preemptdb.Low, 424242, time.Second, []ScriptOp{
		GetOp("kv", []byte("a")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(trace, []byte("txn 424242")) {
		t.Fatal("client-supplied trace id missing from exported trace")
	}
}

// TestTxnTracedTracingDisabled: with tracing off the traced frame still
// commits and returns results — the trace is just absent.
func TestTxnTracedTracingDisabled(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{Workers: 1, TraceCapacity: -1})
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	results, trace, err := c.TxnTraced(preemptdb.Low, 0, 10*time.Millisecond, []ScriptOp{
		PutOp("kv", []byte("a"), []byte("1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("bad results: %+v", results)
	}
	if trace != nil {
		t.Fatalf("trace returned with tracing disabled: %s", trace)
	}
}
