//go:build !linux

package server

import (
	"net"
	"os"
)

// Non-Linux fallback: no OS event loop. newPoller returns nil, so every
// connection runs the portable read pump in frontend.go — one goroutine per
// connection doing blocking reads, feeding the same zero-copy parse,
// classification, admission, and shard worker-pool machinery as the epoll
// path. The sharded execution model (and all its semantics) is identical;
// only the read-readiness mechanism differs.

type poller struct{}

func newPoller() *poller { return nil }

func dupForPoller(net.Conn) (*os.File, int, bool) { return nil, 0, false }

func (p *poller) add(*econn) error { return nil }
func (p *poller) remove(*econn)    {}
func (p *poller) pause(*econn)     {}
func (p *poller) resume(*econn)    {}
func (p *poller) close()           {}

func (sh *connShard) pollLoop() { sh.fe.s.wg.Done() }
