//go:build linux

package server

import (
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// Linux event loop: each conn shard owns an epoll instance; the shard's loop
// goroutine waits on it, reads ready connections into the shard's shared
// read buffer, and parses frames zero-copy in place. Level-triggered epoll
// keeps the loop simple — one read per readiness event, remaining bytes
// re-arm the event — and pausing a connection for backpressure is a plain
// EPOLL_CTL_MOD to an empty interest set.

type poller struct {
	epfd int
	mu   sync.Mutex
	fds  map[int32]*econn
}

func newPoller() *poller {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil
	}
	return &poller{epfd: epfd, fds: make(map[int32]*econn)}
}

// dupForPoller extracts a dup'd, nonblocking fd for epoll registration. The
// original conn keeps working for writes and deadlines; only reads move to
// the event loop.
func dupForPoller(nc net.Conn) (*os.File, int, bool) {
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		return nil, 0, false
	}
	f, err := tc.File()
	if err != nil {
		return nil, 0, false
	}
	fd := int(f.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		f.Close()
		return nil, 0, false
	}
	return f, fd, true
}

const pollerInterest = syscall.EPOLLIN | syscall.EPOLLRDHUP

func (p *poller) ctl(op, fd int, events uint32) error {
	ev := syscall.EpollEvent{Events: events, Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, op, fd, &ev)
}

func (p *poller) add(c *econn) error {
	p.mu.Lock()
	p.fds[int32(c.fd)] = c
	p.mu.Unlock()
	if err := p.ctl(syscall.EPOLL_CTL_ADD, c.fd, pollerInterest); err != nil {
		p.mu.Lock()
		delete(p.fds, int32(c.fd))
		p.mu.Unlock()
		return err
	}
	return nil
}

func (p *poller) remove(c *econn) {
	p.mu.Lock()
	delete(p.fds, int32(c.fd))
	p.mu.Unlock()
	p.ctl(syscall.EPOLL_CTL_DEL, c.fd, 0)
}

// pause drops the connection from the interest set (backpressure); resume
// restores it. The registration itself stays, so both are O(1) MODs.
func (p *poller) pause(c *econn)  { p.ctl(syscall.EPOLL_CTL_MOD, c.fd, 0) }
func (p *poller) resume(c *econn) { p.ctl(syscall.EPOLL_CTL_MOD, c.fd, pollerInterest) }

func (p *poller) lookup(fd int32) *econn {
	p.mu.Lock()
	c := p.fds[fd]
	p.mu.Unlock()
	return c
}

func (p *poller) close() { syscall.Close(p.epfd) }

// pollLoop is the shard's event loop. It exits when the epoll fd is closed
// by shutdown. The wait timeout doubles as the idle-sweep tick when an
// IdleTimeout is configured.
func (sh *connShard) pollLoop() {
	s := sh.fe.s
	defer s.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	for {
		timeoutMs := -1
		if it := s.IdleTimeout; it > 0 {
			timeoutMs = int(it / (4 * time.Millisecond))
			if timeoutMs < 10 {
				timeoutMs = 10
			} else if timeoutMs > 1000 {
				timeoutMs = 1000
			}
		}
		n, err := syscall.EpollWait(sh.poller.epfd, events, timeoutMs)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return // epoll fd closed: server shutting down
		}
		now := time.Now().UnixNano()
		for i := 0; i < n; i++ {
			c := sh.poller.lookup(events[i].Fd)
			if c == nil {
				continue
			}
			if !sh.readReady(c, now) {
				c.close()
			}
		}
		if it := s.IdleTimeout; it > 0 {
			sh.sweepIdle(now, it)
		}
	}
}

// readReady performs one read for a ready connection into the shard buffer
// and advances its frame parser. EOF, fatal errors, and poisoned framing
// all report false (close). A HUP/RDHUP event lands here too: the read
// drains any final bytes and then returns 0 → close.
func (sh *connShard) readReady(c *econn, now int64) bool {
	n, err := syscall.Read(c.fd, sh.readBuf)
	if err != nil {
		return err == syscall.EAGAIN || err == syscall.EINTR
	}
	if n == 0 {
		return false // EOF
	}
	c.lastActive.Store(now)
	data := sh.readBuf[:n]
	if len(c.partial) > 0 {
		// A frame is straddling reads: make the run contiguous in the
		// connection's own buffer (grows as needed up to maxFrame).
		c.partial = append(c.partial, data...)
		data = c.partial
	}
	return c.advance(data)
}

// sweepIdle closes connections that have neither delivered bytes nor had
// work in flight for longer than the idle timeout — including a truncated
// frame whose remainder never arrives.
func (sh *connShard) sweepIdle(now int64, idle time.Duration) {
	sh.mu.Lock()
	var victims []*econn
	for c := range sh.conns {
		if now-c.lastActive.Load() < int64(idle) {
			continue
		}
		c.mu.Lock()
		busy := c.active || len(c.pending) > 0
		c.mu.Unlock()
		if !busy {
			victims = append(victims, c)
		}
	}
	sh.mu.Unlock()
	for _, c := range victims {
		c.close()
	}
}
