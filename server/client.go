package server

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"preemptdb"
	"preemptdb/internal/metrics"
)

// Client is a connection to a PreemptDB server. Safe for concurrent use;
// requests on one connection are serialized (open several clients for
// parallelism).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one frame and reads the response.
func (c *Client) roundTrip(payload []byte) (uint8, string, []OpResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, payload); err != nil {
		return 0, "", nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return 0, "", nil, err
	}
	return decodeResults(resp)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	status, msg, _, err := c.roundTrip([]byte{reqPing})
	if err != nil {
		return err
	}
	if status != statusOK || msg != "pong" {
		return fmt.Errorf("server: bad ping response %d %q", status, msg)
	}
	return nil
}

// CreateTable creates a table on the server (idempotent).
func (c *Client) CreateTable(name string) error {
	payload := appendString([]byte{reqCreateTable}, name)
	status, msg, _, err := c.roundTrip(payload)
	if err != nil {
		return err
	}
	return statusErr(status, msg)
}

// Metrics fetches the server's structured latency snapshot: per-class
// per-phase Summary percentiles plus uintr delivery latency, decoded from
// the JSON document the server ships in the response message.
func (c *Client) Metrics() (metrics.RegistrySnapshot, error) {
	var snap metrics.RegistrySnapshot
	status, msg, _, err := c.roundTrip([]byte{reqMetrics})
	if err != nil {
		return snap, err
	}
	if err := statusErr(status, msg); err != nil {
		return snap, err
	}
	if err := json.Unmarshal([]byte(msg), &snap); err != nil {
		return snap, fmt.Errorf("server: decoding metrics: %w", err)
	}
	return snap, nil
}

// SchedState fetches the server's live scheduler introspection snapshot as a
// JSON document (the wire form of DB.SchedState / the /debug/sched endpoint):
// per-core queue depths and seqlock-sampled slot tables — slot state, class,
// trace tag, starvation level. Returned raw so callers without the
// preemptdb types (dashboards, scripts) can consume it directly.
func (c *Client) SchedState() ([]byte, error) {
	status, msg, _, err := c.roundTrip([]byte{reqSchedState})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, msg); err != nil {
		return nil, err
	}
	return []byte(msg), nil
}

// TxnTraced is Txn with end-to-end trace propagation: the script runs under
// traceID (0 lets the server assign one) and the server ships back the
// transaction's merged cross-shard Chrome trace-event document alongside the
// results. traceWait bounds how long the server waits for the transaction's
// events to settle into the trace rings (0 picks a 50ms default). A nil
// trace with a nil error means the server has tracing disabled or the rings
// wrapped before export.
func (c *Client) TxnTraced(p preemptdb.Priority, traceID uint64, traceWait time.Duration, ops []ScriptOp) ([]OpResult, []byte, error) {
	var prio uint8
	if p == preemptdb.High {
		prio = 1
	}
	micros := uint64(traceWait / time.Microsecond)
	status, msg, results, err := c.roundTrip(encodeScriptTrace(nil, prio, traceID, micros, ops))
	if err != nil {
		return nil, nil, err
	}
	if err := statusErr(status, msg); err != nil {
		return nil, nil, err
	}
	var trace []byte
	if msg != "" {
		trace = []byte(msg)
	}
	return results, trace, nil
}

// Stats returns the server's counter summary line.
func (c *Client) Stats() (string, error) {
	status, msg, _, err := c.roundTrip([]byte{reqStats})
	if err != nil {
		return "", err
	}
	return msg, statusErr(status, msg)
}

// Txn executes a script of operations atomically at the given priority.
func (c *Client) Txn(p preemptdb.Priority, ops []ScriptOp) ([]OpResult, error) {
	var prio uint8
	if p == preemptdb.High {
		prio = 1
	}
	status, msg, results, err := c.roundTrip(encodeScript(nil, prio, ops))
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, msg); err != nil {
		return nil, err
	}
	return results, nil
}

// TxnTimeout is Txn with a server-side deadline: the relative timeout ships
// on the wire (microsecond resolution, so the machines' clocks never need to
// agree) and the server arms it as the transaction's deadline on receipt. A
// transaction that misses it — still queued or mid-flight — fails with
// ErrDeadlineExceeded instead of occupying a core.
func (c *Client) TxnTimeout(p preemptdb.Priority, timeout time.Duration, ops []ScriptOp) ([]OpResult, error) {
	var prio uint8
	if p == preemptdb.High {
		prio = 1
	}
	micros := uint64(timeout / time.Microsecond)
	if timeout > 0 && micros == 0 {
		micros = 1 // sub-microsecond timeouts still arm a deadline
	}
	status, msg, results, err := c.roundTrip(encodeScriptDeadline(nil, prio, micros, ops))
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, msg); err != nil {
		return nil, err
	}
	return results, nil
}

func statusErr(status uint8, msg string) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case statusDuplicate:
		return fmt.Errorf("%w: %s", ErrDuplicate, msg)
	case statusConflict:
		return fmt.Errorf("%w: %s", ErrConflict, msg)
	case statusDeadline:
		return fmt.Errorf("%w: %s", ErrDeadlineExceeded, msg)
	case statusCanceled:
		return fmt.Errorf("%w: %s", ErrCanceled, msg)
	case statusQueueFull:
		return fmt.Errorf("%w: %s", ErrQueueFull, msg)
	case statusReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, msg)
	default:
		return fmt.Errorf("server: %s", msg)
	}
}

// Convenience single-op wrappers.

// Get fetches one row (priority Low).
func (c *Client) Get(table string, key []byte) ([]byte, error) {
	res, err := c.Txn(preemptdb.Low, []ScriptOp{{Op: opGet, Table: table, Key: key}})
	if err != nil {
		return nil, err
	}
	if res[0].Status == statusNotFound {
		return nil, ErrNotFound
	}
	return res[0].Value, nil
}

// Put upserts one row (priority Low).
func (c *Client) Put(table string, key, value []byte) error {
	_, err := c.Txn(preemptdb.Low, []ScriptOp{{Op: opPut, Table: table, Key: key, Value: value}})
	return err
}

// Insert creates one row (priority Low); fails on duplicates.
func (c *Client) Insert(table string, key, value []byte) error {
	_, err := c.Txn(preemptdb.Low, []ScriptOp{{Op: opInsert, Table: table, Key: key, Value: value}})
	return err
}

// Delete removes one row (priority Low).
func (c *Client) Delete(table string, key []byte) error {
	_, err := c.Txn(preemptdb.Low, []ScriptOp{{Op: opDelete, Table: table, Key: key}})
	return err
}

// Scan returns up to limit rows with from <= key < to in ascending order.
func (c *Client) Scan(table string, from, to []byte, limit uint32) (keys, values [][]byte, err error) {
	res, err := c.Txn(preemptdb.Low, []ScriptOp{{Op: opScan, Table: table, Key: from, Value: to, Limit: limit}})
	if err != nil {
		return nil, nil, err
	}
	return res[0].Keys, res[0].Values, nil
}

// GetOp builds a read operation for use in Txn scripts.
func GetOp(table string, key []byte) ScriptOp { return ScriptOp{Op: opGet, Table: table, Key: key} }

// InsertOp builds an insert operation.
func InsertOp(table string, key, value []byte) ScriptOp {
	return ScriptOp{Op: opInsert, Table: table, Key: key, Value: value}
}

// UpdateOp builds an update operation.
func UpdateOp(table string, key, value []byte) ScriptOp {
	return ScriptOp{Op: opUpdate, Table: table, Key: key, Value: value}
}

// PutOp builds an upsert operation.
func PutOp(table string, key, value []byte) ScriptOp {
	return ScriptOp{Op: opPut, Table: table, Key: key, Value: value}
}

// DeleteOp builds a delete operation.
func DeleteOp(table string, key []byte) ScriptOp {
	return ScriptOp{Op: opDelete, Table: table, Key: key}
}

// ScanOp builds an ascending scan operation ([from, to), limit rows; 0 =
// unlimited). Set Index on the result for secondary-index scans.
func ScanOp(table string, from, to []byte, limit uint32) ScriptOp {
	return ScriptOp{Op: opScan, Table: table, Key: from, Value: to, Limit: limit}
}

// ScanDescOp builds a descending scan operation.
func ScanDescOp(table string, from, to []byte, limit uint32) ScriptOp {
	return ScriptOp{Op: opScanDesc, Table: table, Key: from, Value: to, Limit: limit}
}

// NotFound reports whether an op result carries the not-found status, for
// use with results of Txn scripts containing GetOps.
func NotFound(r OpResult) bool { return r.Status == statusNotFound }
