package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"preemptdb"
)

// startEdgeServer starts a server on a DB with the given front-end config,
// returning the server and its address. configure (optional) runs before the
// listener opens.
func startEdgeServer(t *testing.T, cfg preemptdb.Config, configure func(*Server)) (*Server, string) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	db, err := preemptdb.Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	srv.Logf = t.Logf
	if configure != nil {
		configure(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, addr.String()
}

func txnFrame(prio uint8, ops []ScriptOp) []byte { return encodeScript(nil, prio, ops) }

// TestInFlightShedTypedFrameConnSurvives: a request over the per-class
// in-flight limit gets a typed statusQueueFull frame and the connection
// keeps working — request-level shedding never kills the connection.
func TestInFlightShedTypedFrameConnSurvives(t *testing.T) {
	srv, addr := startEdgeServer(t, preemptdb.Config{LoInFlightLimit: 1}, nil)
	srv.db.CreateTable("kv")
	conn := mustDialRaw(t, addr)

	// Occupy the single low-class in-flight slot from the outside, so the
	// wire request below is deterministically over the limit.
	if !srv.fe.admitRequest(classLo) {
		t.Fatal("could not occupy the in-flight slot")
	}
	frame := txnFrame(0, []ScriptOp{{Op: opInsert, Table: "kv", Key: []byte("a"), Value: []byte("1")}})
	if status, msg := roundTripRaw(t, conn, frame); status != statusQueueFull {
		t.Fatalf("over-limit request: status=%d msg=%q, want statusQueueFull", status, msg)
	} else if msg == "" {
		t.Fatal("shed response carries no message — shedding must never be silent")
	}
	if shed := srv.db.Stats().ConnsShed; shed == 0 {
		t.Fatal("shed not counted in Stats.ConnsShed")
	}

	// Release the slot: the same connection must serve the retry.
	srv.fe.releaseRequest(classLo)
	if status, msg := roundTripRaw(t, conn, frame); status != statusOK {
		t.Fatalf("retry after release: status=%d msg=%q", status, msg)
	}
	if status, msg := roundTripRaw(t, conn, []byte{reqPing}); status != statusOK || msg != "pong" {
		t.Fatalf("connection unusable after shed: %d %q", status, msg)
	}
}

// TestConnLimitShedsAtClassification: a connection that classifies into a
// full priority class is refused with a typed frame and closed; connections
// of the other class are unaffected.
func TestConnLimitShedsAtClassification(t *testing.T) {
	srv, addr := startEdgeServer(t, preemptdb.Config{HiConnLimit: 1}, nil)
	srv.db.CreateTable("kv")
	put := func(prio uint8, key string) []byte {
		return txnFrame(prio, []ScriptOp{{Op: opPut, Table: "kv", Key: []byte(key), Value: []byte("v")}})
	}

	hi1 := mustDialRaw(t, addr)
	if status, msg := roundTripRaw(t, hi1, put(1, "a")); status != statusOK {
		t.Fatalf("first hi conn: status=%d msg=%q", status, msg)
	}

	hi2 := mustDialRaw(t, addr)
	hi2.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrame(hi2, put(1, "b")); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(hi2)
	if err != nil {
		t.Fatalf("over-limit conn got no typed frame before close: %v", err)
	}
	status, msg, _, err := decodeResults(resp)
	if err != nil || status != statusQueueFull || msg == "" {
		t.Fatalf("over-limit conn: status=%d msg=%q err=%v, want typed statusQueueFull", status, msg, err)
	}
	// The shed connection is then closed by the server.
	if _, err := readFrame(hi2); err == nil {
		t.Fatal("over-hi-conn-limit connection was not closed")
	}

	// The low class is not limited: a new low connection works.
	lo := mustDialRaw(t, addr)
	if status, msg := roundTripRaw(t, lo, put(0, "c")); status != statusOK {
		t.Fatalf("lo conn after hi shed: status=%d msg=%q", status, msg)
	}
	if shed := srv.db.Stats().ConnsShed; shed == 0 {
		t.Fatal("conn shed not counted in Stats.ConnsShed")
	}
}

// TestMalformedFirstFrameCannotClaimHighClass: garbage, truncated, and
// non-transactional first frames all classify Low — the protected high class
// cannot be entered without a well-formed high-priority transaction frame.
func TestMalformedFirstFrameCannotClaimHighClass(t *testing.T) {
	firstFrames := map[string][]byte{
		"empty":              {},
		"unknown kind":       {0xEE, 1},
		"truncated txn":      {reqTxn},               // no priority byte
		"truncated deadline": {reqTxnDeadline, 0x80}, // unterminated uvarint
		"ping":               {reqPing},
	}
	for name, first := range firstFrames {
		t.Run(name, func(t *testing.T) {
			// Low class full, high class open: a frame that bypassed
			// classification into High would be admitted. It must be shed.
			srv, addr := startEdgeServer(t, preemptdb.Config{LoConnLimit: 1, HiConnLimit: 8}, nil)
			srv.db.CreateTable("kv")
			occupant := mustDialRaw(t, addr)
			ok := txnFrame(0, []ScriptOp{{Op: opPut, Table: "kv", Key: []byte("k"), Value: []byte("v")}})
			if status, msg := roundTripRaw(t, occupant, ok); status != statusOK {
				t.Fatalf("occupant: status=%d msg=%q", status, msg)
			}

			probe := mustDialRaw(t, addr)
			probe.SetDeadline(time.Now().Add(10 * time.Second))
			if err := writeFrame(probe, first); err != nil {
				t.Fatal(err)
			}
			resp, err := readFrame(probe)
			if err != nil {
				t.Fatalf("no typed frame for shed connection: %v", err)
			}
			status, _, _, err := decodeResults(resp)
			if err != nil || status != statusQueueFull {
				t.Fatalf("first frame %q classified past the full low class: status=%d err=%v", name, status, err)
			}
		})
	}
}

// TestZeroCopyFrontendByteIdenticalWithLegacy runs the same pipelined
// workload against the legacy goroutine-per-connection reader
// (ConnShards: -1), the event-loop front-end, and the portable pump
// front-end, and requires the concatenated response bytes to be identical:
// the zero-copy decode and batched execution change no observable byte.
func TestZeroCopyFrontendByteIdenticalWithLegacy(t *testing.T) {
	workload := [][]byte{
		{reqPing},
		{reqCreateTable, 2, 'k', 'v'},
	}
	for i := 0; i < 16; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		workload = append(workload, txnFrame(uint8(i%2), []ScriptOp{
			{Op: opInsert, Table: "kv", Key: key, Value: []byte(fmt.Sprintf("v%d", i))},
		}))
	}
	for i := 0; i < 16; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		workload = append(workload, txnFrame(0, []ScriptOp{{Op: opGet, Table: "kv", Key: key}}))
	}
	workload = append(workload,
		// Multi-op script: update + read + delete + re-read (typed not-found).
		txnFrame(1, []ScriptOp{
			{Op: opUpdate, Table: "kv", Key: []byte("k000"), Value: []byte("v0'")},
			{Op: opGet, Table: "kv", Key: []byte("k000")},
			{Op: opDelete, Table: "kv", Key: []byte("k001")},
			{Op: opGet, Table: "kv", Key: []byte("k001")},
		}),
		// Scans, ascending and descending with a limit.
		txnFrame(0, []ScriptOp{{Op: opScan, Table: "kv"}}),
		txnFrame(0, []ScriptOp{{Op: opScanDesc, Table: "kv", Limit: 5}}),
		// Duplicate-key error and unknown-table error: typed statuses.
		txnFrame(0, []ScriptOp{{Op: opInsert, Table: "kv", Key: []byte("k002"), Value: []byte("x")}}),
		txnFrame(0, []ScriptOp{{Op: opGet, Table: "nope", Key: []byte("k")}}),
		// Malformed payload inside a well-delimited frame: typed error.
		[]byte{reqTxn, 0, 1, opGet, 0xFF},
		[]byte{reqPing},
	)

	run := func(connShards int, noPoller bool) []byte {
		cfg := preemptdb.Config{Workers: 1, ConnShards: connShards}
		_, addr := startEdgeServer(t, cfg, func(s *Server) { s.noPoller = noPoller })
		conn := mustDialRaw(t, addr)
		conn.SetDeadline(time.Now().Add(30 * time.Second))

		// Pipeline everything in one write, then read all responses back.
		var batch bytes.Buffer
		for _, f := range workload {
			if err := writeFrame(&batch, f); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := conn.Write(batch.Bytes()); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		for i := range workload {
			resp, err := readFrame(conn)
			if err != nil {
				t.Fatalf("response %d: %v", i, err)
			}
			binary.Write(&got, binary.BigEndian, uint32(len(resp)))
			got.Write(resp)
		}
		return got.Bytes()
	}

	legacy := run(-1, false)
	eventLoop := run(0, false)
	pump := run(0, true)
	if !bytes.Equal(legacy, eventLoop) {
		t.Fatal("event-loop front-end responses differ from the legacy reader")
	}
	if !bytes.Equal(legacy, pump) {
		t.Fatal("pump front-end responses differ from the legacy reader")
	}
}

// TestFastPathCachedGetOverWire: with the hot-key cache enabled, a repeated
// single-Get on an idle connection is served from the inline fast path with
// a byte-identical response, and the hit registers in Stats.
func TestFastPathCachedGetOverWire(t *testing.T) {
	srv, addr := startEdgeServer(t, preemptdb.Config{CacheBytes: 1 << 20}, nil)
	srv.db.CreateTable("kv")
	conn := mustDialRaw(t, addr)
	put := txnFrame(0, []ScriptOp{{Op: opPut, Table: "kv", Key: []byte("hot"), Value: []byte("val")}})
	if status, msg := roundTripRaw(t, conn, put); status != statusOK {
		t.Fatalf("put: status=%d msg=%q", status, msg)
	}

	get := txnFrame(0, []ScriptOp{{Op: opGet, Table: "kv", Key: []byte("hot")}})
	readResp := func() []byte {
		t.Helper()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		if err := writeFrame(conn, get); err != nil {
			t.Fatal(err)
		}
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := append([]byte(nil), readResp()...) // fills the cache via the engine
	hitsBefore := srv.db.Stats().CacheHits
	second := readResp() // served by the inline fast path
	if !bytes.Equal(first, second) {
		t.Fatalf("fast-path response differs:\n  engine: %x\n  cache:  %x", first, second)
	}
	status, _, results, err := decodeResults(second)
	if err != nil || status != statusOK || len(results) != 1 || !bytes.Equal(results[0].Value, []byte("val")) {
		t.Fatalf("cached get: status=%d results=%v err=%v", status, results, err)
	}
	if srv.db.Stats().CacheHits <= hitsBefore {
		t.Fatal("repeated get did not hit the cache")
	}

	// Invalidation visibility over the wire: update, then read the new value.
	put2 := txnFrame(0, []ScriptOp{{Op: opPut, Table: "kv", Key: []byte("hot"), Value: []byte("val2")}})
	if status, msg := roundTripRaw(t, conn, put2); status != statusOK {
		t.Fatalf("second put: status=%d msg=%q", status, msg)
	}
	if err := writeFrame(conn, get); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, results, err = decodeResults(resp); err != nil || !bytes.Equal(results[0].Value, []byte("val2")) {
		t.Fatalf("post-update get = %v err=%v, want val2", results, err)
	}
}

// TestPumpFrontendServesPipelinedBatches covers the portable reader end to
// end (classification, batching, one-flush responses) since CI runs Linux
// and would otherwise only exercise the epoll loop.
func TestPumpFrontendServesPipelinedBatches(t *testing.T) {
	_, addr := startEdgeServer(t, preemptdb.Config{}, func(s *Server) { s.noPoller = true })
	conn := mustDialRaw(t, addr)
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	var batch bytes.Buffer
	writeFrame(&batch, []byte{reqCreateTable, 2, 'k', 'v'})
	const K = 48
	for i := 0; i < K; i++ {
		writeFrame(&batch, txnFrame(1, []ScriptOp{
			{Op: opPut, Table: "kv", Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("v")},
		}))
	}
	if _, err := conn.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= K; i++ {
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if status, msg, _, err := decodeResults(resp); err != nil || status != statusOK {
			t.Fatalf("response %d: status=%d msg=%q err=%v", i, status, msg, err)
		}
	}
	// EOF handling: closing our side must not wedge the server.
	conn.Close()
}

// TestEventLoopIdleSweepSkipsBusyConns: a connection waiting on a slow
// transaction is not a victim of the idle sweep even when no bytes arrive
// for longer than the timeout.
func TestEventLoopIdleSweepSkipsBusyConns(t *testing.T) {
	srv, addr := startEdgeServer(t, preemptdb.Config{}, func(s *Server) {
		s.IdleTimeout = 150 * time.Millisecond
	})
	srv.db.CreateTable("kv")
	conn := mustDialRaw(t, addr)
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	// A batch big enough to keep the worker busy past the idle timeout.
	var batch bytes.Buffer
	const K = 64
	var val [4096]byte
	for i := 0; i < K; i++ {
		writeFrame(&batch, txnFrame(0, []ScriptOp{
			{Op: opPut, Table: "kv", Key: []byte(fmt.Sprintf("k%04d", i)), Value: val[:]},
			{Op: opScan, Table: "kv", Limit: 64},
		}))
	}
	if _, err := conn.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < K; i++ {
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatalf("response %d: %v (idle sweep closed a busy conn?)", i, err)
		}
		if status, _, _, err := decodeResults(resp); err != nil || status != statusOK {
			t.Fatalf("response %d: status=%d err=%v", i, status, err)
		}
		time.Sleep(2 * time.Millisecond) // stretch the quiet period while work is in flight
	}
	// Once genuinely idle, the sweep must reclaim the connection.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(conn); err == nil {
		t.Fatal("idle connection survived the sweep")
	} else if err != io.EOF {
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("idle connection not closed by the sweep")
		}
	}
}
