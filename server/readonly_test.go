package server

import (
	"errors"
	"strings"
	"testing"

	"preemptdb"
	"preemptdb/internal/iofault"
)

// TestServerReadOnlyDegradation drives the operator-facing contract after a
// log failure: the in-flight write gets the typed read-only status, later
// writes are refused the same way, reads keep succeeding, and the stats line
// flags the condition.
func TestServerReadOnlyDegradation(t *testing.T) {
	sink := iofault.NewSink()
	c, _ := startServer(t, preemptdb.Config{LogSink: sink, SyncEachCommit: true})
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("kv", []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	sink.FailSync(2, nil) // next batch's sync fails and latches the log
	if err := c.Put("kv", []byte("b"), []byte("2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write over failed sync: %v, want ErrReadOnly", err)
	}
	if err := c.Put("kv", []byte("c"), []byte("3")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on read-only server: %v, want ErrReadOnly", err)
	}

	// Reads still work. Key "b" is in the commit-uncertain window (its
	// version published at stage time even though its commit failed), so
	// only assert on the durably-acked key.
	if v, err := c.Get("kv", []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("read after degradation: %q %v", v, err)
	}
	msg, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "wal-failed=true") {
		t.Fatalf("stats line does not flag the failure: %q", msg)
	}
}
