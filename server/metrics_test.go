package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"preemptdb"
	"preemptdb/internal/metrics"
)

// metricsTraffic drives a few transactions at both priorities so the
// server's registry has phase samples in each class.
func metricsTraffic(t *testing.T, c *Client) {
	t.Helper()
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p := preemptdb.Low
		if i%2 == 0 {
			p = preemptdb.High
		}
		key := []byte(fmt.Sprintf("k%d", i))
		if _, err := c.Txn(p, []ScriptOp{{Op: opPut, Table: "kv", Key: key, Value: []byte("v")}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMetricsOverWire: the Metrics frame round-trips the structured snapshot
// with per-class end-to-end samples intact.
func TestMetricsOverWire(t *testing.T) {
	c, _ := startServer(t, preemptdb.Config{})
	metricsTraffic(t, c)
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Hi.Total.Count == 0 || snap.Lo.Total.Count == 0 {
		t.Fatalf("snapshot missing end-to-end samples: hi=%d lo=%d",
			snap.Hi.Total.Count, snap.Lo.Total.Count)
	}
	if snap.Hi.Total.P99 < snap.Hi.Total.P50 || snap.Hi.Total.P50 <= 0 {
		t.Fatalf("hi total percentiles inconsistent: %+v", snap.Hi.Total)
	}
}

// TestPipelinedMetricsFrame: a Metrics frame pipelined in the middle of a
// batch of transaction frames gets its response in order, carrying a JSON
// document that decodes into the snapshot schema.
func TestPipelinedMetricsFrame(t *testing.T) {
	c, srv := startServer(t, preemptdb.Config{})
	metricsTraffic(t, c)

	conn, err := net.Dial("tcp", srv.lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const K = 8
	var batch bytes.Buffer
	for i := 0; i < K; i++ {
		key := []byte(fmt.Sprintf("p%d", i))
		frame := encodeScript(nil, 0, []ScriptOp{{Op: opPut, Table: "kv", Key: key, Value: []byte("v")}})
		if i == K/2 {
			frame = []byte{reqMetrics}
		}
		if err := writeFrame(&batch, frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < K; i++ {
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		status, msg, _, err := decodeResults(resp)
		if err != nil || status != statusOK {
			t.Fatalf("response %d: status=%d msg=%q err=%v", i, status, msg, err)
		}
		if i == K/2 {
			var snap metrics.RegistrySnapshot
			if err := json.Unmarshal([]byte(msg), &snap); err != nil {
				t.Fatalf("metrics response not JSON: %v", err)
			}
			if snap.Hi.Total.Count == 0 {
				t.Fatalf("pipelined metrics snapshot empty: %s", msg)
			}
		}
	}
}

// TestMalformedMetricsFrame: trailing bytes after the request kind yield a
// typed error frame — frame sync is intact, so the connection keeps serving.
func TestMalformedMetricsFrame(t *testing.T) {
	_, srv := startServer(t, preemptdb.Config{})

	conn, err := net.Dial("tcp", srv.lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := writeFrame(conn, []byte{reqMetrics, 0xAB}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	status, msg, _, err := decodeResults(resp)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusError || !strings.Contains(msg, ErrMalformed.Error()) {
		t.Fatalf("want typed malformed error, got status=%d msg=%q", status, msg)
	}

	// Same connection, valid frame: still served.
	if err := writeFrame(conn, []byte{reqMetrics}); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	status, msg, _, err = decodeResults(resp)
	if err != nil || status != statusOK {
		t.Fatalf("connection did not survive malformed frame: status=%d msg=%q err=%v", status, msg, err)
	}
	var snap metrics.RegistrySnapshot
	if err := json.Unmarshal([]byte(msg), &snap); err != nil {
		t.Fatalf("metrics after malformed frame not JSON: %v", err)
	}
}
