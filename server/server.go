package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"preemptdb"
)

// Server serves the PreemptDB wire protocol on a listener, executing each
// transaction script through the embedded DB's priority scheduler.
type Server struct {
	db  *preemptdb.DB
	lis net.Listener

	// fe is the sharded connection front-end (event loops, per-class edge
	// admission, zero-copy framing). Nil when Config.ConnShards < 0, which
	// selects the legacy goroutine-per-connection handler.
	fe *frontend
	// noPoller forces the portable read-pump path even where an OS event
	// loop is available; tests use it to cover both readiness mechanisms.
	noPoller bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level errors; defaults to log.Printf.
	Logf func(format string, args ...any)

	// IdleTimeout bounds how long a connection may sit without delivering a
	// complete request frame before the server drops it (default 2m;
	// negative disables). It also bounds how long a truncated frame can
	// wedge a connection.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (default 30s; negative
	// disables). A peer that stops reading cannot pin a handler goroutine.
	WriteTimeout time.Duration
}

// New wraps db in a network server; call Serve with a listener. Adjust
// IdleTimeout/WriteTimeout before the first connection arrives.
func New(db *preemptdb.DB) *Server {
	s := &Server{
		db:           db,
		conns:        make(map[net.Conn]struct{}),
		Logf:         log.Printf,
		IdleTimeout:  2 * time.Minute,
		WriteTimeout: 30 * time.Second,
	}
	if cfg := db.Config(); cfg.ConnShards >= 0 {
		s.fe = newFrontend(s, cfg.ConnShards)
	}
	return s
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") in a background
// goroutine and returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	if s.fe != nil {
		s.fe.start()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(lis)
	}()
	return lis.Addr(), nil
}

func (s *Server) serve(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.fe != nil {
			s.fe.adopt(conn)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	if s.fe != nil {
		s.fe.shutdown()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Buffered frame I/O plus a per-connection response scratch: a client
	// that pipelines K requests has its K responses accumulated in the write
	// buffer and flushed together once the read buffer drains — one write
	// syscall per batch instead of two per frame, and zero response
	// allocations once the scratch has grown to the working-set size.
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		frame, err := readFrame(br)
		if err != nil {
			// EOF, broken pipe, idle/truncated-frame timeout, or an
			// oversized length prefix: the byte stream is gone or no longer
			// trustworthy, so the connection cannot be kept.
			return
		}
		resp, err := s.dispatch(scratch[:0], frame)
		if err != nil {
			// Malformed payload inside a well-delimited frame: frame
			// boundaries are still in sync, so answer with a typed error
			// frame and keep serving the connection.
			resp = encodeResults(scratch[:0], statusError, err.Error(), nil)
		}
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		scratch = resp // keep the grown backing array for the next response
		// Flush only when no further complete request is already buffered:
		// mid-batch, the next response piggybacks on the same flush. (A
		// peer that stalls mid-frame holds its own earlier responses back,
		// but that is the pathological half-pipelined client, and
		// IdleTimeout still bounds it.)
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// dispatch parses and executes one request frame, appending the response
// payload to b (the connection's reusable scratch). A returned error means
// the frame was malformed.
func (s *Server) dispatch(b, frame []byte) ([]byte, error) {
	return s.dispatchMode(b, frame, false)
}

// dispatchMode is dispatch with an explicit decode mode. zeroCopy decodes
// script keys/values as subslices of frame — valid only when frame is
// immortal (the front-end's escape-copied batch frames), because the MVCC
// layer retains write values. The response bytes are identical either way.
func (s *Server) dispatchMode(b, frame []byte, zeroCopy bool) ([]byte, error) {
	r := &reader{frame}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch kind {
	case reqPing:
		return encodeResults(b, statusOK, "pong", nil), nil

	case reqCreateTable:
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		s.db.CreateTable(name)
		return encodeResults(b, statusOK, "", nil), nil

	case reqMetrics:
		if !r.empty() {
			return nil, fmt.Errorf("%w: trailing bytes after metrics request", ErrMalformed)
		}
		snap := s.db.Metrics()
		js, err := json.Marshal(&snap)
		if err != nil {
			return nil, fmt.Errorf("server: encoding metrics: %w", err)
		}
		return encodeResults(b, statusOK, string(js), nil), nil

	case reqSchedState:
		if !r.empty() {
			return nil, fmt.Errorf("%w: trailing bytes after sched-state request", ErrMalformed)
		}
		dbg := s.db.SchedState()
		js, err := json.Marshal(&dbg)
		if err != nil {
			return nil, fmt.Errorf("server: encoding sched state: %w", err)
		}
		return encodeResults(b, statusOK, string(js), nil), nil

	case reqStats:
		st := s.db.Stats()
		msg := fmt.Sprintf("commits=%d aborts=%d interrupts=%d passive=%d active=%d wal-failed=%t cache-hits=%d cache-misses=%d conns-shed=%d",
			st.Commits, st.Aborts, st.InterruptsSent, st.PassiveSwitches, st.ActiveSwitches, st.WALFailed,
			st.CacheHits, st.CacheMisses, st.ConnsShed)
		return encodeResults(b, statusOK, msg, nil), nil

	case reqTxn:
		prio, ops, err := decodeScriptMode(r, !zeroCopy)
		if err != nil {
			return nil, err
		}
		return s.runScript(b, prio, ops, 0), nil

	case reqTxnDeadline:
		micros, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prio, ops, err := decodeScriptMode(r, !zeroCopy)
		if err != nil {
			return nil, err
		}
		return s.runScript(b, prio, ops, time.Duration(micros)*time.Microsecond), nil

	case reqTxnTrace:
		traceID, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		micros, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prio, ops, err := decodeScriptMode(r, !zeroCopy)
		if err != nil {
			return nil, err
		}
		return s.runTracedScript(b, prio, ops, traceID, time.Duration(micros)*time.Microsecond), nil

	default:
		return nil, fmt.Errorf("%w: unknown request %d", ErrMalformed, kind)
	}
}

// runScript executes the ops atomically in one transaction at the given
// priority, with an optional relative timeout (0 = none) armed as the
// transaction's deadline. Per-op read misses are reported in-band
// (statusNotFound) without aborting; write errors abort the whole script.
// The response is appended to b.
func (s *Server) runScript(b []byte, prio uint8, ops []ScriptOp, timeout time.Duration) []byte {
	priority := preemptdb.Low
	if prio > 0 {
		priority = preemptdb.High
	}
	results := make([]OpResult, len(ops))
	err := s.db.ExecOpts(preemptdb.TxnOptions{Priority: priority, Timeout: timeout}, scriptFn(ops, results))
	return scriptResults(b, err, results)
}

// runTracedScript executes a script under an explicit trace id (0 = server
// assigns one) and, on success, ships the transaction's merged cross-shard
// Chrome trace export back in the response message. wait bounds how long the
// exporter polls for the transaction's events to land in the trace rings; an
// empty message on a statusOK response means tracing is disabled or the ring
// wrapped past the transaction before export.
func (s *Server) runTracedScript(b []byte, prio uint8, ops []ScriptOp, traceID uint64, wait time.Duration) []byte {
	priority := preemptdb.Low
	if prio > 0 {
		priority = preemptdb.High
	}
	results := make([]OpResult, len(ops))
	pending, err := s.db.SubmitOpts(preemptdb.TxnOptions{Priority: priority, TraceID: traceID},
		scriptFn(ops, results))
	if err == nil {
		traceID = pending.TraceID()
		err = pending.Wait()
	}
	if err != nil {
		return scriptResults(b, err, results)
	}
	if wait <= 0 {
		wait = 50 * time.Millisecond
	}
	trace, terr := s.db.TraceTxnWait(traceID, wait)
	if terr != nil {
		trace = nil
	}
	return encodeResults(b, statusOK, string(trace), results)
}

// scriptFn builds the transaction body executing ops into results.
func scriptFn(ops []ScriptOp, results []OpResult) func(tx *preemptdb.Txn) error {
	return func(tx *preemptdb.Txn) error {
		for i := range ops {
			op := &ops[i]
			res := &results[i]
			*res = OpResult{Status: statusOK}
			switch op.Op {
			case opGet:
				v, err := tx.Get(op.Table, op.Key)
				if preemptdb.IsNotFound(err) {
					res.Status = statusNotFound
				} else if err != nil {
					return err
				} else {
					res.Value = append([]byte(nil), v...)
				}
			case opInsert:
				if err := tx.Insert(op.Table, op.Key, op.Value); err != nil {
					return err
				}
			case opUpdate:
				if err := tx.Update(op.Table, op.Key, op.Value); err != nil {
					return err
				}
			case opPut:
				if err := tx.Put(op.Table, op.Key, op.Value); err != nil {
					return err
				}
			case opDelete:
				if err := tx.Delete(op.Table, op.Key); err != nil {
					return err
				}
			case opScan, opScanDesc:
				from, to := op.Key, op.Value
				if len(from) == 0 {
					from = nil
				}
				if len(to) == 0 {
					to = nil
				}
				emit := func(k, v []byte) bool {
					res.Keys = append(res.Keys, append([]byte(nil), k...))
					res.Values = append(res.Values, append([]byte(nil), v...))
					return op.Limit == 0 || uint32(len(res.Keys)) < op.Limit
				}
				var err error
				switch {
				case op.Op == opScan && op.Index == "":
					err = tx.Scan(op.Table, from, to, emit)
				case op.Op == opScan:
					err = tx.ScanIndex(op.Table, op.Index, from, to, emit)
				case op.Index == "":
					err = tx.ScanDesc(op.Table, from, to, emit)
				default:
					err = tx.ScanIndexDesc(op.Table, op.Index, from, to, emit)
				}
				if err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown op %d", op.Op)
			}
		}
		return nil
	}
}

// scriptResults maps a script outcome to its typed response frame.
func scriptResults(b []byte, err error, results []OpResult) []byte {
	switch {
	case err == nil:
		return encodeResults(b, statusOK, "", results)
	case preemptdb.IsDuplicateKey(err):
		return encodeResults(b, statusDuplicate, err.Error(), nil)
	case preemptdb.IsNotFound(err):
		return encodeResults(b, statusNotFound, err.Error(), nil)
	case preemptdb.IsDeadlineExceeded(err):
		return encodeResults(b, statusDeadline, err.Error(), nil)
	case preemptdb.IsCanceled(err):
		return encodeResults(b, statusCanceled, err.Error(), nil)
	case errors.Is(err, preemptdb.ErrQueueFull):
		return encodeResults(b, statusQueueFull, err.Error(), nil)
	case preemptdb.IsWALFailed(err):
		return encodeResults(b, statusReadOnly, err.Error(), nil)
	case preemptdb.IsConflict(err):
		return encodeResults(b, statusConflict, err.Error(), nil)
	default:
		return encodeResults(b, statusError, err.Error(), nil)
	}
}

// Errors surfaced by the client for non-OK response statuses.
var (
	ErrNotFound  = errors.New("server: not found")
	ErrDuplicate = errors.New("server: duplicate key")
	ErrConflict  = errors.New("server: transaction conflict")
	// ErrDeadlineExceeded: the transaction missed its wire-specified
	// deadline (shed while queued or canceled mid-flight on the server).
	ErrDeadlineExceeded = errors.New("server: transaction deadline exceeded")
	// ErrCanceled: the transaction was canceled on the server.
	ErrCanceled = errors.New("server: transaction canceled")
	// ErrQueueFull: the server rejected the request up front (scheduler
	// queues full or admission control).
	ErrQueueFull = errors.New("server: request rejected, queues full")
	// ErrReadOnly: the server's write-ahead log latched a permanent failure;
	// reads still succeed but every write is refused until the operator
	// restarts the server on a recovered data directory.
	ErrReadOnly = errors.New("server: database is read-only after a log failure")
)
