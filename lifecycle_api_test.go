package preemptdb

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func lifecycleDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("inv")
	if err := db.Run(func(tx *Txn) error {
		val := make([]byte, 32)
		for i := 0; i < rows; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(i))
			if err := tx.Insert("inv", k[:], val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecDeadlineUnwindsMidScan: a deadline set mid-flight cancels a running
// analytical transaction at its next poll; the typed error reaches the caller,
// the per-reason counter ticks, and the database keeps serving.
func TestExecDeadlineUnwindsMidScan(t *testing.T) {
	db := lifecycleDB(t, 20000)

	scans := 0
	err := db.ExecDeadline(Low, time.Now().Add(2*time.Millisecond), func(tx *Txn) error {
		for {
			if err := tx.Scan("inv", nil, nil, func(k, v []byte) bool { return true }); err != nil {
				return err
			}
			scans++
		}
	})
	if !IsDeadlineExceeded(err) {
		t.Fatalf("ExecDeadline err = %v", err)
	}
	if st := db.Stats(); st.AbortsDeadline < 1 {
		t.Fatalf("AbortsDeadline = %d", st.AbortsDeadline)
	}
	// The unwound transaction released its resources: the same worker context
	// serves a fresh full scan to completion.
	n := 0
	if err := db.Run(func(tx *Txn) error {
		return tx.Scan("inv", nil, nil, func(k, v []byte) bool { n++; return true })
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("scan after deadline abort saw %d rows", n)
	}
}

// TestSubmitOptsCancelMidFlight: Pending.Cancel from the submitting goroutine
// stops a running transaction with ErrCanceled; Cancel is idempotent.
func TestSubmitOptsCancelMidFlight(t *testing.T) {
	db := lifecycleDB(t, 5000)

	started := make(chan struct{})
	var once sync.Once
	p, err := db.SubmitOpts(TxnOptions{Priority: Low}, func(tx *Txn) error {
		for {
			if err := tx.Scan("inv", nil, nil, func(k, v []byte) bool {
				once.Do(func() { close(started) })
				return true
			}); err != nil {
				return err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("transaction never started")
	}
	p.Cancel()
	p.Cancel() // idempotent
	if err := p.Wait(); !IsCanceled(err) {
		t.Fatalf("Wait = %v", err)
	}
	if st := db.Stats(); st.AbortsCanceled < 1 {
		t.Fatalf("AbortsCanceled = %d", st.AbortsCanceled)
	}
	if err := db.Run(func(tx *Txn) error { return nil }); err != nil {
		t.Fatalf("db unusable after cancel: %v", err)
	}
}

// TestQueuedRequestShedAtDispatch: a request whose deadline expires while it
// waits behind a long transaction is dropped at dispatch without executing.
func TestQueuedRequestShedAtDispatch(t *testing.T) {
	db := openTest(t, Config{Workers: 1})

	started := make(chan struct{})
	gate := make(chan struct{})
	if err := db.Submit(Low, func(tx *Txn) error {
		close(started)
		<-gate
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-started

	var ran atomic.Bool
	p, err := db.SubmitOpts(TxnOptions{Priority: Low, Timeout: 2 * time.Millisecond}, func(tx *Txn) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // deadline passes while queued
	close(gate)
	if err := p.Wait(); !IsDeadlineExceeded(err) {
		t.Fatalf("Wait = %v", err)
	}
	if ran.Load() {
		t.Fatal("expired request executed")
	}
	st := db.Stats()
	if st.ShedExpired != 1 {
		t.Fatalf("ShedExpired = %d", st.ShedExpired)
	}
	if st.AbortsDeadline < 1 {
		t.Fatalf("AbortsDeadline = %d", st.AbortsDeadline)
	}
}

// TestPastDeadlineRejectedAtAdmission: a deadline already in the past is shed
// before it ever occupies queue capacity.
func TestPastDeadlineRejectedAtAdmission(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	_, err := db.SubmitOpts(TxnOptions{Deadline: time.Now().Add(-time.Second)}, func(tx *Txn) error {
		t.Error("dead-on-arrival request executed")
		return nil
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("SubmitOpts = %v", err)
	}
	st := db.Stats()
	if st.DeadlineRejected != 1 {
		t.Fatalf("DeadlineRejected = %d", st.DeadlineRejected)
	}
	if st.AbortsQueueFull != 1 {
		t.Fatalf("AbortsQueueFull = %d", st.AbortsQueueFull)
	}
}

// TestExecRetryDoesNotRetryNonRetryable: transaction-body errors and
// cancellations pass straight through.
func TestExecRetryDoesNotRetryNonRetryable(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	boom := errors.New("boom")
	attempts := 0
	if err := db.ExecRetry(Low, func(tx *Txn) error { attempts++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("ExecRetry = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("non-retryable error retried %d times", attempts)
	}
	if err := db.ExecRetry(High, func(tx *Txn) error { return nil }); err != nil {
		t.Fatalf("ExecRetry success path = %v", err)
	}
}

// TestTxnErrVisibleInsideTransaction: user code can poll tx.Err() to unwind
// cooperatively with its own cleanup instead of waiting for the next engine
// operation to fail.
func TestTxnErrVisibleInsideTransaction(t *testing.T) {
	db := lifecycleDB(t, 1)
	err := db.ExecOpts(TxnOptions{Timeout: time.Millisecond}, func(tx *Txn) error {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := tx.Get("inv", binary.BigEndian.AppendUint64(nil, 0)); err != nil {
				return err
			}
			if err := tx.Err(); err != nil {
				return err
			}
		}
		return errors.New("lifecycle error never became visible")
	})
	if !IsDeadlineExceeded(err) {
		t.Fatalf("ExecOpts = %v", err)
	}
}

// TestTypedErrorHelpers pins the classification helpers against wrapping.
func TestTypedErrorHelpers(t *testing.T) {
	wrapped := func(e error) error { return errors.Join(errors.New("outer"), e) }
	if !IsCanceled(wrapped(ErrCanceled)) || IsCanceled(wrapped(ErrDeadlineExceeded)) {
		t.Fatal("IsCanceled misclassifies")
	}
	if !IsDeadlineExceeded(wrapped(ErrDeadlineExceeded)) || IsDeadlineExceeded(nil) {
		t.Fatal("IsDeadlineExceeded misclassifies")
	}
	if !IsConflict(wrapped(ErrConflict)) {
		t.Fatal("IsConflict misses ErrConflict")
	}
}
