module preemptdb

go 1.23
