package preemptdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"preemptdb/internal/iofault"
)

// kvSchema is the deterministic schema callback file-backed tests reopen
// with: one table, one secondary index on the row's first byte.
func kvSchema(db *DB) error {
	db.CreateTable("kv")
	return db.CreateIndex("kv", "byFirst", func(key, row []byte) []byte {
		if len(row) == 0 {
			return nil
		}
		return row[:1]
	})
}

func openFile(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir, Config{Workers: 1, Schema: kvSchema, SyncEachCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func putKV(t *testing.T, db *DB, key, val string) {
	t.Helper()
	if err := db.Run(func(tx *Txn) error {
		return tx.Put("kv", []byte(key), []byte(val))
	}); err != nil {
		t.Fatal(err)
	}
}

func getKV(t *testing.T, db *DB, key string) (string, error) {
	t.Helper()
	var out string
	err := db.Run(func(tx *Txn) error {
		v, err := tx.Get("kv", []byte(key))
		out = string(v)
		return err
	})
	return out, err
}

func wantKV(t *testing.T, db *DB, key, val string) {
	t.Helper()
	got, err := getKV(t, db, key)
	if err != nil || got != val {
		t.Fatalf("kv[%s] = %q, %v; want %q", key, got, err, val)
	}
}

func TestOpenFileBackedRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db := openFile(t, dir)
	putKV(t, db, "a", "1")
	putKV(t, db, "b", "2")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openFile(t, dir)
	defer db2.Close()
	wantKV(t, db2, "a", "1")
	wantKV(t, db2, "b", "2")
	// The secondary index was rebuilt by replay through the schema callback.
	found := false
	if err := db2.Run(func(tx *Txn) error {
		return tx.ScanIndex("kv", "byFirst", []byte("2"), []byte("3"), func(k, v []byte) bool {
			found = string(v) == "2"
			return false
		})
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("secondary index not rebuilt by recovery")
	}
	// Appending after reopen continues the same stream.
	putKV(t, db2, "c", "3")
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := openFile(t, dir)
	defer db3.Close()
	for key, val := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		wantKV(t, db3, key, val)
	}
}

func TestOpenRecoversAcrossCheckpointAndTruncation(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Config{Workers: 1, Schema: kvSchema, SyncEachCommit: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		putKV(t, db, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	if err := db.CheckpointDisk(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		putKV(t, db, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	// A second checkpoint prunes down to two and truncates covered segments.
	if err := db.CheckpointDisk(); err != nil {
		t.Fatal(err)
	}
	putKV(t, db, "k30", "v30")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openFile(t, dir)
	defer db2.Close()
	for i := 0; i <= 30; i++ {
		wantKV(t, db2, fmt.Sprintf("k%02d", i)[:3], fmt.Sprintf("v%d", i))
	}
}

// findFiles returns data-directory entries matching the suffix.
func findFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// seedTwoCheckpoints builds a directory holding two checkpoints (older one
// covering k0..k9, newer also covering k10..k19) plus a log tail with k20.
func seedTwoCheckpoints(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db := openFile(t, dir)
	for i := 0; i < 10; i++ {
		putKV(t, db, fmt.Sprintf("k%02d", i), "old")
	}
	if err := db.CheckpointDisk(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		putKV(t, db, fmt.Sprintf("k%02d", i), "new")
	}
	if err := db.CheckpointDisk(); err != nil {
		t.Fatal(err)
	}
	putKV(t, db, "k20", "tail")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	cks := findFiles(t, dir, ".ckpt")
	if len(cks) != 2 {
		t.Fatalf("seeded %d checkpoints, want 2", len(cks))
	}
	return dir
}

func verifySeeded(t *testing.T, dir string) {
	t.Helper()
	db, err := Open(dir, Config{Workers: 1, Schema: kvSchema, SyncEachCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 20; i++ {
		want := "old"
		if i >= 10 {
			want = "new"
		}
		wantKV(t, db, fmt.Sprintf("k%02d", i), want)
	}
	wantKV(t, db, "k20", "tail")
}

func TestOpenFallsBackOnTruncatedCheckpoint(t *testing.T) {
	dir := seedTwoCheckpoints(t)
	cks := findFiles(t, dir, ".ckpt")
	newest := cks[len(cks)-1]
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	verifySeeded(t, dir)
}

func TestOpenFallsBackOnBitFlippedCheckpoint(t *testing.T) {
	dir := seedTwoCheckpoints(t)
	cks := findFiles(t, dir, ".ckpt")
	newest := cks[len(cks)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x08 // corrupt a payload byte: the CRC must catch it
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	verifySeeded(t, dir)
}

func TestOpenIgnoresCrashedCheckpointTemp(t *testing.T) {
	// A crash between writing the temp file and renaming it leaves a .tmp
	// the next Open must clear and never treat as a checkpoint.
	dir := seedTwoCheckpoints(t)
	cks := findFiles(t, dir, ".ckpt")
	newest := cks[len(cks)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "ckpt-ffffffffffffffff.ckpt.tmp")
	if err := os.WriteFile(tmp, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	verifySeeded(t, dir)
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("abandoned checkpoint temp file survived Open")
	}
}

func TestDBReadOnlyAfterWALFailure(t *testing.T) {
	sink := iofault.NewSink()
	db, err := Open("", Config{Workers: 1, Schema: kvSchema, LogSink: sink, SyncEachCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	putKV(t, db, "a", "1")
	if db.ReadOnly() {
		t.Fatal("healthy DB reports read-only")
	}

	sink.FailSync(2, nil) // next batch's sync fails and latches the log
	err = db.Exec(High, func(tx *Txn) error {
		return tx.Put("kv", []byte("b"), []byte("2"))
	})
	if !IsWALFailed(err) {
		t.Fatalf("commit over failed sync: %v, want IsWALFailed", err)
	}
	if !db.ReadOnly() {
		t.Fatal("DB not read-only after WAL failure")
	}

	// Reads keep working; later writes are refused with the typed error.
	wantKV(t, db, "a", "1")
	err = db.Exec(Low, func(tx *Txn) error {
		return tx.Put("kv", []byte("c"), []byte("3"))
	})
	if !IsWALFailed(err) {
		t.Fatalf("write on read-only DB: %v, want IsWALFailed", err)
	}

	st := db.Stats()
	if !st.WALFailed {
		t.Fatal("Stats.WALFailed not set")
	}
	if st.AbortsWALFailed < 2 {
		t.Fatalf("Stats.AbortsWALFailed = %d, want >= 2", st.AbortsWALFailed)
	}
	// CheckpointDisk is a disk operation: refused on an in-memory DB.
	if err := db.CheckpointDisk(); err == nil {
		t.Fatal("CheckpointDisk on an in-memory DB succeeded")
	}
}
