// Command quickstart shows the basic PreemptDB API: open a database, create
// tables and an index, run transactions at both priorities, scan, and read
// the engine statistics.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"preemptdb"
)

func main() {
	db, err := preemptdb.Open("", preemptdb.Config{
		Workers: 2,
		Policy:  preemptdb.PolicyPreempt,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema: an accounts table indexed by owner name.
	db.CreateTable("accounts")
	if err := db.CreateIndex("accounts", "byowner", func(key, row []byte) []byte {
		// Row layout: 8-byte balance followed by the owner name.
		return append([]byte(nil), row[8:]...)
	}); err != nil {
		log.Fatal(err)
	}

	account := func(id uint64) []byte { return binary.BigEndian.AppendUint64(nil, id) }
	row := func(balance uint64, owner string) []byte {
		return append(binary.BigEndian.AppendUint64(nil, balance), owner...)
	}

	// Load initial data on the calling goroutine (no scheduling involved).
	err = db.Run(func(tx *preemptdb.Txn) error {
		for i, owner := range []string{"alice", "bob", "carol"} {
			if err := tx.Insert("accounts", account(uint64(i+1)), row(100, owner)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// A high-priority transfer: runs through the scheduler and, under
	// PolicyPreempt, would interrupt any long-running low-priority work.
	err = db.Exec(preemptdb.High, func(tx *preemptdb.Txn) error {
		from, err := tx.Get("accounts", account(1))
		if err != nil {
			return err
		}
		to, err := tx.Get("accounts", account(2))
		if err != nil {
			return err
		}
		fb := binary.BigEndian.Uint64(from)
		tb := binary.BigEndian.Uint64(to)
		if fb < 25 {
			return fmt.Errorf("insufficient funds: %d", fb)
		}
		if err := tx.Update("accounts", account(1), row(fb-25, string(from[8:]))); err != nil {
			return err
		}
		return tx.Update("accounts", account(2), row(tb+25, string(to[8:])))
	})
	if err != nil {
		log.Fatal(err)
	}

	// A low-priority report: scan everything in key order.
	err = db.Exec(preemptdb.Low, func(tx *preemptdb.Txn) error {
		fmt.Println("account balances:")
		return tx.Scan("accounts", nil, nil, func(k, v []byte) bool {
			fmt.Printf("  #%d %-6s %d\n",
				binary.BigEndian.Uint64(k), v[8:], binary.BigEndian.Uint64(v[:8]))
			return true
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Point lookup through the secondary index.
	db.Run(func(tx *preemptdb.Txn) error {
		return tx.ScanIndex("accounts", "byowner", []byte("bob"), []byte("boc"),
			func(k, v []byte) bool {
				fmt.Printf("index lookup: bob has balance %d\n", binary.BigEndian.Uint64(v[:8]))
				return true
			})
	})

	st := db.Stats()
	fmt.Printf("stats: commits=%d aborts=%d interrupts=%d\n",
		st.Commits, st.Aborts, st.InterruptsSent)
}
