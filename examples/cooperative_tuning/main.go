// Command cooperative_tuning reproduces the paper's core argument against
// cooperative scheduling (§6.3, Figure 11) on the public API: the yield
// interval must be tuned per workload. Too coarse and high-priority latency
// explodes; too fine and the low-priority transactions pay for yields they
// do not need. PreemptDB needs no such knob.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"time"

	"preemptdb"
)

const rows = 40000

func key(i uint64) []byte { return binary.BigEndian.AppendUint64(nil, i) }

type outcome struct {
	label    string
	hiP50    time.Duration
	hiP99    time.Duration
	loPerSec float64
}

func run(policy preemptdb.Policy, yieldInterval uint64) outcome {
	db, err := preemptdb.Open("", preemptdb.Config{
		Workers:       1,
		Policy:        policy,
		YieldInterval: yieldInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.CreateTable("data")
	if err := db.Run(func(tx *preemptdb.Txn) error {
		val := make([]byte, 32)
		for i := uint64(0); i < rows; i++ {
			if err := tx.Insert("data", key(i), val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	lowDone := make(chan struct{})
	var scans int
	scan := func(tx *preemptdb.Txn) error {
		return tx.Scan("data", nil, nil, func(k, v []byte) bool { return true })
	}
	var resubmit func(error)
	resubmit = func(error) {
		scans++
		select {
		case <-stop:
			close(lowDone)
		default:
			db.Submit(preemptdb.Low, scan, resubmit)
		}
	}
	db.Submit(preemptdb.Low, scan, resubmit)
	time.Sleep(10 * time.Millisecond)

	var lats []time.Duration
	start := time.Now()
	for i := 0; i < 300; i++ {
		timing, err := db.ExecTimed(preemptdb.High, func(tx *preemptdb.Txn) error {
			_, err := tx.Get("data", key(uint64(i)%rows))
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		lats = append(lats, timing.Total)
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	close(stop)
	<-lowDone

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	label := policy.String()
	if policy == preemptdb.PolicyCooperative {
		label = fmt.Sprintf("Cooperative/%d", yieldInterval)
	}
	return outcome{
		label:    label,
		hiP50:    lats[len(lats)/2],
		hiP99:    lats[len(lats)*99/100],
		loPerSec: float64(scans) / elapsed,
	}
}

func main() {
	fmt.Println("Cooperative yield-interval tuning vs preemption (one worker)")
	fmt.Printf("%-20s %12s %12s %12s\n", "variant", "order p50", "order p99", "scans/s")
	var results []outcome
	for _, yi := range []uint64{100, 10000, 1000000} {
		results = append(results, run(preemptdb.PolicyCooperative, yi))
	}
	results = append(results, run(preemptdb.PolicyPreempt, 0))
	for _, r := range results {
		fmt.Printf("%-20s %12v %12v %12.1f\n", r.label,
			r.hiP50.Round(time.Microsecond), r.hiP99.Round(time.Microsecond), r.loPerSec)
	}
	fmt.Println("\nCoarse yields delay orders; fine yields tax every scan. PreemptDB")
	fmt.Println("gets low order latency at full scan throughput with no tuning knob.")
}
