// Command htap demonstrates the paper's headline scenario on the public
// API: long, low-priority analytical reports share workers with short,
// high-priority sales transactions. The report runs as a morsel-parallel
// scan, so idle workers steal pieces of it while every piece remains
// independently preemptible. It runs the same mixed workload under
// PolicyWait and PolicyPreempt and prints the high-priority latency
// distribution of each, reproducing the shape of the paper's Figure 1.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"sync/atomic"
	"time"

	"preemptdb"
)

const (
	rows      = 60000
	reportLen = 10 // analytical report = reportLen full scans
	orders    = 200
)

func key(i uint64) []byte { return binary.BigEndian.AppendUint64(nil, i) }

func runPolicy(policy preemptdb.Policy) (lat []time.Duration, scanned, restocks, stolen uint64) {
	db, err := preemptdb.Open("", preemptdb.Config{
		Workers: 4,
		Policy:  policy,
		// Background vacuum keeps the repeatedly-updated sales/inventory
		// version chains short for the duration of the mix.
		VacuumInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.CreateTable("sales")
	db.CreateTable("inventory")
	if err := db.Run(func(tx *preemptdb.Txn) error {
		val := make([]byte, 64)
		for i := uint64(0); i < rows; i++ {
			if err := tx.Insert("inventory", key(i), val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Keep an analytical report running at low priority for the whole
	// experiment: it scans the full inventory repeatedly (think: operational
	// reporting over fresh data). The report is self-perpetuating — its
	// completion callback (which runs on the worker) submits the next one —
	// so the worker is never idle waiting on a client goroutine.
	stop := make(chan struct{})
	reportDone := make(chan struct{})
	var rowsScanned atomic.Uint64
	report := func(tx *preemptdb.Txn) error {
		for r := 0; r < reportLen; r++ {
			// Morsel-parallel full scan: idle workers steal ranges of the
			// table and run them under the report's snapshot; the visit
			// function executes concurrently, hence the atomic counter.
			if err := tx.ParallelScan("inventory", nil, nil, 8, func(k, v []byte) bool {
				rowsScanned.Add(1)
				return true
			}); err != nil {
				return err
			}
		}
		return nil
	}
	var resubmit func(error)
	resubmit = func(error) {
		select {
		case <-stop:
			close(reportDone)
		default:
			db.Submit(preemptdb.Low, report, resubmit)
		}
	}
	db.Submit(preemptdb.Low, report, resubmit)

	// A restocking writer updates inventory rows the orders read: its
	// write-write conflicts with other updates are absorbed by ExecRetry's
	// bounded exponential backoff instead of surfacing to the operator.
	restockDone := make(chan struct{})
	go func() {
		defer close(restockDone)
		val := make([]byte, 64)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.ExecRetry(preemptdb.Low, func(tx *preemptdb.Txn) error {
				return tx.Put("inventory", key(i%rows), val)
			}); err != nil {
				log.Fatalf("restock: %v", err)
			}
			restocks++
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(20 * time.Millisecond) // let the report occupy the worker

	// Fire high-priority sales orders at a steady arrival rate and measure
	// the in-database end-to-end latency (worker-stamped: submission to
	// completion, the paper's metric).
	for i := 0; i < orders; i++ {
		oid := uint64(i)
		timing, err := db.ExecTimed(preemptdb.High, func(tx *preemptdb.Txn) error {
			item := key(oid % rows)
			if _, err := tx.Get("inventory", item); err != nil {
				return err
			}
			return tx.Put("sales", key(oid), item)
		})
		if err != nil {
			log.Fatalf("order %d: %v", i, err)
		}
		lat = append(lat, timing.Total)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	<-reportDone
	<-restockDone
	return lat, rowsScanned.Load(), restocks, db.Stats().MorselsStolen
}

func percentile(lat []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func main() {
	fmt.Println("HTAP mix: low-priority full-table reports + restocking writer + high-priority orders")
	fmt.Printf("%-10s %10s %10s %10s %14s %10s %8s\n", "policy", "p50", "p90", "p99", "report rows/s", "restocks", "stolen")
	for _, policy := range []preemptdb.Policy{preemptdb.PolicyWait, preemptdb.PolicyPreempt} {
		start := time.Now()
		lat, scanned, restocks, stolen := runPolicy(policy)
		elapsed := time.Since(start).Seconds()
		fmt.Printf("%-10s %10v %10v %10v %14.0f %10d %8d\n", policy,
			percentile(lat, 50).Round(time.Microsecond),
			percentile(lat, 90).Round(time.Microsecond),
			percentile(lat, 99).Round(time.Microsecond),
			float64(scanned)/elapsed, restocks, stolen)
	}
	fmt.Println("\nPreemptDB serves orders in microseconds-to-milliseconds while the")
	fmt.Println("morsel-parallel report keeps (almost) the same scan throughput —")
	fmt.Println("wait-based scheduling makes orders queue behind entire reports,")
	fmt.Println("and every stolen morsel is preempted independently.")
}
