// Command starvation demonstrates the starvation-prevention policy
// (paper §5, Figure 12): when high-priority traffic is heavy enough to
// monopolize the workers, the starvation threshold bounds how much of a
// paused low-priority transaction's lifetime may be stolen, trading
// high-priority throughput and latency for low-priority progress.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"preemptdb"
)

const (
	rows     = 40000
	batch    = 64 // high-priority orders generated per arrival interval
	interval = time.Millisecond
	duration = time.Second
)

func key(i uint64) []byte { return binary.BigEndian.AppendUint64(nil, i) }

func run(threshold float64) (reports, orders uint64, orderP50, orderP99 time.Duration) {
	db, err := preemptdb.Open("", preemptdb.Config{
		Workers:             1,
		Policy:              preemptdb.PolicyPreempt,
		HiQueueSize:         64,
		StarvationThreshold: threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.CreateTable("data")
	if err := db.Run(func(tx *preemptdb.Txn) error {
		val := make([]byte, 32)
		for i := uint64(0); i < rows; i++ {
			if err := tx.Insert("data", key(i), val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var stopped bool
	var lats []time.Duration
	var reportCount, orderCount uint64

	// Low-priority analytical reports, self-perpetuating so the worker is
	// never idle for lack of a client goroutine.
	scan := func(tx *preemptdb.Txn) error {
		return tx.Scan("data", nil, nil, func(k, v []byte) bool { return true })
	}
	var lowLoop func(error)
	lowLoop = func(error) {
		mu.Lock()
		reportCount++
		done := stopped
		mu.Unlock()
		if !done {
			db.Submit(preemptdb.Low, scan, lowLoop)
		}
	}
	db.Submit(preemptdb.Low, scan, lowLoop)

	// High-priority overload: a heavy batch of orders arrives at every
	// interval (the paper's driver design: the batch is pushed until queues
	// fill, the remainder is shed). Each order reads a range of records, so
	// the accepted volume alone can consume the worker.
	order := func(tx *preemptdb.Txn) error {
		n := 0
		return tx.Scan("data", key(0), nil, func(k, v []byte) bool {
			n++
			return n < 2000
		})
	}
	record := func(t preemptdb.Timing, err error) {
		mu.Lock()
		orderCount++
		lats = append(lats, t.Total)
		mu.Unlock()
	}
	ticker := time.NewTicker(interval)
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		for i := 0; i < batch; i++ {
			if db.SubmitTimed(preemptdb.High, order, record) != nil {
				break // queues full: shed the rest of the batch
			}
		}
		<-ticker.C
	}
	ticker.Stop()
	time.Sleep(20 * time.Millisecond) // drain in-flight work
	mu.Lock()
	stopped = true
	reports, orders = reportCount, orderCount
	sorted := append([]time.Duration(nil), lats...)
	mu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 0 {
		orderP50 = sorted[len(sorted)/2]
		orderP99 = sorted[len(sorted)*99/100]
	}
	return reports, orders, orderP50, orderP99
}

func main() {
	fmt.Printf("Starvation prevention under high-priority overload (%v per run)\n", duration)
	fmt.Printf("%-10s %10s %10s %12s %12s\n", "threshold", "reports", "orders", "order p50", "order p99")
	for _, thr := range []float64{0.000001, 0.25, 0.5, 0.75, 100} {
		label := fmt.Sprintf("%.2f", thr)
		if thr >= 1 {
			label = "off"
		}
		reports, orders, p50, p99 := run(thr)
		fmt.Printf("%-10s %10d %10d %12v %12v\n", label, reports, orders,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	}
	fmt.Println("\nLow thresholds keep the analytical reports flowing and throttle the")
	fmt.Println("order flood; with prevention off, orders consume the worker and the")
	fmt.Println("reports collapse — the paper's Figure 12 trade-off.")
}
