// Command network demonstrates PreemptDB's TCP layer: a server embedding
// the engine with PolicyPreempt, plus clients that run analytical scans at
// low priority while a latency-sensitive client executes atomic
// read-modify-write scripts at high priority.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"time"

	"preemptdb"
	"preemptdb/server"
)

const rows = 30000

func key(i uint64) []byte { return binary.BigEndian.AppendUint64(nil, i) }

func main() {
	db, err := preemptdb.Open("", preemptdb.Config{Workers: 1, Policy: preemptdb.PolicyPreempt})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("serving on", addr)

	// Load through the wire.
	loader, err := server.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer loader.Close()
	if err := loader.CreateTable("inventory"); err != nil {
		log.Fatal(err)
	}
	const chunk = 1000
	for base := uint64(0); base < rows; base += chunk {
		ops := make([]server.ScriptOp, 0, chunk)
		for i := base; i < base+chunk; i++ {
			ops = append(ops, server.InsertOp("inventory", key(i), []byte{1}))
		}
		if _, err := loader.Txn(preemptdb.Low, ops); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d rows over the wire\n", rows)

	// Analytical client: full-table scans at low priority, continuously.
	stop := make(chan struct{})
	scansDone := make(chan int)
	go func() {
		cl, err := server.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		n := 0
		for {
			select {
			case <-stop:
				scansDone <- n
				return
			default:
			}
			if _, _, err := cl.Scan("inventory", nil, nil, 0); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}()
	time.Sleep(50 * time.Millisecond)

	// Order client: atomic decrement-stock scripts at high priority.
	orders, err := server.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer orders.Close()
	var lats []time.Duration
	for i := 0; i < 100; i++ {
		item := key(uint64(i * 97 % rows))
		start := time.Now()
		res, err := orders.Txn(preemptdb.High, []server.ScriptOp{
			server.GetOp("inventory", item),
			server.PutOp("inventory", item, []byte{0}),
		})
		if err != nil {
			log.Fatal(err)
		}
		if server.NotFound(res[0]) {
			log.Fatal("item vanished")
		}
		lats = append(lats, time.Since(start))
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	scans := <-scansDone

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("orders: p50=%v p99=%v (round-trip incl. TCP)\n",
		lats[len(lats)/2].Round(time.Microsecond),
		lats[len(lats)*99/100].Round(time.Microsecond))
	fmt.Printf("analytical scans completed meanwhile: %d\n", scans)
	stats, _ := orders.Stats()
	fmt.Println("server stats:", stats)
}
