package preemptdb

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestKWayMultiplexedDB drives a 4-context-per-core database through the
// public API: concurrent low-priority read transactions whose B+tree
// descents hit real stall boundaries (so workers rotate among slots), with
// high-priority point reads preempting throughout, and verifies the
// interleave counters surface in Stats while everything still commits and
// the database closes cleanly.
func TestKWayMultiplexedDB(t *testing.T) {
	db := openTest(t, Config{
		Workers:         2,
		ContextsPerCore: 4,
		Policy:          PolicyPreempt,
		LoQueueSize:     32,
	})
	db.CreateTable("rows")
	const n = 4096
	if err := db.Run(func(tx *Txn) error {
		for i := 0; i < n; i++ {
			var k [4]byte
			binary.BigEndian.PutUint32(k[:], uint32(i))
			if err := tx.Insert("rows", k[:], k[:]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			err := db.Exec(Low, func(tx *Txn) error {
				// Hundreds of descents: enough stall boundaries to cross the
				// rotation interval several times per transaction.
				for i := 0; i < 600; i++ {
					var k [4]byte
					binary.BigEndian.PutUint32(k[:], uint32((g*131+i*17)%n))
					if _, err := tx.Get("rows", k[:]); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var k [4]byte
		binary.BigEndian.PutUint32(k[:], uint32(i))
		if err := db.Exec(High, func(tx *Txn) error {
			_, err := tx.Get("rows", k[:])
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	st := db.Stats()
	if st.Commits == 0 {
		t.Fatal("nothing committed")
	}
	if st.StallYields == 0 {
		t.Fatal("4-context cores never rotated at a stall boundary")
	}
	if st.InterleaveSwitches == 0 {
		t.Fatal("no stall-parked transaction was resumed")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultConfigNeverInterleaves pins the acceptance criterion that the
// default two-context configuration takes the exact pre-K-way path: the
// stall hook is never installed, so the counters stay zero even though the
// B+tree emits stall marks on every descent.
func TestDefaultConfigNeverInterleaves(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt})
	db.CreateTable("kv")
	if err := db.Run(func(tx *Txn) error {
		for i := 0; i < 512; i++ {
			var k [4]byte
			binary.BigEndian.PutUint32(k[:], uint32(i))
			if err := tx.Insert("kv", k[:], k[:]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Low, func(tx *Txn) error {
		for i := 0; i < 512; i++ {
			var k [4]byte
			binary.BigEndian.PutUint32(k[:], uint32(i))
			if _, err := tx.Get("kv", k[:]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.StallYields != 0 || st.InterleaveSwitches != 0 {
		t.Fatalf("default config interleaved: yields=%d switches=%d",
			st.StallYields, st.InterleaveSwitches)
	}
}
