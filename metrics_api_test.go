package preemptdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"preemptdb/internal/pcontext"
)

// metricsWorkload commits a few transactions at both priorities so every
// always-on surface has something to report.
func metricsWorkload(t *testing.T, db *DB) {
	t.Helper()
	db.CreateTable("kv")
	for i := 0; i < 8; i++ {
		p := Low
		if i%2 == 0 {
			p = High
		}
		key := []byte(fmt.Sprintf("k%d", i))
		if err := db.Exec(p, func(tx *Txn) error {
			return tx.Put("kv", key, []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDBMetricsSnapshot(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt})
	metricsWorkload(t, db)
	snap := db.Metrics()
	if snap.Hi.Total.Count == 0 || snap.Lo.Total.Count == 0 {
		t.Fatalf("missing end-to-end samples: hi=%d lo=%d",
			snap.Hi.Total.Count, snap.Lo.Total.Count)
	}
	for _, s := range []struct {
		name  string
		count uint64
	}{
		{"hi queue_wait", snap.Hi.QueueWait.Count},
		{"hi exec", snap.Hi.Exec.Count},
		{"lo queue_wait", snap.Lo.QueueWait.Count},
		{"lo exec", snap.Lo.Exec.Count},
	} {
		if s.count == 0 {
			t.Fatalf("no %s samples", s.name)
		}
	}
	if snap.Hi.Total.P50 <= 0 || snap.Hi.Total.P999 < snap.Hi.Total.P50 {
		t.Fatalf("hi total percentiles inconsistent: %+v", snap.Hi.Total)
	}
	// The snapshot must round-trip through JSON with its schema intact.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"hi"`, `"lo"`, `"wal_wait"`, `"uintr_delivery"`, `"p99_ns"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("metrics JSON missing %s", key)
		}
	}
}

func TestDBTraceSnapshot(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt})
	metricsWorkload(t, db)
	data, err := db.TraceSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := pcontext.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestTraceDisabledByConfig(t *testing.T) {
	db := openTest(t, Config{Workers: 1, TraceCapacity: -1})
	if _, err := db.TraceSnapshot(); err == nil {
		t.Fatal("TraceSnapshot must fail when tracing is disabled")
	}
}

func TestMetricsHTTPEndpoints(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt, MetricsAddr: "127.0.0.1:0"})
	metricsWorkload(t, db)
	addr := db.MetricsAddr()
	if addr == nil {
		t.Fatal("no metrics listener address")
	}
	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	prom, _ := get("/metrics")
	for _, want := range []string{
		"preemptdb_phase_latency_nanoseconds{class=\"hi\",phase=\"total\",quantile=\"0.5\"}",
		"preemptdb_uintr_delivery_nanoseconds_count",
		"preemptdb_commits_total",
		"preemptdb_interrupts_sent_total",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom[:min(len(prom), 2000)])
		}
	}

	js, ct := get("/metrics.json")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics.json content-type %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(js), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if _, ok := snap["uintr_delivery"]; !ok {
		t.Fatalf("/metrics.json missing uintr_delivery: %s", js)
	}

	tr, _ := get("/trace")
	if err := pcontext.ValidateChromeTrace([]byte(tr)); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
}

func TestMetricsListenerStopsOnClose(t *testing.T) {
	db, err := Open("", Config{Workers: 1, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := db.MetricsAddr().String()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics listener still serving after Close")
	}
}

func TestMetricsAddrBindFailure(t *testing.T) {
	db := openTest(t, Config{Workers: 1, MetricsAddr: "127.0.0.1:0"})
	// Binding the same concrete port again must fail and not leak a half-open DB.
	if _, err := Open("", Config{Workers: 1, MetricsAddr: db.MetricsAddr().String()}); err == nil {
		t.Fatal("expected bind failure on occupied port")
	}
}
