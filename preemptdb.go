// Package preemptdb is a memory-optimized, multi-versioned database engine
// with preemptive transaction scheduling via (simulated) userspace
// interrupts — a Go reproduction of "Low-Latency Transaction Scheduling via
// Userspace Interrupts: Why Wait or Yield When You Can Preempt?" (SIGMOD
// 2025).
//
// A DB owns a set of worker cores, each hosting two transaction contexts.
// Transactions are submitted with a priority; under PolicyPreempt, a
// high-priority transaction interrupts an in-progress low-priority one at
// the next instruction boundary, runs on the worker's second context, and
// then resumes the paused transaction — it is paused, never aborted.
//
// Quick start:
//
//	db, _ := preemptdb.Open("", preemptdb.Config{Policy: preemptdb.PolicyPreempt})
//	defer db.Close()
//	db.CreateTable("kv")
//	db.Run(func(tx *preemptdb.Txn) error {
//	    return tx.Insert("kv", []byte("k"), []byte("v"))
//	})
//	err := db.Exec(preemptdb.High, func(tx *preemptdb.Txn) error {
//	    v, err := tx.Get("kv", []byte("k"))
//	    _ = v
//	    return err
//	})
package preemptdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"preemptdb/internal/admission"
	"preemptdb/internal/clock"
	"preemptdb/internal/engine"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/sched"
	"preemptdb/internal/store"
	"preemptdb/internal/wal"
)

// Policy selects the scheduling discipline (paper §6.1's competing methods).
type Policy uint8

// Scheduling policies.
const (
	// PolicyWait runs transactions to completion; high-priority requests
	// wait for the running transaction (non-preemptive FIFO with a priority
	// queue checked between transactions).
	PolicyWait Policy = iota
	// PolicyCooperative yields to pending high-priority work every
	// YieldInterval record accesses.
	PolicyCooperative
	// PolicyCooperativeHandcrafted yields only at workload-placed
	// Txn.Yield() calls.
	PolicyCooperativeHandcrafted
	// PolicyPreempt is PreemptDB: user interrupts preempt low-priority
	// transactions at instruction granularity.
	PolicyPreempt
)

func (p Policy) String() string { return p.toSched().String() }

func (p Policy) toSched() sched.Policy {
	switch p {
	case PolicyCooperative:
		return sched.PolicyCooperative
	case PolicyCooperativeHandcrafted:
		return sched.PolicyCooperativeHandcrafted
	case PolicyPreempt:
		return sched.PolicyPreempt
	default:
		return sched.PolicyWait
	}
}

// Isolation selects the transaction isolation level.
type Isolation uint8

// Isolation levels.
const (
	// SnapshotIsolation is the default (the paper's baseline, §2.2).
	SnapshotIsolation Isolation = iota
	// ReadCommitted reads the newest committed version at each access.
	ReadCommitted
	// Serializable adds OCC read-set validation at commit.
	Serializable
)

func (i Isolation) toMVCC() mvcc.IsolationLevel {
	switch i {
	case ReadCommitted:
		return mvcc.ReadCommitted
	case Serializable:
		return mvcc.Serializable
	default:
		return mvcc.SnapshotIsolation
	}
}

// Priority classifies a submitted transaction.
type Priority uint8

// Priorities. The paper's design generalizes to more levels via additional
// contexts; two are implemented, as evaluated.
const (
	Low Priority = iota
	High
)

// Config controls Open.
type Config struct {
	// Workers is the number of simulated cores. Default: 2.
	Workers int
	// Policy is the scheduling discipline. Default PolicyWait.
	Policy Policy
	// Isolation is the isolation level for all transactions.
	Isolation Isolation
	// HiQueueSize / LoQueueSize size the per-worker request queues
	// (defaults 4 and 64).
	HiQueueSize, LoQueueSize int
	// YieldInterval is the cooperative yield period in record accesses
	// (default 10000).
	YieldInterval uint64
	// StarvationThreshold bounds the fraction of a paused low-priority
	// transaction's lifetime spent on high-priority work (default 100,
	// i.e. effectively unbounded; see paper §5).
	StarvationThreshold float64
	// MaxRetries bounds automatic conflict retries in Exec/Submit/Run
	// (default 100).
	MaxRetries int
	// LogSink receives the redo log (nil: in-memory only). Ignored when the
	// database is opened on a directory — the segmented WAL is the sink then.
	LogSink io.Writer
	// Schema recreates the database's tables and secondary indexes (via
	// CreateTable/CreateIndex) on a freshly constructed DB. File-backed
	// recovery calls it before restoring a checkpoint or replaying the WAL —
	// index extractors are code, not data, so the schema cannot be recovered
	// from disk and must be re-declared deterministically (table IDs follow
	// CreateTable order). In-memory opens call it too, as a convenience, so
	// one Config works for both modes. Required to reopen any non-empty
	// file-backed database.
	Schema func(db *DB) error
	// SegmentBytes is the WAL segment rotation size for file-backed
	// databases (default 64 MiB). Segments only rotate at group-commit batch
	// boundaries, so a frame never spans two files.
	SegmentBytes int64
	// SyncEachCommit makes every commit wait for its group-commit batch to
	// be flushed (and synced, when the sink supports it) before returning.
	SyncEachCommit bool
	// MaxBatchBytes caps how many framed bytes a group-commit leader
	// gathers into one batch (0: unbounded).
	MaxBatchBytes int
	// MaxBatchDelay bounds the extra latency a group-commit leader spends
	// gathering followers before writing its batch (0: write as soon as the
	// previous batch's I/O completes).
	MaxBatchDelay time.Duration
	// VacuumInterval, when non-zero, enables background incremental
	// garbage collection of record version chains at that period.
	VacuumInterval time.Duration
	// AdmissionRate, when > 0, caps the admitted request rate
	// (requests/second, token bucket of AdmissionBurst tokens).
	AdmissionRate float64
	// AdmissionBurst is the token-bucket burst for AdmissionRate (default 1).
	AdmissionBurst int
	// MaxInFlight, when > 0, caps admitted-but-unfinished requests.
	MaxInFlight int
	// MetricsAddr, when non-empty, starts an HTTP listener (e.g.
	// "127.0.0.1:9090") serving /metrics (Prometheus text exposition),
	// /metrics.json (the DB.Metrics snapshot), and /trace (Chrome trace-event
	// JSON, loadable in Perfetto). The listener stops on Close; the bound
	// address is available from DB.MetricsAddr (useful with ":0").
	MetricsAddr string
	// TraceCapacity sizes the per-core scheduling-trace rings (default 4096
	// events per core; negative disables tracing).
	TraceCapacity int
}

// ErrClosed reports use of a closed DB.
var ErrClosed = errors.New("preemptdb: database closed")

// ErrQueueFull reports that a request was rejected up front: every
// scheduling queue was full, or admission control shed it (rate, in-flight
// cap, or a deadline that cannot be met given the observed queue delay).
var ErrQueueFull = errors.New("preemptdb: all scheduling queues full")

// ErrConflict marks a transaction that failed with a concurrency conflict
// after exhausting its automatic retry budget. The underlying engine error
// is wrapped alongside it.
var ErrConflict = errors.New("preemptdb: transaction conflict")

// ErrCanceled reports a transaction canceled by its submitter (via
// Pending.Cancel). It unwinds mid-flight at the next poll.
var ErrCanceled = pcontext.ErrCanceled

// ErrDeadlineExceeded reports a transaction that missed its deadline: shed
// while queued, rejected at admission, or canceled mid-flight at the first
// poll past the deadline.
var ErrDeadlineExceeded = pcontext.ErrDeadlineExceeded

// ErrWALFailed reports that the write-ahead log latched a permanent I/O
// failure. The database degrades to read-only: reads and scans keep working
// off the in-memory versions, while every write operation and commit fails
// fast with an error wrapping this one. The first error also wraps the root
// I/O cause.
var ErrWALFailed = wal.ErrWALFailed

// IsConflict reports whether err was a concurrency conflict (these are
// retried automatically up to MaxRetries; seeing one from Exec means the
// budget was exhausted).
func IsConflict(err error) bool {
	return engine.IsConflict(err) || errors.Is(err, ErrConflict)
}

// IsCanceled reports whether err means the transaction was canceled by its
// submitter.
func IsCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// IsDeadlineExceeded reports whether err means the transaction missed its
// deadline.
func IsDeadlineExceeded(err error) bool { return errors.Is(err, ErrDeadlineExceeded) }

// IsWALFailed reports whether err means the write-ahead log has failed and
// the database is read-only.
func IsWALFailed(err error) bool { return errors.Is(err, ErrWALFailed) }

// DB is a PreemptDB instance.
type DB struct {
	cfg    Config
	eng    *engine.Engine
	sch    *sched.Scheduler
	adm    *admission.Controller
	aborts metrics.AbortCounters
	// rrLow round-robins low-priority submissions across workers; atomic
	// because concurrent submitters (e.g. server connections) share it.
	rrLow  atomic.Uint32
	closed bool
	// dir and dlog are set on file-backed databases: the data directory and
	// the segmented WAL log the engine appends to.
	dir  *store.Dir
	dlog *store.Log
	// ckMu serializes CheckpointDisk: concurrent calls would race the
	// write/prune/truncate sequence over the same directory listing.
	ckMu sync.Mutex
	// ctxPool recycles detached contexts for Run so repeated loader/admin
	// calls reuse one oracle slot and one pooled transaction instead of
	// registering a fresh slot per call.
	ctxPool sync.Pool
	// reg is the phase-latency registry shared by the scheduler and the
	// engine; msrv/mln are the optional MetricsAddr HTTP export listener.
	reg  *metrics.Registry
	msrv *http.Server
	mln  net.Listener
}

// Open creates a database and starts its workers.
//
// dir selects the durability mode. "" runs purely in memory (Config.LogSink,
// when set, still receives the redo stream). A path names a data directory:
// Open creates it if missing, recovers the existing state — newest valid
// checkpoint plus WAL replay, falling back to an older checkpoint when the
// newest fails verification — truncates any torn tail left by a crash, and
// resumes appending to the segmented WAL exactly where the verified stream
// ends. Config.Schema must recreate the schema for recovery to apply the
// replayed records; set Config.SyncEachCommit for commits to be durable at
// the moment they return.
func Open(dir string, cfg Config) (*DB, error) {
	if dir == "" {
		db, err := newDB(cfg, nil)
		if err != nil {
			return nil, err
		}
		if cfg.Schema != nil {
			if err := cfg.Schema(db); err != nil {
				db.Close()
				return nil, err
			}
		}
		return db, nil
	}
	d, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	cks, err := d.Checkpoints()
	if err != nil {
		return nil, err
	}
	// Recovery candidates, newest checkpoint first, ending with "no
	// checkpoint" (replay the whole log from LSN 0). A candidate that fails
	// verification anywhere — checkpoint CRC, mid-stream log corruption, a
	// checkpoint whose LSN the log never durably reached — is abandoned
	// wholesale and the next one tried from a fresh engine, so partial
	// restore state never leaks into the opened database.
	var errs []error
	for i := len(cks); i >= 0; i-- {
		var ck *store.Checkpoint
		if i > 0 {
			ck = &cks[i-1]
		}
		db, err := tryOpenDir(d, cfg, ck)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		return db, nil
	}
	return nil, fmt.Errorf("preemptdb: open %s: %w", dir, errors.Join(errs...))
}

// newDB builds the database around its engine, scheduler, and admission
// controller. dlog, when non-nil, becomes the engine's log sink (file-backed
// mode); it is still unpositioned, so constructing the engine writes nothing.
func newDB(cfg Config, dlog *store.Log) (*DB, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.LoQueueSize == 0 {
		cfg.LoQueueSize = 64
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 100
	}
	sink := cfg.LogSink
	if dlog != nil {
		sink = dlog
	}
	// One registry across the engine and the scheduler, so DB.Metrics reports
	// the full per-phase decomposition (scheduler phases + WAL wait) in one
	// snapshot.
	reg := metrics.NewRegistry()
	eng := engine.New(engine.Config{
		Isolation:      cfg.Isolation.toMVCC(),
		LogSink:        sink,
		SyncEachCommit: cfg.SyncEachCommit,
		MaxBatchBytes:  cfg.MaxBatchBytes,
		MaxBatchDelay:  cfg.MaxBatchDelay,
		VacuumInterval: cfg.VacuumInterval,
		Metrics:        reg,
	})
	s := sched.New(sched.Config{
		Policy:              cfg.Policy.toSched(),
		Workers:             cfg.Workers,
		HiQueueSize:         cfg.HiQueueSize,
		LoQueueSize:         cfg.LoQueueSize,
		YieldInterval:       cfg.YieldInterval,
		StarvationThreshold: cfg.StarvationThreshold,
		Metrics:             reg,
		TraceCapacity:       cfg.TraceCapacity,
	})
	s.Start()
	// The admission controller is always present: with the rate and
	// in-flight knobs at zero it admits everything, but it still tracks the
	// queue-delay estimate that lets AdmitDeadline shed doomed requests.
	adm := admission.New(cfg.AdmissionRate, cfg.AdmissionBurst, cfg.MaxInFlight)
	db := &DB{cfg: cfg, eng: eng, sch: s, adm: adm, dlog: dlog, reg: reg}
	if cfg.MetricsAddr != "" {
		if err := db.startMetricsServer(cfg.MetricsAddr); err != nil {
			db.Close()
			return nil, fmt.Errorf("preemptdb: metrics listener: %w", err)
		}
	}
	return db, nil
}

// tryOpenDir attempts a full file-backed open against one recovery candidate
// (a checkpoint, or nil for log-only replay). Any failure closes the
// half-recovered database and is reported to the caller for fallback.
func tryOpenDir(d *store.Dir, cfg Config, ck *store.Checkpoint) (*DB, error) {
	db, err := newDB(cfg, d.NewLog(cfg.SegmentBytes))
	if err != nil {
		return nil, err
	}
	db.dir = d
	if err := db.recoverDir(ck); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// recoverDir rebuilds the in-memory state from ck (when non-nil) plus the WAL
// suffix past it, truncates the log's torn tail, and positions the segmented
// log and the LSN counter at the verified stream end.
func (db *DB) recoverDir(ck *store.Checkpoint) error {
	if db.cfg.Schema != nil {
		if err := db.cfg.Schema(db); err != nil {
			return err
		}
	}
	start := uint64(0)
	if ck != nil {
		f, err := os.Open(ck.Path)
		if err != nil {
			return err
		}
		err = db.eng.RestoreCheckpoint(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return fmt.Errorf("checkpoint at LSN %d: %w", ck.LSN, err)
		}
		start = ck.LSN
	}
	r, err := db.dir.OpenReplay(start)
	if err != nil {
		return err
	}
	res, rerr := db.eng.Recover(r)
	r.Close()
	if rerr != nil {
		return fmt.Errorf("replay from LSN %d: %w", start, rerr)
	}
	validEnd := start + res.Offset
	if err := db.dir.TruncateTail(validEnd); err != nil {
		return err
	}
	// Reposition also cross-checks validEnd against the on-disk stream: a
	// checkpoint whose LSN the log never durably reached fails here and falls
	// back to an older candidate.
	if err := db.dlog.Reposition(validEnd); err != nil {
		return err
	}
	db.eng.Log().SetLSN(validEnd)
	return nil
}

// Close stops the workers, releases their engine resources (oracle slots,
// CLS buffers), stops the background vacuum, and flushes the log. In-flight
// transactions finish; queued but unstarted requests are dropped.
func (db *DB) Close() error {
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	db.stopMetricsServer()
	db.sch.Stop()
	for _, w := range db.sch.Workers() {
		for i := 0; i < w.Core().NumContexts(); i++ {
			db.eng.DetachContext(w.Core().Context(i))
		}
	}
	err := db.eng.Close()
	if db.dlog != nil {
		// The engine's close flushed the WAL manager into the segmented log;
		// close the log file after it.
		if cerr := db.dlog.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CreateTable creates a table (idempotent).
func (db *DB) CreateTable(name string) {
	db.eng.CreateTable(name)
}

// CreateIndex adds a secondary index computed by extract (see
// engine.KeyExtractor semantics: non-unique, keys must be immutable per
// row). Create indexes before inserting rows.
func (db *DB) CreateIndex(table, index string, extract func(key, row []byte) []byte) error {
	t, err := db.eng.Table(table)
	if err != nil {
		return err
	}
	t.CreateIndex(index, extract)
	return nil
}

// Run executes fn as a transaction on the calling goroutine, outside the
// scheduler — for loading, admin, and tests. Conflicts retry automatically;
// fn returning nil commits, anything else aborts and is returned.
func (db *DB) Run(fn func(tx *Txn) error) error {
	ctx, _ := db.ctxPool.Get().(*pcontext.Context)
	if ctx == nil {
		ctx = pcontext.Detached()
	}
	defer db.ctxPool.Put(ctx)
	return db.runOn(ctx, fn)
}

func (db *DB) runOn(ctx *pcontext.Context, fn func(tx *Txn) error) error {
	var err error
	for attempt := 0; attempt < db.cfg.MaxRetries; attempt++ {
		// Canceled or past deadline: further retries cannot succeed — every
		// new attempt would unwind at its first poll anyway.
		if lcErr := ctx.Err(); lcErr != nil {
			return lcErr
		}
		err = db.attempt(ctx, fn)
		if err == nil || !engine.IsConflict(err) {
			return err
		}
	}
	return fmt.Errorf("%w: %w", ErrConflict, err)
}

func (db *DB) attempt(ctx *pcontext.Context, fn func(tx *Txn) error) error {
	inner := db.eng.Begin(ctx)
	tx := &Txn{db: db, inner: inner, ctx: ctx}
	defer inner.Abort()
	if err := fn(tx); err != nil {
		return err
	}
	return inner.Commit()
}

// TxnOptions carries per-request lifecycle options. The zero value means
// "low priority, no deadline".
type TxnOptions struct {
	// Priority classifies the request (default Low).
	Priority Priority
	// Deadline is an absolute wall-clock instant after which the result is
	// worthless (zero = none). An expired request is shed at admission or
	// dispatch, and canceled mid-flight at the first poll past the deadline;
	// either way the submitter sees ErrDeadlineExceeded (shed at admission
	// reports ErrQueueFull from Submit itself).
	Deadline time.Time
	// Timeout is a relative deadline measured from submission (0 = none).
	// When both are set the earlier instant wins.
	Timeout time.Duration
}

// deadlineNanos converts the options' deadline to the scheduler's absolute
// clock.Nanos domain (0 = none). An already-past deadline maps to the oldest
// representable armed instant so it still reads as expired, not as "none".
func (o TxnOptions) deadlineNanos() int64 {
	pick := func(rel time.Duration) int64 {
		n := clock.Nanos() + int64(rel)
		if n < 1 {
			n = 1
		}
		return n
	}
	var d int64
	if !o.Deadline.IsZero() {
		d = pick(time.Until(o.Deadline))
	}
	if o.Timeout > 0 {
		if t := pick(o.Timeout); d == 0 || t < d {
			d = t
		}
	}
	return d
}

// Pending is a handle to a submitted-but-unfinished request.
type Pending struct {
	req *sched.Request
	ch  chan error
}

// Cancel asks the request's transaction to stop: still-queued requests are
// shed before execution, a running one unwinds with ErrCanceled at its next
// poll. Safe to call from any goroutine, repeatedly, and after completion.
// Cancel does not wait; the outcome still arrives through Wait/Done.
func (p *Pending) Cancel() { p.req.Cancel() }

// Wait blocks until the request finishes and returns its outcome. Call it
// at most once (use Done for multi-consumer patterns).
func (p *Pending) Wait() error { return <-p.ch }

// Done exposes the single-delivery outcome channel.
func (p *Pending) Done() <-chan error { return p.ch }

// classify buckets a finished request's error into the per-reason abort
// counters surfaced by Stats.
func (db *DB) classify(err error) {
	switch {
	case err == nil:
	case errors.Is(err, ErrDeadlineExceeded):
		db.aborts.Inc(metrics.AbortDeadline)
	case errors.Is(err, ErrCanceled):
		db.aborts.Inc(metrics.AbortCanceled)
	case IsWALFailed(err):
		db.aborts.Inc(metrics.AbortWALFailed)
	case IsConflict(err):
		db.aborts.Inc(metrics.AbortConflict)
	case errors.Is(err, ErrQueueFull):
		db.aborts.Inc(metrics.AbortQueueFull)
	default:
		db.aborts.Inc(metrics.AbortOther)
	}
}

// submit is the single scheduling entry point every public Submit/Exec
// variant funnels through: admission, lifecycle wiring, dispatch, and
// per-reason accounting in one place.
func (db *DB) submit(p Priority, deadline int64, fn func(tx *Txn) error, onDone func(*sched.Request)) (*sched.Request, error) {
	if db.closed {
		return nil, ErrClosed
	}
	if !db.adm.AdmitDeadline(deadline) {
		db.aborts.Inc(metrics.AbortQueueFull)
		return nil, ErrQueueFull
	}
	req := &sched.Request{
		Deadline: deadline,
		Work: func(ctx *pcontext.Context) error {
			return db.runOn(ctx, fn)
		},
	}
	req.OnDone = func(r *sched.Request) {
		db.adm.ObserveQueueDelay(r.SchedulingLatency())
		db.adm.Release()
		db.classify(r.Err)
		if onDone != nil {
			onDone(r)
		}
	}
	ok := false
	if p == High {
		ok = db.sch.SubmitHighBatch([]*sched.Request{req}) == 1
	} else {
		for i := 0; i < db.cfg.Workers && !ok; i++ {
			wid := int(db.rrLow.Add(1)) % db.cfg.Workers
			ok = db.sch.SubmitLow(wid, req)
		}
	}
	if !ok {
		db.adm.Release()
		db.aborts.Inc(metrics.AbortQueueFull)
		return nil, ErrQueueFull
	}
	return req, nil
}

// Submit schedules fn as a transaction with the given priority and returns
// immediately; done (optional) receives the outcome on a worker goroutine.
// High-priority submissions trigger a user interrupt under PolicyPreempt.
// It fails with ErrQueueFull when every worker's queue is full.
func (db *DB) Submit(p Priority, fn func(tx *Txn) error, done func(error)) error {
	var onDone func(*sched.Request)
	if done != nil {
		onDone = func(r *sched.Request) { done(r.Err) }
	}
	_, err := db.submit(p, 0, fn, onDone)
	return err
}

// SubmitOpts schedules fn with per-request lifecycle options and returns a
// Pending handle for waiting on — or canceling — the request.
func (db *DB) SubmitOpts(opts TxnOptions, fn func(tx *Txn) error) (*Pending, error) {
	ch := make(chan error, 1)
	req, err := db.submit(opts.Priority, opts.deadlineNanos(), fn, func(r *sched.Request) {
		ch <- r.Err
	})
	if err != nil {
		return nil, err
	}
	return &Pending{req: req, ch: ch}, nil
}

// Exec schedules fn like Submit and waits for it to finish, returning the
// transaction's outcome.
func (db *DB) Exec(p Priority, fn func(tx *Txn) error) error {
	ch := make(chan error, 1)
	if err := db.Submit(p, fn, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// ExecOpts is Exec with per-request lifecycle options.
func (db *DB) ExecOpts(opts TxnOptions, fn func(tx *Txn) error) error {
	pending, err := db.SubmitOpts(opts, fn)
	if err != nil {
		return err
	}
	return pending.Wait()
}

// ExecDeadline schedules fn with an absolute deadline and waits for the
// outcome. A request whose deadline passes before it runs is shed (at
// admission or dispatch) without executing; one already running is canceled
// at its next poll and unwinds with ErrDeadlineExceeded, releasing its
// pooled transaction, oracle slot, and log buffer.
func (db *DB) ExecDeadline(p Priority, deadline time.Time, fn func(tx *Txn) error) error {
	return db.ExecOpts(TxnOptions{Priority: p, Deadline: deadline}, fn)
}

// ExecRetry is Exec wrapped in a bounded retry loop for transient rejection:
// conflict-budget exhaustion and full queues back off exponentially (with
// jitter, capped at ~1ms) before retrying on the submitting goroutine. All
// other outcomes — including deadline and cancellation — return immediately.
func (db *DB) ExecRetry(p Priority, fn func(tx *Txn) error) error {
	const (
		maxAttempts = 16
		baseBackoff = 20 * time.Microsecond
		maxBackoff  = time.Millisecond
	)
	backoff := baseBackoff
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err = db.Exec(p, fn)
		if err == nil || !(IsConflict(err) || errors.Is(err, ErrQueueFull)) {
			return err
		}
		// Full jitter: sleep a uniform fraction of the current backoff so
		// retrying submitters decorrelate instead of colliding again.
		time.Sleep(time.Duration(rand.Int64N(int64(backoff)) + 1))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	return err
}

// Timing reports a transaction's worker-stamped latencies: Scheduling is
// submission → first execution, Total is submission → completion. These are
// the in-database latencies the paper measures; they exclude the time the
// *submitting goroutine* waits to be rescheduled by the Go runtime, which on
// an oversubscribed host can dwarf the database's own latency.
type Timing struct {
	Scheduling time.Duration
	Total      time.Duration
}

// SubmitTimed is Submit with a done callback that also receives the
// worker-stamped Timing. The callback runs on a worker goroutine.
func (db *DB) SubmitTimed(p Priority, fn func(tx *Txn) error, done func(Timing, error)) error {
	var onDone func(*sched.Request)
	if done != nil {
		onDone = func(r *sched.Request) {
			done(Timing{
				Scheduling: time.Duration(r.SchedulingLatency()),
				Total:      time.Duration(r.Latency()),
			}, r.Err)
		}
	}
	_, err := db.submit(p, 0, fn, onDone)
	return err
}

// ExecTimed is Exec plus worker-stamped timing.
func (db *DB) ExecTimed(p Priority, fn func(tx *Txn) error) (Timing, error) {
	type outcome struct {
		timing Timing
		err    error
	}
	ch := make(chan outcome, 1)
	err := db.SubmitTimed(p, fn, func(t Timing, err error) {
		ch <- outcome{timing: t, err: err}
	})
	if err != nil {
		return Timing{}, err
	}
	out := <-ch
	return out.timing, out.err
}

// Vacuum trims record version chains no active snapshot can reach and
// returns the number of versions reclaimed.
func (db *DB) Vacuum() int { return db.eng.Vacuum(pcontext.Detached()) }

// Checkpoint writes a transactionally consistent snapshot of all tables to
// w. Restoring it and replaying a redo log started at checkpoint time
// reproduces the database; see RestoreCheckpoint.
func (db *DB) Checkpoint(w io.Writer) error { return db.eng.Checkpoint(w) }

// RestoreCheckpoint loads a checkpoint stream produced by Checkpoint into
// this database. Tables and indexes must already be created, matching the
// schema at checkpoint time.
func (db *DB) RestoreCheckpoint(r io.Reader) error { return db.eng.RestoreCheckpoint(r) }

// checkpointsKept is how many disk checkpoints CheckpointDisk retains. Two
// lets recovery fall back to the previous checkpoint when the newest fails
// verification; WAL segments are only truncated below the oldest retained
// one, so the fallback always finds its log suffix intact.
const checkpointsKept = 2

// errNotFileBacked reports a disk operation on an in-memory database.
var errNotFileBacked = errors.New("preemptdb: database is not file-backed (opened without a directory)")

// CheckpointDisk writes a transactionally consistent checkpoint into the
// database's data directory (atomically: temp file, fsync, rename, directory
// fsync), prunes all but the newest checkpoints, and deletes WAL segments
// wholly covered by the oldest retained one. The checkpoint is fuzzy — its
// replay LSN is captured before the snapshot begins, and recovery's
// apply-if-newer replay makes the overlap idempotent. Safe for concurrent
// use; calls are serialized.
func (db *DB) CheckpointDisk() error {
	if db.dir == nil {
		return errNotFileBacked
	}
	db.ckMu.Lock()
	defer db.ckMu.Unlock()
	// Capture the replay start before the snapshot begins, then make the log
	// durable through it: a checkpoint must never name a replay position its
	// own log has not reached on disk.
	lsn0 := db.eng.Log().LSN()
	// Every transaction lsn0 covers must have published before the snapshot
	// scan starts, or the checkpoint could miss a commit that replay-from-lsn0
	// will never revisit. engine.Checkpoint runs this barrier itself (before
	// drawing its snapshot timestamp); doing it here too keeps the invariant
	// local to the lsn0 capture it protects.
	db.eng.Log().PublishBarrier()
	if err := db.eng.Log().Sync(); err != nil {
		return err
	}
	if err := db.dir.WriteCheckpoint(lsn0, db.eng.Checkpoint); err != nil {
		return err
	}
	if err := db.dir.PruneCheckpoints(checkpointsKept); err != nil {
		return err
	}
	cks, err := db.dir.Checkpoints()
	if err != nil {
		return err
	}
	return db.dir.TruncateSegments(cks[0].LSN)
}

// ReadOnly reports whether the database has degraded to read-only because
// the write-ahead log latched a permanent failure. Reads and scans keep
// working; writes fail with an error satisfying IsWALFailed.
func (db *DB) ReadOnly() bool { return db.eng.WALErr() != nil }

// Stats is a point-in-time snapshot of engine and scheduler counters.
type Stats struct {
	Commits, Aborts uint64
	InterruptsSent  uint64
	StarvationSkips uint64
	PassiveSwitches uint64
	ActiveSwitches  uint64
	LogBytes        uint64
	// LogBatches counts group-commit batches written; Commits/LogBatches is
	// the achieved group-commit fan-in.
	LogBatches uint64
	// VacuumedVersions counts record versions reclaimed by manual and
	// background vacuum.
	VacuumedVersions uint64
	// ShedExpired / ShedCanceled count queued requests dropped at dispatch
	// because the deadline had passed / the submitter had canceled.
	ShedExpired  uint64
	ShedCanceled uint64
	// DeadlineRejected counts requests shed at admission because the
	// observed queue delay implied a certain deadline miss.
	DeadlineRejected uint64
	// AbortsConflict..AbortsOther classify every failed request by reason:
	// conflict budget exhausted, deadline missed, submitter-canceled,
	// rejected up front (queues full or admission), or any other
	// transaction-body error.
	AbortsConflict  uint64
	AbortsDeadline  uint64
	AbortsCanceled  uint64
	AbortsQueueFull uint64
	// AbortsWALFailed counts requests refused because the write-ahead log
	// latched a permanent failure and the database is read-only.
	AbortsWALFailed uint64
	AbortsOther     uint64
	// WALFailed reports that the write-ahead log has latched a permanent
	// failure (see ReadOnly).
	WALFailed bool
	// IndexRestarts counts optimistic B+tree operation restarts (version
	// validation failures under concurrent structural modification);
	// PartitionRestarts counts restarts of the morsel partition sampler
	// specifically. Both measure contention, not errors.
	IndexRestarts     uint64
	PartitionRestarts uint64
	// MorselsStolen counts parallel-scan morsel tasks executed by idle
	// workers on behalf of another worker's analytical transaction.
	MorselsStolen uint64
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	st := Stats{
		Commits:          db.eng.Commits(),
		Aborts:           db.eng.Aborts(),
		InterruptsSent:   db.sch.InterruptsSent(),
		StarvationSkips:  db.sch.StarvationSkips(),
		LogBytes:         db.eng.Log().LSN(),
		LogBatches:       db.eng.Log().Batches(),
		VacuumedVersions: db.eng.Vacuumed(),
		ShedExpired:      db.sch.ShedExpired(),
		ShedCanceled:     db.sch.ShedCanceled(),
		DeadlineRejected: db.adm.DeadlineRejected(),
		AbortsConflict:   db.aborts.Load(metrics.AbortConflict),
		AbortsDeadline:   db.aborts.Load(metrics.AbortDeadline),
		AbortsCanceled:   db.aborts.Load(metrics.AbortCanceled),
		AbortsQueueFull:  db.aborts.Load(metrics.AbortQueueFull),
		AbortsWALFailed:  db.aborts.Load(metrics.AbortWALFailed),
		AbortsOther:      db.aborts.Load(metrics.AbortOther),
		WALFailed:         db.eng.WALErr() != nil,
		IndexRestarts:     db.eng.IndexRestarts(),
		PartitionRestarts: db.eng.PartitionRestarts(),
		MorselsStolen:     db.sch.MorselsStolen(),
	}
	for _, w := range db.sch.Workers() {
		for i := 0; i < w.Core().NumContexts(); i++ {
			st.PassiveSwitches += w.Core().Context(i).TCB().PassiveSwitches()
			st.ActiveSwitches += w.Core().Context(i).TCB().ActiveSwitches()
		}
	}
	return st
}

// Txn is a transaction handle passed to user functions. It is only valid
// for the duration of the function call.
type Txn struct {
	db    *DB
	inner *engine.Txn
	ctx   *pcontext.Context
}

func (t *Txn) table(name string) (*engine.Table, error) {
	return t.db.eng.Table(name)
}

// Get returns the visible row under key in table.
func (t *Txn) Get(table string, key []byte) ([]byte, error) {
	tab, err := t.table(table)
	if err != nil {
		return nil, err
	}
	return t.inner.Get(tab, key)
}

// Insert creates a new row; it fails on a visible duplicate key.
func (t *Txn) Insert(table string, key, value []byte) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.Insert(tab, key, value)
}

// Update overwrites an existing visible row.
func (t *Txn) Update(table string, key, value []byte) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.Update(tab, key, value)
}

// Put inserts or overwrites (upsert).
func (t *Txn) Put(table string, key, value []byte) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.Put(tab, key, value)
}

// Delete removes a visible row.
func (t *Txn) Delete(table string, key []byte) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.Delete(tab, key)
}

// Scan visits visible rows with from <= key < to in key order; fn returns
// false to stop. The scan is preemptible at every record.
func (t *Txn) Scan(table string, from, to []byte, fn func(key, value []byte) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.Scan(tab, from, to, fn)
}

// ScanDesc is Scan in descending key order.
func (t *Txn) ScanDesc(table string, from, to []byte, fn func(key, value []byte) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.ScanDesc(tab, from, to, fn)
}

// ScanIndex is Scan over a secondary index; fn receives the index key.
func (t *Txn) ScanIndex(table, index string, from, to []byte, fn func(key, value []byte) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.ScanIndex(tab, index, from, to, fn)
}

// ScanIndexDesc is ScanIndex in descending index-key order.
func (t *Txn) ScanIndexDesc(table, index string, from, to []byte, fn func(key, value []byte) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	return t.inner.ScanIndexDesc(tab, index, from, to, fn)
}

// ParallelScan visits every visible row with from <= key < to, like Scan,
// but partitions the range into morsels and lets idle workers execute them
// concurrently as read-only helpers pinned at this transaction's snapshot —
// morsel-driven parallelism for analytical scans. morsels is the target
// fan-out (0 picks a default); the transaction must have no uncommitted
// writes. fn may be called concurrently from several workers and must be
// safe for that; rows arrive in key order within a morsel but morsels
// interleave. fn returns false to stop the scan early (remaining morsels are
// skipped at record granularity, so a few extra calls may still arrive).
// Each helper is independently preemptible: a high-priority burst interrupts
// every morsel at its next record access.
func (t *Txn) ParallelScan(table string, from, to []byte, morsels int, fn func(key, value []byte) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	var stop atomic.Bool
	_, err = engine.ParallelScan(t.inner, tab, from, to,
		engine.ParallelScanConfig{Morsels: morsels, Spawn: sched.MorselSpawner(t.ctx)},
		func(sub *engine.Txn, m engine.Morsel) (struct{}, error) {
			if stop.Load() {
				return struct{}{}, nil
			}
			return struct{}{}, sub.Scan(tab, m.From, m.To, func(k, v []byte) bool {
				if stop.Load() {
					return false
				}
				if !fn(k, v) {
					stop.Store(true)
					return false
				}
				return true
			})
		},
		func(a, _ struct{}) struct{} { return a })
	return err
}

// Yield is a handcrafted cooperative yield point (used with
// PolicyCooperativeHandcrafted): if high-priority work is queued on this
// worker, the transaction voluntarily hands over the core and resumes after
// the high-priority batch drains. A no-op on other policies' workers only
// insofar as there is no queued work; it is always safe to call.
func (t *Txn) Yield() { sched.Yield(t.ctx) }

// NonPreemptible runs fn with preemption disabled on this context — the
// application-level escape hatch for short critical sections (paper §4.4).
func (t *Txn) NonPreemptible(fn func()) { pcontext.NonPreemptible(t.ctx, fn) }

// Err returns ErrCanceled or ErrDeadlineExceeded once this transaction's
// request has been canceled or has passed its deadline, and nil otherwise.
// Engine calls already check it at every record access; long user loops
// between engine calls can poll it to unwind sooner.
func (t *Txn) Err() error { return t.ctx.Err() }

// IsNotFound reports whether err is the not-found condition.
func IsNotFound(err error) bool { return errors.Is(err, engine.ErrNotFound) }

// IsDuplicateKey reports whether err is the duplicate-key condition.
func IsDuplicateKey(err error) bool { return errors.Is(err, engine.ErrDuplicateKey) }
