// Package preemptdb is a memory-optimized, multi-versioned database engine
// with preemptive transaction scheduling via (simulated) userspace
// interrupts — a Go reproduction of "Low-Latency Transaction Scheduling via
// Userspace Interrupts: Why Wait or Yield When You Can Preempt?" (SIGMOD
// 2025).
//
// A DB owns a set of worker cores, each hosting two transaction contexts by
// default (Config.ContextsPerCore raises this to a K-way ring that hides
// simulated stalls by interleaving low-priority transactions). Transactions
// are submitted with a priority; under PolicyPreempt, a high-priority
// transaction interrupts an in-progress low-priority one at the next
// instruction boundary, runs on the worker's preemptive context, and then
// resumes the paused transaction — it is paused, never aborted.
//
// Quick start:
//
//	db, _ := preemptdb.Open("", preemptdb.Config{Policy: preemptdb.PolicyPreempt})
//	defer db.Close()
//	db.CreateTable("kv")
//	db.Run(func(tx *preemptdb.Txn) error {
//	    return tx.Insert("kv", []byte("k"), []byte("v"))
//	})
//	err := db.Exec(preemptdb.High, func(tx *preemptdb.Txn) error {
//	    v, err := tx.Get("kv", []byte("k"))
//	    _ = v
//	    return err
//	})
package preemptdb

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"preemptdb/internal/admission"
	"preemptdb/internal/clock"
	"preemptdb/internal/dtx"
	"preemptdb/internal/engine"
	"preemptdb/internal/hotcache"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/sched"
	"preemptdb/internal/store"
	"preemptdb/internal/wal"
)

// Policy selects the scheduling discipline (paper §6.1's competing methods).
type Policy uint8

// Scheduling policies.
const (
	// PolicyWait runs transactions to completion; high-priority requests
	// wait for the running transaction (non-preemptive FIFO with a priority
	// queue checked between transactions).
	PolicyWait Policy = iota
	// PolicyCooperative yields to pending high-priority work every
	// YieldInterval record accesses.
	PolicyCooperative
	// PolicyCooperativeHandcrafted yields only at workload-placed
	// Txn.Yield() calls.
	PolicyCooperativeHandcrafted
	// PolicyPreempt is PreemptDB: user interrupts preempt low-priority
	// transactions at instruction granularity.
	PolicyPreempt
)

func (p Policy) String() string { return p.toSched().String() }

func (p Policy) toSched() sched.Policy {
	switch p {
	case PolicyCooperative:
		return sched.PolicyCooperative
	case PolicyCooperativeHandcrafted:
		return sched.PolicyCooperativeHandcrafted
	case PolicyPreempt:
		return sched.PolicyPreempt
	default:
		return sched.PolicyWait
	}
}

// Isolation selects the transaction isolation level.
type Isolation uint8

// Isolation levels.
const (
	// SnapshotIsolation is the default (the paper's baseline, §2.2).
	SnapshotIsolation Isolation = iota
	// ReadCommitted reads the newest committed version at each access.
	ReadCommitted
	// Serializable adds OCC read-set validation at commit.
	Serializable
)

func (i Isolation) toMVCC() mvcc.IsolationLevel {
	switch i {
	case ReadCommitted:
		return mvcc.ReadCommitted
	case Serializable:
		return mvcc.Serializable
	default:
		return mvcc.SnapshotIsolation
	}
}

// Priority classifies a submitted transaction.
type Priority uint8

// Priorities. The paper's design generalizes to more levels via additional
// contexts; two are implemented, as evaluated.
const (
	Low Priority = iota
	High
)

// Config controls Open.
type Config struct {
	// Workers is the number of simulated cores PER SHARD. Default: 2.
	Workers int
	// Shards is the number of hash shards the database is partitioned into
	// (default 1). Each shard owns a full engine instance — B+tree/MVCC
	// state, timestamp oracle, scheduler with its own preemption cores and
	// queues, and WAL stream (under dir/shard-<i>/ when file-backed) — behind
	// this one facade. Keys route to shards by hash; transactions confined to
	// one shard commit exactly as in a single-shard database, while
	// transactions that write to several shards commit atomically via an
	// internal two-phase commit (see DESIGN.md §12). Shards is part of a
	// file-backed database's on-disk layout and must not change across opens
	// of the same directory.
	Shards int
	// ContextsPerCore is the number of execution contexts each simulated
	// core multiplexes (default 2: one regular plus one preemptive, the
	// paper's evaluated configuration — and the exact pre-K-way code path).
	// Values above 2 add low-priority slots that a worker interleaves at
	// simulated stall boundaries (B+tree node descents, version-chain hops):
	// when one transaction "stalls", the core rotates to a sibling slot
	// instead of waiting, CoroBase-style, while the preemptive context keeps
	// absolute priority. Clamped to [2, 16].
	ContextsPerCore int
	// Policy is the scheduling discipline. Default PolicyWait.
	Policy Policy
	// Isolation is the isolation level for all transactions.
	Isolation Isolation
	// HiQueueSize / LoQueueSize size the per-worker request queues
	// (defaults 4 and 64).
	HiQueueSize, LoQueueSize int
	// YieldInterval is the cooperative yield period in record accesses
	// (default 10000).
	YieldInterval uint64
	// StarvationThreshold bounds the fraction of a paused low-priority
	// transaction's lifetime spent on high-priority work (default 100,
	// i.e. effectively unbounded; see paper §5).
	StarvationThreshold float64
	// MaxRetries bounds automatic conflict retries in Exec/Submit/Run
	// (default 100).
	MaxRetries int
	// LogSink receives the redo log (nil: in-memory only). Ignored when the
	// database is opened on a directory — the segmented WAL is the sink then.
	LogSink io.Writer
	// Schema recreates the database's tables and secondary indexes (via
	// CreateTable/CreateIndex) on a freshly constructed DB. File-backed
	// recovery calls it before restoring a checkpoint or replaying the WAL —
	// index extractors are code, not data, so the schema cannot be recovered
	// from disk and must be re-declared deterministically (table IDs follow
	// CreateTable order). In-memory opens call it too, as a convenience, so
	// one Config works for both modes. Required to reopen any non-empty
	// file-backed database.
	Schema func(db *DB) error
	// SegmentBytes is the WAL segment rotation size for file-backed
	// databases (default 64 MiB). Segments only rotate at group-commit batch
	// boundaries, so a frame never spans two files.
	SegmentBytes int64
	// SyncEachCommit makes every commit wait for its group-commit batch to
	// be flushed (and synced, when the sink supports it) before returning.
	SyncEachCommit bool
	// MaxBatchBytes caps how many framed bytes a group-commit leader
	// gathers into one batch (0: unbounded).
	MaxBatchBytes int
	// MaxBatchDelay bounds the extra latency a group-commit leader spends
	// gathering followers before writing its batch (0: write as soon as the
	// previous batch's I/O completes).
	MaxBatchDelay time.Duration
	// VacuumInterval, when non-zero, enables background incremental
	// garbage collection of record version chains at that period.
	VacuumInterval time.Duration
	// AdmissionRate, when > 0, caps the admitted request rate
	// (requests/second, token bucket of AdmissionBurst tokens).
	AdmissionRate float64
	// AdmissionBurst is the token-bucket burst for AdmissionRate (default 1).
	AdmissionBurst int
	// MaxInFlight, when > 0, caps admitted-but-unfinished requests.
	MaxInFlight int
	// MetricsAddr, when non-empty, starts an HTTP listener (e.g.
	// "127.0.0.1:9090") serving /metrics (Prometheus text exposition),
	// /metrics.json (the DB.Metrics snapshot), and /trace (Chrome trace-event
	// JSON, loadable in Perfetto). The listener stops on Close; the bound
	// address is available from DB.MetricsAddr (useful with ":0").
	MetricsAddr string
	// TraceCapacity sizes the per-core scheduling-trace rings (default 4096
	// events per core; negative disables tracing).
	TraceCapacity int
	// TraceSampling controls per-transaction span recording on the commit
	// path (WAL group-commit wait, 2PC prepare/resolve spans). 0 samples
	// 1-in-32 commits, riding the existing metrics sampling with zero extra
	// cost on unsampled commits; > 0 records spans on every commit (for
	// forensic runs and DB.TraceTxn completeness); < 0 suppresses commit-path
	// spans entirely. Scheduler-level events (txn start/end, preemption
	// pause/resume) always trace while TraceCapacity enables the rings.
	TraceSampling int
	// SLOHigh / SLOLow, when > 0, set per-class end-to-end latency SLO
	// targets. A transaction whose total latency exceeds its class target
	// trips the breach detector; subject to SLOCooldown, the flight recorder
	// captures a diagnosis bundle (trace rings, scheduler slot tables, queue
	// depths, in-flight 2PC, full metrics snapshot) retrievable via
	// DB.LastFlightRecord, the /debug/flight endpoint, or as JSON files under
	// FlightRecorderDir.
	SLOHigh, SLOLow time.Duration
	// SLOCooldown is the minimum spacing between flight-recorder captures
	// (default 1s) so a latency storm yields one bundle, not thousands.
	SLOCooldown time.Duration
	// FlightRecorderDir, when non-empty, additionally writes each
	// flight-recorder bundle as an indented JSON file
	// (flight-<unix-nanos>.json) under this directory.
	FlightRecorderDir string
	// ConnShards is the number of connection shards the network server (see
	// package server) multiplexes its connections across — each shard runs
	// one event-loop goroutine plus a small worker pool, with connections
	// assigned at accept time by fd hash. 0 picks a default from GOMAXPROCS;
	// negative selects the legacy goroutine-per-connection front-end.
	ConnShards int
	// CacheBytes, when > 0, enables the hot-key read-through cache in front
	// of the MVCC read path with this total size budget (split evenly across
	// engine shards). Skewed point reads at snapshot isolation hit the cache
	// without entering a scheduler core; commits invalidate their written
	// keys at the publication point. See internal/hotcache.
	CacheBytes int64
	// CacheTTL, when > 0, additionally expires hot-key cache entries this
	// long after they were filled.
	CacheTTL time.Duration
	// HiConnLimit / LoConnLimit cap concurrently open server connections per
	// priority class (0 = unlimited). A connection over its class limit is
	// sent a typed queue-full frame and closed at classification time.
	HiConnLimit, LoConnLimit int
	// HiInFlightLimit / LoInFlightLimit cap in-flight server requests per
	// priority class (0 = unlimited). Requests over the limit are shed at
	// the edge with a typed queue-full frame — before consuming an engine
	// admission slot — so a low-priority flood cannot queue in front of
	// high-priority work.
	HiInFlightLimit, LoInFlightLimit int
}

// ErrClosed reports use of a closed DB.
var ErrClosed = errors.New("preemptdb: database closed")

// ErrQueueFull reports that a request was rejected up front: every
// scheduling queue was full, or admission control shed it (rate, in-flight
// cap, or a deadline that cannot be met given the observed queue delay).
var ErrQueueFull = errors.New("preemptdb: all scheduling queues full")

// ErrConflict marks a transaction that failed with a concurrency conflict
// after exhausting its automatic retry budget. The underlying engine error
// is wrapped alongside it.
var ErrConflict = errors.New("preemptdb: transaction conflict")

// ErrCanceled reports a transaction canceled by its submitter (via
// Pending.Cancel). It unwinds mid-flight at the next poll.
var ErrCanceled = pcontext.ErrCanceled

// ErrDeadlineExceeded reports a transaction that missed its deadline: shed
// while queued, rejected at admission, or canceled mid-flight at the first
// poll past the deadline.
var ErrDeadlineExceeded = pcontext.ErrDeadlineExceeded

// ErrWALFailed reports that the write-ahead log latched a permanent I/O
// failure. The database degrades to read-only: reads and scans keep working
// off the in-memory versions, while every write operation and commit fails
// fast with an error wrapping this one. The first error also wraps the root
// I/O cause.
var ErrWALFailed = wal.ErrWALFailed

// IsConflict reports whether err was a concurrency conflict (these are
// retried automatically up to MaxRetries; seeing one from Exec means the
// budget was exhausted).
func IsConflict(err error) bool {
	return engine.IsConflict(err) || errors.Is(err, ErrConflict)
}

// IsCanceled reports whether err means the transaction was canceled by its
// submitter.
func IsCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// IsDeadlineExceeded reports whether err means the transaction missed its
// deadline.
func IsDeadlineExceeded(err error) bool { return errors.Is(err, ErrDeadlineExceeded) }

// IsWALFailed reports whether err means the write-ahead log has failed and
// the database is read-only.
func IsWALFailed(err error) bool { return errors.Is(err, ErrWALFailed) }

// shard is one hash partition of the database: a complete engine instance —
// MVCC state and indexes, timestamp oracle, WAL stream — plus its own
// scheduler (preemption cores, steal queue, per-class histograms) and
// per-shard counters. With Config.Shards == 1 the facade degenerates to
// exactly the pre-sharding wiring: one shard, flat directory layout, pooled
// zero-allocation transactions.
type shard struct {
	eng *engine.Engine
	sch *sched.Scheduler
	// reg is the phase-latency registry shared by this shard's scheduler and
	// engine; DB.Metrics merges the per-shard registries.
	reg *metrics.Registry
	// aborts classifies this shard's failed requests by reason.
	aborts metrics.AbortCounters
	// rrLow round-robins low-priority submissions across this shard's
	// workers; atomic because concurrent submitters share it.
	rrLow atomic.Uint32
	// dir and dlog are set on file-backed databases: the shard's data
	// directory (dir/shard-<i>, or the root directory when Shards == 1) and
	// the segmented WAL log its engine appends to.
	dir  *store.Dir
	dlog *store.Log
	// ckMu serializes CheckpointDisk on this shard: concurrent calls would
	// race the write/prune/truncate sequence over the same directory listing.
	ckMu sync.Mutex
}

// DB is a PreemptDB instance.
type DB struct {
	cfg    Config
	shards []*shard
	adm    *admission.Controller
	closed bool
	// rrShard round-robins transactions without a routing key across shards.
	rrShard atomic.Uint32
	// gidBase/gidCtr generate globally-unique 2PC transaction ids: a random
	// 63-bit base per Open plus a counter, with dtx.GIDBit set to keep gids
	// disjoint from oracle-assigned local ids. Decision-table rows are keyed
	// by gid and never deleted, so ids must not repeat across restarts.
	gidBase uint64
	gidCtr  atomic.Uint64
	// ctxPool recycles detached contexts for Run so repeated loader/admin
	// calls reuse one oracle slot and one pooled transaction instead of
	// registering a fresh slot per call.
	ctxPool sync.Pool
	// msrv/mln are the optional MetricsAddr HTTP export listener.
	msrv *http.Server
	mln  net.Listener
	// frontReg collects the network front-end's counters (connections shed by
	// edge admission, open-connection gauge). It merges into DB.Metrics and
	// DB.Stats alongside the per-shard registries; the server package bumps it
	// via FrontendRegistry.
	frontReg *metrics.Registry
	// traceIDs issues database-wide transaction trace ids: shared by submit
	// (which stamps every request up front) and every shard's scheduler (which
	// assigns to requests that bypass submit), so a trace id uniquely names one
	// transaction across all shards and cores.
	traceIDs *atomic.Uint64
	// xsMu/xsGen fence cross-shard 2PC resolution against cross-shard snapshot
	// establishment. The resolution loop of every cross-shard commit runs under
	// the write lock (see dtx.ResolutionGate) and bumps xsGen on release; a
	// multi-shard transaction begins each per-shard participant under the read
	// lock and fails with a retryable conflict when xsGen moved between its
	// first and a later begin — the transaction would otherwise observe a 2PC
	// transaction's writes on one shard but not another.
	xsMu  sync.RWMutex
	xsGen atomic.Uint64
	// Flight-recorder plumbing: breach notifications arrive on frCh (cap 1,
	// non-blocking send from the recording hot path), the recorder goroutine
	// exits on frStop, and lastFlight holds the most recent bundle.
	frCh       chan sloBreach
	frStop     chan struct{}
	frWG       sync.WaitGroup
	lastFlight atomic.Pointer[FlightRecord]
}

// Open creates a database and starts its workers.
//
// dir selects the durability mode. "" runs purely in memory (Config.LogSink,
// when set, still receives the redo stream). A path names a data directory:
// Open creates it if missing, recovers the existing state — newest valid
// checkpoint plus WAL replay, falling back to an older checkpoint when the
// newest fails verification — truncates any torn tail left by a crash, and
// resumes appending to the segmented WAL exactly where the verified stream
// ends. Config.Schema must recreate the schema for recovery to apply the
// replayed records; set Config.SyncEachCommit for commits to be durable at
// the moment they return.
func Open(dir string, cfg Config) (*DB, error) {
	switch {
	case cfg.Shards == 0:
		cfg.Shards = 1
	case cfg.Shards < 0 || cfg.Shards > maxShards:
		return nil, fmt.Errorf("preemptdb: Shards must be in [1,%d], got %d", maxShards, cfg.Shards)
	}
	applyDefaults(&cfg)
	if dir == "" {
		db, err := newDB(cfg, nil)
		if err != nil {
			return nil, err
		}
		if cfg.Schema != nil {
			if err := cfg.Schema(db); err != nil {
				db.Close()
				return nil, err
			}
		}
		db.ensureDecisionTables()
		return db, nil
	}
	if cfg.Shards > 1 {
		return openSharded(dir, cfg)
	}
	d, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	cks, err := d.Checkpoints()
	if err != nil {
		return nil, err
	}
	// Recovery candidates, newest checkpoint first, ending with "no
	// checkpoint" (replay the whole log from LSN 0). A candidate that fails
	// verification anywhere — checkpoint CRC, mid-stream log corruption, a
	// checkpoint whose LSN the log never durably reached — is abandoned
	// wholesale and the next one tried from a fresh engine, so partial
	// restore state never leaks into the opened database.
	var errs []error
	for i := len(cks); i >= 0; i-- {
		var ck *store.Checkpoint
		if i > 0 {
			ck = &cks[i-1]
		}
		db, err := tryOpenDir(d, cfg, ck)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		return db, nil
	}
	return nil, fmt.Errorf("preemptdb: open %s: %w", dir, errors.Join(errs...))
}

// newDB builds the database: one shard stack (engine, scheduler, registry)
// per Config.Shards, plus the shared admission controller. dlogs, when
// non-nil, holds one segmented log per shard (file-backed mode); the logs are
// still unpositioned, so constructing the engines writes nothing.
func newDB(cfg Config, dlogs []*store.Log) (*DB, error) {
	applyDefaults(&cfg)
	shs := make([]*shard, cfg.Shards)
	for i := range shs {
		var dlog *store.Log
		if dlogs != nil {
			dlog = dlogs[i]
		}
		shs[i] = newShard(cfg, i, dlog)
	}
	return assembleDB(cfg, shs)
}

// applyDefaults normalizes the zero-value config knobs shared by every open
// path.
func applyDefaults(cfg *Config) {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.LoQueueSize == 0 {
		cfg.LoQueueSize = 64
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 100
	}
}

// newShard builds one shard's engine (no scheduler yet — recovery runs
// before workers exist; see startShard). si selects the shard's slice of the
// optional in-memory LogSink: only shard 0 receives it, because interleaving
// several shards' frames into one observational stream would make it
// unreplayable.
func newShard(cfg Config, si int, dlog *store.Log) *shard {
	sink := cfg.LogSink
	if si > 0 {
		sink = nil
	}
	if dlog != nil {
		sink = dlog
	}
	// One registry across the shard's engine and scheduler, so its slice of
	// DB.Metrics reports the full per-phase decomposition (scheduler phases
	// + WAL wait) in one snapshot.
	reg := metrics.NewRegistry()
	// The hot-key cache is per engine shard — cache shards align with engine
	// shards, so a shard's committers only ever touch their own cache and the
	// size budget splits evenly.
	var cache *hotcache.Cache
	if cfg.CacheBytes > 0 {
		cache = hotcache.New(hotcache.Config{
			MaxBytes: cfg.CacheBytes / int64(cfg.Shards),
			TTL:      cfg.CacheTTL,
			Metrics:  reg,
		})
	}
	eng := engine.New(engine.Config{
		Isolation:      cfg.Isolation.toMVCC(),
		LogSink:        sink,
		SyncEachCommit: cfg.SyncEachCommit,
		MaxBatchBytes:  cfg.MaxBatchBytes,
		MaxBatchDelay:  cfg.MaxBatchDelay,
		VacuumInterval: cfg.VacuumInterval,
		Metrics:        reg,
		Cache:          cache,
		ShardID:        si,
		TraceSampling:  cfg.TraceSampling,
	})
	return &shard{eng: eng, reg: reg, dlog: dlog}
}

// startShard attaches and starts the shard's scheduler. Worker contexts are
// pre-attached to the shard's own engine so it owns their CLS state: pooled
// zero-allocation transactions for same-shard work, with other shards'
// engines transparently beginning guest transactions on the same contexts.
func (sh *shard) startShard(cfg Config, traceIDs *atomic.Uint64) {
	sh.sch = sched.New(sched.Config{
		Policy:              cfg.Policy.toSched(),
		Workers:             cfg.Workers,
		ContextsPerCore:     cfg.ContextsPerCore,
		HiQueueSize:         cfg.HiQueueSize,
		LoQueueSize:         cfg.LoQueueSize,
		YieldInterval:       cfg.YieldInterval,
		StarvationThreshold: cfg.StarvationThreshold,
		Metrics:             sh.reg,
		TraceCapacity:       cfg.TraceCapacity,
		TraceIDs:            traceIDs,
	})
	for _, w := range sh.sch.Workers() {
		for i := 0; i < w.Core().NumContexts(); i++ {
			sh.eng.AttachContext(w.Core().Context(i))
		}
	}
	sh.sch.Start()
}

// assembleDB wires recovered (or fresh) shards into a DB and starts their
// schedulers.
func assembleDB(cfg Config, shs []*shard) (*DB, error) {
	// One trace-id sequence for the whole database: submit stamps requests
	// from it, and each shard's scheduler falls back to it for direct
	// submissions, so ids never collide across shards.
	traceIDs := new(atomic.Uint64)
	for _, sh := range shs {
		sh.startShard(cfg, traceIDs)
	}
	// The admission controller is always present: with the rate and
	// in-flight knobs at zero it admits everything, but it still tracks the
	// queue-delay estimate that lets AdmitDeadline shed doomed requests.
	adm := admission.New(cfg.AdmissionRate, cfg.AdmissionBurst, cfg.MaxInFlight)
	db := &DB{cfg: cfg, shards: shs, adm: adm, gidBase: rand.Uint64() &^ dtx.GIDBit,
		frontReg: metrics.NewRegistry(), traceIDs: traceIDs}
	db.startFlightRecorder()
	if cfg.MetricsAddr != "" {
		if err := db.startMetricsServer(cfg.MetricsAddr); err != nil {
			db.Close()
			return nil, fmt.Errorf("preemptdb: metrics listener: %w", err)
		}
	}
	return db, nil
}

// tryOpenDir attempts a full single-shard file-backed open against one
// recovery candidate (a checkpoint, or nil for log-only replay). Any failure
// closes the half-recovered shard and is reported to the caller for
// fallback.
func tryOpenDir(d *store.Dir, cfg Config, ck *store.Checkpoint) (*DB, error) {
	sh := newShard(cfg, 0, d.NewLog(cfg.SegmentBytes))
	sh.dir = d
	if _, err := sh.recover(cfg, ck); err != nil {
		sh.close()
		return nil, err
	}
	return assembleDB(cfg, []*shard{sh})
}

// Close stops the workers, releases their engine resources (oracle slots,
// CLS buffers), stops the background vacuum, and flushes the logs. In-flight
// transactions finish; queued but unstarted requests are dropped.
func (db *DB) Close() error {
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	db.stopMetricsServer()
	db.stopFlightRecorder()
	var err error
	for _, sh := range db.shards {
		if sh.sch != nil {
			sh.sch.Stop()
			for _, w := range sh.sch.Workers() {
				for i := 0; i < w.Core().NumContexts(); i++ {
					// Owner-guarded: each engine only detaches contexts it
					// attached, so this is safe even though cross-shard work
					// ran foreign transactions on these contexts.
					sh.eng.DetachContext(w.Core().Context(i))
				}
			}
		}
		if cerr := sh.eng.Close(); err == nil {
			err = cerr
		}
		if sh.dlog != nil {
			// The engine's close flushed the WAL manager into the segmented
			// log; close the log file after it.
			if cerr := sh.dlog.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// CreateTable creates a table on every shard (idempotent).
func (db *DB) CreateTable(name string) {
	for _, sh := range db.shards {
		sh.eng.CreateTable(name)
	}
}

// CreateIndex adds a secondary index computed by extract (see
// engine.KeyExtractor semantics: non-unique, keys must be immutable per
// row). Create indexes before inserting rows.
func (db *DB) CreateIndex(table, index string, extract func(key, row []byte) []byte) error {
	for _, sh := range db.shards {
		t, err := sh.eng.Table(table)
		if err != nil {
			return err
		}
		t.CreateIndex(index, extract)
	}
	return nil
}

// Run executes fn as a transaction on the calling goroutine, outside the
// scheduler — for loading, admin, and tests. Conflicts retry automatically;
// fn returning nil commits, anything else aborts and is returned.
func (db *DB) Run(fn func(tx *Txn) error) error {
	ctx, _ := db.ctxPool.Get().(*pcontext.Context)
	if ctx == nil {
		ctx = pcontext.Detached()
	}
	defer db.ctxPool.Put(ctx)
	return db.runOn(ctx, fn)
}

func (db *DB) runOn(ctx *pcontext.Context, fn func(tx *Txn) error) error {
	var err error
	for attempt := 0; attempt < db.cfg.MaxRetries; attempt++ {
		// Canceled or past deadline: further retries cannot succeed — every
		// new attempt would unwind at its first poll anyway.
		if lcErr := ctx.Err(); lcErr != nil {
			return lcErr
		}
		err = db.attempt(ctx, fn)
		if err == nil || !engine.IsConflict(err) {
			return err
		}
	}
	return fmt.Errorf("%w: %w", ErrConflict, err)
}

func (db *DB) attempt(ctx *pcontext.Context, fn func(tx *Txn) error) error {
	if len(db.shards) == 1 {
		// Single-shard fast path: identical to the pre-sharding wiring —
		// eager pooled transaction, no routing, no participant tracking.
		inner := db.shards[0].eng.Begin(ctx)
		tx := &Txn{db: db, inner: inner, ctx: ctx}
		defer inner.Abort()
		if err := fn(tx); err != nil {
			return err
		}
		return inner.Commit()
	}
	// Multi-shard: participants begin lazily as keys route to shards; commit
	// picks plain commit or 2PC by how many shards were written.
	tx := &Txn{db: db, ctx: ctx, parts: make([]*engine.Txn, len(db.shards))}
	defer tx.abortParts()
	if err := fn(tx); err != nil {
		return err
	}
	return tx.commitParts()
}

// TxnOptions carries per-request lifecycle options. The zero value means
// "low priority, no deadline".
type TxnOptions struct {
	// Priority classifies the request (default Low).
	Priority Priority
	// Deadline is an absolute wall-clock instant after which the result is
	// worthless (zero = none). An expired request is shed at admission or
	// dispatch, and canceled mid-flight at the first poll past the deadline;
	// either way the submitter sees ErrDeadlineExceeded (shed at admission
	// reports ErrQueueFull from Submit itself).
	Deadline time.Time
	// Timeout is a relative deadline measured from submission (0 = none).
	// When both are set the earlier instant wins.
	Timeout time.Duration
	// RouteKey, on a sharded database, steers the request to the shard owning
	// this key, so a transaction confined to that key's shard runs on its own
	// scheduler with zero cross-shard coordination. Nil round-robins across
	// shards. Ignored when Shards == 1.
	RouteKey []byte
	// TraceID, when non-zero, names this transaction in the scheduling-trace
	// rings instead of a database-assigned id — clients propagating an
	// end-to-end trace context supply theirs here, and DB.TraceTxn exports the
	// transaction's cross-shard span tree under it. Zero draws a fresh unique
	// id (readable from Pending.TraceID after SubmitOpts).
	TraceID uint64
}

// deadlineNanos converts the options' deadline to the scheduler's absolute
// clock.Nanos domain (0 = none). An already-past deadline maps to the oldest
// representable armed instant so it still reads as expired, not as "none".
func (o TxnOptions) deadlineNanos() int64 {
	pick := func(rel time.Duration) int64 {
		n := clock.Nanos() + int64(rel)
		if n < 1 {
			n = 1
		}
		return n
	}
	var d int64
	if !o.Deadline.IsZero() {
		d = pick(time.Until(o.Deadline))
	}
	if o.Timeout > 0 {
		if t := pick(o.Timeout); d == 0 || t < d {
			d = t
		}
	}
	return d
}

// Pending is a handle to a submitted-but-unfinished request.
type Pending struct {
	req *sched.Request
	ch  chan error
}

// Cancel asks the request's transaction to stop: still-queued requests are
// shed before execution, a running one unwinds with ErrCanceled at its next
// poll. Safe to call from any goroutine, repeatedly, and after completion.
// Cancel does not wait; the outcome still arrives through Wait/Done.
func (p *Pending) Cancel() { p.req.Cancel() }

// Wait blocks until the request finishes and returns its outcome. Call it
// at most once (use Done for multi-consumer patterns).
func (p *Pending) Wait() error { return <-p.ch }

// Done exposes the single-delivery outcome channel.
func (p *Pending) Done() <-chan error { return p.ch }

// TraceID returns the id naming this request in the scheduling-trace rings —
// the handle for DB.TraceTxn after (or while) the transaction runs. It is
// assigned at submission, so it is valid immediately.
func (p *Pending) TraceID() uint64 { return p.req.TraceID }

// classify buckets a finished request's error into the shard's per-reason
// abort counters surfaced by Stats. Cross-shard transactions count once, on
// their routing shard.
func (sh *shard) classify(err error) {
	switch {
	case err == nil:
	case errors.Is(err, ErrDeadlineExceeded):
		sh.aborts.Inc(metrics.AbortDeadline)
	case errors.Is(err, ErrCanceled):
		sh.aborts.Inc(metrics.AbortCanceled)
	case IsWALFailed(err):
		sh.aborts.Inc(metrics.AbortWALFailed)
	case IsConflict(err):
		sh.aborts.Inc(metrics.AbortConflict)
	case errors.Is(err, ErrQueueFull):
		sh.aborts.Inc(metrics.AbortQueueFull)
	default:
		sh.aborts.Inc(metrics.AbortOther)
	}
}

// routeShard picks a request's home shard: by key hash when the submitter
// supplied a routing key, round-robin otherwise. The transaction executes on
// that shard's scheduler; its data accesses still reach whatever shards its
// keys hash to.
func (db *DB) routeShard(route []byte) *shard {
	if len(db.shards) == 1 {
		return db.shards[0]
	}
	if route != nil {
		return db.shards[dtx.ShardOf(route, len(db.shards))]
	}
	return db.shards[int(db.rrShard.Add(1))%len(db.shards)]
}

// submit is the single scheduling entry point every public Submit/Exec
// variant funnels through: admission, shard routing, lifecycle wiring,
// dispatch, and per-reason accounting in one place.
func (db *DB) submit(p Priority, deadline int64, route []byte, traceID uint64, fn func(tx *Txn) error, onDone func(*sched.Request)) (*sched.Request, error) {
	if db.closed {
		return nil, ErrClosed
	}
	sh := db.routeShard(route)
	if !db.adm.AdmitDeadline(deadline) {
		sh.aborts.Inc(metrics.AbortQueueFull)
		return nil, ErrQueueFull
	}
	if traceID == 0 {
		traceID = db.traceIDs.Add(1)
	}
	req := &sched.Request{
		Deadline: deadline,
		TraceID:  traceID,
		Work: func(ctx *pcontext.Context) error {
			return db.runOn(ctx, fn)
		},
	}
	req.OnDone = func(r *sched.Request) {
		db.adm.ObserveQueueDelay(r.SchedulingLatency())
		db.adm.Release()
		sh.classify(r.Err)
		if onDone != nil {
			onDone(r)
		}
	}
	ok := false
	if p == High {
		ok = sh.sch.SubmitHighBatch([]*sched.Request{req}) == 1
	} else {
		for i := 0; i < db.cfg.Workers && !ok; i++ {
			wid := int(sh.rrLow.Add(1)) % db.cfg.Workers
			ok = sh.sch.SubmitLow(wid, req)
		}
	}
	if !ok {
		db.adm.Release()
		sh.aborts.Inc(metrics.AbortQueueFull)
		return nil, ErrQueueFull
	}
	return req, nil
}

// Submit schedules fn as a transaction with the given priority and returns
// immediately; done (optional) receives the outcome on a worker goroutine.
// High-priority submissions trigger a user interrupt under PolicyPreempt.
// It fails with ErrQueueFull when every worker's queue is full.
func (db *DB) Submit(p Priority, fn func(tx *Txn) error, done func(error)) error {
	var onDone func(*sched.Request)
	if done != nil {
		onDone = func(r *sched.Request) { done(r.Err) }
	}
	_, err := db.submit(p, 0, nil, 0, fn, onDone)
	return err
}

// SubmitOpts schedules fn with per-request lifecycle options and returns a
// Pending handle for waiting on — or canceling — the request.
func (db *DB) SubmitOpts(opts TxnOptions, fn func(tx *Txn) error) (*Pending, error) {
	ch := make(chan error, 1)
	req, err := db.submit(opts.Priority, opts.deadlineNanos(), opts.RouteKey, opts.TraceID, fn, func(r *sched.Request) {
		ch <- r.Err
	})
	if err != nil {
		return nil, err
	}
	return &Pending{req: req, ch: ch}, nil
}

// Exec schedules fn like Submit and waits for it to finish, returning the
// transaction's outcome.
func (db *DB) Exec(p Priority, fn func(tx *Txn) error) error {
	ch := make(chan error, 1)
	if err := db.Submit(p, fn, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// ExecOpts is Exec with per-request lifecycle options.
func (db *DB) ExecOpts(opts TxnOptions, fn func(tx *Txn) error) error {
	pending, err := db.SubmitOpts(opts, fn)
	if err != nil {
		return err
	}
	return pending.Wait()
}

// ExecDeadline schedules fn with an absolute deadline and waits for the
// outcome. A request whose deadline passes before it runs is shed (at
// admission or dispatch) without executing; one already running is canceled
// at its next poll and unwinds with ErrDeadlineExceeded, releasing its
// pooled transaction, oracle slot, and log buffer.
func (db *DB) ExecDeadline(p Priority, deadline time.Time, fn func(tx *Txn) error) error {
	return db.ExecOpts(TxnOptions{Priority: p, Deadline: deadline}, fn)
}

// ExecRetry is Exec wrapped in a bounded retry loop for transient rejection:
// conflict-budget exhaustion and full queues back off exponentially (with
// jitter, capped at ~1ms) before retrying on the submitting goroutine. All
// other outcomes — including deadline and cancellation — return immediately.
func (db *DB) ExecRetry(p Priority, fn func(tx *Txn) error) error {
	const (
		maxAttempts = 16
		baseBackoff = 20 * time.Microsecond
		maxBackoff  = time.Millisecond
	)
	backoff := baseBackoff
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err = db.Exec(p, fn)
		if err == nil || !(IsConflict(err) || errors.Is(err, ErrQueueFull)) {
			return err
		}
		// Full jitter: sleep a uniform fraction of the current backoff so
		// retrying submitters decorrelate instead of colliding again.
		time.Sleep(time.Duration(rand.Int64N(int64(backoff)) + 1))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	return err
}

// Timing reports a transaction's worker-stamped latencies: Scheduling is
// submission → first execution, Total is submission → completion. These are
// the in-database latencies the paper measures; they exclude the time the
// *submitting goroutine* waits to be rescheduled by the Go runtime, which on
// an oversubscribed host can dwarf the database's own latency.
type Timing struct {
	Scheduling time.Duration
	Total      time.Duration
}

// SubmitTimed is Submit with a done callback that also receives the
// worker-stamped Timing. The callback runs on a worker goroutine.
func (db *DB) SubmitTimed(p Priority, fn func(tx *Txn) error, done func(Timing, error)) error {
	var onDone func(*sched.Request)
	if done != nil {
		onDone = func(r *sched.Request) {
			done(Timing{
				Scheduling: time.Duration(r.SchedulingLatency()),
				Total:      time.Duration(r.Latency()),
			}, r.Err)
		}
	}
	_, err := db.submit(p, 0, nil, 0, fn, onDone)
	return err
}

// ExecTimed is Exec plus worker-stamped timing.
func (db *DB) ExecTimed(p Priority, fn func(tx *Txn) error) (Timing, error) {
	type outcome struct {
		timing Timing
		err    error
	}
	ch := make(chan outcome, 1)
	err := db.SubmitTimed(p, fn, func(t Timing, err error) {
		ch <- outcome{timing: t, err: err}
	})
	if err != nil {
		return Timing{}, err
	}
	out := <-ch
	return out.timing, out.err
}

// Vacuum trims record version chains no active snapshot can reach on any
// shard and returns the number of versions reclaimed.
func (db *DB) Vacuum() int {
	n := 0
	for _, sh := range db.shards {
		n += sh.eng.Vacuum(pcontext.Detached())
	}
	return n
}

// errSharded reports a single-stream checkpoint operation on a sharded
// database (each shard checkpoints its own stream; use CheckpointDisk).
var errSharded = errors.New("preemptdb: streaming Checkpoint/RestoreCheckpoint requires Shards == 1; use CheckpointDisk on sharded databases")

// Checkpoint writes a transactionally consistent snapshot of all tables to
// w. Restoring it and replaying a redo log started at checkpoint time
// reproduces the database; see RestoreCheckpoint. Requires Shards == 1 —
// a sharded database has one checkpoint stream per shard (CheckpointDisk).
func (db *DB) Checkpoint(w io.Writer) error {
	if len(db.shards) > 1 {
		return errSharded
	}
	return db.shards[0].eng.Checkpoint(w)
}

// RestoreCheckpoint loads a checkpoint stream produced by Checkpoint into
// this database. Tables and indexes must already be created, matching the
// schema at checkpoint time. Requires Shards == 1.
func (db *DB) RestoreCheckpoint(r io.Reader) error {
	if len(db.shards) > 1 {
		return errSharded
	}
	return db.shards[0].eng.RestoreCheckpoint(r)
}

// checkpointsKept is how many disk checkpoints CheckpointDisk retains. Two
// lets recovery fall back to the previous checkpoint when the newest fails
// verification; WAL segments are only truncated below the oldest retained
// one, so the fallback always finds its log suffix intact.
const checkpointsKept = 2

// errNotFileBacked reports a disk operation on an in-memory database.
var errNotFileBacked = errors.New("preemptdb: database is not file-backed (opened without a directory)")

// CheckpointDisk writes a transactionally consistent checkpoint into the
// database's data directory (atomically: temp file, fsync, rename, directory
// fsync), prunes all but the newest checkpoints, and deletes WAL segments
// wholly covered by the oldest retained one. The checkpoint is fuzzy — its
// replay LSN is captured before the snapshot begins, and recovery's
// apply-if-newer replay makes the overlap idempotent. Safe for concurrent
// use; calls are serialized.
func (db *DB) CheckpointDisk() error {
	if db.shards[0].dir == nil {
		return errNotFileBacked
	}
	for _, sh := range db.shards {
		if err := sh.checkpointDisk(); err != nil {
			return err
		}
	}
	return nil
}

// checkpointDisk checkpoints one shard's stream into its directory.
func (sh *shard) checkpointDisk() error {
	sh.ckMu.Lock()
	defer sh.ckMu.Unlock()
	// Capture the replay start before the snapshot begins, then make the log
	// durable through it: a checkpoint must never name a replay position its
	// own log has not reached on disk.
	lsn0 := sh.eng.Log().LSN()
	// An in-doubt 2PC prepare is older than the log tip but must survive
	// truncation: its prepare frame is the only durable copy of its redo until
	// a resolution lands. Clamp the replay position below the oldest live
	// prepare so segment truncation can never strand an in-doubt transaction.
	if plsn, ok := sh.eng.OldestPrepareLSN(); ok && plsn < lsn0 {
		lsn0 = plsn
	}
	// Every transaction lsn0 covers must have published before the snapshot
	// scan starts, or the checkpoint could miss a commit that replay-from-lsn0
	// will never revisit. engine.Checkpoint runs this barrier itself (before
	// drawing its snapshot timestamp); doing it here too keeps the invariant
	// local to the lsn0 capture it protects.
	sh.eng.Log().PublishBarrier()
	if err := sh.eng.Log().Sync(); err != nil {
		return err
	}
	if err := sh.dir.WriteCheckpoint(lsn0, sh.eng.Checkpoint); err != nil {
		return err
	}
	if err := sh.dir.PruneCheckpoints(checkpointsKept); err != nil {
		return err
	}
	cks, err := sh.dir.Checkpoints()
	if err != nil {
		return err
	}
	return sh.dir.TruncateSegments(cks[0].LSN)
}

// ReadOnly reports whether the database has degraded to read-only because
// any shard's write-ahead log latched a permanent failure. Reads and scans
// keep working; writes fail with an error satisfying IsWALFailed.
func (db *DB) ReadOnly() bool {
	for _, sh := range db.shards {
		if sh.eng.WALErr() != nil {
			return true
		}
	}
	return false
}

// Stats is a point-in-time snapshot of engine and scheduler counters.
type Stats struct {
	Commits, Aborts uint64
	InterruptsSent  uint64
	StarvationSkips uint64
	PassiveSwitches uint64
	ActiveSwitches  uint64
	LogBytes        uint64
	// LogBatches counts group-commit batches written; Commits/LogBatches is
	// the achieved group-commit fan-in.
	LogBatches uint64
	// VacuumedVersions counts record versions reclaimed by manual and
	// background vacuum.
	VacuumedVersions uint64
	// ShedExpired / ShedCanceled count queued requests dropped at dispatch
	// because the deadline had passed / the submitter had canceled.
	ShedExpired  uint64
	ShedCanceled uint64
	// DeadlineRejected counts requests shed at admission because the
	// observed queue delay implied a certain deadline miss.
	DeadlineRejected uint64
	// AbortsConflict..AbortsOther classify every failed request by reason:
	// conflict budget exhausted, deadline missed, submitter-canceled,
	// rejected up front (queues full or admission), or any other
	// transaction-body error.
	AbortsConflict  uint64
	AbortsDeadline  uint64
	AbortsCanceled  uint64
	AbortsQueueFull uint64
	// AbortsWALFailed counts requests refused because the write-ahead log
	// latched a permanent failure and the database is read-only.
	AbortsWALFailed uint64
	AbortsOther     uint64
	// WALFailed reports that the write-ahead log has latched a permanent
	// failure (see ReadOnly).
	WALFailed bool
	// IndexRestarts counts optimistic B+tree operation restarts (version
	// validation failures under concurrent structural modification);
	// PartitionRestarts counts restarts of the morsel partition sampler
	// specifically. Both measure contention, not errors.
	IndexRestarts     uint64
	PartitionRestarts uint64
	// MorselsStolen counts parallel-scan morsel tasks executed by idle
	// workers on behalf of another worker's analytical transaction.
	MorselsStolen uint64
	// StallYields counts stall-boundary rotations: a low-priority context
	// parked mid-transaction in favor of a sibling slot (K-way interleaving;
	// zero at the default ContextsPerCore of 2). InterleaveSwitches counts
	// switches that resumed such a stall-parked transaction.
	StallYields        uint64
	InterleaveSwitches uint64
	// CacheHits / CacheMisses / CacheInvalidations count hot-key cache
	// traffic: reads served without entering a scheduler core, reads that
	// fell through to MVCC, and entries removed by committing writers. All
	// zero unless Config.CacheBytes enables the cache.
	CacheHits          uint64
	CacheMisses        uint64
	CacheInvalidations uint64
	// ConnsShed counts connections and requests shed by the network
	// front-end's per-priority edge admission; ConnsOpen is the current
	// open-connection gauge. Both are facade-global (the front-end sits in
	// front of shard routing) and appear only in the DB-level aggregate.
	ConnsShed uint64
	ConnsOpen int64
}

// stats snapshots one shard's counters. Each counter is read exactly once
// per call; DeadlineRejected is facade-global (admission control runs before
// routing) and appears only in the DB-level aggregate.
func (sh *shard) stats() Stats {
	st := Stats{
		Commits:            sh.eng.Commits(),
		Aborts:             sh.eng.Aborts(),
		InterruptsSent:     sh.sch.InterruptsSent(),
		StarvationSkips:    sh.sch.StarvationSkips(),
		LogBytes:           sh.eng.Log().LSN(),
		LogBatches:         sh.eng.Log().Batches(),
		VacuumedVersions:   sh.eng.Vacuumed(),
		ShedExpired:        sh.sch.ShedExpired(),
		ShedCanceled:       sh.sch.ShedCanceled(),
		AbortsConflict:     sh.aborts.Load(metrics.AbortConflict),
		AbortsDeadline:     sh.aborts.Load(metrics.AbortDeadline),
		AbortsCanceled:     sh.aborts.Load(metrics.AbortCanceled),
		AbortsQueueFull:    sh.aborts.Load(metrics.AbortQueueFull),
		AbortsWALFailed:    sh.aborts.Load(metrics.AbortWALFailed),
		AbortsOther:        sh.aborts.Load(metrics.AbortOther),
		WALFailed:          sh.eng.WALErr() != nil,
		IndexRestarts:      sh.eng.IndexRestarts(),
		PartitionRestarts:  sh.eng.PartitionRestarts(),
		MorselsStolen:      sh.sch.MorselsStolen(),
		StallYields:        sh.sch.StallYields(),
		InterleaveSwitches: sh.sch.InterleaveSwitches(),
		CacheHits:          sh.reg.CacheHits(),
		CacheMisses:        sh.reg.CacheMisses(),
		CacheInvalidations: sh.reg.CacheInvalidations(),
	}
	for _, w := range sh.sch.Workers() {
		for i := 0; i < w.Core().NumContexts(); i++ {
			st.PassiveSwitches += w.Core().Context(i).TCB().PassiveSwitches()
			st.ActiveSwitches += w.Core().Context(i).TCB().ActiveSwitches()
		}
	}
	return st
}

// add accumulates o into st (counters sum; WALFailed ORs).
func (st *Stats) add(o Stats) {
	st.Commits += o.Commits
	st.Aborts += o.Aborts
	st.InterruptsSent += o.InterruptsSent
	st.StarvationSkips += o.StarvationSkips
	st.PassiveSwitches += o.PassiveSwitches
	st.ActiveSwitches += o.ActiveSwitches
	st.LogBytes += o.LogBytes
	st.LogBatches += o.LogBatches
	st.VacuumedVersions += o.VacuumedVersions
	st.ShedExpired += o.ShedExpired
	st.ShedCanceled += o.ShedCanceled
	st.DeadlineRejected += o.DeadlineRejected
	st.AbortsConflict += o.AbortsConflict
	st.AbortsDeadline += o.AbortsDeadline
	st.AbortsCanceled += o.AbortsCanceled
	st.AbortsQueueFull += o.AbortsQueueFull
	st.AbortsWALFailed += o.AbortsWALFailed
	st.AbortsOther += o.AbortsOther
	st.WALFailed = st.WALFailed || o.WALFailed
	st.IndexRestarts += o.IndexRestarts
	st.PartitionRestarts += o.PartitionRestarts
	st.MorselsStolen += o.MorselsStolen
	st.StallYields += o.StallYields
	st.InterleaveSwitches += o.InterleaveSwitches
	st.CacheHits += o.CacheHits
	st.CacheMisses += o.CacheMisses
	st.CacheInvalidations += o.CacheInvalidations
	st.ConnsShed += o.ConnsShed
	st.ConnsOpen += o.ConnsOpen
}

// ShardStats returns one Stats per shard, each shard's counters snapshotted
// exactly once. The global DeadlineRejected counter is not attributable to a
// shard and is reported only by Stats.
func (db *DB) ShardStats() []Stats {
	out := make([]Stats, len(db.shards))
	for i, sh := range db.shards {
		out[i] = sh.stats()
	}
	return out
}

// Stats returns current counters, aggregated across shards. Every per-shard
// counter is read exactly once per call (a single snapshot per shard, then
// summed), so the aggregate never double-counts or skews against the
// per-shard view returned by ShardStats.
func (db *DB) Stats() Stats {
	var agg Stats
	for _, sh := range db.shards {
		agg.add(sh.stats())
	}
	agg.DeadlineRejected = db.adm.DeadlineRejected()
	agg.ConnsShed = db.frontReg.ConnsShed()
	agg.ConnsOpen = db.frontReg.ConnsOpen()
	return agg
}

// Config returns the configuration the database was opened with (defaults
// applied). The network server reads its front-end knobs — ConnShards, the
// per-priority connection and in-flight limits — from here.
func (db *DB) Config() Config { return db.cfg }

// FrontendRegistry returns the registry the network front-end records its
// edge counters into (connections shed, open-connection gauge). It merges
// into Metrics and Stats alongside the per-shard registries.
func (db *DB) FrontendRegistry() *metrics.Registry { return db.frontReg }

// QueueDelayEstimate returns the admission controller's EWMA of observed
// scheduling queue delay. The network front-end folds its edge shedding into
// the same admission stats the engine uses for deadline-based shedding.
func (db *DB) QueueDelayEstimate() time.Duration {
	return time.Duration(db.adm.QueueDelayEstimate())
}

// CachedGet serves a point read straight from the hot-key cache, bypassing
// transaction begin, shard scheduling, and the MVCC read path entirely. It
// returns the newest committed value for the key iff it is cached (a cache
// entry is removed before any newer version publishes, so a hit is always the
// current committed value). ok is false on a miss — or always, when
// Config.CacheBytes is zero — and the caller falls back to a transaction.
// The returned slice is shared and must be treated as read-only.
func (db *DB) CachedGet(table string, key []byte) ([]byte, bool) {
	si := 0
	if len(db.shards) > 1 {
		si = dtx.ShardOf(key, len(db.shards))
	}
	return db.shards[si].eng.CachedGet(table, key)
}

// Txn is a transaction handle passed to user functions. It is only valid
// for the duration of the function call. On a sharded database each key
// access transparently routes to the owning shard; writes that land on more
// than one shard commit atomically through an internal two-phase commit.
type Txn struct {
	db  *DB
	ctx *pcontext.Context
	// inner is the single-shard fast path: set iff Shards == 1.
	inner *engine.Txn
	// parts are the lazily-begun per-shard participants (multi-shard only).
	parts []*engine.Txn
	// snapGen, once a participant exists, holds db.xsGen+1 as observed at the
	// first begin (the +1 keeps zero meaning "no participant yet"). Later
	// begins compare against it: a moved generation means a cross-shard 2PC
	// resolved between this transaction's per-shard snapshots, so the combined
	// view could be half of another transaction — fail with a retryable
	// conflict instead.
	snapGen uint64
}

// errSnapshotRace marks a multi-shard transaction whose lazily-established
// per-shard snapshots straddled a cross-shard 2PC resolution. It wraps the
// engine's conflict condition so the facade's automatic retry loop (and
// IsConflict) treats it like any other transient conflict.
var errSnapshotRace = fmt.Errorf(
	"preemptdb: cross-shard snapshot raced a two-phase commit resolution: %w", mvcc.ErrWriteConflict)

// part returns the participant transaction for shard si, beginning it on
// first touch. On a context owned by another shard's engine the participant
// begins as a guest (own oracle slot, private log buffer) — see
// engine.Engine.BeginIso. Each begin runs under the cross-shard resolution
// gate's read side, and a begin that would land on the far side of a 2PC
// resolution from this transaction's earlier snapshots fails with
// errSnapshotRace (retryable) — see DB.xsMu.
func (t *Txn) part(si int) (*engine.Txn, error) {
	if t.inner != nil {
		return t.inner, nil
	}
	p := t.parts[si]
	if p == nil {
		t.db.xsMu.RLock()
		gen := t.db.xsGen.Load() + 1
		if t.snapGen == 0 {
			t.snapGen = gen
		} else if t.snapGen != gen {
			t.db.xsMu.RUnlock()
			return nil, errSnapshotRace
		}
		p = t.db.shards[si].eng.Begin(t.ctx)
		t.parts[si] = p
		t.db.xsMu.RUnlock()
	}
	return p, nil
}

// at resolves a keyed access: the owning shard's participant and its handle
// for the named table.
func (t *Txn) at(table string, key []byte) (*engine.Txn, *engine.Table, error) {
	si := 0
	if t.inner == nil {
		si = dtx.ShardOf(key, len(t.db.shards))
	}
	tab, err := t.db.shards[si].eng.Table(table)
	if err != nil {
		return nil, nil, err
	}
	p, err := t.part(si)
	if err != nil {
		return nil, nil, err
	}
	return p, tab, nil
}

// Get returns the visible row under key in table.
func (t *Txn) Get(table string, key []byte) ([]byte, error) {
	p, tab, err := t.at(table, key)
	if err != nil {
		return nil, err
	}
	return p.Get(tab, key)
}

// Insert creates a new row; it fails on a visible duplicate key.
func (t *Txn) Insert(table string, key, value []byte) error {
	p, tab, err := t.at(table, key)
	if err != nil {
		return err
	}
	return p.Insert(tab, key, value)
}

// Update overwrites an existing visible row.
func (t *Txn) Update(table string, key, value []byte) error {
	p, tab, err := t.at(table, key)
	if err != nil {
		return err
	}
	return p.Update(tab, key, value)
}

// Put inserts or overwrites (upsert).
func (t *Txn) Put(table string, key, value []byte) error {
	p, tab, err := t.at(table, key)
	if err != nil {
		return err
	}
	return p.Put(tab, key, value)
}

// Delete removes a visible row.
func (t *Txn) Delete(table string, key []byte) error {
	p, tab, err := t.at(table, key)
	if err != nil {
		return err
	}
	return p.Delete(tab, key)
}

// Scan visits visible rows with from <= key < to in key order; fn returns
// false to stop. The scan is preemptible at every record. On a sharded
// database the per-shard scans are merged into one global key order.
func (t *Txn) Scan(table string, from, to []byte, fn func(key, value []byte) bool) error {
	if t.inner != nil {
		tab, err := t.db.shards[0].eng.Table(table)
		if err != nil {
			return err
		}
		return t.inner.Scan(tab, from, to, fn)
	}
	return t.mergeScan(table, "", from, to, false, fn)
}

// ScanDesc is Scan in descending key order.
func (t *Txn) ScanDesc(table string, from, to []byte, fn func(key, value []byte) bool) error {
	if t.inner != nil {
		tab, err := t.db.shards[0].eng.Table(table)
		if err != nil {
			return err
		}
		return t.inner.ScanDesc(tab, from, to, fn)
	}
	return t.mergeScan(table, "", from, to, true, fn)
}

// ScanIndex is Scan over a secondary index; fn receives the index key. On a
// sharded database rows merge in index-key order; rows sharing an index key
// may interleave across shards in arbitrary order.
func (t *Txn) ScanIndex(table, index string, from, to []byte, fn func(key, value []byte) bool) error {
	if t.inner != nil {
		tab, err := t.db.shards[0].eng.Table(table)
		if err != nil {
			return err
		}
		return t.inner.ScanIndex(tab, index, from, to, fn)
	}
	return t.mergeScan(table, index, from, to, false, fn)
}

// ScanIndexDesc is ScanIndex in descending index-key order.
func (t *Txn) ScanIndexDesc(table, index string, from, to []byte, fn func(key, value []byte) bool) error {
	if t.inner != nil {
		tab, err := t.db.shards[0].eng.Table(table)
		if err != nil {
			return err
		}
		return t.inner.ScanIndexDesc(tab, index, from, to, fn)
	}
	return t.mergeScan(table, index, from, to, true, fn)
}

// ParallelScan visits every visible row with from <= key < to, like Scan,
// but partitions the range into morsels and lets idle workers execute them
// concurrently as read-only helpers pinned at this transaction's snapshot —
// morsel-driven parallelism for analytical scans. morsels is the target
// fan-out (0 picks a default); the transaction must have no uncommitted
// writes. fn may be called concurrently from several workers and must be
// safe for that; rows arrive in key order within a morsel but morsels
// interleave. fn returns false to stop the scan early (remaining morsels are
// skipped at record granularity, so a few extra calls may still arrive).
// Each helper is independently preemptible: a high-priority burst interrupts
// every morsel at its next record access.
// On a sharded database the range is scanned shard by shard, each shard's
// morsels fanned out to this request's worker pool; its own engine serves the
// reads, pinned at the shard participant's snapshot.
func (t *Txn) ParallelScan(table string, from, to []byte, morsels int, fn func(key, value []byte) bool) error {
	var stop atomic.Bool
	scanShard := func(p *engine.Txn, tab *engine.Table) error {
		_, err := engine.ParallelScan(p, tab, from, to,
			engine.ParallelScanConfig{Morsels: morsels, Spawn: sched.MorselSpawner(t.ctx)},
			func(sub *engine.Txn, m engine.Morsel) (struct{}, error) {
				if stop.Load() {
					return struct{}{}, nil
				}
				return struct{}{}, sub.Scan(tab, m.From, m.To, func(k, v []byte) bool {
					if stop.Load() {
						return false
					}
					if !fn(k, v) {
						stop.Store(true)
						return false
					}
					return true
				})
			},
			func(a, _ struct{}) struct{} { return a })
		return err
	}
	if t.inner != nil {
		tab, err := t.db.shards[0].eng.Table(table)
		if err != nil {
			return err
		}
		return scanShard(t.inner, tab)
	}
	for si := range t.db.shards {
		if stop.Load() {
			return nil
		}
		tab, err := t.db.shards[si].eng.Table(table)
		if err != nil {
			return err
		}
		p, err := t.part(si)
		if err != nil {
			return err
		}
		if err := scanShard(p, tab); err != nil {
			return err
		}
	}
	return nil
}

// Yield is a handcrafted cooperative yield point (used with
// PolicyCooperativeHandcrafted): if high-priority work is queued on this
// worker, the transaction voluntarily hands over the core and resumes after
// the high-priority batch drains. A no-op on other policies' workers only
// insofar as there is no queued work; it is always safe to call.
func (t *Txn) Yield() { sched.Yield(t.ctx) }

// NonPreemptible runs fn with preemption disabled on this context — the
// application-level escape hatch for short critical sections (paper §4.4).
func (t *Txn) NonPreemptible(fn func()) { pcontext.NonPreemptible(t.ctx, fn) }

// Err returns ErrCanceled or ErrDeadlineExceeded once this transaction's
// request has been canceled or has passed its deadline, and nil otherwise.
// Engine calls already check it at every record access; long user loops
// between engine calls can poll it to unwind sooner.
func (t *Txn) Err() error { return t.ctx.Err() }

// IsNotFound reports whether err is the not-found condition.
func IsNotFound(err error) bool { return errors.Is(err, engine.ErrNotFound) }

// IsDuplicateKey reports whether err is the duplicate-key condition.
func IsDuplicateKey(err error) bool { return errors.Is(err, engine.ErrDuplicateKey) }
