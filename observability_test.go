package preemptdb

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"preemptdb/internal/dtx"
	"preemptdb/internal/pcontext"
)

// crossShardKeys returns two keys that hash to different shards (the second
// onto a different shard than the first).
func crossShardKeys(t *testing.T, shards int) ([]byte, []byte) {
	t.Helper()
	a := []byte("acct-0")
	sa := dtx.ShardOf(a, shards)
	for i := 1; i < 1000; i++ {
		b := []byte(fmt.Sprintf("acct-%d", i))
		if dtx.ShardOf(b, shards) != sa {
			return a, b
		}
	}
	t.Fatal("no cross-shard key pair found")
	return nil, nil
}

// TestTraceTxnCrossShard drives a multi-shard 2PC transaction and checks that
// DB.TraceTxn exports one merged, validator-clean Chrome trace containing the
// admission, execution, WAL, and 2PC prepare/resolve spans from every
// participant shard, stitched by flow events.
func TestTraceTxnCrossShard(t *testing.T) {
	db, err := Open("", Config{Shards: 2, Workers: 2, TraceSampling: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("kv")
	ka, kb := crossShardKeys(t, 2)

	pending, err := db.SubmitOpts(TxnOptions{Priority: High}, func(tx *Txn) error {
		if err := tx.Put("kv", ka, []byte("1")); err != nil {
			return err
		}
		return tx.Put("kv", kb, []byte("2"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pending.Wait(); err != nil {
		t.Fatal(err)
	}
	id := pending.TraceID()
	if id == 0 {
		t.Fatal("Pending.TraceID returned 0")
	}

	data, err := db.TraceTxnWait(id, time.Second)
	if err != nil {
		t.Fatalf("TraceTxn: %v", err)
	}
	if err := pcontext.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, data)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	shardPids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name]++
		if e.Name == "2pc-prepare" || e.Name == "2pc-resolve" {
			shardPids[e.Pid] = true
		}
	}
	for _, want := range []string{
		"admission+queue", fmt.Sprintf("txn %d", id), "txn-end",
		"wal group-commit wait", "2pc-prepare", "2pc-resolve", "2pc-decision", "txn-flow",
	} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span/event\nnames: %v", want, names)
		}
	}
	// Both participant shards must contribute prepare+resolve spans on their
	// own synthetic tracks.
	if len(shardPids) != 2 {
		t.Errorf("2PC spans from %d shard tracks, want 2 (pids %v)", len(shardPids), shardPids)
	}
	if names["2pc-prepare"] < 2 || names["2pc-resolve"] < 2 {
		t.Errorf("want >=2 prepare and resolve spans, got %d/%d", names["2pc-prepare"], names["2pc-resolve"])
	}
}

// TestClientSuppliedTraceID checks that a caller-provided trace id names the
// transaction in the rings verbatim.
func TestClientSuppliedTraceID(t *testing.T) {
	db, err := Open("", Config{TraceSampling: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("kv")

	const want = uint64(0xABCDEF01)
	pending, err := db.SubmitOpts(TxnOptions{TraceID: want}, func(tx *Txn) error {
		return tx.Put("kv", []byte("k"), []byte("v"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pending.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := pending.TraceID(); got != want {
		t.Fatalf("TraceID = %d, want %d", got, want)
	}
	data, err := db.TraceTxnWait(want, time.Second)
	if err != nil {
		t.Fatalf("TraceTxn under client id: %v", err)
	}
	if err := pcontext.ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecorderOnSLOBreach induces an SLO breach and checks the captured
// bundle is complete: breach identification, metrics, scheduler state, and
// trace rings.
func TestFlightRecorderOnSLOBreach(t *testing.T) {
	dir := t.TempDir()
	db, err := Open("", Config{
		Shards:            2,
		SLOHigh:           time.Nanosecond, // every hi txn breaches
		SLOCooldown:       time.Millisecond,
		FlightRecorderDir: dir,
		TraceSampling:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("kv")

	if err := db.Exec(High, func(tx *Txn) error {
		return tx.Put("kv", []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	var rec *FlightRecord
	for i := 0; i < 500 && rec == nil; i++ {
		rec = db.LastFlightRecord()
		time.Sleep(time.Millisecond)
	}
	if rec == nil {
		t.Fatal("no flight record captured after an induced SLO breach")
	}
	if rec.Class != "hi" {
		t.Errorf("breach class = %q, want hi", rec.Class)
	}
	if rec.LatencyNanos <= rec.SLONanos || rec.SLONanos != 1 {
		t.Errorf("latency %d / slo %d: breach should exceed target", rec.LatencyNanos, rec.SLONanos)
	}
	if rec.BreachesHi == 0 {
		t.Error("bundle reports zero hi breaches")
	}
	if len(rec.Sched.Shards) != 2 {
		t.Errorf("bundle sched view has %d shards, want 2", len(rec.Sched.Shards))
	}
	for _, ss := range rec.Sched.Shards {
		if len(ss.Workers) == 0 {
			t.Errorf("shard %d: no worker state in bundle", ss.Shard)
		}
		for _, ws := range ss.Workers {
			if len(ws.Slots) == 0 {
				t.Errorf("shard %d worker %d: empty slot table", ss.Shard, ws.Worker)
			}
		}
	}
	if rec.Stats.Commits == 0 {
		t.Error("bundle stats show zero commits")
	}
	if len(rec.Trace) == 0 {
		t.Error("bundle has no trace rings despite tracing enabled")
	}
	hi, _ := db.SLOBreaches()
	if hi == 0 {
		t.Error("DB.SLOBreaches reports zero hi breaches")
	}

	// The bundle must round-trip as JSON (the /debug/flight and on-disk form).
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("bundle does not serialize: %v", err)
	}
}

// TestIntrospectionUnderFire hammers every introspection surface — SchedState,
// Metrics, TraceSnapshot, TraceTxn — while a preemption-heavy workload with
// cancellations and deadline unwinds runs, asserting no torn slot-table reads
// (invalid state/class combinations) and exactly-once span closure (per-tag
// txn-start and txn-end event counts agree for finished transactions). Run
// with -race to check the sampling paths are data-race-free.
func TestIntrospectionUnderFire(t *testing.T) {
	db, err := Open("", Config{
		Shards:          2,
		Workers:         2,
		ContextsPerCore: 3,
		Policy:          PolicyPreempt,
		TraceSampling:   1,
		TraceCapacity:   1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("kv")

	// Preload the working set serially: the concurrent phase then only
	// updates existing keys, so the index sees no structural inserts while
	// being hammered (matching the torture tests' access discipline).
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if err := db.Exec(Low, func(tx *Txn) error {
			return tx.Put("kv", key, []byte("seed"))
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var inFlight sync.WaitGroup

	// Low-priority churn with occasional cancels and tight deadlines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			key := []byte(fmt.Sprintf("k%d", i%64))
			opts := TxnOptions{}
			if i%7 == 0 {
				opts.Timeout = 50 * time.Microsecond
			}
			pending, err := db.SubmitOpts(opts, func(tx *Txn) error {
				for j := 0; j < 32; j++ {
					if err := tx.Put("kv", key, []byte("v")); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				continue // queue full under churn: fine
			}
			inFlight.Add(1)
			go func(p *Pending, cancel bool) {
				defer inFlight.Done()
				if cancel {
					p.Cancel()
				}
				p.Wait()
			}(pending, i%5 == 0)
		}
	}()

	// High-priority interrupt stream driving preemptions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Exec(High, func(tx *Txn) error {
				_, err := tx.Get("kv", []byte("k1"))
				if IsNotFound(err) {
					return nil
				}
				return err
			})
		}
	}()

	// Introspection hammer: every surface, as fast as possible.
	var samples atomic.Int64
	validStates := map[string]bool{"idle": true, "running": true, "stall-parked": true, "preempted": true}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				dbg := db.SchedState()
				for _, ss := range dbg.Shards {
					for _, ws := range ss.Workers {
						for _, slot := range ws.Slots {
							if !validStates[slot.State] {
								t.Errorf("torn slot read: state %q", slot.State)
								return
							}
							if slot.State == "idle" && (slot.Class != "" || slot.TraceTag != 0) {
								t.Errorf("torn slot read: idle slot with class %q tag %d", slot.Class, slot.TraceTag)
								return
							}
							if slot.State != "idle" && slot.Class == "" {
								t.Errorf("torn slot read: %s slot without class", slot.State)
								return
							}
						}
					}
				}
				db.Metrics()
				db.TraceSnapshot()
				db.TraceTxn(uint64(samples.Add(1))) // mostly misses; must never tear
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	inFlight.Wait()

	// Exactly-once span closure: within the surviving ring window, a tag with
	// both endpoints present must have them pair 1:1. (Ring wrap can drop a
	// txn-start whose txn-end survives, so only equal-presence is asserted
	// when both endpoint kinds are in the window.)
	starts, ends := map[uint64]int{}, map[uint64]int{}
	cores, err := db.traceEvents()
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range cores {
		for _, e := range ce.Events {
			switch e.Kind {
			case pcontext.EvTxnStart:
				starts[e.Tag]++
			case pcontext.EvTxnEnd:
				ends[e.Tag]++
			}
		}
	}
	for tag, n := range starts {
		if m, ok := ends[tag]; ok && m != n {
			t.Errorf("txn %d: %d start events but %d end events", tag, n, m)
		}
	}
}
