package preemptdb

import (
	"fmt"
	"sync"
	"testing"
)

// TestCheckpointDiskConcurrent loads the database with concurrent writers,
// then fires CheckpointDisk from several goroutines at once: calls must
// serialize internally (unserialized, they race the write/prune/truncate
// sequence over the same directory listing), the retained checkpoint set must
// stay within checkpointsKept, and a reopen must recover every acked write.
// Checkpoints do not overlap the writers here: the OLC index's optimistic
// scans are validated-not-synchronized, so overlapping them would trip the
// race detector on a by-design benign race; the checkpoint-vs-commit
// publication race is covered deterministically at the WAL layer instead
// (TestPublishBarrierWaitsForStagedCommits).
func TestCheckpointDiskConcurrent(t *testing.T) {
	dir := t.TempDir()
	db := openFile(t, dir)

	const writers, keys, ckpts = 3, 60, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if err := db.Run(func(tx *Txn) error {
					return tx.Put("kv", fmt.Appendf(nil, "w%d-%03d", w, i), []byte("v"))
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var cg sync.WaitGroup
	for c := 0; c < ckpts; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			if err := db.CheckpointDisk(); err != nil {
				t.Error(err)
			}
		}()
	}
	cg.Wait()
	cks, err := db.shards[0].dir.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 || len(cks) > checkpointsKept {
		t.Fatalf("%d checkpoints retained, want 1..%d", len(cks), checkpointsKept)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openFile(t, dir)
	defer db2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < keys; i++ {
			wantKV(t, db2, fmt.Sprintf("w%d-%03d", w, i), "v")
		}
	}
}
