package preemptdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func openTest(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenCloseTwice(t *testing.T) {
	db, err := Open("", Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v", err)
	}
	if err := db.Submit(High, func(tx *Txn) error { return nil }, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestRunCRUD(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("kv")
	err := db.Run(func(tx *Txn) error {
		if err := tx.Insert("kv", []byte("a"), []byte("1")); err != nil {
			return err
		}
		return tx.Insert("kv", []byte("b"), []byte("2"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Run(func(tx *Txn) error {
		v, err := tx.Get("kv", []byte("a"))
		if err != nil || string(v) != "1" {
			return fmt.Errorf("get a = %q, %v", v, err)
		}
		if err := tx.Update("kv", []byte("a"), []byte("1b")); err != nil {
			return err
		}
		if err := tx.Delete("kv", []byte("b")); err != nil {
			return err
		}
		return tx.Put("kv", []byte("c"), []byte("3"))
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	db.Run(func(tx *Txn) error {
		return tx.Scan("kv", nil, nil, func(k, v []byte) bool {
			seen = append(seen, string(k)+"="+string(v))
			return true
		})
	})
	want := []string{"a=1b", "c=3"}
	if len(seen) != len(want) || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("scan = %v", seen)
	}
}

func TestErrorsRollBack(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	boom := errors.New("boom")
	err := db.Run(func(tx *Txn) error {
		tx.Insert("t", []byte("x"), []byte("1"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	db.Run(func(tx *Txn) error {
		if _, err := tx.Get("t", []byte("x")); !IsNotFound(err) {
			t.Errorf("rolled-back insert visible: %v", err)
		}
		return nil
	})
}

func TestUnknownTable(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	err := db.Run(func(tx *Txn) error {
		_, err := tx.Get("nope", []byte("k"))
		return err
	})
	if err == nil {
		t.Fatal("unknown table must error")
	}
	if err := db.CreateIndex("nope", "i", func(k, v []byte) []byte { return nil }); err == nil {
		t.Fatal("index on unknown table must error")
	}
}

func TestDuplicateKeyError(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	db.Run(func(tx *Txn) error { return tx.Insert("t", []byte("k"), []byte("v")) })
	err := db.Run(func(tx *Txn) error { return tx.Insert("t", []byte("k"), []byte("v2")) })
	if !IsDuplicateKey(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestSecondaryIndexThroughAPI(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("users")
	if err := db.CreateIndex("users", "bycity", func(k, row []byte) []byte {
		return append([]byte(nil), row...) // index the whole row (the city)
	}); err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Txn) error {
		tx.Insert("users", []byte("u1"), []byte("berlin"))
		tx.Insert("users", []byte("u2"), []byte("tokyo"))
		tx.Insert("users", []byte("u3"), []byte("berlin"))
		return nil
	})
	var hits int
	db.Run(func(tx *Txn) error {
		return tx.ScanIndex("users", "bycity", []byte("berlin"), []byte("berlio"),
			func(k, v []byte) bool { hits++; return true })
	})
	if hits != 2 {
		t.Fatalf("index hits = %d", hits)
	}
}

func TestExecBothPriorities(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt})
	db.CreateTable("t")
	if err := db.Exec(Low, func(tx *Txn) error {
		return tx.Insert("t", []byte("lo"), []byte("1"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(High, func(tx *Txn) error {
		return tx.Insert("t", []byte("hi"), []byte("2"))
	}); err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Txn) error {
		if _, err := tx.Get("t", []byte("lo")); err != nil {
			t.Error(err)
		}
		if _, err := tx.Get("t", []byte("hi")); err != nil {
			t.Error(err)
		}
		return nil
	})
}

func TestHighPreemptsLow(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt})
	db.CreateTable("data")
	// Load enough rows that a full scan takes a while.
	db.Run(func(tx *Txn) error {
		var k [8]byte
		for i := 0; i < 50000; i++ {
			binary.BigEndian.PutUint64(k[:], uint64(i))
			if err := tx.Insert("data", k[:], bytes.Repeat([]byte("x"), 64)); err != nil {
				return err
			}
		}
		return nil
	})

	longDone := make(chan struct{})
	db.Submit(Low, func(tx *Txn) error {
		// A long analytical scan, repeated to stretch it out.
		for i := 0; i < 20; i++ {
			tx.Scan("data", nil, nil, func(k, v []byte) bool { return true })
		}
		return nil
	}, func(error) { close(longDone) })

	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	if err := db.Exec(High, func(tx *Txn) error {
		_, err := tx.Get("data", binary.BigEndian.AppendUint64(nil, 7))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	hiLatency := time.Since(start)
	select {
	case <-longDone:
		t.Log("long scan finished before high-priority txn; timing too tight to assert preemption")
	default:
		if hiLatency > 100*time.Millisecond {
			t.Fatalf("high-priority latency %v under preemption", hiLatency)
		}
	}
	<-longDone
	st := db.Stats()
	if st.InterruptsSent == 0 {
		t.Fatal("no interrupts sent")
	}
	if st.Commits == 0 {
		t.Fatal("no commits counted")
	}
}

func TestSubmitAsyncDone(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	var calls atomic.Int32
	done := make(chan error, 1)
	err := db.Submit(High, func(tx *Txn) error {
		calls.Add(1)
		return tx.Insert("t", []byte("k"), []byte("v"))
	}, func(err error) { done <- err })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("done callback never fired")
	}
	if calls.Load() != 1 {
		t.Fatalf("work ran %d times", calls.Load())
	}
}

func TestQueueFull(t *testing.T) {
	db := openTest(t, Config{Workers: 1, LoQueueSize: 1})
	db.CreateTable("t")
	block := make(chan struct{})
	// Occupy the worker.
	db.Submit(Low, func(tx *Txn) error { <-block; return nil }, nil)
	time.Sleep(2 * time.Millisecond)
	// Fill the single queue slot.
	filled := false
	for i := 0; i < 3; i++ {
		if err := db.Submit(Low, func(tx *Txn) error { return nil }, nil); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("err = %v", err)
			}
			filled = true
			break
		}
	}
	close(block)
	if !filled {
		t.Fatal("queue never reported full")
	}
}

func TestConflictRetryTransparent(t *testing.T) {
	db := openTest(t, Config{Workers: 2})
	db.CreateTable("ctr")
	db.Run(func(tx *Txn) error { return tx.Insert("ctr", []byte("n"), make([]byte, 8)) })

	const workers, perWorker = 4, 200
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < perWorker; i++ {
				err := db.Run(func(tx *Txn) error {
					v, err := tx.Get("ctr", []byte("n"))
					if err != nil {
						return err
					}
					n := binary.LittleEndian.Uint64(v)
					return tx.Update("ctr", []byte("n"), binary.LittleEndian.AppendUint64(nil, n+1))
				})
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	db.Run(func(tx *Txn) error {
		v, _ := tx.Get("ctr", []byte("n"))
		if n := binary.LittleEndian.Uint64(v); n != workers*perWorker {
			t.Errorf("counter = %d, want %d", n, workers*perWorker)
		}
		return nil
	})
}

func TestSerializableConfig(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Isolation: Serializable})
	db.CreateTable("t")
	if err := db.Run(func(tx *Txn) error {
		return tx.Insert("t", []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVacuum(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	db.Run(func(tx *Txn) error { return tx.Insert("t", []byte("k"), []byte("v0")) })
	for i := 0; i < 5; i++ {
		db.Run(func(tx *Txn) error {
			return tx.Update("t", []byte("k"), []byte{byte('0' + i)})
		})
	}
	if n := db.Vacuum(); n != 5 {
		t.Fatalf("vacuum reclaimed %d, want 5", n)
	}
}

func TestWALRecoveryThroughAPI(t *testing.T) {
	var log bytes.Buffer
	db := openTest(t, Config{Workers: 1, LogSink: &log})
	db.CreateTable("t")
	db.Run(func(tx *Txn) error { return tx.Insert("t", []byte("k"), []byte("v")) })
	db.Close()
	if log.Len() == 0 {
		t.Fatal("no log bytes written")
	}
	if db.Stats().LogBytes == 0 {
		t.Fatal("log bytes not counted")
	}
}

func TestYieldAndNonPreemptibleSafeEverywhere(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyCooperativeHandcrafted})
	db.CreateTable("t")
	err := db.Exec(Low, func(tx *Txn) error {
		tx.NonPreemptible(func() {
			// Critical section: preemption masked.
		})
		tx.Yield()
		return tx.Insert("t", []byte("k"), []byte("v"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Also on a detached context via Run.
	if err := db.Run(func(tx *Txn) error { tx.Yield(); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyWait:                   "Wait",
		PolicyCooperative:            "Cooperative",
		PolicyCooperativeHandcrafted: "Cooperative (Handcrafted)",
		PolicyPreempt:                "PreemptDB",
	} {
		if p.String() != want {
			t.Errorf("%d: %q", p, p.String())
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	db.Run(func(tx *Txn) error { return tx.Insert("t", []byte("a"), []byte("b")) })
	st := db.Stats()
	if st.Commits == 0 {
		t.Fatal("commits not counted")
	}
}

func TestParallelScanAPI(t *testing.T) {
	db := openTest(t, Config{Workers: 4, Policy: PolicyPreempt})
	db.CreateTable("rows")
	const n = 20000
	var want uint64
	if err := db.Run(func(tx *Txn) error {
		for i := 0; i < n; i++ {
			// Fresh buffers per row: the engine stores key/value by reference.
			var k [4]byte
			var v [8]byte
			binary.BigEndian.PutUint32(k[:], uint32(i))
			binary.LittleEndian.PutUint64(v[:], uint64(i))
			if err := tx.Insert("rows", k[:], v[:]); err != nil {
				return err
			}
			want += uint64(i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var sum, count atomic.Uint64
	if err := db.Exec(Low, func(tx *Txn) error {
		return tx.ParallelScan("rows", nil, nil, 16, func(k, v []byte) bool {
			sum.Add(binary.LittleEndian.Uint64(v))
			count.Add(1)
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != want || count.Load() != n {
		t.Fatalf("sum=%d count=%d, want %d/%d", sum.Load(), count.Load(), want, n)
	}

	// Early stop: the scan unwinds without visiting everything.
	var visited atomic.Uint64
	if err := db.Exec(Low, func(tx *Txn) error {
		return tx.ParallelScan("rows", nil, nil, 16, func(k, v []byte) bool {
			return visited.Add(1) < 10
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := visited.Load(); got >= n {
		t.Fatalf("early stop visited all %d rows", got)
	}

	// Writer transactions cannot ParallelScan.
	err := db.Run(func(tx *Txn) error {
		if err := tx.Put("rows", []byte("zzzz"), []byte("x")); err != nil {
			return err
		}
		return tx.ParallelScan("rows", nil, nil, 4, func(_, _ []byte) bool { return true })
	})
	if err == nil {
		t.Fatal("ParallelScan on a writer parent must fail")
	}

	st := db.Stats()
	if st.MorselsStolen == 0 {
		t.Log("no morsels stolen (all inline) — acceptable but unusual with 4 workers")
	}
	if st.PartitionRestarts > st.IndexRestarts+1<<20 {
		t.Fatalf("restart counters implausible: %+v", st)
	}
}
