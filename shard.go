package preemptdb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"preemptdb/internal/dtx"
	"preemptdb/internal/engine"
	"preemptdb/internal/store"
	"preemptdb/internal/wal"
)

// maxShards bounds Config.Shards; each shard carries a full engine +
// scheduler stack (Workers goroutines each), so the useful range is small.
const maxShards = 64

// ensureDecisionTables creates the 2PC decision table on every shard of a
// multi-shard database. Called after the user schema so user table ids are
// identical to a single-shard database's; skipped entirely at Shards == 1,
// keeping that layout byte-identical to the pre-sharding format.
func (db *DB) ensureDecisionTables() {
	if len(db.shards) == 1 {
		return
	}
	for _, sh := range db.shards {
		dtx.EnsureTable(sh.eng)
	}
}

// close releases a shard's engine and segmented log (schedulers, when
// started, are stopped by DB.Close before this runs).
func (sh *shard) close() error {
	err := sh.eng.Close()
	if sh.dlog != nil {
		if cerr := sh.dlog.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// recover rebuilds this shard's in-memory state from ck (when non-nil) plus
// the WAL suffix past it, truncates the log's torn tail, and positions the
// segmented log and LSN counter at the verified stream end. It returns the
// shard's in-doubt 2PC prepares — transactions whose prepare frame survived
// but whose outcome needs the coordinator decision tables, which only exist
// once every shard has recovered (dtx.ResolveInDoubt).
func (sh *shard) recover(cfg Config, ck *store.Checkpoint) ([]wal.PreparedTxn, error) {
	if cfg.Schema != nil {
		// The schema callback takes the public facade; a single-shard view of
		// this shard routes its CreateTable/CreateIndex calls here.
		if err := cfg.Schema(&DB{cfg: cfg, shards: []*shard{sh}}); err != nil {
			return nil, err
		}
	}
	if cfg.Shards > 1 {
		dtx.EnsureTable(sh.eng)
	}
	start := uint64(0)
	if ck != nil {
		f, err := os.Open(ck.Path)
		if err != nil {
			return nil, err
		}
		err = sh.eng.RestoreCheckpoint(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint at LSN %d: %w", ck.LSN, err)
		}
		start = ck.LSN
	}
	r, err := sh.dir.OpenReplay(start)
	if err != nil {
		return nil, err
	}
	res, pending, rerr := sh.eng.RecoverPrepared(r)
	r.Close()
	if rerr != nil {
		return nil, fmt.Errorf("replay from LSN %d: %w", start, rerr)
	}
	validEnd := start + res.Offset
	if err := sh.dir.TruncateTail(validEnd); err != nil {
		return nil, err
	}
	// Reposition also cross-checks validEnd against the on-disk stream: a
	// checkpoint whose LSN the log never durably reached fails here and falls
	// back to an older candidate.
	if err := sh.dlog.Reposition(validEnd); err != nil {
		return nil, err
	}
	sh.eng.Log().SetLSN(validEnd)
	return pending, nil
}

// openShard recovers shard si from its directory under root, trying recovery
// candidates newest-checkpoint-first exactly like the single-shard open.
func openShard(root string, cfg Config, si int) (*shard, []wal.PreparedTxn, error) {
	d, err := store.Open(filepath.Join(root, fmt.Sprintf("shard-%d", si)))
	if err != nil {
		return nil, nil, err
	}
	cks, err := d.Checkpoints()
	if err != nil {
		return nil, nil, err
	}
	var errs []error
	for i := len(cks); i >= 0; i-- {
		var ck *store.Checkpoint
		if i > 0 {
			ck = &cks[i-1]
		}
		sh := newShard(cfg, si, d.NewLog(cfg.SegmentBytes))
		sh.dir = d
		pending, err := sh.recover(cfg, ck)
		if err != nil {
			sh.close()
			errs = append(errs, err)
			continue
		}
		return sh, pending, nil
	}
	return nil, nil, errors.Join(errs...)
}

// openSharded is the multi-shard file-backed open: recover every shard from
// dir/shard-<i>/, then — once all decision tables are back — settle each
// shard's in-doubt 2PC prepares against them, and only then start schedulers
// and accept work.
func openSharded(dir string, cfg Config) (*DB, error) {
	applyDefaults(&cfg)
	shs := make([]*shard, cfg.Shards)
	pends := make([][]wal.PreparedTxn, cfg.Shards)
	fail := func(err error) (*DB, error) {
		for _, sh := range shs {
			if sh != nil {
				sh.close()
			}
		}
		return nil, err
	}
	for i := range shs {
		sh, pending, err := openShard(dir, cfg, i)
		if err != nil {
			return fail(fmt.Errorf("preemptdb: open %s shard %d: %w", dir, i, err))
		}
		shs[i] = sh
		pends[i] = pending
	}
	engines := make([]*engine.Engine, len(shs))
	for i, sh := range shs {
		engines[i] = sh.eng
	}
	for i, sh := range shs {
		if len(pends[i]) == 0 {
			continue
		}
		if _, err := dtx.ResolveInDoubt(sh.eng, pends[i], engines); err != nil {
			return fail(fmt.Errorf("preemptdb: open %s shard %d: resolve in-doubt: %w", dir, i, err))
		}
	}
	return assembleDB(cfg, shs)
}

// nextGID issues a globally-unique 2PC transaction id: random per-Open base
// plus counter, GIDBit set (see DB.gidBase).
func (db *DB) nextGID() uint64 {
	return dtx.GIDBit | ((db.gidBase + db.gidCtr.Add(1)) &^ dtx.GIDBit)
}

// abortParts aborts every still-open participant (deferred by attempt, so a
// failed or half-committed attempt always releases its holds; commitParts
// nils out participants as it consumes them).
func (t *Txn) abortParts() {
	for i, p := range t.parts {
		if p != nil {
			p.Abort()
			t.parts[i] = nil
		}
	}
}

// commitParts commits a multi-shard attempt. Participants that wrote nothing
// commit first — their serializable read validation still gates the whole
// transaction, and they publish nothing, so an abort after they commit
// leaves no trace. Then: zero writers is done, one writer is an ordinary
// single-shard commit (the common case for hash-routed point transactions),
// and several writers run two-phase commit under a fresh gid.
func (t *Txn) commitParts() error {
	var writers []int
	for si, p := range t.parts {
		if p == nil {
			continue
		}
		if p.Pending() > 0 {
			writers = append(writers, si)
			continue
		}
		t.parts[si] = nil
		if err := p.Commit(); err != nil {
			return err // read validation failed: deferred abortParts clears the rest
		}
	}
	switch len(writers) {
	case 0:
		return nil
	case 1:
		p := t.parts[writers[0]]
		t.parts[writers[0]] = nil
		return p.Commit()
	}
	parts := make([]dtx.Participant, len(writers))
	for i, si := range writers {
		parts[i] = dtx.Participant{Shard: si, Txn: t.parts[si], Eng: t.db.shards[si].eng}
		t.parts[si] = nil
	}
	// The resolution gate publishes all participants inside one critical
	// section of db.xsMu, fencing concurrent multi-shard snapshot
	// establishment (Txn.part) so no reader assembles a cross-shard view that
	// includes this transaction on one shard but not another.
	return dtx.CommitCrossShard(t.db.nextGID(), parts, resolutionGate{t.db})
}

// resolutionGate adapts DB.xsMu/xsGen to dtx.ResolutionGate: 2PC resolution
// runs under the write lock and advances the snapshot generation on release,
// invalidating multi-shard snapshot establishments in progress on either side
// of it (see Txn.part).
type resolutionGate struct{ db *DB }

func (g resolutionGate) Lock() { g.db.xsMu.Lock() }
func (g resolutionGate) Unlock() {
	g.db.xsGen.Add(1)
	g.db.xsMu.Unlock()
}

// mergeBatch is how many rows a merge cursor pulls from its shard per
// refill: large enough to amortize the B+tree descent per batch, small
// enough that early-stopping scans don't over-read.
const mergeBatch = 128

// scanCursor is one shard's leg of a merged cross-shard scan: it pulls rows
// in batches through bounded sub-scans, advancing its moving bound past the
// last row each refill. All reads run through the shard participant, so the
// merged scan has exactly one snapshot per shard, consistent with the
// transaction's point reads.
type scanCursor struct {
	txn   *engine.Txn
	tab   *engine.Table
	index string // secondary index name, "" for the primary
	desc  bool
	// next is the moving bound — exclusive-lower successor (ascending) or
	// exclusive upper (descending); fixed is the other, caller-given bound.
	next, fixed []byte
	keys, vals  [][]byte
	pos         int
	exhausted   bool
}

func (c *scanCursor) refill() error {
	c.keys, c.vals, c.pos = c.keys[:0], c.vals[:0], 0
	if c.exhausted {
		return nil
	}
	stopped := false
	collect := func(k, v []byte) bool {
		// A batch only breaks on a key change: non-unique index keys must not
		// straddle a batch boundary, or the moving bound (which is in key
		// space) would skip or repeat the rest of the duplicate run.
		if len(c.keys) >= mergeBatch && !bytes.Equal(k, c.keys[len(c.keys)-1]) {
			stopped = true
			return false
		}
		c.keys = append(c.keys, append([]byte(nil), k...))
		c.vals = append(c.vals, append([]byte(nil), v...))
		return true
	}
	var err error
	switch {
	case c.desc && c.index == "":
		err = c.txn.ScanDesc(c.tab, c.fixed, c.next, collect)
	case c.desc:
		err = c.txn.ScanIndexDesc(c.tab, c.index, c.fixed, c.next, collect)
	case c.index == "":
		err = c.txn.Scan(c.tab, c.next, c.fixed, collect)
	default:
		err = c.txn.ScanIndex(c.tab, c.index, c.next, c.fixed, collect)
	}
	if err != nil {
		return err
	}
	if !stopped {
		// The sub-scan ran off the end of the range on its own; there is
		// nothing past these rows.
		c.exhausted = true
	}
	if len(c.keys) > 0 {
		last := c.keys[len(c.keys)-1]
		if c.desc {
			// Bounds are half-open [from, to): the whole duplicate run of the
			// last key was collected, so the key itself is the next exclusive
			// upper bound.
			c.next = last
		} else {
			// Smallest possible key strictly greater than last.
			c.next = append(append([]byte(nil), last...), 0)
		}
	}
	return nil
}

// mergeScan runs a cross-shard range scan by k-way merging per-shard batched
// cursors into one global order (ascending or descending; primary-key or
// index-key). fn's contract matches the single-shard scans; rows that share
// an index key may interleave across shards in arbitrary order.
func (t *Txn) mergeScan(table, index string, from, to []byte, desc bool, fn func(key, value []byte) bool) error {
	cursors := make([]*scanCursor, 0, len(t.db.shards))
	for si := range t.db.shards {
		tab, err := t.db.shards[si].eng.Table(table)
		if err != nil {
			return err
		}
		ptxn, err := t.part(si)
		if err != nil {
			return err
		}
		c := &scanCursor{txn: ptxn, tab: tab, index: index, desc: desc}
		if desc {
			c.fixed, c.next = from, to
		} else {
			c.next, c.fixed = from, to
		}
		if err := c.refill(); err != nil {
			return err
		}
		if len(c.keys) > 0 {
			cursors = append(cursors, c)
		}
	}
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			cmp := bytes.Compare(cursors[i].keys[cursors[i].pos], cursors[best].keys[cursors[best].pos])
			if (desc && cmp > 0) || (!desc && cmp < 0) {
				best = i
			}
		}
		c := cursors[best]
		if !fn(c.keys[c.pos], c.vals[c.pos]) {
			return nil
		}
		c.pos++
		if c.pos == len(c.keys) {
			if err := c.refill(); err != nil {
				return err
			}
			if len(c.keys) == 0 {
				cursors[best] = cursors[len(cursors)-1]
				cursors = cursors[:len(cursors)-1]
			}
		}
	}
	return nil
}
