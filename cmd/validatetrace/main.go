// Command validatetrace checks that a file is a well-formed Chrome
// trace-event JSON document as produced by preemptbench -trace,
// DB.TraceSnapshot, or DB.TraceTxn: parseable, non-empty, known event
// phases, non-negative durations, monotonic timestamps, and coherent
// cross-shard flow events (every flow started is finished, steps never
// precede their start). CI uses it to validate the trace artifacts; it is
// also a quick sanity check before loading a trace into ui.perfetto.dev.
//
// Usage: validatetrace trace.json
package main

import (
	"fmt"
	"os"

	"preemptdb/internal/pcontext"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: validatetrace <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "validatetrace:", err)
		os.Exit(1)
	}
	if err := pcontext.ValidateChromeTrace(data); err != nil {
		fmt.Fprintf(os.Stderr, "validatetrace: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Chrome trace (%d bytes)\n", os.Args[1], len(data))
}
