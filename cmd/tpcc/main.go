// Command tpcc loads and runs the standard TPC-C mix against the PreemptDB
// storage engine on N worker goroutines, printing per-type throughput and a
// latency summary. It exercises the engine without the scheduling layer —
// useful for profiling storage-path changes in isolation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/engine"
	"preemptdb/internal/metrics"
	"preemptdb/internal/rng"
	"preemptdb/internal/tpcc"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 2, "number of warehouses")
		customers  = flag.Int("customers", 256, "customers per district")
		items      = flag.Int("items", 5000, "catalog size")
		threads    = flag.Int("threads", 2, "worker goroutines")
		duration   = flag.Duration("duration", 5*time.Second, "run duration")
		check      = flag.Bool("check", true, "verify TPC-C consistency conditions after the run")
	)
	flag.Parse()

	e := engine.New(engine.Config{})
	tpcc.CreateSchema(e)
	fmt.Printf("loading %d warehouses (%d customers/district, %d items)...\n",
		*warehouses, *customers, *items)
	loadStart := time.Now()
	cfg, err := tpcc.Load(e, tpcc.ScaleConfig{
		Warehouses: *warehouses, Customers: *customers, Items: *items,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %v\n", time.Since(loadStart).Round(time.Millisecond))
	client := tpcc.NewClient(e, cfg)

	type shard struct {
		counts [5]uint64
		hist   metrics.Histogram
	}
	shards := make([]shard, *threads)
	var wg sync.WaitGroup
	stopAt := clock.Nanos() + int64(*duration)
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rng.New(uint64(t + 1))
			sh := &shards[t]
			for clock.Nanos() < stopAt {
				kind := tpcc.PickMix(r)
				w := uint32(r.IntRange(1, cfg.Warehouses))
				start := clock.Nanos()
				err := client.Run(kind, nil, r, w)
				if err != nil && !errors.Is(err, tpcc.ErrUserAbort) {
					fmt.Fprintln(os.Stderr, "txn:", err)
					os.Exit(1)
				}
				sh.hist.Record(clock.Nanos() - start)
				sh.counts[kind]++
			}
		}(t)
	}
	wg.Wait()

	var total uint64
	var counts [5]uint64
	var hist metrics.Histogram
	for i := range shards {
		for k, c := range shards[i].counts {
			counts[k] += c
			total += c
		}
		hist.Merge(&shards[i].hist)
	}
	secs := duration.Seconds()
	fmt.Printf("\n%.0f txn/s total over %v (%d committed, %d aborted)\n",
		float64(total)/secs, *duration, e.Commits(), e.Aborts())
	tbl := metrics.NewTable("type", "count", "tps", "share")
	for k := tpcc.TxNewOrder; k <= tpcc.TxStockLevel; k++ {
		tbl.AddRow(k.String(), counts[k],
			fmt.Sprintf("%.0f", float64(counts[k])/secs),
			fmt.Sprintf("%.1f%%", float64(counts[k])/float64(total)*100))
	}
	fmt.Print(tbl.String())
	s := hist.Summarize()
	fmt.Printf("latency: %s\n", s)

	if *check {
		if err := client.CheckConsistency(); err != nil {
			fmt.Fprintln(os.Stderr, "CONSISTENCY VIOLATION:", err)
			os.Exit(1)
		}
		fmt.Println("consistency conditions 1-4: OK")
	}
}
