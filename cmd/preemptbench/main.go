// Command preemptbench regenerates the figures from the paper's evaluation
// (§6) on the simulated-UINTR substrate. Each experiment prints the same
// data series the corresponding figure plots.
//
// Usage:
//
//	preemptbench -experiment fig10 -duration 3s -workers 2
//	preemptbench -experiment all
//
// Run -experiment help (or any unknown name) for the experiment list; it is
// generated from the same registry that drives dispatch, so the help text,
// the dispatch switch, and the "all" sequence cannot drift apart.
// parallelscan, shardbench, and interleave also write their results to
// -scanout (BENCH_scan.json), -shardout (BENCH_shard.json), and
// -interleaveout (BENCH_interleave.json) in the same envelope as
// BENCH_commit.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"preemptdb/internal/bench"
)

// flags shared by the experiment runners (parsed once in main).
type flags struct {
	duration         time.Duration
	scanout          string
	shardout         string
	interleaveout    string
	frontendout      string
	traceout         string
	traceoverheadout string
	tracetxnout      string
}

// experiment is one registry entry: the -experiment id, a one-line help
// string, whether "all" includes it, and the runner itself. The registry is
// the single source of truth for the help text, the dispatch, and the "all"
// sequence.
type experiment struct {
	id    string
	help  string
	inAll bool
	run   func(opt bench.Options, fl flags) error
}

// experiments lists every runnable experiment in "all" order (entries with
// inAll=false keep their position for help purposes only).
var experiments = []experiment{
	{"uintr", "user-interrupt delivery latency microbenchmark (§6.1)", true,
		func(opt bench.Options, fl flags) error { _, err := bench.UintrLatency(opt, 0); return err }},
	{"switch", "context switch round-trip microbenchmark (§6.1)", true,
		func(opt bench.Options, fl flags) error { _, err := bench.ContextSwitch(opt, 0); return err }},
	{"fig1", "scheduling latency of high-priority NewOrder by policy", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig1(opt); return err }},
	{"trace", "scheduling-event timeline (figure 2); -trace writes Chrome trace JSON", false,
		func(opt bench.Options, fl flags) error {
			_, cores, err := bench.Trace(opt)
			if err == nil && fl.traceout != "" {
				if err = bench.WriteChromeTrace(fl.traceout, cores); err == nil {
					fmt.Printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n", fl.traceout)
				}
			}
			return err
		}},
	{"fig8", "uintr machinery overhead on standard TPC-C", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig8(opt); return err }},
	{"fig9", "end-to-end latency decomposition by policy", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig9(opt); return err }},
	{"fig10", "high-priority latency vs arrival rate", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig10(opt); return err }},
	{"fig11", "low-priority (Q2) throughput cost by policy", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig11(opt); return err }},
	{"fig12", "starvation threshold sweep", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig12(opt); return err }},
	{"fig13", "yield interval sweep (cooperative)", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Fig13(opt); return err }},
	{"shed", "deadline-based load shedding under overload", true,
		func(opt bench.Options, fl flags) error { _, err := bench.Shed(opt); return err }},
	{"parallelscan", "morsel-parallel Q2 scaling; writes -scanout", true,
		func(opt bench.Options, fl flags) error {
			res, err := bench.ParallelScan(opt, nil)
			if err != nil || fl.scanout == "" {
				return err
			}
			cmd := fmt.Sprintf("preemptbench -experiment parallelscan -duration %v", fl.duration)
			notes := []string{
				fmt.Sprintf("Host exposes %d CPU(s); wall-clock speedup from morsel parallelism requires spare physical cores — on a single-CPU host helpers timeshare one core and speedup is bounded at ~1x.", res.NumCPU),
				"hi_* latencies: end-to-end Payment latency under PolicyPreempt while scans run continuously; parallel scans must keep p99 within noise of sequential (every helper is independently preemptible).",
			}
			return bench.WriteScanJSON(fl.scanout, cmd, res, notes)
		}},
	{"shardbench", "hash-sharded scaling and 2PC cross-shard sweep; writes -shardout", true,
		func(opt bench.Options, fl flags) error {
			res, err := bench.ShardBench(opt)
			if err != nil || fl.shardout == "" {
				return err
			}
			cmd := fmt.Sprintf("preemptbench -experiment shardbench -duration %v", fl.duration)
			notes := []string{
				fmt.Sprintf("Host exposes %d CPU(s); per-shard scheduler cores are goroutines, so throughput scaling with shard count requires spare physical CPUs — on a single-CPU host all shards timeshare one core and the scaling curve is expected to be flat (the per-shard isolation and 2PC overhead shapes, not absolute scaling, are the reproduction target).", res.NumCPU),
				"scaling: closed-loop single-shard read-modify-write txns, hash-routed; zero cross-shard coordination on this path.",
				"cross_sweep_4_shards: the listed percentage of txns touch two keys on different shards and commit via prepare frames + a coordinator decision record on the existing group-commit WAL (2PC, presumed abort).",
				"hi_per_shard_4_shards: end-to-end latency of high-priority point reads routed to each shard under PolicyPreempt while low-priority load runs on all shards — per-shard preemption isolation.",
			}
			return bench.WriteBenchJSON(fl.shardout, cmd, res, notes)
		}},
	{"interleave", "K-way context multiplexing sweep (K=2/4/8); writes -interleaveout", true,
		func(opt bench.Options, fl flags) error {
			res, err := bench.Interleave(opt)
			if err != nil || fl.interleaveout == "" {
				return err
			}
			cmd := fmt.Sprintf("preemptbench -experiment interleave -duration %v", fl.duration)
			notes := []string{
				fmt.Sprintf("Host exposes %d CPU(s); the simulated stall boundaries carry no real memory-stall latency, so on CPU-starved hosts K-way rotation is pure switch overhead and q2_tps is expected flat-to-slightly-down as K grows — the reproduction target is the flat hi_p99_ns column (interleaving must not move the high-priority tail) plus non-zero stall_yields/interleave_switches only at K>2.", res.NumCPU),
				"Each point: mixed TP/AP load under PolicyPreempt — low-priority Q2 batch work filling K-1 slots per core, batched high-priority NewOrder/Payment arrivals preempting via the distinct preemptive context.",
			}
			return bench.WriteInterleaveJSON(fl.interleaveout, cmd, res, notes)
		}},
	{"traceoverhead", "commit-path cost of txn tracing off/sampled/always; writes -traceoverheadout", true,
		func(opt bench.Options, fl flags) error {
			res, err := bench.TraceOverhead(opt)
			if err != nil {
				return err
			}
			if fl.tracetxnout != "" {
				trace, err := bench.CrossShardTraceExport()
				if err != nil {
					return err
				}
				if err := os.WriteFile(fl.tracetxnout, trace, 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote merged cross-shard txn trace to %s (open in ui.perfetto.dev)\n", fl.tracetxnout)
			}
			if fl.traceoverheadout == "" {
				return nil
			}
			cmd := fmt.Sprintf("preemptbench -experiment traceoverhead -duration %v", fl.duration)
			notes := []string{
				fmt.Sprintf("Host exposes %d CPU(s); absolute latencies track the host — the reproduction target is the sampled row's overhead_pct staying within the paper's ~5%% observability budget of the off row.", res.NumCPU),
				"Modes: off = trace rings and span recording disabled (TraceCapacity/TraceSampling -1); sampled = shipping default (rings on, WAL-wait spans on the 1-in-32 commit probe); always = every span recorded (TraceSampling 1).",
				"Each point is the BenchmarkCommitSI engine loop run on a live core with a trace ring attached; the three modes' windows interleave round-robin and each keeps its lowest-mean window, so host-load drift cancels instead of landing on one mode.",
				"Run-to-run variance on this host is roughly +/-5%: the sampled row lands on either side of zero across runs, i.e. the default 1-in-32 probe is indistinguishable from tracing off at the noise floor, while always-on tracing measures a consistent double-digit penalty.",
				"allocs_per_txn is a whole-process runtime.MemStats Mallocs delta over committed txns; ~0 confirms the pooled commit path stays allocation-free with tracing enabled (the engine's 0 allocs/op guarantee is enforced separately by TestCommitAllocsWithMetrics).",
				"-tracetxn additionally exports one cross-shard 2PC transaction's merged Chrome trace (DB.TraceTxn) for cmd/validatetrace.",
			}
			return bench.WriteBenchJSON(fl.traceoverheadout, cmd, res, notes)
		}},
	{"frontend", "network front-end: hot-key cache A/B and edge-admission flood; writes -frontendout", true,
		func(opt bench.Options, fl flags) error {
			res, err := bench.Frontend(opt)
			if err != nil || fl.frontendout == "" {
				return err
			}
			cmd := fmt.Sprintf("preemptbench -experiment frontend -duration %v", fl.duration)
			notes := []string{
				fmt.Sprintf("Host exposes %d CPU(s); both phases are closed-loop over loopback TCP, so absolute throughput/latency track the host — the reproduction targets are the shapes: cache hit rate >=80%% on the Zipf(0.99) read workload, cached reads faster than uncached, and high-priority p99 no worse with edge admission on than off under the low-priority flood.", res.NumCPU),
				"cache_sweep: single-key Gets over the wire, Zipfian keys; cache=true serves hits from the front-end's read-through cache without entering a scheduler core (hit_rate from DB cache counters).",
				"admission_flood: paced high-priority point reads sharing the server with a closed-loop low-priority RMW flood; admission=true bounds low-priority in-flight requests at the edge (LoInFlightLimit) and sheds with typed statusQueueFull frames (lo_shed counts client-observed sheds, conns_shed the server counter).",
			}
			return bench.WriteBenchJSON(fl.frontendout, cmd, res, notes)
		}},
}

// experimentIDs renders the -experiment value list (registry order + all).
func experimentIDs() string {
	ids := make([]string, 0, len(experiments)+1)
	for _, e := range experiments {
		ids = append(ids, e.id)
	}
	return strings.Join(append(ids, "all"), "|")
}

func usage(w *os.File) {
	fmt.Fprintln(w, "experiments:")
	for _, e := range experiments {
		all := ""
		if !e.inAll {
			all = " (not in 'all')"
		}
		fmt.Fprintf(w, "  %-13s %s%s\n", e.id, e.help, all)
	}
	fmt.Fprintf(w, "  %-13s every experiment marked above, in order\n", "all")
}

func main() {
	var (
		experimentFlag   = flag.String("experiment", "all", "which experiment to run ("+experimentIDs()+")")
		duration         = flag.Duration("duration", 3*time.Second, "measurement window per data point")
		workers          = flag.Int("workers", 0, "simulated worker cores (0 = one per spare physical CPU)")
		arrival          = flag.Duration("arrival", time.Millisecond, "high-priority batch arrival interval")
		scanout          = flag.String("scanout", "BENCH_scan.json", "output path for the parallelscan experiment's JSON ('' disables)")
		shardout         = flag.String("shardout", "BENCH_shard.json", "output path for the shardbench experiment's JSON ('' disables)")
		interleaveout    = flag.String("interleaveout", "BENCH_interleave.json", "output path for the interleave experiment's JSON ('' disables)")
		frontendout      = flag.String("frontendout", "BENCH_frontend.json", "output path for the frontend experiment's JSON ('' disables)")
		traceout         = flag.String("trace", "", "write the trace experiment's scheduling events as Chrome trace-event JSON (perfetto-loadable) to this path")
		traceoverheadout = flag.String("traceoverheadout", "BENCH_trace.json", "output path for the traceoverhead experiment's JSON ('' disables)")
		tracetxnout      = flag.String("tracetxn", "", "write one cross-shard txn's merged Chrome trace (traceoverhead experiment) to this path")
	)
	flag.Parse()

	opt := bench.Options{
		Workers:         *workers,
		Duration:        *duration,
		ArrivalInterval: *arrival,
		Out:             os.Stdout,
	}
	fl := flags{
		duration:         *duration,
		scanout:          *scanout,
		shardout:         *shardout,
		interleaveout:    *interleaveout,
		frontendout:      *frontendout,
		traceout:         *traceout,
		traceoverheadout: *traceoverheadout,
		tracetxnout:      *tracetxnout,
	}

	byID := make(map[string]experiment, len(experiments))
	for _, e := range experiments {
		byID[e.id] = e
	}

	run := func(e experiment) error {
		fmt.Printf("\n=== %s ===\n", e.id)
		start := time.Now()
		if err := e.run(opt, fl); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("(%s took %v)\n", e.id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	var todo []experiment
	switch *experimentFlag {
	case "all":
		for _, e := range experiments {
			if e.inAll {
				todo = append(todo, e)
			}
		}
	case "help", "list":
		usage(os.Stdout)
		return
	default:
		e, ok := byID[*experimentFlag]
		if !ok {
			fmt.Fprintf(os.Stderr, "preemptbench: unknown experiment %q\n", *experimentFlag)
			usage(os.Stderr)
			os.Exit(1)
		}
		todo = []experiment{e}
	}
	for _, e := range todo {
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, "preemptbench:", err)
			os.Exit(1)
		}
	}
}
