// Command preemptbench regenerates the figures from the paper's evaluation
// (§6) on the simulated-UINTR substrate. Each experiment prints the same
// data series the corresponding figure plots.
//
// Usage:
//
//	preemptbench -experiment fig10 -duration 3s -workers 2
//	preemptbench -experiment all
//
// Experiments: fig1, uintr, switch, fig8, fig9, fig10, fig11, fig12, fig13,
// shed, parallelscan, shardbench, all. parallelscan and shardbench also write
// their results to -scanout (BENCH_scan.json) and -shardout (BENCH_shard.json)
// in the same envelope as BENCH_commit.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"preemptdb/internal/bench"
	"preemptdb/internal/pcontext"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (fig1|uintr|switch|trace|fig8|fig9|fig10|fig11|fig12|fig13|shed|parallelscan|shardbench|all)")
		duration   = flag.Duration("duration", 3*time.Second, "measurement window per data point")
		workers    = flag.Int("workers", 0, "simulated worker cores (0 = one per spare physical CPU)")
		arrival    = flag.Duration("arrival", time.Millisecond, "high-priority batch arrival interval")
		scanout    = flag.String("scanout", "BENCH_scan.json", "output path for the parallelscan experiment's JSON ('' disables)")
		shardout   = flag.String("shardout", "BENCH_shard.json", "output path for the shardbench experiment's JSON ('' disables)")
		traceout   = flag.String("trace", "", "write the trace experiment's scheduling events as Chrome trace-event JSON (perfetto-loadable) to this path")
	)
	flag.Parse()

	opt := bench.Options{
		Workers:         *workers,
		Duration:        *duration,
		ArrivalInterval: *arrival,
		Out:             os.Stdout,
	}

	run := func(id string) error {
		fmt.Printf("\n=== %s ===\n", id)
		start := time.Now()
		var err error
		switch id {
		case "fig1":
			_, err = bench.Fig1(opt)
		case "uintr":
			_, err = bench.UintrLatency(opt, 0)
		case "switch":
			_, err = bench.ContextSwitch(opt, 0)
		case "trace":
			var cores []pcontext.CoreEvents
			_, cores, err = bench.Trace(opt)
			if err == nil && *traceout != "" {
				if err = bench.WriteChromeTrace(*traceout, cores); err == nil {
					fmt.Printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n", *traceout)
				}
			}
		case "fig8":
			_, err = bench.Fig8(opt)
		case "fig9":
			_, err = bench.Fig9(opt)
		case "fig10":
			_, err = bench.Fig10(opt)
		case "fig11":
			_, err = bench.Fig11(opt)
		case "fig12":
			_, err = bench.Fig12(opt)
		case "fig13":
			_, err = bench.Fig13(opt)
		case "shed":
			_, err = bench.Shed(opt)
		case "parallelscan":
			var res *bench.ScanResult
			res, err = bench.ParallelScan(opt, nil)
			if err == nil && *scanout != "" {
				cmd := fmt.Sprintf("preemptbench -experiment parallelscan -duration %v", *duration)
				notes := []string{
					fmt.Sprintf("Host exposes %d CPU(s); wall-clock speedup from morsel parallelism requires spare physical cores — on a single-CPU host helpers timeshare one core and speedup is bounded at ~1x.", res.NumCPU),
					"hi_* latencies: end-to-end Payment latency under PolicyPreempt while scans run continuously; parallel scans must keep p99 within noise of sequential (every helper is independently preemptible).",
				}
				err = bench.WriteScanJSON(*scanout, cmd, res, notes)
			}
		case "shardbench":
			var res *bench.ShardResult
			res, err = bench.ShardBench(opt)
			if err == nil && *shardout != "" {
				cmd := fmt.Sprintf("preemptbench -experiment shardbench -duration %v", *duration)
				notes := []string{
					fmt.Sprintf("Host exposes %d CPU(s); per-shard scheduler cores are goroutines, so throughput scaling with shard count requires spare physical CPUs — on a single-CPU host all shards timeshare one core and the scaling curve is expected to be flat (the per-shard isolation and 2PC overhead shapes, not absolute scaling, are the reproduction target).", res.NumCPU),
					"scaling: closed-loop single-shard read-modify-write txns, hash-routed; zero cross-shard coordination on this path.",
					"cross_sweep_4_shards: the listed percentage of txns touch two keys on different shards and commit via prepare frames + a coordinator decision record on the existing group-commit WAL (2PC, presumed abort).",
					"hi_per_shard_4_shards: end-to-end latency of high-priority point reads routed to each shard under PolicyPreempt while low-priority load runs on all shards — per-shard preemption isolation.",
				}
				err = bench.WriteBenchJSON(*shardout, cmd, res, notes)
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("(%s took %v)\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = []string{"uintr", "switch", "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "shed", "parallelscan", "shardbench"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintln(os.Stderr, "preemptbench:", err)
			os.Exit(1)
		}
	}
}
