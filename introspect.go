package preemptdb

import (
	"fmt"
	"time"

	"preemptdb/internal/pcontext"
	"preemptdb/internal/sched"
)

// Live scheduler introspection: a consistent, lock-free view of what every
// core is doing right now — which slot runs, which is preempted or
// stall-parked, whose transaction occupies it, how starved the paused work is
// — plus queue depths and the admission picture. The per-slot state is
// published by the owning worker through a seqlock (sched.Worker.SlotTable),
// so sampling it from here never touches the commit path and never tears.

// ShardSched is one shard's scheduler view within SchedDebug.
type ShardSched struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Workers holds one entry per scheduler core: queue depths plus the
	// seqlock-sampled slot table (state, class, trace tag, starvation level
	// per execution context).
	Workers []sched.WorkerState `json:"workers"`
}

// SchedDebug is the live scheduler snapshot behind DB.SchedState and the
// /debug/sched endpoint.
type SchedDebug struct {
	// QueueDelayNanos is the admission controller's EWMA of observed
	// scheduling queue delay.
	QueueDelayNanos int64 `json:"queue_delay_nanos"`
	// DeadlineRejected counts requests shed at admission because the queue
	// delay implied a certain deadline miss.
	DeadlineRejected uint64 `json:"deadline_rejected"`
	// Shards holds each shard's per-core view.
	Shards []ShardSched `json:"shards"`
}

// SchedState samples the live scheduler state of every shard: per-core queue
// depths and per-slot occupancy (running / preempted / stall-parked, class,
// trace tag, starvation level). The sample is safe to take at any frequency
// while the database runs — slot state is read through a per-slot seqlock the
// workers publish to outside their hot path — and each slot's record is
// internally consistent, though distinct slots are sampled at slightly
// different instants.
func (db *DB) SchedState() SchedDebug {
	dbg := SchedDebug{
		QueueDelayNanos:  int64(db.adm.QueueDelayEstimate()),
		DeadlineRejected: db.adm.DeadlineRejected(),
		Shards:           make([]ShardSched, len(db.shards)),
	}
	for si, sh := range db.shards {
		dbg.Shards[si] = ShardSched{Shard: si, Workers: sh.sch.State()}
	}
	return dbg
}

// traceEvents gathers every shard's per-core trace rings, renumbered
// shard*Workers+core into one flat core namespace (the same convention as
// TraceSnapshot). Returns an error when tracing is disabled.
func (db *DB) traceEvents() ([]pcontext.CoreEvents, error) {
	var all []pcontext.CoreEvents
	for si, sh := range db.shards {
		cores := sh.sch.TraceSnapshot()
		if cores == nil {
			return nil, fmt.Errorf("preemptdb: tracing disabled (TraceCapacity < 0)")
		}
		for _, ce := range cores {
			ce.Core += si * db.cfg.Workers
			all = append(all, ce)
		}
	}
	return all, nil
}

// TraceTxn exports one transaction's causally-linked span tree as a Chrome
// trace-event JSON document (loadable in ui.perfetto.dev): admission queue
// wait, execution with every preemption pause, WAL group-commit wait, and —
// for a cross-shard transaction — the 2PC prepare/resolve spans from every
// participant shard plus the coordinator's decision write, tied together by
// flow arrows. id is the transaction's trace id (Pending.TraceID, or the
// client-supplied TxnOptions.TraceID). The per-core rings are bounded, so a
// transaction's events are only available until ring wrap; export promptly,
// raise Config.TraceCapacity, or set Config.TraceSampling > 0 for complete
// commit-path spans.
func (db *DB) TraceTxn(id uint64) ([]byte, error) {
	cores, err := db.traceEvents()
	if err != nil {
		return nil, err
	}
	return pcontext.ChromeTraceTxn(id, cores)
}

// TraceTxnWait is TraceTxn with a bounded wait for the transaction's
// terminal event to appear in the rings — the exporter's answer to "the
// submitter saw the commit but the worker has not recorded txn-end yet".
// It polls until the export succeeds or timeout elapses.
func (db *DB) TraceTxnWait(id uint64, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := db.TraceTxn(id)
		if err == nil || time.Now().After(deadline) {
			return data, err
		}
		time.Sleep(100 * time.Microsecond)
	}
}
