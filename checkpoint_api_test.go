package preemptdb

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func TestCheckpointRestoreThroughAPI(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	db.CreateIndex("t", "mirror", func(k, row []byte) []byte { return append([]byte(nil), k...) })
	db.Run(func(tx *Txn) error {
		for i := 0; i < 100; i++ {
			if err := tx.Insert("t", binary.BigEndian.AppendUint32(nil, uint32(i)), []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})

	var ckpt bytes.Buffer
	if err := db.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, Config{Workers: 1})
	db2.CreateTable("t")
	db2.CreateIndex("t", "mirror", func(k, row []byte) []byte { return append([]byte(nil), k...) })
	if err := db2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	n := 0
	db2.Run(func(tx *Txn) error {
		return tx.Scan("t", nil, nil, func(k, v []byte) bool { n++; return true })
	})
	if n != 100 {
		t.Fatalf("restored %d rows", n)
	}
	idx := 0
	db2.Run(func(tx *Txn) error {
		return tx.ScanIndex("t", "mirror", nil, nil, func(k, v []byte) bool { idx++; return true })
	})
	if idx != 100 {
		t.Fatalf("restored %d index rows", idx)
	}
}

func TestScanDescThroughAPI(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	db.CreateIndex("t", "byval", func(k, row []byte) []byte { return append([]byte(nil), row...) })
	db.Run(func(tx *Txn) error {
		for i := 0; i < 50; i++ {
			if err := tx.Insert("t", binary.BigEndian.AppendUint32(nil, uint32(i)), []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	var got []uint32
	db.Run(func(tx *Txn) error {
		return tx.ScanDesc("t", nil, nil, func(k, v []byte) bool {
			got = append(got, binary.BigEndian.Uint32(k))
			return len(got) < 5
		})
	})
	want := []uint32{49, 48, 47, 46, 45}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Descending index scan: newest (largest value byte) first.
	var first byte
	db.Run(func(tx *Txn) error {
		return tx.ScanIndexDesc("t", "byval", nil, nil, func(k, v []byte) bool {
			first = v[0]
			return false
		})
	})
	if first != 49 {
		t.Fatalf("index desc first = %d", first)
	}
}

func TestExecTimedReportsLatency(t *testing.T) {
	db := openTest(t, Config{Workers: 1, Policy: PolicyPreempt})
	db.CreateTable("t")
	timing, err := db.ExecTimed(High, func(tx *Txn) error {
		return tx.Insert("t", []byte("k"), []byte("v"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if timing.Total <= 0 || timing.Scheduling < 0 || timing.Scheduling > timing.Total {
		t.Fatalf("timing = %+v", timing)
	}
	if timing.Total > 10*time.Second {
		t.Fatalf("implausible total %v", timing.Total)
	}
}

func TestSubmitTimedCallback(t *testing.T) {
	db := openTest(t, Config{Workers: 1})
	db.CreateTable("t")
	ch := make(chan Timing, 1)
	err := db.SubmitTimed(Low, func(tx *Txn) error { return nil },
		func(tm Timing, err error) {
			if err != nil {
				t.Error(err)
			}
			ch <- tm
		})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case tm := <-ch:
		if tm.Total <= 0 {
			t.Fatalf("timing %+v", tm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("callback never fired")
	}
}
