// Package clock provides a process-monotonic nanosecond clock.
//
// It plays the role of rdtscp in the paper: a cheap, monotonically increasing
// cycle source used for starvation accounting and latency measurement. All
// quantities derived from it are ratios or differences, so the unit
// (nanoseconds here, cycles in the paper) cancels out.
package clock

import "time"

var base = time.Now()

// Nanos returns monotonic nanoseconds since process start.
func Nanos() int64 { return int64(time.Since(base)) }

// Since returns the nanoseconds elapsed since an earlier Nanos reading.
func Since(start int64) int64 { return Nanos() - start }
