package clock

import (
	"testing"
	"time"
)

func TestMonotonic(t *testing.T) {
	prev := Nanos()
	for i := 0; i < 10000; i++ {
		now := Nanos()
		if now < prev {
			t.Fatalf("clock went backwards: %d < %d", now, prev)
		}
		prev = now
	}
}

func TestSince(t *testing.T) {
	start := Nanos()
	time.Sleep(2 * time.Millisecond)
	d := Since(start)
	if d < int64(time.Millisecond) || d > int64(5*time.Second) {
		t.Fatalf("Since = %v", time.Duration(d))
	}
}

func TestTracksWallClock(t *testing.T) {
	a := Nanos()
	wall := time.Now()
	time.Sleep(5 * time.Millisecond)
	elapsedClock := Nanos() - a
	elapsedWall := time.Since(wall)
	diff := elapsedClock - int64(elapsedWall)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(2*time.Millisecond) {
		t.Fatalf("clock drift %v over 5ms", time.Duration(diff))
	}
}

func BenchmarkNanos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Nanos()
	}
}
