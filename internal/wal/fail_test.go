package wal

import (
	"bytes"
	"errors"
	"testing"

	"preemptdb/internal/iofault"
)

// TestTornWriteLatchesManager is the regression test for the
// silent-append-after-torn-frame data-loss bug: before failure latching, a
// batch whose write tore mid-frame left the manager live, so the next leader
// happily appended new frames *after* the torn one — and Replay, stopping at
// the tear, could never reach them. Every commit after the tear was acked (in
// memory) yet unrecoverable.
//
// With latching, the first torn write permanently fails the manager: later
// Stages are refused with ErrWALFailed, nothing is appended past the tear,
// and the durable prefix replays cleanly to exactly the pre-tear commits.
func TestTornWriteLatchesManager(t *testing.T) {
	sink := iofault.NewSink()
	m := NewManager(sink, true)

	b := stageBuf(1)
	lsn1, err := m.Commit(1, 11, b)
	if err != nil {
		t.Fatalf("commit 1: %v", err)
	}

	// The manager flushes each batch as one sink write; tear the second
	// batch's write after 10 bytes (mid-header).
	sink.TearWrite(2, 10, nil)
	b.Reset()
	b.Append(RecUpdate, 1, []byte{2}, []byte{2})
	if _, err := m.Commit(2, 12, b); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit 2 after torn write: %v, want ErrWALFailed", err)
	}

	// The next commit must be refused up front — this is the append that the
	// old code silently wrote into the unreachable tail.
	b.Reset()
	b.Append(RecUpdate, 1, []byte{3}, []byte{3})
	writesBefore := sink.Writes()
	if _, err := m.Commit(3, 13, b); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit 3 on failed log: %v, want ErrWALFailed", err)
	}
	if sink.Writes() != writesBefore {
		t.Fatal("commit on a failed log still reached the sink")
	}
	if m.LSN() != lsn1 {
		t.Fatalf("LSN advanced past the failure: %d, want %d", m.LSN(), lsn1)
	}
	if m.Err() == nil || !errors.Is(m.Err(), ErrWALFailed) {
		t.Fatalf("manager failure not latched: %v", m.Err())
	}

	// The stream — torn tail included — replays to exactly commit 1.
	res, err := ReplayStream(bytes.NewReader(sink.Bytes()), func(tx CommittedTxn) error {
		if tx.TxnID != 1 {
			t.Fatalf("replayed txn %d, want only 1", tx.TxnID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 1 || !res.Torn || res.Offset != lsn1 {
		t.Fatalf("replay result %+v, want 1 txn, torn tail at offset %d", res, lsn1)
	}
}

// TestSyncFailureLatchesManager verifies a failed sync poisons the manager
// even though every byte was written: the frame may be in the page cache only,
// so treating it as durable — or appending after it — would be wrong.
func TestSyncFailureLatchesManager(t *testing.T) {
	sink := iofault.NewSink()
	m := NewManager(sink, true)
	sink.FailSync(1, nil)

	b := stageBuf(1)
	if _, err := m.Commit(1, 11, b); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit over failed sync: %v, want ErrWALFailed", err)
	}
	b.Reset()
	b.Append(RecUpdate, 1, []byte{2}, []byte{2})
	if _, err := m.Commit(2, 12, b); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit 2: %v, want latched ErrWALFailed", err)
	}
	if err := m.Flush(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("flush on failed log: %v, want ErrWALFailed", err)
	}
	// Nothing was synced, so nothing is durable.
	if sink.DurableLen() != 0 {
		t.Fatalf("durable bytes after failed sync: %d", sink.DurableLen())
	}
}

// TestFailureLatchFailsWholeOpenBatch checks a batch that was already staged
// when the log failed: its leader must not write, and every member must see
// the latched error.
func TestFailureLatchFailsWholeOpenBatch(t *testing.T) {
	sink := iofault.NewSink()
	m := NewManager(sink, true)

	b1, b2 := stageBuf(1), stageBuf(2)
	if !mustStage(t, m, 1, 1, b1) {
		t.Fatal("expected leader")
	}
	mustStage(t, m, 2, 2, b2)
	m.latch(errors.New("boom")) // failure lands while the batch is open

	errCh := make(chan error, 1)
	go func() { _, err := m.FollowerWait(b2); errCh <- err }()
	if _, err := m.LeaderFinish(b1); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("leader on failed log: %v", err)
	}
	if err := <-errCh; !errors.Is(err, ErrWALFailed) {
		t.Fatalf("follower on failed log: %v", err)
	}
	if sink.Writes() != 0 {
		t.Fatal("failed batch reached the sink")
	}
}

// TestReplayStreamResult pins down the positional contract: Offset tracks the
// end of the last valid frame through clean ends, torn tails, and mid-stream
// corruption.
func TestReplayStreamResult(t *testing.T) {
	sink := iofault.NewSink()
	m := NewManager(sink, true)
	var ends []uint64
	for i := 1; i <= 3; i++ {
		b := stageBuf(byte(i))
		lsn, err := m.Commit(uint64(i), uint64(10+i), b)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, lsn)
	}
	full := sink.Bytes()

	res, err := ReplayStream(bytes.NewReader(full), func(CommittedTxn) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 3 || res.Torn || res.Offset != ends[2] || res.LastCTS != 13 {
		t.Fatalf("clean replay result %+v, want offset %d cts 13", res, ends[2])
	}

	// Torn inside frame 3.
	res, err = ReplayStream(bytes.NewReader(full[:ends[2]-5]), func(CommittedTxn) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 2 || !res.Torn || res.Offset != ends[1] {
		t.Fatalf("torn replay result %+v, want 2 txns at offset %d", res, ends[1])
	}

	// Bit flip in frame 2's payload: mid-stream corruption, not a torn tail.
	corrupt := append([]byte(nil), full...)
	corrupt[ends[0]+frameHdrLen] ^= 0x40
	res, err = ReplayStream(bytes.NewReader(corrupt), func(CommittedTxn) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt replay error %v, want ErrCorrupt", err)
	}
	if res.Txns != 1 || res.Offset != ends[0] {
		t.Fatalf("corrupt replay result %+v, want valid prefix of 1 txn / %d bytes", res, ends[0])
	}
}
