package wal

import (
	"bytes"
	"testing"
	"time"
)

// TestPublishBarrierWaitsForStagedCommits reproduces the checkpoint-vs-group-
// commit race: a follower's frame is written — and the manager's LSN advanced
// past it — by the batch leader before the follower's goroutine publishes its
// commit state. A checkpoint capturing that LSN must wait on PublishBarrier
// until every covered committer has called Published, or its snapshot scan
// misses a commit that replay-from-LSN will never revisit.
func TestPublishBarrierWaitsForStagedCommits(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)

	lb := NewBuffer()
	lb.Append(RecInsert, 1, []byte("k1"), []byte("v1"))
	leader, err := m.Stage(1, 1, lb)
	if err != nil || !leader {
		t.Fatalf("leader stage: leader=%v err=%v", leader, err)
	}
	fb := NewBuffer()
	fb.Append(RecInsert, 1, []byte("k2"), []byte("v2"))
	follower, err := m.Stage(2, 2, fb)
	if err != nil || follower {
		t.Fatalf("follower stage: leader=%v err=%v", follower, err)
	}

	// The leader writes the batch: the LSN now covers both frames while
	// neither committer has published its commit state.
	if _, err := m.LeaderFinish(lb); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FollowerWait(fb); err != nil {
		t.Fatal(err)
	}
	if m.LSN() == 0 {
		t.Fatal("batch not written")
	}

	barrier := make(chan struct{})
	go func() {
		m.PublishBarrier()
		close(barrier)
	}()
	select {
	case <-barrier:
		t.Fatal("PublishBarrier returned with two staged commits unpublished")
	case <-time.After(20 * time.Millisecond):
	}
	m.Published()
	select {
	case <-barrier:
		t.Fatal("PublishBarrier returned with one staged commit unpublished")
	case <-time.After(20 * time.Millisecond):
	}
	m.Published()
	select {
	case <-barrier:
	case <-time.After(2 * time.Second):
		t.Fatal("PublishBarrier did not return after all staged commits published")
	}

	// With no stragglers the barrier is a fast no-op, and the single-call
	// Commit form keeps the counters balanced on its own.
	b := NewBuffer()
	b.Append(RecInsert, 1, []byte("k3"), []byte("v3"))
	if _, err := m.Commit(3, 3, b); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		m.PublishBarrier()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("PublishBarrier wedged on a quiesced manager")
	}
}
