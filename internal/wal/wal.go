// Package wal implements PreemptDB's redo-only write-ahead log.
//
// Each transaction context accumulates redo records in a private Buffer kept
// in context-local storage (CLS). This is exactly the state the paper's §4.3
// exists to protect: ERMIA keeps its log buffer in thread-local storage, and
// once a worker thread hosts two transaction contexts, a preempted
// transaction's log buffer must not be shared with — or flushed by — the
// high-priority transaction running on the same thread. Giving every context
// its own Buffer through CLS makes interleaved commits safe without engine
// changes.
//
// At commit, the buffer is framed (txn id, commit timestamp, record count,
// CRC) and appended to the central Manager under a short critical section.
// The engine wraps that flush in a non-preemptible region: the Manager's
// mutex is a database latch, and holding it across a preemption could
// deadlock a same-core high-priority committer (paper §4.4).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// RecordType tags a redo record.
type RecordType uint8

// Redo record types. Deletes are modelled as updates writing a tombstone at
// the MVCC layer, but the log distinguishes them so recovery can drop index
// entries.
const (
	RecInsert RecordType = iota + 1
	RecUpdate
	RecDelete
)

func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one decoded redo record.
type Record struct {
	Type  RecordType
	Table uint32
	Key   []byte
	Value []byte
}

// txnMagic frames each committed transaction in the log stream.
const txnMagic uint32 = 0x7072444c // "prDL"

// Buffer accumulates a single transaction's redo records. It lives in a
// context's CLS slot and is reused across transactions via Reset. Not safe
// for concurrent use — by construction only its owning context touches it.
type Buffer struct {
	buf  []byte
	recs int
}

// NewBuffer returns a buffer with some preallocated capacity.
func NewBuffer() *Buffer { return &Buffer{buf: make([]byte, 0, 4096)} }

// Append adds one redo record.
func (b *Buffer) Append(t RecordType, table uint32, key, value []byte) {
	b.buf = binary.AppendUvarint(b.buf, uint64(t))
	b.buf = binary.AppendUvarint(b.buf, uint64(table))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)))
	b.buf = append(b.buf, key...)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, value...)
	b.recs++
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int { return b.recs }

// Bytes returns the encoded payload (valid until the next Append/Reset).
func (b *Buffer) Bytes() []byte { return b.buf }

// Reset clears the buffer for the next transaction, keeping capacity.
func (b *Buffer) Reset() {
	b.buf = b.buf[:0]
	b.recs = 0
}

// Manager is the central committed-transaction log. Writers append framed
// transaction payloads under a mutex; the mutex is held only for the memcpy
// into the bufio writer, so commits serialize briefly, as in a real group
// commit pipeline.
type Manager struct {
	mu      sync.Mutex
	w       *bufio.Writer
	sink    io.Writer
	lsn     atomic.Uint64 // bytes appended
	commits atomic.Uint64
	syncEach bool
}

// Syncer is optionally implemented by sinks that can make appended bytes
// durable (e.g. *os.File).
type Syncer interface{ Sync() error }

// NewManager returns a Manager appending to sink. If syncEach is true and the
// sink implements Syncer, every commit is synced — the durable configuration;
// benchmarks use an in-memory sink, matching the paper's setup that keeps all
// data in memory to stress scheduling rather than I/O.
func NewManager(sink io.Writer, syncEach bool) *Manager {
	return &Manager{w: bufio.NewWriterSize(sink, 1<<20), sink: sink, syncEach: syncEach}
}

// Commit appends the buffer's records as one committed transaction with the
// given id and commit timestamp, returning the end-of-frame LSN.
func (m *Manager) Commit(txnID, cts uint64, b *Buffer) (uint64, error) {
	payload := b.Bytes()
	var hdr [4 + 8 + 8 + 4 + 4 + 4]byte
	binary.LittleEndian.PutUint32(hdr[0:], txnMagic)
	binary.LittleEndian.PutUint64(hdr[4:], txnID)
	binary.LittleEndian.PutUint64(hdr[12:], cts)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(b.Len()))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[28:], crc32.ChecksumIEEE(payload))

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := m.w.Write(payload); err != nil {
		return 0, err
	}
	if m.syncEach {
		if err := m.w.Flush(); err != nil {
			return 0, err
		}
		if s, ok := m.sink.(Syncer); ok {
			if err := s.Sync(); err != nil {
				return 0, err
			}
		}
	}
	m.commits.Add(1)
	return m.lsn.Add(uint64(len(hdr) + len(payload))), nil
}

// Flush drains buffered bytes to the sink.
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w.Flush()
}

// LSN returns the current end-of-log position in bytes.
func (m *Manager) LSN() uint64 { return m.lsn.Load() }

// Commits returns the number of committed transactions logged.
func (m *Manager) Commits() uint64 { return m.commits.Load() }

// ErrCorrupt reports a malformed or checksum-failing log stream.
var ErrCorrupt = errors.New("wal: corrupt log")

// CommittedTxn is one recovered transaction.
type CommittedTxn struct {
	TxnID, CTS uint64
	Records    []Record
}

// Replay decodes a log stream and invokes apply for each committed
// transaction in log order. A truncated final frame (torn write) terminates
// replay cleanly; a checksum mismatch returns ErrCorrupt.
func Replay(r io.Reader, apply func(CommittedTxn) error) error {
	br := bufio.NewReader(r)
	for {
		var hdr [32]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn header: end of usable log
			}
			return err
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != txnMagic {
			return fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
		txn := CommittedTxn{
			TxnID: binary.LittleEndian.Uint64(hdr[4:]),
			CTS:   binary.LittleEndian.Uint64(hdr[12:]),
		}
		nrec := binary.LittleEndian.Uint32(hdr[20:])
		plen := binary.LittleEndian.Uint32(hdr[24:])
		want := binary.LittleEndian.Uint32(hdr[28:])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn payload
			}
			return err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return fmt.Errorf("%w: checksum mismatch for txn %d", ErrCorrupt, txn.TxnID)
		}
		recs, err := decodePayload(payload, int(nrec))
		if err != nil {
			return err
		}
		txn.Records = recs
		if err := apply(txn); err != nil {
			return err
		}
	}
}

func decodePayload(p []byte, nrec int) ([]Record, error) {
	recs := make([]Record, 0, nrec)
	for i := 0; i < nrec; i++ {
		var rec Record
		t, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated record type", ErrCorrupt)
		}
		rec.Type = RecordType(t)
		p = p[n:]
		tbl, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated table id", ErrCorrupt)
		}
		rec.Table = uint32(tbl)
		p = p[n:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < klen {
			return nil, fmt.Errorf("%w: truncated key", ErrCorrupt)
		}
		p = p[n:]
		rec.Key = append([]byte(nil), p[:klen]...)
		p = p[klen:]
		vlen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < vlen {
			return nil, fmt.Errorf("%w: truncated value", ErrCorrupt)
		}
		p = p[n:]
		rec.Value = append([]byte(nil), p[:vlen]...)
		p = p[vlen:]
		recs = append(recs, rec)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing payload bytes", ErrCorrupt)
	}
	return recs, nil
}
