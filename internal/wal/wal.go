// Package wal implements PreemptDB's redo-only write-ahead log.
//
// Each transaction context accumulates redo records in a private Buffer kept
// in context-local storage (CLS). This is exactly the state the paper's §4.3
// exists to protect: ERMIA keeps its log buffer in thread-local storage, and
// once a worker thread hosts two transaction contexts, a preempted
// transaction's log buffer must not be shared with — or flushed by — the
// high-priority transaction running on the same thread. Giving every context
// its own Buffer through CLS makes interleaved commits safe without engine
// changes.
//
// At commit, the buffer is framed (txn id, commit timestamp, record count,
// CRC) and handed to the central Manager's group-commit pipeline. Committers
// stage their framed buffer into the open batch under a short staging latch;
// the first committer into an empty batch is elected leader, and once the
// previous batch's I/O completes the leader closes its batch and writes every
// staged frame with a single Write+Flush+Sync, assigns LSNs, and wakes the
// followers. Batching therefore arises naturally from I/O overlap — while one
// leader syncs, the next batch accumulates — and is bounded by MaxBatchDelay
// (extra latency a leader may spend gathering joiners) and MaxBatchBytes
// (batch size at which the leader stops waiting).
//
// Latch discipline (paper §4.4): the staging latch is held for an append and
// the write latch only by a leader across its batch I/O; the engine runs both
// inside non-preemptible regions. Followers hold *no* latch while parked
// waiting for their leader, so a preempted low-priority committer parked as a
// follower can never block a same-core high-priority committer on the log.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RecordType tags a redo record.
type RecordType uint8

// Redo record types. Deletes are modelled as updates writing a tombstone at
// the MVCC layer, but the log distinguishes them so recovery can drop index
// entries.
const (
	RecInsert RecordType = iota + 1
	RecUpdate
	RecDelete
)

func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one decoded redo record.
type Record struct {
	Type  RecordType
	Table uint32
	Key   []byte
	Value []byte
}

// txnMagic frames each committed transaction in the log stream.
const txnMagic uint32 = 0x7072444c // "prDL"

// prepMagic frames a 2PC prepare record: the redo of a cross-shard
// participant that has passed validation but whose commit decision belongs to
// the distributed transaction's coordinator. The frame layout is identical to
// a committed frame (the txn-id field carries the global transaction id, the
// cts field the provisional prepare timestamp); only the magic differs, so
// replay can keep the transaction in-doubt instead of applying it. A prepare
// resolves when a later committed frame carries the same global id — the
// participant's resolution record.
const prepMagic uint32 = 0x70725052 // "prPR"

// frameHdrLen is the size of the fixed per-transaction frame header:
// magic + txn id + commit ts + record count + payload length + payload CRC.
const frameHdrLen = 4 + 8 + 8 + 4 + 4 + 4

// Buffer accumulates a single transaction's redo records. It lives in a
// context's CLS slot and is reused across transactions via Reset. Not safe
// for concurrent use — by construction only its owning context touches it.
//
// The buffer doubles as the owning transaction's commit request: Stage frames
// the payload into hdr and enrolls the buffer in the open batch, and the
// leader publishes the outcome through lsn/cerr before signalling done. This
// keeps the whole commit path allocation-free — the framing scratch, the
// park/wake channel, and the batch linkage are all reused with the buffer.
type Buffer struct {
	buf  []byte
	recs int

	// Group-commit request state, owned by the staging committer until its
	// leader signals done; the leader writes lsn/cerr before the signal.
	hdr  [frameHdrLen]byte
	lsn  uint64
	cerr error
	done chan struct{}
}

// NewBuffer returns a buffer with some preallocated capacity.
func NewBuffer() *Buffer {
	return &Buffer{buf: make([]byte, 0, 4096), done: make(chan struct{}, 1)}
}

// frame fills the buffer's header scratch for the given identity.
func (b *Buffer) frame(magic uint32, txnID, cts uint64) {
	binary.LittleEndian.PutUint32(b.hdr[0:], magic)
	binary.LittleEndian.PutUint64(b.hdr[4:], txnID)
	binary.LittleEndian.PutUint64(b.hdr[12:], cts)
	binary.LittleEndian.PutUint32(b.hdr[20:], uint32(b.recs))
	binary.LittleEndian.PutUint32(b.hdr[24:], uint32(len(b.buf)))
	binary.LittleEndian.PutUint32(b.hdr[28:], crc32.ChecksumIEEE(b.buf))
}

// Append adds one redo record.
func (b *Buffer) Append(t RecordType, table uint32, key, value []byte) {
	b.buf = binary.AppendUvarint(b.buf, uint64(t))
	b.buf = binary.AppendUvarint(b.buf, uint64(table))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)))
	b.buf = append(b.buf, key...)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, value...)
	b.recs++
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int { return b.recs }

// NextRecord decodes one redo record from p, a tail of Buffer.Bytes(). key
// and value are subslices of p (no copies — valid until the buffer is Reset);
// rest is the remaining undecoded tail. ok is false at end of input or on a
// truncated record. The commit path's cache-invalidation hook iterates a
// transaction's touched keys with this, so it must stay allocation-free.
func NextRecord(p []byte) (t RecordType, table uint32, key, value, rest []byte, ok bool) {
	if len(p) == 0 {
		return 0, 0, nil, nil, nil, false
	}
	tv, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, nil, nil, false
	}
	p = p[n:]
	tbl, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, nil, nil, false
	}
	p = p[n:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < klen {
		return 0, 0, nil, nil, nil, false
	}
	key = p[n : n+int(klen)]
	p = p[n+int(klen):]
	vlen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < vlen {
		return 0, 0, nil, nil, nil, false
	}
	value = p[n : n+int(vlen)]
	return RecordType(tv), uint32(tbl), key, value, p[n+int(vlen):], true
}

// Bytes returns the encoded payload (valid until the next Append/Reset).
func (b *Buffer) Bytes() []byte { return b.buf }

// Reset clears the buffer for the next transaction, keeping capacity.
func (b *Buffer) Reset() {
	b.buf = b.buf[:0]
	b.recs = 0
}

// batch is one group-commit round: the slot list of staged commit requests
// accumulated between two leader writes. Batches are pooled on the Manager so
// the steady-state commit path allocates nothing.
type batch struct {
	reqs  []*Buffer
	bytes int
	// full is signalled (non-blocking) by the joiner that pushes the batch
	// past MaxBatchBytes, cutting the leader's delay wait short.
	full  chan struct{}
	timer *time.Timer
}

// Manager is the central committed-transaction log, a leader/follower group
// commit pipeline. Committers stage framed buffers into the open batch under
// stageMu (held for an append); the batch's first committer is its leader and
// writes the whole batch under ioMu with one Write+Flush+Sync. Batch creation
// is serialized by ioMu — a new batch opens only after its predecessor's
// leader has closed the old one while holding ioMu — so batch write order,
// and therefore LSN order, always matches staging order.
type Manager struct {
	stageMu sync.Mutex
	open    *batch // batch accepting joiners; nil when none is open
	ioMu    sync.Mutex
	w       *bufio.Writer
	sink    io.Writer
	marker  BatchBoundaryMarker // non-nil when the sink rotates at batch boundaries

	lsn      atomic.Uint64 // bytes appended
	commits  atomic.Uint64
	batches  atomic.Uint64 // leader write rounds
	syncEach bool

	// stagedTxns counts buffers enrolled in a batch (bumped in Stage while
	// stageMu is held); publishedTxns counts those whose commit state has since
	// been made visible (Published). The difference is the set of committers
	// inside the stage→publish window — the window PublishBarrier waits out so
	// a checkpoint never captures an LSN covering a frame whose in-memory
	// effects its snapshot cannot yet see.
	stagedTxns    atomic.Uint64
	publishedTxns atomic.Uint64

	// failed latches the first write/flush/sync error permanently (wrapped in
	// ErrWALFailed). Once set, Stage fails fast and no further bytes reach the
	// sink: after a torn or unsynced frame the stream tail is unreadable, so
	// appending more frames would silently sever every later commit from
	// Replay. The engine surfaces the latched error as a typed abort and the
	// DB degrades to read-only.
	failed atomic.Pointer[failure]

	// Batching bounds; see SetBatchLimits.
	maxBatchBytes int
	maxBatchDelay time.Duration

	pool sync.Pool // *batch
}

// Syncer is optionally implemented by sinks that can make appended bytes
// durable (e.g. *os.File).
type Syncer interface{ Sync() error }

// BatchBoundaryMarker is optionally implemented by sinks that must only ever
// split the log at transaction-frame boundaries — a segmented file sink
// rotates in MarkBoundary, never mid-frame. The manager calls it after each
// batch has been flushed (and synced, when configured), so every mark sits at
// the end of a whole batch of frames. A sink implementing this interface gets
// a Flush per batch even when per-commit sync is off; a MarkBoundary error
// latches the manager like any other log failure.
type BatchBoundaryMarker interface{ MarkBoundary() error }

// ErrWALFailed marks the log permanently failed: a write, flush, sync, or
// rotation error poisoned the stream. It wraps the root cause. All later
// Stage/Commit calls fail fast with the same latched error.
var ErrWALFailed = errors.New("wal: log failed")

// failure boxes the latched error for atomic.Pointer.
type failure struct{ err error }

// latch records cause as the manager's permanent failure (first error wins)
// and returns the latched, ErrWALFailed-wrapped error.
func (m *Manager) latch(cause error) error {
	f := &failure{err: fmt.Errorf("%w: %w", ErrWALFailed, cause)}
	if !m.failed.CompareAndSwap(nil, f) {
		f = m.failed.Load()
	}
	return f.err
}

// Err returns the latched log failure, or nil while the log is healthy.
func (m *Manager) Err() error {
	if f := m.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

// NewManager returns a Manager appending to sink. If syncEach is true and the
// sink implements Syncer, every batch is flushed and synced before its
// committers are released — the durable configuration; benchmarks use an
// in-memory sink, matching the paper's setup that keeps all data in memory to
// stress scheduling rather than I/O.
func NewManager(sink io.Writer, syncEach bool) *Manager {
	m := &Manager{w: bufio.NewWriterSize(sink, 1<<20), sink: sink, syncEach: syncEach}
	m.marker, _ = sink.(BatchBoundaryMarker)
	m.pool.New = func() any { return &batch{full: make(chan struct{}, 1)} }
	return m
}

// SetBatchLimits bounds the group-commit batching. maxBytes stops a leader's
// delay wait once the open batch reaches that many framed bytes (0: no byte
// bound); delay is the maximum extra time a leader spends gathering joiners
// before writing (0: write as soon as the previous batch's I/O completes —
// batching then comes only from natural I/O overlap). Call before first use.
func (m *Manager) SetBatchLimits(maxBytes int, delay time.Duration) {
	m.maxBatchBytes = maxBytes
	m.maxBatchDelay = delay
}

// Stage frames the buffer's records as one committed transaction and enrolls
// it in the open batch, returning true when the calling committer was elected
// the batch's leader. Stage never blocks beyond the staging latch; the engine
// calls it inside the commit critical section so log order matches commit
// order. On a failed log (ErrWALFailed latched) it refuses the enrollment and
// returns the latched error — the caller must abort rather than publish. A
// leader must follow up with LeaderFinish, a follower with FollowerWait — the
// buffer must not be touched in between. Every successful Stage must also be
// matched by exactly one Published call once the transaction's commit state is
// visible, or PublishBarrier wedges.
func (m *Manager) Stage(txnID, cts uint64, b *Buffer) (leader bool, err error) {
	return m.stageFrame(txnMagic, txnID, cts, b, true)
}

// StagePrepare enrolls the buffer as a 2PC *prepare* frame under the global
// transaction id gid and provisional timestamp cts. It shares the group-commit
// pipeline with Stage — the same LeaderFinish/FollowerWait contract applies —
// but the frame is written with the prepare magic and is NOT counted toward
// the publish barrier: a prepared transaction publishes nothing until its
// decision arrives (possibly only at recovery), and counting it would wedge
// every checkpoint taken during the in-doubt window.
func (m *Manager) StagePrepare(gid, cts uint64, b *Buffer) (leader bool, err error) {
	return m.stageFrame(prepMagic, gid, cts, b, false)
}

// stageFrame is the shared enrollment path behind Stage and StagePrepare;
// counted selects whether the frame participates in the publish barrier.
func (m *Manager) stageFrame(magic uint32, txnID, cts uint64, b *Buffer, counted bool) (leader bool, err error) {
	if err := m.Err(); err != nil {
		return false, err
	}
	b.frame(magic, txnID, cts)
	if b.done == nil {
		b.done = make(chan struct{}, 1)
	}
	m.stageMu.Lock()
	if counted {
		m.stagedTxns.Add(1)
	}
	bt := m.open
	if bt == nil {
		bt = m.pool.Get().(*batch)
		m.open = bt
		bt.reqs = append(bt.reqs, b)
		bt.bytes = frameHdrLen + len(b.buf)
		m.stageMu.Unlock()
		return true, nil
	}
	bt.reqs = append(bt.reqs, b)
	bt.bytes += frameHdrLen + len(b.buf)
	over := m.maxBatchBytes > 0 && bt.bytes >= m.maxBatchBytes
	m.stageMu.Unlock()
	if over {
		select {
		case bt.full <- struct{}{}:
		default:
		}
	}
	return false, nil
}

// LeaderFinish completes a leader's group commit: after an optional
// MaxBatchDelay gathering window it acquires the write latch, closes the
// batch, writes every staged frame, flushes and syncs once (when configured),
// assigns end-of-frame LSNs, and wakes the followers. The caller's own LSN
// and write error are returned; each follower receives its own through
// FollowerWait. The engine runs LeaderFinish inside a non-preemptible region:
// ioMu is a database latch, and a leader preempted while holding it could
// deadlock a same-core high-priority committer that becomes the next leader.
func (m *Manager) LeaderFinish(b *Buffer) (uint64, error) {
	m.stageMu.Lock()
	bt := m.open
	if bt == nil || bt.reqs[0] != b {
		m.stageMu.Unlock()
		panic("wal: LeaderFinish by a non-leader")
	}
	m.stageMu.Unlock()

	if d := m.maxBatchDelay; d > 0 {
		if bt.timer == nil {
			bt.timer = time.NewTimer(d)
		} else {
			bt.timer.Reset(d)
		}
		select {
		case <-bt.timer.C:
		case <-bt.full:
			if !bt.timer.Stop() {
				<-bt.timer.C
			}
		}
	}

	m.ioMu.Lock()
	// Close the batch: joiners from here on open the next one. Closing under
	// ioMu is what serializes batch creation with batch writing.
	m.stageMu.Lock()
	m.open = nil
	m.stageMu.Unlock()

	// A log that failed after this batch opened (a predecessor's torn write)
	// must not be appended to: the stream past the tear is unreadable, so
	// every frame written now would be unrecoverable. Fail the whole batch
	// with the latched error instead.
	err := m.Err()
	if err == nil {
		for _, r := range bt.reqs {
			if _, err = m.w.Write(r.hdr[:]); err != nil {
				break
			}
			if _, err = m.w.Write(r.buf); err != nil {
				break
			}
		}
		// A rotating sink needs whole batches delivered before each boundary
		// mark, so flush per batch even when per-commit sync is off.
		if err == nil && (m.syncEach || m.marker != nil) {
			err = m.w.Flush()
		}
		if err == nil && m.syncEach {
			if s, ok := m.sink.(Syncer); ok {
				err = s.Sync()
			}
		}
		if err == nil && m.marker != nil {
			err = m.marker.MarkBoundary()
		}
		if err != nil {
			err = m.latch(err)
		}
	}
	if err == nil {
		end := m.lsn.Load()
		for _, r := range bt.reqs {
			end += uint64(frameHdrLen + len(r.buf))
			r.lsn, r.cerr = end, nil
		}
		m.lsn.Store(end)
		m.commits.Add(uint64(len(bt.reqs)))
		m.batches.Add(1)
	} else {
		for _, r := range bt.reqs {
			r.lsn, r.cerr = 0, err
		}
	}
	m.ioMu.Unlock()

	for _, r := range bt.reqs[1:] {
		r.done <- struct{}{}
	}
	lsn, cerr := b.lsn, b.cerr
	bt.reqs = bt.reqs[:0]
	bt.bytes = 0
	select { // drop a stale full signal before recycling
	case <-bt.full:
	default:
	}
	m.pool.Put(bt)
	return lsn, cerr
}

// Published records that a previously Staged transaction's commit state is
// now visible to readers (the engine calls it right after the MVCC layer's
// atomic commit-point store). Call exactly once per successful Stage,
// regardless of how the batch I/O turned out — an aborted-after-stage or
// failed-batch transaction still resolves its versions, which is all the
// barrier needs.
func (m *Manager) Published() { m.publishedTxns.Add(1) }

// PublishBarrier returns once every transaction staged before the call has
// published its commit state. Checkpointing runs it between capturing the
// checkpoint's replay LSN and taking the snapshot timestamp: a frame can be
// written — and the manager's LSN advanced past it — by its batch leader
// before the staging goroutine executes the MVCC commit-point store, so
// without the barrier a checkpoint could cover that frame on disk while its
// snapshot scan still sees the version as uncommitted, and recovery (which
// replays only from the checkpoint's LSN) would lose the acked commit. The
// stage→publish window contains no blocking calls, so the wait is bounded and
// short.
func (m *Manager) PublishBarrier() {
	c0 := m.stagedTxns.Load()
	for m.publishedTxns.Load() < c0 {
		runtime.Gosched()
	}
}

// FollowerWait parks the calling committer until its batch's leader has
// written (and, when configured, synced) the batch, then returns the
// committer's end-of-frame LSN. Followers hold no latch while parked — the
// engine calls FollowerWait outside any non-preemptible region, so a
// preempted committer parked here never blocks the log (paper §4.4).
func (m *Manager) FollowerWait(b *Buffer) (uint64, error) {
	<-b.done
	return b.lsn, b.cerr
}

// Commit appends the buffer's records as one committed transaction with the
// given id and commit timestamp through the group-commit pipeline, returning
// the end-of-frame LSN once the transaction's batch has been written. It is
// the single-call form of Stage + LeaderFinish/FollowerWait.
func (m *Manager) Commit(txnID, cts uint64, b *Buffer) (uint64, error) {
	leader, err := m.Stage(txnID, cts, b)
	if err != nil {
		return 0, err
	}
	// Standalone commits have no separate publication step; count it here so
	// PublishBarrier stays balanced for direct Manager.Commit users.
	m.Published()
	if leader {
		return m.LeaderFinish(b)
	}
	return m.FollowerWait(b)
}

// Flush drains buffered bytes to the sink. On a failed log it returns the
// latched error without touching the sink: the buffered tail may end in a
// torn frame, and pushing more bytes past it would corrupt the stream.
func (m *Manager) Flush() error {
	m.ioMu.Lock()
	defer m.ioMu.Unlock()
	if err := m.Err(); err != nil {
		return err
	}
	if err := m.w.Flush(); err != nil {
		return m.latch(err)
	}
	return nil
}

// Sync drains buffered bytes to the sink and, when the sink supports it,
// makes them durable. Like Flush it refuses to touch a failed log, and an I/O
// error here latches the manager. Checkpointing uses it to guarantee the log
// is durable up to the checkpoint's LSN before the checkpoint is installed.
func (m *Manager) Sync() error {
	m.ioMu.Lock()
	defer m.ioMu.Unlock()
	if err := m.Err(); err != nil {
		return err
	}
	if err := m.w.Flush(); err != nil {
		return m.latch(err)
	}
	if s, ok := m.sink.(Syncer); ok {
		if err := s.Sync(); err != nil {
			return m.latch(err)
		}
	}
	return nil
}

// LSN returns the current end-of-log position in bytes.
func (m *Manager) LSN() uint64 { return m.lsn.Load() }

// SetLSN initializes the end-of-log position. Recovery-only: call it once,
// after replaying an existing log and before the first commit, so LSNs keep
// counting from the recovered stream's end.
func (m *Manager) SetLSN(lsn uint64) { m.lsn.Store(lsn) }

// Commits returns the number of committed transactions logged.
func (m *Manager) Commits() uint64 { return m.commits.Load() }

// Batches returns the number of group-commit write rounds; Commits/Batches is
// the achieved batching factor.
func (m *Manager) Batches() uint64 { return m.batches.Load() }

// ErrCorrupt reports a malformed or checksum-failing log stream.
var ErrCorrupt = errors.New("wal: corrupt log")

// CommittedTxn is one recovered transaction.
type CommittedTxn struct {
	TxnID, CTS uint64
	Records    []Record
}

// PreparedTxn is a recovered 2PC prepare record: redo that was durable at the
// crash but whose commit decision was not found in this shard's stream. The
// caller resolves it against the coordinator's decision record — commit by
// applying Records at CTS, or discard (presumed abort) when no decision
// exists anywhere.
type PreparedTxn struct {
	// GID is the distributed transaction's global id (shared by every
	// participant shard and by the coordinator's decision record).
	GID uint64
	// CTS is the provisional timestamp assigned at prepare.
	CTS     uint64
	Records []Record
}

// ReplayResult reports how far a replay got through the stream — the
// information recovery needs to distinguish a benign torn tail (truncate and
// keep appending at Offset) from mid-stream damage (ErrCorrupt, do not trust
// anything past Offset).
type ReplayResult struct {
	// Txns is the number of committed transactions applied.
	Txns int
	// Offset is the number of stream bytes consumed through the end of the
	// last fully-valid, applied frame. Added to the stream's starting LSN it
	// is the exact position appending may safely resume from.
	Offset uint64
	// LastCTS is the commit timestamp of the last applied transaction (0 when
	// none were).
	LastCTS uint64
	// Torn reports that the stream ended inside a frame — the torn-write tail
	// a crash mid-append leaves behind. The bytes past Offset are garbage but
	// everything before is intact.
	Torn bool
}

// maxFramePayload bounds a single frame's payload during replay so a corrupt
// length field cannot balloon recovery memory.
const maxFramePayload = 1 << 30

// Replay decodes a log stream and invokes apply for each committed
// transaction in log order. A truncated final frame (torn write) terminates
// replay cleanly; a checksum mismatch returns ErrCorrupt. It is ReplayStream
// without the positional result.
func Replay(r io.Reader, apply func(CommittedTxn) error) error {
	_, err := ReplayStream(r, apply)
	return err
}

// ReplayStream decodes a log stream, invokes apply for each committed
// transaction in log order, and reports how far it got. A truncated final
// frame terminates replay cleanly with Torn set; bad magic, a checksum
// mismatch, or a malformed payload return ErrCorrupt alongside the result for
// the valid prefix. Prepare frames (2PC) are consumed and skipped; use
// ReplayStreamPrepared to observe them.
func ReplayStream(r io.Reader, apply func(CommittedTxn) error) (ReplayResult, error) {
	return ReplayStreamPrepared(r, apply, nil)
}

// ReplayStreamPrepared is ReplayStream with a second callback receiving each
// 2PC prepare frame in log order. Prepare frames advance Offset (they are
// whole, CRC-verified frames and appending must resume past them) but do not
// count in Txns or LastCTS — their effects are not applied here. onPrepare may
// be nil to skip them. The caller is responsible for matching prepares against
// later committed frames with the same id (the resolution records) to find
// the in-doubt set.
func ReplayStreamPrepared(r io.Reader, apply func(CommittedTxn) error, onPrepare func(PreparedTxn) error) (ReplayResult, error) {
	br := bufio.NewReader(r)
	var res ReplayResult
	for {
		var hdr [frameHdrLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return res, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true // torn header: end of usable log
				return res, nil
			}
			return res, err
		}
		magic := binary.LittleEndian.Uint32(hdr[0:])
		if magic != txnMagic && magic != prepMagic {
			return res, fmt.Errorf("%w: bad magic at offset %d", ErrCorrupt, res.Offset)
		}
		txn := CommittedTxn{
			TxnID: binary.LittleEndian.Uint64(hdr[4:]),
			CTS:   binary.LittleEndian.Uint64(hdr[12:]),
		}
		nrec := binary.LittleEndian.Uint32(hdr[20:])
		plen := binary.LittleEndian.Uint32(hdr[24:])
		want := binary.LittleEndian.Uint32(hdr[28:])
		if plen > maxFramePayload {
			return res, fmt.Errorf("%w: implausible payload length %d at offset %d", ErrCorrupt, plen, res.Offset)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true // torn payload
				return res, nil
			}
			return res, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return res, fmt.Errorf("%w: checksum mismatch for txn %d at offset %d", ErrCorrupt, txn.TxnID, res.Offset)
		}
		recs, err := decodePayload(payload, int(nrec))
		if err != nil {
			return res, err
		}
		if magic == prepMagic {
			if onPrepare != nil {
				if err := onPrepare(PreparedTxn{GID: txn.TxnID, CTS: txn.CTS, Records: recs}); err != nil {
					return res, err
				}
			}
			res.Offset += uint64(frameHdrLen) + uint64(plen)
			continue
		}
		txn.Records = recs
		if err := apply(txn); err != nil {
			return res, err
		}
		res.Txns++
		res.Offset += uint64(frameHdrLen) + uint64(plen)
		res.LastCTS = txn.CTS
	}
}

func decodePayload(p []byte, nrec int) ([]Record, error) {
	recs := make([]Record, 0, nrec)
	for i := 0; i < nrec; i++ {
		var rec Record
		t, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated record type", ErrCorrupt)
		}
		rec.Type = RecordType(t)
		p = p[n:]
		tbl, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated table id", ErrCorrupt)
		}
		rec.Table = uint32(tbl)
		p = p[n:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < klen {
			return nil, fmt.Errorf("%w: truncated key", ErrCorrupt)
		}
		p = p[n:]
		rec.Key = append([]byte(nil), p[:klen]...)
		p = p[klen:]
		vlen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < vlen {
			return nil, fmt.Errorf("%w: truncated value", ErrCorrupt)
		}
		p = p[n:]
		rec.Value = append([]byte(nil), p[:vlen]...)
		p = p[vlen:]
		recs = append(recs, rec)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing payload bytes", ErrCorrupt)
	}
	return recs, nil
}
