package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestBufferAppendReset(t *testing.T) {
	b := NewBuffer()
	if b.Len() != 0 {
		t.Fatal("new buffer not empty")
	}
	b.Append(RecInsert, 1, []byte("k"), []byte("v"))
	b.Append(RecUpdate, 2, []byte("k2"), []byte("v2"))
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 || len(b.Bytes()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCommitAndReplayRoundtrip(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)

	b := NewBuffer()
	b.Append(RecInsert, 7, []byte("alpha"), []byte("one"))
	b.Append(RecUpdate, 7, []byte("alpha"), []byte("two"))
	b.Append(RecDelete, 9, []byte("beta"), nil)
	if _, err := m.Commit(100, 55, b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	b.Append(RecInsert, 8, []byte("gamma"), []byte("three"))
	if _, err := m.Commit(101, 56, b); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 2 {
		t.Fatalf("commits = %d", m.Commits())
	}

	var txns []CommittedTxn
	if err := Replay(bytes.NewReader(sink.Bytes()), func(tx CommittedTxn) error {
		txns = append(txns, tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 {
		t.Fatalf("replayed %d txns", len(txns))
	}
	if txns[0].TxnID != 100 || txns[0].CTS != 55 || len(txns[0].Records) != 3 {
		t.Fatalf("txn0 = %+v", txns[0])
	}
	r := txns[0].Records[1]
	if r.Type != RecUpdate || r.Table != 7 || string(r.Key) != "alpha" || string(r.Value) != "two" {
		t.Fatalf("record = %+v", r)
	}
	if txns[1].Records[0].Type != RecInsert || string(txns[1].Records[0].Value) != "three" {
		t.Fatalf("txn1 record = %+v", txns[1].Records[0])
	}
}

func TestEmptyTransactionCommit(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	b := NewBuffer()
	if _, err := m.Commit(1, 1, b); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	n := 0
	if err := Replay(bytes.NewReader(sink.Bytes()), func(tx CommittedTxn) error {
		if len(tx.Records) != 0 {
			t.Errorf("records = %d", len(tx.Records))
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d", n)
	}
}

func TestTornTailIgnored(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	b := NewBuffer()
	b.Append(RecInsert, 1, []byte("k"), []byte("v"))
	m.Commit(1, 1, b)
	m.Flush()
	whole := append([]byte(nil), sink.Bytes()...)

	for cut := 1; cut < len(whole); cut += 7 {
		torn := whole[:len(whole)-cut]
		n := 0
		if err := Replay(bytes.NewReader(torn), func(tx CommittedTxn) error {
			n++
			return nil
		}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 0 {
			t.Fatalf("cut %d: replayed incomplete txn", cut)
		}
	}
}

func TestChecksumMismatch(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	b := NewBuffer()
	b.Append(RecInsert, 1, []byte("key"), []byte("value"))
	m.Commit(1, 1, b)
	m.Flush()
	data := append([]byte(nil), sink.Bytes()...)
	data[len(data)-1] ^= 0xff // flip a payload byte
	err := Replay(bytes.NewReader(data), func(CommittedTxn) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, 64)
	err := Replay(bytes.NewReader(data), func(CommittedTxn) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestApplyErrorPropagates(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	b := NewBuffer()
	m.Commit(1, 1, b)
	m.Flush()
	sentinel := errors.New("stop")
	err := Replay(bytes.NewReader(sink.Bytes()), func(CommittedTxn) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCommits(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := NewBuffer()
			for i := 0; i < per; i++ {
				b.Reset()
				b.Append(RecInsert, uint32(w), []byte{byte(i)}, []byte{byte(w)})
				if _, err := m.Commit(uint64(w*per+i), uint64(i), b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m.Flush()
	n := 0
	if err := Replay(bytes.NewReader(sink.Bytes()), func(tx CommittedTxn) error {
		if len(tx.Records) != 1 {
			t.Errorf("interleaved commit: %d records", len(tx.Records))
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("replayed %d of %d", n, writers*per)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	err := quick.Check(func(txnID, cts uint64, table uint32, key, val []byte) bool {
		var sink bytes.Buffer
		m := NewManager(&sink, false)
		b := NewBuffer()
		b.Append(RecUpdate, table, key, val)
		if _, err := m.Commit(txnID, cts, b); err != nil {
			return false
		}
		m.Flush()
		ok := false
		Replay(bytes.NewReader(sink.Bytes()), func(tx CommittedTxn) error {
			r := tx.Records[0]
			ok = tx.TxnID == txnID && tx.CTS == cts && r.Table == table &&
				bytes.Equal(r.Key, key) && bytes.Equal(r.Value, val)
			return nil
		})
		return ok
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeString(t *testing.T) {
	if RecInsert.String() != "insert" || RecUpdate.String() != "update" || RecDelete.String() != "delete" {
		t.Fatal("bad strings")
	}
	if RecordType(99).String() == "" {
		t.Fatal("unknown type must still format")
	}
}

func TestLSNMonotonic(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	b := NewBuffer()
	b.Append(RecInsert, 1, []byte("k"), []byte("v"))
	l1, _ := m.Commit(1, 1, b)
	l2, _ := m.Commit(2, 2, b)
	if l2 <= l1 || m.LSN() != l2 {
		t.Fatalf("lsn not monotonic: %d %d %d", l1, l2, m.LSN())
	}
}
