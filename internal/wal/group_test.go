package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stageBuf builds a one-record buffer carrying val so tests can check that
// replay hands back exactly what each committer staged.
func stageBuf(val byte) *Buffer {
	b := NewBuffer()
	b.Append(RecUpdate, 1, []byte{val}, []byte{val})
	return b
}

// mustStage stages b on a healthy manager, failing the test on a latched log
// error, and returns whether the committer was elected leader.
func mustStage(t *testing.T, m *Manager, id, cts uint64, b *Buffer) bool {
	t.Helper()
	leader, err := m.Stage(id, cts, b)
	if err != nil {
		t.Fatalf("stage %d: %v", id, err)
	}
	return leader
}

// TestLeaderFollowerProtocol drives the split Stage/LeaderFinish/FollowerWait
// API directly: the first committer into an empty batch is leader, later
// stagers are followers, and the leader's single write releases everyone with
// LSNs in staging order.
func TestLeaderFollowerProtocol(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)

	b1, b2, b3 := stageBuf(1), stageBuf(2), stageBuf(3)
	if !mustStage(t, m, 101, 11, b1) {
		t.Fatal("first stager must be leader")
	}
	if mustStage(t, m, 102, 12, b2) || mustStage(t, m, 103, 13, b3) {
		t.Fatal("later stagers must be followers")
	}

	type res struct {
		lsn uint64
		err error
	}
	ch2, ch3 := make(chan res, 1), make(chan res, 1)
	go func() { l, e := m.FollowerWait(b2); ch2 <- res{l, e} }()
	go func() { l, e := m.FollowerWait(b3); ch3 <- res{l, e} }()

	lsn1, err := m.LeaderFinish(b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, r3 := <-ch2, <-ch3
	if r2.err != nil || r3.err != nil {
		t.Fatalf("follower errors: %v %v", r2.err, r3.err)
	}
	if !(lsn1 < r2.lsn && r2.lsn < r3.lsn) {
		t.Fatalf("LSNs out of staging order: %d %d %d", lsn1, r2.lsn, r3.lsn)
	}
	if m.Batches() != 1 || m.Commits() != 3 {
		t.Fatalf("batches=%d commits=%d, want 1/3", m.Batches(), m.Commits())
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	if err := Replay(&sink, func(tx CommittedTxn) error {
		got = append(got, tx.CTS)
		if len(tx.Records) != 1 || tx.Records[0].Value[0] != byte(tx.CTS-10) {
			t.Fatalf("txn %d carries wrong payload %v", tx.TxnID, tx.Records)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[11 12 13]" {
		t.Fatalf("replayed CTS order %v", got)
	}
}

// syncCountingSink counts Write and Sync calls and injects latency so that
// concurrent committers overlap with batch I/O and pile into the next batch.
type syncCountingSink struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	syncs  int
	delay  time.Duration
}

func (s *syncCountingSink) Write(p []byte) (int, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	return s.buf.Write(p)
}

func (s *syncCountingSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	return nil
}

// TestGroupCommitBatchesConcurrentCommitters checks the tentpole property:
// with many concurrent committers and slow I/O, commits amortize into far
// fewer batch writes than transactions, and the resulting log replays to
// exactly the committed set through the unmodified Replay.
func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	sink := &syncCountingSink{delay: time.Millisecond}
	m := NewManager(sink, true)

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := NewBuffer()
			for i := 0; i < per; i++ {
				b.Reset()
				id := uint64(w*per + i + 1)
				b.Append(RecInsert, 1, []byte{byte(w), byte(i)}, []byte{byte(w)})
				if _, err := m.Commit(id, 1000+id, b); err != nil {
					t.Errorf("commit %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if m.Commits() != workers*per {
		t.Fatalf("commits = %d, want %d", m.Commits(), workers*per)
	}
	if m.Batches() >= m.Commits() {
		t.Fatalf("no batching: %d batches for %d commits", m.Batches(), m.Commits())
	}
	// syncEach means one flush+sync per batch, not per commit.
	if sink.syncs != int(m.Batches()) {
		t.Fatalf("syncs = %d, batches = %d", sink.syncs, m.Batches())
	}
	t.Logf("batching factor: %d commits / %d batches", m.Commits(), m.Batches())

	seen := make(map[uint64]bool)
	if err := Replay(&sink.buf, func(tx CommittedTxn) error {
		if seen[tx.TxnID] {
			t.Fatalf("txn %d replayed twice", tx.TxnID)
		}
		seen[tx.TxnID] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers*per {
		t.Fatalf("replayed %d txns, want %d", len(seen), workers*per)
	}
}

// TestMaxBatchBytesCutsDelayShort verifies the byte bound: a leader configured
// with a long gathering delay is released as soon as a joiner pushes the batch
// past MaxBatchBytes.
func TestMaxBatchBytesCutsDelayShort(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	m.SetBatchLimits(1, 30*time.Second) // any joiner overflows the batch

	b1, b2 := stageBuf(1), stageBuf(2)
	if !mustStage(t, m, 1, 1, b1) {
		t.Fatal("expected leader")
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.LeaderFinish(b1)
		done <- err
	}()
	// The joiner signals the batch full; the leader must finish long before
	// its 30s delay.
	if mustStage(t, m, 2, 2, b2) {
		t.Fatal("joiner must not be leader")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader did not finish after byte-bound overflow")
	}
	if _, err := m.FollowerWait(b2); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 2 || m.Batches() != 1 {
		t.Fatalf("commits=%d batches=%d", m.Commits(), m.Batches())
	}
}

// TestMaxBatchDelayLoneLeader verifies a lone committer with a delay bound
// still commits after the gathering window expires.
func TestMaxBatchDelayLoneLeader(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)
	m.SetBatchLimits(0, time.Millisecond)
	b := stageBuf(7)
	start := time.Now()
	if _, err := m.Commit(1, 1, b); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("lone leader took %v", d)
	}
	if m.Commits() != 1 {
		t.Fatalf("commits = %d", m.Commits())
	}
}

// TestTornBatchRecovery truncates a log mid-way through a multi-transaction
// batch: replay must recover every whole frame — including frames from the
// torn batch that precede the tear — and stop cleanly at the torn frame.
func TestTornBatchRecovery(t *testing.T) {
	var sink bytes.Buffer
	m := NewManager(&sink, false)

	// Batch 1: txns 1,2. Batch 2: txns 3,4,5.
	mkBatch := func(ids ...uint64) {
		bufs := make([]*Buffer, len(ids))
		for i, id := range ids {
			bufs[i] = stageBuf(byte(id))
			if got := mustStage(t, m, id, 100+id, bufs[i]); got != (i == 0) {
				t.Fatalf("stage %d: leader=%v", id, got)
			}
		}
		var wg sync.WaitGroup
		for _, f := range bufs[1:] {
			wg.Add(1)
			go func(f *Buffer) { defer wg.Done(); m.FollowerWait(f) }(f)
		}
		if _, err := m.LeaderFinish(bufs[0]); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
	mkBatch(1, 2)
	mkBatch(3, 4, 5)
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	full := sink.Bytes()
	// Tear inside txn 5's frame: keep everything up to its last 3 bytes.
	torn := full[:len(full)-3]
	var got []uint64
	if err := Replay(bytes.NewReader(torn), func(tx CommittedTxn) error {
		got = append(got, tx.TxnID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("recovered %v, want [1 2 3 4]", got)
	}

	// Tear that removes txn 5 entirely plus part of txn 4's header.
	frameLen := (len(full) - 0) / 5 // all frames equal-sized here
	torn2 := full[:len(full)-frameLen-frameHdrLen/2]
	got = got[:0]
	if err := Replay(bytes.NewReader(torn2), func(tx CommittedTxn) error {
		got = append(got, tx.TxnID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("recovered %v, want [1 2 3]", got)
	}
}

// TestGroupCommitErrorPropagatesToWholeBatch verifies that a failed batch
// write surfaces the error to the leader and every follower.
type failingSink struct{ fail bool }

func (s *failingSink) Write(p []byte) (int, error) {
	if s.fail {
		return 0, fmt.Errorf("sink: injected failure")
	}
	return len(p), nil
}

func TestGroupCommitErrorPropagatesToWholeBatch(t *testing.T) {
	sink := &failingSink{fail: true}
	m := NewManager(sink, true) // syncEach forces the flush to hit the sink

	b1, b2 := stageBuf(1), stageBuf(2)
	if !mustStage(t, m, 1, 1, b1) {
		t.Fatal("expected leader")
	}
	mustStage(t, m, 2, 2, b2)
	errCh := make(chan error, 1)
	go func() { _, err := m.FollowerWait(b2); errCh <- err }()
	if _, err := m.LeaderFinish(b1); err == nil {
		t.Fatal("leader error lost")
	}
	if err := <-errCh; err == nil {
		t.Fatal("follower error lost")
	}
	if m.Commits() != 0 || m.LSN() != 0 {
		t.Fatalf("failed batch counted: commits=%d lsn=%d", m.Commits(), m.LSN())
	}
}
