// Package iofault is a deterministic fault-injecting log sink for durability
// testing. A Sink models a file plus its page cache: Write appends bytes to
// an in-memory buffer (the cache), Sync marks everything written so far as
// durable, and a simulated power cut discards every byte that was never
// synced. On top of that model the sink injects planned faults — fail the
// Nth write, fail the Nth sync, tear a write after a chosen number of bytes,
// flip a bit at an offset, or cut power when a byte or sync threshold is
// reached — all armed explicitly or derived from a seed, so a failing
// schedule can be replayed exactly.
//
// Sink implements io.Writer and the structural Syncer interface the WAL
// manager probes for (`Sync() error`), so it drops in as Config.LogSink.
// It is safe for concurrent use; the WAL's group-commit leader serializes
// actual I/O, but counters and crash arming may race with test goroutines.
package iofault

import (
	"errors"
	"fmt"
	"sync"
)

// Injected fault errors.
var (
	// ErrInjected is the default error returned by planned write/sync faults.
	ErrInjected = errors.New("iofault: injected I/O failure")
	// ErrPowerCut reports an operation attempted after (or interrupted by) a
	// simulated power cut; bytes not synced before the cut are gone.
	ErrPowerCut = errors.New("iofault: simulated power cut")
)

// faultKey identifies a planned per-operation fault.
type opFault struct {
	err  error
	keep int // torn writes: bytes accepted before the error (-1: none accepted)
}

// Sink is the fault-injecting in-memory sink. The zero value is not ready;
// use NewSink.
type Sink struct {
	mu      sync.Mutex
	buf     []byte // every accepted byte, durable or not ("page cache")
	durable int    // prefix of buf made durable by successful Syncs
	writes  int    // Write calls observed (including failed ones)
	syncs   int    // Sync calls observed (including failed ones)

	writeFaults map[int]opFault // by 1-based upcoming write ordinal
	syncFaults  map[int]error   // by 1-based upcoming sync ordinal

	cutAtBytes int64 // power cut once total accepted bytes reach this (-1: off)
	cutAtSync  int   // power cut at this 1-based sync, before it succeeds (0: off)
	cut        bool  // power already cut: all further I/O fails
}

// NewSink returns an empty sink with no faults planned.
func NewSink() *Sink {
	return &Sink{
		writeFaults: make(map[int]opFault),
		syncFaults:  make(map[int]error),
		cutAtBytes:  -1,
	}
}

// FailWrite plans the nth upcoming Write call (1-based, counted from the
// sink's creation) to fail with err (ErrInjected when nil), accepting none of
// its bytes.
func (s *Sink) FailWrite(n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	s.mu.Lock()
	s.writeFaults[n] = opFault{err: err, keep: -1}
	s.mu.Unlock()
}

// TearWrite plans the nth Write call to be torn: the first keep bytes are
// accepted into the cache, the rest are dropped, and the write returns err
// (ErrInjected when nil) — the short-write-plus-error shape a failing disk
// produces mid-transfer.
func (s *Sink) TearWrite(n, keep int, err error) {
	if err == nil {
		err = ErrInjected
	}
	if keep < 0 {
		keep = 0
	}
	s.mu.Lock()
	s.writeFaults[n] = opFault{err: err, keep: keep}
	s.mu.Unlock()
}

// FailSync plans the nth Sync call (1-based) to fail with err (ErrInjected
// when nil). The bytes it would have made durable stay volatile.
func (s *Sink) FailSync(n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	s.mu.Lock()
	s.syncFaults[n] = err
	s.mu.Unlock()
}

// CutAtBytes arms a power cut that triggers the moment total accepted bytes
// reach n: the triggering write is torn at the threshold, everything not yet
// synced is discarded, and all later operations fail with ErrPowerCut.
func (s *Sink) CutAtBytes(n int64) {
	s.mu.Lock()
	s.cutAtBytes = n
	s.mu.Unlock()
}

// CutAtSync arms a power cut at the nth upcoming Sync call (1-based): the
// sync fails with ErrPowerCut and makes nothing durable, modelling power loss
// while the device had the batch in flight.
func (s *Sink) CutAtSync(n int) {
	s.mu.Lock()
	s.cutAtSync = n
	s.mu.Unlock()
}

// PowerCut cuts power immediately: unsynced bytes are discarded and every
// later operation fails with ErrPowerCut.
func (s *Sink) PowerCut() {
	s.mu.Lock()
	s.powerCutLocked()
	s.mu.Unlock()
}

func (s *Sink) powerCutLocked() {
	s.cut = true
	s.buf = s.buf[:s.durable]
}

// FlipBit XORs bit (0-7) of the byte at off in the accepted stream — cached
// or durable — modelling storage corruption. Out-of-range offsets are
// reported so tests fail loudly instead of silently not corrupting.
func (s *Sink) FlipBit(off int64, bit uint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off >= int64(len(s.buf)) {
		return fmt.Errorf("iofault: FlipBit offset %d outside %d accepted bytes", off, len(s.buf))
	}
	s.buf[off] ^= 1 << (bit & 7)
	return nil
}

// Write appends p to the cache, honouring planned faults and the armed power
// cut. It never blocks.
func (s *Sink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cut {
		return 0, ErrPowerCut
	}
	s.writes++
	if f, ok := s.writeFaults[s.writes]; ok {
		delete(s.writeFaults, s.writes)
		keep := f.keep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			s.buf = append(s.buf, p[:keep]...)
		}
		if keep < 0 {
			keep = 0
		}
		return keep, f.err
	}
	if s.cutAtBytes >= 0 && int64(len(s.buf))+int64(len(p)) >= s.cutAtBytes {
		keep := int(s.cutAtBytes - int64(len(s.buf)))
		if keep < 0 {
			keep = 0
		}
		if keep > len(p) {
			keep = len(p)
		}
		s.buf = append(s.buf, p[:keep]...)
		s.powerCutLocked()
		return keep, ErrPowerCut
	}
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// Sync makes every accepted byte durable, honouring planned faults and the
// armed power cut.
func (s *Sink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cut {
		return ErrPowerCut
	}
	s.syncs++
	if s.cutAtSync > 0 && s.syncs >= s.cutAtSync {
		s.powerCutLocked()
		return ErrPowerCut
	}
	if err, ok := s.syncFaults[s.syncs]; ok {
		delete(s.syncFaults, s.syncs)
		return err
	}
	s.durable = len(s.buf)
	return nil
}

// Bytes returns a copy of every accepted byte, synced or not — what a crash
// that flushed the page cache would leave behind.
func (s *Sink) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...)
}

// Durable returns a copy of the synced prefix — what survives a power cut.
func (s *Sink) Durable() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf[:s.durable]...)
}

// Len returns the number of accepted bytes.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// DurableLen returns the number of durable bytes.
func (s *Sink) DurableLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// Writes returns the number of Write calls observed.
func (s *Sink) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Syncs returns the number of Sync calls observed.
func (s *Sink) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// Cut reports whether the simulated power has been cut.
func (s *Sink) Cut() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cut
}
