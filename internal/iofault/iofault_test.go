package iofault

import (
	"bytes"
	"errors"
	"testing"
)

func TestWriteSyncDurability(t *testing.T) {
	s := NewSink()
	s.Write([]byte("abc"))
	if s.DurableLen() != 0 {
		t.Fatalf("unsynced bytes counted durable: %d", s.DurableLen())
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("def"))
	if got := s.Durable(); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("durable = %q", got)
	}
	if got := s.Bytes(); !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("bytes = %q", got)
	}
}

func TestFailWriteNth(t *testing.T) {
	s := NewSink()
	s.FailWrite(2, nil)
	if _, err := s.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	n, err := s.Write([]byte("boom"))
	if !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("write 2: n=%d err=%v", n, err)
	}
	if _, err := s.Write([]byte("after")); err != nil {
		t.Fatalf("write 3 should succeed: %v", err)
	}
	if got := s.Bytes(); !bytes.Equal(got, []byte("okafter")) {
		t.Fatalf("bytes = %q", got)
	}
}

func TestTearWrite(t *testing.T) {
	s := NewSink()
	s.TearWrite(1, 2, nil)
	n, err := s.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if got := s.Bytes(); !bytes.Equal(got, []byte("ab")) {
		t.Fatalf("bytes = %q", got)
	}
}

func TestFailSyncOnce(t *testing.T) {
	s := NewSink()
	s.FailSync(1, nil)
	s.Write([]byte("x"))
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1: %v", err)
	}
	if s.DurableLen() != 0 {
		t.Fatal("failed sync made bytes durable")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if s.DurableLen() != 1 {
		t.Fatal("second sync did not make bytes durable")
	}
}

func TestPowerCutDiscardsUnsynced(t *testing.T) {
	s := NewSink()
	s.Write([]byte("keep"))
	s.Sync()
	s.Write([]byte("lost"))
	s.PowerCut()
	if got := s.Bytes(); !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("after cut bytes = %q", got)
	}
	if _, err := s.Write([]byte("z")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut: %v", err)
	}
}

func TestCutAtBytesTearsTriggeringWrite(t *testing.T) {
	s := NewSink()
	s.Write([]byte("abcd"))
	s.Sync()
	s.CutAtBytes(6)
	n, err := s.Write([]byte("efgh"))
	if n != 2 || !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut write: n=%d err=%v", n, err)
	}
	// The torn bytes were never synced, so the cut discards them.
	if got := s.Bytes(); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("bytes = %q", got)
	}
	if !s.Cut() {
		t.Fatal("cut flag not latched")
	}
}

func TestCutAtSync(t *testing.T) {
	s := NewSink()
	s.CutAtSync(2)
	s.Write([]byte("one"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("two"))
	if err := s.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("armed sync: %v", err)
	}
	if got := s.Durable(); !bytes.Equal(got, []byte("one")) {
		t.Fatalf("durable = %q", got)
	}
}

func TestFlipBit(t *testing.T) {
	s := NewSink()
	s.Write([]byte{0x00, 0xff})
	if err := s.FlipBit(1, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Bytes(); got[1] != 0xf7 {
		t.Fatalf("flip: %#x", got[1])
	}
	if err := s.FlipBit(99, 0); err == nil {
		t.Fatal("out-of-range flip not reported")
	}
}
