package uintr

import (
	"sync"
	"testing"
)

func TestSendAndFetch(t *testing.T) {
	var u UPID
	if u.Pending() {
		t.Fatal("fresh UPID must not be pending")
	}
	SendUIPI(&u, VecPreempt)
	SendUIPI(&u, VecPing)
	if !u.Pending() {
		t.Fatal("UPID must be pending after send")
	}
	bm := u.Fetch()
	if !Has(bm, VecPreempt) || !Has(bm, VecPing) {
		t.Fatalf("bitmap %b missing vectors", bm)
	}
	if Has(bm, VecShutdown) {
		t.Fatal("unexpected vector set")
	}
	if u.Pending() {
		t.Fatal("Fetch must consume all pending vectors")
	}
	if u.Posted() != 2 {
		t.Fatalf("posted = %d, want 2", u.Posted())
	}
}

func TestSendDuplicateVectorCoalesces(t *testing.T) {
	var u UPID
	SendUIPI(&u, VecPreempt)
	SendUIPI(&u, VecPreempt)
	bm := u.Fetch()
	if bm != 1<<uint(VecPreempt) {
		t.Fatalf("bitmap %b, want single bit", bm)
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for vector >= 64")
		}
	}()
	var u UPID
	SendUIPI(&u, Vector(64))
}

func TestSuppressBit(t *testing.T) {
	var u UPID
	u.SetSuppress(true)
	if !u.Suppressed() {
		t.Fatal("suppress bit not set")
	}
	// Posting while suppressed still lands in PIR.
	SendUIPI(&u, VecPing)
	if !u.Pending() {
		t.Fatal("post while suppressed must stay pending")
	}
	u.SetSuppress(false)
	if u.Suppressed() {
		t.Fatal("suppress bit not cleared")
	}
}

func TestReceiverRecognize(t *testing.T) {
	r := NewReceiver()
	if !r.UIF() {
		t.Fatal("new receiver must have UIF set")
	}
	if _, ok := r.Recognize(); ok {
		t.Fatal("nothing pending: recognize must fail")
	}
	SendUIPI(r.UPID(), VecPreempt)
	bm, ok := r.Recognize()
	if !ok || !Has(bm, VecPreempt) {
		t.Fatalf("recognize failed: ok=%v bm=%b", ok, bm)
	}
	if r.UIF() {
		t.Fatal("UIF must be clear while handler runs")
	}
	// Interrupt posted during the handler stays pending.
	SendUIPI(r.UPID(), VecPing)
	if _, ok := r.Recognize(); ok {
		t.Fatal("recognition must be blocked while UIF is clear")
	}
	r.UIRET()
	bm, ok = r.Recognize()
	if !ok || !Has(bm, VecPing) {
		t.Fatal("pending interrupt must be recognized after UIRET")
	}
	r.UIRET()
	if r.Delivered() != 2 {
		t.Fatalf("delivered = %d, want 2", r.Delivered())
	}
}

func TestCLUIMasksRecognition(t *testing.T) {
	r := NewReceiver()
	r.CLUI()
	SendUIPI(r.UPID(), VecPreempt)
	if _, ok := r.Recognize(); ok {
		t.Fatal("CLUI must mask recognition")
	}
	if !r.UPID().Pending() {
		t.Fatal("masked interrupt must stay pending")
	}
	r.STUI()
	if _, ok := r.Recognize(); !ok {
		t.Fatal("STUI must unmask pending interrupt")
	}
}

func TestConcurrentSenders(t *testing.T) {
	var u UPID
	var wg sync.WaitGroup
	const senders, posts = 8, 1000
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(v Vector) {
			defer wg.Done()
			for i := 0; i < posts; i++ {
				SendUIPI(&u, v)
			}
		}(Vector(s))
	}
	wg.Wait()
	if u.Posted() != senders*posts {
		t.Fatalf("posted = %d", u.Posted())
	}
	bm := u.Fetch()
	for s := 0; s < senders; s++ {
		if !Has(bm, Vector(s)) {
			t.Fatalf("vector %d lost", s)
		}
	}
}

func TestLastPostTimestamp(t *testing.T) {
	var u UPID
	if u.LastPostNanos() != 0 {
		t.Fatal("fresh UPID has a post timestamp")
	}
	SendUIPI(&u, VecPing)
	if u.LastPostNanos() == 0 {
		t.Fatal("post must record a timestamp")
	}
}
