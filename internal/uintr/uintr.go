// Package uintr simulates the x86 user-interrupt (UINTR) hardware primitives
// that PreemptDB builds on: user posted-interrupt descriptors (UPID), the
// senduipi sender instruction, the user-interrupt flag (UIF) toggled by
// clui/stui, and interrupt recognition by the receiving hardware thread.
//
// Real UINTR delivers an interrupt at an arbitrary instruction boundary of the
// receiving thread. Go cannot host that mechanism (the runtime owns signals
// and preemption), so this package provides the software equivalent: a sender
// posts a vector into the target's UPID with a single atomic store, and the
// receiver recognizes pending vectors at its next simulated instruction
// boundary (a Poll call issued pervasively by the engine). Because the engine
// polls every few nanoseconds of work, delivery latency remains sub-microsecond,
// matching the property the paper's evaluation relies on (§6.1).
package uintr

import (
	"sync/atomic"

	"preemptdb/internal/clock"
)

// Vector identifies one of the 64 user-interrupt vectors supported by the
// hardware (UPID.PIR is a 64-bit bitmap).
type Vector uint8

// NumVectors is the number of distinct user-interrupt vectors.
const NumVectors = 64

// Reserved vectors used by PreemptDB. Vector assignment is conventional, not
// enforced: any vector may be posted to any receiver.
const (
	// VecPreempt asks the worker to switch to its high-priority context.
	VecPreempt Vector = 0
	// VecPing is used by microbenchmarks to measure delivery latency.
	VecPing Vector = 1
	// VecShutdown asks the worker loop to wind down.
	VecShutdown Vector = 2
)

// UPID is a user posted-interrupt descriptor: the shared-memory mailbox a
// sender posts vectors into. One UPID belongs to exactly one receiver
// (a simulated hardware thread).
type UPID struct {
	// pir is the posted-interrupt request bitmap: bit v set means vector v
	// is pending recognition.
	pir atomic.Uint64
	// sn is the suppress-notification bit; while set, senders post to PIR but
	// the receiver is not expected to be scanning (used when a receiver parks).
	sn atomic.Bool
	// posted counts SendUIPI calls, for overhead accounting.
	posted atomic.Uint64
	// lastPost records the clock.Nanos timestamp of the most recent post so
	// the receiver can measure delivery latency.
	lastPost atomic.Int64
}

// SendUIPI posts vector v to the target descriptor. It is the software
// equivalent of the senduipi instruction: one atomic OR into the PIR plus a
// notification timestamp. Safe for concurrent senders.
func SendUIPI(target *UPID, v Vector) {
	if v >= NumVectors {
		panic("uintr: vector out of range")
	}
	target.lastPost.Store(clock.Nanos())
	target.pir.Or(1 << uint(v))
	target.posted.Add(1)
}

// Pending reports whether any vector is awaiting recognition. This is the
// receiver's fast-path check and costs one atomic load.
func (u *UPID) Pending() bool { return u.pir.Load() != 0 }

// Fetch atomically consumes and returns the pending vector bitmap.
func (u *UPID) Fetch() uint64 { return u.pir.Swap(0) }

// Posted returns the total number of SendUIPI calls against this descriptor.
func (u *UPID) Posted() uint64 { return u.posted.Load() }

// LastPostNanos returns the clock.Nanos timestamp of the most recent post.
func (u *UPID) LastPostNanos() int64 { return u.lastPost.Load() }

// SetSuppress sets or clears the suppress-notification bit.
func (u *UPID) SetSuppress(on bool) { u.sn.Store(on) }

// Suppressed reports the suppress-notification bit.
func (u *UPID) Suppressed() bool { return u.sn.Load() }

// Has reports whether vector v is set in a fetched bitmap.
func Has(bitmap uint64, v Vector) bool { return bitmap&(1<<uint(v)) != 0 }

// Receiver models the receiving hardware thread's interrupt state: its UPID
// plus the user-interrupt flag (UIF). When UIF is clear — via CLUI, or
// implicitly while a handler is executing — posted interrupts stay pending in
// the UPID and are recognized once UIF is set again.
type Receiver struct {
	upid UPID
	// uif is the user-interrupt flag: true means interrupts may be
	// recognized. stui sets it, clui clears it.
	uif atomic.Bool
	// delivered counts recognized (handler-invoked) interrupts.
	delivered atomic.Uint64
}

// NewReceiver returns a receiver with interrupts enabled (UIF set), matching
// a thread that has executed stui after registering its handler.
func NewReceiver() *Receiver {
	r := &Receiver{}
	r.uif.Store(true)
	return r
}

// UPID exposes the descriptor senders post into.
func (r *Receiver) UPID() *UPID { return &r.upid }

// STUI sets the user-interrupt flag, enabling recognition.
func (r *Receiver) STUI() { r.uif.Store(true) }

// CLUI clears the user-interrupt flag; posted interrupts stay pending.
func (r *Receiver) CLUI() { r.uif.Store(false) }

// UIF reports whether interrupts are currently enabled.
func (r *Receiver) UIF() bool { return r.uif.Load() }

// Recognize performs the hardware recognition step: if UIF is set and any
// vector is pending it clears UIF (handlers run with interrupts disabled,
// exactly as the CPU does) and returns the consumed bitmap with ok=true.
// The caller must invoke UIRET after running its handler.
//
// If UIF is clear or nothing is pending it returns (0, false) after a single
// atomic load, which is why polling it pervasively is nearly free.
func (r *Receiver) Recognize() (bitmap uint64, ok bool) {
	if !r.upid.Pending() {
		return 0, false
	}
	if !r.uif.Load() {
		return 0, false
	}
	// Clear UIF first so a vector posted between Fetch and handler entry is
	// held pending rather than recursing into the handler.
	r.uif.Store(false)
	bitmap = r.upid.Fetch()
	if bitmap == 0 {
		// Another recognition path consumed it; behave as spurious.
		r.uif.Store(true)
		return 0, false
	}
	r.delivered.Add(1)
	return bitmap, true
}

// UIRET re-enables interrupt recognition after a handler completes, the
// software analogue of the uiret instruction restoring the saved UIF.
func (r *Receiver) UIRET() { r.uif.Store(true) }

// Delivered returns the number of recognized interrupts.
func (r *Receiver) Delivered() uint64 { return r.delivered.Load() }
