//go:build !race

package pcontext

// raceEnabled gates invariant checks that are worth a branch only in -race
// test builds (e.g. the BeginLowPrio single-writer check).
const raceEnabled = false
