package pcontext

import (
	"errors"
	"sync/atomic"

	"preemptdb/internal/clock"
)

// Transaction lifecycle errors. They originate here — the layer whose Poll
// instrumentation detects cancellation — and propagate unchanged through
// mvcc, engine and the public API, so errors.Is works at every layer.
var (
	// ErrCanceled reports that the transaction's lifecycle was canceled
	// (by the submitter, the scheduler, or a dying network connection).
	ErrCanceled = errors.New("preemptdb: transaction canceled")
	// ErrDeadlineExceeded reports that the transaction ran (or queued) past
	// its absolute deadline.
	ErrDeadlineExceeded = errors.New("preemptdb: transaction deadline exceeded")
)

// CancelReason is the typed reason stored in a context's lifecycle word.
type CancelReason uint8

// Cancel reasons. The zero value means "not canceled".
const (
	ReasonNone CancelReason = iota
	ReasonCanceled
	ReasonDeadline
)

func (r CancelReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonCanceled:
		return "canceled"
	case ReasonDeadline:
		return "deadline"
	default:
		return "invalid"
	}
}

// Err maps the reason to its typed error (nil for ReasonNone).
func (r CancelReason) Err() error {
	switch r {
	case ReasonCanceled:
		return ErrCanceled
	case ReasonDeadline:
		return ErrDeadlineExceeded
	default:
		return nil
	}
}

// The lifecycle word packs the request's absolute deadline (clock.Nanos,
// shifted left) and the cancel reason into one atomic uint64, so Poll's
// common case — no deadline, not canceled — costs a single load of zero.
//
//	bits 0..1  CancelReason
//	bits 2..63 absolute deadline in nanoseconds (0 = none)
//
// The word is written by the owning worker (arm/disarm), by Poll when the
// deadline trips, and by any goroutine calling Cancel — hence atomic, unlike
// the rest of the TCB, which is context-confined.
const (
	lcReasonMask = uint64(3)
	lcShift      = 2
)

// lifecycle is the per-context cancellation/deadline state plus the
// generation counter that fences stale cross-goroutine cancels.
type lifecycle struct {
	word atomic.Uint64
	// gen increments on every Arm/Disarm. CancelGen refuses to cancel when
	// the generation moved on, so a racing cancel aimed at a finished
	// request can never hit the next transaction reusing this context.
	gen atomic.Uint64
}

// Arm installs a fresh lifecycle for the next request on this context:
// deadline is the absolute clock.Nanos() bound (0 = none). It returns the
// generation token to pass to CancelGen. Safe on a nil context (returns 0).
func (x *Context) Arm(deadline int64) uint64 {
	if x == nil {
		return 0
	}
	g := x.lc.gen.Add(1)
	var w uint64
	if deadline > 0 {
		w = uint64(deadline) << lcShift
	}
	x.lc.word.Store(w)
	return g
}

// Disarm clears the lifecycle after a request finishes, invalidating
// outstanding CancelGen tokens. Safe on a nil context.
func (x *Context) Disarm() {
	if x == nil {
		return
	}
	x.lc.gen.Add(1)
	x.lc.word.Store(0)
}

// Cancel marks the context's current lifecycle canceled. The first reason
// sticks: canceling an already deadline-expired context keeps ReasonDeadline.
// Safe to call from any goroutine and on a nil context.
func (x *Context) Cancel() {
	if x == nil {
		return
	}
	x.cancelReason(ReasonCanceled)
}

// CancelGen cancels the lifecycle only if gen — obtained from Arm — is still
// current, reporting whether the cancel (or an earlier one) took effect.
// This is the cross-goroutine entry point: a caller holding a handle to a
// request that already finished gets false instead of poisoning whatever
// transaction runs on the context next.
func (x *Context) CancelGen(gen uint64) bool {
	if x == nil || x.lc.gen.Load() != gen {
		return false
	}
	x.cancelReason(ReasonCanceled)
	// Re-check: if Disarm raced in, the word was cleared and the cancel
	// missed its target (the request finished anyway).
	return x.lc.gen.Load() == gen
}

func (x *Context) cancelReason(r CancelReason) {
	for {
		w := x.lc.word.Load()
		if w&lcReasonMask != 0 {
			return // first reason wins
		}
		if x.lc.word.CompareAndSwap(w, w|uint64(r)) {
			return
		}
	}
}

// Deadline returns the armed absolute deadline in clock.Nanos units
// (0 = none).
func (x *Context) Deadline() int64 {
	if x == nil {
		return 0
	}
	return int64(x.lc.word.Load() >> lcShift)
}

// Reason returns the context's current cancel reason, tripping the deadline
// on the spot if it has passed (so callers between polls still observe it).
func (x *Context) Reason() CancelReason {
	if x == nil {
		return ReasonNone
	}
	w := x.lc.word.Load()
	if r := CancelReason(w & lcReasonMask); r != ReasonNone {
		return r
	}
	if d := int64(w >> lcShift); d != 0 && clock.Nanos() >= d {
		x.cancelReason(ReasonDeadline)
		return ReasonDeadline
	}
	return ReasonNone
}

// Err returns the typed lifecycle error — ErrCanceled or
// ErrDeadlineExceeded — or nil while the transaction may keep running. It is
// the check every engine/mvcc/index access path performs to unwind a
// canceled transaction; like Poll, it is nil-safe and costs one atomic load
// in the common (alive, no deadline) case.
func (x *Context) Err() error {
	if x == nil {
		return nil
	}
	if x.lc.word.Load() == 0 {
		return nil
	}
	return x.Reason().Err()
}

// pollLifecycle is Poll's lifecycle check: trip the deadline at instruction
// granularity. The caller guarantees x != nil; the single load of a zero
// word keeps the un-armed fast path at one instruction.
func (x *Context) pollLifecycle() {
	w := x.lc.word.Load()
	if w == 0 || w&lcReasonMask != 0 {
		return
	}
	if clock.Nanos() >= int64(w>>lcShift) {
		x.lc.word.CompareAndSwap(w, w|uint64(ReasonDeadline))
	}
}
