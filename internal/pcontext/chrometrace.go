package pcontext

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Chrome trace-event export: renders tracer snapshots in the JSON schema
// understood by Perfetto (ui.perfetto.dev) and chrome://tracing. Each core
// becomes a process, each context a thread; intervals where a context held
// the core become complete ("X") spans, and interrupt recognitions /
// NPR-deferred deliveries become instant ("i") markers.

// CoreEvents pairs a core id with that core's tracer snapshot.
type CoreEvents struct {
	Core   int
	Events []Event
}

// chromeEvent is one trace-event record. Field names follow the format spec;
// timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace converts per-core tracer snapshots into a Chrome trace-event
// JSON document. Timestamps are rebased so the earliest event across all
// cores is t=0.
func ChromeTrace(cores []CoreEvents) ([]byte, error) {
	base := int64(0)
	haveBase := false
	for _, ce := range cores {
		for _, e := range ce.Events {
			if !haveBase || e.At < base {
				base, haveBase = e.At, true
			}
		}
	}
	us := func(at int64) float64 { return float64(at-base) / 1e3 }

	var out []chromeEvent
	for _, ce := range cores {
		if len(ce.Events) == 0 {
			continue
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: ce.Core,
			Args: map[string]any{"name": fmt.Sprintf("core %d", ce.Core)},
		})
		seenCtx := map[int8]bool{}
		thread := func(id int8) {
			if id < 0 || seenCtx[id] {
				return
			}
			seenCtx[id] = true
			role := "regular"
			if id > 0 {
				role = "preemptive"
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ce.Core, Tid: int(id),
				Args: map[string]any{"name": fmt.Sprintf("ctx%d (%s)", id, role)},
			})
		}

		// Occupancy spans: between consecutive switch events the outgoing
		// context (the switch's From edge) held the core. The tracer ring may
		// have dropped events (wrap, seqlock skip), so resynchronize the
		// running context from each switch's From edge instead of trusting
		// the previous To edge.
		cur := int8(-1)
		curStart := ce.Events[0].At
		emitSpan := func(ctx int8, start, end int64, tag uint64) {
			if ctx < 0 || end < start {
				return
			}
			thread(ctx)
			name := fmt.Sprintf("ctx%d", ctx)
			var args map[string]any
			if tag != 0 {
				name = fmt.Sprintf("txn %d", tag)
				args = map[string]any{"txn": tag}
			}
			d := us(end) - us(start)
			out = append(out, chromeEvent{
				Name: name, Ph: "X", Ts: us(start), Dur: &d,
				Pid: ce.Core, Tid: int(ctx), Args: args,
			})
		}
		lastAt := ce.Events[0].At
		for _, e := range ce.Events {
			lastAt = e.At
			switch e.Kind {
			case EvPassiveSwitch, EvActiveSwitch:
				emitSpan(e.From, curStart, e.At, e.Tag)
				cur, curStart = e.To, e.At
			case EvRecognized, EvSuppressed:
				thread(e.From)
				name := "uintr recognized"
				if e.Kind == EvSuppressed {
					name = "uintr deferred (NPR)"
				}
				var args map[string]any
				if e.Tag != 0 {
					args = map[string]any{"txn": e.Tag}
				}
				out = append(out, chromeEvent{
					Name: name, Ph: "i", Ts: us(e.At), S: "t",
					Pid: ce.Core, Tid: int(e.From), Args: args,
				})
			}
		}
		// Close the trailing occupancy span at the last event time.
		emitSpan(cur, curStart, lastAt, 0)
	}

	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi // metadata first
		}
		return out[i].Ts < out[j].Ts
	})
	return json.MarshalIndent(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"}, "", " ")
}

// ValidateChromeTrace parses a Chrome trace-event JSON document and checks it
// is well-formed: non-empty, every event carries a known phase, durations are
// non-negative, and non-metadata timestamps are monotonically non-decreasing.
func ValidateChromeTrace(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("chrometrace: parse: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return errors.New("chrometrace: no events")
	}
	prev := float64(0)
	first := true
	for i, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "X", "i":
		default:
			return fmt.Errorf("chrometrace: event %d: unknown phase %q", i, e.Ph)
		}
		if e.Dur != nil && *e.Dur < 0 {
			return fmt.Errorf("chrometrace: event %d: negative duration %g", i, *e.Dur)
		}
		if !first && e.Ts < prev {
			return fmt.Errorf("chrometrace: event %d: ts %g < previous %g", i, e.Ts, prev)
		}
		prev, first = e.Ts, false
	}
	return nil
}
