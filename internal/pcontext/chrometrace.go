package pcontext

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Chrome trace-event export: renders tracer snapshots in the JSON schema
// understood by Perfetto (ui.perfetto.dev) and chrome://tracing. Each core
// becomes a process, each context a thread; intervals where a context held
// the core become complete ("X") spans, and interrupt recognitions /
// NPR-deferred deliveries become instant ("i") markers.

// CoreEvents pairs a core id with that core's tracer snapshot.
type CoreEvents struct {
	Core   int
	Events []Event
}

// chromeEvent is one trace-event record. Field names follow the format spec;
// timestamps and durations are microseconds. Id/Cat/BP carry flow events
// ("s"/"t"/"f"), which stitch causally-linked spans across processes.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace converts per-core tracer snapshots into a Chrome trace-event
// JSON document. Timestamps are rebased so the earliest event across all
// cores is t=0.
func ChromeTrace(cores []CoreEvents) ([]byte, error) {
	base := int64(0)
	haveBase := false
	for _, ce := range cores {
		for _, e := range ce.Events {
			if !haveBase || e.At < base {
				base, haveBase = e.At, true
			}
		}
	}
	us := func(at int64) float64 { return float64(at-base) / 1e3 }

	var out []chromeEvent
	for _, ce := range cores {
		if len(ce.Events) == 0 {
			continue
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: ce.Core,
			Args: map[string]any{"name": fmt.Sprintf("core %d", ce.Core)},
		})
		seenCtx := map[int8]bool{}
		thread := func(id int8) {
			if id < 0 || seenCtx[id] {
				return
			}
			seenCtx[id] = true
			role := "regular"
			if id > 0 {
				role = "preemptive"
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ce.Core, Tid: int(id),
				Args: map[string]any{"name": fmt.Sprintf("ctx%d (%s)", id, role)},
			})
		}

		// Occupancy spans: between consecutive switch events the outgoing
		// context (the switch's From edge) held the core. The tracer ring may
		// have dropped events (wrap, seqlock skip), so resynchronize the
		// running context from each switch's From edge instead of trusting
		// the previous To edge.
		cur := int8(-1)
		curStart := ce.Events[0].At
		emitSpan := func(ctx int8, start, end int64, tag uint64) {
			if ctx < 0 || end < start {
				return
			}
			thread(ctx)
			name := fmt.Sprintf("ctx%d", ctx)
			var args map[string]any
			if tag != 0 {
				name = fmt.Sprintf("txn %d", tag)
				args = map[string]any{"txn": tag}
			}
			d := us(end) - us(start)
			out = append(out, chromeEvent{
				Name: name, Ph: "X", Ts: us(start), Dur: &d,
				Pid: ce.Core, Tid: int(ctx), Args: args,
			})
		}
		lastAt := ce.Events[0].At
		for _, e := range ce.Events {
			lastAt = e.At
			switch e.Kind {
			case EvPassiveSwitch, EvActiveSwitch:
				emitSpan(e.From, curStart, e.At, e.Tag)
				cur, curStart = e.To, e.At
			case EvRecognized, EvSuppressed:
				thread(e.From)
				name := "uintr recognized"
				if e.Kind == EvSuppressed {
					name = "uintr deferred (NPR)"
				}
				var args map[string]any
				if e.Tag != 0 {
					args = map[string]any{"txn": e.Tag}
				}
				out = append(out, chromeEvent{
					Name: name, Ph: "i", Ts: us(e.At), S: "t",
					Pid: ce.Core, Tid: int(e.From), Args: args,
				})
			case EvTxnEnd:
				thread(e.From)
				args := map[string]any{"err": AuxDetail(e.Aux) != 0}
				if e.Tag != 0 {
					args["txn"] = e.Tag
				}
				out = append(out, chromeEvent{
					Name: e.Kind.String(), Ph: "i", Ts: us(e.At), S: "t",
					Pid: ce.Core, Tid: int(e.From), Args: args,
				})
			default:
				if !e.Kind.SpanEnd() {
					break
				}
				// Lifecycle span: the event marks the end, Aux carries the
				// duration.
				thread(e.From)
				d := float64(AuxDuration(e.Aux)) / 1e3
				args := map[string]any{"detail": AuxDetail(e.Aux)}
				if e.Tag != 0 {
					args["txn"] = e.Tag
				}
				out = append(out, chromeEvent{
					Name: e.Kind.String(), Ph: "X", Ts: us(e.At) - d, Dur: &d,
					Pid: ce.Core, Tid: int(e.From), Args: args,
				})
			}
		}
		// Close the trailing occupancy span at the last event time.
		emitSpan(cur, curStart, lastAt, 0)
	}

	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi // metadata first
		}
		return out[i].Ts < out[j].Ts
	})
	return json.MarshalIndent(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"}, "", " ")
}

// shardPidBase is the synthetic process id under which ChromeTraceTxn groups
// per-participant-shard 2PC spans. The scheduler cores keep their own (small)
// pids; shard N's 2PC track renders as process shardPidBase+N.
const shardPidBase = 1000

// ChromeTraceTxn k-way merges per-core tracer snapshots into one
// causally-linked Chrome trace for a single transaction: the admission/queue
// span, the scheduler occupancy span with pause/resume markers, the WAL
// group-commit wait, and the 2PC prepare/decision/resolve legs re-bucketed
// onto one synthetic track per participant shard, stitched together with
// flow events ("s" at txn start → "t" on every 2PC leg → "f" at txn end).
// Core ids must already be globally unique (the DB facade renumbers them).
func ChromeTraceTxn(tag uint64, cores []CoreEvents) ([]byte, error) {
	if tag == 0 {
		return nil, errors.New("chrometrace: zero trace id")
	}
	type tev struct {
		core int
		e    Event
	}
	var evs []tev
	base := int64(0)
	haveBase := false
	for _, ce := range cores {
		for _, e := range ce.Events {
			if e.Tag != tag {
				continue
			}
			evs = append(evs, tev{ce.Core, e})
			start := e.At
			if e.Kind.SpanEnd() {
				start -= AuxDuration(e.Aux)
			}
			if !haveBase || start < base {
				base, haveBase = start, true
			}
		}
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("chrometrace: no events for txn %d (ring wrapped or tracing off)", tag)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].e.At < evs[j].e.At })
	us := func(at int64) float64 { return float64(at-base) / 1e3 }

	var out []chromeEvent
	seenProc := map[int]bool{}
	proc := func(pid int, name string) {
		if seenProc[pid] {
			return
		}
		seenProc[pid] = true
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	seenThread := map[[2]int]bool{}
	thread := func(pid, tid int, name string) {
		k := [2]int{pid, tid}
		if seenThread[k] {
			return
		}
		seenThread[k] = true
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	schedTrack := func(core int, ctx int8) (int, int) {
		proc(core, fmt.Sprintf("core %d", core))
		thread(core, int(ctx), fmt.Sprintf("ctx%d", ctx))
		return core, int(ctx)
	}
	shardTrack := func(shard uint8) (int, int) {
		pid := shardPidBase + int(shard)
		proc(pid, fmt.Sprintf("shard %d (2PC)", shard))
		thread(pid, 0, "prepare/resolve")
		return pid, 0
	}
	flow := func(ph string, pid, tid int, ts float64) {
		out = append(out, chromeEvent{
			Name: "txn-flow", Ph: ph, Cat: "txn", ID: tag,
			Ts: ts, Pid: pid, Tid: tid, BP: "e",
		})
	}
	span := func(name string, pid, tid int, start, end float64, args map[string]any) {
		d := end - start
		if d < 0 {
			d = 0
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "X", Ts: start, Dur: &d, Pid: pid, Tid: tid, Args: args,
		})
	}

	// The scheduler-side execution span: EvTxnStart → EvTxnEnd on the core
	// that ran the transaction (retries stay on one request, hence one pair).
	var startAt, endAt int64 = -1, -1
	for _, te := range evs {
		switch te.e.Kind {
		case EvTxnStart:
			if startAt < 0 {
				startAt = te.e.At
			}
		case EvTxnEnd:
			endAt = te.e.At
		}
	}

	for _, te := range evs {
		e := te.e
		switch e.Kind {
		case EvTxnStart:
			pid, tid := schedTrack(te.core, e.From)
			span("admission+queue", pid, tid, us(e.At-AuxDuration(e.Aux)), us(e.At),
				map[string]any{"txn": tag, "class_hi": AuxDetail(e.Aux) != 0})
			if endAt >= 0 {
				span(fmt.Sprintf("txn %d", tag), pid, tid, us(e.At), us(endAt),
					map[string]any{"txn": tag})
			}
			flow("s", pid, tid, us(e.At))
		case EvTxnEnd:
			pid, tid := schedTrack(te.core, e.From)
			out = append(out, chromeEvent{
				Name: "txn-end", Ph: "i", Ts: us(e.At), S: "t", Pid: pid, Tid: tid,
				Args: map[string]any{"txn": tag, "err": AuxDetail(e.Aux) != 0},
			})
			flow("f", pid, tid, us(e.At))
		case EvWALWait:
			pid, tid := schedTrack(te.core, e.From)
			span("wal group-commit wait", pid, tid, us(e.At-AuxDuration(e.Aux)), us(e.At),
				map[string]any{"txn": tag, "leader": AuxDetail(e.Aux) != 0})
		case EvPrepare, EvResolve, EvDecision:
			pid, tid := shardTrack(AuxDetail(e.Aux))
			span(e.Kind.String(), pid, tid, us(e.At-AuxDuration(e.Aux)), us(e.At),
				map[string]any{"txn": tag, "shard": AuxDetail(e.Aux)})
			flow("t", pid, tid, us(e.At-AuxDuration(e.Aux)))
		case EvPassiveSwitch, EvActiveSwitch:
			// The transaction's context is the From edge of a switch carrying
			// its tag: it was paused (preempted or stall-parked) here.
			pid, tid := schedTrack(te.core, e.From)
			name := "paused (preempted)"
			if e.Kind == EvActiveSwitch {
				name = "paused (yield/stall)"
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "i", Ts: us(e.At), S: "t", Pid: pid, Tid: tid,
				Args: map[string]any{"txn": tag, "to_ctx": e.To},
			})
		case EvRecognized, EvSuppressed:
			pid, tid := schedTrack(te.core, e.From)
			name := "uintr recognized"
			if e.Kind == EvSuppressed {
				name = "uintr deferred (NPR)"
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "i", Ts: us(e.At), S: "t", Pid: pid, Tid: tid,
				Args: map[string]any{"txn": tag},
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi // metadata first
		}
		return out[i].Ts < out[j].Ts
	})
	return json.MarshalIndent(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"}, "", " ")
}

// ValidateChromeTrace parses a Chrome trace-event JSON document and checks it
// is well-formed: non-empty, every event carries a known phase, durations are
// non-negative, non-metadata timestamps are monotonically non-decreasing, and
// flow events are coherent — every flow id that starts ("s") also finishes
// ("f"), with the start at or before every step and the finish.
func ValidateChromeTrace(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("chrometrace: parse: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return errors.New("chrometrace: no events")
	}
	type flowState struct {
		starts, finishes int
		startTs          float64
	}
	flows := map[uint64]*flowState{}
	flowAt := func(id uint64) *flowState {
		f := flows[id]
		if f == nil {
			f = &flowState{}
			flows[id] = f
		}
		return f
	}
	prev := float64(0)
	first := true
	for i, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "X", "i":
		case "s", "t", "f":
			if e.ID == 0 {
				return fmt.Errorf("chrometrace: event %d: flow event without id", i)
			}
			f := flowAt(e.ID)
			switch e.Ph {
			case "s":
				f.starts++
				f.startTs = e.Ts
			case "t":
				if f.starts == 0 {
					return fmt.Errorf("chrometrace: event %d: flow step for id %d before its start", i, e.ID)
				}
			case "f":
				if f.starts == 0 {
					return fmt.Errorf("chrometrace: event %d: flow finish for id %d before its start", i, e.ID)
				}
				if e.Ts < f.startTs {
					return fmt.Errorf("chrometrace: event %d: flow id %d finishes at %g before start %g", i, e.ID, e.Ts, f.startTs)
				}
				f.finishes++
			}
		default:
			return fmt.Errorf("chrometrace: event %d: unknown phase %q", i, e.Ph)
		}
		if e.Dur != nil && *e.Dur < 0 {
			return fmt.Errorf("chrometrace: event %d: negative duration %g", i, *e.Dur)
		}
		if !first && e.Ts < prev {
			return fmt.Errorf("chrometrace: event %d: ts %g < previous %g", i, e.Ts, prev)
		}
		prev, first = e.Ts, false
	}
	for id, f := range flows {
		if f.starts == 0 {
			return fmt.Errorf("chrometrace: flow id %d has steps but no start", id)
		}
		if f.finishes == 0 {
			return fmt.Errorf("chrometrace: flow id %d starts but never finishes", id)
		}
	}
	return nil
}
