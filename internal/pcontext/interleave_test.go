package pcontext

import (
	"testing"
	"time"
)

func TestYieldStallCountsWithoutHook(t *testing.T) {
	// With no stall hook installed (the two-context configuration) YieldStall
	// is a counter bump and two loads — no switch, no policy.
	core := NewCore(0, 2)
	ctx := core.Context(0)
	for i := 0; i < 5; i++ {
		ctx.YieldStall()
	}
	if got := ctx.CLS().Stalls; got != 5 {
		t.Fatalf("Stalls = %d, want 5", got)
	}
	var nilCtx *Context
	nilCtx.YieldStall() // must not panic
}

func TestYieldStallInvokesHook(t *testing.T) {
	// On a hooked core YieldStall hands the running context to the policy.
	core := NewCore(0, 3)
	var calls []int
	core.SetStallHook(func(cur *Context) { calls = append(calls, cur.ID()) })
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			ctx.YieldStall()
			NonPreemptible(ctx, func() {
				ctx.YieldStall() // suppressed: rotation inside an NPR would
				// park the core mid-critical-section
			})
			ctx.YieldStall()
			close(done)
		},
		func(ctx *Context) {},
		func(ctx *Context) {},
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	core.Shutdown()
	if len(calls) != 2 {
		t.Fatalf("hook ran %d times (%v), want 2 (NPR call suppressed)", len(calls), calls)
	}
	for _, id := range calls {
		if id != 0 {
			t.Fatalf("hook saw context %d, want 0", id)
		}
	}
	if got := core.Context(0).CLS().Stalls; got != 3 {
		t.Fatalf("Stalls = %d, want 3 (suppressed boundaries still count)", got)
	}
}

func TestYieldStallHookRotation(t *testing.T) {
	// A hook that swaps to a sibling context models the scheduler's rotation:
	// the stalling context parks mid-body and resumes when the sibling swaps
	// back, with both bodies completing.
	core := NewCore(0, 3)
	core.SetStallHook(func(cur *Context) {
		cur.SwapContext(core.Context(1 - cur.ID()))
	})
	var order []int
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			order = append(order, 0)
			ctx.YieldStall() // parks; context 1 runs
			order = append(order, 0)
			close(done)
		},
		func(ctx *Context) {
			order = append(order, 1)
			ctx.YieldStall() // parks; context 0 resumes
		},
		func(ctx *Context) {},
	})
	// Context 1 never runs until woken: unpark it through the hook's swap.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out; order=%v", order)
	}
	core.Shutdown()
	want := []int{0, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBeginLowPrioSingleWriterPanicsUnderRace(t *testing.T) {
	if !raceEnabled {
		t.Skip("invariant check compiled in only under -race")
	}
	core := NewCore(0, 2)
	slot := core.Context(0)
	slot.BeginLowPrio()
	defer func() {
		if recover() == nil {
			t.Fatal("double BeginLowPrio did not panic under -race")
		}
	}()
	slot.BeginLowPrio()
}
