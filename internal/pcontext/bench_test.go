package pcontext

import (
	"testing"

	"preemptdb/internal/uintr"
)

// Ablation: the poll is PreemptDB's per-record overhead — the price of
// instruction-granularity preemption. fig8's "~1.7% slowdown" claim reduces
// to these numbers times the engine's poll density.

// BenchmarkPollNil measures the nil-context fast path (un-scheduled code).
func BenchmarkPollNil(b *testing.B) {
	var ctx *Context
	for i := 0; i < b.N; i++ {
		ctx.Poll()
	}
}

// BenchmarkPollDetached measures a detached context (loader/test paths).
func BenchmarkPollDetached(b *testing.B) {
	ctx := Detached()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Poll()
	}
}

// BenchmarkPollUnhooked measures a core context before any policy installs
// hooks (the Wait policy configuration).
func BenchmarkPollUnhooked(b *testing.B) {
	core := NewCore(0, 1)
	done := make(chan struct{})
	core.Start([]func(*Context){func(ctx *Context) {
		for i := 0; i < b.N; i++ {
			ctx.Poll()
		}
		close(done)
	}})
	<-done
	core.Shutdown()
}

// BenchmarkPollArmed measures the PolicyPreempt configuration: a handler is
// installed and recognition is checked (nothing pending) on every poll.
func BenchmarkPollArmed(b *testing.B) {
	core := NewCore(0, 2)
	core.SetHandler(func(cur *Context, vectors uint64) {})
	done := make(chan struct{})
	core.Start([]func(*Context){func(ctx *Context) {
		for i := 0; i < b.N; i++ {
			ctx.Poll()
		}
		close(done)
	}, nil})
	<-done
	core.Shutdown()
}

// BenchmarkPollInNPR measures polling inside a non-preemptible region.
func BenchmarkPollInNPR(b *testing.B) {
	core := NewCore(0, 2)
	core.SetHandler(func(cur *Context, vectors uint64) {})
	done := make(chan struct{})
	core.Start([]func(*Context){func(ctx *Context) {
		ctx.TCB().Lock()
		for i := 0; i < b.N; i++ {
			ctx.Poll()
		}
		ctx.TCB().Unlock()
		close(done)
	}, nil})
	<-done
	core.Shutdown()
}

// BenchmarkNonPreemptibleEnterExit measures TCB.Lock+Unlock (the §4.4
// critical-section bracket placed around commits, SMOs and WAL flushes).
func BenchmarkNonPreemptibleEnterExit(b *testing.B) {
	ctx := Detached()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NonPreemptible(ctx, func() {})
	}
}

// BenchmarkSwapContextRoundTrip measures the voluntary switch pair (§4.2).
func BenchmarkSwapContextRoundTrip(b *testing.B) {
	core := NewCore(0, 2)
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			other := core.Context(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.SwapContext(other)
			}
			close(done)
		},
		func(ctx *Context) {
			other := core.Context(0)
			for !core.Done() {
				ctx.SwapContext(other)
			}
		},
	})
	<-done
	core.Shutdown()
}

// BenchmarkPreemptionRoundTrip measures the full passive cycle: senduipi →
// recognition → handler switch → preemptive context → active switch back.
func BenchmarkPreemptionRoundTrip(b *testing.B) {
	core := NewCore(0, 2)
	core.SetHandler(func(cur *Context, vectors uint64) {
		cur.SwitchTo(core.Context(1))
	})
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			upid := core.Receiver().UPID()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				uintr.SendUIPI(upid, uintr.VecPreempt)
				before := ctx.TCB().PassiveSwitches()
				for ctx.TCB().PassiveSwitches() == before {
					ctx.Poll()
				}
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				ctx.SwapContext(core.Context(0))
			}
		},
	})
	<-done
	core.Shutdown()
}

// BenchmarkCLSAccess measures context-local storage slot access (§4.3).
func BenchmarkCLSAccess(b *testing.B) {
	ctx := Detached()
	ctx.CLS().Set(SlotUser, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ctx.CLS().Get(SlotUser).(int) != 42 {
			b.Fatal("bad slot")
		}
	}
}
