package pcontext

import (
	"errors"
	"sync"
	"testing"
	"time"

	"preemptdb/internal/clock"
)

func TestLifecycleNilContextSafe(t *testing.T) {
	var x *Context
	if g := x.Arm(123); g != 0 {
		t.Fatalf("nil Arm = %d", g)
	}
	x.Disarm()
	x.Cancel()
	if x.CancelGen(0) {
		t.Fatal("nil CancelGen must report false")
	}
	if x.Deadline() != 0 || x.Reason() != ReasonNone || x.Err() != nil {
		t.Fatal("nil context must read as alive")
	}
}

func TestLifecycleUnarmedIsAlive(t *testing.T) {
	x := Detached()
	if err := x.Err(); err != nil {
		t.Fatalf("fresh context Err = %v", err)
	}
	x.Poll()
	if err := x.Err(); err != nil {
		t.Fatalf("Err after Poll = %v", err)
	}
}

func TestCancelSetsTypedError(t *testing.T) {
	x := Detached()
	x.Arm(0)
	x.Cancel()
	if x.Reason() != ReasonCanceled {
		t.Fatalf("reason = %v", x.Reason())
	}
	if err := x.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err = %v", err)
	}
	x.Disarm()
	if err := x.Err(); err != nil {
		t.Fatalf("Err after Disarm = %v", err)
	}
}

func TestPollTripsPastDeadline(t *testing.T) {
	x := Detached()
	x.Arm(clock.Nanos() - 1)
	x.Poll()
	// Inspect the word directly: the reason must have been set by Poll
	// itself, not lazily by Err/Reason.
	if r := CancelReason(x.lc.word.Load() & lcReasonMask); r != ReasonDeadline {
		t.Fatalf("reason after Poll = %v", r)
	}
	if err := x.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Err = %v", err)
	}
}

func TestFutureDeadlineStaysAlive(t *testing.T) {
	x := Detached()
	d := clock.Nanos() + int64(time.Hour)
	x.Arm(d)
	x.Poll()
	if err := x.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if got := x.Deadline(); got != d {
		t.Fatalf("Deadline = %d want %d", got, d)
	}
}

func TestErrTripsDeadlineBetweenPolls(t *testing.T) {
	x := Detached()
	x.Arm(clock.Nanos() + int64(time.Millisecond))
	time.Sleep(2 * time.Millisecond)
	// No Poll in between: Err must still observe the expiry.
	if err := x.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Err = %v", err)
	}
}

func TestFirstReasonWins(t *testing.T) {
	x := Detached()
	x.Arm(clock.Nanos() - 1)
	x.Poll() // trips the deadline
	x.Cancel()
	if err := x.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Err = %v, deadline must stick", err)
	}
}

func TestCancelGenFencesStaleCancel(t *testing.T) {
	x := Detached()
	gen := x.Arm(0)
	x.Disarm()
	// The request the token referred to is gone; the cancel must miss.
	if x.CancelGen(gen) {
		t.Fatal("stale CancelGen must report false")
	}
	x.Arm(0) // next request on the same context
	if err := x.Err(); err != nil {
		t.Fatalf("stale cancel leaked into the next request: %v", err)
	}
	x.Disarm()
}

func TestCancelGenCurrentGeneration(t *testing.T) {
	x := Detached()
	gen := x.Arm(0)
	if !x.CancelGen(gen) {
		t.Fatal("current-generation CancelGen must succeed")
	}
	if err := x.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err = %v", err)
	}
	x.Disarm()
}

// TestConcurrentCancelRace hammers Cancel/Arm/Disarm from several goroutines
// to give -race something to chew on; the only invariant is that a cancel
// never survives a Disarm into the next generation.
func TestConcurrentCancelRace(t *testing.T) {
	x := Detached()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					x.Cancel()
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		x.Arm(0)
		x.Poll()
		_ = x.Err()
		x.Disarm()
	}
	close(stop)
	wg.Wait()
	x.Arm(0)
	x.Disarm()
	if err := x.Err(); err != nil {
		t.Fatalf("disarmed context still canceled: %v", err)
	}
}
