package pcontext

import (
	"strings"
	"sync"
	"testing"
	"time"

	"preemptdb/internal/uintr"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.record(EvPassiveSwitch, 0, 1, 0)
	if tr.Len() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestTracerRecordsPreemptionCycle(t *testing.T) {
	core := NewCore(0, 2)
	tr := NewTracer(64)
	core.SetTracer(tr)
	if core.Tracer() != tr {
		t.Fatal("tracer not attached")
	}
	core.SetHandler(func(cur *Context, vectors uint64) {
		cur.SwitchTo(core.Context(1))
	})
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			deadline := time.Now().Add(2 * time.Second)
			for ctx.TCB().PassiveSwitches() == 0 && time.Now().Before(deadline) {
				ctx.Poll()
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				ctx.SwapContext(core.Context(0))
			}
		},
	})
	<-done
	core.Shutdown()

	events := tr.Snapshot()
	var kinds []EventKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	// Expect: recognition, passive 0->1, active 1->0 (in order).
	want := []EventKind{EvRecognized, EvPassiveSwitch, EvActiveSwitch}
	if len(kinds) < len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("event[%d] = %v, want %v (all: %v)", i, kinds[i], k, kinds)
		}
	}
	if events[1].From != 0 || events[1].To != 1 {
		t.Fatalf("passive switch edges: %d -> %d", events[1].From, events[1].To)
	}
	// Timestamps must be non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
	out := Timeline(events)
	for _, want := range []string{"uintr", "preempt", "swap", "ctx0 -> ctx1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSuppressedInNPR(t *testing.T) {
	core := NewCore(0, 2)
	tr := NewTracer(64)
	core.SetTracer(tr)
	core.SetHandler(func(cur *Context, vectors uint64) {})
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			ctx.TCB().Lock()
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			for i := 0; i < 10; i++ {
				ctx.Poll()
			}
			ctx.TCB().Unlock()
			ctx.Poll() // recognized here
			close(done)
		},
		nil,
	})
	<-done
	core.Shutdown()
	var suppressed, recognized int
	for _, e := range tr.Snapshot() {
		switch e.Kind {
		case EvSuppressed:
			suppressed++
		case EvRecognized:
			recognized++
		}
	}
	if suppressed == 0 {
		t.Fatal("no suppression events")
	}
	if recognized != 1 {
		t.Fatalf("recognized = %d, want 1", recognized)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4) // power of two
	for i := 0; i < 10; i++ {
		tr.record(EvActiveSwitch, int8(i%2), int8((i+1)%2), uint64(i))
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d", tr.Len())
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d events, want 4 (capacity)", len(snap))
	}
}

// TestTracerSnapshotNoTornReads hammers a tiny ring from a writer while
// readers snapshot continuously (run under -race in CI). Every event the
// writer records has fields derivable from its tag; the per-slot seqlock must
// never let a snapshot observe a mix of two writes.
func TestTracerSnapshotNoTornReads(t *testing.T) {
	tr := NewTracer(8) // tiny ring so wraps race with reads constantly
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range tr.Snapshot() {
					if e.Kind != EvActiveSwitch || e.From != int8(e.Tag%100) || e.To != int8((e.Tag+7)%100) {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}()
	}
	for i := uint64(0); i < 200000; i++ {
		tr.record(EvActiveSwitch, int8(i%100), int8((i+7)%100), i)
	}
	close(stop)
	wg.Wait()
}

func TestTimelineEmpty(t *testing.T) {
	if Timeline(nil) == "" {
		t.Fatal("empty timeline must render something")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvPassiveSwitch: "preempt", EvActiveSwitch: "swap",
		EvRecognized: "uintr", EvSuppressed: "npr-defer",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if EventKind(77).String() == "" {
		t.Error("unknown kind must format")
	}
}
