// Package pcontext implements PreemptDB's userspace transaction contexts:
// the mechanism that lets one worker (a simulated hardware thread, Core)
// time-share several transaction contexts and switch between them either
// passively — when a user interrupt is recognized — or actively, via
// SwapContext after a high-priority batch completes (paper §4.2), or at a
// simulated stall boundary via YieldStall (CoroBase-style interleaving: a
// core multiplexing K contexts rotates to the next runnable low-priority
// context instead of waiting out a data stall).
//
// Mapping from the paper's x86 machinery to this package:
//
//   - A worker thread pinned to a CPU core        → Core
//   - A transaction context with its own stack    → Context (a goroutine)
//   - The transaction control block (TCB) holding
//     saved registers                             → TCB; the "registers" are
//     the goroutine stack, captured/restored by
//     parking/unparking on a per-context channel
//   - uintr frame push + uiret                    → Core.poll → handler →
//     SwitchTo/park
//   - clui/stui and the swap_context RIP check    → Receiver UIF masking in
//     SwapContext
//   - fs/gs-swapped context-local storage (CLS)   → CLS struct reached only
//     through the running Context
//   - CLS lock counter for non-preemptible
//     regions                                     → TCB.Lock/Unlock nesting
//
// Exactly one context per core is runnable at a time: a context runs until it
// parks, and parking/unparking is a binary-semaphore channel handoff, so the
// invariant a single hardware thread provides is preserved (with a benign
// nanosecond-scale overlap during the handoff itself, which only touches
// atomic core state).
package pcontext

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"preemptdb/internal/clock"
	"preemptdb/internal/uintr"
)

// Handler is the user-interrupt handler a scheduler installs on a core. It
// runs on the interrupted context's goroutine with interrupts disabled
// (UIF clear), like a hardware handler. It typically inspects queues and
// calls cur.SwitchTo(other); returning without switching "drops" the
// interrupt, the behaviour the paper prescribes for non-preemptible regions.
type Handler func(cur *Context, vectors uint64)

// PollHook is invoked on every Poll when installed; scheduling policies use
// it for cooperative yield checks. It runs before interrupt recognition.
type PollHook func(cur *Context)

// StallHook is invoked by YieldStall at simulated stall boundaries (B+tree
// node descent, version-chain hops) when installed. The embedding scheduler's
// hook typically rotates the core to the next runnable low-priority context
// with SwapContext and returns once the core is handed back; returning
// without switching keeps the current context running — the analogue of a
// prefetch that hit. It runs on the stalling context's goroutine, outside
// non-preemptible regions only.
type StallHook func(cur *Context)

// Core models one hardware thread time-sharing multiple transaction contexts.
type Core struct {
	id   int
	recv *uintr.Receiver

	contexts []*Context
	// active is the context currently entitled to run. Mutated only by the
	// running context during a switch; read concurrently by the scheduler.
	active atomic.Pointer[Context]

	handler  Handler
	pollHook PollHook
	// hooked is 1 when either a handler or poll hook is installed; lets
	// Poll's fast path skip everything with one non-atomic read after the
	// nil-context check.
	hooked atomic.Bool

	// stallHook/stallHooked gate YieldStall the same way handler/hooked gate
	// Poll: when no hook is installed (K=2 cores never install one) a stall
	// boundary costs two loads and a branch.
	stallHook   StallHook
	stallHooked atomic.Bool

	done atomic.Bool
	wg   sync.WaitGroup

	// deliveryLatency accumulates recognition latency (nanos between post
	// and handler entry) for the §6.1 microbenchmark; guarded by being
	// updated only from the core's running context.
	deliveryCount atomic.Uint64
	deliverySum   atomic.Int64
	// deliveryObs, when set, additionally receives each delivery-latency
	// sample (set once before Start; the metrics registry hangs off it).
	deliveryObs func(nanos int64)

	// userData lets the embedding scheduler attach its per-worker state
	// (set once before Start; read-only afterwards).
	userData any

	// tracer, when attached, records scheduling events (see trace.go).
	tracer *Tracer
}

// SetUserData attaches scheduler-owned state to the core. Call before Start.
func (c *Core) SetUserData(v any) { c.userData = v }

// UserData returns the state attached with SetUserData.
func (c *Core) UserData() any { return c.userData }

// SetDeliveryObserver registers a callback invoked with every sampled
// post-to-recognition latency (nanoseconds). Call before Start; the callback
// runs on the core's running context and must not block.
func (c *Core) SetDeliveryObserver(fn func(nanos int64)) { c.deliveryObs = fn }

// NewCore creates a core with n transaction contexts: a ring of n-1
// low-priority slots plus one distinct preemptive context (the paper uses
// two — one regular, one preemptive; K>2 turns the core into a stall-hiding
// batch executor whose low slots rotate at YieldStall boundaries). Contexts
// are created parked; call Start to launch them.
func NewCore(id, n int) *Core {
	if n < 1 {
		panic("pcontext: core needs at least one context")
	}
	c := &Core{id: id, recv: uintr.NewReceiver()}
	for i := 0; i < n; i++ {
		c.contexts = append(c.contexts, newContext(i, c))
	}
	return c
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.id }

// Receiver exposes the core's interrupt state so schedulers can SendUIPI to
// Receiver().UPID() and toggle UIF.
func (c *Core) Receiver() *uintr.Receiver { return c.recv }

// Context returns context i. PreemptDB's scheduler keeps contexts
// 0..NumContexts-2 as low-priority slots (slot 0 is the paper's regular
// context) and the last context preemptive.
func (c *Core) Context(i int) *Context { return c.contexts[i] }

// NumContexts returns the number of contexts on this core.
func (c *Core) NumContexts() int { return len(c.contexts) }

// Active returns the context currently entitled to run.
func (c *Core) Active() *Context { return c.active.Load() }

// SetHandler installs the user-interrupt handler. Install before Start.
func (c *Core) SetHandler(h Handler) {
	c.handler = h
	c.hooked.Store(h != nil || c.pollHook != nil)
}

// SetPollHook installs a hook run on every Poll (cooperative policies).
func (c *Core) SetPollHook(h PollHook) {
	c.pollHook = h
	c.hooked.Store(h != nil || c.handler != nil)
}

// SetStallHook installs the hook YieldStall delegates to. Install before
// Start; schedulers multiplexing more than two contexts per core install one
// to rotate among their low-priority slots at stall boundaries.
func (c *Core) SetStallHook(h StallHook) {
	c.stallHook = h
	c.stallHooked.Store(h != nil)
}

// Start launches one goroutine per context. entries[i] is the body for
// context i; bodies typically loop until Core.Done, parking between turns.
// Context 0 starts runnable; all others start parked.
func (c *Core) Start(entries []func(*Context)) {
	if len(entries) != len(c.contexts) {
		panic("pcontext: entry count must match context count")
	}
	c.active.Store(c.contexts[0])
	for i, ctx := range c.contexts {
		c.wg.Add(1)
		go func(ctx *Context, body func(*Context)) {
			defer c.wg.Done()
			ctx.park() // every context waits for its first token
			if body != nil && !c.done.Load() {
				body(ctx)
			}
		}(ctx, entries[i])
	}
	c.contexts[0].unpark()
}

// Done reports whether Shutdown has been requested.
func (c *Core) Done() bool { return c.done.Load() }

// Shutdown requests termination, wakes every context so its body can observe
// Done, and waits for all context goroutines to exit. Bodies must return
// promptly once Done is true.
func (c *Core) Shutdown() {
	c.done.Store(true)
	for _, ctx := range c.contexts {
		ctx.unpark()
	}
	c.wg.Wait()
}

// AddHighPrioNanos accumulates time spent executing high-priority
// transactions into every low-priority transaction currently paused or
// running on this core: while the preemptive context runs for d nanoseconds,
// every occupied low-priority slot on the core is being starved for those
// same d nanoseconds.
func (c *Core) AddHighPrioNanos(d int64) {
	for _, ctx := range c.contexts {
		if ctx.t0.Load() != 0 {
			ctx.th.Add(d)
		}
	}
}

// LowPrioActive reports whether any low-priority transaction is currently
// running or paused on this core.
func (c *Core) LowPrioActive() bool {
	for _, ctx := range c.contexts {
		if ctx.t0.Load() != 0 {
			return true
		}
	}
	return false
}

// StarvationLevel returns the core's effective starvation level for
// admission decisions: the maximum L = Th / (T1 - T0) across the core's
// context slots (see Context.StarvationLevel). With one low-priority slot
// (the paper's two-context core) this is exactly the per-transaction level;
// with K-way multiplexing it is the most-starved slot, the conservative
// choice for the scheduler's skip-and-hold-back decisions (§5).
func (c *Core) StarvationLevel() float64 {
	var max float64
	for _, ctx := range c.contexts {
		if l := ctx.StarvationLevel(); l > max {
			max = l
		}
	}
	return max
}

// BeginLowPrio records the start of a low-priority transaction on this
// context's slot, resetting the high-priority accumulator (paper §5: "when
// each low-priority transaction starts execution, we record T0 and reset
// Th").
//
// Single-writer invariant: each slot tracks exactly one low-priority
// transaction at a time, begun and ended by the context's own goroutine
// (Core.AddHighPrioNanos is the only cross-context writer, and only ever
// touches Th of occupied slots, which is atomic). A second BeginLowPrio
// without an intervening EndLowPrio means two transactions' accounting would
// share one slot; race builds panic on it.
func (x *Context) BeginLowPrio() {
	if raceEnabled && x.t0.Load() != 0 {
		panic("pcontext: BeginLowPrio on a slot whose low-priority transaction never ended (single-writer invariant)")
	}
	x.th.Store(0)
	x.t0.Store(clock.Nanos())
}

// EndLowPrio marks the end of the slot's low-priority transaction, freezing
// the starvation level at its final value until the next BeginLowPrio.
func (x *Context) EndLowPrio() {
	x.frozenL.Store(math.Float64bits(x.liveStarvation()))
	x.t0.Store(0)
}

// LowPrioActive reports whether a low-priority transaction is currently
// running or paused on this context's slot.
func (x *Context) LowPrioActive() bool { return x.t0.Load() != 0 }

// StarvationLevel returns L = Th / (T1 - T0) for this slot: the fraction of
// the paused low-priority transaction's wall-clock lifetime consumed by
// high-priority work. Between low-priority transactions it returns the
// frozen final level of the slot's previous one (0 before any ran).
func (x *Context) StarvationLevel() float64 {
	if x.t0.Load() == 0 {
		return math.Float64frombits(x.frozenL.Load())
	}
	return x.liveStarvation()
}

func (x *Context) liveStarvation() float64 {
	t0 := x.t0.Load()
	if t0 == 0 {
		return 0
	}
	elapsed := clock.Nanos() - t0
	if elapsed <= 0 {
		return 0
	}
	return float64(x.th.Load()) / float64(elapsed)
}

// DeliveryStats returns the number of recognized interrupts whose latency was
// sampled and their mean post-to-handler latency in nanoseconds.
func (c *Core) DeliveryStats() (count uint64, meanNanos float64) {
	n := c.deliveryCount.Load()
	if n == 0 {
		return 0, 0
	}
	return n, float64(c.deliverySum.Load()) / float64(n)
}

// poll is the slow path of Context.Poll: run the cooperative hook, then
// recognize pending interrupts and invoke the handler.
func (c *Core) poll(cur *Context) {
	if h := c.pollHook; h != nil {
		h(cur)
	}
	if c.handler == nil {
		return
	}
	bitmap, ok := c.recv.Recognize()
	if !ok {
		return
	}
	// Latency sample: time from senduipi to handler entry.
	if post := c.recv.UPID().LastPostNanos(); post != 0 {
		lat := clock.Nanos() - post
		c.deliverySum.Add(lat)
		c.deliveryCount.Add(1)
		if c.deliveryObs != nil {
			c.deliveryObs(lat)
		}
	}
	cur.tcb.passiveSwitchEligible++
	c.tracer.record(EvRecognized, int8(cur.id), -1, cur.traceTag)
	c.handler(cur, bitmap)
	c.recv.UIRET()
}

// Context is one transaction context: a goroutine plus its TCB and CLS.
type Context struct {
	id     int
	core   *Core
	resume chan struct{} // binary semaphore: park/unpark token
	tcb    TCB
	cls    CLS
	// lc is the request lifecycle descriptor (deadline + cancel reason),
	// checked by Poll at instruction granularity; see lifecycle.go.
	lc lifecycle
	// traceTag annotates trace events emitted while this context runs
	// (the scheduler stamps a request sequence number here). Written only
	// by the context's own goroutine.
	traceTag uint64

	// Per-slot starvation accounting (paper §5, generalized to K contexts):
	// t0 is the start timestamp of the low-priority transaction occupying
	// this context (0 when none), th the nanoseconds of high-priority work
	// that ran on the core since t0, frozenL the level frozen at EndLowPrio
	// (float64 bits). th is atomic because the preemptive context adds to it
	// while this context is parked; t0/frozenL are written only under the
	// single-writer invariant documented on BeginLowPrio.
	t0      atomic.Int64
	th      atomic.Int64
	frozenL atomic.Uint64
}

func newContext(id int, core *Core) *Context {
	return &Context{id: id, core: core, resume: make(chan struct{}, 1), cls: newCLS()}
}

// Detached returns a context not bound to any core. Poll is a no-op on it;
// CLS and non-preemptible nesting still work. Use it to run engine code
// outside the scheduler (tests, loaders, single-shot tools).
func Detached() *Context {
	return &Context{id: -1, resume: make(chan struct{}, 1), cls: newCLS()}
}

// ID returns the context's index on its core (-1 for detached contexts).
func (x *Context) ID() int { return x.id }

// Core returns the owning core, or nil for detached contexts.
func (x *Context) Core() *Core { return x.core }

// TCB returns the context's transaction control block.
func (x *Context) TCB() *TCB { return &x.tcb }

// CLS returns the context-local storage area.
func (x *Context) CLS() *CLS { return &x.cls }

// SetTraceTag sets the transaction annotation stamped on subsequent trace
// events from this context (0 clears it). Call only from the context's own
// goroutine.
func (x *Context) SetTraceTag(tag uint64) {
	if x == nil {
		return
	}
	x.traceTag = tag
}

// TraceTag returns the current trace annotation.
func (x *Context) TraceTag() uint64 {
	if x == nil {
		return 0
	}
	return x.traceTag
}

// String implements fmt.Stringer for diagnostics.
func (x *Context) String() string {
	if x.core == nil {
		return "ctx(detached)"
	}
	return fmt.Sprintf("ctx(core=%d,id=%d)", x.core.id, x.id)
}

// Poll is the simulated instruction boundary. Engine code calls it at every
// record/version/node access; when nothing is pending it costs a few loads.
// A nil receiver is allowed so un-instrumented callers can pass nil contexts.
func (x *Context) Poll() {
	if x == nil {
		return
	}
	x.cls.Accesses++
	x.pollLifecycle()
	core := x.core
	if core == nil || !core.hooked.Load() {
		return
	}
	if x.tcb.npr > 0 {
		// Non-preemptible region: the interrupt stays pending in the UPID
		// and will be recognized at the first poll after the outermost
		// Unlock. Cooperative hooks are also suppressed here.
		x.tcb.suppressedPolls++
		if core.recv.UIF() && core.recv.UPID().Pending() {
			core.tracer.record(EvSuppressed, int8(x.id), -1, x.traceTag)
		}
		return
	}
	core.poll(x)
}

// park blocks until another context (or Shutdown) hands this context the
// core. The goroutine stack is the saved register state.
func (x *Context) park() { <-x.resume }

// unpark makes the context runnable. The buffered channel guarantees at most
// one token is outstanding, so unpark never blocks.
func (x *Context) unpark() {
	select {
	case x.resume <- struct{}{}:
	default:
		// Token already pending: double unpark (only Shutdown can race here).
	}
}

// SwitchTo performs a passive context switch from x (the interrupted
// context) to target: it transfers the core and parks x. It must only be
// called from x's own goroutine, normally inside a user-interrupt handler.
// When another context later switches back, SwitchTo returns and x resumes
// exactly where it was interrupted — the uiret analogue.
//
// The target context resumes with interrupts enabled: on hardware, entering
// the switched-to context restores that context's saved RFLAGS whose UIF is
// set. This is what allows nested preemption across more than two priority
// levels; a two-level scheduler that must not re-interrupt its preemptive
// context simply drops same-context interrupts in its handler.
func (x *Context) SwitchTo(target *Context) {
	if x.core == nil || target.core != x.core {
		panic("pcontext: SwitchTo across cores or on detached context")
	}
	if target == x {
		return
	}
	x.tcb.passiveSwitches++
	x.core.tracer.record(EvPassiveSwitch, int8(x.id), int8(target.id), x.traceTag)
	x.core.active.Store(target)
	x.core.recv.STUI()
	target.unpark()
	x.park()
}

// SwapContext is the voluntary (active) switch used when a context concludes
// its work and hands the core back — e.g. the preemptive context resuming the
// paused low-priority transaction (paper §4.2, Algorithm 2). The user
// interrupt flag is cleared for the duration of the bookkeeping so the switch
// is atomic with respect to arriving interrupts, then restored so the target
// context resumes with interrupts enabled; an interrupt posted inside the
// window stays pending and is recognized at the target's next poll — the
// behaviour the paper obtains with its instruction-pointer range check.
func (x *Context) SwapContext(target *Context) {
	if x.core == nil || target.core != x.core {
		panic("pcontext: SwapContext across cores or on detached context")
	}
	if target == x {
		return
	}
	recv := x.core.recv
	recv.CLUI() // .swap_context_start
	x.tcb.activeSwitches++
	x.core.tracer.record(EvActiveSwitch, int8(x.id), int8(target.id), x.traceTag)
	x.core.active.Store(target)
	recv.STUI() // re-enable before the indirect jump, as in Algorithm 2
	target.unpark()
	x.park()
	// Resumed: we hold the core again; UIF was re-enabled by whoever
	// switched back to us.
}

// YieldStall marks a simulated stall boundary: an instruction the paper's
// hardware would spend a cache miss on (a B+tree node descent, a
// version-chain hop). CoroBase hides such stalls by switching to another
// in-flight transaction; here the installed StallHook rotates the core to
// the next runnable low-priority context, so one core overlaps a batch of
// K-1 transactions. Without a hook (two-context cores) it costs an increment
// and two loads; inside non-preemptible regions it is suppressed like Poll.
// Safe on nil and detached contexts.
func (x *Context) YieldStall() {
	if x == nil {
		return
	}
	x.cls.Stalls++
	core := x.core
	if core == nil || !core.stallHooked.Load() {
		return
	}
	if x.tcb.npr > 0 {
		return
	}
	core.stallHook(x)
}

// Yield re-checks for pending work by delivering any recognized interrupt on
// the spot; cooperative policies call it at yield points. It is equivalent to
// Poll but ignores the cooperative hook, forcing only interrupt recognition.
func (x *Context) Yield() {
	if x == nil || x.core == nil {
		return
	}
	if x.tcb.npr > 0 {
		return
	}
	x.core.poll(x)
}

// TCB is the transaction control block: per-context scheduling state. In the
// paper it stores saved registers; here the goroutine holds those, and the
// TCB keeps the non-preemptible nesting counter and switch statistics.
type TCB struct {
	// npr is the non-preemptible region nesting depth. Only the owning
	// context touches it, so no synchronization is needed — the same
	// argument the paper makes for its CLS lock counter.
	npr int32

	passiveSwitches       uint64
	activeSwitches        uint64
	passiveSwitchEligible uint64
	suppressedPolls       uint64
}

// Lock enters a non-preemptible region (paper §4.4). Regions nest; interrupt
// recognition is suppressed until the outermost Unlock.
func (t *TCB) Lock() { t.npr++ }

// Unlock exits a non-preemptible region.
func (t *TCB) Unlock() {
	if t.npr == 0 {
		panic("pcontext: TCB.Unlock without matching Lock")
	}
	t.npr--
}

// InNonPreemptible reports whether the context is inside any NPR.
func (t *TCB) InNonPreemptible() bool { return t.npr > 0 }

// PassiveSwitches returns the number of interrupt-triggered switches.
func (t *TCB) PassiveSwitches() uint64 { return t.passiveSwitches }

// ActiveSwitches returns the number of voluntary SwapContext switches.
func (t *TCB) ActiveSwitches() uint64 { return t.activeSwitches }

// SuppressedPolls returns how many polls fell inside non-preemptible regions.
func (t *TCB) SuppressedPolls() uint64 { return t.suppressedPolls }

// NonPreemptible runs fn inside a non-preemptible region on ctx. It is the
// convenience wrapper used around OCC validation, index SMOs, allocator and
// WAL flush paths. Safe on nil and detached contexts (fn just runs).
func NonPreemptible(ctx *Context, fn func()) {
	if ctx == nil {
		fn()
		return
	}
	ctx.tcb.Lock()
	defer ctx.tcb.Unlock()
	fn()
}
