package pcontext

import (
	"sync/atomic"
	"testing"
	"time"

	"preemptdb/internal/uintr"
)

// startTwoContexts builds a core whose context 0 runs body0 and context 1
// runs body1, and returns it started.
func startTwoContexts(t *testing.T, core *Core, body0, body1 func(*Context)) {
	t.Helper()
	core.Start([]func(*Context){body0, body1})
}

func TestDetachedContext(t *testing.T) {
	ctx := Detached()
	if ctx.Core() != nil || ctx.ID() != -1 {
		t.Fatal("detached context misconfigured")
	}
	ctx.Poll() // must not panic
	ctx.Yield()
	if ctx.CLS().Accesses != 1 {
		t.Fatalf("accesses = %d, want 1 (Yield does not count)", ctx.CLS().Accesses)
	}
	NonPreemptible(ctx, func() {
		if !ctx.TCB().InNonPreemptible() {
			t.Fatal("NPR not entered")
		}
	})
	if ctx.TCB().InNonPreemptible() {
		t.Fatal("NPR not exited")
	}
	if ctx.String() != "ctx(detached)" {
		t.Fatalf("String() = %q", ctx.String())
	}
}

func TestNilContextPollSafe(t *testing.T) {
	var ctx *Context
	ctx.Poll()
	ctx.Yield()
	NonPreemptible(nil, func() {})
}

func TestPassiveSwitchOnInterrupt(t *testing.T) {
	core := NewCore(0, 2)
	var order []string
	done := make(chan struct{})

	core.SetHandler(func(cur *Context, vectors uint64) {
		if !uintr.Has(vectors, uintr.VecPreempt) {
			t.Error("wrong vector")
		}
		order = append(order, "handler")
		cur.SwitchTo(core.Context(1))
		// Execution resumes here after context 1 swaps back.
		order = append(order, "resumed")
	})

	startTwoContexts(t, core,
		func(ctx *Context) {
			order = append(order, "low-start")
			// Simulate a long transaction: poll until preempted, then finish.
			deadline := time.Now().Add(2 * time.Second)
			for ctx.TCB().PassiveSwitches() == 0 && time.Now().Before(deadline) {
				ctx.Poll()
			}
			order = append(order, "low-end")
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				order = append(order, "high")
				ctx.SwapContext(core.Context(0))
			}
		},
	)

	// Give the low-priority loop a moment, then preempt it.
	time.Sleep(10 * time.Millisecond)
	uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("preemption round trip timed out")
	}
	core.Shutdown()

	want := []string{"low-start", "handler", "high", "resumed", "low-end"}
	if len(order) < len(want) {
		t.Fatalf("order too short: %v", order)
	}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, order[i], w, order)
		}
	}
	if core.Context(0).TCB().PassiveSwitches() != 1 {
		t.Fatalf("passive switches = %d", core.Context(0).TCB().PassiveSwitches())
	}
	if core.Context(1).TCB().ActiveSwitches() != 1 {
		t.Fatalf("active switches = %d", core.Context(1).TCB().ActiveSwitches())
	}
}

func TestNonPreemptibleRegionDefersDelivery(t *testing.T) {
	core := NewCore(0, 2)
	var delivered atomic.Bool
	done := make(chan struct{})

	core.SetHandler(func(cur *Context, vectors uint64) {
		delivered.Store(true)
		cur.SwitchTo(core.Context(1))
	})

	startTwoContexts(t, core,
		func(ctx *Context) {
			ctx.TCB().Lock()
			// Interrupt arrives while locked: polls must not deliver.
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			for i := 0; i < 1000; i++ {
				ctx.Poll()
			}
			if delivered.Load() {
				t.Error("delivered inside non-preemptible region")
			}
			if ctx.TCB().SuppressedPolls() == 0 {
				t.Error("suppressed polls not counted")
			}
			ctx.TCB().Unlock()
			// First poll after unlock must deliver the still-pending interrupt.
			deadline := time.Now().Add(2 * time.Second)
			for !delivered.Load() && time.Now().Before(deadline) {
				ctx.Poll()
			}
			if !delivered.Load() {
				t.Error("interrupt lost after NPR exit")
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				ctx.SwapContext(core.Context(0))
			}
		},
	)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	core.Shutdown()
}

func TestNestedNonPreemptible(t *testing.T) {
	ctx := Detached()
	tcb := ctx.TCB()
	tcb.Lock()
	tcb.Lock()
	tcb.Unlock()
	if !tcb.InNonPreemptible() {
		t.Fatal("inner unlock must not exit the region")
	}
	tcb.Unlock()
	if tcb.InNonPreemptible() {
		t.Fatal("outer unlock must exit the region")
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Detached().TCB().Unlock()
}

func TestCLUIMasksPassiveSwitch(t *testing.T) {
	core := NewCore(0, 2)
	var delivered atomic.Bool
	done := make(chan struct{})

	core.SetHandler(func(cur *Context, vectors uint64) {
		delivered.Store(true)
	})

	startTwoContexts(t, core,
		func(ctx *Context) {
			core.Receiver().CLUI()
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			for i := 0; i < 1000; i++ {
				ctx.Poll()
			}
			if delivered.Load() {
				t.Error("delivered while UIF clear")
			}
			core.Receiver().STUI()
			ctx.Poll()
			if !delivered.Load() {
				t.Error("not delivered after STUI")
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				ctx.SwapContext(core.Context(0))
			}
		},
	)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	core.Shutdown()
}

func TestStarvationLevel(t *testing.T) {
	core := NewCore(0, 1)
	slot := core.Context(0)
	if l := core.StarvationLevel(); l != 0 {
		t.Fatalf("idle level = %v", l)
	}
	slot.BeginLowPrio()
	time.Sleep(2 * time.Millisecond)
	// Claim half the elapsed time was high-priority work.
	elapsed := int64(2 * time.Millisecond)
	core.AddHighPrioNanos(elapsed / 2)
	l := core.StarvationLevel()
	if l <= 0 || l > 1.0 {
		t.Fatalf("starvation level = %v, want in (0,1]", l)
	}
	// The level freezes at its final value when the transaction ends...
	slot.EndLowPrio()
	if frozen := core.StarvationLevel(); frozen <= 0 || frozen > 1.0 {
		t.Fatalf("frozen level = %v, want in (0,1]", frozen)
	}
	if core.LowPrioActive() {
		t.Fatal("LowPrioActive after end")
	}
	// ...and resets when the next low-priority transaction begins.
	slot.BeginLowPrio()
	if l := core.StarvationLevel(); l > 0.01 {
		t.Fatalf("level after new begin = %v", l)
	}
	if !core.LowPrioActive() {
		t.Fatal("LowPrioActive not set")
	}
}

func TestStarvationLevelPerSlot(t *testing.T) {
	// On a K-way core every paused slot starves while high-priority work
	// runs: AddHighPrioNanos feeds each active slot, and the core-level
	// StarvationLevel is the max over slots (conservative admission).
	core := NewCore(0, 4)
	a, b := core.Context(0), core.Context(1)
	a.BeginLowPrio()
	time.Sleep(2 * time.Millisecond)
	b.BeginLowPrio()
	core.AddHighPrioNanos(int64(time.Millisecond))
	la, lb := a.StarvationLevel(), b.StarvationLevel()
	if la <= 0 || lb <= 0 {
		t.Fatalf("active slots not starved: a=%v b=%v", la, lb)
	}
	// b began later, so the same Th divides by a smaller T1-T0: Lb >= La.
	if lb < la {
		t.Fatalf("younger slot less starved: a=%v b=%v", la, lb)
	}
	if got := core.StarvationLevel(); got != lb && got < la {
		t.Fatalf("core level %v not the max of (%v, %v)", got, la, lb)
	}
	// Idle slots contribute their frozen level only.
	if l := core.Context(2).StarvationLevel(); l != 0 {
		t.Fatalf("never-started slot level = %v", l)
	}
	a.EndLowPrio()
	b.EndLowPrio()
	if core.LowPrioActive() {
		t.Fatal("LowPrioActive after all slots ended")
	}
}

func TestCLSIsolationBetweenContexts(t *testing.T) {
	// Two contexts on one core must see independent CLS areas: this is the
	// paper's §4.3 correctness property (e.g. per-context log buffers).
	core := NewCore(0, 2)
	done := make(chan struct{})
	core.SetHandler(func(cur *Context, vectors uint64) {
		cur.SwitchTo(core.Context(1))
	})
	startTwoContexts(t, core,
		func(ctx *Context) {
			ctx.CLS().Set(SlotUser, "low")
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			deadline := time.Now().Add(2 * time.Second)
			for ctx.TCB().PassiveSwitches() == 0 && time.Now().Before(deadline) {
				ctx.Poll()
			}
			if got := ctx.CLS().Get(SlotUser); got != "low" {
				t.Errorf("context 0 CLS corrupted: %v", got)
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				if got := ctx.CLS().Get(SlotUser); got != nil && got != "high" {
					t.Errorf("context 1 sees foreign CLS: %v", got)
				}
				ctx.CLS().Set(SlotUser, "high")
				ctx.SwapContext(core.Context(0))
			}
		},
	)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	core.Shutdown()
}

func TestDeliveryLatencyMeasured(t *testing.T) {
	core := NewCore(0, 2)
	done := make(chan struct{})
	core.SetHandler(func(cur *Context, vectors uint64) {})
	startTwoContexts(t, core,
		func(ctx *Context) {
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			ctx.Poll()
			close(done)
		},
		func(ctx *Context) {},
	)
	<-done
	core.Shutdown()
	n, mean := core.DeliveryStats()
	if n != 1 {
		t.Fatalf("delivery count = %d", n)
	}
	if mean < 0 || mean > float64(time.Second) {
		t.Fatalf("implausible delivery latency %v ns", mean)
	}
}

func TestShutdownUnblocksParkedContexts(t *testing.T) {
	core := NewCore(0, 2)
	startTwoContexts(t, core,
		func(ctx *Context) {
			for !core.Done() {
				ctx.Poll()
			}
		},
		func(ctx *Context) {
			// Parked forever; Shutdown must still reap it.
		},
	)
	finished := make(chan struct{})
	go func() {
		core.Shutdown()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung")
	}
}

func TestSwitchToSelfIsNoop(t *testing.T) {
	core := NewCore(0, 1)
	done := make(chan struct{})
	core.Start([]func(*Context){func(ctx *Context) {
		ctx.SwitchTo(ctx)
		ctx.SwapContext(ctx)
		close(done)
	}})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("self-switch blocked")
	}
	core.Shutdown()
}

func TestSwitchAcrossCoresPanics(t *testing.T) {
	a, b := NewCore(0, 1), NewCore(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-core switch")
		}
	}()
	a.Context(0).SwitchTo(b.Context(0))
}

func TestPollHookInvoked(t *testing.T) {
	core := NewCore(0, 1)
	var hooked atomic.Int64
	core.SetPollHook(func(cur *Context) { hooked.Add(1) })
	done := make(chan struct{})
	core.Start([]func(*Context){func(ctx *Context) {
		for i := 0; i < 100; i++ {
			ctx.Poll()
		}
		close(done)
	}})
	<-done
	core.Shutdown()
	if hooked.Load() != 100 {
		t.Fatalf("hook ran %d times, want 100", hooked.Load())
	}
}

func TestActiveSwitchKeepsInterruptPending(t *testing.T) {
	// An interrupt posted during SwapContext's masked window must not be
	// lost: the resumed context recognizes it at its next poll.
	core := NewCore(0, 2)
	var delivered atomic.Int64
	done := make(chan struct{})
	core.SetHandler(func(cur *Context, vectors uint64) { delivered.Add(1) })
	startTwoContexts(t, core,
		func(ctx *Context) {
			// Hand the core to context 1 and get it back.
			ctx.SwapContext(core.Context(1))
			deadline := time.Now().Add(2 * time.Second)
			for delivered.Load() == 0 && time.Now().Before(deadline) {
				ctx.Poll()
			}
			if delivered.Load() == 0 {
				t.Error("interrupt posted during swap was lost")
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				// Post while we own the core; context 0 is parked "mid-swap".
				uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
				ctx.SwapContext(core.Context(0))
			}
		},
	)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	core.Shutdown()
}
