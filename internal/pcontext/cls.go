package pcontext

// CLS is context-local storage: the PreemptDB replacement for thread-local
// storage (paper §4.3). A database engine keeps per-thread state — log
// buffers, RNG streams, scratch arenas — in TLS; once a thread hosts several
// transaction contexts that state must move to the context, or two contexts
// would corrupt each other's buffers. The paper swaps the fs/gs TLS area on
// every context switch so unmodified library code keeps working; in Go the
// equivalent is that engine code reaches this state only through the Context
// it is running on, which changes identity at exactly the same points the
// paper's TLS swap happens.
//
// Slots hold arbitrary per-context objects registered by higher layers
// (the WAL buffer, the workload RNG, …) without creating an import cycle;
// the hot counters are direct fields.
type CLS struct {
	// Accesses counts simulated instruction boundaries (Poll calls). The
	// cooperative policy derives its yield interval from it, mirroring the
	// paper's "yield after accessing every N records" instrumentation.
	Accesses uint64

	// LastYield records the Accesses value at the previous cooperative
	// yield, so the policy yields every (Accesses - LastYield) ≥ interval.
	LastYield uint64

	// Stalls counts simulated stall boundaries (YieldStall calls): B+tree
	// node descents and version-chain hops, the instructions the paper's
	// hardware would spend a cache miss on.
	Stalls uint64

	// LastStallYield records the Stalls value at the previous stall-boundary
	// rotation, so the scheduler's stall hook rotates the core every
	// (Stalls - LastStallYield) ≥ StallInterval boundaries rather than
	// paying a context switch per node access.
	LastStallYield uint64

	// HighPrio marks the context as currently executing a high-priority
	// request (set/cleared by the scheduler around each request), letting
	// lower layers — the engine's commit path — attribute their latency
	// observations to the right priority class without plumbing a flag
	// through every call.
	HighPrio bool

	// Slots carries typed per-context objects owned by higher layers.
	Slots [NumSlots]any
}

// Well-known CLS slot indexes. Higher layers assert the concrete types.
const (
	// SlotLog holds the context's *wal.Buffer redo buffer.
	SlotLog = iota
	// SlotRand holds the context's *rng.Rand stream.
	SlotRand
	// SlotSnapshot holds the context's *mvcc.ActiveSlot for version GC.
	SlotSnapshot
	// SlotScratch holds a reusable scratch allocation area.
	SlotScratch
	// SlotOwner holds the *engine.Engine that attached this context: the CLS
	// log buffer and snapshot slot in SlotLog/SlotSnapshot belong to exactly
	// one engine, and in a sharded database a context may touch several. An
	// engine that is not the owner must not use the pooled CLS state (its
	// oracle did not register the snapshot slot) and begins guest
	// transactions instead.
	SlotOwner
	// SlotUser is free for applications embedding the engine.
	SlotUser
	// NumSlots is the CLS slot count.
	NumSlots
)

func newCLS() CLS { return CLS{} }

// Get returns the object in slot i (nil if unset).
func (c *CLS) Get(i int) any { return c.Slots[i] }

// Set stores v in slot i.
func (c *CLS) Set(i int, v any) { c.Slots[i] = v }
