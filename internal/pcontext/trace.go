package pcontext

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
)

// Execution tracing. A Tracer records scheduling events (context switches,
// interrupt recognitions, non-preemptible suppressions) into a fixed-size
// ring per core, cheaply enough to stay on during benchmarks. Snapshots
// render timelines like the paper's Figure 2 — who held the core when, and
// where preemptions landed.

// EventKind tags a trace event.
type EventKind uint8

// Trace event kinds. The first four are scheduling-substrate events recorded
// by the core itself; the rest are transaction lifecycle spans recorded by
// higher layers (scheduler, engine, 2PC coordinator) through
// Context.TraceEvent, carrying a packed Aux payload (see SpanAux).
const (
	EvPassiveSwitch EventKind = iota + 1 // interrupt-driven switch (from → to)
	EvActiveSwitch                       // voluntary SwapContext (from → to)
	EvRecognized                         // interrupt recognized (handler entry)
	EvSuppressed                         // recognition deferred by an NPR
	EvTxnStart                           // txn began executing; aux = queue wait, detail = class (1 hi)
	EvTxnEnd                             // txn finished; aux = exec time, detail = outcome (1 err)
	EvWALWait                            // group-commit WAL wait ended; aux = wait, detail = leader (1)
	EvPrepare                            // 2PC prepare leg done; aux = duration, detail = participant shard
	EvResolve                            // 2PC resolve leg done; aux = duration, detail = participant shard
	EvDecision                           // 2PC decision record durable; aux = duration, detail = coordinator shard
)

func (k EventKind) String() string {
	switch k {
	case EvPassiveSwitch:
		return "preempt"
	case EvActiveSwitch:
		return "swap"
	case EvRecognized:
		return "uintr"
	case EvSuppressed:
		return "npr-defer"
	case EvTxnStart:
		return "txn-start"
	case EvTxnEnd:
		return "txn-end"
	case EvWALWait:
		return "wal-wait"
	case EvPrepare:
		return "2pc-prepare"
	case EvResolve:
		return "2pc-resolve"
	case EvDecision:
		return "2pc-decision"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// SpanEnd reports whether k marks the end of a measured span (its Aux carries
// the span duration, so the span started AuxDuration before Event.At).
func (k EventKind) SpanEnd() bool {
	switch k {
	case EvTxnStart, EvWALWait, EvPrepare, EvResolve, EvDecision:
		return true
	}
	return false
}

// Event is one trace record.
type Event struct {
	At   int64     `json:"at"`  // clock.Nanos
	Tag  uint64    `json:"tag"` // transaction annotation (trace id; 0 = none)
	Kind EventKind `json:"kind"`
	From int8      `json:"from"` // context ids (-1 when not applicable)
	To   int8      `json:"to"`
	Aux  uint32    `json:"aux,omitempty"` // span payload; see SpanAux
}

// SpanAux packs a span payload for the lifecycle event kinds: the low 24 bits
// hold the span duration in microseconds (saturating), the high 8 bits a
// kind-specific detail byte (class, outcome, leader flag, or shard id).
func SpanAux(durNanos int64, detail uint8) uint32 {
	us := durNanos / 1e3
	if us < 0 {
		us = 0
	}
	if us > 0xFFFFFF {
		us = 0xFFFFFF
	}
	return uint32(detail)<<24 | uint32(us)
}

// AuxDuration unpacks the span duration (nanoseconds, µs resolution).
func AuxDuration(aux uint32) int64 { return int64(aux&0xFFFFFF) * 1e3 }

// AuxDetail unpacks the kind-specific detail byte.
func AuxDetail(aux uint32) uint8 { return uint8(aux >> 24) }

// slot is one ring entry, laid out as a per-slot seqlock: the writer
// invalidates seq, stores the payload words, then publishes seq as the
// event's 1-based sequence number. A reader accepts a slot only when seq
// reads the expected sequence before AND after loading the payload — any
// concurrent overwrite passes through seq=0 or a different sequence and is
// detected. All fields are atomics, so snapshots under concurrent writers
// are race-clean as well as tear-free.
type slot struct {
	seq  atomic.Uint64 // eventIndex+1 when valid; 0 while being written
	at   atomic.Int64
	tag  atomic.Uint64
	meta atomic.Uint64 // aux<<24 | kind<<16 | (from+128)<<8 | (to+128)
}

func packMeta(kind EventKind, from, to int8, aux uint32) uint64 {
	return uint64(aux)<<24 | uint64(kind)<<16 | uint64(uint8(from)+128)<<8 | uint64(uint8(to)+128)
}

func unpackMeta(m uint64) (kind EventKind, from, to int8, aux uint32) {
	return EventKind(uint8(m >> 16)), int8(uint8(m>>8) - 128), int8(uint8(m) - 128), uint32(m >> 24)
}

// Tracer is a fixed-capacity ring of events. Writers are the core's contexts
// (serialized by the core); readers may snapshot concurrently, even while the
// ring wraps mid-snapshot. A snapshot has bounded staleness: a slot
// overwritten (or mid-write) while it is being read is skipped rather than
// returned torn, so the result is always a consistent subset of the retained
// window.
type Tracer struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// NewTracer returns a tracer holding the most recent `capacity` events
// (rounded up to a power of two).
func NewTracer(capacity int) *Tracer {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1)}
}

// record appends one event.
func (t *Tracer) record(kind EventKind, from, to int8, tag uint64) {
	t.recordAux(kind, from, to, tag, 0)
}

// recordAux appends one event carrying a packed span payload. Allocation-free:
// four atomic stores into a preallocated slot.
func (t *Tracer) recordAux(kind EventKind, from, to int8, tag uint64, aux uint32) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	s := &t.slots[i&t.mask]
	s.seq.Store(0) // invalidate while the payload is inconsistent
	s.at.Store(clock.Nanos())
	s.tag.Store(tag)
	s.meta.Store(packMeta(kind, from, to, aux))
	s.seq.Store(i + 1) // publish
}

// Len returns the number of events recorded (cumulative, may exceed
// capacity).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Snapshot returns the retained events in chronological order. Safe against
// concurrent writers: slots that wrap (or are mid-write) during the snapshot
// are skipped, never returned torn.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	size := uint64(len(t.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		s := &t.slots[i&t.mask]
		if s.seq.Load() != i+1 {
			continue // not yet published, or already overwritten
		}
		at := s.at.Load()
		tag := s.tag.Load()
		meta := s.meta.Load()
		if s.seq.Load() != i+1 {
			continue // overwritten while reading: payload may be torn
		}
		kind, from, to, aux := unpackMeta(meta)
		out = append(out, Event{At: at, Tag: tag, Kind: kind, From: from, To: to, Aux: aux})
	}
	return out
}

// Timeline renders a snapshot as human-readable lines with timestamps
// relative to the first event.
func Timeline(events []Event) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	base := events[0].At
	var b strings.Builder
	for _, e := range events {
		rel := time.Duration(e.At - base)
		txn := ""
		if e.Tag != 0 {
			txn = fmt.Sprintf("  txn=%d", e.Tag)
		}
		switch e.Kind {
		case EvPassiveSwitch, EvActiveSwitch:
			fmt.Fprintf(&b, "%12v  %-9s ctx%d -> ctx%d%s\n", rel, e.Kind, e.From, e.To, txn)
		default:
			if e.Kind.SpanEnd() || e.Aux != 0 {
				fmt.Fprintf(&b, "%12v  %-12s ctx%d%s  dur=%v detail=%d\n",
					rel, e.Kind, e.From, txn, time.Duration(AuxDuration(e.Aux)), AuxDetail(e.Aux))
			} else {
				fmt.Fprintf(&b, "%12v  %-9s ctx%d%s\n", rel, e.Kind, e.From, txn)
			}
		}
	}
	return b.String()
}

// TraceEvent records a transaction lifecycle event on the context's core ring,
// tagged with the context's current trace id. Nil-safe and allocation-free;
// a no-op on detached contexts or when the core has no tracer attached, so
// callers on hot paths need no enablement check of their own.
func (x *Context) TraceEvent(kind EventKind, aux uint32) {
	if x == nil || x.core == nil {
		return
	}
	x.core.tracer.recordAux(kind, int8(x.id), -1, x.traceTag, aux)
}

// SetTracer attaches a tracer to the core (nil detaches). Install before
// Start, or accept missing events around the installation instant.
func (c *Core) SetTracer(t *Tracer) { c.tracer = t }

// Tracer returns the attached tracer (nil if none).
func (c *Core) Tracer() *Tracer { return c.tracer }
