package pcontext

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
)

// Execution tracing. A Tracer records scheduling events (context switches,
// interrupt recognitions, non-preemptible suppressions) into a fixed-size
// ring per core, cheaply enough to stay on during benchmarks. Snapshots
// render timelines like the paper's Figure 2 — who held the core when, and
// where preemptions landed.

// EventKind tags a trace event.
type EventKind uint8

// Trace event kinds.
const (
	EvPassiveSwitch EventKind = iota + 1 // interrupt-driven switch (from → to)
	EvActiveSwitch                       // voluntary SwapContext (from → to)
	EvRecognized                         // interrupt recognized (handler entry)
	EvSuppressed                         // recognition deferred by an NPR
)

func (k EventKind) String() string {
	switch k {
	case EvPassiveSwitch:
		return "preempt"
	case EvActiveSwitch:
		return "swap"
	case EvRecognized:
		return "uintr"
	case EvSuppressed:
		return "npr-defer"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	At       int64 // clock.Nanos
	Kind     EventKind
	From, To int8 // context ids (-1 when not applicable)
}

// Tracer is a fixed-capacity ring of events. Writers are the core's
// contexts (serialized by the core); readers may snapshot concurrently.
type Tracer struct {
	buf  []Event
	mask uint64
	next atomic.Uint64
}

// NewTracer returns a tracer holding the most recent `capacity` events
// (rounded up to a power of two).
func NewTracer(capacity int) *Tracer {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{buf: make([]Event, n), mask: uint64(n - 1)}
}

// record appends one event.
func (t *Tracer) record(kind EventKind, from, to int8) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	t.buf[i&t.mask] = Event{At: clock.Nanos(), Kind: kind, From: from, To: to}
}

// Len returns the number of events recorded (cumulative, may exceed
// capacity).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Snapshot returns the retained events in chronological order.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	size := uint64(len(t.buf))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	return out
}

// Timeline renders a snapshot as human-readable lines with timestamps
// relative to the first event.
func Timeline(events []Event) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	base := events[0].At
	var b strings.Builder
	for _, e := range events {
		rel := time.Duration(e.At - base)
		switch e.Kind {
		case EvPassiveSwitch, EvActiveSwitch:
			fmt.Fprintf(&b, "%12v  %-9s ctx%d -> ctx%d\n", rel, e.Kind, e.From, e.To)
		default:
			fmt.Fprintf(&b, "%12v  %-9s ctx%d\n", rel, e.Kind, e.From)
		}
	}
	return b.String()
}

// SetTracer attaches a tracer to the core (nil detaches). Install before
// Start, or accept missing events around the installation instant.
func (c *Core) SetTracer(t *Tracer) { c.tracer = t }

// Tracer returns the attached tracer (nil if none).
func (c *Core) Tracer() *Tracer { return c.tracer }
