package pcontext

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
)

// Execution tracing. A Tracer records scheduling events (context switches,
// interrupt recognitions, non-preemptible suppressions) into a fixed-size
// ring per core, cheaply enough to stay on during benchmarks. Snapshots
// render timelines like the paper's Figure 2 — who held the core when, and
// where preemptions landed.

// EventKind tags a trace event.
type EventKind uint8

// Trace event kinds.
const (
	EvPassiveSwitch EventKind = iota + 1 // interrupt-driven switch (from → to)
	EvActiveSwitch                       // voluntary SwapContext (from → to)
	EvRecognized                         // interrupt recognized (handler entry)
	EvSuppressed                         // recognition deferred by an NPR
)

func (k EventKind) String() string {
	switch k {
	case EvPassiveSwitch:
		return "preempt"
	case EvActiveSwitch:
		return "swap"
	case EvRecognized:
		return "uintr"
	case EvSuppressed:
		return "npr-defer"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	At   int64     `json:"at"`  // clock.Nanos
	Tag  uint64    `json:"tag"` // transaction annotation (request sequence; 0 = none)
	Kind EventKind `json:"kind"`
	From int8      `json:"from"` // context ids (-1 when not applicable)
	To   int8      `json:"to"`
}

// slot is one ring entry, laid out as a per-slot seqlock: the writer
// invalidates seq, stores the payload words, then publishes seq as the
// event's 1-based sequence number. A reader accepts a slot only when seq
// reads the expected sequence before AND after loading the payload — any
// concurrent overwrite passes through seq=0 or a different sequence and is
// detected. All fields are atomics, so snapshots under concurrent writers
// are race-clean as well as tear-free.
type slot struct {
	seq  atomic.Uint64 // eventIndex+1 when valid; 0 while being written
	at   atomic.Int64
	tag  atomic.Uint64
	meta atomic.Uint64 // kind<<16 | (from+128)<<8 | (to+128)
}

func packMeta(kind EventKind, from, to int8) uint64 {
	return uint64(kind)<<16 | uint64(uint8(from)+128)<<8 | uint64(uint8(to)+128)
}

func unpackMeta(m uint64) (kind EventKind, from, to int8) {
	return EventKind(m >> 16), int8(uint8(m>>8) - 128), int8(uint8(m) - 128)
}

// Tracer is a fixed-capacity ring of events. Writers are the core's contexts
// (serialized by the core); readers may snapshot concurrently, even while the
// ring wraps mid-snapshot. A snapshot has bounded staleness: a slot
// overwritten (or mid-write) while it is being read is skipped rather than
// returned torn, so the result is always a consistent subset of the retained
// window.
type Tracer struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// NewTracer returns a tracer holding the most recent `capacity` events
// (rounded up to a power of two).
func NewTracer(capacity int) *Tracer {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1)}
}

// record appends one event.
func (t *Tracer) record(kind EventKind, from, to int8, tag uint64) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	s := &t.slots[i&t.mask]
	s.seq.Store(0) // invalidate while the payload is inconsistent
	s.at.Store(clock.Nanos())
	s.tag.Store(tag)
	s.meta.Store(packMeta(kind, from, to))
	s.seq.Store(i + 1) // publish
}

// Len returns the number of events recorded (cumulative, may exceed
// capacity).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Snapshot returns the retained events in chronological order. Safe against
// concurrent writers: slots that wrap (or are mid-write) during the snapshot
// are skipped, never returned torn.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	size := uint64(len(t.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		s := &t.slots[i&t.mask]
		if s.seq.Load() != i+1 {
			continue // not yet published, or already overwritten
		}
		at := s.at.Load()
		tag := s.tag.Load()
		meta := s.meta.Load()
		if s.seq.Load() != i+1 {
			continue // overwritten while reading: payload may be torn
		}
		kind, from, to := unpackMeta(meta)
		out = append(out, Event{At: at, Tag: tag, Kind: kind, From: from, To: to})
	}
	return out
}

// Timeline renders a snapshot as human-readable lines with timestamps
// relative to the first event.
func Timeline(events []Event) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	base := events[0].At
	var b strings.Builder
	for _, e := range events {
		rel := time.Duration(e.At - base)
		txn := ""
		if e.Tag != 0 {
			txn = fmt.Sprintf("  txn=%d", e.Tag)
		}
		switch e.Kind {
		case EvPassiveSwitch, EvActiveSwitch:
			fmt.Fprintf(&b, "%12v  %-9s ctx%d -> ctx%d%s\n", rel, e.Kind, e.From, e.To, txn)
		default:
			fmt.Fprintf(&b, "%12v  %-9s ctx%d%s\n", rel, e.Kind, e.From, txn)
		}
	}
	return b.String()
}

// SetTracer attaches a tracer to the core (nil detaches). Install before
// Start, or accept missing events around the installation instant.
func (c *Core) SetTracer(t *Tracer) { c.tracer = t }

// Tracer returns the attached tracer (nil if none).
func (c *Core) Tracer() *Tracer { return c.tracer }
