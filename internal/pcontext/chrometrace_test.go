package pcontext

import (
	"encoding/json"
	"strings"
	"testing"

	"preemptdb/internal/uintr"
)

func traceFixture() []CoreEvents {
	return []CoreEvents{{
		Core: 0,
		Events: []Event{
			{At: 1000, Kind: EvRecognized, From: 0, To: -1, Tag: 7},
			{At: 1500, Kind: EvPassiveSwitch, From: 0, To: 1, Tag: 7},
			{At: 4000, Kind: EvActiveSwitch, From: 1, To: 0, Tag: 9},
			{At: 6000, Kind: EvSuppressed, From: 0, To: -1},
		},
	}, {
		Core: 1,
		Events: []Event{
			{At: 2000, Kind: EvActiveSwitch, From: 1, To: 0},
		},
	}}
}

func TestChromeTraceValidAndMonotonic(t *testing.T) {
	data, err := ChromeTrace(traceFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("generated trace fails validation: %v\n%s", err, data)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var spans, instants, meta int
	sawTxn := false
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["name"] == "txn 7" {
				sawTxn = true
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans == 0 || instants == 0 || meta == 0 {
		t.Fatalf("spans=%d instants=%d meta=%d\n%s", spans, instants, meta, data)
	}
	if !sawTxn {
		t.Fatalf("no span named after its transaction tag:\n%s", data)
	}
	for _, want := range []string{`"displayTimeUnit"`, "core 0", "core 1", "preemptive"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("trace missing %q:\n%s", want, data)
		}
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	data, err := ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(data); err == nil {
		t.Fatal("empty trace must fail validation")
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	if err := ValidateChromeTrace([]byte("{not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	bad := []byte(`{"traceEvents":[{"ph":"X","ts":5},{"ph":"X","ts":1}]}`)
	if err := ValidateChromeTrace(bad); err == nil {
		t.Fatal("non-monotonic ts must fail")
	}
	bad = []byte(`{"traceEvents":[{"ph":"Q","ts":1}]}`)
	if err := ValidateChromeTrace(bad); err == nil {
		t.Fatal("unknown phase must fail")
	}
}

// TestChromeTraceFromLiveCore runs a real preemption cycle and exports it.
func TestChromeTraceFromLiveCore(t *testing.T) {
	core := NewCore(0, 2)
	tr := NewTracer(64)
	core.SetTracer(tr)
	core.SetHandler(func(cur *Context, vectors uint64) {
		cur.SwitchTo(core.Context(1))
	})
	done := make(chan struct{})
	core.Start([]func(*Context){
		func(ctx *Context) {
			ctx.SetTraceTag(42)
			uintr.SendUIPI(core.Receiver().UPID(), uintr.VecPreempt)
			for ctx.TCB().PassiveSwitches() == 0 {
				ctx.Poll()
			}
			close(done)
		},
		func(ctx *Context) {
			for !core.Done() {
				ctx.SwapContext(core.Context(0))
			}
		},
	})
	<-done
	core.Shutdown()
	data, err := ChromeTrace([]CoreEvents{{Core: 0, Events: tr.Snapshot()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("live trace invalid: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), `"txn": 42`) {
		t.Fatalf("trace tag not exported:\n%s", data)
	}
}
