// Package rng provides fast, deterministic pseudo-random number generation
// for workload drivers and tests.
//
// The generators here are deliberately not cryptographic: benchmark drivers
// need reproducible streams that can be split per worker and per transaction
// context without contention on a shared source. The core generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors.
package rng

import "math"

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is not safe for concurrent use; give each context its own Rand,
// typically via Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next stream value. It is used
// only to initialize xoshiro state so that nearby seeds produce uncorrelated
// streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from both r's past and future output.
func (r *Rand) Split() *Rand {
	seed := r.Uint64() ^ 0xa0761d6478bd642f
	return New(seed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection for exact uniformity.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform value in [lo, hi] inclusive, per the TPC-C
// specification's random(x..y) helper.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NURand implements the TPC-C non-uniform random function
// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x.
// The constant C is fixed per generator so a load and a run phase built from
// the same seed agree, as the specification requires for C_LAST.
func (r *Rand) NURand(a, x, y int) int {
	c := int(r.s[3] % uint64(a+1)) // stable per-generator constant
	return ((r.IntRange(0, a)|r.IntRange(x, y))+c)%(y-x+1) + x
}

// AString fills a TPC-C "a-string": random alphanumeric characters with
// length uniform in [lo, hi].
func (r *Rand) AString(lo, hi int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := r.IntRange(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

// NString fills a TPC-C "n-string": random numeric characters with length
// uniform in [lo, hi].
func (r *Rand) NString(lo, hi int) string {
	n := r.IntRange(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}

// LastName produces a TPC-C customer last name for a number in [0, 999].
func LastName(num int) string {
	syllables := [...]string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	return syllables[num/100%10] + syllables[num/10%10] + syllables[num%10]
}

// Zipf generates Zipf-distributed values in [0, n) with skew theta using the
// rejection-inversion method of Hörmann and Derflinger, the standard choice
// for database benchmarks (YCSB uses the same construction).
type Zipf struct {
	r                *Rand
	n                uint64
	theta            float64
	alpha, zetan, eta float64
}

// NewZipf returns a Zipf generator over [0, n) with parameter theta in (0, 1).
func NewZipf(r *Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipf-distributed value.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
