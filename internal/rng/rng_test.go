package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedEscapes(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("zero seed produced %d zeros", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 equal", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(n)]++
	}
	want := samples / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d: got %d, want ~%d", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("IntRange(10,20) = %d", v)
		}
	}
	// Degenerate range.
	if v := r.IntRange(7, 7); v != 7 {
		t.Fatalf("IntRange(7,7) = %d", v)
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNURandBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.NURand(255, 0, 999)
		if v < 0 || v > 999 {
			t.Fatalf("NURand out of range: %d", v)
		}
		v = r.NURand(1023, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand(1023,1,3000) out of range: %d", v)
		}
	}
}

func TestNURandSkew(t *testing.T) {
	// NURand must be non-uniform: the most popular value should appear far
	// more often than the mean frequency.
	r := New(17)
	counts := map[int]int{}
	const samples = 50000
	for i := 0; i < samples; i++ {
		counts[r.NURand(255, 0, 999)]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	// NURand's bitwise-OR construction is moderately skewed (unlike Zipf):
	// the hottest value should clearly exceed the uniform expectation.
	if maxC < samples/1000*13/10 {
		t.Fatalf("NURand looks uniform: max bucket %d", maxC)
	}
}

func TestAString(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		s := r.AString(5, 10)
		if len(s) < 5 || len(s) > 10 {
			t.Fatalf("AString length %d", len(s))
		}
	}
}

func TestNString(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		s := r.NString(4, 4)
		if len(s) != 4 {
			t.Fatalf("NString length %d", len(s))
		}
		for _, ch := range s {
			if ch < '0' || ch > '9' {
				t.Fatalf("NString non-digit %q", s)
			}
		}
	}
}

func TestLastName(t *testing.T) {
	cases := map[int]string{
		0:   "BARBARBAR",
		371: "PRICALLYOUGHT",
		999: "EINGEINGEING",
	}
	for num, want := range cases {
		if got := LastName(num); got != want {
			t.Errorf("LastName(%d) = %q, want %q", num, got, want)
		}
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	const samples = 100000
	for i := 0; i < samples; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(New(1), 0, 0.5)
}

func TestMul64(t *testing.T) {
	err := quick.Check(func(x, y uint32) bool {
		hi, lo := mul64(uint64(x), uint64(y))
		return hi == 0 && lo == uint64(x)*uint64(y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A case with a known high word.
	hi, _ := mul64(math.MaxUint64, 2)
	if hi != 1 {
		t.Fatalf("mul64(MaxUint64,2) hi = %d, want 1", hi)
	}
}
