package tpch

import (
	"fmt"

	"preemptdb/internal/engine"
	"preemptdb/internal/rng"
)

// Standard TPC-H dictionary fragments used by the generator and Q2's
// predicate parameters.
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	// nationRegion maps each nation index to its region, per the spec.
	nationRegion = []uint32{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
)

// NumRegions is the TPC-H region count.
const NumRegions = 5

// NumNations is the TPC-H nation count.
const NumNations = 25

// ScaleConfig sizes the TPC-H subset. The defaults give a Q2 lasting tens of
// milliseconds on one core — long enough to dominate a worker, as in the
// paper's mixed workload — without the multi-gigabyte footprint of SF-1.
type ScaleConfig struct {
	Parts         int // default 8000
	Suppliers     int // default 400
	SuppsPerPart  int // partsupp entries per part; spec 4
	Seed          uint64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Parts == 0 {
		c.Parts = 8000
	}
	if c.Suppliers == 0 {
		c.Suppliers = 400
	}
	if c.SuppsPerPart == 0 {
		c.SuppsPerPart = 4
	}
	if c.Seed == 0 {
		c.Seed = 0x71325f68 // "q2_h"
	}
	return c
}

// Load populates the TPC-H subset tables.
func Load(e *engine.Engine, cfg ScaleConfig) (ScaleConfig, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)

	tx := e.Begin(nil)
	regions := e.MustTable(TabRegion)
	for i, name := range regionNames {
		reg := Region{Key: uint32(i), Name: name, Comment: r.AString(20, 40)}
		if err := tx.Insert(regions, RegionKey(reg.Key), reg.Encode()); err != nil {
			return cfg, err
		}
	}
	nations := e.MustTable(TabNation)
	for i, name := range nationNames {
		n := Nation{Key: uint32(i), Name: name, RegionKey: nationRegion[i], Comment: r.AString(20, 40)}
		if err := tx.Insert(nations, NationKey(n.Key), n.Encode()); err != nil {
			return cfg, err
		}
	}
	suppliers := e.MustTable(TabSupplier)
	for s := 1; s <= cfg.Suppliers; s++ {
		sup := Supplier{
			Key:       uint32(s),
			Name:      fmt.Sprintf("Supplier#%09d", s),
			Address:   r.AString(10, 30),
			NationKey: uint32(r.Intn(NumNations)),
			Phone:     r.NString(15, 15),
			AcctBal:   int64(r.IntRange(-99999, 999999)),
			Comment:   r.AString(25, 60),
		}
		if err := tx.Insert(suppliers, SupplierKey(sup.Key), sup.Encode()); err != nil {
			return cfg, err
		}
	}
	if err := tx.Commit(); err != nil {
		return cfg, err
	}

	parts := e.MustTable(TabPart)
	partsupp := e.MustTable(TabPartSupp)
	tx = e.Begin(nil)
	for p := 1; p <= cfg.Parts; p++ {
		part := Part{
			Key:  uint32(p),
			Name: r.AString(15, 30),
			Mfgr: fmt.Sprintf("Manufacturer#%d", r.IntRange(1, 5)),
			Brand: fmt.Sprintf("Brand#%d%d", r.IntRange(1, 5), r.IntRange(1, 5)),
			Type: typeSyllable1[r.Intn(len(typeSyllable1))] + " " +
				typeSyllable2[r.Intn(len(typeSyllable2))] + " " +
				typeSyllable3[r.Intn(len(typeSyllable3))],
			Size:        uint32(r.IntRange(1, 50)),
			Container:   r.AString(8, 10),
			RetailPrice: int64(r.IntRange(90000, 200000)),
			Comment:     r.AString(5, 22),
		}
		if err := tx.Insert(parts, PartKey(part.Key), part.Encode()); err != nil {
			return cfg, err
		}
		for j := 0; j < cfg.SuppsPerPart; j++ {
			// Spec-style spreading: suppliers for a part are spaced across
			// the supplier population so every region is usually represented.
			s := uint32((p+j*(cfg.Suppliers/cfg.SuppsPerPart+1))%cfg.Suppliers) + 1
			ps := PartSupp{
				PartKey: uint32(p), SuppKey: s,
				AvailQty:   uint32(r.IntRange(1, 9999)),
				SupplyCost: int64(r.IntRange(100, 100000)),
				Comment:    r.AString(10, 30),
			}
			if err := tx.Insert(partsupp, PartSuppKey(uint32(p), s), ps.Encode()); err != nil {
				return cfg, err
			}
		}
		// Commit in chunks so loading does not build one giant write set.
		if p%2000 == 0 {
			if err := tx.Commit(); err != nil {
				return cfg, err
			}
			tx = e.Begin(nil)
		}
	}
	return cfg, tx.Commit()
}
