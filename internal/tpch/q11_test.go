package tpch

import (
	"reflect"
	"testing"

	"preemptdb/internal/rng"
)

func TestQ11MatchesReference(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(77)
	nonEmpty := 0
	for i := 0; i < 10; i++ {
		p := RandomQ11Params(r)
		got, err := c.Q11(nil, p)
		if err != nil {
			t.Fatalf("q11(%+v): %v", p, err)
		}
		want := c.Q11Reference(p)
		if len(want) == 0 {
			want = nil
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q11(%+v): got %d rows want %d", p, len(got), len(want))
		}
		if len(got) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all Q11 parameterizations returned empty results")
	}
}

func TestQ11OrderingAndHaving(t *testing.T) {
	c := loadedClient(t)
	p := Q11Params{Nation: "CHINA", Fraction: 0.0}
	rows, err := c.Q11(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Value < rows[i].Value {
			t.Fatalf("order violated at %d", i)
		}
		if rows[i].Value <= 0 {
			t.Fatalf("non-positive group value %d", rows[i].Value)
		}
	}
	// A high fraction must shrink the result set.
	strict, err := c.Q11(nil, Q11Params{Nation: "CHINA", Fraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) >= len(rows) && len(rows) > 0 {
		t.Fatalf("HAVING did not filter: %d vs %d", len(strict), len(rows))
	}
}

func TestQ11UnknownNation(t *testing.T) {
	c := loadedClient(t)
	if _, err := c.Q11(nil, Q11Params{Nation: "ATLANTIS", Fraction: 0.1}); err == nil {
		t.Fatal("unknown nation accepted")
	}
}

func TestQ11ReadOnly(t *testing.T) {
	c := loadedClient(t)
	before := c.e.Log().LSN()
	if _, err := c.Q11(nil, Q11Params{Nation: "FRANCE", Fraction: 0.001}); err != nil {
		t.Fatal(err)
	}
	if c.e.Log().LSN() != before {
		t.Fatal("Q11 wrote to the log")
	}
}

func BenchmarkQ11(b *testing.B) {
	c := loadedClient(b)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Q11(nil, RandomQ11Params(r)); err != nil {
			b.Fatal(err)
		}
	}
}
