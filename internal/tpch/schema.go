// Package tpch implements the TPC-H subset PreemptDB's evaluation needs:
// the region/nation/supplier/part/partsupp tables and query Q2 (minimum-cost
// supplier), the long-running, read-only, low-priority transaction in the
// paper's mixed workload (§6.1). Q2's nested-subquery structure is also what
// makes the Cooperative (Handcrafted) baseline possible: a yield point "right
// outside the nested query block" (§6.3).
package tpch

import (
	"encoding/binary"

	"preemptdb/internal/engine"
	"preemptdb/internal/keys"
)

// Table names.
const (
	TabRegion   = "tpch.region"
	TabNation   = "tpch.nation"
	TabSupplier = "tpch.supplier"
	TabPart     = "tpch.part"
	TabPartSupp = "tpch.partsupp"
)

// Region is one region row (5 in TPC-H).
type Region struct {
	Key     uint32
	Name    string
	Comment string
}

// Nation is one nation row (25 in TPC-H).
type Nation struct {
	Key       uint32
	Name      string
	RegionKey uint32
	Comment   string
}

// Supplier is one supplier row.
type Supplier struct {
	Key       uint32
	Name      string
	Address   string
	NationKey uint32
	Phone     string
	AcctBal   int64 // cents
	Comment   string
}

// Part is one part row.
type Part struct {
	Key         uint32
	Name        string
	Mfgr        string
	Brand       string
	Type        string
	Size        uint32
	Container   string
	RetailPrice int64 // cents
	Comment     string
}

// PartSupp links a part to a supplier with cost and availability.
type PartSupp struct {
	PartKey    uint32
	SuppKey    uint32
	AvailQty   uint32
	SupplyCost int64 // cents
	Comment    string
}

// Key builders.

// RegionKey returns the region primary key.
func RegionKey(r uint32) []byte { return keys.Uint32(nil, r) }

// NationKey returns the nation primary key.
func NationKey(n uint32) []byte { return keys.Uint32(nil, n) }

// SupplierKey returns the supplier primary key.
func SupplierKey(s uint32) []byte { return keys.Uint32(nil, s) }

// PartKey returns the part primary key.
func PartKey(p uint32) []byte { return keys.Uint32(nil, p) }

// PartSuppKey returns the partsupp primary key (clustered by part).
func PartSuppKey(p, s uint32) []byte { return keys.Uint32(keys.Uint32(nil, p), s) }

// Codecs reuse the compact field layout style of the TPC-C package.

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readStr(b []byte) (string, []byte) {
	n, w := binary.Uvarint(b)
	b = b[w:]
	return string(b[:n]), b[n:]
}

// Encode serializes the region row.
func (r *Region) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, r.Key)
	b = appendStr(b, r.Name)
	return appendStr(b, r.Comment)
}

// DecodeRegion deserializes a region row.
func DecodeRegion(b []byte) Region {
	var r Region
	r.Key = binary.LittleEndian.Uint32(b)
	b = b[4:]
	r.Name, b = readStr(b)
	r.Comment, _ = readStr(b)
	return r
}

// Encode serializes the nation row.
func (n *Nation) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, n.Key)
	b = appendStr(b, n.Name)
	b = binary.LittleEndian.AppendUint32(b, n.RegionKey)
	return appendStr(b, n.Comment)
}

// DecodeNation deserializes a nation row.
func DecodeNation(b []byte) Nation {
	var n Nation
	n.Key = binary.LittleEndian.Uint32(b)
	b = b[4:]
	n.Name, b = readStr(b)
	n.RegionKey = binary.LittleEndian.Uint32(b)
	b = b[4:]
	n.Comment, _ = readStr(b)
	return n
}

// Encode serializes the supplier row.
func (s *Supplier) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, s.Key)
	b = appendStr(b, s.Name)
	b = appendStr(b, s.Address)
	b = binary.LittleEndian.AppendUint32(b, s.NationKey)
	b = appendStr(b, s.Phone)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.AcctBal))
	return appendStr(b, s.Comment)
}

// DecodeSupplier deserializes a supplier row.
func DecodeSupplier(b []byte) Supplier {
	var s Supplier
	s.Key = binary.LittleEndian.Uint32(b)
	b = b[4:]
	s.Name, b = readStr(b)
	s.Address, b = readStr(b)
	s.NationKey = binary.LittleEndian.Uint32(b)
	b = b[4:]
	s.Phone, b = readStr(b)
	s.AcctBal = int64(binary.LittleEndian.Uint64(b))
	b = b[8:]
	s.Comment, _ = readStr(b)
	return s
}

// Encode serializes the part row.
func (p *Part) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, p.Key)
	b = appendStr(b, p.Name)
	b = appendStr(b, p.Mfgr)
	b = appendStr(b, p.Brand)
	b = appendStr(b, p.Type)
	b = binary.LittleEndian.AppendUint32(b, p.Size)
	b = appendStr(b, p.Container)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.RetailPrice))
	return appendStr(b, p.Comment)
}

// DecodePart deserializes a part row.
func DecodePart(b []byte) Part {
	var p Part
	p.Key = binary.LittleEndian.Uint32(b)
	b = b[4:]
	p.Name, b = readStr(b)
	p.Mfgr, b = readStr(b)
	p.Brand, b = readStr(b)
	p.Type, b = readStr(b)
	p.Size = binary.LittleEndian.Uint32(b)
	b = b[4:]
	p.Container, b = readStr(b)
	p.RetailPrice = int64(binary.LittleEndian.Uint64(b))
	b = b[8:]
	p.Comment, _ = readStr(b)
	return p
}

// Encode serializes the partsupp row.
func (ps *PartSupp) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, ps.PartKey)
	b = binary.LittleEndian.AppendUint32(b, ps.SuppKey)
	b = binary.LittleEndian.AppendUint32(b, ps.AvailQty)
	b = binary.LittleEndian.AppendUint64(b, uint64(ps.SupplyCost))
	return appendStr(b, ps.Comment)
}

// DecodePartSupp deserializes a partsupp row.
func DecodePartSupp(b []byte) PartSupp {
	var ps PartSupp
	ps.PartKey = binary.LittleEndian.Uint32(b)
	ps.SuppKey = binary.LittleEndian.Uint32(b[4:])
	ps.AvailQty = binary.LittleEndian.Uint32(b[8:])
	ps.SupplyCost = int64(binary.LittleEndian.Uint64(b[12:]))
	ps.Comment, _ = readStr(b[20:])
	return ps
}

// CreateSchema creates the TPC-H subset tables on e.
func CreateSchema(e *engine.Engine) {
	e.CreateTable(TabRegion)
	e.CreateTable(TabNation)
	e.CreateTable(TabSupplier)
	e.CreateTable(TabPart)
	e.CreateTable(TabPartSupp)
}
