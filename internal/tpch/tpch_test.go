package tpch

import (
	"reflect"
	"testing"
	"time"

	"preemptdb/internal/engine"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
	"preemptdb/internal/sched"
)

var testScale = ScaleConfig{Parts: 600, Suppliers: 40, SuppsPerPart: 4, Seed: 5}

func loadedClient(t testing.TB) *Client {
	t.Helper()
	e := engine.New(engine.Config{})
	CreateSchema(e)
	cfg, err := Load(e, testScale)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return NewClient(e, cfg)
}

func TestLoadCounts(t *testing.T) {
	c := loadedClient(t)
	tx := c.e.Begin(nil)
	defer tx.Abort()
	count := func(tab string) int {
		n := 0
		tx.Scan(c.e.MustTable(tab), nil, nil, func(_, _ []byte) bool { n++; return true })
		return n
	}
	if n := count(TabRegion); n != NumRegions {
		t.Fatalf("regions = %d", n)
	}
	if n := count(TabNation); n != NumNations {
		t.Fatalf("nations = %d", n)
	}
	if n := count(TabSupplier); n != testScale.Suppliers {
		t.Fatalf("suppliers = %d", n)
	}
	if n := count(TabPart); n != testScale.Parts {
		t.Fatalf("parts = %d", n)
	}
	if n := count(TabPartSupp); n != testScale.Parts*testScale.SuppsPerPart {
		t.Fatalf("partsupp = %d", n)
	}
}

func TestNationRegionMapping(t *testing.T) {
	if len(nationNames) != NumNations || len(nationRegion) != NumNations {
		t.Fatal("nation dictionaries inconsistent")
	}
	for _, r := range nationRegion {
		if r >= NumRegions {
			t.Fatalf("region key %d out of range", r)
		}
	}
}

func TestQ2MatchesReference(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(99)
	nonEmpty := 0
	for i := 0; i < 10; i++ {
		p := RandomQ2Params(r)
		got, err := c.Q2(nil, p, 0)
		if err != nil {
			t.Fatalf("q2(%+v): %v", p, err)
		}
		want := c.Q2Reference(p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q2(%+v): got %d rows, want %d\n got: %+v\nwant: %+v",
				p, len(got), len(want), truncate(got), truncate(want))
		}
		if len(got) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all Q2 parameterizations returned empty results; test data too sparse")
	}
}

func truncate(rows []Q2Row) []Q2Row {
	if len(rows) > 5 {
		return rows[:5]
	}
	return rows
}

func TestQ2ResultInvariants(t *testing.T) {
	c := loadedClient(t)
	p := Q2Params{Size: 0, TypeSuffix: "", Region: "ASIA"} // match-all type/size impossible size=0
	// Use a real parameterization that matches by picking from the data.
	tx := c.e.Begin(nil)
	var sample Part
	tx.Scan(c.parts, nil, nil, func(_, row []byte) bool {
		sample = DecodePart(row)
		return false
	})
	tx.Abort()
	p = Q2Params{Size: sample.Size, TypeSuffix: sample.Type[len(sample.Type)-3:], Region: "ASIA"}

	rows, err := c.Q2(nil, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 100 {
		t.Fatalf("limit violated: %d rows", len(rows))
	}
	// Ordering: acctbal desc, then nation, suppname, partkey.
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.AcctBal < b.AcctBal {
			t.Fatalf("acctbal order violated at %d", i)
		}
	}
	// Each row's cost must be the minimum for its part within the region.
	ref := c.Q2Reference(p)
	minByPart := map[uint32]int64{}
	for _, r := range ref {
		minByPart[r.PartKey] = r.Cost
	}
	for _, r := range rows {
		if r.Cost != minByPart[r.PartKey] {
			t.Fatalf("part %d: cost %d is not the regional minimum %d", r.PartKey, r.Cost, minByPart[r.PartKey])
		}
	}
}

func TestQ2UnknownRegion(t *testing.T) {
	c := loadedClient(t)
	if _, err := c.Q2(nil, Q2Params{Size: 1, TypeSuffix: "TIN", Region: "ATLANTIS"}, 0); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestQ2HandcraftedVariantSameResults(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(21)
	p := RandomQ2Params(r)
	plain, err := c.Q2(nil, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	yielding, err := c.Q2(nil, p, 10) // yield every 10 nested blocks
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, yielding) {
		t.Fatal("handcrafted yields changed Q2's results")
	}
}

func TestQ2IsReadOnly(t *testing.T) {
	c := loadedClient(t)
	before := c.e.Log().LSN()
	if _, err := c.Q2(nil, Q2Params{Size: 3, TypeSuffix: "TIN", Region: "EUROPE"}, 0); err != nil {
		t.Fatal(err)
	}
	if c.e.Log().LSN() != before {
		t.Fatal("Q2 wrote to the log")
	}
}

func TestQ2SeesSnapshot(t *testing.T) {
	// A concurrent supplier update must not tear Q2's view; run Q2 while
	// updating acctbals and check the result is internally consistent with
	// one of the two states for each supplier (snapshot => all-old values,
	// since the update commits after Q2 begins... we assert no mixed reads
	// by checking Q2 against the reference computed on the same snapshot).
	c := loadedClient(t)
	p := Q2Params{Size: 10, TypeSuffix: "TIN", Region: "ASIA"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			tx := c.e.Begin(nil)
			row, err := tx.Get(c.suppliers, SupplierKey(1))
			if err == nil {
				s := DecodeSupplier(row)
				s.AcctBal++
				tx.Update(c.suppliers, SupplierKey(1), s.Encode())
				tx.Commit()
			} else {
				tx.Abort()
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := c.Q2(nil, p, 0); err != nil {
			t.Fatalf("q2 under concurrency: %v", err)
		}
	}
	<-done
}

func TestCodecRoundtrips(t *testing.T) {
	r := Region{Key: 2, Name: "ASIA", Comment: "c"}
	if got := DecodeRegion(r.Encode()); got != r {
		t.Fatalf("region %+v", got)
	}
	n := Nation{Key: 7, Name: "GERMANY", RegionKey: 3, Comment: "x"}
	if got := DecodeNation(n.Encode()); got != n {
		t.Fatalf("nation %+v", got)
	}
	s := Supplier{Key: 1, Name: "Supplier#000000001", Address: "addr",
		NationKey: 4, Phone: "123", AcctBal: -500, Comment: "cc"}
	if got := DecodeSupplier(s.Encode()); got != s {
		t.Fatalf("supplier %+v", got)
	}
	p := Part{Key: 9, Name: "part", Mfgr: "Manufacturer#1", Brand: "Brand#11",
		Type: "STANDARD ANODIZED TIN", Size: 17, Container: "BOX",
		RetailPrice: 100100, Comment: "pc"}
	if got := DecodePart(p.Encode()); got != p {
		t.Fatalf("part %+v", got)
	}
	ps := PartSupp{PartKey: 9, SuppKey: 1, AvailQty: 55, SupplyCost: 777, Comment: "psc"}
	if got := DecodePartSupp(ps.Encode()); got != ps {
		t.Fatalf("partsupp %+v", got)
	}
}

func BenchmarkQ2(b *testing.B) {
	c := loadedClient(b)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := RandomQ2Params(r)
		if _, err := c.Q2(nil, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQ2ParallelMatchesReference: the morsel-parallel plan returns exactly
// the sequential/reference result, whether helpers are stolen by idle
// scheduler workers or (detached context) every morsel runs inline.
func TestQ2ParallelMatchesReference(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(17)
	// Detached context: spawner is nil, morsels run inline on the caller.
	for i := 0; i < 5; i++ {
		p := RandomQ2Params(r)
		got, err := c.Q2Ex(nil, p, Q2Exec{Morsels: 8})
		if err != nil {
			t.Fatalf("q2ex(%+v): %v", p, err)
		}
		if want := c.Q2Reference(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("q2ex(%+v): got %d rows, want %d", p, len(got), len(want))
		}
	}

	// Under a scheduler: idle workers steal morsels off the shared queue.
	s := sched.New(sched.Config{Policy: sched.PolicyPreempt, Workers: 4})
	s.Start()
	defer s.Stop()
	for i := 0; i < 5; i++ {
		p := RandomQ2Params(r)
		done := make(chan error, 1)
		var got []Q2Row
		s.SubmitLow(0, &sched.Request{Work: func(ctx *pcontext.Context) error {
			rows, err := c.Q2Ex(ctx, p, Q2Exec{Morsels: 8, YieldEvery: 0})
			got = rows
			done <- err
			return err
		}})
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("scheduled q2ex(%+v): %v", p, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("scheduled Q2Ex stuck")
		}
		if want := c.Q2Reference(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("scheduled q2ex(%+v): got %d rows, want %d", p, len(got), len(want))
		}
	}
}
