package tpch

import (
	"sort"

	"preemptdb/internal/engine"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
)

// Q11 — important stock identification. A second long-running, read-only
// analytical transaction over the subset schema (beyond the paper's Q2),
// useful for mixed workloads that need variety in their low-priority class:
//
//	select ps_partkey, sum(ps_supplycost * ps_availqty) as value
//	from partsupp, supplier, nation
//	where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
//	  and n_name = '[NATION]'
//	group by ps_partkey
//	having value > [FRACTION] * (total over the same nation)
//	order by value desc
//
// Unlike Q2's scan-plus-nested-subquery shape, Q11 is a full aggregation
// over PARTSUPP with a two-pass HAVING — a different preemption profile
// (one long scan, then a long in-memory group-by walk).

// Q11Params are the substitution parameters.
type Q11Params struct {
	Nation   string
	Fraction float64 // spec: 0.0001 / SF
}

// RandomQ11Params draws spec-style parameters. The fraction is scaled so a
// handful of groups qualify at our reduced scale.
func RandomQ11Params(r *rng.Rand) Q11Params {
	return Q11Params{
		Nation:   nationNames[r.Intn(NumNations)],
		Fraction: 0.001,
	}
}

// Q11Row is one result group.
type Q11Row struct {
	PartKey uint32
	Value   int64 // Σ supplycost × availqty, in cents
}

// Q11 runs the query as one snapshot transaction; every record access polls
// the context, so the aggregation is preemptible throughout.
func (c *Client) Q11(ctx *pcontext.Context, p Q11Params) ([]Q11Row, error) {
	tx := c.e.Begin(ctx)
	defer tx.Abort()

	// Resolve the nation key.
	nationKey := uint32(0)
	found := false
	if err := tx.Scan(c.nations, nil, nil, func(_, row []byte) bool {
		n := DecodeNation(row)
		if n.Name == p.Nation {
			nationKey = n.Key
			found = true
			return false
		}
		return true
	}); err != nil {
		return nil, err
	}
	if !found {
		return nil, engine.ErrNotFound
	}

	// Suppliers in the nation (small set; build once).
	inNation := make(map[uint32]bool)
	if err := tx.Scan(c.suppliers, nil, nil, func(_, row []byte) bool {
		s := DecodeSupplier(row)
		if s.NationKey == nationKey {
			inNation[s.Key] = true
		}
		return true
	}); err != nil {
		return nil, err
	}

	// Pass 1: aggregate value per part and the national total.
	values := make(map[uint32]int64)
	var total int64
	if err := tx.Scan(c.partsupp, nil, nil, func(_, row []byte) bool {
		ps := DecodePartSupp(row)
		if !inNation[ps.SuppKey] {
			return true
		}
		v := ps.SupplyCost * int64(ps.AvailQty)
		values[ps.PartKey] += v
		total += v
		return true
	}); err != nil {
		return nil, err
	}

	// Pass 2: HAVING + ORDER BY value desc. The group walk also polls so a
	// large group-by table cannot create an unpreemptible region.
	threshold := int64(p.Fraction * float64(total))
	out := make([]Q11Row, 0, len(values))
	for pk, v := range values {
		ctx.Poll()
		if v > threshold {
			out = append(out, Q11Row{PartKey: pk, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].PartKey < out[j].PartKey
	})
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return out, nil
}

// Q11Reference recomputes Q11 with fully materialized maps, for tests.
func (c *Client) Q11Reference(p Q11Params) []Q11Row {
	tx := c.e.Begin(nil)
	defer tx.Abort()

	var nationKey uint32
	tx.Scan(c.nations, nil, nil, func(_, row []byte) bool {
		n := DecodeNation(row)
		if n.Name == p.Nation {
			nationKey = n.Key
			return false
		}
		return true
	})
	supps := map[uint32]bool{}
	tx.Scan(c.suppliers, nil, nil, func(_, row []byte) bool {
		s := DecodeSupplier(row)
		if s.NationKey == nationKey {
			supps[s.Key] = true
		}
		return true
	})
	values := map[uint32]int64{}
	var total int64
	tx.Scan(c.partsupp, nil, nil, func(_, row []byte) bool {
		ps := DecodePartSupp(row)
		if supps[ps.SuppKey] {
			v := ps.SupplyCost * int64(ps.AvailQty)
			values[ps.PartKey] += v
			total += v
		}
		return true
	})
	threshold := int64(p.Fraction * float64(total))
	var out []Q11Row
	for pk, v := range values {
		if v > threshold {
			out = append(out, Q11Row{PartKey: pk, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].PartKey < out[j].PartKey
	})
	return out
}
