package tpch

import (
	"sort"
	"strings"

	"preemptdb/internal/engine"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
	"preemptdb/internal/sched"
)

// Q2Params are the substitution parameters of TPC-H Q2.
type Q2Params struct {
	Size       uint32 // p_size = Size
	TypeSuffix string // p_type LIKE '%TypeSuffix'
	Region     string // r_name = Region
}

// RandomQ2Params draws spec-style parameters.
func RandomQ2Params(r *rng.Rand) Q2Params {
	return Q2Params{
		Size:       uint32(r.IntRange(1, 50)),
		TypeSuffix: typeSyllable3[r.Intn(len(typeSyllable3))],
		Region:     regionNames[r.Intn(NumRegions)],
	}
}

// Q2Row is one result row of Q2.
type Q2Row struct {
	AcctBal  int64
	SuppName string
	Nation   string
	PartKey  uint32
	Mfgr     string
	Cost     int64
}

// Client runs TPC-H queries against a loaded engine.
type Client struct {
	e   *engine.Engine
	cfg ScaleConfig

	regions, nations, suppliers, parts, partsupp *engine.Table
}

// NewClient binds a query client to a loaded engine.
func NewClient(e *engine.Engine, cfg ScaleConfig) *Client {
	return &Client{
		e: e, cfg: cfg.withDefaults(),
		regions:   e.MustTable(TabRegion),
		nations:   e.MustTable(TabNation),
		suppliers: e.MustTable(TabSupplier),
		parts:     e.MustTable(TabPart),
		partsupp:  e.MustTable(TabPartSupp),
	}
}

// Scale returns the loaded scale configuration.
func (c *Client) Scale() ScaleConfig { return c.cfg }

// Q2Exec controls how Q2 executes.
type Q2Exec struct {
	// YieldEvery > 0 places a handcrafted cooperative yield point after every
	// YieldEvery nested query blocks (the paper's Cooperative (Handcrafted)
	// baseline, §6.3); 0 disables it.
	YieldEvery int
	// Morsels > 1 partitions the outer PART scan into that many morsels and
	// offers all but one to idle scheduler workers (morsel-driven
	// parallelism); <= 1 runs the classic single-threaded plan. Either way
	// every morsel executes under the same snapshot and the result is
	// identical to the sequential query.
	Morsels int
}

// Q2 runs the minimum-cost supplier query as one read-only snapshot
// transaction. Every record access polls the transaction context, so the
// whole query — scan, joins, nested subquery — is preemptible at record
// granularity. yieldEvery is Q2Exec.YieldEvery; use Q2Ex for the parallel
// variant.
func (c *Client) Q2(ctx *pcontext.Context, p Q2Params, yieldEvery int) ([]Q2Row, error) {
	return c.Q2Ex(ctx, p, Q2Exec{YieldEvery: yieldEvery})
}

// Q2Ex runs Q2 with explicit execution options. The parallel plan fans the
// outer PART scan out as morsels via engine.ParallelScan: each morsel —
// including its nested partsupp/supplier/nation lookups — runs on a read-only
// helper transaction pinned at the parent's snapshot, and idle scheduler
// workers steal morsels through the shared queue. Helpers poll their own
// contexts, so a high-priority burst preempts each of them independently.
func (c *Client) Q2Ex(ctx *pcontext.Context, p Q2Params, exec Q2Exec) ([]Q2Row, error) {
	tx := c.e.Begin(ctx)
	defer tx.Abort()

	// Resolve the region key and the set of nations inside it.
	regionKey := uint32(0)
	found := false
	if err := tx.Scan(c.regions, nil, nil, func(_, row []byte) bool {
		r := DecodeRegion(row)
		if r.Name == p.Region {
			regionKey = r.Key
			found = true
			return false
		}
		return true
	}); err != nil {
		return nil, err
	}
	if !found {
		return nil, engine.ErrNotFound
	}

	// The morsel body: outer scan over one PART range with the size/type
	// predicate, nested min-supplycost block per qualifying part. It only
	// touches sub and morsel-local state, so morsels run concurrently. Rows
	// accumulate in part-key order within each morsel, and morsels merge in
	// range order, so the pre-sort row order matches the sequential plan.
	body := func(sub *engine.Txn, m engine.Morsel) ([]Q2Row, error) {
		var rows []Q2Row
		nestedBlocks := 0
		err := sub.Scan(c.parts, m.From, m.To, func(_, row []byte) bool {
			part := DecodePart(row)
			if part.Size != p.Size || !strings.HasSuffix(part.Type, p.TypeSuffix) {
				return true
			}

			// --- nested query block: min supplycost within the region ---
			nestedBlocks++
			type cand struct {
				supp Supplier
				nat  Nation
				cost int64
			}
			minCost := int64(-1)
			var cands []cand
			from := PartSuppKey(part.Key, 0)
			to := PartSuppKey(part.Key+1, 0)
			sub.Scan(c.partsupp, from, to, func(_, psRow []byte) bool {
				ps := DecodePartSupp(psRow)
				sRow, err := sub.Get(c.suppliers, SupplierKey(ps.SuppKey))
				if err != nil {
					return true
				}
				supp := DecodeSupplier(sRow)
				nRow, err := sub.Get(c.nations, NationKey(supp.NationKey))
				if err != nil {
					return true
				}
				nat := DecodeNation(nRow)
				if nat.RegionKey != regionKey {
					return true
				}
				if minCost < 0 || ps.SupplyCost < minCost {
					minCost = ps.SupplyCost
				}
				cands = append(cands, cand{supp: supp, nat: nat, cost: ps.SupplyCost})
				return true
			})
			// --- end nested query block ---

			for _, cd := range cands {
				if cd.cost == minCost {
					rows = append(rows, Q2Row{
						AcctBal: cd.supp.AcctBal, SuppName: cd.supp.Name,
						Nation: cd.nat.Name, PartKey: part.Key, Mfgr: part.Mfgr,
						Cost: cd.cost,
					})
				}
			}

			// Handcrafted yield point, placed exactly where the paper put it:
			// right outside the nested query block, taken every YieldEvery
			// blocks — on the context actually running this morsel.
			if exec.YieldEvery > 0 && nestedBlocks%exec.YieldEvery == 0 {
				sched.Yield(sub.Context())
			}
			return true
		})
		return rows, err
	}

	morsels := exec.Morsels
	if morsels < 1 {
		morsels = 1
	}
	out, err := engine.ParallelScan(tx, c.parts, nil, nil,
		engine.ParallelScanConfig{Morsels: morsels, Spawn: sched.MorselSpawner(ctx)},
		body,
		func(acc, part []Q2Row) []Q2Row { return append(acc, part...) })
	if err != nil {
		return nil, err
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		// Spec ordering: s_acctbal desc, n_name, s_name, p_partkey.
		if a.AcctBal != b.AcctBal {
			return a.AcctBal > b.AcctBal
		}
		if a.Nation != b.Nation {
			return a.Nation < b.Nation
		}
		if a.SuppName != b.SuppName {
			return a.SuppName < b.SuppName
		}
		return a.PartKey < b.PartKey
	})
	if len(out) > 100 {
		out = out[:100]
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return out, nil
}

// Q2Reference recomputes Q2 with a naive full-materialization plan, used by
// tests to validate the transactional implementation.
func (c *Client) Q2Reference(p Q2Params) []Q2Row {
	tx := c.e.Begin(nil)
	defer tx.Abort()

	nationsByKey := map[uint32]Nation{}
	tx.Scan(c.nations, nil, nil, func(_, row []byte) bool {
		n := DecodeNation(row)
		nationsByKey[n.Key] = n
		return true
	})
	regionByName := map[string]uint32{}
	tx.Scan(c.regions, nil, nil, func(_, row []byte) bool {
		r := DecodeRegion(row)
		regionByName[r.Name] = r.Key
		return true
	})
	suppsByKey := map[uint32]Supplier{}
	tx.Scan(c.suppliers, nil, nil, func(_, row []byte) bool {
		s := DecodeSupplier(row)
		suppsByKey[s.Key] = s
		return true
	})
	psByPart := map[uint32][]PartSupp{}
	tx.Scan(c.partsupp, nil, nil, func(_, row []byte) bool {
		ps := DecodePartSupp(row)
		psByPart[ps.PartKey] = append(psByPart[ps.PartKey], ps)
		return true
	})

	rk := regionByName[p.Region]
	var out []Q2Row
	tx.Scan(c.parts, nil, nil, func(_, row []byte) bool {
		part := DecodePart(row)
		if part.Size != p.Size || !strings.HasSuffix(part.Type, p.TypeSuffix) {
			return true
		}
		minCost := int64(-1)
		for _, ps := range psByPart[part.Key] {
			s := suppsByKey[ps.SuppKey]
			if nationsByKey[s.NationKey].RegionKey != rk {
				continue
			}
			if minCost < 0 || ps.SupplyCost < minCost {
				minCost = ps.SupplyCost
			}
		}
		for _, ps := range psByPart[part.Key] {
			s := suppsByKey[ps.SuppKey]
			n := nationsByKey[s.NationKey]
			if n.RegionKey == rk && ps.SupplyCost == minCost {
				out = append(out, Q2Row{
					AcctBal: s.AcctBal, SuppName: s.Name, Nation: n.Name,
					PartKey: part.Key, Mfgr: part.Mfgr, Cost: ps.SupplyCost,
				})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.AcctBal != b.AcctBal {
			return a.AcctBal > b.AcctBal
		}
		if a.Nation != b.Nation {
			return a.Nation < b.Nation
		}
		if a.SuppName != b.SuppName {
			return a.SuppName < b.SuppName
		}
		return a.PartKey < b.PartKey
	})
	if len(out) > 100 {
		out = out[:100]
	}
	return out
}
