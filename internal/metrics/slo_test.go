package metrics

import (
	"sync"
	"testing"
)

// TestSLOBreachDetection: only PhaseTotal samples above the class watermark
// count as breaches, the hook fires inline with the breaching value, and
// clearing the SLO disarms detection.
func TestSLOBreachDetection(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var hooked []int64
	r.SetBreachHook(func(c Class, v int64) {
		if c != ClassHi {
			t.Errorf("hook class = %v, want hi", c)
		}
		mu.Lock()
		hooked = append(hooked, v)
		mu.Unlock()
	})

	// No SLO configured: nothing breaches.
	r.Observe(ClassHi, PhaseTotal, 0, 1e9)
	if n := r.SLOBreaches(ClassHi); n != 0 {
		t.Fatalf("breaches with no SLO: %d", n)
	}

	r.SetSLO(ClassHi, 1000)
	if got := r.SLO(ClassHi); got != 1000 {
		t.Fatalf("SLO = %d, want 1000", got)
	}
	r.Observe(ClassHi, PhaseTotal, 0, 999)  // under
	r.Observe(ClassHi, PhaseTotal, 0, 1000) // at: not a breach
	r.Observe(ClassHi, PhaseTotal, 0, 1001) // over
	r.Observe(ClassHi, PhaseExec, 0, 5000)  // wrong phase
	r.Observe(ClassLo, PhaseTotal, 0, 5000) // wrong class (no lo SLO)
	if n := r.SLOBreaches(ClassHi); n != 1 {
		t.Fatalf("hi breaches = %d, want 1", n)
	}
	if n := r.SLOBreaches(ClassLo); n != 0 {
		t.Fatalf("lo breaches = %d, want 0", n)
	}
	mu.Lock()
	if len(hooked) != 1 || hooked[0] != 1001 {
		t.Fatalf("hook saw %v, want [1001]", hooked)
	}
	mu.Unlock()

	// Clearing the hook and the SLO disarms both.
	r.SetBreachHook(nil)
	r.Observe(ClassHi, PhaseTotal, 0, 9999)
	if n := r.SLOBreaches(ClassHi); n != 2 {
		t.Fatalf("breach count without hook = %d, want 2", n)
	}
	r.SetSLO(ClassHi, 0)
	r.Observe(ClassHi, PhaseTotal, 0, 9999)
	if n := r.SLOBreaches(ClassHi); n != 2 {
		t.Fatalf("breach counted after SLO cleared: %d", n)
	}

	snap := r.Snapshot()
	if snap.SLOBreachesHi != 2 || snap.SLOBreachesLo != 0 {
		t.Fatalf("snapshot breaches hi/lo = %d/%d, want 2/0", snap.SLOBreachesHi, snap.SLOBreachesLo)
	}
}

// TestObserveLevelSnapshot: leveled-scheduler samples land in per-level
// histograms and surface through the snapshot.
func TestObserveLevelSnapshot(t *testing.T) {
	r := NewRegistry()
	r.ObserveLevel(0, 0, 100)
	r.ObserveLevel(2, 1, 300)
	r.ObserveLevel(2, 0, 500)
	r.ObserveLevel(-1, 0, 1)        // dropped
	r.ObserveLevel(NumLevels, 0, 1) // dropped

	if got := r.Level(2).Count(); got != 2 {
		t.Fatalf("level 2 count = %d, want 2", got)
	}
	if r.Level(NumLevels) != nil {
		t.Fatal("out-of-range Level must be nil")
	}
	snap := r.Snapshot()
	seen := map[int]uint64{}
	for _, ls := range snap.LevelSchedLatency {
		seen[ls.Level] = ls.SchedLatency.Count
	}
	if seen[0] != 1 || seen[2] != 2 {
		t.Fatalf("snapshot level counts = %v, want level0=1 level2=2", seen)
	}
}
