package metrics

import "sync/atomic"

// AbortReason classifies why a request failed to commit — the typed
// taxonomy the lifecycle refactor threads from the engine to DB.Stats and
// the benchmark output. Keep String in sync when adding reasons.
type AbortReason uint8

// Abort reasons.
const (
	// AbortConflict is a concurrency conflict (write-write or serializable
	// validation) that exhausted its retry budget.
	AbortConflict AbortReason = iota
	// AbortDeadline is a transaction canceled by its own deadline, whether
	// it was still queued (shed) or already running.
	AbortDeadline
	// AbortCanceled is an explicit cancellation by the submitter.
	AbortCanceled
	// AbortQueueFull is a request rejected up front: scheduler queues full
	// or admission control shed it.
	AbortQueueFull
	// AbortWALFailed is a write rejected (or a commit failed) because the
	// write-ahead log latched a permanent I/O failure and the database
	// degraded to read-only.
	AbortWALFailed
	// AbortOther is any other transaction-body error.
	AbortOther
	// NumAbortReasons sizes AbortCounters.
	NumAbortReasons
)

func (r AbortReason) String() string {
	switch r {
	case AbortConflict:
		return "conflict"
	case AbortDeadline:
		return "deadline"
	case AbortCanceled:
		return "canceled"
	case AbortQueueFull:
		return "queue-full"
	case AbortWALFailed:
		return "wal-failed"
	case AbortOther:
		return "other"
	default:
		return "invalid"
	}
}

// AbortCounters is a fixed vector of per-reason counters. The zero value is
// ready to use; all methods are safe for concurrent use.
type AbortCounters struct {
	counts [NumAbortReasons]atomic.Uint64
}

// Inc adds one to reason r's counter.
func (c *AbortCounters) Inc(r AbortReason) {
	if r < NumAbortReasons {
		c.counts[r].Add(1)
	}
}

// Load returns reason r's current count.
func (c *AbortCounters) Load(r AbortReason) uint64 {
	if r >= NumAbortReasons {
		return 0
	}
	return c.counts[r].Load()
}

// Snapshot returns all counters at once, indexed by AbortReason.
func (c *AbortCounters) Snapshot() [NumAbortReasons]uint64 {
	var out [NumAbortReasons]uint64
	for i := range out {
		out[i] = c.counts[i].Load()
	}
	return out
}
