// Package metrics provides the measurement primitives used by the benchmark
// harness: log-bucketed latency histograms with percentile queries, geometric
// means, and monotonic throughput counters.
//
// The histogram follows the HDR-histogram idea in miniature: values are
// bucketed by order of magnitude with a fixed number of linear sub-buckets per
// magnitude, giving a bounded relative error (~1/subBuckets) over an arbitrary
// dynamic range while recording in O(1) with no allocation.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"
)

const (
	// subBucketBits controls resolution: 2^subBucketBits linear sub-buckets
	// per power of two, i.e. ~1.5% worst-case relative error.
	subBucketBits  = 6
	subBucketCount = 1 << subBucketBits
	// maxExponent covers values up to 2^(maxExponent+subBucketBits), far more
	// than any latency we record in nanoseconds (2^58 ns ≈ 9 years).
	maxExponent = 52
	numBuckets  = maxExponent * subBucketCount
)

// Histogram records non-negative int64 samples (typically nanoseconds) and
// answers percentile queries. The zero value is ready to use. It is not safe
// for concurrent use; each worker records into its own histogram and the
// harness merges them.
type Histogram struct {
	counts   [numBuckets]uint64
	total    uint64
	sum      float64
	logSum   float64 // sum of ln(v) for geomean; zero samples contribute ln(1)
	min, max int64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBucketCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBucketBits // ≥ 1 here
	idx := exp*subBucketCount + int(u>>uint(exp))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// value reconstructs a representative (midpoint) value for bucket i.
func value(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	exp := i / subBucketCount
	sub := i % subBucketCount
	lo := int64(sub) << uint(exp)
	width := int64(1) << uint(exp)
	return lo + width/2
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v > 0 {
		h.logSum += math.Log(float64(v))
	}
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one duration sample in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Geomean returns the geometric mean of the samples, treating zero samples as
// one. The paper's Figure 13 reports geometric means across latencies.
func (h *Histogram) Geomean() float64 {
	if h.total == 0 {
		return 0
	}
	return math.Exp(h.logSum / float64(h.total))
}

// Percentile returns the value at percentile p in [0, 100]. Within a bucket
// the midpoint is reported; the true min and max are reported exactly.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := value(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
	h.logSum += o.logSum
}

// Reset discards all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is a fixed set of latency statistics extracted from a histogram.
// All values are nanoseconds; the JSON tags are the artifact/export schema
// (BENCH_*.json, DB.Metrics, the server Metrics frame).
type Summary struct {
	Count   uint64  `json:"count"`
	Mean    float64 `json:"mean_ns"`
	Geomean float64 `json:"geomean_ns"`
	Min     int64   `json:"min_ns"`
	P50     int64   `json:"p50_ns"`
	P90     int64   `json:"p90_ns"`
	P99     int64   `json:"p99_ns"`
	P999    int64   `json:"p999_ns"`
	Max     int64   `json:"max_ns"`
}

// Summarize extracts the standard statistics the paper reports (50/90/99/99.9
// percentiles plus mean and geomean).
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:   h.total,
		Mean:    h.Mean(),
		Geomean: h.Geomean(),
		Min:     h.Min(),
		P50:     h.Percentile(50),
		P90:     h.Percentile(90),
		P99:     h.Percentile(99),
		P999:    h.Percentile(99.9),
		Max:     h.Max(),
	}
}

// String formats the summary with human-readable durations.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p99.9=%v max=%v",
		s.Count, time.Duration(s.Mean), time.Duration(s.P50), time.Duration(s.P90),
		time.Duration(s.P99), time.Duration(s.P999), time.Duration(s.Max))
}

// FormatNanos renders a nanosecond quantity compactly (µs/ms/s) for tables.
func FormatNanos(ns float64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}

// Table is a tiny column-aligned text table builder used by the experiment
// runners to print figure data series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hdr := range t.header {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts data rows by the numeric value of column i, ascending.
func (t *Table) SortRowsBy(i int) {
	sort.SliceStable(t.rows, func(a, b int) bool {
		var x, y float64
		fmt.Sscan(t.rows[a][i], &x)
		fmt.Sscan(t.rows[b][i], &y)
		return x < y
	})
}
