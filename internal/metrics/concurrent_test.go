package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"preemptdb/internal/clock"
)

// TestConcurrentHistogramMatchesSequential: the striped histogram must agree
// with the single-writer Histogram on every exact statistic, regardless of
// which stripes the samples landed in.
func TestConcurrentHistogramMatchesSequential(t *testing.T) {
	var ch ConcurrentHistogram
	var h Histogram
	vals := []int64{0, 1, 17, 63, 64, 65, 999, 12345, 1 << 20, 1 << 33, 7}
	for i, v := range vals {
		ch.Record(i, v) // spread across stripes
		h.Record(v)
	}
	snap := ch.Snapshot()
	if snap.Count() != h.Count() {
		t.Fatalf("count = %d, want %d", snap.Count(), h.Count())
	}
	if snap.Min() != h.Min() || snap.Max() != h.Max() {
		t.Fatalf("min/max = %d/%d, want %d/%d", snap.Min(), snap.Max(), h.Min(), h.Max())
	}
	if snap.Mean() != h.Mean() {
		t.Fatalf("mean = %v, want %v", snap.Mean(), h.Mean())
	}
	for _, p := range []float64{0, 50, 90, 99, 99.9, 100} {
		if got, want := snap.Percentile(p), h.Percentile(p); got != want {
			t.Fatalf("p%v = %d, want %d", p, got, want)
		}
	}
	// Geomean is approximated from bucket midpoints: within the histogram's
	// relative-error bound.
	if g, want := snap.Geomean(), h.Geomean(); math.Abs(g-want)/want > 0.05 {
		t.Fatalf("geomean = %v, want ~%v", g, want)
	}
}

func TestConcurrentHistogramNilSafe(t *testing.T) {
	var ch *ConcurrentHistogram
	ch.Record(0, 5)
	if ch.Count() != 0 {
		t.Fatal("nil histogram must be inert")
	}
	if s := ch.Snapshot(); s.Count() != 0 {
		t.Fatal("nil snapshot must be empty")
	}
	var reg *Registry
	reg.Observe(ClassHi, PhaseTotal, 0, 1)
	reg.ObserveDelivery(0, 1)
	if s := reg.Snapshot(); s.Hi.Total.Count != 0 {
		t.Fatal("nil registry must be inert")
	}
}

func TestConcurrentHistogramNegativeClampsToZero(t *testing.T) {
	var ch ConcurrentHistogram
	ch.Record(0, -5)
	s := ch.Snapshot()
	if s.Min() != 0 || s.Max() != 0 || s.Count() != 1 {
		t.Fatalf("negative sample: min=%d max=%d n=%d", s.Min(), s.Max(), s.Count())
	}
}

// TestConcurrentHistogramParallel hammers one histogram from many goroutines
// (run under -race in CI) while snapshots are drawn concurrently, then checks
// the final aggregate is exact.
func TestConcurrentHistogramParallel(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	var ch ConcurrentHistogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshotting must be safe and tear-free per counter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := ch.Snapshot()
			if s.Count() > writers*perG {
				t.Error("snapshot over-counted")
				return
			}
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				ch.Record(g, int64(i%1000)+1)
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	s := ch.Snapshot()
	if s.Count() != writers*perG {
		t.Fatalf("count = %d, want %d", s.Count(), writers*perG)
	}
	if s.Min() != 1 || s.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.Min(), s.Max())
	}
}

func TestConcurrentHistogramReset(t *testing.T) {
	var ch ConcurrentHistogram
	for i := 0; i < 10; i++ {
		ch.Record(i, int64(i))
	}
	ch.Reset()
	if s := ch.Snapshot(); s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("after reset: %+v", s.Summarize())
	}
	ch.Record(0, 42)
	if s := ch.Snapshot(); s.Count() != 1 || s.Min() != 42 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Observe(ClassHi, PhaseTotal, 0, 1000)
	r.Observe(ClassHi, PhaseQueueWait, 0, 50)
	r.Observe(ClassLo, PhaseWALWait, 1, 200)
	r.ObserveDelivery(0, 80)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"hi"`, `"lo"`, `"queue_wait"`, `"exec"`, `"pause"`, `"pause_total"`,
		`"resume"`, `"wal_wait"`, `"total"`, `"uintr_delivery"`,
		`"p50_ns"`, `"p90_ns"`, `"p99_ns"`, `"p999_ns"`, `"count"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("snapshot JSON missing %s:\n%s", key, b)
		}
	}
	var back RegistrySnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hi.Total.Count != 1 || back.Hi.Total.P50 == 0 {
		t.Fatalf("round-trip lost data: %+v", back.Hi.Total)
	}
	if back.UintrDelivery.Count != 1 {
		t.Fatalf("delivery lost: %+v", back.UintrDelivery)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Observe(ClassHi, PhaseTotal, 0, 1000)
	r.ObserveDelivery(0, 77)
	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE preemptdb_phase_latency_nanoseconds summary",
		`preemptdb_phase_latency_nanoseconds{class="hi",phase="total",quantile="0.5"}`,
		`preemptdb_phase_latency_nanoseconds_count{class="hi",phase="total"} 1`,
		`preemptdb_uintr_delivery_nanoseconds{quantile="0.99"} 77`,
		"preemptdb_uintr_delivery_nanoseconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseClassStrings(t *testing.T) {
	if ClassHi.String() != "hi" || ClassLo.String() != "lo" {
		t.Fatal("class names")
	}
	if PhaseWALWait.String() != "wal_wait" || PhaseQueueWait.String() != "queue_wait" {
		t.Fatal("phase names")
	}
	if Phase(200).String() == "" {
		t.Fatal("unknown phase must format")
	}
}

// BenchmarkConcurrentRecord measures the bare record cost (the always-on
// budget: the commit path adds one of these plus two clock reads).
func BenchmarkConcurrentRecord(b *testing.B) {
	var ch ConcurrentHistogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch.Record(3, int64(i&1023))
	}
}

// BenchmarkObserveWithClock is the full per-commit instrumentation unit: two
// clock reads bracketing work plus one registry observation.
func BenchmarkObserveWithClock(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := clock.Nanos()
		r.Observe(ClassLo, PhaseWALWait, 3, clock.Nanos()-t0)
	}
}
