package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Geomean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestSingleValue(t *testing.T) {
	var h Histogram
	h.Record(1234)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 1234 {
			t.Errorf("p%.0f = %d, want 1234", p, got)
		}
	}
	if h.Mean() != 1234 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("negative values must clamp to 0")
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Percentiles must be within the bucket relative error (~3%) of exact.
	var h Histogram
	var exact []int64
	r := uint64(12345)
	for i := 0; i < 100000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		v := int64(r % 10_000_000) // up to 10ms in ns
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		want := exact[int(math.Ceil(p/100*float64(len(exact))))-1]
		got := h.Percentile(p)
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.05 {
			t.Errorf("p%v: got %d want %d (rel err %.3f)", p, got, want, relErr)
		}
	}
}

func TestMinMaxExact(t *testing.T) {
	var h Histogram
	vals := []int64{999, 3, 777777, 42}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Min() != 3 || h.Max() != 777777 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if h.Percentile(0) != 3 || h.Percentile(100) != 777777 {
		t.Fatal("p0/p100 must be exact min/max")
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		whole.Record(i)
	}
	for i := int64(1000); i < 2000; i++ {
		b.Record(i * 7)
		whole.Record(i * 7)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("count %d vs %d", a.Count(), whole.Count())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("min/max mismatch after merge")
	}
	for _, p := range []float64{50, 99} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Errorf("p%v mismatch: %d vs %d", p, a.Percentile(p), whole.Percentile(p))
		}
	}
	// Merging nil or empty is a no-op.
	before := a.Summarize()
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Summarize() != before {
		t.Fatal("merging nil/empty changed the histogram")
	}
}

func TestGeomean(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Record(1000)
	want := math.Sqrt(10 * 1000)
	if g := h.Geomean(); math.Abs(g-want)/want > 0.01 {
		t.Fatalf("geomean = %v, want %v", g, want)
	}
}

func TestMonotonicBuckets(t *testing.T) {
	// value(bucketIndex(v)) must be within the bucket's relative error of v,
	// and bucketIndex must be monotonic non-decreasing.
	err := quick.Check(func(raw uint32) bool {
		v := int64(raw)
		i := bucketIndex(v)
		rep := value(i)
		if v < subBucketCount {
			return rep == v
		}
		relErr := math.Abs(float64(rep-v)) / float64(v)
		return relErr <= 1.0/subBucketCount
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for v := int64(0); v < 1<<20; v += 97 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		prev = i
	}
}

func TestHugeValueClamped(t *testing.T) {
	var h Histogram
	h.Record(math.MaxInt64)
	if h.Count() != 1 {
		t.Fatal("huge value must be recorded")
	}
	if h.Percentile(50) <= 0 {
		t.Fatal("huge value percentile must be positive")
	}
}

func TestRecordDuration(t *testing.T) {
	var h Histogram
	h.RecordDuration(3 * time.Millisecond)
	if h.Max() != int64(3*time.Millisecond) {
		t.Fatal("duration not recorded in nanos")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Record(1000)
	s := h.Summarize()
	if s.Count != 1 || s.P50 != 1000 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestFormatNanos(t *testing.T) {
	cases := map[float64]string{
		500:     "500ns",
		1500:    "1.5µs",
		2500000: "2.50ms",
		3e9:     "3.00s",
	}
	for in, want := range cases {
		if got := FormatNanos(in); got != want {
			t.Errorf("FormatNanos(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("a", "bbbb")
	tb.AddRow(10, "x")
	tb.AddRow(2, "yy")
	out := tb.String()
	if out == "" {
		t.Fatal("empty table")
	}
	tb.SortRowsBy(0)
	out2 := tb.String()
	if out2 == out {
		t.Log("sort produced same order (ok if already sorted)")
	}
}
