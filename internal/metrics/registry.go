package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Class is the scheduling priority class a latency observation belongs to.
type Class uint8

// Priority classes (matching the scheduler's two-level design).
const (
	ClassLo Class = iota
	ClassHi
	NumClasses
)

func (c Class) String() string {
	if c == ClassHi {
		return "hi"
	}
	return "lo"
}

// Phase names one component of a transaction's end-to-end latency. The
// decomposition follows the request's life: admission-queue wait, execution
// (on-core time, pauses excluded), preempted-pause time (per pause and per
// transaction), resume latency (preemptive context's hand-back to the paused
// context), group-commit/WAL wait, and the end-to-end total.
type Phase uint8

// Latency phases.
const (
	// PhaseQueueWait is EnqueuedAt → StartedAt: time spent in the admission
	// queue before a worker picked the request up.
	PhaseQueueWait Phase = iota
	// PhaseExec is StartedAt → FinishedAt minus preempted-pause time: the
	// request's own on-core execution time.
	PhaseExec
	// PhasePause is one preempted pause: from the switch away from the paused
	// context until it holds the core again. Recorded once per pause.
	PhasePause
	// PhasePauseTotal is the sum of a request's pauses, recorded once per
	// request that was paused at least once (unpaused requests do not record,
	// so the count is "requests ever paused").
	PhasePauseTotal
	// PhaseResume is the hand-back latency: from the preemptive context's
	// decision to return the core until the paused context actually runs.
	PhaseResume
	// PhaseStallOverlap is the total time a request spent parked at simulated
	// stall boundaries (YieldStall) while sibling context slots ran on the
	// same core — the interleaved portion of its lifetime. Recorded once per
	// request that stall-yielded at least once; zero-context-switch requests
	// do not record, so the count is "requests ever interleaved".
	PhaseStallOverlap
	// PhaseWALWait is the group-commit wait: a leader's batch write+sync, or
	// a follower's park until its batch is durable.
	PhaseWALWait
	// PhaseTotal is EnqueuedAt → FinishedAt: the end-to-end commit latency the
	// paper's figures report.
	PhaseTotal
	NumPhases
)

// phaseNames are the stable exposition names (JSON tags, Prometheus labels).
var phaseNames = [NumPhases]string{
	"queue_wait", "exec", "pause", "pause_total", "resume", "stall_overlap", "wal_wait", "total",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// NumLevels bounds the leveled-scheduler (mlsched) per-level histograms; it
// matches mlsched.MaxLevels without importing the package (metrics sits below
// every scheduler in the dependency order).
const NumLevels = 16

// Registry is the always-on observability surface shared by the scheduler and
// the engine: one ConcurrentHistogram per (class, phase) plus one for uintr
// delivery latency (SendUIPI post → handler recognition). A nil *Registry is
// inert, so instrumented code never branches on configuration.
type Registry struct {
	hists    [NumClasses][NumPhases]ConcurrentHistogram
	delivery ConcurrentHistogram

	// levels[l] is the scheduling latency (enqueue → first execution) of
	// level-l requests in a leveled (mlsched) scheduler; empty unless an
	// mlsched instance was wired to this registry.
	levels [NumLevels]ConcurrentHistogram

	// slo[c] is the per-class end-to-end latency SLO target in nanoseconds
	// (0 = none); sloBreaches[c] counts PhaseTotal observations that exceeded
	// it. breachFn, when installed, is invoked inline (on the recording
	// goroutine) for every breach — it must be lock-free and non-blocking,
	// e.g. a non-blocking channel send waking a flight recorder.
	slo         [NumClasses]atomic.Int64
	sloBreaches [NumClasses]atomic.Uint64
	breachFn    atomic.Pointer[func(Class, int64)]

	// Interleaving counters (K-way context multiplexing): stallYields counts
	// rotations taken at a YieldStall boundary (a low-priority context parked
	// mid-transaction in favor of a sibling slot); interleaveSwitches counts
	// switches that resumed a stall-parked transaction. Two-context cores
	// never rotate, so both stay zero at the default configuration.
	stallYields        atomic.Uint64
	interleaveSwitches atomic.Uint64

	// Front-end counters: hot-key cache traffic (hits served without entering
	// a scheduler core, misses that fell through to MVCC, entries invalidated
	// by commits) and connections/requests shed by edge admission. connsOpen
	// is a gauge — the number of currently open server connections.
	cacheHits          atomic.Uint64
	cacheMisses        atomic.Uint64
	cacheInvalidations atomic.Uint64
	connsShed          atomic.Uint64
	connsOpen          atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Observe records one latency sample for (class, phase). hint spreads
// concurrent writers across stripes (pass the worker/core id). End-to-end
// (PhaseTotal) samples additionally feed the SLO breach detector: an atomic
// load against the class watermark, and on breach a counter bump plus the
// installed hook — nothing on the non-breach path beyond the one load.
func (r *Registry) Observe(c Class, p Phase, hint int, v int64) {
	if r == nil {
		return
	}
	r.hists[c][p].Record(hint, v)
	if p == PhaseTotal {
		if slo := r.slo[c].Load(); slo > 0 && v > slo {
			r.sloBreaches[c].Add(1)
			if fn := r.breachFn.Load(); fn != nil {
				(*fn)(c, v)
			}
		}
	}
}

// SetSLO installs the per-class end-to-end latency target (nanoseconds; 0
// clears it). Safe at any time.
func (r *Registry) SetSLO(c Class, nanos int64) {
	if r == nil {
		return
	}
	r.slo[c].Store(nanos)
}

// SLO returns the class's end-to-end latency target (0 = none).
func (r *Registry) SLO(c Class) int64 {
	if r == nil {
		return 0
	}
	return r.slo[c].Load()
}

// SetBreachHook installs fn to run inline on every SLO breach (nil clears).
// fn must be lock-free and non-blocking: it runs on the worker goroutine that
// recorded the sample.
func (r *Registry) SetBreachHook(fn func(Class, int64)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.breachFn.Store(nil)
		return
	}
	r.breachFn.Store(&fn)
}

// SLOBreaches returns the class's cumulative breach count.
func (r *Registry) SLOBreaches(c Class) uint64 {
	if r == nil {
		return 0
	}
	return r.sloBreaches[c].Load()
}

// ObserveLevel records one leveled-scheduler scheduling-latency sample for
// level l (out-of-range levels are dropped).
func (r *Registry) ObserveLevel(l, hint int, v int64) {
	if r == nil || l < 0 || l >= NumLevels {
		return
	}
	r.levels[l].Record(hint, v)
}

// Level returns the histogram for leveled-scheduler level l (nil when out of
// range).
func (r *Registry) Level(l int) *ConcurrentHistogram {
	if r == nil || l < 0 || l >= NumLevels {
		return nil
	}
	return &r.levels[l]
}

// ObserveDelivery records one uintr delivery-latency sample.
func (r *Registry) ObserveDelivery(hint int, v int64) {
	if r == nil {
		return
	}
	r.delivery.Record(hint, v)
}

// IncStallYield counts one stall-boundary rotation away from a context.
func (r *Registry) IncStallYield() {
	if r == nil {
		return
	}
	r.stallYields.Add(1)
}

// IncInterleaveSwitch counts one switch into a stall-parked context.
func (r *Registry) IncInterleaveSwitch() {
	if r == nil {
		return
	}
	r.interleaveSwitches.Add(1)
}

// StallYields returns the stall-boundary rotation count.
func (r *Registry) StallYields() uint64 {
	if r == nil {
		return 0
	}
	return r.stallYields.Load()
}

// InterleaveSwitches returns the resumed-interleaved-transaction count.
func (r *Registry) InterleaveSwitches() uint64 {
	if r == nil {
		return 0
	}
	return r.interleaveSwitches.Load()
}

// IncCacheHits counts one hot-key cache hit.
func (r *Registry) IncCacheHits() {
	if r == nil {
		return
	}
	r.cacheHits.Add(1)
}

// IncCacheMisses counts one hot-key cache miss.
func (r *Registry) IncCacheMisses() {
	if r == nil {
		return
	}
	r.cacheMisses.Add(1)
}

// IncCacheInvalidations counts one cache entry removed by a committing writer.
func (r *Registry) IncCacheInvalidations() {
	if r == nil {
		return
	}
	r.cacheInvalidations.Add(1)
}

// IncConnsShed counts one connection or request shed by edge admission.
func (r *Registry) IncConnsShed() {
	if r == nil {
		return
	}
	r.connsShed.Add(1)
}

// AddConnsOpen moves the open-connections gauge by delta (+1 accept, -1 close).
func (r *Registry) AddConnsOpen(delta int64) {
	if r == nil {
		return
	}
	r.connsOpen.Add(delta)
}

// CacheHits returns the hot-key cache hit count.
func (r *Registry) CacheHits() uint64 {
	if r == nil {
		return 0
	}
	return r.cacheHits.Load()
}

// CacheMisses returns the hot-key cache miss count.
func (r *Registry) CacheMisses() uint64 {
	if r == nil {
		return 0
	}
	return r.cacheMisses.Load()
}

// CacheInvalidations returns the commit-time cache invalidation count.
func (r *Registry) CacheInvalidations() uint64 {
	if r == nil {
		return 0
	}
	return r.cacheInvalidations.Load()
}

// ConnsShed returns the edge-admission shed count.
func (r *Registry) ConnsShed() uint64 {
	if r == nil {
		return 0
	}
	return r.connsShed.Load()
}

// ConnsOpen returns the open-connections gauge.
func (r *Registry) ConnsOpen() int64 {
	if r == nil {
		return 0
	}
	return r.connsOpen.Load()
}

// Phase returns the histogram for (class, phase) — snapshot/inspection use.
func (r *Registry) Phase(c Class, p Phase) *ConcurrentHistogram {
	if r == nil {
		return nil
	}
	return &r.hists[c][p]
}

// Delivery returns the uintr delivery-latency histogram.
func (r *Registry) Delivery() *ConcurrentHistogram {
	if r == nil {
		return nil
	}
	return &r.delivery
}

// PhaseSummaries is the per-class latency decomposition: one Summary per
// phase, in nanoseconds.
type PhaseSummaries struct {
	QueueWait    Summary `json:"queue_wait"`
	Exec         Summary `json:"exec"`
	Pause        Summary `json:"pause"`
	PauseTotal   Summary `json:"pause_total"`
	Resume       Summary `json:"resume"`
	StallOverlap Summary `json:"stall_overlap"`
	WALWait      Summary `json:"wal_wait"`
	Total        Summary `json:"total"`
}

// byPhase exposes the summaries positionally, mirroring the Phase constants.
func (ps *PhaseSummaries) byPhase() [NumPhases]*Summary {
	return [NumPhases]*Summary{
		&ps.QueueWait, &ps.Exec, &ps.Pause, &ps.PauseTotal,
		&ps.Resume, &ps.StallOverlap, &ps.WALWait, &ps.Total,
	}
}

// RegistrySnapshot is a point-in-time structured view of a Registry,
// JSON-serializable (preemptdb.DB.Metrics, the server Metrics frame, and the
// /metrics.json HTTP endpoint all expose exactly this shape).
type RegistrySnapshot struct {
	Hi            PhaseSummaries `json:"hi"`
	Lo            PhaseSummaries `json:"lo"`
	UintrDelivery Summary        `json:"uintr_delivery"`
	// StallYields / InterleaveSwitches are the K-way context-multiplexing
	// counters: rotations away from a stalling context, and switches that
	// resumed a stall-parked one. Zero on two-context (default) cores.
	StallYields        uint64 `json:"stall_yields"`
	InterleaveSwitches uint64 `json:"interleave_switches"`
	// Front-end counters: hot-key cache traffic and edge-admission shedding.
	// ConnsOpen is a point-in-time gauge, not a counter.
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	ConnsShed          uint64 `json:"conns_shed"`
	ConnsOpen          int64  `json:"conns_open"`
	// SLOBreaches count end-to-end (PhaseTotal) samples that exceeded the
	// per-class SLO watermark; zero when no SLO is configured.
	SLOBreachesHi uint64 `json:"slo_breaches_hi"`
	SLOBreachesLo uint64 `json:"slo_breaches_lo"`
	// LevelSchedLatency is the leveled scheduler's (mlsched) per-level
	// scheduling-latency decomposition; only levels that recorded samples
	// appear, so the field is absent unless an mlsched is wired in.
	LevelSchedLatency []LevelSummary `json:"level_sched_latency,omitempty"`
}

// LevelSummary is one mlsched level's scheduling-latency summary.
type LevelSummary struct {
	Level        int     `json:"level"`
	SchedLatency Summary `json:"sched_latency"`
}

// Snapshot summarizes every (class, phase) histogram plus delivery latency.
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	for _, cp := range []struct {
		c  Class
		ps *PhaseSummaries
	}{{ClassHi, &snap.Hi}, {ClassLo, &snap.Lo}} {
		dst := cp.ps.byPhase()
		for p := Phase(0); p < NumPhases; p++ {
			*dst[p] = r.hists[cp.c][p].Summarize()
		}
	}
	snap.UintrDelivery = r.delivery.Summarize()
	snap.StallYields = r.stallYields.Load()
	snap.InterleaveSwitches = r.interleaveSwitches.Load()
	snap.CacheHits = r.cacheHits.Load()
	snap.CacheMisses = r.cacheMisses.Load()
	snap.CacheInvalidations = r.cacheInvalidations.Load()
	snap.ConnsShed = r.connsShed.Load()
	snap.ConnsOpen = r.connsOpen.Load()
	snap.SLOBreachesHi = r.sloBreaches[ClassHi].Load()
	snap.SLOBreachesLo = r.sloBreaches[ClassLo].Load()
	for l := 0; l < NumLevels; l++ {
		if sum := r.levels[l].Summarize(); sum.Count > 0 {
			snap.LevelSchedLatency = append(snap.LevelSchedLatency, LevelSummary{Level: l, SchedLatency: sum})
		}
	}
	return snap
}

// MergedSnapshot summarizes several registries (one per shard) as if every
// sample had been recorded into one. The merge is exact: bucket counts, sums,
// and extrema add directly (Histogram.Merge), so percentiles of the merged
// view carry the same ~1.5% bucket-resolution error as a single registry's —
// no averaging-of-percentiles distortion. Nil registries are skipped; each
// histogram is snapshotted exactly once per call.
func MergedSnapshot(regs []*Registry) RegistrySnapshot {
	var snap RegistrySnapshot
	merge := func(pick func(*Registry) *ConcurrentHistogram) Summary {
		var acc Histogram
		for _, r := range regs {
			if r == nil {
				continue
			}
			h := pick(r).Snapshot()
			acc.Merge(&h)
		}
		return acc.Summarize()
	}
	for _, cp := range []struct {
		c  Class
		ps *PhaseSummaries
	}{{ClassHi, &snap.Hi}, {ClassLo, &snap.Lo}} {
		dst := cp.ps.byPhase()
		for p := Phase(0); p < NumPhases; p++ {
			c, p := cp.c, p
			*dst[p] = merge(func(r *Registry) *ConcurrentHistogram { return r.Phase(c, p) })
		}
	}
	snap.UintrDelivery = merge(func(r *Registry) *ConcurrentHistogram { return r.Delivery() })
	for l := 0; l < NumLevels; l++ {
		l := l
		if sum := merge(func(r *Registry) *ConcurrentHistogram { return r.Level(l) }); sum.Count > 0 {
			snap.LevelSchedLatency = append(snap.LevelSchedLatency, LevelSummary{Level: l, SchedLatency: sum})
		}
	}
	for _, r := range regs {
		snap.StallYields += r.StallYields()
		snap.InterleaveSwitches += r.InterleaveSwitches()
		snap.CacheHits += r.CacheHits()
		snap.CacheMisses += r.CacheMisses()
		snap.CacheInvalidations += r.CacheInvalidations()
		snap.ConnsShed += r.ConnsShed()
		snap.ConnsOpen += r.ConnsOpen()
		snap.SLOBreachesHi += r.SLOBreaches(ClassHi)
		snap.SLOBreachesLo += r.SLOBreaches(ClassLo)
	}
	return snap
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: one summary-style family for the per-phase latencies (labelled by
// class and phase) and one for uintr delivery latency, all in nanoseconds.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP preemptdb_phase_latency_nanoseconds Per-phase transaction latency by priority class.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_phase_latency_nanoseconds summary\n")
	for _, cp := range []struct {
		c  Class
		ps PhaseSummaries
	}{{ClassHi, s.Hi}, {ClassLo, s.Lo}} {
		src := cp.ps.byPhase()
		for p := Phase(0); p < NumPhases; p++ {
			writePromSummary(w, "preemptdb_phase_latency_nanoseconds",
				fmt.Sprintf(`class=%q,phase=%q`, cp.c.String(), p.String()), *src[p])
		}
	}
	fmt.Fprintf(w, "# HELP preemptdb_uintr_delivery_nanoseconds Userspace-interrupt latency from SendUIPI post to handler recognition.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_uintr_delivery_nanoseconds summary\n")
	writePromSummary(w, "preemptdb_uintr_delivery_nanoseconds", "", s.UintrDelivery)
	fmt.Fprintf(w, "# HELP preemptdb_stall_yields_total Stall-boundary rotations away from a low-priority context (K-way interleaving).\n")
	fmt.Fprintf(w, "# TYPE preemptdb_stall_yields_total counter\n")
	fmt.Fprintf(w, "preemptdb_stall_yields_total %d\n", s.StallYields)
	fmt.Fprintf(w, "# HELP preemptdb_interleave_switches_total Switches that resumed a stall-parked transaction (K-way interleaving).\n")
	fmt.Fprintf(w, "# TYPE preemptdb_interleave_switches_total counter\n")
	fmt.Fprintf(w, "preemptdb_interleave_switches_total %d\n", s.InterleaveSwitches)
	fmt.Fprintf(w, "# HELP preemptdb_cache_hits_total Hot-key cache hits served without entering a scheduler core.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_cache_hits_total counter\n")
	fmt.Fprintf(w, "preemptdb_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintf(w, "# HELP preemptdb_cache_misses_total Hot-key cache misses that fell through to the MVCC read path.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_cache_misses_total counter\n")
	fmt.Fprintf(w, "preemptdb_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintf(w, "# HELP preemptdb_cache_invalidations_total Cache entries removed by committing writers.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_cache_invalidations_total counter\n")
	fmt.Fprintf(w, "preemptdb_cache_invalidations_total %d\n", s.CacheInvalidations)
	fmt.Fprintf(w, "# HELP preemptdb_conns_shed_total Connections and requests shed by edge admission.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_conns_shed_total counter\n")
	fmt.Fprintf(w, "preemptdb_conns_shed_total %d\n", s.ConnsShed)
	fmt.Fprintf(w, "# HELP preemptdb_conns_open Currently open server connections across connection shards.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_conns_open gauge\n")
	fmt.Fprintf(w, "preemptdb_conns_open %d\n", s.ConnsOpen)
	fmt.Fprintf(w, "# HELP preemptdb_slo_breaches_total End-to-end latency samples over the per-class SLO watermark.\n")
	fmt.Fprintf(w, "# TYPE preemptdb_slo_breaches_total counter\n")
	fmt.Fprintf(w, "preemptdb_slo_breaches_total{class=\"hi\"} %d\n", s.SLOBreachesHi)
	fmt.Fprintf(w, "preemptdb_slo_breaches_total{class=\"lo\"} %d\n", s.SLOBreachesLo)
	if len(s.LevelSchedLatency) > 0 {
		fmt.Fprintf(w, "# HELP preemptdb_level_sched_latency_nanoseconds Leveled-scheduler scheduling latency by level.\n")
		fmt.Fprintf(w, "# TYPE preemptdb_level_sched_latency_nanoseconds summary\n")
		for _, ls := range s.LevelSchedLatency {
			writePromSummary(w, "preemptdb_level_sched_latency_nanoseconds",
				fmt.Sprintf(`level="%d"`, ls.Level), ls.SchedLatency)
		}
	}
}

func writePromSummary(w io.Writer, name, labels string, sum Summary) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range []struct {
		q string
		v int64
	}{{"0.5", sum.P50}, {"0.9", sum.P90}, {"0.99", sum.P99}, {"0.999", sum.P999}} {
		fmt.Fprintf(w, "%s{%s%squantile=%q} %d\n", name, labels, sep, q.q, q.v)
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, sum.Mean*float64(sum.Count))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, sum.Count)
}
