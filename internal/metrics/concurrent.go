package metrics

import (
	"math"
	"sync/atomic"
)

// numStripes is the stripe count of a ConcurrentHistogram (power of two).
// Writers spread across stripes by a caller-supplied hint (worker/core id),
// so concurrent recorders touch disjoint cache lines in the common case.
const numStripes = 8

// stripe is one writer lane: the same log-bucketed layout as Histogram, with
// every counter atomic. min is stored biased by +1 so the zero value means
// "unset" (samples are non-negative, so v+1 >= 1 always).
type stripe struct {
	counts [numBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	minP   atomic.Int64 // min+1; 0 = no samples yet
	max    atomic.Int64
}

func (s *stripe) record(v int64) {
	s.counts[bucketIndex(v)].Add(1)
	s.total.Add(1)
	s.sum.Add(v)
	for {
		old := s.minP.Load()
		if old != 0 && old <= v+1 {
			break
		}
		if s.minP.CompareAndSwap(old, v+1) {
			break
		}
	}
	for {
		old := s.max.Load()
		if old >= v {
			break
		}
		if s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ConcurrentHistogram is a striped, mergeable variant of Histogram that is
// safe for concurrent writers and concurrent snapshotting, cheap enough to
// stay on during benchmarks (a record is a handful of uncontended atomic adds;
// the min/max checks are plain loads in the steady state). The zero value is
// ready to use.
//
// Unlike Histogram it does not maintain an exact log-sum: Snapshot derives the
// geometric mean from bucket midpoints, which inherits the histogram's ~1.5%
// worst-case relative error. Everything else (count, sum, min, max,
// percentiles) is exact modulo bucket resolution, as in Histogram.
type ConcurrentHistogram struct {
	stripes [numStripes]stripe
}

// Record adds one sample. hint selects the writer's stripe (any int; callers
// pass a worker or core id so concurrent writers take disjoint lanes — an
// arbitrary value is correct, just possibly contended).
func (h *ConcurrentHistogram) Record(hint int, v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.stripes[uint(hint)%numStripes].record(v)
}

// Count returns the total number of recorded samples across all stripes.
func (h *ConcurrentHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].total.Load()
	}
	return n
}

// Snapshot merges every stripe into a plain Histogram. Concurrent recording
// may continue; the result is a consistent-enough point-in-time view (a
// sample racing the snapshot is either wholly included or wholly excluded per
// counter, so derived statistics can be off by the samples in flight).
func (h *ConcurrentHistogram) Snapshot() Histogram {
	var out Histogram
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		t := s.total.Load()
		if t == 0 {
			continue
		}
		for b := range s.counts {
			out.counts[b] += s.counts[b].Load()
		}
		if mp := s.minP.Load(); mp != 0 {
			if out.total == 0 || mp-1 < out.min {
				out.min = mp - 1
			}
		}
		if m := s.max.Load(); m > out.max {
			out.max = m
		}
		out.total += t
		out.sum += float64(s.sum.Load())
	}
	// Geomean support: reconstruct the log-sum from bucket midpoints.
	for b, c := range out.counts {
		if c == 0 {
			continue
		}
		if v := value(b); v > 0 {
			out.logSum += float64(c) * math.Log(float64(v))
		}
	}
	return out
}

// Summarize is shorthand for Snapshot().Summarize().
func (h *ConcurrentHistogram) Summarize() Summary {
	s := h.Snapshot()
	return s.Summarize()
}

// Reset discards all samples. Not atomic with respect to concurrent writers:
// samples recorded during the reset may survive or vanish.
func (h *ConcurrentHistogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.counts {
			s.counts[b].Store(0)
		}
		s.total.Store(0)
		s.sum.Store(0)
		s.minP.Store(0)
		s.max.Store(0)
	}
}
