package engine

import (
	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

// Two-phase commit participant methods. A cross-shard transaction's
// per-shard participants each PrepareCommit under a shared global id (gid),
// the coordinator durably records the commit decision, and every participant
// then ResolveCommits (or ResolveAborts when any prepare failed). The
// prepare stages the participant's redo as a prepare frame through the same
// group-commit pipeline as ordinary commits; the versions stay in-flight —
// invisible to readers, blocking conflicting writers — until resolution.

// PrepareCommit runs the first phase of a cross-shard commit on this
// participant: validation, staging the redo as a prepare frame under gid,
// and waiting for the frame's batch I/O. On success the transaction remains
// open and held; finish it with exactly one of ResolveCommit or
// ResolveAbort. On any failure the transaction is fully aborted (nothing was
// published) and the error returned — conflict errors satisfy IsConflict as
// usual.
func (t *Txn) PrepareCommit(gid uint64) error {
	t0 := clock.Nanos()
	if t.readonly {
		return ErrTxnReadOnly
	}
	if t.done {
		return mvcc.ErrTxnDone
	}
	if t.prepGID != 0 {
		return mvcc.ErrAlreadyPrepared
	}
	if err := t.ctx.Err(); err != nil {
		t.Abort()
		return err
	}
	// Register the checkpoint clamp BEFORE staging: the recorded LSN bound
	// must never land past the prepare frame, or a concurrent disk
	// checkpoint could truncate the in-doubt redo's only durable copy.
	t.eng.registerPrepare(gid)
	t.staged, t.leader = false, false
	// Same 1-in-2^walSampleShift WAL-wait probe as Commit: the prepare frame
	// rides the ordinary group-commit pipeline, so its batch wait belongs in
	// the same PhaseWALWait distribution and trace span.
	t.walTick++
	sampled := t.walTick&walSampleMask == 0 || t.eng.traceAll
	var walNs int64
	var mvccErr, ioErr error
	stage := func(cts uint64) error {
		if t.logBuf.Len() == 0 {
			return nil // read-only participant: validation only
		}
		leader, err := t.eng.log.StagePrepare(gid, cts, t.logBuf)
		if err != nil {
			return err
		}
		t.leader, t.staged = leader, true
		return nil
	}
	// Same latch discipline as Commit (paper §4.4): validation + staging and
	// any leader I/O inside one non-preemptible region, follower parking
	// outside it with no latch held. A writing participant also opens the
	// hot-key cache's write window here — the in-doubt versions block
	// conflicting writers, and the open window blocks colliding cache fills
	// for the same span, until ResolveCommit/ResolveAbort closes it.
	invalidate := t.eng.cache != nil && t.logBuf.Len() > 0
	pcontext.NonPreemptible(t.ctx, func() {
		if invalidate {
			t.eng.cache.BeginWrites(t.logBuf)
			t.cacheHeld = true
		}
		_, mvccErr = t.inner.Prepare(stage)
		if t.leader {
			if sampled {
				w0 := clock.Nanos()
				_, ioErr = t.eng.log.LeaderFinish(t.logBuf)
				walNs = clock.Nanos() - w0
			} else {
				_, ioErr = t.eng.log.LeaderFinish(t.logBuf)
			}
		}
	})
	if t.staged && !t.leader {
		t.ctx.Poll()
		if sampled {
			w0 := clock.Nanos()
			_, ioErr = t.eng.log.FollowerWait(t.logBuf)
			walNs = clock.Nanos() - w0
		} else {
			_, ioErr = t.eng.log.FollowerWait(t.logBuf)
		}
	}
	closeWindow := func() {
		if t.cacheHeld {
			t.cacheHeld = false
			t.eng.cache.EndWrites(t.logBuf)
		}
	}
	if mvccErr != nil {
		// mvcc.Prepare already aborted the transaction; finish the engine
		// teardown.
		closeWindow()
		t.eng.unregisterPrepare(gid)
		t.done = true
		t.logBuf.Reset()
		t.inner.Release()
		t.releaseGuest()
		t.eng.aborts.Add(1)
		return mvccErr
	}
	if ioErr != nil {
		// The prepare frame never became durable, so the prepare never
		// happened; roll the hold back.
		t.eng.unregisterPrepare(gid)
		t.done = true
		pcontext.NonPreemptible(t.ctx, func() { t.inner.Abort() })
		closeWindow()
		t.logBuf.Reset()
		t.inner.Release()
		t.releaseGuest()
		t.eng.aborts.Add(1)
		return ioErr
	}
	if sampled && t.staged {
		class := metrics.ClassLo
		if t.ctx != nil && t.ctx.CLS().HighPrio {
			class = metrics.ClassHi
		}
		t.eng.metrics.Observe(class, metrics.PhaseWALWait, t.hint, walNs)
		if t.eng.traceSpans {
			var lead uint8
			if t.leader {
				lead = 1
			}
			t.ctx.TraceEvent(pcontext.EvWALWait, pcontext.SpanAux(walNs, lead))
		}
	}
	t.prepGID = gid
	if t.eng.traceSpans {
		t.ctx.TraceEvent(pcontext.EvPrepare, pcontext.SpanAux(clock.Nanos()-t0, t.eng.shardID))
	}
	return nil
}

// ResolveCommit publishes a prepared participant after the coordinator's
// decision record is durable. The in-memory commit is unconditional — the
// decision already binds the outcome, and recovery would commit this
// participant from its prepare frame plus the decision — so like Commit, a
// non-nil return after a successful prepare means "committed here, the
// resolution record is not durable", which only matters if the WAL has
// failed (the database degrades to read-only then anyway).
func (t *Txn) ResolveCommit() error {
	t0 := clock.Nanos()
	if t.done {
		return mvcc.ErrTxnDone
	}
	if t.prepGID == 0 {
		return mvcc.ErrNotPrepared
	}
	gid := t.prepGID
	t.prepGID = 0
	t.done = true
	t.staged, t.leader = false, false
	var mvccErr, ioErr error
	// The resolution record: an ordinary committed frame whose id is the
	// gid. Replay matches it against the prepare frame to take the
	// transaction out of doubt, and applies it (not the prepare) as the
	// authoritative redo.
	stage := func(cts uint64) error {
		if t.logBuf.Len() == 0 {
			return nil
		}
		leader, err := t.eng.log.Stage(gid, cts, t.logBuf)
		if err != nil {
			return err
		}
		t.leader, t.staged = leader, true
		return nil
	}
	pcontext.NonPreemptible(t.ctx, func() {
		_, mvccErr = t.inner.CommitPrepared(stage)
		if t.cacheHeld {
			// Publication just happened inside CommitPrepared (or the failed
			// resolve aborted): close the write window opened at prepare.
			t.cacheHeld = false
			t.eng.cache.EndWrites(t.logBuf)
		}
		if t.staged {
			t.eng.log.Published()
		}
		if t.leader {
			_, ioErr = t.eng.log.LeaderFinish(t.logBuf)
		}
	})
	if t.staged && !t.leader {
		t.ctx.Poll()
		_, ioErr = t.eng.log.FollowerWait(t.logBuf)
	}
	t.eng.unregisterPrepare(gid)
	if t.eng.traceSpans && mvccErr == nil && ioErr == nil {
		t.ctx.TraceEvent(pcontext.EvResolve, pcontext.SpanAux(clock.Nanos()-t0, t.eng.shardID))
	}
	t.logBuf.Reset()
	t.inner.Release()
	t.releaseGuest()
	t.eng.commits.Add(1)
	if mvccErr != nil {
		return mvccErr
	}
	return ioErr
}

// ResolveAbort rolls a prepared participant back: its versions become
// invisible and no resolution record is written — under presumed abort, the
// absence of a coordinator decision is the abort, and recovery discards the
// prepare frame. Also safe on a never-prepared or already-finished
// transaction (it degrades to Abort's no-op).
func (t *Txn) ResolveAbort() { t.Abort() }
