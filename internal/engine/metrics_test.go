package engine

import (
	"testing"

	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
)

// TestCommitRecordsWALWait: the sampled WAL-wait probe must land
// observations in the engine's registry once enough commits have passed the
// 1-in-2^walSampleShift gate.
func TestCommitRecordsWALWait(t *testing.T) {
	e := New(Config{})
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	const commits = 4 << walSampleShift
	for i := 0; i < commits; i++ {
		tx := e.Begin(ctx)
		if err := tx.Put(tbl, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	n := e.Metrics().Phase(metrics.ClassLo, metrics.PhaseWALWait).Count()
	if want := uint64(commits >> walSampleShift); n != want {
		t.Fatalf("wal_wait samples = %d, want %d (1 in %d of %d commits)",
			n, want, 1<<walSampleShift, commits)
	}
}

// TestCommitClassFromCLS: a context flagged high-priority (as the scheduler
// does around each request) must have its WAL wait attributed to the hi class.
func TestCommitClassFromCLS(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Config{Metrics: reg})
	if e.Metrics() != reg {
		t.Fatal("engine must adopt the provided registry")
	}
	ctx := pcontext.Detached()
	ctx.CLS().HighPrio = true
	tbl := e.CreateTable("t")
	for i := 0; i < 1<<walSampleShift; i++ {
		tx := e.Begin(ctx)
		if err := tx.Put(tbl, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if n := reg.Phase(metrics.ClassHi, metrics.PhaseWALWait).Count(); n != 1 {
		t.Fatalf("hi wal_wait samples = %d, want 1", n)
	}
	if n := reg.Phase(metrics.ClassLo, metrics.PhaseWALWait).Count(); n != 0 {
		t.Fatalf("lo wal_wait samples = %d, want 0", n)
	}
}

// TestReadOnlyCommitNotSampled: commits that staged nothing have no WAL wait
// and must not pollute the distribution with zeros.
func TestReadOnlyCommitNotSampled(t *testing.T) {
	e := New(Config{})
	ctx := pcontext.Detached()
	for i := 0; i < 4<<walSampleShift; i++ {
		tx := e.Begin(ctx)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Metrics().Phase(metrics.ClassLo, metrics.PhaseWALWait).Count(); n != 0 {
		t.Fatalf("read-only commits recorded %d wal_wait samples", n)
	}
}

// TestCommitAllocsWithMetrics guards the instrumented steady-state commit
// path: with metrics always on, the pooled Update+Commit cycle must stay
// allocation-free (the acceptance bar for BenchmarkCommitSI).
func TestCommitAllocsWithMetrics(t *testing.T) {
	e := New(Config{})
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key, val := []byte("key"), []byte("value")
	{
		tx := e.Begin(ctx)
		if err := tx.Put(tbl, key, val); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit := func() {
		tx := e.Begin(ctx)
		if err := tx.Update(tbl, key, val); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		commit() // warm the pool, the version chain, and the WAL batch buffer
	}
	if avg := testing.AllocsPerRun(256, commit); avg >= 1 {
		t.Fatalf("instrumented commit allocates %.2f allocs/op, want 0", avg)
	}
}
