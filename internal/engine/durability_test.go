package engine

import (
	"bytes"
	"errors"
	"testing"

	"preemptdb/internal/iofault"
	"preemptdb/internal/wal"
)

// TestEngineReadOnlyAfterWALFailure drives the degradation contract: after
// the first sync failure the engine keeps serving reads off the in-memory
// versions, every write path fails fast with the latched ErrWALFailed, and
// the failed commit's effects never became visible.
func TestEngineReadOnlyAfterWALFailure(t *testing.T) {
	sink := iofault.NewSink()
	e := New(Config{LogSink: sink, SyncEachCommit: true})
	defer e.Close()
	tab := e.CreateTable("t")

	tx := e.Begin(nil)
	if err := tx.Insert(tab, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	sink.FailSync(2, nil) // the next batch's sync
	tx2 := e.Begin(nil)
	if err := tx2.Insert(tab, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, wal.ErrWALFailed) {
		t.Fatalf("commit over failed sync: %v, want ErrWALFailed", err)
	}
	if e.WALErr() == nil {
		t.Fatal("WALErr not latched")
	}

	// The failing batch's transaction had already published at stage time
	// (pipelined group commit), so it stays visible in memory even though its
	// commit reported the error — the documented commit-uncertain window. It
	// was never synced, so it cannot survive a restart.
	r := e.Begin(nil)
	if v, err := r.Get(tab, []byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("failing batch's row should stay visible in memory: %q %v", v, err)
	}
	// Reads keep working.
	if v, err := r.Get(tab, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("read after WAL failure: %q %v", v, err)
	}
	n := 0
	if err := r.Scan(tab, nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan after WAL failure saw %d rows", n)
	}
	// Only acked bytes are durable: recovery from the sink's durable prefix
	// sees exactly the first commit.
	e2 := New(Config{})
	tab2 := e2.CreateTable("t")
	res, err := e2.Recover(bytes.NewReader(sink.Durable()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 1 {
		t.Fatalf("durable prefix replayed %d txns, want 1", res.Txns)
	}
	r2 := e2.Begin(nil)
	defer r2.Abort()
	if _, err := r2.Get(tab2, []byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unsynced commit survived recovery: %v", err)
	}
	// A read-only transaction still commits (nothing to log).
	if err := r.Commit(); err != nil {
		t.Fatalf("read-only commit on failed log: %v", err)
	}

	// Every write op is refused up front with the typed error.
	w := e.Begin(nil)
	defer w.Abort()
	if err := w.Insert(tab, []byte("c"), []byte("3")); !errors.Is(err, wal.ErrWALFailed) {
		t.Fatalf("Insert: %v", err)
	}
	if err := w.Update(tab, []byte("a"), []byte("9")); !errors.Is(err, wal.ErrWALFailed) {
		t.Fatalf("Update: %v", err)
	}
	if err := w.Put(tab, []byte("a"), []byte("9")); !errors.Is(err, wal.ErrWALFailed) {
		t.Fatalf("Put: %v", err)
	}
	if err := w.Delete(tab, []byte("a")); !errors.Is(err, wal.ErrWALFailed) {
		t.Fatalf("Delete: %v", err)
	}
}

// TestRecoverOverlappingLogIsIdempotent replays a log that covers
// transactions already contained in the restored v2 checkpoint — the
// fuzzy-checkpoint recovery shape, where replay starts from the LSN captured
// before the snapshot began. Apply-if-newer must skip the overlap, and a
// second full replay over the recovered state must change nothing.
func TestRecoverOverlappingLogIsIdempotent(t *testing.T) {
	var log bytes.Buffer
	e := New(Config{LogSink: &log})
	tab := e.CreateTable("t")
	commit := func(eng *Engine, key, val string) {
		tx := eng.Begin(nil)
		if err := tx.Put(eng.MustTable("t"), []byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit(e, "a", "1")
	commit(e, "b", "2")

	var ckpt bytes.Buffer
	if err := e.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	commit(e, "a", "3") // after the checkpoint, still in the same log
	if err := e.Log().Flush(); err != nil {
		t.Fatal(err)
	}
	_ = tab

	verify := func(e2 *Engine) {
		t.Helper()
		r := e2.Begin(nil)
		defer r.Abort()
		for key, want := range map[string]string{"a": "3", "b": "2"} {
			v, err := r.Get(e2.MustTable("t"), []byte(key))
			if err != nil || string(v) != want {
				t.Fatalf("recovered %s = %q %v, want %q", key, v, err, want)
			}
		}
	}

	// Restore the checkpoint, then replay the WHOLE log — txns 1 and 2
	// overlap the checkpoint contents.
	e2 := New(Config{})
	e2.CreateTable("t")
	if err := e2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Recover(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 3 || res.Torn || res.Offset != uint64(log.Len()) {
		t.Fatalf("replay result %+v, want 3 txns over %d bytes", res, log.Len())
	}
	verify(e2)

	// Replaying the same stream again must be a no-op (pure overlap).
	if _, err := e2.Recover(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	verify(e2)
}

// TestRecoverReportsTornTail checks the positional contract recovery relies
// on: a log whose final frame was torn by a crash replays its valid prefix
// and reports the resume offset.
func TestRecoverReportsTornTail(t *testing.T) {
	var log bytes.Buffer
	e := New(Config{LogSink: &log})
	e.CreateTable("t")
	tx := e.Begin(nil)
	tx.Put(e.MustTable("t"), []byte("a"), []byte("1"))
	tx.Commit()
	valid := uint64(0)
	e.Log().Flush()
	valid = e.Log().LSN()
	tx2 := e.Begin(nil)
	tx2.Put(e.MustTable("t"), []byte("b"), []byte("2"))
	tx2.Commit()
	e.Log().Flush()

	torn := log.Bytes()[:log.Len()-3]
	e2 := New(Config{})
	e2.CreateTable("t")
	res, err := e2.Recover(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 1 || !res.Torn || res.Offset != valid {
		t.Fatalf("replay result %+v, want torn tail after %d bytes", res, valid)
	}
	r := e2.Begin(nil)
	defer r.Abort()
	if _, err := r.Get(e2.MustTable("t"), []byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn txn visible after recovery: %v", err)
	}
}
