package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"preemptdb/internal/keys"
)

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	e := newEngine()
	users := e.CreateTable("users")
	users.CreateIndex("mirror", func(pk, row []byte) []byte { return append([]byte(nil), pk...) })
	items := e.CreateTable("items")

	tx := e.Begin(nil)
	for i := 0; i < 500; i++ {
		tx.Insert(users, keys.Uint32(nil, uint32(i)), []byte(fmt.Sprintf("user-%d", i)))
	}
	for i := 0; i < 300; i++ {
		tx.Insert(items, keys.Uint32(nil, uint32(i)), []byte(fmt.Sprintf("item-%d", i)))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Delete some rows so tombstones are exercised (deleted rows must not
	// appear in the checkpoint).
	tx2 := e.Begin(nil)
	for i := 0; i < 100; i++ {
		tx2.Delete(users, keys.Uint32(nil, uint32(i)))
	}
	tx2.Commit()

	var ckpt bytes.Buffer
	if err := e.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh engine with the same schema.
	e2 := newEngine()
	users2 := e2.CreateTable("users")
	users2.CreateIndex("mirror", func(pk, row []byte) []byte { return append([]byte(nil), pk...) })
	e2.CreateTable("items")
	if err := e2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}

	r := e2.Begin(nil)
	defer r.Abort()
	n := 0
	r.Scan(users2, nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 400 {
		t.Fatalf("restored users = %d, want 400", n)
	}
	if _, err := r.Get(users2, keys.Uint32(nil, 50)); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted row restored")
	}
	if v, err := r.Get(users2, keys.Uint32(nil, 200)); err != nil || string(v) != "user-200" {
		t.Fatalf("row 200: %q %v", v, err)
	}
	// Secondary index rebuilt.
	n = 0
	r.ScanIndex(users2, "mirror", nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 400 {
		t.Fatalf("restored index rows = %d", n)
	}
	// New writes get timestamps above the checkpoint snapshot.
	w := e2.Begin(nil)
	if err := w.Insert(e2.MustTable("items"), keys.Uint32(nil, 999), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r2 := e2.Begin(nil)
	if v, err := r2.Get(e2.MustTable("items"), keys.Uint32(nil, 999)); err != nil || string(v) != "new" {
		t.Fatalf("post-restore write: %q %v", v, err)
	}
}

func TestCheckpointPlusLogTailRecovery(t *testing.T) {
	// The rotation pattern: checkpoint, switch to a fresh log, keep writing;
	// recovery = restore checkpoint + replay the fresh log only.
	var log1, log2 bytes.Buffer
	e := New(Config{LogSink: &log1})
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	tx.Insert(tab, []byte("a"), []byte("1"))
	tx.Insert(tab, []byte("b"), []byte("2"))
	tx.Commit()

	var ckpt bytes.Buffer
	if err := e.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	// "Rotate": further commits go to log2 (simulated with a second engine
	// restored from the checkpoint, since Manager sinks are fixed at New).
	e2 := New(Config{LogSink: &log2})
	e2.CreateTable("t")
	if err := e2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	tx2 := e2.Begin(nil)
	tx2.Update(e2.MustTable("t"), []byte("a"), []byte("1b"))
	tx2.Insert(e2.MustTable("t"), []byte("c"), []byte("3"))
	tx2.Commit()
	e2.Log().Flush()

	// Crash-recover a third engine from checkpoint + log tail.
	e3 := New(Config{})
	e3.CreateTable("t")
	if err := e3.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Recover(bytes.NewReader(log2.Bytes())); err != nil {
		t.Fatal(err)
	}
	r := e3.Begin(nil)
	defer r.Abort()
	for key, want := range map[string]string{"a": "1b", "b": "2", "c": "3"} {
		v, err := r.Get(e3.MustTable("t"), []byte(key))
		if err != nil || string(v) != want {
			t.Fatalf("%s = %q %v, want %q", key, v, err, want)
		}
	}
}

func TestCheckpointConsistentUnderConcurrentWrites(t *testing.T) {
	// The checkpoint is one snapshot: a counter pair updated atomically must
	// never appear torn in the restored image.
	e := newEngine()
	tab := e.CreateTable("pair")
	setup := e.Begin(nil)
	setup.Insert(tab, []byte("x"), []byte{0})
	setup.Insert(tab, []byte("y"), []byte{0})
	setup.Commit()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := byte(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := e.Begin(nil)
			if tx.Update(tab, []byte("x"), []byte{i}) != nil ||
				tx.Update(tab, []byte("y"), []byte{i}) != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
		}
	}()

	for round := 0; round < 5; round++ {
		var ckpt bytes.Buffer
		if err := e.Checkpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		e2 := newEngine()
		e2.CreateTable("pair")
		if err := e2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
			t.Fatal(err)
		}
		r := e2.Begin(nil)
		x, _ := r.Get(e2.MustTable("pair"), []byte("x"))
		y, _ := r.Get(e2.MustTable("pair"), []byte("y"))
		r.Abort()
		if x[0] != y[0] {
			t.Fatalf("torn checkpoint: x=%d y=%d", x[0], y[0])
		}
	}
	close(stop)
	wg.Wait()
}

func TestRestoreCheckpointErrors(t *testing.T) {
	e := newEngine()
	if err := e.RestoreCheckpoint(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Schema mismatch: checkpoint of table the target lacks.
	src := newEngine()
	src.CreateTable("present")
	tx := src.Begin(nil)
	tx.Insert(src.MustTable("present"), []byte("k"), []byte("v"))
	tx.Commit()
	var ckpt bytes.Buffer
	if err := src.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	empty := newEngine()
	if err := empty.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	// Corrupted row data: flip a byte in the row region.
	data := append([]byte(nil), ckpt.Bytes()...)
	data[len(data)-1] ^= 0xff
	tgt := newEngine()
	tgt.CreateTable("present")
	if err := tgt.RestoreCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption accepted")
	}
}

func TestCheckpointEmptyEngine(t *testing.T) {
	e := newEngine()
	e.CreateTable("empty")
	var ckpt bytes.Buffer
	if err := e.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine()
	e2.CreateTable("empty")
	if err := e2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
}
