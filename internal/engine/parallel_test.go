package engine

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"preemptdb/internal/keys"
	"preemptdb/internal/pcontext"
)

// goSpawner returns a SpawnFunc running helper tasks on plain goroutines
// with detached contexts — the scheduler-free harness for operator tests —
// plus a wait func that joins the helpers and detaches their contexts.
func goSpawner(e *Engine) (SpawnFunc, func()) {
	var wg sync.WaitGroup
	spawn := func(fn func(ctx *pcontext.Context)) bool {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := pcontext.Detached()
			defer e.DetachContext(ctx)
			fn(ctx)
		}()
		return true
	}
	return spawn, wg.Wait
}

// loadRows fills table with n rows key(i) -> uint64(i) and returns the sum.
func loadSumRows(t *testing.T, e *Engine, tab *Table, n int) uint64 {
	t.Helper()
	var total uint64
	tx := e.Begin(nil)
	for i := 0; i < n; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(i))
		if err := tx.Insert(tab, keys.Uint32(nil, uint32(i)), v[:]); err != nil {
			t.Fatal(err)
		}
		total += uint64(i)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return total
}

type sumPart struct {
	sum   uint64
	count int
}

func sumBody(tab *Table) func(sub *Txn, m Morsel) (sumPart, error) {
	return func(sub *Txn, m Morsel) (sumPart, error) {
		var p sumPart
		err := sub.Scan(tab, m.From, m.To, func(_, v []byte) bool {
			p.sum += binary.LittleEndian.Uint64(v)
			p.count++
			return true
		})
		return p, err
	}
}

func mergeSum(a, b sumPart) sumPart { return sumPart{a.sum + b.sum, a.count + b.count} }

func TestParallelScanInline(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	want := loadSumRows(t, e, tab, 5000)
	tx := e.Begin(nil)
	defer tx.Abort()
	var st ParallelScanStats
	got, err := ParallelScan(tx, tab, nil, nil, ParallelScanConfig{Morsels: 8, Stats: &st},
		sumBody(tab), mergeSum)
	if err != nil {
		t.Fatal(err)
	}
	if got.sum != want || got.count != 5000 {
		t.Fatalf("sum=%d count=%d, want %d/5000", got.sum, got.count, want)
	}
	if st.Helpers != 0 || st.Inline != st.Morsels {
		t.Fatalf("inline run used helpers: %+v", st)
	}
	if st.Morsels < 2 {
		t.Fatalf("tree of 5000 rows partitioned into %d morsels", st.Morsels)
	}
}

func TestParallelScanWithHelpers(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	want := loadSumRows(t, e, tab, 20000)
	spawn, wait := goSpawner(e)
	tx := e.Begin(pcontext.Detached())
	defer tx.Abort()
	var st ParallelScanStats
	got, err := ParallelScan(tx, tab, nil, nil,
		ParallelScanConfig{Morsels: 16, Spawn: spawn, Stats: &st},
		sumBody(tab), mergeSum)
	wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.sum != want || got.count != 20000 {
		t.Fatalf("sum=%d count=%d, want %d/20000", got.sum, got.count, want)
	}
	if st.Morsels < 8 {
		t.Fatalf("only %d morsels", st.Morsels)
	}
	// Slot hygiene: all helper slots must have been unregistered by wait().
	total, free := e.Oracle().SlotCount()
	if total-free < 1 || total-free > 1 {
		t.Fatalf("slot leak: total=%d free=%d", total, free)
	}
}

func TestParallelScanBoundedRange(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	loadSumRows(t, e, tab, 10000)
	spawn, wait := goSpawner(e)
	tx := e.Begin(pcontext.Detached())
	defer tx.Abort()
	got, err := ParallelScan(tx, tab, keys.Uint32(nil, 1000), keys.Uint32(nil, 9000),
		ParallelScanConfig{Morsels: 8, Spawn: spawn}, sumBody(tab), mergeSum)
	wait()
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 1000; i < 9000; i++ {
		want += uint64(i)
	}
	if got.sum != want || got.count != 8000 {
		t.Fatalf("sum=%d count=%d, want %d/8000", got.sum, got.count, want)
	}
}

// TestParallelScanSharedSnapshot: rows committed after the parent began are
// invisible to every morsel, even those executed by helpers that start long
// after the commit.
func TestParallelScanSharedSnapshot(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	want := loadSumRows(t, e, tab, 8000)
	tx := e.Begin(pcontext.Detached())
	defer tx.Abort()

	// Concurrent writer commits after the parent's snapshot.
	w := e.Begin(nil)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], 1<<40)
	if err := w.Put(tab, keys.Uint32(nil, 99999), v[:]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		binary.LittleEndian.PutUint64(v[:], 1<<41)
		if err := w.Put(tab, keys.Uint32(nil, uint32(i)), v[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	spawn, wait := goSpawner(e)
	got, err := ParallelScan(tx, tab, nil, nil,
		ParallelScanConfig{Morsels: 16, Spawn: spawn}, sumBody(tab), mergeSum)
	wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.sum != want || got.count != 8000 {
		t.Fatalf("snapshot leak: sum=%d count=%d, want %d/8000", got.sum, got.count, want)
	}
}

func TestParallelScanRejectsWriterParent(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	loadSumRows(t, e, tab, 100)
	tx := e.Begin(nil)
	defer tx.Abort()
	if err := tx.Update(tab, keys.Uint32(nil, 1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := ParallelScan(tx, tab, nil, nil, ParallelScanConfig{}, sumBody(tab), mergeSum)
	if !errors.Is(err, ErrParallelScanWrites) {
		t.Fatalf("err = %v, want ErrParallelScanWrites", err)
	}
}

func TestMorselReaderIsReadOnly(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	loadSumRows(t, e, tab, 4000)
	spawn, wait := goSpawner(e)
	tx := e.Begin(pcontext.Detached())
	defer tx.Abort()
	var sawHelper, sawRefusal atomic.Bool
	_, err := ParallelScan(tx, tab, nil, nil,
		ParallelScanConfig{Morsels: 8, Spawn: spawn},
		func(sub *Txn, m Morsel) (struct{}, error) {
			if sub != tx {
				sawHelper.Store(true)
				if err := sub.Put(tab, keys.Uint32(nil, 7), []byte("x")); !errors.Is(err, ErrTxnReadOnly) {
					t.Errorf("helper Put err = %v, want ErrTxnReadOnly", err)
				}
				if err := sub.Commit(); !errors.Is(err, ErrTxnReadOnly) {
					t.Errorf("helper Commit err = %v, want ErrTxnReadOnly", err)
				}
				sawRefusal.Store(true)
			}
			return struct{}{}, nil
		},
		func(a, _ struct{}) struct{} { return a })
	wait()
	if err != nil {
		t.Fatal(err)
	}
	if sawHelper.Load() && !sawRefusal.Load() {
		t.Fatal("helper ran but refusal path not exercised")
	}
}

// TestParallelScanErrorCancelsHelpers: the first body error is returned and
// running helpers are canceled rather than left to finish the whole table.
func TestParallelScanError(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	loadSumRows(t, e, tab, 20000)
	spawn, wait := goSpawner(e)
	tx := e.Begin(pcontext.Detached())
	defer tx.Abort()
	boom := errors.New("boom")
	_, err := ParallelScan(tx, tab, nil, nil,
		ParallelScanConfig{Morsels: 16, Spawn: spawn},
		func(sub *Txn, m Morsel) (int, error) {
			if m.Index == 3 {
				return 0, boom
			}
			n := 0
			scanErr := sub.Scan(tab, m.From, m.To, func(_, _ []byte) bool { n++; return true })
			return n, scanErr
		},
		func(a, b int) int { return a + b })
	wait()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestParallelScanCanceledParent: a parent canceled mid-scan propagates its
// lifecycle error out of ParallelScan.
func TestParallelScanCanceledParent(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	loadSumRows(t, e, tab, 10000)
	ctx := pcontext.Detached()
	ctx.Arm(0)
	tx := e.Begin(ctx)
	defer tx.Abort()
	rows := 0
	_, err := ParallelScan(tx, tab, nil, nil, ParallelScanConfig{Morsels: 8},
		func(sub *Txn, m Morsel) (struct{}, error) {
			scanErr := sub.Scan(tab, m.From, m.To, func(_, _ []byte) bool {
				rows++
				if rows == 100 {
					ctx.Cancel()
				}
				return true
			})
			return struct{}{}, scanErr
		},
		func(a, _ struct{}) struct{} { return a })
	if !errors.Is(err, pcontext.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if rows >= 10000 {
		t.Fatal("cancel did not unwind the scan")
	}
}

// TestParallelScanVacuumSafety: a parallel scan's helper slots keep the GC
// horizon behind the query, so a full vacuum during the scan reclaims
// nothing the snapshot can read.
func TestParallelScanVacuumSafety(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	want := loadSumRows(t, e, tab, 8000)
	tx := e.Begin(pcontext.Detached())
	defer tx.Abort()

	// Overwrite every row after the parent began, then vacuum mid-scan.
	w := e.Begin(nil)
	for i := 0; i < 8000; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], 1<<50)
		if err := w.Update(tab, keys.Uint32(nil, uint32(i)), v[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	spawn, wait := goSpawner(e)
	vacuumed := make(chan int, 1)
	got, err := ParallelScan(tx, tab, nil, nil,
		ParallelScanConfig{Morsels: 16, Spawn: spawn},
		func(sub *Txn, m Morsel) (sumPart, error) {
			if m.Index == 1 {
				vacuumed <- e.Vacuum(nil)
			}
			return sumBody(tab)(sub, m)
		}, mergeSum)
	wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.sum != want || got.count != 8000 {
		t.Fatalf("vacuum reclaimed under the scan: sum=%d count=%d, want %d/8000", got.sum, got.count, want)
	}
	select {
	case <-vacuumed:
	default:
		t.Fatal("vacuum probe did not run")
	}
}
