package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPublishBarrierUnderConcurrentCommits hammers PublishBarrier while many
// committers run: the engine must bump Published for every staged commit
// (leader and follower alike) or the barrier wedges, and the race detector
// covers the counter wiring against the group-commit pipeline.
func TestPublishBarrierUnderConcurrentCommits(t *testing.T) {
	var sink bytes.Buffer
	e := New(Config{LogSink: &sink})
	defer e.Close()
	tab := e.CreateTable("t")

	const writers, txnsPerWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				tx := e.Begin(nil)
				key := fmt.Appendf(nil, "w%d-k%d", w, i)
				if err := tx.Insert(tab, key, []byte("v")); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	barriers := make(chan struct{})
	go func() {
		defer close(barriers)
		for {
			select {
			case <-stop:
				return
			default:
				e.Log().PublishBarrier()
			}
		}
	}()
	wg.Wait()
	close(stop)
	select {
	case <-barriers:
	case <-time.After(5 * time.Second):
		t.Fatal("PublishBarrier wedged under concurrent commits")
	}

	// Quiesced: every staged commit has published, so the barrier returns.
	done := make(chan struct{})
	go func() {
		e.Log().PublishBarrier()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PublishBarrier wedged after all commits finished")
	}
}
