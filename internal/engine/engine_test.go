package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"preemptdb/internal/keys"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

func newEngine() *Engine { return New(Config{}) }

func TestCreateAndLookupTable(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("users")
	if tab.Name() != "users" || tab.ID() == 0 {
		t.Fatalf("table %q id %d", tab.Name(), tab.ID())
	}
	again := e.CreateTable("users")
	if again != tab {
		t.Fatal("CreateTable must be idempotent")
	}
	got, err := e.Table("users")
	if err != nil || got != tab {
		t.Fatalf("Table: %v", err)
	}
	if _, err := e.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	if err := tx.Insert(tab, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Get(tab, []byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("get own insert: %q %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.Begin(nil)
	if err := tx2.Update(tab, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tx3 := e.Begin(nil)
	if v, err := tx3.Get(tab, []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("get after update: %q %v", v, err)
	}
	if err := tx3.Delete(tab, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}

	tx4 := e.Begin(nil)
	if _, err := tx4.Get(tab, []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	tx4.Abort()
}

func TestDuplicateInsert(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	tx.Insert(tab, []byte("k"), []byte("v"))
	tx.Commit()

	tx2 := e.Begin(nil)
	if err := tx2.Insert(tab, []byte("k"), []byte("v2")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	tx2.Abort()
}

func TestInsertAfterDeleteSameKey(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	tx.Insert(tab, []byte("k"), []byte("v1"))
	tx.Commit()
	tx2 := e.Begin(nil)
	tx2.Delete(tab, []byte("k"))
	tx2.Commit()
	tx3 := e.Begin(nil)
	if err := tx3.Insert(tab, []byte("k"), []byte("v2")); err != nil {
		t.Fatalf("re-insert over tombstone: %v", err)
	}
	tx3.Commit()
	tx4 := e.Begin(nil)
	if v, err := tx4.Get(tab, []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("got %q %v", v, err)
	}
}

func TestUpdateMissing(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	if err := tx.Update(tab, []byte("nope"), []byte("v")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Delete(tab, []byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	tx.Abort()
}

func TestPutUpsert(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	if err := tx.Put(tab, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(tab, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2 := e.Begin(nil)
	if v, _ := tx2.Get(tab, []byte("k")); string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
}

func TestAbortRollsBack(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	tx.Insert(tab, []byte("k"), []byte("v"))
	tx.Abort()
	tx.Abort() // second abort is a no-op

	tx2 := e.Begin(nil)
	if _, err := tx2.Get(tab, []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert visible: %v", err)
	}
	if e.Aborts() != 1 {
		t.Fatalf("aborts = %d", e.Aborts())
	}
}

func TestScanVisibilityAndOrder(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	setup := e.Begin(nil)
	for i := 0; i < 100; i++ {
		setup.Insert(tab, keys.Uint32(nil, uint32(i)), []byte(fmt.Sprintf("v%d", i)))
	}
	setup.Commit()

	// Delete evens; an older snapshot must still see them.
	old := e.Begin(nil)
	del := e.Begin(nil)
	for i := 0; i < 100; i += 2 {
		del.Delete(tab, keys.Uint32(nil, uint32(i)))
	}
	del.Commit()

	countRows := func(tx *Txn) int {
		n := 0
		tx.Scan(tab, nil, nil, func(k, v []byte) bool { n++; return true })
		return n
	}
	if n := countRows(old); n != 100 {
		t.Fatalf("old snapshot sees %d rows", n)
	}
	fresh := e.Begin(nil)
	if n := countRows(fresh); n != 50 {
		t.Fatalf("fresh snapshot sees %d rows", n)
	}

	// Bounded scan in order.
	var got []uint32
	fresh.Scan(tab, keys.Uint32(nil, 10), keys.Uint32(nil, 20), func(k, v []byte) bool {
		id, _ := keys.DecodeUint32(k)
		got = append(got, id)
		return true
	})
	want := []uint32{11, 13, 15, 17, 19}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSecondaryIndex(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("customers")
	// Index rows by their value's first byte ("last name initial").
	tab.CreateIndex("byinitial", func(pk, row []byte) []byte {
		return keys.String(nil, string(row[:1]))
	})
	tx := e.Begin(nil)
	tx.Insert(tab, []byte("c1"), []byte("smith"))
	tx.Insert(tab, []byte("c2"), []byte("smythe"))
	tx.Insert(tab, []byte("c3"), []byte("jones"))
	tx.Commit()

	r := e.Begin(nil)
	var rows []string
	from := keys.String(nil, "s")
	r.ScanIndex(tab, "byinitial", from, keys.PrefixEnd(from), func(k, v []byte) bool {
		rows = append(rows, string(v))
		return true
	})
	if len(rows) != 2 {
		t.Fatalf("index scan rows = %v", rows)
	}
	if err := r.ScanIndex(tab, "missing", nil, nil, func(k, v []byte) bool { return true }); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestSecondaryIndexSkipsAborted(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	tab.CreateIndex("all", func(pk, row []byte) []byte { return append([]byte(nil), pk...) })
	tx := e.Begin(nil)
	tx.Insert(tab, []byte("k"), []byte("v"))
	tx.Abort()
	r := e.Begin(nil)
	n := 0
	r.ScanIndex(tab, "all", nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("aborted row visible through index: %d", n)
	}
}

func TestWriteConflictSurfaced(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	setup := e.Begin(nil)
	setup.Insert(tab, []byte("k"), []byte("v"))
	setup.Commit()

	a := e.Begin(nil)
	b := e.Begin(nil)
	if err := a.Update(tab, []byte("k"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	err := b.Update(tab, []byte("k"), []byte("b"))
	if !IsConflict(err) {
		t.Fatalf("err = %v", err)
	}
	b.Abort()
	a.Commit()
}

func TestCommitAfterCommitErrors(t *testing.T) {
	e := newEngine()
	tx := e.Begin(nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, mvcc.ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoggingAndRecovery(t *testing.T) {
	var log bytes.Buffer
	e := New(Config{LogSink: &log})
	tab := e.CreateTable("t")
	tab.CreateIndex("mirror", func(pk, row []byte) []byte { return append([]byte(nil), pk...) })

	tx := e.Begin(nil)
	tx.Insert(tab, []byte("a"), []byte("1"))
	tx.Insert(tab, []byte("b"), []byte("2"))
	tx.Commit()
	tx2 := e.Begin(nil)
	tx2.Update(tab, []byte("a"), []byte("1b"))
	tx2.Delete(tab, []byte("b"))
	tx2.Commit()
	// An aborted transaction must not appear in the log.
	tx3 := e.Begin(nil)
	tx3.Insert(tab, []byte("ghost"), []byte("boo"))
	tx3.Abort()
	e.Log().Flush()

	// Rebuild a fresh engine from the log.
	e2 := New(Config{})
	tab2 := e2.CreateTable("t")
	tab2.CreateIndex("mirror", func(pk, row []byte) []byte { return append([]byte(nil), pk...) })
	if _, err := e2.Recover(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	r := e2.Begin(nil)
	if v, err := r.Get(tab2, []byte("a")); err != nil || string(v) != "1b" {
		t.Fatalf("recovered a = %q %v", v, err)
	}
	if _, err := r.Get(tab2, []byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted row recovered: %v", err)
	}
	if _, err := r.Get(tab2, []byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatal("aborted txn recovered")
	}
	// The secondary index must be rebuilt too.
	n := 0
	r.ScanIndex(tab2, "mirror", nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("index rows after recovery = %d", n)
	}
	// New commits must get timestamps above recovered ones.
	w := e2.Begin(nil)
	w.Insert(tab2, []byte("c"), []byte("3"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r2 := e2.Begin(nil)
	if v, err := r2.Get(tab2, []byte("c")); err != nil || string(v) != "3" {
		t.Fatalf("post-recovery write: %q %v", v, err)
	}
}

func TestReadOnlyCommitNotLogged(t *testing.T) {
	var log bytes.Buffer
	e := New(Config{LogSink: &log})
	tab := e.CreateTable("t")
	tx := e.Begin(nil)
	tx.Get(tab, []byte("x"))
	tx.Commit()
	e.Log().Flush()
	if log.Len() != 0 {
		t.Fatalf("read-only txn wrote %d log bytes", log.Len())
	}
}

func TestVacuumTrimsChains(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")
	setup := e.Begin(nil)
	setup.Insert(tab, []byte("k"), []byte("v0"))
	setup.Commit()
	for i := 1; i <= 10; i++ {
		tx := e.Begin(nil)
		tx.Update(tab, []byte("k"), []byte(fmt.Sprintf("v%d", i)))
		tx.Commit()
	}
	reclaimed := e.Vacuum(nil)
	if reclaimed != 10 {
		t.Fatalf("reclaimed %d versions, want 10", reclaimed)
	}
	r := e.Begin(nil)
	if v, _ := r.Get(tab, []byte("k")); string(v) != "v10" {
		t.Fatalf("latest lost: %q", v)
	}
}

func TestAttachContextIdempotent(t *testing.T) {
	e := newEngine()
	ctx := pcontext.Detached()
	e.AttachContext(ctx)
	buf := ctx.CLS().Get(pcontext.SlotLog)
	e.AttachContext(ctx)
	if ctx.CLS().Get(pcontext.SlotLog) != buf {
		t.Fatal("AttachContext replaced CLS state")
	}
	e.AttachContext(nil) // must not panic
}

func TestConcurrentTransfersThroughEngine(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("accounts")
	const n = 4
	setup := e.Begin(nil)
	for i := 0; i < n; i++ {
		setup.Insert(tab, keys.Uint32(nil, uint32(i)), []byte{100})
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for i := 0; i < 1000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				from := uint32(x % n)
				to := uint32((x >> 7) % n)
				if from == to {
					continue
				}
				tx := e.Begin(nil)
				fv, err1 := tx.Get(tab, keys.Uint32(nil, from))
				tv, err2 := tx.Get(tab, keys.Uint32(nil, to))
				if err1 != nil || err2 != nil || fv[0] == 0 {
					tx.Abort()
					continue
				}
				if tx.Update(tab, keys.Uint32(nil, from), []byte{fv[0] - 1}) != nil ||
					tx.Update(tab, keys.Uint32(nil, to), []byte{tv[0] + 1}) != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	check := e.Begin(nil)
	total := 0
	for i := 0; i < n; i++ {
		v, err := check.Get(tab, keys.Uint32(nil, uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		total += int(v[0])
	}
	if total != n*100 {
		t.Fatalf("total = %d", total)
	}
	if e.Commits() == 0 {
		t.Fatal("no commits recorded")
	}
}

func TestSerializableEngineMode(t *testing.T) {
	e := New(Config{Isolation: mvcc.Serializable})
	tab := e.CreateTable("t")
	setup := e.Begin(nil)
	setup.Insert(tab, []byte("x"), []byte("1"))
	setup.Insert(tab, []byte("y"), []byte("1"))
	setup.Commit()

	a := e.Begin(nil)
	b := e.Begin(nil)
	a.Get(tab, []byte("x"))
	a.Get(tab, []byte("y"))
	b.Get(tab, []byte("x"))
	b.Get(tab, []byte("y"))
	a.Update(tab, []byte("x"), []byte("a"))
	b.Update(tab, []byte("y"), []byte("b"))
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !IsConflict(err) {
		t.Fatalf("write skew admitted: %v", err)
	}
}

func TestKWayContextPoolingIsolated(t *testing.T) {
	// Every slot of a K-way core owns its own pooled state: attaching all
	// contexts of one core must produce K distinct WAL buffers, snapshot
	// slots, and cached transactions, and each context's pooled Txn must be
	// reused by — and only by — that context.
	e := newEngine()
	tab := e.CreateTable("kv")
	core := pcontext.NewCore(0, 4)
	txns := make([]*Txn, core.NumContexts())
	for i := 0; i < core.NumContexts(); i++ {
		ctx := core.Context(i)
		e.AttachContext(ctx)
		tx := e.Begin(ctx)
		for j := 0; j < i; j++ {
			if tx == txns[j] {
				t.Fatalf("contexts %d and %d share a pooled Txn", i, j)
			}
		}
		txns[i] = tx
		if err := tx.Insert(tab, []byte{byte(i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tx := range txns {
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	// A finished pooled Txn is released back to its own context's CLS
	// exactly once: the next Begin on the same context reuses it, while the
	// siblings still get theirs.
	for i := 0; i < core.NumContexts(); i++ {
		tx := e.Begin(core.Context(i))
		if tx != txns[i] {
			t.Fatalf("context %d did not reuse its pooled Txn", i)
		}
		tx.Abort()
	}
}
