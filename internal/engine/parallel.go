package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/wal"
)

var (
	// ErrTxnReadOnly reports a write attempted through a read-only morsel
	// helper transaction.
	ErrTxnReadOnly = errors.New("engine: transaction is read-only")
	// ErrParallelScanWrites reports ParallelScan on a parent transaction that
	// has uncommitted writes: helpers share the parent's snapshot but not its
	// write set, so they would miss the parent's own uncommitted rows.
	ErrParallelScanWrites = errors.New("engine: ParallelScan requires a parent transaction with no uncommitted writes")
)

// Morsel is one unit of parallel scan work: a half-open key range plus its
// position in the partition (ranges are in ascending key order).
type Morsel struct {
	From, To []byte
	Index    int
}

// SpawnFunc offers fn for asynchronous execution on another transaction
// context (typically an idle scheduler worker). It returns false when the
// task cannot be queued; ParallelScan then simply runs more morsels inline.
// A queued fn may execute arbitrarily late or never claim any work — both
// are safe, because morsels are claimed from a shared counter, never
// pre-assigned.
type SpawnFunc func(fn func(ctx *pcontext.Context)) bool

// ParallelScanConfig controls morsel fan-out.
type ParallelScanConfig struct {
	// Morsels is the target partition width (default 8). The actual count
	// may be lower on small or churning trees.
	Morsels int
	// MaxHelpers caps how many helper tasks are offered to Spawn
	// (default: morsel count - 1, the parent keeps one for itself).
	MaxHelpers int
	// Spawn dispatches helper tasks; nil runs every morsel inline on the
	// caller, which degrades ParallelScan to a plain sequential scan.
	Spawn SpawnFunc
	// Stats, when non-nil, receives execution counters.
	Stats *ParallelScanStats
}

// ParallelScanStats reports how a ParallelScan actually executed.
type ParallelScanStats struct {
	Morsels int // ranges the partition produced
	Helpers int // helper tasks that claimed at least one morsel
	Inline  int // morsels executed inline by the parent
}

// defaultMorsels balances partition quality against claim overhead for the
// common 2-8 worker schedulers.
const defaultMorsels = 8

// psJob is the non-generic shared state of one ParallelScan: the morsel
// claim/completion counters, first-error latch, and the registry of running
// helpers for cancel propagation.
type psJob struct {
	next  atomic.Int64 // next unclaimed morsel index
	done  atomic.Int64 // completed (or skipped) morsels
	total int64

	failed atomic.Bool
	mu     sync.Mutex
	err    error
	active map[int]helperRef // running helpers, keyed by registration id
	nextID int
}

// helperRef identifies one running helper's armed lifecycle, so a parent
// failure can cancel it mid-morsel with a generation-fenced cancel.
type helperRef struct {
	ctx *pcontext.Context
	gen uint64
}

func (j *psJob) claim() int {
	i := j.next.Add(1) - 1
	if i >= j.total {
		return -1
	}
	return int(i)
}

// fail records the first error and cancels every running helper so their
// scans unwind at poll granularity instead of finishing doomed morsels.
func (j *psJob) fail(err error) {
	if err == nil || !j.failed.CompareAndSwap(false, true) {
		return
	}
	j.mu.Lock()
	j.err = err
	for _, ref := range j.active {
		ref.ctx.CancelGen(ref.gen)
	}
	j.mu.Unlock()
}

func (j *psJob) register(ctx *pcontext.Context, gen uint64) int {
	j.mu.Lock()
	id := j.nextID
	j.nextID++
	j.active[id] = helperRef{ctx: ctx, gen: gen}
	// A failure that latched before this registration has already swept the
	// map; cancel directly so this helper does not run a full morsel doomed
	// to be discarded.
	if j.failed.Load() {
		ctx.CancelGen(gen)
	}
	j.mu.Unlock()
	return id
}

func (j *psJob) unregister(id int) {
	j.mu.Lock()
	delete(j.active, id)
	j.mu.Unlock()
}

// ParallelScan runs body over each morsel of [from, to) on table's primary
// index and merges the per-morsel partial results in range order. The parent
// transaction tx must have no uncommitted writes; it keeps executing morsels
// inline (so progress never depends on helpers being scheduled), while up to
// MaxHelpers helper tasks offered through cfg.Spawn claim morsels from the
// shared counter and execute them as read-only transactions pinned at the
// parent's snapshot (mvcc.BeginAt) on their own oracle slots — the parent's
// slot stays advertised for the whole call, which is what makes sharing its
// begin safe. body observes exactly the parent's snapshot in every morsel;
// it runs concurrently, so any state it touches beyond sub must be
// synchronized or per-morsel. sub is only valid during the call. The first
// error cancels all running helpers and is returned after every claimed
// morsel finished; the merged result is meaningless in that case.
func ParallelScan[P any](tx *Txn, table *Table, from, to []byte, cfg ParallelScanConfig,
	body func(sub *Txn, m Morsel) (P, error), merge func(acc, part P) P) (P, error) {
	var zero P
	if tx.done {
		return zero, mvcc.ErrTxnDone
	}
	if err := tx.ctx.Err(); err != nil {
		return zero, err
	}
	if tx.inner.NumWrites() > 0 {
		return zero, ErrParallelScanWrites
	}
	n := cfg.Morsels
	if n <= 0 {
		n = defaultMorsels
	}
	ranges := table.primary.Partition(tx.ctx, from, to, n)
	partials := make([]P, len(ranges))
	job := &psJob{total: int64(len(ranges)), active: make(map[int]helperRef)}

	// runMorsel executes one claimed morsel on sub, which is either the
	// parent itself (inline) or a helper's pinned reader. Every claimed index
	// increments done exactly once, even when skipped after a failure — the
	// parent's completion wait depends on it.
	runMorsel := func(sub *Txn, i int) {
		if !job.failed.Load() {
			p, err := body(sub, Morsel{From: ranges[i].From, To: ranges[i].To, Index: i})
			if err != nil {
				job.fail(err)
			} else {
				partials[i] = p
			}
		}
		job.done.Add(1)
	}

	var helpers atomic.Int32
	deadline := tx.ctx.Deadline()
	begin := tx.inner.Begin()
	helperTask := func(hctx *pcontext.Context) {
		i := job.claim()
		if i < 0 {
			return // scan already fully claimed (or long finished)
		}
		helpers.Add(1)
		// Mirror the parent's deadline on the helper's own lifecycle and
		// register for cancel propagation; the helper polls hctx inside every
		// tree node visit, so a preemption, cancel, or deadline reaches it at
		// the same granularity as any low-priority transaction.
		gen := hctx.Arm(deadline)
		id := job.register(hctx, gen)
		sub := tx.eng.beginMorselReader(hctx, begin)
		for i >= 0 {
			runMorsel(sub, i)
			i = job.claim()
		}
		tx.eng.finishMorselReader(sub)
		job.unregister(id)
		hctx.Disarm()
	}

	offered := 0
	if cfg.Spawn != nil && len(ranges) > 1 {
		maxH := cfg.MaxHelpers
		if maxH <= 0 || maxH > len(ranges)-1 {
			maxH = len(ranges) - 1
		}
		for ; offered < maxH; offered++ {
			if !cfg.Spawn(helperTask) {
				break
			}
		}
	}

	// The parent claims and executes morsels inline until the counter runs
	// dry: the scan completes even if no helper ever runs.
	inline := 0
	for {
		if err := tx.ctx.Err(); err != nil {
			job.fail(err)
		}
		i := job.claim()
		if i < 0 {
			break
		}
		runMorsel(tx, i)
		inline++
	}
	// Wait for helpers to finish their claimed morsels. The parent holds no
	// latch here and keeps polling, so it stays preemptible and still
	// observes its own cancellation (propagating it to the helpers).
	for job.done.Load() < job.total {
		if err := tx.ctx.Err(); err != nil {
			job.fail(err)
		}
		tx.ctx.Poll()
		runtime.Gosched()
	}
	if cfg.Stats != nil {
		*cfg.Stats = ParallelScanStats{
			Morsels: len(ranges),
			Helpers: int(helpers.Load()),
			Inline:  inline,
		}
	}
	if job.failed.Load() {
		job.mu.Lock()
		err := job.err
		job.mu.Unlock()
		return zero, err
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = merge(acc, p)
	}
	return acc, nil
}

// beginMorselReader starts a read-only helper transaction on hctx pinned at
// the parent's snapshot timestamp. It mirrors BeginIso's context/CLS setup
// (attach, pooled Txn reuse) but goes through mvcc.BeginAt so the helper's
// slot advertises the shared begin, keeping the vacuum horizon behind the
// query for as long as any helper is reading.
func (e *Engine) beginMorselReader(hctx *pcontext.Context, begin uint64) *Txn {
	e.AttachContext(hctx)
	if !e.Owns(hctx) {
		// Foreign-owned helper context (cross-shard ParallelScan): the CLS
		// slots belong to another engine's oracle, so the reader runs as a
		// guest — a private slot registered in THIS oracle advertises the
		// pinned begin, keeping this engine's vacuum horizon behind the query.
		slot := e.oracle.RegisterSlot()
		t := &Txn{eng: e, ctx: hctx, logBuf: wal.NewBuffer(), guestSlot: slot}
		t.stageFn = t.stage
		t.readonly = true
		t.inner = e.oracle.BeginAt(hctx, mvcc.SnapshotIsolation, slot, begin)
		return t
	}
	cls := hctx.CLS()
	buf := cls.Get(pcontext.SlotLog).(*wal.Buffer)
	slot := cls.Get(pcontext.SlotSnapshot).(*mvcc.ActiveSlot)
	t, _ := cls.Get(pcontext.SlotScratch).(*Txn)
	if t == nil || !t.done || t.eng != e {
		t = &Txn{eng: e, ctx: hctx}
		t.stageFn = t.stage
		cls.Set(pcontext.SlotScratch, t)
	}
	buf.Reset()
	t.logBuf = buf
	t.done = false
	t.readonly = true
	t.inner = e.oracle.BeginAt(hctx, mvcc.SnapshotIsolation, slot, begin)
	return t
}

// finishMorselReader ends a morsel reader: the inner transaction aborts
// (releasing the slot's snapshot advertisement) without counting an engine
// abort — helper readers are not application transactions — and the pooled
// objects return to the helper context for its next regular transaction.
func (e *Engine) finishMorselReader(t *Txn) {
	if t.done {
		return
	}
	t.done = true
	t.readonly = false
	t.inner.Abort()
	t.inner.Release()
	t.releaseGuest()
}
