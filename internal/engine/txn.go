package engine

import (
	"errors"
	"fmt"

	"preemptdb/internal/clock"
	"preemptdb/internal/index"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/wal"
)

// Txn is an engine-level transaction: the MVCC transaction plus redo logging
// and index maintenance. Confined to one transaction context. Context-bound
// transactions are pooled in the context's CLS scratch slot, so the steady
// state commit path performs no heap allocation.
type Txn struct {
	inner  *mvcc.Txn
	eng    *Engine
	ctx    *pcontext.Context
	logBuf *wal.Buffer
	done   bool

	// readonly marks a morsel-helper reader sharing a parent transaction's
	// snapshot (see ParallelScan): every write method refuses, and its
	// lifecycle belongs to the operator, so Commit refuses and Abort is a
	// no-op.
	readonly bool

	// guestSlot is non-nil on guest transactions — transactions begun on a
	// context owned by a different engine (cross-shard participants). The
	// slot was registered with THIS engine's oracle just for this
	// transaction and is unregistered when it finishes; guests use none of
	// the context's pooled CLS state.
	guestSlot *mvcc.ActiveSlot

	// prepGID is the global 2PC id between PrepareCommit and
	// ResolveCommit/ResolveAbort; zero otherwise.
	prepGID uint64

	// cacheHeld marks a prepared 2PC participant that entered the hot-key
	// cache's write window (hotcache.BeginWrites) at PrepareCommit and has not
	// yet left it; ResolveCommit and Abort balance it with EndWrites. Plain
	// commits open and close the window within one Commit call instead.
	cacheHeld bool

	// Group-commit state for the Commit in flight. stageFn is bound once at
	// construction so handing it to mvcc.Commit does not allocate a closure
	// per commit.
	staged  bool
	leader  bool
	stageFn func(cts uint64) error

	// hint is the owning core's id, the metrics stripe selector. walTick
	// counts this pooled transaction's commits to subsample the WAL-wait
	// probe (see walSampleShift).
	hint    int
	walTick uint64
}

// walSampleShift subsamples the commit path's WAL-wait probe to 1 in
// 2^walSampleShift commits per pooled transaction. The probe (two clock
// reads plus one striped-histogram record) measures ~100ns hot but ~0.5µs in
// the steady-state commit loop, where the histogram's bucket lines are
// always cold — always-on it would double the ~400ns in-memory commit, while
// 1-in-32 amortizes to a measured 3-4%, under the 5% budget. Leaders and
// followers share the same per-Txn tick, so neither path is
// over-represented in the distribution.
const (
	walSampleShift = 5
	walSampleMask  = 1<<walSampleShift - 1
)

// Begin starts a transaction on ctx at the engine's configured isolation
// level. ctx may be nil (tests, loaders), in which case logging still works
// through a throwaway buffer but preemption polling is disabled.
func (e *Engine) Begin(ctx *pcontext.Context) *Txn {
	return e.BeginIso(ctx, e.cfg.Isolation)
}

// BeginIso starts a transaction with an explicit isolation level. On a
// context owned by another engine (a sharded database routing one context's
// operations across several engines) it transparently begins a *guest*
// transaction: a freshly allocated Txn with a throwaway buffer and its own
// just-registered oracle slot, none of the foreign context's pooled CLS
// state. Guests poll the context normally, so they stay preemptible; they
// just skip the zero-allocation pooling that belongs to the owning engine.
func (e *Engine) BeginIso(ctx *pcontext.Context, iso mvcc.IsolationLevel) *Txn {
	if ctx == nil {
		t := &Txn{eng: e, logBuf: wal.NewBuffer()}
		t.stageFn = t.stage
		t.inner = e.oracle.Begin(nil, iso, nil)
		return t
	}
	e.AttachContext(ctx)
	if !e.Owns(ctx) {
		slot := e.oracle.RegisterSlot()
		t := &Txn{eng: e, ctx: ctx, logBuf: wal.NewBuffer(), guestSlot: slot}
		t.stageFn = t.stage
		if core := ctx.Core(); core != nil {
			t.hint = core.ID()
		}
		t.inner = e.oracle.Begin(ctx, iso, slot)
		return t
	}
	cls := ctx.CLS()
	buf := cls.Get(pcontext.SlotLog).(*wal.Buffer)
	slot := cls.Get(pcontext.SlotSnapshot).(*mvcc.ActiveSlot)
	// Reuse the context's cached Txn when its previous transaction finished;
	// a still-open cached txn (caller abandoned it) or one bound to another
	// engine gets left behind and replaced.
	t, _ := cls.Get(pcontext.SlotScratch).(*Txn)
	if t == nil || !t.done || t.eng != e {
		t = &Txn{eng: e, ctx: ctx}
		t.stageFn = t.stage
		if core := ctx.Core(); core != nil {
			t.hint = core.ID()
		}
		cls.Set(pcontext.SlotScratch, t)
	}
	buf.Reset()
	t.logBuf = buf
	t.done = false
	t.readonly = false
	t.inner = e.oracle.Begin(ctx, iso, slot)
	return t
}

// stage frames the redo buffer into the open group-commit batch. Invoked by
// mvcc.Commit after validation assigns the commit timestamp; a staged buffer
// is always written by its batch leader. On a failed log Stage refuses the
// enrollment with the latched ErrWALFailed, which aborts the commit before
// anything is published — the transaction's effects neither become visible
// nor reach the log.
func (t *Txn) stage(cts uint64) error {
	if t.logBuf.Len() == 0 {
		return nil // read-only: nothing to log
	}
	leader, err := t.eng.log.Stage(t.inner.ID(), cts, t.logBuf)
	if err != nil {
		return err
	}
	t.leader = leader
	t.staged = true
	return nil
}

// releaseGuest returns a guest transaction's private oracle slot; a no-op for
// pooled (owner-context) and nil-context transactions.
func (t *Txn) releaseGuest() {
	if t.guestSlot != nil {
		t.eng.oracle.UnregisterSlot(t.guestSlot)
		t.guestSlot = nil
	}
}

// Context returns the transaction's context.
func (t *Txn) Context() *pcontext.Context { return t.ctx }

// Pending returns the number of redo records buffered so far — non-zero means
// the transaction has writes to log at commit.
func (t *Txn) Pending() int { return t.logBuf.Len() }

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.inner.ID() }

// Snapshot returns the begin timestamp.
func (t *Txn) Snapshot() uint64 { return t.inner.Begin() }

// Get returns the row visible to this transaction under key. With a hot-key
// cache configured, snapshot-isolation point reads consult it first — a hit
// returns the exact version this snapshot would have read from the MVCC chain
// (entries are stamped with their version's commit timestamp and only hit
// when begin-ts covers them) without touching the index or version chain.
func (t *Txn) Get(table *Table, key []byte) ([]byte, error) {
	if err := t.ctx.Err(); err != nil {
		return nil, err
	}
	// The cache serves committed state only, so it is bypassed once this
	// transaction has buffered writes (an own uncommitted write to the key
	// must win) and under serializable isolation (a hit would skip read-set
	// registration and blind the commit-time validation).
	if c := t.eng.cache; c != nil && t.logBuf.Len() == 0 && t.inner.Isolation() == mvcc.SnapshotIsolation {
		if v, ok := c.Lookup(table.id, key, t.inner.Begin()); ok {
			return v, nil
		}
		// Miss: capture the fill token BEFORE the MVCC read so a writer
		// publishing during the read discards the fill instead of letting a
		// pre-publication value shadow the new version.
		tok := c.FillBegin(table.id, key)
		rec, ok := table.primary.Get(t.ctx, key)
		if !ok {
			return nil, ErrNotFound
		}
		data, cts, newest, ok := t.inner.ReadForCache(rec)
		if !ok {
			return nil, ErrNotFound
		}
		if newest {
			c.TryFill(tok, table.id, key, data, cts)
		}
		return data, nil
	}
	rec, ok := table.primary.Get(t.ctx, key)
	if !ok {
		return nil, ErrNotFound
	}
	data, ok := t.inner.Read(rec)
	if !ok {
		return nil, ErrNotFound
	}
	return data, nil
}

// Insert creates a new row. It fails with ErrDuplicateKey when a row visible
// to this transaction already exists, and with ErrWriteConflict when an
// in-flight or snapshot-invisible newer row contends.
func (t *Txn) Insert(table *Table, key, value []byte) error {
	if t.readonly {
		return ErrTxnReadOnly
	}
	if err := t.eng.log.Err(); err != nil {
		return err // WAL failed: the engine is read-only, refuse before buffering
	}
	rec, _ := table.primary.GetOrInsert(t.ctx, key, mvcc.NewRecord())
	if _, ok := t.inner.Read(rec); ok {
		return fmt.Errorf("%w: table %q", ErrDuplicateKey, table.name)
	}
	if err := t.inner.Update(rec, value); err != nil {
		return err
	}
	t.logBuf.Append(wal.RecInsert, table.id, key, value)
	table.forEachSecondary(func(si *secondaryIndex) {
		if sk := si.extract(key, value); sk != nil {
			si.tree.Insert(t.ctx, secondaryKey(sk, key), rec)
		}
	})
	return nil
}

// Update overwrites an existing visible row.
func (t *Txn) Update(table *Table, key, value []byte) error {
	if t.readonly {
		return ErrTxnReadOnly
	}
	if err := t.eng.log.Err(); err != nil {
		return err
	}
	rec, ok := table.primary.Get(t.ctx, key)
	if !ok {
		return ErrNotFound
	}
	if _, ok := t.inner.Read(rec); !ok {
		return ErrNotFound
	}
	if err := t.inner.Update(rec, value); err != nil {
		return err
	}
	t.logBuf.Append(wal.RecUpdate, table.id, key, value)
	return nil
}

// Put inserts or overwrites the row (upsert).
func (t *Txn) Put(table *Table, key, value []byte) error {
	if t.readonly {
		return ErrTxnReadOnly
	}
	if err := t.eng.log.Err(); err != nil {
		return err
	}
	rec, _ := table.primary.GetOrInsert(t.ctx, key, mvcc.NewRecord())
	_, existed := t.inner.Read(rec)
	if err := t.inner.Update(rec, value); err != nil {
		return err
	}
	if existed {
		t.logBuf.Append(wal.RecUpdate, table.id, key, value)
	} else {
		t.logBuf.Append(wal.RecInsert, table.id, key, value)
		table.forEachSecondary(func(si *secondaryIndex) {
			if sk := si.extract(key, value); sk != nil {
				si.tree.Insert(t.ctx, secondaryKey(sk, key), rec)
			}
		})
	}
	return nil
}

// Delete tombstones a visible row.
func (t *Txn) Delete(table *Table, key []byte) error {
	if t.readonly {
		return ErrTxnReadOnly
	}
	if err := t.eng.log.Err(); err != nil {
		return err
	}
	rec, ok := table.primary.Get(t.ctx, key)
	if !ok {
		return ErrNotFound
	}
	if _, ok := t.inner.Read(rec); !ok {
		return ErrNotFound
	}
	if err := t.inner.Delete(rec); err != nil {
		return err
	}
	t.logBuf.Append(wal.RecDelete, table.id, key, nil)
	return nil
}

// ScanFunc receives rows in key order; return false to stop. key and value
// must not be retained or modified across calls.
type ScanFunc func(key, value []byte) bool

// Scan visits rows visible to this transaction with from <= key < to in
// ascending primary-key order (nil bounds are open). Tombstones and
// snapshot-invisible rows are skipped. The scan polls the context at every
// record, so long scans — the paper's Q2 — are preemptible throughout; a
// canceled or deadline-expired transaction unwinds with the typed lifecycle
// error within one poll interval.
func (t *Txn) Scan(table *Table, from, to []byte, fn ScanFunc) error {
	return t.scanTree(table.primary, from, to, fn)
}

// ScanDesc is Scan in descending key order.
func (t *Txn) ScanDesc(table *Table, from, to []byte, fn ScanFunc) error {
	return t.scanTreeDesc(table.primary, from, to, fn)
}

// ScanIndex is Scan over a secondary index; fn receives the *index* key and
// the visible row payload.
func (t *Txn) ScanIndex(table *Table, indexName string, from, to []byte, fn ScanFunc) error {
	si, err := table.secondary(indexName)
	if err != nil {
		return err
	}
	return t.scanTree(si.tree, from, to, fn)
}

// ScanIndexDesc is ScanIndex in descending index-key order, the natural
// access path for "newest first" lookups over a (prefix, sequence) index.
func (t *Txn) ScanIndexDesc(table *Table, indexName string, from, to []byte, fn ScanFunc) error {
	si, err := table.secondary(indexName)
	if err != nil {
		return err
	}
	return t.scanTreeDesc(si.tree, from, to, fn)
}

func (t *Txn) scanTree(tree *index.Tree[*mvcc.Record], from, to []byte, fn ScanFunc) error {
	var lcErr error
	tree.Scan(t.ctx, from, to, func(key []byte, rec *mvcc.Record) bool {
		if lcErr = t.ctx.Err(); lcErr != nil {
			return false // unwind mid-scan: canceled or past deadline
		}
		data, ok := t.inner.Read(rec)
		if !ok {
			return true // invisible or tombstone
		}
		return fn(key, data)
	})
	if lcErr == nil {
		// The tree abandons a canceled scan at a leaf boundary without
		// calling back, so a cancellation that lands before the first record
		// is only visible here; without this check a canceled scan would
		// masquerade as a successful empty one.
		lcErr = t.ctx.Err()
	}
	return lcErr
}

func (t *Txn) scanTreeDesc(tree *index.Tree[*mvcc.Record], from, to []byte, fn ScanFunc) error {
	var lcErr error
	tree.ScanDesc(t.ctx, from, to, func(key []byte, rec *mvcc.Record) bool {
		if lcErr = t.ctx.Err(); lcErr != nil {
			return false
		}
		data, ok := t.inner.Read(rec)
		if !ok {
			return true
		}
		return fn(key, data)
	})
	if lcErr == nil {
		lcErr = t.ctx.Err() // see scanTree: pre-first-record cancellation
	}
	return lcErr
}

// Commit finishes the transaction: serializable validation (if configured),
// group-commit staging, and atomic publication run inside one non-preemptible
// region because the commit critical section and any WAL latch must not be
// held across a preemption (paper §4.4). If this committer became its batch's
// leader it also performs the batch write+sync inside the SAME region — a
// leader paused while holding the WAL's I/O latch would deadlock a same-core
// higher-priority transaction that becomes the next batch's leader. Followers
// instead park on their batch's completion channel outside the region,
// holding no latch, so they can neither block nor be blocked by preemption.
//
// Durability ordering caveat: versions are published at staging time, before
// the batch reaches the sink, so a log I/O error surfaces as the returned
// error after the in-memory commit already happened (and is counted as a
// commit). Single-node crash recovery is unaffected — the unlogged suffix is
// simply not replayed — but callers mirroring the log elsewhere must treat a
// non-nil return as "committed here, not durable".
func (t *Txn) Commit() error {
	if t.readonly {
		return ErrTxnReadOnly // morsel readers are finished by ParallelScan
	}
	if t.done {
		return mvcc.ErrTxnDone
	}
	if err := t.ctx.Err(); err != nil {
		// Canceled or past deadline at the commit point: abort instead —
		// the pooled Txn, oracle slot and redo buffer are all released by
		// the abort path, and nothing is published or logged.
		t.Abort()
		return err
	}
	t.done = true
	t.staged, t.leader = false, false
	t.walTick++
	sampled := t.walTick&walSampleMask == 0 || t.eng.traceAll
	var walNs int64
	var mvccErr, ioErr error
	// Hot-key cache write window: opened strictly before the MVCC
	// commit-point store and closed after it (and before the commit is
	// acknowledged), on success and failure alike. Both hooks run inside the
	// non-preemptible region — they take only short per-shard cache locks, no
	// I/O — so the window cannot be stretched by a preemption.
	invalidate := t.eng.cache != nil && t.logBuf.Len() > 0
	pcontext.NonPreemptible(t.ctx, func() {
		if invalidate {
			t.eng.cache.BeginWrites(t.logBuf)
		}
		_, mvccErr = t.inner.Commit(t.stageFn)
		if invalidate {
			t.eng.cache.EndWrites(t.logBuf)
		}
		if t.staged {
			// The commit-point store has run (mvcc.Commit publishes
			// unconditionally after a successful logFn): tell the WAL so
			// checkpointing's PublishBarrier can see this transaction's
			// versions before trusting an LSN that covers its frame.
			t.eng.log.Published()
		}
		if t.leader {
			if sampled {
				t0 := clock.Nanos()
				_, ioErr = t.eng.log.LeaderFinish(t.logBuf)
				walNs = clock.Nanos() - t0
			} else {
				_, ioErr = t.eng.log.LeaderFinish(t.logBuf)
			}
		}
	})
	if t.staged && !t.leader {
		// Let a pending preemption run before parking: the follower holds no
		// latch and its versions are already published, so this is the
		// natural low-priority wait point of §4.4.
		t.ctx.Poll()
		if sampled {
			t0 := clock.Nanos()
			_, ioErr = t.eng.log.FollowerWait(t.logBuf)
			walNs = clock.Nanos() - t0
		} else {
			_, ioErr = t.eng.log.FollowerWait(t.logBuf)
		}
	}
	if sampled && t.staged {
		class := metrics.ClassLo
		if t.ctx != nil && t.ctx.CLS().HighPrio {
			class = metrics.ClassHi
		}
		t.eng.metrics.Observe(class, metrics.PhaseWALWait, t.hint, walNs)
		if t.eng.traceSpans {
			// Group-commit batch membership on the trace ring: the wait span
			// plus whether this committer led its batch's I/O. Rides the same
			// sampling gate as the metric (always-on under TraceSampling>0);
			// recordAux is a handful of atomic stores, no allocation.
			var lead uint8
			if t.leader {
				lead = 1
			}
			t.ctx.TraceEvent(pcontext.EvWALWait, pcontext.SpanAux(walNs, lead))
		}
	}
	t.logBuf.Reset()
	t.inner.Release()
	t.releaseGuest()
	if mvccErr != nil {
		t.eng.aborts.Add(1)
		return mvccErr
	}
	t.eng.commits.Add(1)
	return ioErr
}

// Abort rolls the transaction back. Abort after Commit (or a second Abort)
// is a harmless no-op so callers can `defer tx.Abort()`. On a read-only
// morsel reader it is also a no-op: the reader's lifecycle belongs to
// ParallelScan, and counting it as an engine abort would pollute the stats.
func (t *Txn) Abort() {
	if t.done || t.readonly {
		return
	}
	t.done = true
	if gid := t.prepGID; gid != 0 {
		// Abort of a prepared participant: roll the hold back and drop the
		// checkpoint clamp. No abort record is written — absence of a
		// decision IS the abort (presumed abort), so recovery discards the
		// prepare.
		t.prepGID = 0
		t.eng.unregisterPrepare(gid)
	}
	pcontext.NonPreemptible(t.ctx, func() {
		t.inner.Abort()
		if t.cacheHeld {
			// A prepared participant held the cache's write window across the
			// in-doubt period; the abort closes it (nothing was published, so
			// colliding fills may resume with the old values).
			t.cacheHeld = false
			t.eng.cache.EndWrites(t.logBuf)
		}
	})
	t.logBuf.Reset()
	t.inner.Release()
	t.releaseGuest()
	t.eng.aborts.Add(1)
}

// IsConflict reports whether err is a concurrency conflict the caller should
// retry (write-write conflict or serializable validation failure).
func IsConflict(err error) bool {
	return errors.Is(err, mvcc.ErrWriteConflict) || errors.Is(err, mvcc.ErrReadValidation)
}
