package engine

import (
	"bytes"
	"testing"

	"preemptdb/internal/hotcache"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

func newCachedEngine(t *testing.T) (*Engine, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	e := New(Config{
		Metrics: reg,
		Cache:   hotcache.New(hotcache.Config{MaxBytes: 1 << 20, Metrics: reg}),
	})
	return e, reg
}

func mustPut(t *testing.T, e *Engine, ctx *pcontext.Context, tbl *Table, key, val []byte) {
	t.Helper()
	tx := e.Begin(ctx)
	if err := tx.Put(tbl, key, val); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func readOnce(t *testing.T, e *Engine, ctx *pcontext.Context, tbl *Table, key []byte) []byte {
	t.Helper()
	tx := e.Begin(ctx)
	defer tx.Abort()
	v, err := tx.Get(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCacheReadThrough exercises the miss-fill-hit cycle and commit-time
// invalidation through the engine's Get path.
func TestCacheReadThrough(t *testing.T) {
	e, reg := newCachedEngine(t)
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key := []byte("k")
	mustPut(t, e, ctx, tbl, key, []byte("v1"))

	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("first read = %q", v)
	}
	if reg.CacheMisses() == 0 {
		t.Fatal("first read did not count a miss")
	}
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("second read = %q", v)
	}
	if reg.CacheHits() == 0 {
		t.Fatal("second read did not hit the cache")
	}

	// Commit-time invalidation: the writer removes the entry, a fresh read
	// refills with the new value.
	mustPut(t, e, ctx, tbl, key, []byte("v2"))
	if reg.CacheInvalidations() == 0 {
		t.Fatal("update did not invalidate the cached entry")
	}
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("post-update read = %q, want v2", v)
	}
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("post-update cached read = %q, want v2", v)
	}
}

// TestCacheOldSnapshotBypasses: a transaction whose snapshot predates the
// cached version must read its own (older) version from MVCC, not the cache,
// and must not poison the cache for newer readers.
func TestCacheOldSnapshotBypasses(t *testing.T) {
	e, _ := newCachedEngine(t)
	ctx := pcontext.Detached()
	old := pcontext.Detached()
	tbl := e.CreateTable("t")
	key := []byte("k")
	mustPut(t, e, ctx, tbl, key, []byte("v1"))

	oldTx := e.Begin(old) // snapshot at v1
	mustPut(t, e, ctx, tbl, key, []byte("v2"))
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v2")) { // fill v2
		t.Fatalf("fresh read = %q", v)
	}
	v, err := oldTx.Get(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("old snapshot read = %q, want v1 (stale cache hit?)", v)
	}
	oldTx.Abort()
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("fresh read after old-snapshot bypass = %q, want v2", v)
	}
}

// TestCacheOwnWritesBypass: once a transaction has buffered writes, its reads
// must come from MVCC (own uncommitted values win over cached committed ones).
func TestCacheOwnWritesBypass(t *testing.T) {
	e, _ := newCachedEngine(t)
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key := []byte("k")
	mustPut(t, e, ctx, tbl, key, []byte("v1"))
	readOnce(t, e, ctx, tbl, key) // fill v1

	tx := e.Begin(ctx)
	if err := tx.Update(tbl, key, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Get(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("mine")) {
		t.Fatalf("own-write read = %q, want the uncommitted value", v)
	}
	tx.Abort()
}

// TestCacheSerializableBypasses: serializable reads must register in the read
// set for commit validation, so they never consult the cache.
func TestCacheSerializableBypasses(t *testing.T) {
	e, reg := newCachedEngine(t)
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key := []byte("k")
	mustPut(t, e, ctx, tbl, key, []byte("v1"))
	readOnce(t, e, ctx, tbl, key) // fill
	hits := reg.CacheHits()

	tx := e.BeginIso(pcontext.Detached(), mvcc.Serializable)
	if _, err := tx.Get(tbl, key); err != nil {
		t.Fatal(err)
	}
	// Concurrent write invalidates the read set; validation must catch it.
	mustPut(t, e, ctx, tbl, key, []byte("v2"))
	if err := tx.Commit(); !IsConflict(err) {
		t.Fatalf("serializable commit after conflicting write: %v, want validation failure", err)
	}
	if reg.CacheHits() != hits {
		t.Fatal("serializable read hit the cache")
	}
}

// TestCacheTwoPCInvalidation: a prepared participant's write window blocks
// fills for the whole in-doubt span, and resolution publishes + invalidates.
func TestCacheTwoPCInvalidation(t *testing.T) {
	e, _ := newCachedEngine(t)
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key := []byte("k")
	mustPut(t, e, ctx, tbl, key, []byte("v1"))
	readOnce(t, e, ctx, tbl, key) // fill v1

	w := e.Begin(pcontext.Detached())
	if err := w.Update(tbl, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w.PrepareCommit(77); err != nil {
		t.Fatal(err)
	}
	// In doubt: the prepared version is invisible, the old entry is gone, and
	// fills are blocked — reads serve v1 from MVCC every time.
	for i := 0; i < 2; i++ {
		if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("in-doubt read = %q, want v1", v)
		}
	}
	if err := w.ResolveCommit(); err != nil {
		t.Fatal(err)
	}
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("post-resolve read = %q, want v2", v)
	}
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("post-resolve cached read = %q, want v2", v)
	}
}

// TestCacheTwoPCAbortReleasesWindow: ResolveAbort must close the write window
// so later fills work, and readers keep the old value throughout.
func TestCacheTwoPCAbortReleasesWindow(t *testing.T) {
	e, reg := newCachedEngine(t)
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key := []byte("k")
	mustPut(t, e, ctx, tbl, key, []byte("v1"))

	w := e.Begin(pcontext.Detached())
	if err := w.Update(tbl, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w.PrepareCommit(78); err != nil {
		t.Fatal(err)
	}
	w.ResolveAbort()

	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("post-abort read = %q, want v1", v)
	}
	hits := reg.CacheHits()
	if v := readOnce(t, e, ctx, tbl, key); !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("post-abort second read = %q, want v1", v)
	}
	if reg.CacheHits() == hits {
		t.Fatal("fill still blocked after ResolveAbort — leaked write window")
	}
}

// TestCommitAllocsWithCache guards the acceptance bar: the pooled
// Update+Commit cycle must stay allocation-free with the cache enabled (the
// invalidation hooks run on every writing commit).
func TestCommitAllocsWithCache(t *testing.T) {
	e, _ := newCachedEngine(t)
	ctx := pcontext.Detached()
	tbl := e.CreateTable("t")
	key, val := []byte("key"), []byte("value")
	mustPut(t, e, ctx, tbl, key, val)
	readOnce(t, e, ctx, tbl, key) // keep an entry resident so invalidation does real work
	commit := func() {
		tx := e.Begin(ctx)
		if err := tx.Update(tbl, key, val); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		commit()
	}
	if avg := testing.AllocsPerRun(256, commit); avg >= 1 {
		t.Fatalf("cached commit allocates %.2f allocs/op, want 0", avg)
	}
}
