// Package engine is PreemptDB's storage engine: an ERMIA-style (paper §2.2)
// memory-optimized key-value engine with named tables, B+tree primary and
// secondary indexes, multi-versioned records, redo logging, and recovery.
//
// The engine is schema-less: rows are []byte payloads keyed by []byte primary
// keys, with per-workload codecs layered above (internal/tpcc, internal/tpch).
// Every operation takes the transaction whose context makes the work
// preemptible: index traversals and version-chain walks poll the context at
// each step, and commit/abort critical sections run inside non-preemptible
// regions (paper §4.4).
package engine

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"preemptdb/internal/index"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/wal"
)

// Engine-level errors.
var (
	// ErrNotFound reports that no visible row exists for the key.
	ErrNotFound = errors.New("engine: not found")
	// ErrDuplicateKey reports an insert over a visible live row.
	ErrDuplicateKey = errors.New("engine: duplicate key")
	// ErrNoTable reports an unknown table name.
	ErrNoTable = errors.New("engine: no such table")
	// ErrNoIndex reports an unknown secondary index name.
	ErrNoIndex = errors.New("engine: no such index")
)

// Config controls engine construction.
type Config struct {
	// Isolation is the isolation level for all transactions. Default:
	// snapshot isolation, the paper's baseline.
	Isolation mvcc.IsolationLevel
	// LogSink receives the redo log; nil discards it (pure in-memory mode,
	// the paper's evaluation configuration).
	LogSink io.Writer
	// SyncEachCommit forces a flush+sync per commit when the sink supports it.
	SyncEachCommit bool
}

// Engine is the storage engine. Create with New; it is safe for concurrent
// use by many transaction contexts.
type Engine struct {
	cfg    Config
	oracle *mvcc.Oracle
	log    *wal.Manager

	mu       sync.RWMutex
	tables   map[string]*Table
	tableIDs map[uint32]*Table
	nextID   uint32

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	sink := cfg.LogSink
	if sink == nil {
		sink = io.Discard
	}
	return &Engine{
		cfg:      cfg,
		oracle:   mvcc.NewOracle(),
		log:      wal.NewManager(sink, cfg.SyncEachCommit),
		tables:   make(map[string]*Table),
		tableIDs: make(map[uint32]*Table),
	}
}

// Oracle exposes the timestamp oracle (for GC and observability).
func (e *Engine) Oracle() *mvcc.Oracle { return e.oracle }

// Log exposes the WAL manager.
func (e *Engine) Log() *wal.Manager { return e.log }

// Commits returns the number of committed transactions.
func (e *Engine) Commits() uint64 { return e.commits.Load() }

// Aborts returns the number of aborted transactions.
func (e *Engine) Aborts() uint64 { return e.aborts.Load() }

// KeyExtractor derives a secondary-index key from a row. Secondary indexes
// are non-unique: the engine appends the primary key to the extracted key as
// a uniquifier, so several rows may share an extracted key and scans stay in
// (extracted key, primary key) order. Secondary keys must be immutable for
// the lifetime of the row: updates that change the derived key add a new
// index entry but do not remove the old one (readers re-check row visibility
// through the primary record, so a stale entry can surface a stale key but
// never stale data — callers with mutable indexed columns must re-verify the
// predicate against the returned row).
type KeyExtractor func(primaryKey, row []byte) []byte

// secondaryKey builds the stored index key: extracted key + primary key.
func secondaryKey(extracted, pk []byte) []byte {
	k := make([]byte, 0, len(extracted)+len(pk))
	k = append(k, extracted...)
	return append(k, pk...)
}

// Table is one named table: a primary B+tree from key to record, plus
// optional secondary indexes.
type Table struct {
	id      uint32
	name    string
	primary *index.Tree[*mvcc.Record]

	mu          sync.RWMutex
	secondaries map[string]*secondaryIndex
}

type secondaryIndex struct {
	name    string
	extract KeyExtractor
	tree    *index.Tree[*mvcc.Record]
}

// ID returns the table's numeric id (stable, used in the log).
func (t *Table) ID() uint32 { return t.id }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of primary-index entries (including records whose
// visible version may be a tombstone).
func (t *Table) Len() int { return t.primary.Len() }

// CreateTable creates (or returns the existing) table with the given name.
func (e *Engine) CreateTable(name string) *Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.tables[name]; ok {
		return t
	}
	e.nextID++
	t := &Table{
		id:          e.nextID,
		name:        name,
		primary:     index.New[*mvcc.Record](),
		secondaries: make(map[string]*secondaryIndex),
	}
	e.tables[name] = t
	e.tableIDs[t.id] = t
	return t
}

// Table returns the named table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// MustTable returns the named table, panicking if absent; for workload code
// whose schema is created at startup.
func (e *Engine) MustTable(name string) *Table {
	t, err := e.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// CreateIndex adds a secondary index to the table. Existing rows are NOT
// back-filled; create indexes before loading. The extractor may return nil
// to exclude a row from the index.
func (t *Table) CreateIndex(name string, extract KeyExtractor) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondaries[name]; ok {
		panic(fmt.Sprintf("engine: index %q already exists on %q", name, t.name))
	}
	t.secondaries[name] = &secondaryIndex{name: name, extract: extract, tree: index.New[*mvcc.Record]()}
}

func (t *Table) secondary(name string) (*secondaryIndex, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	si, ok := t.secondaries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q on table %q", ErrNoIndex, name, t.name)
	}
	return si, nil
}

// forEachSecondary iterates the table's secondary indexes.
func (t *Table) forEachSecondary(fn func(*secondaryIndex)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, si := range t.secondaries {
		fn(si)
	}
}

// AttachContext prepares a transaction context for running transactions on
// this engine: a private WAL buffer and a snapshot-tracking slot are placed
// in its CLS. Idempotent; called implicitly by Begin when needed.
func (e *Engine) AttachContext(ctx *pcontext.Context) {
	if ctx == nil {
		return
	}
	cls := ctx.CLS()
	if cls.Get(pcontext.SlotLog) == nil {
		cls.Set(pcontext.SlotLog, wal.NewBuffer())
	}
	if cls.Get(pcontext.SlotSnapshot) == nil {
		cls.Set(pcontext.SlotSnapshot, e.oracle.RegisterSlot())
	}
}

// Vacuum trims version chains across all tables down to what the oldest
// active snapshot can still reach, returning the number of versions
// reclaimed. Run it periodically from a maintenance goroutine or between
// benchmark phases.
func (e *Engine) Vacuum(ctx *pcontext.Context) int {
	m := e.oracle.MinActiveBegin()
	total := 0
	e.mu.RLock()
	tabs := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tabs = append(tabs, t)
	}
	e.mu.RUnlock()
	for _, t := range tabs {
		t.primary.Scan(ctx, nil, nil, func(_ []byte, rec *mvcc.Record) bool {
			total += mvcc.Trim(rec, m)
			return true
		})
	}
	return total
}

// Recover replays a redo log stream into the engine, rebuilding table
// contents and advancing the timestamp oracle past the highest recovered
// commit. Tables and indexes must be created (empty) before calling.
func (e *Engine) Recover(r io.Reader) error {
	ctx := pcontext.Detached()
	return wal.Replay(r, func(tx wal.CommittedTxn) error {
		for _, rec := range tx.Records {
			e.mu.RLock()
			table, ok := e.tableIDs[rec.Table]
			e.mu.RUnlock()
			if !ok {
				return fmt.Errorf("engine: recovery references unknown table id %d", rec.Table)
			}
			mrec, _ := table.primary.GetOrInsert(ctx, rec.Key, mvcc.NewRecord())
			switch rec.Type {
			case wal.RecDelete:
				mvcc.InstallCommitted(mrec, nil, tx.CTS)
			default:
				mvcc.InstallCommitted(mrec, rec.Value, tx.CTS)
				if rec.Type == wal.RecInsert {
					table.forEachSecondary(func(si *secondaryIndex) {
						if sk := si.extract(rec.Key, rec.Value); sk != nil {
							si.tree.Insert(ctx, secondaryKey(sk, rec.Key), mrec)
						}
					})
				}
			}
		}
		e.oracle.AdvanceTo(tx.CTS)
		return nil
	})
}
