// Package engine is PreemptDB's storage engine: an ERMIA-style (paper §2.2)
// memory-optimized key-value engine with named tables, B+tree primary and
// secondary indexes, multi-versioned records, redo logging, and recovery.
//
// The engine is schema-less: rows are []byte payloads keyed by []byte primary
// keys, with per-workload codecs layered above (internal/tpcc, internal/tpch).
// Every operation takes the transaction whose context makes the work
// preemptible: index traversals and version-chain walks poll the context at
// each step, and commit/abort critical sections run inside non-preemptible
// regions (paper §4.4).
package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"preemptdb/internal/hotcache"
	"preemptdb/internal/index"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/wal"
)

// Engine-level errors.
var (
	// ErrNotFound reports that no visible row exists for the key.
	ErrNotFound = errors.New("engine: not found")
	// ErrDuplicateKey reports an insert over a visible live row.
	ErrDuplicateKey = errors.New("engine: duplicate key")
	// ErrNoTable reports an unknown table name.
	ErrNoTable = errors.New("engine: no such table")
	// ErrNoIndex reports an unknown secondary index name.
	ErrNoIndex = errors.New("engine: no such index")
)

// Config controls engine construction.
type Config struct {
	// Isolation is the isolation level for all transactions. Default:
	// snapshot isolation, the paper's baseline.
	Isolation mvcc.IsolationLevel
	// LogSink receives the redo log; nil discards it (pure in-memory mode,
	// the paper's evaluation configuration).
	LogSink io.Writer
	// SyncEachCommit forces a flush+sync per group-commit batch when the
	// sink supports it; committers are released only once their batch is
	// durable.
	SyncEachCommit bool
	// MaxBatchBytes stops a group-commit leader's gathering wait once the
	// open batch reaches this many framed bytes (0: no byte bound).
	MaxBatchBytes int
	// MaxBatchDelay bounds the extra latency a group-commit leader spends
	// gathering followers before writing its batch (0: write as soon as the
	// previous batch's I/O completes; batching then comes only from natural
	// I/O overlap).
	MaxBatchDelay time.Duration
	// VacuumInterval, when non-zero, starts a background goroutine that
	// incrementally trims version chains: every tick it walks a bounded
	// slice of VacuumBatch records from a persistent cursor, using the
	// oracle's MinActiveBegin horizon. Stop it with Close.
	VacuumInterval time.Duration
	// VacuumBatch is the number of records examined per vacuum tick
	// (default 1024).
	VacuumBatch int
	// Metrics receives the commit path's WAL-wait latency observations.
	// Default: a fresh registry; pass the scheduler's registry to get one
	// combined per-phase decomposition.
	Metrics *metrics.Registry
	// Cache, when non-nil, is the hot-key read-through cache in front of the
	// MVCC read path: snapshot-isolation point reads consult it before walking
	// a version chain, and every commit invalidates its written keys inside
	// the publication window (hotcache.BeginWrites before the MVCC
	// commit-point store, EndWrites after). Serializable transactions bypass
	// it — a cache hit would skip read-set registration.
	Cache *hotcache.Cache
	// ShardID identifies this engine within a sharded deployment; 2PC
	// prepare/resolve trace spans carry it so a cross-shard transaction's
	// merged trace attributes each leg to its participant shard.
	ShardID int
	// TraceSampling controls transaction-lifecycle trace events on the commit
	// path (the scheduling-event ring itself is owned by the core and always
	// on while attached). 0 (default): span events ride the existing 1-in-32
	// WAL sampling, keeping the instrumented commit path at its measured
	// overhead. >0: record on every commit (full-fidelity forensics; costs a
	// few extra ring stores per commit). <0: suppress lifecycle span events
	// entirely.
	TraceSampling int
}

// Engine is the storage engine. Create with New; it is safe for concurrent
// use by many transaction contexts.
type Engine struct {
	cfg    Config
	oracle *mvcc.Oracle
	log    *wal.Manager

	mu       sync.RWMutex
	tables   map[string]*Table
	tableIDs map[uint32]*Table
	nextID   uint32

	commits  atomic.Uint64
	aborts   atomic.Uint64
	vacuumed atomic.Uint64
	metrics  *metrics.Registry
	cache    *hotcache.Cache

	// Trace-event policy derived from Config (see Config.TraceSampling);
	// shardID is pre-narrowed for span detail bytes.
	shardID    uint8
	traceAll   bool // record lifecycle spans on every commit
	traceSpans bool // record lifecycle spans at all

	// prepMu/prepLSN track in-flight 2PC prepares: gid → a conservative LSN
	// lower bound captured BEFORE the prepare frame was staged. A disk
	// checkpoint must clamp its replay LSN below the oldest entry, or
	// truncation could drop the only durable copy of an in-doubt
	// transaction's redo.
	prepMu  sync.Mutex
	prepLSN map[uint64]uint64

	// Background vacuum lifecycle; cursor state lives in the goroutine.
	vacStop chan struct{}
	vacWG   sync.WaitGroup
	closed  atomic.Bool
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	sink := cfg.LogSink
	if sink == nil {
		sink = io.Discard
	}
	if cfg.VacuumBatch == 0 {
		cfg.VacuumBatch = 1024
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	e := &Engine{
		cfg:        cfg,
		oracle:     mvcc.NewOracle(),
		log:        wal.NewManager(sink, cfg.SyncEachCommit),
		tables:     make(map[string]*Table),
		tableIDs:   make(map[uint32]*Table),
		metrics:    cfg.Metrics,
		cache:      cfg.Cache,
		shardID:    uint8(cfg.ShardID),
		traceAll:   cfg.TraceSampling > 0,
		traceSpans: cfg.TraceSampling >= 0,
	}
	e.log.SetBatchLimits(cfg.MaxBatchBytes, cfg.MaxBatchDelay)
	if cfg.VacuumInterval > 0 {
		e.vacStop = make(chan struct{})
		e.vacWG.Add(1)
		go e.vacuumLoop()
	}
	return e
}

// Close stops the background vacuum goroutine (if running) and flushes the
// log. Idempotent; the engine remains usable for reads afterwards, but no
// further GC runs.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	if e.vacStop != nil {
		close(e.vacStop)
		e.vacWG.Wait()
	}
	return e.log.Flush()
}

// Oracle exposes the timestamp oracle (for GC and observability).
func (e *Engine) Oracle() *mvcc.Oracle { return e.oracle }

// Log exposes the WAL manager.
func (e *Engine) Log() *wal.Manager { return e.log }

// WALErr returns the WAL's latched failure, or nil while the log is healthy.
// Once non-nil the engine is effectively read-only: every write operation and
// commit with buffered writes fails fast with the same ErrWALFailed-wrapped
// error, while reads and scans keep working off the in-memory versions.
func (e *Engine) WALErr() error { return e.log.Err() }

// Metrics returns the engine's latency registry (never nil).
func (e *Engine) Metrics() *metrics.Registry { return e.metrics }

// Commits returns the number of committed transactions.
func (e *Engine) Commits() uint64 { return e.commits.Load() }

// Aborts returns the number of aborted transactions.
func (e *Engine) Aborts() uint64 { return e.aborts.Load() }

// IndexRestarts returns the cumulative optimistic-restart count across every
// table's primary and secondary B+trees — the contention signal for point
// operations and scans.
func (e *Engine) IndexRestarts() uint64 {
	var total uint64
	for _, t := range e.tablesByID() {
		total += t.primary.Restarts()
		t.forEachSecondary(func(si *secondaryIndex) {
			total += si.tree.Restarts()
		})
	}
	return total
}

// PartitionRestarts returns the cumulative whole-sample restart count of the
// morsel partition helper across every table, surfaced separately from
// IndexRestarts because one partition restart re-reads a whole level
// frontier.
func (e *Engine) PartitionRestarts() uint64 {
	var total uint64
	for _, t := range e.tablesByID() {
		total += t.primary.PartitionRestarts()
		t.forEachSecondary(func(si *secondaryIndex) {
			total += si.tree.PartitionRestarts()
		})
	}
	return total
}

// KeyExtractor derives a secondary-index key from a row. Secondary indexes
// are non-unique: the engine appends the primary key to the extracted key as
// a uniquifier, so several rows may share an extracted key and scans stay in
// (extracted key, primary key) order. Secondary keys must be immutable for
// the lifetime of the row: updates that change the derived key add a new
// index entry but do not remove the old one (readers re-check row visibility
// through the primary record, so a stale entry can surface a stale key but
// never stale data — callers with mutable indexed columns must re-verify the
// predicate against the returned row).
type KeyExtractor func(primaryKey, row []byte) []byte

// secondaryKey builds the stored index key: extracted key + primary key.
func secondaryKey(extracted, pk []byte) []byte {
	k := make([]byte, 0, len(extracted)+len(pk))
	k = append(k, extracted...)
	return append(k, pk...)
}

// Table is one named table: a primary B+tree from key to record, plus
// optional secondary indexes.
type Table struct {
	id      uint32
	name    string
	primary *index.Tree[*mvcc.Record]

	mu          sync.RWMutex
	secondaries map[string]*secondaryIndex
}

type secondaryIndex struct {
	name    string
	extract KeyExtractor
	tree    *index.Tree[*mvcc.Record]
}

// ID returns the table's numeric id (stable, used in the log).
func (t *Table) ID() uint32 { return t.id }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of primary-index entries (including records whose
// visible version may be a tombstone).
func (t *Table) Len() int { return t.primary.Len() }

// CreateTable creates (or returns the existing) table with the given name.
func (e *Engine) CreateTable(name string) *Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.tables[name]; ok {
		return t
	}
	e.nextID++
	t := &Table{
		id:          e.nextID,
		name:        name,
		primary:     index.New[*mvcc.Record](),
		secondaries: make(map[string]*secondaryIndex),
	}
	e.tables[name] = t
	e.tableIDs[t.id] = t
	return t
}

// Table returns the named table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// CachedGet serves a point read straight from the hot-key cache — no
// transaction, no oracle slot, no MVCC chain walk. A present entry is always
// the newest committed version (committers remove entries before publishing a
// newer one), so a hit reads as "current committed value at some instant
// during the call". ok is false on a miss or when no cache is configured; the
// caller falls back to a transactional read. The returned slice is shared and
// must be treated as read-only.
func (e *Engine) CachedGet(table string, key []byte) ([]byte, bool) {
	if e.cache == nil {
		return nil, false
	}
	t, err := e.Table(table)
	if err != nil {
		return nil, false
	}
	// ^uint64(0) as the begin timestamp: a fast-path read has no snapshot, and
	// any cached (committed) entry is covered by "now".
	return e.cache.Peek(t.id, key, ^uint64(0))
}

// MustTable returns the named table, panicking if absent; for workload code
// whose schema is created at startup.
func (e *Engine) MustTable(name string) *Table {
	t, err := e.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// CreateIndex adds a secondary index to the table. Existing rows are NOT
// back-filled; create indexes before loading. The extractor may return nil
// to exclude a row from the index.
func (t *Table) CreateIndex(name string, extract KeyExtractor) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondaries[name]; ok {
		panic(fmt.Sprintf("engine: index %q already exists on %q", name, t.name))
	}
	t.secondaries[name] = &secondaryIndex{name: name, extract: extract, tree: index.New[*mvcc.Record]()}
}

func (t *Table) secondary(name string) (*secondaryIndex, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	si, ok := t.secondaries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q on table %q", ErrNoIndex, name, t.name)
	}
	return si, nil
}

// forEachSecondary iterates the table's secondary indexes.
func (t *Table) forEachSecondary(fn func(*secondaryIndex)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, si := range t.secondaries {
		fn(si)
	}
}

// AttachContext prepares a transaction context for running transactions on
// this engine: a private WAL buffer and a snapshot-tracking slot are placed
// in its CLS, and the engine records itself as the context's owner.
// Idempotent; called implicitly by Begin when needed. A context already owned
// by ANOTHER engine is left untouched — its CLS snapshot slot belongs to the
// other engine's oracle, so this engine must not reuse (or overwrite) it;
// Begin detects the foreign owner and falls back to a guest transaction.
//
// Because everything pooled here (WAL buffer, snapshot slot, and the pooled
// Txn that Begin caches per context) hangs off the Context rather than the
// core or worker, K-way multiplexing needs no extra engine state: a core
// interleaving K transactions at stall boundaries runs each on its own
// context, so each sees its own buffers — attach every slot of a K-way core
// (the scheduler facade does) and the isolation falls out of CLS.
func (e *Engine) AttachContext(ctx *pcontext.Context) {
	if ctx == nil {
		return
	}
	cls := ctx.CLS()
	if owner := cls.Get(pcontext.SlotOwner); owner != nil {
		return // ours (idempotent) or another engine's (guest path)
	}
	cls.Set(pcontext.SlotOwner, e)
	if cls.Get(pcontext.SlotLog) == nil {
		cls.Set(pcontext.SlotLog, wal.NewBuffer())
	}
	if cls.Get(pcontext.SlotSnapshot) == nil {
		cls.Set(pcontext.SlotSnapshot, e.oracle.RegisterSlot())
	}
}

// Owns reports whether this engine is the context's CLS owner (the engine
// whose oracle registered the context's snapshot slot).
func (e *Engine) Owns(ctx *pcontext.Context) bool {
	if ctx == nil {
		return false
	}
	return ctx.CLS().Get(pcontext.SlotOwner) == e
}

// DetachContext tears down what AttachContext installed: the snapshot slot
// is returned to the oracle's free list (so the MinActiveBegin scan set stays
// bounded by the number of live contexts) and the CLS entries are cleared.
// Call it when a context will no longer run transactions on this engine; a
// never-attached or nil context is a no-op, as is a context owned by a
// different engine (unregistering a foreign slot into this oracle's free
// list would corrupt both slot tables).
func (e *Engine) DetachContext(ctx *pcontext.Context) {
	if ctx == nil {
		return
	}
	cls := ctx.CLS()
	if owner := cls.Get(pcontext.SlotOwner); owner != nil && owner != e {
		return
	}
	if s, ok := cls.Get(pcontext.SlotSnapshot).(*mvcc.ActiveSlot); ok {
		e.oracle.UnregisterSlot(s)
	}
	cls.Set(pcontext.SlotSnapshot, nil)
	cls.Set(pcontext.SlotLog, nil)
	cls.Set(pcontext.SlotScratch, nil)
	cls.Set(pcontext.SlotOwner, nil)
}

// Vacuum trims version chains across all tables down to what the oldest
// active snapshot can still reach, returning the number of versions
// reclaimed. This is the manual full sweep; engines configured with
// VacuumInterval run the same trim incrementally in the background.
func (e *Engine) Vacuum(ctx *pcontext.Context) int {
	m := e.oracle.MinActiveBegin()
	total := 0
	for _, t := range e.tablesByID() {
		t.primary.Scan(ctx, nil, nil, func(_ []byte, rec *mvcc.Record) bool {
			total += mvcc.Trim(rec, m)
			return true
		})
	}
	e.vacuumed.Add(uint64(total))
	return total
}

// Vacuumed returns the total number of versions reclaimed by manual and
// background vacuum since the engine was created.
func (e *Engine) Vacuumed() uint64 { return e.vacuumed.Load() }

// tablesByID snapshots the table list in id order (stable cursor order for
// the incremental vacuum).
func (e *Engine) tablesByID() []*Table {
	e.mu.RLock()
	tabs := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tabs = append(tabs, t)
	}
	e.mu.RUnlock()
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].id < tabs[j].id })
	return tabs
}

// vacuumLoop is the background incremental vacuum: every VacuumInterval it
// trims a bounded slice of VacuumBatch records, resuming from a persistent
// (table id, key) cursor so long tables are reclaimed across ticks without
// ever stalling foreground work behind a full sweep.
func (e *Engine) vacuumLoop() {
	defer e.vacWG.Done()
	ctx := pcontext.Detached()
	ticker := time.NewTicker(e.cfg.VacuumInterval)
	defer ticker.Stop()
	var curTable uint32 // resume at the first table with id >= curTable
	var curKey []byte   // resume at the first key > curKey (nil: table start)
	for {
		select {
		case <-e.vacStop:
			return
		case <-ticker.C:
		}
		curTable, curKey = e.vacuumSlice(ctx, curTable, curKey, e.cfg.VacuumBatch)
	}
}

// vacuumSlice trims up to batch records starting at the (table, afterKey)
// cursor and returns the advanced cursor, wrapping to the first table after
// a full cycle.
func (e *Engine) vacuumSlice(ctx *pcontext.Context, table uint32, afterKey []byte, batch int) (uint32, []byte) {
	tabs := e.tablesByID()
	if len(tabs) == 0 {
		return 0, nil
	}
	m := e.oracle.MinActiveBegin()
	reclaimed, budget := 0, batch
	for _, t := range tabs {
		if t.id < table {
			continue
		}
		start := afterKey
		if t.id != table {
			start = nil
		}
		var lastKey []byte
		scanned := 0
		t.primary.Scan(ctx, start, nil, func(k []byte, rec *mvcc.Record) bool {
			if scanned >= budget {
				lastKey = append(lastKey[:0], k...) // resume here next tick
				return false
			}
			scanned++
			reclaimed += mvcc.Trim(rec, m)
			return true
		})
		if lastKey != nil {
			e.vacuumed.Add(uint64(reclaimed))
			return t.id, lastKey
		}
		budget -= scanned
		afterKey = nil
		if budget <= 0 && t != tabs[len(tabs)-1] {
			e.vacuumed.Add(uint64(reclaimed))
			return t.id + 1, nil
		}
	}
	e.vacuumed.Add(uint64(reclaimed))
	return 0, nil // full cycle done; wrap around
}

// Recover replays a redo log stream into the engine, rebuilding table
// contents and advancing the timestamp oracle past the highest recovered
// commit. Tables and indexes must be created before calling; a restored
// checkpoint may already hold some of the stream's transactions — each record
// is applied only when its commit timestamp is newer than the record's
// newest committed version (apply-if-newer), so replaying a log region that
// overlaps the checkpoint is idempotent.
//
// The returned ReplayResult reports how far the stream was consumed: a torn
// tail (Torn set) is the benign crash signature — everything before Offset is
// applied and the caller may truncate and resume appending there — while
// mid-stream damage surfaces as ErrCorrupt and the caller must fall back to
// an older checkpoint/log pair rather than trust the partial state.
func (e *Engine) Recover(r io.Reader) (wal.ReplayResult, error) {
	ctx := pcontext.Detached()
	return wal.ReplayStream(r, func(tx wal.CommittedTxn) error {
		return e.applyTxn(ctx, tx)
	})
}

// RecoverPrepared is Recover for a sharded, 2PC-capable log: it additionally
// collects the stream's unresolved prepare records. A prepare frame whose gid
// later reappears as a committed frame (the resolution record) is resolved;
// the leftovers are the in-doubt set the caller must settle against the
// coordinator's decision table — ApplyRecovered to commit, drop to abort
// (presumed abort: no decision anywhere means the coordinator never decided
// to commit).
func (e *Engine) RecoverPrepared(r io.Reader) (wal.ReplayResult, []wal.PreparedTxn, error) {
	ctx := pcontext.Detached()
	pending := make(map[uint64]int) // gid → index in order
	var order []wal.PreparedTxn
	res, err := wal.ReplayStreamPrepared(r,
		func(tx wal.CommittedTxn) error {
			if len(pending) > 0 {
				if i, ok := pending[tx.TxnID]; ok {
					// Resolution record: the prepare committed before the
					// crash; the committed frame carries the authoritative
					// redo, so the prepare itself is fully superseded.
					delete(pending, tx.TxnID)
					order[i].Records = nil // mark resolved
				}
			}
			return e.applyTxn(ctx, tx)
		},
		func(p wal.PreparedTxn) error {
			pending[p.GID] = len(order)
			order = append(order, p)
			return nil
		})
	var inDoubt []wal.PreparedTxn
	for _, p := range order {
		if _, ok := pending[p.GID]; ok {
			inDoubt = append(inDoubt, p)
		}
	}
	return res, inDoubt, err
}

// ApplyRecovered applies one transaction's redo records with apply-if-newer
// semantics and advances the oracle. Recovery-only: the facade uses it to
// commit an in-doubt 2PC participant once the coordinator's decision record
// has been found.
func (e *Engine) ApplyRecovered(tx wal.CommittedTxn) error {
	return e.applyTxn(pcontext.Detached(), tx)
}

// applyTxn installs one recovered transaction's records.
func (e *Engine) applyTxn(ctx *pcontext.Context, tx wal.CommittedTxn) error {
	// Resolve table ids under a single engine lock per committed
	// transaction instead of re-locking for every record; consecutive
	// records for the same table (the common log shape) skip the map
	// lookup entirely.
	e.mu.RLock()
	defer e.mu.RUnlock()
	var table *Table
	for i := range tx.Records {
		rec := &tx.Records[i]
		if table == nil || table.id != rec.Table {
			t, ok := e.tableIDs[rec.Table]
			if !ok {
				return fmt.Errorf("engine: recovery references unknown table id %d", rec.Table)
			}
			table = t
		}
		mrec, _ := table.primary.GetOrInsert(ctx, rec.Key, mvcc.NewRecord())
		if tx.CTS <= mvcc.NewestCommittedTS(mrec) {
			// Already present — the restored checkpoint included this
			// version (or a newer one). Skipping keeps replay idempotent
			// and preserves InstallCommitted's non-decreasing-cts rule;
			// the checkpoint restored the secondary-index entry too.
			continue
		}
		switch rec.Type {
		case wal.RecDelete:
			mvcc.InstallCommitted(mrec, nil, tx.CTS)
		default:
			mvcc.InstallCommitted(mrec, rec.Value, tx.CTS)
			if rec.Type == wal.RecInsert {
				table.forEachSecondary(func(si *secondaryIndex) {
					if sk := si.extract(rec.Key, rec.Value); sk != nil {
						si.tree.Insert(ctx, secondaryKey(sk, rec.Key), mrec)
					}
				})
			}
		}
	}
	e.oracle.AdvanceTo(tx.CTS)
	return nil
}

// registerPrepare records gid's conservative redo LSN lower bound. Called
// BEFORE the prepare frame is staged so the bound can never land past the
// frame.
func (e *Engine) registerPrepare(gid uint64) {
	e.prepMu.Lock()
	if e.prepLSN == nil {
		e.prepLSN = make(map[uint64]uint64)
	}
	e.prepLSN[gid] = e.log.LSN()
	e.prepMu.Unlock()
}

// unregisterPrepare drops gid from the prepare registry (resolved or rolled
// back).
func (e *Engine) unregisterPrepare(gid uint64) {
	e.prepMu.Lock()
	delete(e.prepLSN, gid)
	e.prepMu.Unlock()
}

// OldestPrepareLSN returns the smallest LSN bound among in-flight prepares,
// and whether any exist. Disk checkpoints clamp their replay LSN to it so WAL
// truncation never discards an unresolved prepare's only durable redo.
func (e *Engine) OldestPrepareLSN() (uint64, bool) {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	var min uint64
	found := false
	for _, lsn := range e.prepLSN {
		if !found || lsn < min {
			min, found = lsn, true
		}
	}
	return min, found
}

// PreparedGIDs returns the global ids of transactions this engine has
// prepared (2PC) but not yet resolved — the in-doubt set at the instant of
// the call. Diagnostic surface (flight recorder, introspection); order is
// unspecified.
func (e *Engine) PreparedGIDs() []uint64 {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	if len(e.prepLSN) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(e.prepLSN))
	for gid := range e.prepLSN {
		out = append(out, gid)
	}
	return out
}
