package engine

import (
	"bufio"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"preemptdb/internal/hotcache"
	"preemptdb/internal/keys"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

// Commit-path benchmarks. BenchmarkCommitSI/Serializable measure the
// single-context steady state and must report 0 allocs/op: the engine Txn, the
// MVCC Txn, its read/write sets, the version (arena, amortized), and the WAL
// framing scratch are all pooled per context. BenchmarkCommitGroupCommit vs
// BenchmarkCommitNoBatchBaseline is the tentpole A/B: concurrent durable
// committers through the leader/follower pipeline against the seed's
// latch-write-flush-sync per commit.

func benchCommitIso(b *testing.B, iso mvcc.IsolationLevel) {
	e := New(Config{})
	tab := e.CreateTable("bench")
	ctx := pcontext.Detached()
	key := keys.Uint32(nil, 1)
	val := make([]byte, 64)
	seed := e.BeginIso(ctx, iso)
	if err := seed.Insert(tab, key, val); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := e.BeginIso(ctx, iso)
		if err := tx.Update(tab, key, val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.Vacuum(nil)
}

func BenchmarkCommitSI(b *testing.B) { benchCommitIso(b, mvcc.SnapshotIsolation) }

// BenchmarkCommitSICached is BenchmarkCommitSI with the hot-key cache wired
// in: every commit runs the BeginWrites/EndWrites invalidation hooks, and the
// bar stays 0 allocs/op.
func BenchmarkCommitSICached(b *testing.B) {
	e := New(Config{Cache: hotcache.New(hotcache.Config{MaxBytes: 1 << 20})})
	tab := e.CreateTable("bench")
	ctx := pcontext.Detached()
	key := keys.Uint32(nil, 1)
	val := make([]byte, 64)
	seed := e.Begin(ctx)
	if err := seed.Insert(tab, key, val); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := e.Begin(ctx)
		if err := tx.Update(tab, key, val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.Vacuum(nil)
}

func BenchmarkCommitSerializable(b *testing.B) { benchCommitIso(b, mvcc.Serializable) }

// benchParallelUpdates runs update transactions from concurrent committers,
// each on a private key (no conflicts: the A/B isolates log behavior).
// perCommit, when non-nil, is the seed-style log write performed after the
// engine commit.
func benchParallelUpdates(b *testing.B, e *Engine, tab *Table, perCommit func()) {
	var ids atomic.Uint32
	val := make([]byte, 64)
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ctx := pcontext.Detached()
		key := keys.Uint32(nil, ids.Add(1))
		tx := e.Begin(ctx)
		if err := tx.Insert(tab, key, val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		for pb.Next() {
			tx := e.Begin(ctx)
			if err := tx.Update(tab, key, val); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			if perCommit != nil {
				perCommit()
			}
		}
		e.DetachContext(ctx)
	})
}

// BenchmarkCommitGroupCommit: concurrent committers with a durable file sink;
// SyncEachCommit makes every transaction wait for its batch's flush+sync, so
// throughput comes from leader/follower batching.
func BenchmarkCommitGroupCommit(b *testing.B) {
	f, err := os.Create(filepath.Join(b.TempDir(), "wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	e := New(Config{LogSink: f, SyncEachCommit: true})
	defer e.Close()
	tab := e.CreateTable("bench")
	benchParallelUpdates(b, e, tab, nil)
	b.ReportMetric(float64(e.Commits())/float64(max(e.Log().Batches(), 1)), "txns/batch")
}

// BenchmarkCommitNoBatchBaseline reproduces the seed's commit path for the
// A/B: the engine logs to a discard sink (negligible), and each commit then
// performs the seed's exact log I/O — one global latch held across
// write+flush+sync of a frame-sized blob. Group-commit speedup is this
// benchmark's ns/op over BenchmarkCommitGroupCommit's.
func BenchmarkCommitNoBatchBaseline(b *testing.B) {
	f, err := os.Create(filepath.Join(b.TempDir(), "wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	e := New(Config{})
	defer e.Close()
	tab := e.CreateTable("bench")

	var mu sync.Mutex
	w := bufio.NewWriterSize(f, 1<<20)
	frame := make([]byte, 32+75) // header + one 64-byte-value update record
	benchParallelUpdates(b, e, tab, func() {
		mu.Lock()
		w.Write(frame)
		w.Flush()
		f.Sync()
		mu.Unlock()
	})
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
