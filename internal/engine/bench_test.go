package engine

import (
	"testing"

	"preemptdb/internal/keys"
)

func loadedTable(b *testing.B, n int) (*Engine, *Table) {
	b.Helper()
	e := newEngine()
	tab := e.CreateTable("bench")
	tx := e.Begin(nil)
	val := make([]byte, 64)
	for i := 0; i < n; i++ {
		if err := tx.Insert(tab, keys.Uint32(nil, uint32(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return e, tab
}

func BenchmarkTxnGet(b *testing.B) {
	e, tab := loadedTable(b, 100000)
	tx := e.Begin(nil)
	defer tx.Abort()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Get(tab, keys.Uint32(nil, uint32(i%100000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnUpdateCommit(b *testing.B) {
	e, tab := loadedTable(b, 1000)
	val := make([]byte, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := e.Begin(nil)
		if err := tx.Update(tab, keys.Uint32(nil, uint32(i%1000)), val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.Vacuum(nil)
}

func BenchmarkTxnInsertCommit(b *testing.B) {
	e := newEngine()
	tab := e.CreateTable("bench")
	val := make([]byte, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := e.Begin(nil)
		if err := tx.Insert(tab, keys.Uint32(nil, uint32(i)), val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnScan1000(b *testing.B) {
	e, tab := loadedTable(b, 100000)
	tx := e.Begin(nil)
	defer tx.Abort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := uint32((i * 977) % 99000)
		n := 0
		tx.Scan(tab, keys.Uint32(nil, start), keys.Uint32(nil, start+1000),
			func(k, v []byte) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkTxnScanDesc1000(b *testing.B) {
	e, tab := loadedTable(b, 100000)
	tx := e.Begin(nil)
	defer tx.Abort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := uint32((i * 977) % 99000)
		n := 0
		tx.ScanDesc(tab, keys.Uint32(nil, start), keys.Uint32(nil, start+1000),
			func(k, v []byte) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("scanned %d", n)
		}
	}
}
