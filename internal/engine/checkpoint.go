package engine

// Checkpointing. A checkpoint is a transactionally consistent snapshot of
// every table's visible rows, taken under one read transaction. Restoring a
// checkpoint and then replaying a redo log that was *started at checkpoint
// time* reproduces the database; the usual deployment rotates the log sink
// right after a successful checkpoint:
//
//	e.Checkpoint(ckptFile)       // 1. snapshot
//	// 2. switch to a fresh log file; the old one may be deleted
//
// Recovery: create the schema, RestoreCheckpoint(ckpt), then Recover(log).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

const checkpointMagic uint32 = 0x70636b70 // "pckp"

// Checkpoint writes a consistent snapshot of all tables to w. The snapshot
// is one read transaction: concurrent writers are unaffected (MVCC), and the
// checkpoint observes none of their in-flight work.
func (e *Engine) Checkpoint(w io.Writer) error {
	ctx := pcontext.Detached()
	tx := e.Begin(ctx)
	defer tx.Abort()

	e.mu.RLock()
	tabs := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tabs = append(tabs, t)
	}
	e.mu.RUnlock()
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].id < tabs[j].id })

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint64(hdr[4:], tx.Snapshot())
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(tabs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	for _, tab := range tabs {
		if err := checkpointTable(bw, tx, tab); err != nil {
			return fmt.Errorf("engine: checkpoint table %q: %w", tab.name, err)
		}
	}
	return bw.Flush()
}

// checkpointTable writes one table frame: id, name, row count + CRC
// (computed in a first pass over the stable snapshot), then the rows.
func checkpointTable(bw *bufio.Writer, tx *Txn, tab *Table) error {
	// Pass 1: count rows and compute CRC over encoded rows.
	crc := crc32.NewIEEE()
	var rows uint64
	var scratch []byte
	encode := func(k, v []byte) []byte {
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(k)))
		scratch = append(scratch, k...)
		scratch = binary.AppendUvarint(scratch, uint64(len(v)))
		return append(scratch, v...)
	}
	if err := tx.Scan(tab, nil, nil, func(k, v []byte) bool {
		crc.Write(encode(k, v))
		rows++
		return true
	}); err != nil {
		return err
	}

	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, tab.id)
	hdr = binary.AppendUvarint(hdr, uint64(len(tab.name)))
	hdr = append(hdr, tab.name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, rows)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc.Sum32())
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	// Pass 2: stream the rows. The snapshot is stable, so both passes see
	// identical data.
	var werr error
	if err := tx.Scan(tab, nil, nil, func(k, v []byte) bool {
		if _, werr = bw.Write(encode(k, v)); werr != nil {
			return false
		}
		return true
	}); err != nil {
		return err
	}
	return werr
}

// RestoreCheckpoint loads a checkpoint stream into the engine. Tables (and
// their secondary indexes) must already be created, matching the schema at
// checkpoint time; rows are installed as committed versions at the
// checkpoint's snapshot timestamp and the oracle is advanced past it.
func (e *Engine) RestoreCheckpoint(r io.Reader) error {
	ctx := pcontext.Detached()
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("engine: checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checkpointMagic {
		return fmt.Errorf("engine: not a checkpoint stream")
	}
	snapTS := binary.LittleEndian.Uint64(hdr[4:])
	if snapTS == 0 {
		snapTS = 1
	}
	numTables := binary.LittleEndian.Uint32(hdr[12:])

	for t := uint32(0); t < numTables; t++ {
		var idb [4]byte
		if _, err := io.ReadFull(br, idb[:]); err != nil {
			return fmt.Errorf("engine: checkpoint table %d: %w", t, err)
		}
		id := binary.LittleEndian.Uint32(idb[:])
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return err
		}
		var meta [12]byte
		if _, err := io.ReadFull(br, meta[:]); err != nil {
			return err
		}
		rows := binary.LittleEndian.Uint64(meta[0:])
		wantCRC := binary.LittleEndian.Uint32(meta[8:])

		e.mu.RLock()
		tab, ok := e.tableIDs[id]
		e.mu.RUnlock()
		if !ok || tab.name != string(nameBuf) {
			return fmt.Errorf("engine: checkpoint table %q (id %d) not in schema", nameBuf, id)
		}

		crc := crc32.NewIEEE()
		var scratch []byte
		for i := uint64(0); i < rows; i++ {
			k, err := readBlob(br, &scratch)
			if err != nil {
				return fmt.Errorf("engine: checkpoint row key: %w", err)
			}
			key := append([]byte(nil), k...)
			v, err := readBlob(br, &scratch)
			if err != nil {
				return fmt.Errorf("engine: checkpoint row value: %w", err)
			}
			val := append([]byte(nil), v...)
			crcFeed(crc, key, val)

			rec, _ := tab.primary.GetOrInsert(ctx, key, mvcc.NewRecord())
			mvcc.InstallCommitted(rec, val, snapTS)
			tab.forEachSecondary(func(si *secondaryIndex) {
				if sk := si.extract(key, val); sk != nil {
					si.tree.Insert(ctx, secondaryKey(sk, key), rec)
				}
			})
		}
		if crc.Sum32() != wantCRC {
			return fmt.Errorf("engine: checkpoint CRC mismatch for table %q", tab.name)
		}
	}
	e.oracle.AdvanceTo(snapTS)
	return nil
}

func readBlob(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if uint64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func crcFeed(crc io.Writer, k, v []byte) {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(k)))
	b = append(b, k...)
	b = binary.AppendUvarint(b, uint64(len(v)))
	b = append(b, v...)
	crc.Write(b)
}
