package engine

// Checkpointing. A checkpoint is a transactionally consistent snapshot of
// every table's visible rows, taken under one read transaction. Restoring a
// checkpoint and then replaying a redo log that was started *at or before*
// checkpoint time reproduces the database: v2 checkpoints record each row's
// true commit timestamp, so Recover's apply-if-newer guard makes replaying
// the overlapping log region idempotent.
//
// Why per-row timestamps matter: the checkpoint transaction's snapshot S is
// read from the oracle, but a writer that drew cts <= S before the snapshot
// began may *publish* mid-scan (publication happens after timestamp
// assignment). Flattening every row to S would make replay unable to tell
// "already in the checkpoint" from "raced in after my scan pass", silently
// dropping the racer; with true timestamps the replay decision is exact.
//
// Apply-if-newer only helps for racers whose frames land *after* the LSN the
// caller captured for the checkpoint. A racer whose frame the captured LSN
// already covers (its batch leader wrote and advanced the LSN before the
// racer's goroutine published) would be skipped by replay AND invisible to
// the scan — lost. Checkpoint therefore runs the WAL's PublishBarrier before
// drawing its snapshot timestamp: every transaction staged by then has
// published, at a commit timestamp the snapshot covers.
//
// Recovery: create the schema, RestoreCheckpoint(ckpt), then Recover(log)
// where the log covers at least everything after the LSN captured *before*
// the checkpoint began.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

const (
	checkpointMagic   uint32 = 0x70636b70 // "pckp", v1: rows flattened at snapTS
	checkpointMagicV2 uint32 = 0x70636b71 // v2: per-row commit timestamps
)

// Checkpoint writes a consistent snapshot of all tables to w in the v2
// format. The snapshot is one read transaction: concurrent writers are
// unaffected (MVCC), and the read transaction pins the GC horizon so the
// versions visible at the snapshot cannot be trimmed mid-scan.
func (e *Engine) Checkpoint(w io.Writer) error {
	// Before drawing the snapshot timestamp, wait out every committer caught
	// between group-commit staging and MVCC publication: their frames may
	// already be covered by an LSN the caller captured for this checkpoint,
	// so the snapshot must see their versions (at commit timestamps <= the
	// snapshot's, since timestamps are assigned before staging). Commits that
	// stage after the caller's LSN capture land past it in the log and are
	// handled by the replay's apply-if-newer guard instead.
	e.log.PublishBarrier()
	ctx := pcontext.Detached()
	tx := e.Begin(ctx)
	defer tx.Abort()
	defer e.DetachContext(ctx)
	snapTS := tx.Snapshot()

	e.mu.RLock()
	tabs := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tabs = append(tabs, t)
	}
	e.mu.RUnlock()
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].id < tabs[j].id })

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagicV2)
	binary.LittleEndian.PutUint64(hdr[4:], snapTS)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(tabs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	for _, tab := range tabs {
		if err := checkpointTable(bw, ctx, tab, snapTS); err != nil {
			return fmt.Errorf("engine: checkpoint table %q: %w", tab.name, err)
		}
	}
	return bw.Flush()
}

// checkpointTable writes one table frame: id, name, row count + CRC, then the
// rows as (key, value, cts) triples. Rows are encoded in one pass into a
// buffer before the header goes out: a second scan could observe a version
// that published between the passes (see package comment), so count, CRC and
// payload must all come from the same traversal. The buffer briefly holds one
// table's encoded rows — bounded by the table itself, which already lives in
// memory.
func checkpointTable(bw *bufio.Writer, ctx *pcontext.Context, tab *Table, snapTS uint64) error {
	var rowBuf bytes.Buffer
	var scratch []byte
	var rows uint64
	tab.primary.Scan(ctx, nil, nil, func(k []byte, rec *mvcc.Record) bool {
		data, cts, ok := mvcc.ReadCommittedAt(rec, snapTS)
		if !ok || data == nil {
			return true // never committed here, or a tombstone: not a row
		}
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(k)))
		scratch = append(scratch, k...)
		scratch = binary.AppendUvarint(scratch, uint64(len(data)))
		scratch = append(scratch, data...)
		scratch = binary.AppendUvarint(scratch, cts)
		rowBuf.Write(scratch)
		rows++
		return true
	})

	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, tab.id)
	hdr = binary.AppendUvarint(hdr, uint64(len(tab.name)))
	hdr = append(hdr, tab.name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, rows)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(rowBuf.Bytes()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	_, err := bw.Write(rowBuf.Bytes())
	return err
}

// RestoreCheckpoint loads a checkpoint stream (either format) into the
// engine. Tables (and their secondary indexes) must already be created,
// matching the schema at checkpoint time; rows are installed as committed
// versions — at their recorded commit timestamps for v2, flattened at the
// snapshot timestamp for v1 — and the oracle is advanced past the snapshot.
// Any CRC or structural mismatch aborts the restore with an error; the engine
// contents are then partial and the caller must discard it and fall back to
// an older checkpoint.
func (e *Engine) RestoreCheckpoint(r io.Reader) error {
	ctx := pcontext.Detached()
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("engine: checkpoint header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != checkpointMagic && magic != checkpointMagicV2 {
		return fmt.Errorf("engine: not a checkpoint stream")
	}
	v2 := magic == checkpointMagicV2
	snapTS := binary.LittleEndian.Uint64(hdr[4:])
	if snapTS == 0 {
		snapTS = 1
	}
	numTables := binary.LittleEndian.Uint32(hdr[12:])

	for t := uint32(0); t < numTables; t++ {
		var idb [4]byte
		if _, err := io.ReadFull(br, idb[:]); err != nil {
			return fmt.Errorf("engine: checkpoint table %d: %w", t, err)
		}
		id := binary.LittleEndian.Uint32(idb[:])
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return err
		}
		var meta [12]byte
		if _, err := io.ReadFull(br, meta[:]); err != nil {
			return err
		}
		rows := binary.LittleEndian.Uint64(meta[0:])
		wantCRC := binary.LittleEndian.Uint32(meta[8:])

		e.mu.RLock()
		tab, ok := e.tableIDs[id]
		e.mu.RUnlock()
		if !ok || tab.name != string(nameBuf) {
			return fmt.Errorf("engine: checkpoint table %q (id %d) not in schema", nameBuf, id)
		}

		crc := crc32.NewIEEE()
		var scratch []byte
		for i := uint64(0); i < rows; i++ {
			k, err := readBlob(br, &scratch)
			if err != nil {
				return fmt.Errorf("engine: checkpoint row key: %w", err)
			}
			key := append([]byte(nil), k...)
			v, err := readBlob(br, &scratch)
			if err != nil {
				return fmt.Errorf("engine: checkpoint row value: %w", err)
			}
			val := append([]byte(nil), v...)
			cts := snapTS
			if v2 {
				if cts, err = binary.ReadUvarint(br); err != nil {
					return fmt.Errorf("engine: checkpoint row cts: %w", err)
				}
			}
			crcFeed(crc, key, val)
			if v2 {
				var b []byte
				crc.Write(binary.AppendUvarint(b, cts))
			}

			rec, _ := tab.primary.GetOrInsert(ctx, key, mvcc.NewRecord())
			mvcc.InstallCommitted(rec, val, cts)
			tab.forEachSecondary(func(si *secondaryIndex) {
				if sk := si.extract(key, val); sk != nil {
					si.tree.Insert(ctx, secondaryKey(sk, key), rec)
				}
			})
		}
		if crc.Sum32() != wantCRC {
			return fmt.Errorf("engine: checkpoint CRC mismatch for table %q", tab.name)
		}
	}
	e.oracle.AdvanceTo(snapTS)
	return nil
}

func readBlob(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if uint64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func crcFeed(crc io.Writer, k, v []byte) {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(k)))
	b = append(b, k...)
	b = binary.AppendUvarint(b, uint64(len(v)))
	b = append(b, v...)
	crc.Write(b)
}
