package engine

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/wal"
)

func u64key(i uint64) []byte { return binary.BigEndian.AppendUint64(nil, i) }

// assertHorizonPast commits one unrelated write (advancing the oracle clock)
// and asserts the GC horizon moved past snap — i.e. the aborted/canceled
// transaction released its oracle slot instead of pinning MinActiveBegin.
func assertHorizonPast(t *testing.T, e *Engine, snap uint64) {
	t.Helper()
	bump := e.Begin(nil)
	if err := bump.Put(e.CreateTable("horizon-bump"), []byte("k"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := bump.Commit(); err != nil {
		t.Fatal(err)
	}
	if m := e.Oracle().MinActiveBegin(); m <= snap {
		t.Fatalf("MinActiveBegin = %d <= snapshot %d: canceled txn still pins the GC horizon", m, snap)
	}
}

func loadRows(t *testing.T, e *Engine, tab *Table, n int) {
	t.Helper()
	tx := e.Begin(nil)
	val := make([]byte, 32)
	for i := 0; i < n; i++ {
		if err := tx.Insert(tab, u64key(uint64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMidScanReleasesResources is the lifecycle acceptance test: a
// canceled transaction must unwind mid-scan with the typed error and give
// back everything it held — the oracle slot's snapshot advertisement, the
// pooled engine.Txn, and the redo buffer — so a canceled Q2 cannot pin the
// GC horizon or leak CLS state.
func TestCancelMidScanReleasesResources(t *testing.T) {
	e := newEngine()
	defer e.Close()
	tab := e.CreateTable("t")
	loadRows(t, e, tab, 2000)

	ctx := pcontext.Detached()
	defer e.DetachContext(ctx)

	tx := e.Begin(ctx)
	snap := tx.Snapshot()
	seen := 0
	err := tx.Scan(tab, nil, nil, func(k, v []byte) bool {
		seen++
		if seen == 100 {
			ctx.Cancel()
		}
		return true
	})
	if !errors.Is(err, pcontext.ErrCanceled) {
		t.Fatalf("Scan err = %v", err)
	}
	if seen >= 2000 {
		t.Fatalf("scan ran to completion (%d rows) despite cancel", seen)
	}
	// Committing a canceled transaction must refuse, abort, and release.
	if err := tx.Commit(); !errors.Is(err, pcontext.ErrCanceled) {
		t.Fatalf("Commit err = %v", err)
	}

	// Oracle: the canceled snapshot must no longer be advertised. Advance
	// the clock with an unrelated commit; a still-pinned slot would hold
	// MinActiveBegin at the canceled transaction's snapshot.
	assertHorizonPast(t, e, snap)
	// WAL: the context's redo buffer must be empty for the next request.
	if buf := ctx.CLS().Get(pcontext.SlotLog).(*wal.Buffer); buf.Len() != 0 {
		t.Fatalf("redo buffer holds %d records after abort", buf.Len())
	}
	// Pool: the context's cached Txn must be reusable (same object, fresh
	// transaction) once the lifecycle is cleared.
	ctx.Disarm()
	ctx.Arm(0)
	defer ctx.Disarm()
	tx2 := e.Begin(ctx)
	if tx2 != tx {
		t.Fatalf("pooled Txn not reused after canceled transaction")
	}
	n := 0
	if err := tx2.Scan(tab, nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("scan after cancel saw %d rows", n)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineUnwindsScanWithinOnePollInterval arms a deadline that expires
// mid-scan; the scan must stop at the next poll (leaf boundary) rather than
// finish, and the typed error must reach the caller.
func TestDeadlineUnwindsScanWithinOnePollInterval(t *testing.T) {
	e := newEngine()
	defer e.Close()
	tab := e.CreateTable("t")
	loadRows(t, e, tab, 5000)

	ctx := pcontext.Detached()
	defer e.DetachContext(ctx)
	ctx.Arm(clock.Nanos() + int64(200*time.Microsecond))
	defer ctx.Disarm()

	tx := e.Begin(ctx)
	snap := tx.Snapshot()
	rounds, rows := 0, 0
	var err error
	for rounds = 0; rounds < 1_000_000; rounds++ {
		err = tx.Scan(tab, nil, nil, func(k, v []byte) bool { rows++; return true })
		if err != nil {
			break
		}
	}
	if !errors.Is(err, pcontext.ErrDeadlineExceeded) {
		t.Fatalf("Scan err = %v after %d rounds", err, rounds)
	}
	if err := tx.Commit(); !errors.Is(err, pcontext.ErrDeadlineExceeded) {
		t.Fatalf("Commit err = %v", err)
	}
	ctx.Disarm()
	assertHorizonPast(t, e, snap)
}

// TestCancelFromAnotherGoroutine cancels a scanning transaction from outside
// (the cross-goroutine path a Pending.Cancel or dying connection takes);
// run under -race this also proves the lifecycle word is the only shared
// state between canceler and scanner.
func TestCancelFromAnotherGoroutine(t *testing.T) {
	e := newEngine()
	defer e.Close()
	tab := e.CreateTable("t")
	loadRows(t, e, tab, 2000)

	ctx := pcontext.Detached()
	defer e.DetachContext(ctx)

	started := make(chan struct{})
	var once sync.Once
	go func() {
		<-started
		ctx.Cancel()
	}()

	tx := e.Begin(ctx)
	snap := tx.Snapshot()
	var err error
	for i := 0; i < 1_000_000; i++ {
		err = tx.Scan(tab, nil, nil, func(k, v []byte) bool {
			once.Do(func() { close(started) })
			return true
		})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, pcontext.ErrCanceled) {
		t.Fatalf("Scan err = %v", err)
	}
	tx.Abort()
	ctx.Disarm()
	assertHorizonPast(t, e, snap)
}

// TestCanceledUpdateRefused: a canceled transaction must not install new
// versions.
func TestCanceledUpdateRefused(t *testing.T) {
	e := newEngine()
	defer e.Close()
	tab := e.CreateTable("t")
	loadRows(t, e, tab, 1)

	ctx := pcontext.Detached()
	defer e.DetachContext(ctx)
	tx := e.Begin(ctx)
	ctx.Cancel()
	if err := tx.Update(tab, u64key(0), []byte("x")); !errors.Is(err, pcontext.ErrCanceled) {
		t.Fatalf("Update err = %v", err)
	}
	tx.Abort()
	ctx.Disarm()

	// The row is untouched.
	tx2 := e.Begin(nil)
	v, err := tx2.Get(tab, u64key(0))
	if err != nil || len(v) != 32 {
		t.Fatalf("row changed: %q %v", v, err)
	}
	tx2.Abort()
}
