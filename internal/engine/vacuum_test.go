package engine

import (
	"testing"
	"time"

	"preemptdb/internal/keys"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
)

// TestBackgroundVacuumTrims verifies the incremental vacuum goroutine: with a
// small per-tick budget it must still work its way around all tables and trim
// every dead version, without any manual Vacuum call.
func TestBackgroundVacuumTrims(t *testing.T) {
	e := New(Config{VacuumInterval: time.Millisecond, VacuumBatch: 16})
	defer e.Close()
	t1 := e.CreateTable("a")
	t2 := e.CreateTable("b")

	const nkeys, updates = 40, 4
	for _, tab := range []*Table{t1, t2} {
		for i := 0; i < nkeys; i++ {
			tx := e.Begin(nil)
			if err := tx.Insert(tab, keys.Uint32(nil, uint32(i)), []byte{0}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for u := 1; u <= updates; u++ {
				tx := e.Begin(nil)
				if err := tx.Update(tab, keys.Uint32(nil, uint32(i)), []byte{byte(u)}); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// 2 tables * 40 keys * 4 dead versions each; the background loop needs
	// ceil(80/16) * 2-ish ticks plus a full extra cycle. Poll with a deadline.
	want := uint64(2 * nkeys * updates)
	deadline := time.Now().Add(10 * time.Second)
	for e.Vacuumed() < want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := e.Vacuumed(); got < want {
		t.Fatalf("background vacuum reclaimed %d versions, want >= %d", got, want)
	}
	for _, tab := range []*Table{t1, t2} {
		tab.primary.Scan(nil, nil, nil, func(k []byte, rec *mvcc.Record) bool {
			if n := mvcc.ChainLength(rec); n != 1 {
				t.Errorf("table %s key %v: chain length %d after vacuum", tab.Name(), k, n)
			}
			return true
		})
	}

	// Rows must still read back at their final values.
	tx := e.Begin(nil)
	defer tx.Abort()
	for i := 0; i < nkeys; i++ {
		v, err := tx.Get(t1, keys.Uint32(nil, uint32(i)))
		if err != nil || v[0] != updates {
			t.Fatalf("key %d after vacuum: %v %v", i, v, err)
		}
	}
}

// TestCloseStopsVacuum checks Close is idempotent and actually stops the
// background goroutine (the second Close would hang on a done WaitGroup
// otherwise, and -race would flag a loop running past Close).
func TestCloseStopsVacuum(t *testing.T) {
	e := New(Config{VacuumInterval: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDetachContextReleasesSlot verifies the oracle slot-leak fix at the
// engine layer: detaching a context frees its slot for reuse, so churning
// contexts does not grow the MinActiveBegin scan set.
func TestDetachContextReleasesSlot(t *testing.T) {
	e := newEngine()
	tab := e.CreateTable("t")

	for i := 0; i < 50; i++ {
		ctx := pcontext.Detached()
		tx := e.Begin(ctx)
		if err := tx.Put(tab, []byte("k"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		e.DetachContext(ctx)
	}
	if total, free := e.Oracle().SlotCount(); total != 1 || free != 1 {
		t.Fatalf("slot table after 50 context cycles = %d (%d free), want 1 (1 free)", total, free)
	}

	// Detach of a never-attached (or already-detached) context is a no-op.
	e.DetachContext(pcontext.Detached())
	e.DetachContext(nil)

	// A freed slot must not pin the GC horizon.
	if min, clock := e.Oracle().MinActiveBegin(), e.Oracle().Clock(); min != clock {
		t.Fatalf("min active = %d, clock = %d", min, clock)
	}
}
