// Package dtx implements the distributed-transaction layer of a hash-sharded
// PreemptDB: key→shard routing, the coordinator's durable decision table, and
// the lightweight two-phase commit protocol layered on each shard's
// group-commit WAL.
//
// Protocol (presumed abort):
//
//  1. Every participant with writes stages its redo as a *prepare* frame in
//     its own shard's WAL (engine.Txn.PrepareCommit) — validated, durable,
//     still unpublished and write-locked.
//  2. The coordinator (the lowest participating shard) durably records the
//     commit decision as an ordinary single-shard transaction inserting the
//     gid into its decision table. This commit point is what recovery
//     consults: decision present → commit everywhere; absent → abort
//     everywhere.
//  3. Each participant publishes (engine.Txn.ResolveCommit), writing a
//     resolution record — a committed frame under the gid — that takes the
//     prepare out of doubt for future replays.
//
// A crash between steps leaves in-doubt prepares in one or more shards'
// logs; recovery collects them (engine.RecoverPrepared) and ResolveInDoubt
// settles each against the decision tables. With SyncEachCommit, step 2's
// commit is durable before any step-3 resolution runs, so the decision can
// never postdate a resolution on disk.
package dtx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"preemptdb/internal/clock"
	"preemptdb/internal/engine"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/wal"
)

// DecisionTable is the per-shard table holding coordinator commit decisions.
// It is created on every shard (any shard can be a coordinator) after the
// user schema, so user table ids are unaffected. Decision rows are never
// deleted: under presumed abort the absence of a row must keep meaning
// "aborted", and gids are unique across restarts (see GIDs), so the table
// grows by one tiny row per cross-shard commit.
const DecisionTable = "__preemptdb_2pc_decisions"

// EnsureTable creates the decision table on e (idempotent).
func EnsureTable(e *engine.Engine) { e.CreateTable(DecisionTable) }

// GIDBit is set in every global transaction id, keeping gids disjoint from
// oracle-assigned local transaction ids (small counters) in the shared
// frame-id namespace — a resolution record must never collide with an
// ordinary commit's id.
const GIDBit = uint64(1) << 63

// DecisionKey encodes gid as the decision table's primary key.
func DecisionKey(gid uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], gid)
	return k[:]
}

// WriteDecision durably records the commit decision for gid on the
// coordinator engine, via an ordinary single-shard transaction so the
// decision rides the existing group-commit/checkpoint/recovery machinery.
// It runs on a private nil-context transaction: the caller's context is
// mid-2PC on this engine, and its pooled CLS state must not be disturbed.
func WriteDecision(e *engine.Engine, gid uint64) error {
	tab, err := e.Table(DecisionTable)
	if err != nil {
		return err
	}
	tx := e.Begin(nil)
	defer tx.Abort()
	if err := tx.Put(tab, DecisionKey(gid), []byte{1}); err != nil {
		return err
	}
	return tx.Commit()
}

// HasDecision reports whether a commit decision for gid is recorded on e.
func HasDecision(e *engine.Engine, gid uint64) (bool, error) {
	tab, err := e.Table(DecisionTable)
	if err != nil {
		return false, err
	}
	tx := e.Begin(nil)
	defer tx.Abort()
	_, err = tx.Get(tab, DecisionKey(gid))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, engine.ErrNotFound) {
		return false, nil
	}
	return false, err
}

// Participant is one shard's leg of a cross-shard transaction.
type Participant struct {
	Shard int
	Txn   *engine.Txn
	// Coord is the participant's shard engine, used for coordinator
	// selection and the decision write.
	Eng *engine.Engine
}

// ResolutionGate serializes the resolution phase of cross-shard commits
// against readers that need a moment of cross-shard atomicity (e.g. an
// exact-sum snapshot scan). Lock is taken just before the first
// ResolveCommit and released after the last; implementations are typically a
// sync.Locker over an RWMutex whose read side brackets snapshot
// establishment. A nil gate is a no-op.
type ResolutionGate interface {
	Lock()
	Unlock()
}

// CommitCrossShard commits a multi-writer cross-shard transaction under gid.
// parts must be the write-bearing participants (read-only legs are committed
// by the caller beforehand — their serializable validation still gates the
// decision). On return every participant is finished: committed on success,
// aborted on error. The first prepare failure aborts the whole transaction
// and is returned (conflicts satisfy engine.IsConflict for retry); an error
// after the decision was durably written means the transaction IS committed
// but a resolution could not be fully recorded — recovery settles it.
//
// gate, when non-nil, is held across the resolution loop only: prepares and
// the decision write run outside it, so gate holders never wait on 2PC I/O
// beyond in-flight resolutions, and resolution publishes all participants
// inside one gate-critical section.
func CommitCrossShard(gid uint64, parts []Participant, gate ResolutionGate) error {
	if len(parts) < 2 {
		return errors.New("dtx: cross-shard commit needs at least two participants")
	}
	// Deterministic prepare order (and coordinator choice) by shard.
	sort.Slice(parts, func(i, j int) bool { return parts[i].Shard < parts[j].Shard })
	for i, p := range parts {
		if err := p.Txn.PrepareCommit(gid); err != nil {
			// p was aborted by the failed prepare; release the holds taken
			// so far and the not-yet-prepared rest.
			for _, q := range parts[:i] {
				q.Txn.ResolveAbort()
			}
			for _, q := range parts[i+1:] {
				q.Txn.ResolveAbort()
			}
			return err
		}
	}
	t0 := clock.Nanos()
	if err := WriteDecision(parts[0].Eng, gid); err != nil {
		// No decision durable → presumed abort: roll every hold back.
		for _, p := range parts {
			p.Txn.ResolveAbort()
		}
		return fmt.Errorf("dtx: decision write failed, transaction aborted: %w", err)
	}
	parts[0].Txn.Context().TraceEvent(pcontext.EvDecision,
		pcontext.SpanAux(clock.Nanos()-t0, uint8(parts[0].Shard)))
	if gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	var firstErr error
	for _, p := range parts {
		if err := p.Txn.ResolveCommit(); err != nil && firstErr == nil {
			firstErr = err // committed, resolution not durable (WAL failed)
		}
	}
	return firstErr
}

// ResolveInDoubt settles one shard's recovered in-doubt prepares against the
// decision tables of all shards: a gid with a recorded decision anywhere is
// committed into eng at its prepare timestamp (no live snapshot ever saw the
// window, so the provisional timestamp is safe to publish at recovery);
// anything else is discarded — presumed abort. Returns how many were
// committed. Call after every shard has finished its own replay and before
// the database accepts work, so decisions written just before the crash are
// all visible.
func ResolveInDoubt(eng *engine.Engine, pending []wal.PreparedTxn, shards []*engine.Engine) (int, error) {
	committed := 0
	for _, p := range pending {
		decided := false
		for _, se := range shards {
			ok, err := HasDecision(se, p.GID)
			if err != nil {
				return committed, err
			}
			if ok {
				decided = true
				break
			}
		}
		if !decided {
			continue // presumed abort
		}
		if err := eng.ApplyRecovered(wal.CommittedTxn{TxnID: p.GID, CTS: p.CTS, Records: p.Records}); err != nil {
			return committed, err
		}
		committed++
	}
	return committed, nil
}

// ShardOf routes a key to one of n shards by FNV-1a hash; n must be a
// positive count. With n == 1 it is always 0 (no hashing cost on the
// single-shard path — callers special-case it).
func ShardOf(key []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}
