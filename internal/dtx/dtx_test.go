package dtx

import (
	"bytes"
	"fmt"
	"testing"

	"preemptdb/internal/engine"
	"preemptdb/internal/wal"
)

func TestShardOf(t *testing.T) {
	for n := 1; n <= 8; n++ {
		counts := make([]int, n)
		for i := 0; i < 4096; i++ {
			k := []byte(fmt.Sprintf("key-%06d", i))
			s := ShardOf(k, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", k, n, s)
			}
			if s2 := ShardOf(k, n); s2 != s {
				t.Fatalf("ShardOf not deterministic: %d vs %d", s, s2)
			}
			counts[s]++
		}
		// Rough balance: no shard should be empty or hold the vast majority.
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("n=%d: shard %d got no keys", n, s)
			}
			if n > 1 && c > 4096*3/n {
				t.Fatalf("n=%d: shard %d got %d of 4096 keys (badly skewed)", n, s, c)
			}
		}
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	eng := engine.New(engine.Config{})
	defer eng.Close()
	EnsureTable(eng)
	gid := GIDBit | 42
	ok, err := HasDecision(eng, gid)
	if err != nil || ok {
		t.Fatalf("fresh table: HasDecision = %v, %v", ok, err)
	}
	if err := WriteDecision(eng, gid); err != nil {
		t.Fatal(err)
	}
	ok, err = HasDecision(eng, gid)
	if err != nil || !ok {
		t.Fatalf("after write: HasDecision = %v, %v", ok, err)
	}
	ok, err = HasDecision(eng, GIDBit|43)
	if err != nil || ok {
		t.Fatalf("other gid: HasDecision = %v, %v", ok, err)
	}
}

// TestCommitCrossShardAndRecovery drives the full protocol across two
// engines, then replays each engine's log into a fresh engine and resolves
// in-doubt prepares: a decided gid commits, an undecided one vanishes.
func TestCommitCrossShardAndRecovery(t *testing.T) {
	var sinks [2]bytes.Buffer
	var engs [2]*engine.Engine
	var tabs [2]*engine.Table
	for i := range engs {
		engs[i] = engine.New(engine.Config{LogSink: &sinks[i], SyncEachCommit: true})
		defer engs[i].Close()
		tabs[i] = engs[i].CreateTable("kv")
		EnsureTable(engs[i])
	}

	// Committed cross-shard transaction.
	gidC := GIDBit | 1
	var parts []Participant
	for i := range engs {
		tx := engs[i].Begin(nil)
		if err := tx.Put(tabs[i], []byte("committed"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, Participant{Shard: i, Txn: tx, Eng: engs[i]})
	}
	if err := CommitCrossShard(gidC, parts, nil); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}

	// In-doubt, undecided: prepares on both engines, no decision, no resolve.
	gidU := GIDBit | 2
	for i := range engs {
		tx := engs[i].Begin(nil)
		if err := tx.Put(tabs[i], []byte("undecided"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.PrepareCommit(gidU); err != nil {
			t.Fatal(err)
		}
	}

	// In-doubt, decided: prepares on both, decision durable, no resolve.
	gidD := GIDBit | 3
	for i := range engs {
		tx := engs[i].Begin(nil)
		if err := tx.Put(tabs[i], []byte("decided"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.PrepareCommit(gidD); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteDecision(engs[0], gidD); err != nil {
		t.Fatal(err)
	}

	// "Crash": replay both logs into fresh engines.
	var recs [2]*engine.Engine
	var rtabs [2]*engine.Table
	var pends [2][]wal.PreparedTxn
	for i := range recs {
		recs[i] = engine.New(engine.Config{})
		defer recs[i].Close()
		rtabs[i] = recs[i].CreateTable("kv")
		EnsureTable(recs[i])
		_, pending, err := recs[i].RecoverPrepared(bytes.NewReader(sinks[i].Bytes()))
		if err != nil {
			t.Fatalf("engine %d: recover: %v", i, err)
		}
		pends[i] = pending
		if len(pending) != 2 {
			t.Fatalf("engine %d: %d in-doubt prepares, want 2 (gidU, gidD)", i, len(pending))
		}
	}
	all := []*engine.Engine{recs[0], recs[1]}
	for i := range recs {
		n, err := ResolveInDoubt(recs[i], pends[i], all)
		if err != nil {
			t.Fatalf("engine %d: resolve: %v", i, err)
		}
		if n != 1 {
			t.Fatalf("engine %d: resolved %d in-doubt commits, want 1 (gidD)", i, n)
		}
	}
	for i := range recs {
		tx := recs[i].Begin(nil)
		for key, want := range map[string]bool{"committed": true, "decided": true, "undecided": false} {
			v, err := tx.Get(rtabs[i], []byte(key))
			if want && (err != nil || !bytes.Equal(v, []byte{byte(i)})) {
				t.Errorf("engine %d: key %s: got %v, %v; want present", i, key, v, err)
			}
			if !want && err == nil {
				t.Errorf("engine %d: key %s recovered despite no decision (presumed abort violated)", i, key)
			}
		}
		tx.Abort()
	}
}
