// Package hotcache is a sharded, size-bounded read-through cache that sits in
// front of the MVCC read path: skewed point reads hit here without walking a
// version chain or entering a scheduler core. Entries are stamped with the
// commit timestamp of the version they were read at, so a transaction whose
// begin timestamp covers the entry (begin >= entry ts) gets exactly the value
// snapshot isolation would have read; older snapshots bypass the cache.
//
// Coherence is a two-phase write protocol driven by the storage engine's
// commit path:
//
//   - BeginWrites runs strictly BEFORE the MVCC commit-point store: it
//     removes the touched keys' entries and marks their hash stripes
//     write-pending, which blocks concurrent fills of colliding keys for the
//     whole publication window.
//   - EndWrites runs after publication (before the commit is acknowledged):
//     it clears the pending marks and bumps the stripes' sequence numbers, so
//     any fill whose MVCC read started before publication — captured via
//     FillBegin — is discarded rather than inserting a stale value.
//
// A fill (FillBegin -> MVCC read -> TryFill) therefore only installs a value
// when no write to a colliding stripe published or was in flight anywhere
// between capture and insert; together with the begin >= entry-ts hit rule
// this makes a cache hit indistinguishable from an MVCC read at the same
// snapshot (the stale-hit linearizability the torture test asserts).
//
// The write-side hooks run inside the engine's non-preemptible commit section
// and are allocation-free: fixed stripe arrays, map lookups via the compiler's
// string-conversion optimization, and deletes keyed by the entry's own
// interned key string.
package hotcache

import (
	"sync"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/wal"
)

// numStripes is the per-shard count of write-pending stripes. A stripe
// collision only ever delays a fill (never a hit), so the count trades a tiny
// fixed array against false fill rejections under write load.
const numStripes = 256

// entryOverhead approximates the per-entry bookkeeping bytes charged against
// the budget on top of key and value lengths.
const entryOverhead = 96

// Config configures a cache.
type Config struct {
	// MaxBytes bounds the cache's total memory charge (keys + values +
	// bookkeeping). Least-recently-used entries are evicted past it.
	MaxBytes int64
	// TTL, when > 0, additionally expires entries this long after their fill.
	TTL time.Duration
	// Shards is the number of lock shards (rounded up to a power of two,
	// default 8). More shards cut contention between readers and committers.
	Shards int
	// Metrics receives hit/miss/invalidation counters (nil: not counted).
	Metrics *metrics.Registry
}

// Cache is the sharded cache. Safe for concurrent use.
type Cache struct {
	shards []cshard
	mask   uint64
	ttl    int64
	reg    *metrics.Registry
}

type entry struct {
	key        string
	table      uint32
	val        []byte
	ts         uint64 // commit timestamp the value was read at
	exp        int64  // clock.Nanos expiry, 0 = none
	size       int64
	prev, next *entry // LRU list, most recent at head.next
}

type cshard struct {
	mu     sync.Mutex
	tables map[uint32]map[string]*entry
	head   entry // LRU sentinel
	bytes  int64
	budget int64
	// pending counts in-flight writers per stripe (non-zero blocks fills);
	// seq counts completed write publications per stripe (a change between a
	// fill's capture and its insert discards the fill).
	pending [numStripes]uint32
	seq     [numStripes]uint64

	_ [32]byte // keep neighboring shards off one cache line
}

// New returns a cache with the given configuration.
func New(cfg Config) *Cache {
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	for n&(n-1) != 0 {
		n++
	}
	c := &Cache{shards: make([]cshard, n), mask: uint64(n - 1), reg: cfg.Metrics}
	if cfg.TTL > 0 {
		c.ttl = int64(cfg.TTL)
	}
	budget := cfg.MaxBytes / int64(n)
	if budget < 1 {
		budget = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.tables = make(map[uint32]map[string]*entry)
		sh.budget = budget
		sh.head.next = &sh.head
		sh.head.prev = &sh.head
	}
	return c
}

// hash is FNV-1a over the table id and key, inlined to stay allocation-free
// on the commit path.
func hash(table uint32, key []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 4; i++ {
		h ^= uint64(table >> (8 * i) & 0xff)
		h *= 1099511628211
	}
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (c *Cache) shard(h uint64) *cshard { return &c.shards[h&c.mask] }

// stripe selects the write-pending stripe from the upper hash bits so shard
// and stripe selection stay independent.
func stripe(h uint64) int { return int(h>>32) & (numStripes - 1) }

// Lookup returns the cached value for (table, key) when the entry's stamp is
// covered by the reader's begin timestamp. The returned slice is shared and
// must be treated as read-only (the same contract as an MVCC read). Hits and
// misses are counted.
func (c *Cache) Lookup(table uint32, key []byte, begin uint64) ([]byte, bool) {
	return c.lookup(table, key, begin, true)
}

// Peek is Lookup for opportunistic fast paths: hits count, misses do not —
// the caller falls through to the full read path, whose own Lookup records
// the miss, and double-counting would understate the hit rate.
func (c *Cache) Peek(table uint32, key []byte, begin uint64) ([]byte, bool) {
	return c.lookup(table, key, begin, false)
}

func (c *Cache) lookup(table uint32, key []byte, begin uint64, countMiss bool) ([]byte, bool) {
	h := hash(table, key)
	sh := c.shard(h)
	sh.mu.Lock()
	m := sh.tables[table]
	if m == nil {
		sh.mu.Unlock()
		c.miss(countMiss)
		return nil, false
	}
	e, ok := m[string(key)]
	if !ok {
		sh.mu.Unlock()
		c.miss(countMiss)
		return nil, false
	}
	if e.exp != 0 && clock.Nanos() > e.exp {
		sh.remove(e)
		sh.mu.Unlock()
		c.miss(countMiss)
		return nil, false
	}
	if begin < e.ts {
		// Older snapshot than the cached version: bypass, don't evict — the
		// entry is still right for current readers.
		sh.mu.Unlock()
		c.miss(countMiss)
		return nil, false
	}
	sh.moveFront(e)
	val := e.val
	sh.mu.Unlock()
	if c.reg != nil {
		c.reg.IncCacheHits()
	}
	return val, true
}

func (c *Cache) miss(count bool) {
	if count && c.reg != nil {
		c.reg.IncCacheMisses()
	}
}

// FillToken carries a fill's capture state between FillBegin and TryFill.
type FillToken struct {
	h   uint64
	seq uint64
}

// FillBegin captures the key's stripe state. Call BEFORE performing the MVCC
// read whose result may be filled; TryFill later discards the fill if any
// colliding write published (or is still publishing) since this capture.
func (c *Cache) FillBegin(table uint32, key []byte) FillToken {
	h := hash(table, key)
	sh := c.shard(h)
	sh.mu.Lock()
	tok := FillToken{h: h, seq: sh.seq[stripe(h)]}
	sh.mu.Unlock()
	return tok
}

// TryFill inserts the value read at commit timestamp ts, unless a write to a
// colliding stripe is pending or published since the token's capture. The
// value and key are copied. Returns whether the fill was installed.
func (c *Cache) TryFill(tok FillToken, table uint32, key, val []byte, ts uint64) bool {
	sh := c.shard(tok.h)
	st := stripe(tok.h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pending[st] != 0 || sh.seq[st] != tok.seq {
		return false // a writer published (or is publishing) under us
	}
	m := sh.tables[table]
	if m == nil {
		m = make(map[string]*entry)
		sh.tables[table] = m
	}
	if old, ok := m[string(key)]; ok {
		// Concurrent fill of the same key: keep the newer stamp.
		if ts <= old.ts {
			return false
		}
		sh.remove(old)
	}
	e := &entry{
		key:   string(key),
		table: table,
		val:   append([]byte(nil), val...),
		ts:    ts,
		size:  int64(len(key)+len(val)) + entryOverhead,
	}
	if c.ttl > 0 {
		e.exp = clock.Nanos() + c.ttl
	}
	m[e.key] = e
	sh.pushFront(e)
	sh.bytes += e.size
	for sh.bytes > sh.budget && sh.head.prev != &sh.head {
		sh.remove(sh.head.prev)
	}
	return true
}

// BeginWrites enters the publication window for every key in the
// transaction's redo buffer: entries are removed and their stripes marked
// write-pending. MUST run strictly before the MVCC commit-point store and be
// balanced by exactly one EndWrites with the same buffer contents (on the
// commit, abort, and error paths alike). Allocation-free.
func (c *Cache) BeginWrites(buf *wal.Buffer) {
	p := buf.Bytes()
	for {
		_, table, key, _, rest, ok := wal.NextRecord(p)
		if !ok {
			return
		}
		p = rest
		h := hash(table, key)
		sh := c.shard(h)
		sh.mu.Lock()
		sh.pending[stripe(h)]++
		if m := sh.tables[table]; m != nil {
			if e, ok := m[string(key)]; ok {
				sh.remove(e)
				if c.reg != nil {
					c.reg.IncCacheInvalidations()
				}
			}
		}
		sh.mu.Unlock()
	}
}

// EndWrites leaves the publication window entered by BeginWrites: pending
// marks drop and stripe sequence numbers advance, discarding any fill whose
// read raced the publication. Run after the MVCC commit-point store (or after
// the abort that replaced it). Allocation-free.
func (c *Cache) EndWrites(buf *wal.Buffer) {
	p := buf.Bytes()
	for {
		_, table, key, _, rest, ok := wal.NextRecord(p)
		if !ok {
			return
		}
		p = rest
		h := hash(table, key)
		sh := c.shard(h)
		sh.mu.Lock()
		sh.pending[stripe(h)]--
		sh.seq[stripe(h)]++
		sh.mu.Unlock()
	}
}

// Len returns the number of cached entries (tests and observability).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, m := range sh.tables {
			n += len(m)
		}
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the current memory charge across shards.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// remove unlinks e and drops it from its table map. Caller holds sh.mu.
func (sh *cshard) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	sh.bytes -= e.size
	delete(sh.tables[e.table], e.key)
}

func (sh *cshard) pushFront(e *entry) {
	e.next = sh.head.next
	e.prev = &sh.head
	e.next.prev = e
	sh.head.next = e
}

func (sh *cshard) moveFront(e *entry) {
	if sh.head.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	sh.pushFront(e)
}
