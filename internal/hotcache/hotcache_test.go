package hotcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"preemptdb/internal/metrics"
	"preemptdb/internal/wal"
)

func newTest(maxBytes int64) *Cache {
	return New(Config{MaxBytes: maxBytes, Shards: 4, Metrics: metrics.NewRegistry()})
}

func fill(t *testing.T, c *Cache, table uint32, key, val string, ts uint64) {
	t.Helper()
	tok := c.FillBegin(table, []byte(key))
	if !c.TryFill(tok, table, []byte(key), []byte(val), ts) {
		t.Fatalf("fill %s=%s@%d rejected", key, val, ts)
	}
}

// writeBuf builds a redo buffer containing one update per key, as the engine's
// commit path would stage it.
func writeBuf(table uint32, keys ...string) *wal.Buffer {
	var b wal.Buffer
	for _, k := range keys {
		b.Append(wal.RecUpdate, table, []byte(k), []byte("x"))
	}
	return &b
}

func TestHitRequiresCoveringBegin(t *testing.T) {
	c := newTest(1 << 20)
	fill(t, c, 1, "k", "v", 10)
	if _, ok := c.Lookup(1, []byte("k"), 9); ok {
		t.Fatal("begin 9 hit an entry stamped 10 — older snapshot must bypass")
	}
	v, ok := c.Lookup(1, []byte("k"), 10)
	if !ok || string(v) != "v" {
		t.Fatalf("begin 10 got (%q, %v), want hit", v, ok)
	}
	if _, ok := c.Lookup(1, []byte("k"), 99); !ok {
		t.Fatal("begin 99 missed")
	}
	if _, ok := c.Lookup(2, []byte("k"), 99); ok {
		t.Fatal("hit across table ids")
	}
}

func TestWriteWindowBlocksAndDiscardsFills(t *testing.T) {
	c := newTest(1 << 20)
	buf := writeBuf(1, "k")

	// Fill captured before the write window opened: discarded by seq bump.
	tok := c.FillBegin(1, []byte("k"))
	c.BeginWrites(buf)
	c.EndWrites(buf)
	if c.TryFill(tok, 1, []byte("k"), []byte("stale"), 5) {
		t.Fatal("fill captured before a write publication was accepted")
	}

	// Fill attempted while the window is open: rejected by pending.
	tok = c.FillBegin(1, []byte("k"))
	c.BeginWrites(buf)
	if c.TryFill(tok, 1, []byte("k"), []byte("stale"), 5) {
		t.Fatal("fill accepted while writer pending")
	}
	c.EndWrites(buf)

	// Fill captured after the window closed: accepted.
	tok = c.FillBegin(1, []byte("k"))
	if !c.TryFill(tok, 1, []byte("k"), []byte("fresh"), 6) {
		t.Fatal("clean fill rejected")
	}
}

func TestBeginWritesInvalidates(t *testing.T) {
	c := newTest(1 << 20)
	fill(t, c, 1, "a", "va", 3)
	fill(t, c, 1, "b", "vb", 3)
	fill(t, c, 1, "c", "vc", 3)
	buf := writeBuf(1, "a", "b")
	c.BeginWrites(buf)
	c.EndWrites(buf)
	if _, ok := c.Lookup(1, []byte("a"), 99); ok {
		t.Fatal("written key a survived invalidation")
	}
	if _, ok := c.Lookup(1, []byte("b"), 99); ok {
		t.Fatal("written key b survived invalidation")
	}
	if _, ok := c.Lookup(1, []byte("c"), 99); !ok {
		t.Fatal("untouched key c was dropped")
	}
	if got := c.reg.CacheInvalidations(); got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
}

func TestDuplicateKeysInOneTransactionBalance(t *testing.T) {
	c := newTest(1 << 20)
	buf := writeBuf(1, "k", "k", "k")
	c.BeginWrites(buf)
	c.EndWrites(buf)
	// All pending marks must have drained: a fresh fill succeeds.
	tok := c.FillBegin(1, []byte("k"))
	if !c.TryFill(tok, 1, []byte("k"), []byte("v"), 1) {
		t.Fatal("pending marks leaked after balanced duplicate-key windows")
	}
}

func TestConcurrentFillKeepsNewerStamp(t *testing.T) {
	c := newTest(1 << 20)
	fill(t, c, 1, "k", "new", 10)
	tok := c.FillBegin(1, []byte("k"))
	if c.TryFill(tok, 1, []byte("k"), []byte("old"), 5) {
		t.Fatal("older-stamped fill replaced a newer entry")
	}
	v, ok := c.Lookup(1, []byte("k"), 20)
	if !ok || string(v) != "new" {
		t.Fatalf("got (%q, %v), want the newer value", v, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	// One entry is ~8+5+96 bytes; budget 3 entries per shard. Use a
	// single-shard cache for a deterministic budget.
	c := New(Config{MaxBytes: 3 * (8 + 5 + entryOverhead), Shards: 1})
	for i := 0; i < 3; i++ {
		fill(t, c, 1, fmt.Sprintf("key-%04d", i), "12345", 1)
	}
	// Touch key-0000 so key-0001 is the LRU victim.
	if _, ok := c.Lookup(1, []byte("key-0000"), 9); !ok {
		t.Fatal("key-0000 missing before eviction")
	}
	fill(t, c, 1, "key-0003", "12345", 1)
	if _, ok := c.Lookup(1, []byte("key-0001"), 9); ok {
		t.Fatal("LRU victim key-0001 survived")
	}
	if _, ok := c.Lookup(1, []byte("key-0000"), 9); !ok {
		t.Fatal("recently used key-0000 evicted")
	}
	if got, want := c.Bytes(), int64(3*(8+5+entryOverhead)); got > want {
		t.Fatalf("bytes %d over budget %d", got, want)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, TTL: time.Millisecond})
	fill(t, c, 1, "k", "v", 1)
	deadline := time.Now().Add(time.Second)
	for {
		if _, ok := c.Lookup(1, []byte("k"), 9); !ok {
			break // expired
		}
		if time.Now().After(deadline) {
			t.Fatal("entry never expired")
		}
		time.Sleep(time.Millisecond)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("expired entry still resident, Len=%d", n)
	}
}

func TestCounters(t *testing.T) {
	c := newTest(1 << 20)
	fill(t, c, 1, "k", "v", 1)
	c.Lookup(1, []byte("k"), 9)      // hit
	c.Lookup(1, []byte("absent"), 9) // miss
	c.Peek(1, []byte("k"), 9)        // hit (counted)
	c.Peek(1, []byte("absent2"), 9)  // miss (not counted)
	if got := c.reg.CacheHits(); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := c.reg.CacheMisses(); got != 1 {
		t.Fatalf("misses = %d, want 1 (Peek misses must not count)", got)
	}
}

// TestRaceStress hammers fills, lookups, and write windows concurrently; run
// with -race it checks the locking, and the final drain check catches leaked
// pending marks.
func TestRaceStress(t *testing.T) {
	c := newTest(1 << 16)
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(stop) })
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := writeBuf(1, string(keys[seed%len(keys)]), string(keys[(seed+3)%len(keys)]))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(seed+i)%len(keys)]
				switch i % 3 {
				case 0:
					tok := c.FillBegin(1, k)
					c.TryFill(tok, 1, k, []byte("value"), uint64(i))
				case 1:
					c.Lookup(1, k, uint64(i))
				case 2:
					c.BeginWrites(buf)
					c.EndWrites(buf)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every window closed: all keys must be fillable again.
	for _, k := range keys {
		tok := c.FillBegin(1, k)
		if !c.TryFill(tok, 1, k, []byte("final"), 1<<40) {
			t.Fatalf("key %s not fillable after drain — leaked pending mark", k)
		}
	}
}

func TestInvalidationHookAllocs(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	buf := writeBuf(7, "alloc-key-1", "alloc-key-2")
	fill(t, c, 7, "alloc-key-1", "v", 1)
	allocs := testing.AllocsPerRun(100, func() {
		c.BeginWrites(buf)
		c.EndWrites(buf)
	})
	if allocs != 0 {
		t.Fatalf("BeginWrites+EndWrites allocated %.1f/op, want 0", allocs)
	}
}
