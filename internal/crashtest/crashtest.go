// Package crashtest is a deterministic crash-recovery torture harness. Each
// run is driven by a single seed: the seed fixes the workload shape, the
// crash point, and the damage a simulated crash inflicts, so any failing
// schedule replays exactly from its seed alone.
//
// Two modes cover the two halves of the durability stack:
//
//   - Memory mode drives a concurrent workload against an engine whose log
//     sink is a fault-injecting iofault.Sink, cuts the (simulated) power at a
//     randomized write-byte or sync boundary, then recovers a fresh engine
//     from the sink's durable prefix.
//   - File mode drives a workload — with seeded disk checkpoints — against a
//     file-backed preemptdb.DB with tiny WAL segments, then inflicts seeded
//     post-crash damage on the data directory (a torn in-flight append, an
//     empty just-rotated segment, a corrupted newest checkpoint, an abandoned
//     checkpoint temp file) and reopens it. It recovers, appends more, and
//     reopens once again, so the resume position is exercised too.
//
// Both modes verify the same contract per key, where each committed value is
// the key's monotonically increasing counter:
//
//	acked <= recovered <= acked + uncertain
//
// acked counts commits whose Commit returned nil — losing one is data loss.
// uncertain counts commits that returned ErrWALFailed: their versions had
// already published at stage time (the pipelined group commit's documented
// commit-uncertain window) and their frames may or may not have reached
// durable storage, so recovery may legitimately surface them — but nothing
// newer. Any other recovered state is a phantom effect.
package crashtest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"sync"
	"testing"

	"preemptdb"
	"preemptdb/internal/dtx"
	"preemptdb/internal/engine"
	"preemptdb/internal/iofault"
	"preemptdb/internal/store"
	"preemptdb/internal/wal"
)

// Plan shapes one torture run. Everything else derives from Seed.
type Plan struct {
	Seed    uint64
	Workers int // concurrent committers (memory mode)
	Keys    int // keys per worker (memory) / total keys (file)
	Ops     int // commits attempted per worker (memory) / total (file)
}

func (p Plan) rng() *rand.Rand {
	return rand.New(rand.NewPCG(p.Seed, 0x9e3779b97f4a7c15))
}

// keyState tracks one key's counter through the workload.
type keyState struct {
	key       []byte
	acked     uint64 // commits acknowledged with nil
	uncertain uint64 // commits that returned ErrWALFailed (may be durable)
}

func counterValue(n uint64) []byte {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], n)
	return v[:]
}

// RunMemory is the in-memory torture: concurrent committers against an
// iofault sink whose power is cut at a seeded write or sync boundary.
func RunMemory(tb testing.TB, p Plan) {
	rng := p.rng()
	sink := iofault.NewSink()
	eng := engine.New(engine.Config{LogSink: sink, SyncEachCommit: true})
	defer eng.Close()
	tab := eng.CreateTable("counters")

	// Arm the crash. A third of the seeds cut at a sync boundary, a third
	// mid-write at a byte boundary, and a third never cut (clean run); the
	// thresholds roam past the workload's size so late and never-reached cut
	// points occur too.
	totalOps := p.Workers * p.Ops
	switch rng.IntN(3) {
	case 0:
		sink.CutAtSync(1 + rng.IntN(totalOps+1))
	case 1:
		sink.CutAtBytes(1 + rng.Int64N(int64(totalOps)*48))
	}

	states := make([][]keyState, p.Workers)
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		states[w] = make([]keyState, p.Keys)
		for k := range states[w] {
			states[w][k].key = []byte(fmt.Sprintf("w%02d-k%03d", w, k))
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < p.Ops; i++ {
				ks := &states[w][i%p.Keys]
				next := ks.acked + ks.uncertain + 1
				tx := eng.Begin(nil)
				if err := tx.Put(tab, ks.key, counterValue(next)); err != nil {
					// Refused before publication (log already latched):
					// definitely not durable, not even uncertain.
					tx.Abort()
					return
				}
				switch err := tx.Commit(); {
				case err == nil:
					ks.acked = next
				case errors.Is(err, wal.ErrWALFailed):
					// Published at stage time, durability unknown.
					ks.uncertain++
					return
				default:
					tb.Errorf("seed %d: unexpected commit error: %v", p.Seed, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Reboot: recover a fresh engine from what survives the power cut.
	rec := engine.New(engine.Config{})
	defer rec.Close()
	rtab := rec.CreateTable("counters")
	if _, err := rec.Recover(bytes.NewReader(sink.Durable())); err != nil {
		tb.Fatalf("seed %d: recover: %v", p.Seed, err)
	}
	verifyCounters(tb, p.Seed, rec, rtab, states)
}

// verifyCounters checks every key's recovered counter against the
// acked/uncertain window and that no phantom rows exist.
func verifyCounters(tb testing.TB, seed uint64, eng *engine.Engine, tab *engine.Table, states [][]keyState) {
	tb.Helper()
	tx := eng.Begin(nil)
	defer tx.Abort()
	present := 0
	for w := range states {
		for k := range states[w] {
			ks := &states[w][k]
			var got uint64
			v, err := tx.Get(tab, ks.key)
			switch {
			case err == nil:
				got = binary.BigEndian.Uint64(v)
				present++
			case errors.Is(err, engine.ErrNotFound):
			default:
				tb.Fatalf("seed %d: get %s: %v", seed, ks.key, err)
			}
			if got < ks.acked {
				tb.Errorf("seed %d: key %s: LOST ACKED COMMITS: recovered %d < acked %d",
					seed, ks.key, got, ks.acked)
			}
			if got > ks.acked+ks.uncertain {
				tb.Errorf("seed %d: key %s: PHANTOM EFFECT: recovered %d > acked %d + uncertain %d",
					seed, ks.key, got, ks.acked, ks.uncertain)
			}
		}
	}
	rows := 0
	if err := tx.Scan(tab, nil, nil, func(k, v []byte) bool { rows++; return true }); err != nil {
		tb.Fatalf("seed %d: scan: %v", seed, err)
	}
	if rows != present {
		tb.Errorf("seed %d: PHANTOM ROWS: %d rows recovered, %d keys ever written", seed, rows, present)
	}
}

// RunFile is the file-backed torture: a workload with seeded disk
// checkpoints and tiny segments, seeded post-crash directory damage, and two
// reopen/verify cycles with an append in between.
func RunFile(tb testing.TB, p Plan) {
	rng := p.rng()
	dir := tb.TempDir()
	cfg := preemptdb.Config{
		Workers:        1,
		Schema:         func(db *preemptdb.DB) error { db.CreateTable("counters"); return nil },
		SyncEachCommit: true,
		SegmentBytes:   int64(96 + rng.IntN(320)),
	}
	db, err := preemptdb.Open(dir, cfg)
	if err != nil {
		tb.Fatalf("seed %d: open: %v", p.Seed, err)
	}

	states := make([]keyState, p.Keys)
	for k := range states {
		states[k].key = []byte(fmt.Sprintf("k%03d", k))
	}
	// Seeded checkpoint schedule: up to three disk checkpoints mid-workload.
	ckptAfter := make(map[int]bool)
	for j := rng.IntN(4); j > 0; j-- {
		ckptAfter[rng.IntN(p.Ops)] = true
	}
	checkpoints := 0
	put := func(db *preemptdb.DB, ks *keyState) {
		tb.Helper()
		next := ks.acked + 1
		if err := db.Run(func(tx *preemptdb.Txn) error {
			return tx.Put("counters", ks.key, counterValue(next))
		}); err != nil {
			tb.Fatalf("seed %d: put %s: %v", p.Seed, ks.key, err)
		}
		ks.acked = next
	}
	for i := 0; i < p.Ops; i++ {
		put(db, &states[rng.IntN(p.Keys)])
		if ckptAfter[i] {
			if err := db.CheckpointDisk(); err != nil {
				tb.Fatalf("seed %d: checkpoint: %v", p.Seed, err)
			}
			checkpoints++
		}
	}
	if err := db.Close(); err != nil {
		tb.Fatalf("seed %d: close: %v", p.Seed, err)
	}

	inflictDamage(tb, p.Seed, rng, dir, checkpoints)

	// First reopen: every acked commit must be back, exactly (real files
	// fsync per commit, so file mode has no uncertain window — the damage
	// above only ever models effects of work that was never acknowledged).
	db2, err := preemptdb.Open(dir, cfg)
	if err != nil {
		tb.Fatalf("seed %d: reopen after crash: %v", p.Seed, err)
	}
	verifyFileCounters(tb, p.Seed, db2, states)
	// Append past the recovered tail, then prove the stream stayed whole.
	put(db2, &states[rng.IntN(p.Keys)])
	if err := db2.Close(); err != nil {
		tb.Fatalf("seed %d: close after recovery: %v", p.Seed, err)
	}
	db3, err := preemptdb.Open(dir, cfg)
	if err != nil {
		tb.Fatalf("seed %d: second reopen: %v", p.Seed, err)
	}
	defer db3.Close()
	verifyFileCounters(tb, p.Seed, db3, states)
}

// inflictDamage applies one seeded flavour of crash damage to the closed
// data directory. Checkpoint corruption is only inflicted when at least two
// checkpoints exist — with fewer, the WAL retention policy makes the single
// checkpoint load-bearing, and corrupting it models hardware loss beyond the
// torn-write/power-cut crashes this harness simulates.
func inflictDamage(tb testing.TB, seed uint64, rng *rand.Rand, dir string, checkpoints int) {
	tb.Helper()
	d, err := store.Open(dir)
	if err != nil {
		tb.Fatalf("seed %d: store open: %v", seed, err)
	}
	segs, err := d.Segments()
	if err != nil {
		tb.Fatalf("seed %d: segments: %v", seed, err)
	}
	end := uint64(0)
	if n := len(segs); n > 0 {
		end = segs[n-1].End()
	}
	cks, err := d.Checkpoints()
	if err != nil {
		tb.Fatalf("seed %d: checkpoints: %v", seed, err)
	}

	action := rng.IntN(5)
	if action == 2 && len(cks) < 2 {
		action = 0
	}
	switch action {
	case 0:
		// Torn in-flight append: a commit was mid-write when power died. A
		// partial frame header (< 32 bytes) can never parse as a frame, so
		// random garbage is safe to fabricate.
		if len(segs) == 0 {
			return
		}
		garbage := make([]byte, 1+rng.IntN(31))
		for i := range garbage {
			garbage[i] = byte(rng.Uint32())
		}
		f, err := os.OpenFile(segs[len(segs)-1].Path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			tb.Fatal(err)
		}
		f.Write(garbage)
		f.Close()
	case 1:
		// Crash mid-rotation: the empty successor segment exists but nothing
		// was ever appended to it.
		if err := os.WriteFile(d.SegmentPath(end), nil, 0o644); err != nil {
			tb.Fatal(err)
		}
	case 2:
		// Newest checkpoint damaged in place; recovery must fall back.
		newest := cks[len(cks)-1].Path
		if rng.IntN(2) == 0 {
			info, err := os.Stat(newest)
			if err != nil {
				tb.Fatal(err)
			}
			if err := os.Truncate(newest, info.Size()/2); err != nil {
				tb.Fatal(err)
			}
		} else {
			b, err := os.ReadFile(newest)
			if err != nil {
				tb.Fatal(err)
			}
			if len(b) > 0 {
				b[rng.IntN(len(b))] ^= 1 << (rng.UintN(8))
				if err := os.WriteFile(newest, b, 0o644); err != nil {
					tb.Fatal(err)
				}
			}
		}
	case 3:
		// Crash between a checkpoint's temp write and its rename.
		tmp := d.CheckpointPath(end) + store.TempSuffix
		if err := os.WriteFile(tmp, []byte("half-written checkpoint"), 0o644); err != nil {
			tb.Fatal(err)
		}
	case 4:
		// Clean restart: no damage at all.
	}
}

// Run2PC is the cross-shard torture: it lays down a multi-shard directory the
// way a sharded preemptdb.DB would, drives completed cross-shard transactions
// plus a seeded set of *in-flight* two-phase commits cut at a seeded protocol
// step — after some prepares, after the decision, or after a partial resolve —
// then "crashes" and reopens through the public sharded Open. The recovered
// database must resolve every in-doubt transaction the same way on every
// participant: a durable coordinator decision means the transaction's writes
// appear on all its shards, no decision means none appear anywhere.
func Run2PC(tb testing.TB, p Plan) {
	rng := p.rng()
	dir := tb.TempDir()
	const nShards = 3
	segBytes := int64(256 + rng.IntN(512))

	type shardEnv struct {
		dlog *store.Log
		eng  *engine.Engine
		tab  *engine.Table
	}
	envs := make([]*shardEnv, nShards)
	for i := range envs {
		d, err := store.Open(fmt.Sprintf("%s/shard-%d", dir, i))
		if err != nil {
			tb.Fatalf("seed %d: open shard %d: %v", p.Seed, i, err)
		}
		dlog := d.NewLog(segBytes)
		eng := engine.New(engine.Config{LogSink: dlog, SyncEachCommit: true})
		// Same creation order as the facade's recovery: user schema first,
		// decision table second, so table ids match the reopened database.
		tab := eng.CreateTable("counters")
		dtx.EnsureTable(eng)
		envs[i] = &shardEnv{dlog: dlog, eng: eng, tab: tab}
	}

	// Per-shard key pools: keys are bucketed by the same hash the facade
	// routes with, so the reopened DB reads each key from the shard that
	// logged it.
	pools := make([][][]byte, nShards)
	for i := 0; len(pools[0]) < p.Keys || len(pools[1]) < p.Keys || len(pools[2]) < p.Keys; i++ {
		k := []byte(fmt.Sprintf("c%05d", i))
		s := dtx.ShardOf(k, nShards)
		if len(pools[s]) < p.Keys {
			pools[s] = append(pools[s], k)
		}
	}
	vals := make(map[string]uint64) // expected post-recovery counter per key

	pickShards := func(n int) []int {
		perm := rng.Perm(nShards)
		s := append([]int(nil), perm[:n]...)
		sort.Ints(s)
		return s
	}
	var gidSeq uint64
	nextGID := func() uint64 { gidSeq++; return dtx.GIDBit | gidSeq }

	// beginCross opens one participant per chosen shard and stages a counter
	// increment on one key from that shard's pool, avoiding keys in `used`.
	type inflight struct {
		parts []dtx.Participant
		keys  [][]byte
	}
	beginCross := func(shardSet []int, used map[string]bool) *inflight {
		in := &inflight{}
		for _, s := range shardSet {
			var key []byte
			for {
				key = pools[s][rng.IntN(len(pools[s]))]
				if used == nil || !used[string(key)] {
					break
				}
			}
			if used != nil {
				used[string(key)] = true
			}
			tx := envs[s].eng.Begin(nil)
			if err := tx.Put(envs[s].tab, key, counterValue(vals[string(key)]+1)); err != nil {
				tb.Fatalf("seed %d: stage put %s: %v", p.Seed, key, err)
			}
			in.parts = append(in.parts, dtx.Participant{Shard: s, Txn: tx, Eng: envs[s].eng})
			in.keys = append(in.keys, key)
		}
		return in
	}

	// Completed workload: cross-shard commits interleaved with single-shard
	// commits (the latter also stress replay around prepare frames).
	for op := 0; op < p.Ops; op++ {
		in := beginCross(pickShards(2+rng.IntN(nShards-1)), nil)
		if err := dtx.CommitCrossShard(nextGID(), in.parts, nil); err != nil {
			tb.Fatalf("seed %d: cross-shard commit: %v", p.Seed, err)
		}
		for _, k := range in.keys {
			vals[string(k)]++
		}
		for j := rng.IntN(3); j > 0; j-- {
			s := rng.IntN(nShards)
			key := pools[s][rng.IntN(len(pools[s]))]
			tx := envs[s].eng.Begin(nil)
			if err := tx.Put(envs[s].tab, key, counterValue(vals[string(key)]+1)); err != nil {
				tb.Fatalf("seed %d: put %s: %v", p.Seed, key, err)
			}
			if err := tx.Commit(); err != nil {
				tb.Fatalf("seed %d: commit %s: %v", p.Seed, key, err)
			}
			vals[string(key)]++
		}
	}

	// In-flight transactions cut mid-protocol. Keys are disjoint across them
	// so one stalled prepare can't conflict another's.
	used := make(map[string]bool)
	for n := rng.IntN(3); n > 0; n-- {
		in := beginCross(pickShards(2+rng.IntN(nShards-1)), used)
		gid := nextGID()
		// Participants are already shard-sorted; the lowest shard would be
		// the coordinator, matching dtx.CommitCrossShard.
		scenario := rng.IntN(3)
		nprep := len(in.parts)
		if scenario == 0 {
			nprep = 1 + rng.IntN(len(in.parts)) // may be all — still undecided
		}
		for i := 0; i < nprep; i++ {
			if err := in.parts[i].Txn.PrepareCommit(gid); err != nil {
				tb.Fatalf("seed %d: prepare: %v", p.Seed, err)
			}
		}
		switch scenario {
		case 0:
			// Crash before the decision: presumed abort everywhere.
		case 1:
			// Decision durable, no participant resolved yet.
			if err := dtx.WriteDecision(in.parts[0].Eng, gid); err != nil {
				tb.Fatalf("seed %d: decision: %v", p.Seed, err)
			}
		case 2:
			// Decision durable, a strict subset of participants resolved —
			// their logs carry resolution records, the rest stay in doubt.
			if err := dtx.WriteDecision(in.parts[0].Eng, gid); err != nil {
				tb.Fatalf("seed %d: decision: %v", p.Seed, err)
			}
			for i := 0; i < rng.IntN(len(in.parts)); i++ {
				if err := in.parts[i].Txn.ResolveCommit(); err != nil {
					tb.Fatalf("seed %d: resolve: %v", p.Seed, err)
				}
			}
		}
		if scenario != 0 {
			for _, k := range in.keys {
				vals[string(k)]++
			}
		}
	}

	// Crash: abandon everything mid-protocol. With SyncEachCommit every
	// acked frame is already durable; Close only stops background work.
	for _, env := range envs {
		env.eng.Close()
		env.dlog.Close()
	}

	cfg := preemptdb.Config{
		Shards:         nShards,
		Workers:        1,
		SyncEachCommit: true,
		Schema:         func(db *preemptdb.DB) error { db.CreateTable("counters"); return nil },
	}
	verify := func(db *preemptdb.DB, phase string) {
		tb.Helper()
		if err := db.Run(func(tx *preemptdb.Txn) error {
			for s := range pools {
				for _, key := range pools[s] {
					want := vals[string(key)]
					v, err := tx.Get("counters", key)
					switch {
					case err == nil:
						if got := binary.BigEndian.Uint64(v); got != want {
							tb.Errorf("seed %d: %s: key %s: recovered %d, want %d",
								p.Seed, phase, key, got, want)
						}
					case preemptdb.IsNotFound(err):
						if want != 0 {
							tb.Errorf("seed %d: %s: key %s: missing, want %d", p.Seed, phase, key, want)
						}
					default:
						return fmt.Errorf("get %s: %w", key, err)
					}
				}
			}
			return nil
		}); err != nil {
			tb.Fatalf("seed %d: %s: verify: %v", p.Seed, phase, err)
		}
	}
	db, err := preemptdb.Open(dir, cfg)
	if err != nil {
		tb.Fatalf("seed %d: sharded reopen: %v", p.Seed, err)
	}
	verify(db, "first reopen")
	// Write past the recovered tail — including a fresh cross-shard commit —
	// then prove a second recovery (which re-resolves the still-logged
	// prepares against the decision tables) is idempotent.
	ka, kb := pools[0][0], pools[1][0]
	if err := db.Run(func(tx *preemptdb.Txn) error {
		if err := tx.Put("counters", ka, counterValue(vals[string(ka)]+1)); err != nil {
			return err
		}
		return tx.Put("counters", kb, counterValue(vals[string(kb)]+1))
	}); err != nil {
		tb.Fatalf("seed %d: post-recovery cross-shard put: %v", p.Seed, err)
	}
	vals[string(ka)]++
	vals[string(kb)]++
	if err := db.Close(); err != nil {
		tb.Fatalf("seed %d: close: %v", p.Seed, err)
	}
	db2, err := preemptdb.Open(dir, cfg)
	if err != nil {
		tb.Fatalf("seed %d: second sharded reopen: %v", p.Seed, err)
	}
	defer db2.Close()
	verify(db2, "second reopen")
}

func verifyFileCounters(tb testing.TB, seed uint64, db *preemptdb.DB, states []keyState) {
	tb.Helper()
	present := 0
	if err := db.Run(func(tx *preemptdb.Txn) error {
		for k := range states {
			ks := &states[k]
			var got uint64
			v, err := tx.Get("counters", ks.key)
			switch {
			case err == nil:
				got = binary.BigEndian.Uint64(v)
				present++
			case preemptdb.IsNotFound(err):
			default:
				return fmt.Errorf("get %s: %w", ks.key, err)
			}
			if got != ks.acked {
				tb.Errorf("seed %d: key %s: recovered %d, acked %d", seed, ks.key, got, ks.acked)
			}
		}
		rows := 0
		if err := tx.Scan("counters", nil, nil, func(k, v []byte) bool { rows++; return true }); err != nil {
			return err
		}
		if rows != present {
			tb.Errorf("seed %d: PHANTOM ROWS: %d rows recovered, %d keys ever written", seed, rows, present)
		}
		return nil
	}); err != nil {
		tb.Fatalf("seed %d: verify: %v", seed, err)
	}
}
