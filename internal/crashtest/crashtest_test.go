package crashtest

import (
	"fmt"
	"testing"
)

// The plain-`go test` tier covers 220 seeded crash points: 160 in-memory
// power cuts at randomized write/sync boundaries and 60 file-backed crashes
// across rotation, checkpoint, and torn-tail boundaries. The longer sweep
// lives behind `go test -tags torture`.

func TestTortureMemory(t *testing.T) {
	for seed := uint64(0); seed < 160; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunMemory(t, Plan{Seed: seed, Workers: 4, Keys: 8, Ops: 120})
		})
	}
}

func TestTortureFile(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunFile(t, Plan{Seed: seed, Keys: 6, Ops: 30})
		})
	}
}

func TestTorture2PC(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			Run2PC(t, Plan{Seed: seed, Keys: 6, Ops: 20})
		})
	}
}
