//go:build torture

package crashtest

import (
	"fmt"
	"testing"
)

// The extended sweep: thousands of seeded crash points, run in CI's nightly
// torture step and locally via `go test -tags torture ./internal/crashtest/`.
// Seed ranges are disjoint from the plain tier so the sweep adds coverage
// instead of repeating it.

func TestTortureSweepMemory(t *testing.T) {
	for seed := uint64(1000); seed < 3000; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunMemory(t, Plan{Seed: seed, Workers: 4, Keys: 8, Ops: 200})
		})
	}
}

func TestTortureSweepFile(t *testing.T) {
	for seed := uint64(1000); seed < 1400; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunFile(t, Plan{Seed: seed, Keys: 8, Ops: 60})
		})
	}
}

func TestTortureSweep2PC(t *testing.T) {
	for seed := uint64(1000); seed < 1300; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			Run2PC(t, Plan{Seed: seed, Keys: 8, Ops: 40})
		})
	}
}
