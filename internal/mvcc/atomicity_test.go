package mvcc

import (
	"encoding/binary"
	"runtime"
	"sync"
	"testing"
)

// TestCommitPublicationAtomicity is the regression test for the torn-commit
// window behind the TestParallelScanTorture "snapshot total off-by-one"
// flake: Commit drew its timestamp from the clock *before* the publication
// store, so a reader beginning in between (begin >= cts) could read one key
// pre-publication (old value) and another post-publication (new value) —
// half a committed transaction. With the statusCommitting window, readers
// that encounter an in-publication writer wait it out, so a multi-key commit
// is always observed wholly or not at all.
func TestCommitPublicationAtomicity(t *testing.T) {
	o := NewOracle()
	a, b := NewRecord(), NewRecord()

	// Seed: a=1000, b=1000; invariant a+b == 2000 under transfers.
	seed := begin(o, SnapshotIsolation)
	enc := func(v uint64) []byte {
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, v)
		return buf
	}
	dec := func(d []byte) uint64 { return binary.BigEndian.Uint64(d) }
	if err := seed.Update(a, enc(1000)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Update(b, enc(1000)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, seed)

	const rounds = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: transfer 1 from a to b and back, committing each round. The
	// logFn widens the draw->publish window a little to make the race easier
	// to hit on fast hosts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			tx := begin(o, SnapshotIsolation)
			av, _ := tx.Read(a)
			bv, _ := tx.Read(b)
			if err := tx.Update(a, enc(dec(av)-1)); err != nil {
				tx.Abort()
				continue
			}
			if err := tx.Update(b, enc(dec(bv)+1)); err != nil {
				tx.Abort()
				continue
			}
			if _, err := tx.Commit(func(uint64) error { runtime.Gosched(); return nil }); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
	}()

	// Readers: fresh snapshot per iteration, both keys must sum to 2000.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := begin(o, SnapshotIsolation)
				av, ok1 := tx.Read(a)
				bv, ok2 := tx.Read(b)
				tx.Abort()
				if !ok1 || !ok2 {
					t.Error("seeded keys unreadable")
					return
				}
				if sum := dec(av) + dec(bv); sum != 2000 {
					t.Errorf("torn commit observed: a+b = %d, want 2000", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}
