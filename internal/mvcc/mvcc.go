// Package mvcc implements the multi-versioned concurrency control engine
// PreemptDB runs on: an ERMIA-style memory-optimized design (paper §2.2)
// where every record is an ordered new-to-old chain of versions tagged with
// commit timestamps drawn from a centralized counter.
//
// The properties PreemptDB's preemption story depends on are provided here:
//
//   - Reads never take locks. A reader resolves visibility by walking the
//     version chain, so interrupting a long read-mostly transaction wastes no
//     work and blocks nobody.
//   - Commits are atomic through *indirect* commit stamps: an in-flight
//     version points to its writer transaction, and the writer's single
//     atomic state word (status + commit timestamp) is the only publication
//     point. Readers can never observe half a transaction, no matter where a
//     preemption lands.
//   - Write-write conflicts follow first-updater-wins: encountering another
//     transaction's in-flight or too-new version aborts the updater
//     immediately rather than blocking, so a paused (preempted) writer can
//     never make another context wait on it.
//
// Snapshot isolation is the default; read committed and a serializable mode
// (backward OCC validation under a commit critical section, the procedure
// the paper wraps in a non-preemptible region in §4.4) are also provided.
package mvcc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"preemptdb/internal/pcontext"
)

// IsolationLevel selects the read rule and commit-time validation.
type IsolationLevel uint8

const (
	// SnapshotIsolation reads the newest version committed before the
	// transaction began; write-write conflicts abort (first-updater-wins).
	SnapshotIsolation IsolationLevel = iota
	// ReadCommitted reads the newest committed version at each access.
	ReadCommitted
	// Serializable is snapshot isolation plus backward OCC read-set
	// validation under the commit critical section. Predicate (phantom)
	// protection is not implemented, matching classic record-level OCC.
	Serializable
)

func (l IsolationLevel) String() string {
	switch l {
	case SnapshotIsolation:
		return "snapshot"
	case ReadCommitted:
		return "read-committed"
	case Serializable:
		return "serializable"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", uint8(l))
	}
}

// Transaction outcome errors.
var (
	// ErrWriteConflict reports a write-write conflict; the transaction must
	// abort (first-updater-wins, no waiting).
	ErrWriteConflict = errors.New("mvcc: write-write conflict")
	// ErrReadValidation reports serializable read-set validation failure.
	ErrReadValidation = errors.New("mvcc: serializable read validation failed")
	// ErrTxnDone reports use of a committed or aborted transaction.
	ErrTxnDone = errors.New("mvcc: transaction already finished")
	// ErrNotPrepared reports CommitPrepared on a transaction that never ran
	// Prepare (or whose prepare was already consumed).
	ErrNotPrepared = errors.New("mvcc: transaction not prepared")
	// ErrAlreadyPrepared reports a second Prepare on the same transaction.
	ErrAlreadyPrepared = errors.New("mvcc: transaction already prepared")
)

// Transaction status values packed into Txn.state.
const (
	statusActive uint64 = iota
	statusCommitted
	statusAborted
	// statusCommitting marks the publication window: the commit timestamp has
	// been drawn from the clock but the versions are not yet published. A
	// reader that began after the draw (begin >= cts) must not resolve the
	// writer's versions as "active, invisible" — it would read the pre-commit
	// value for one key and, after publication lands mid-walk, the
	// post-commit value for another, observing half a transaction. resolve
	// waits the window out instead; it contains no I/O (group-commit staging
	// is a latch append, the batch write happens after publication), so the
	// wait is bounded by a few hundred instructions of the committer.
	statusCommitting
	statusBits = 2
	statusMask = 1<<statusBits - 1
)

// Txn is one transaction. Create with Oracle.Begin; finish with exactly one
// of Commit or Abort. A Txn is confined to one context/goroutine.
type Txn struct {
	id    uint64
	begin uint64
	iso   IsolationLevel
	ctx   *pcontext.Context
	// state packs status (low 2 bits) and the commit timestamp (high bits).
	// Storing statusCommitted|cts<<2 is the transaction's atomic commit
	// point; every version it wrote becomes visible at that instant.
	state  atomic.Uint64
	oracle *Oracle
	slot   *ActiveSlot

	// prepared marks a transaction between Prepare and CommitPrepared/Abort:
	// validated (under Serializable) and logged, still Active — its in-flight
	// versions keep blocking conflicting writers and stay invisible to
	// readers, which is exactly the hold a 2PC participant needs while the
	// coordinator decides.
	prepared bool

	writes []writeEntry
	reads  []readEntry
}

type writeEntry struct {
	rec *Record
	ver *Version
}

type readEntry struct {
	rec *Record
	ver *Version // nil when the read observed "no visible version"
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Begin returns the snapshot timestamp.
func (t *Txn) Begin() uint64 { return t.begin }

// Isolation returns the transaction's isolation level.
func (t *Txn) Isolation() IsolationLevel { return t.iso }

// Context returns the transaction context the transaction runs on.
func (t *Txn) Context() *pcontext.Context { return t.ctx }

// NumWrites returns the number of versions this transaction has installed.
func (t *Txn) NumWrites() int { return len(t.writes) }

// status decodes the state word.
func (t *Txn) status() (st, cts uint64) {
	s := t.state.Load()
	return s & statusMask, s >> statusBits
}

// Active reports whether the transaction is still in flight.
func (t *Txn) Active() bool {
	st, _ := t.status()
	return st == statusActive
}

// Version is one entry in a record's new-to-old chain. Immutable after its
// writer finishes, except for lazy commit-stamp propagation.
type Version struct {
	// cts is the commit timestamp; 0 means "consult writer" (in-flight or
	// not yet stamped), ctsAborted marks a version whose writer aborted.
	cts atomic.Uint64
	// writer is the creating transaction, cleared once cts is stamped.
	writer atomic.Pointer[Txn]
	// prev is the next-older version; atomic so GC can trim chains while
	// readers traverse.
	prev atomic.Pointer[Version]
	// data is the payload; nil marks a tombstone (deleted row).
	data []byte
}

const ctsAborted = ^uint64(0)

// Data returns the version payload (nil for tombstones).
func (v *Version) Data() []byte { return v.data }

// resolve returns the version's commitment state: committed (with its
// timestamp), aborted, or in-flight owned by `owner`.
//
// Txn objects are pooled per ActiveSlot, so the writer pointer read here may
// belong to a *recycled* transaction: the previous incarnation stamped every
// version it wrote (cts is monotone — once non-zero it never returns to zero)
// and cleared the writer references before the object was reused. Re-checking
// cts after reading the writer's state word therefore suffices: if cts is
// still zero, the writer has not finished stamping, so it cannot have been
// recycled and its state word is trustworthy; if cts became non-zero, the
// stamped value wins and the (possibly stale) state word is discarded.
func (v *Version) resolve() (cts uint64, committed bool, owner *Txn) {
	for {
		c := v.cts.Load()
		if c == ctsAborted {
			return 0, false, nil
		}
		if c != 0 {
			return c, true, nil
		}
		w := v.writer.Load()
		if w == nil {
			continue // stamped between the two loads; re-read cts
		}
		st, wcts := w.status()
		if v.cts.Load() != 0 {
			continue // w may be recycled; the stamp is authoritative
		}
		switch st {
		case statusCommitted:
			// Help stamp so later readers take the fast path.
			v.cts.CompareAndSwap(0, wcts)
			return wcts, true, nil
		case statusAborted:
			v.cts.CompareAndSwap(0, ctsAborted)
			return 0, false, nil
		case statusCommitting:
			// Publication in flight: the writer has drawn its commit timestamp
			// but not yet stored statusCommitted. Treating the version as
			// active here would let a reader whose begin covers the pending
			// timestamp tear the writer's transaction across keys, so wait the
			// (I/O-free, few-hundred-instruction) window out. Gosched keeps
			// this from livelocking a single-CPU host where the committer
			// needs the processor to finish.
			runtime.Gosched()
			continue
		default:
			return 0, false, w
		}
	}
}

// Record is one logical row: the head of its version chain. Records are
// created once per key (via the table's index) and never freed while indexed.
type Record struct {
	head atomic.Pointer[Version]
}

// NewRecord returns an empty record (no versions).
func NewRecord() *Record { return &Record{} }

// visible reports whether a resolved version should be read at snapshot b.
func visible(cts uint64, committed bool, owner, self *Txn, b uint64, iso IsolationLevel) bool {
	if owner != nil {
		return owner == self // own in-flight writes are visible
	}
	if !committed {
		return false // aborted
	}
	if iso == ReadCommitted {
		return true // newest committed wins
	}
	return cts <= b
}

// Read returns the payload visible to t, walking the version chain from the
// head. ok is false when no visible version exists or the visible version is
// a tombstone. Reads never block; each hop polls the transaction context so
// long chain walks remain preemptible.
func (t *Txn) Read(rec *Record) (data []byte, ok bool) {
	v := t.readVersion(rec)
	if v == nil || v.data == nil {
		return nil, false
	}
	return v.data, true
}

// ReadForCache is Read plus the metadata a read-through cache needs to decide
// whether the result is fillable: cts is the visible version's commit
// timestamp, and newest reports that no *committed* version newer than the
// visible one was skipped during the walk — i.e. the value is the newest
// committed state of the record as of the walk. Reads that observe their own
// in-flight write, a tombstone, or an older-than-newest snapshot version
// return newest=false and must not be cached. Skipped *in-flight* foreign
// versions do not clear newest: if their writer later commits, it does so
// through the cache's invalidation protocol, which the fill's stripe capture
// already races correctly against.
func (t *Txn) ReadForCache(rec *Record) (data []byte, cts uint64, newest, ok bool) {
	newest = true
	for v := rec.head.Load(); v != nil; v = v.prev.Load() {
		t.ctx.Poll()
		t.ctx.YieldStall()
		c, committed, owner := v.resolve()
		if visible(c, committed, owner, t, t.begin, t.iso) {
			if t.iso == Serializable {
				t.reads = append(t.reads, readEntry{rec: rec, ver: v})
			}
			if v.data == nil {
				return nil, 0, false, false // tombstone
			}
			if owner != nil {
				return v.data, 0, false, true // own uncommitted write
			}
			return v.data, c, newest, true
		}
		if committed {
			// A committed version newer than our snapshot sits above the one
			// we will read: the eventual result is not the newest committed
			// state and must not be cached.
			newest = false
		}
	}
	if t.iso == Serializable {
		t.reads = append(t.reads, readEntry{rec: rec, ver: nil})
	}
	return nil, 0, false, false
}

// readVersion finds the visible version (nil if none) and records it in the
// read set under Serializable.
func (t *Txn) readVersion(rec *Record) *Version {
	var found *Version
	for v := rec.head.Load(); v != nil; v = v.prev.Load() {
		t.ctx.Poll()
		// Version-chain hop: each older version is a pointer chase the
		// paper's hardware would stall on — a K-way core may rotate here.
		// Update's CAS loop deliberately carries no stall mark: parking
		// mid-install would widen the write-conflict window for free.
		t.ctx.YieldStall()
		cts, committed, owner := v.resolve()
		if visible(cts, committed, owner, t, t.begin, t.iso) {
			found = v
			break
		}
	}
	if t.iso == Serializable {
		t.reads = append(t.reads, readEntry{rec: rec, ver: found})
	}
	return found
}

// Update installs a new version of rec carrying data (nil = tombstone,
// i.e. delete). It returns ErrWriteConflict when another transaction's
// in-flight or too-new committed version heads the chain.
func (t *Txn) Update(rec *Record, data []byte) error {
	if !t.Active() {
		return ErrTxnDone
	}
	if err := t.ctx.Err(); err != nil {
		return err // canceled or past deadline: stop installing versions
	}
	var nv *Version
	for {
		t.ctx.Poll()
		h := rec.head.Load()
		if h != nil {
			cts, committed, owner := h.resolve()
			switch {
			case owner == t:
				// Second write to the same record: fold into our in-flight
				// version. It is invisible to every other transaction, so
				// in-place replacement is safe.
				h.data = data
				return nil
			case owner != nil:
				return ErrWriteConflict // in-flight foreign writer
			case committed && cts > t.begin:
				return ErrWriteConflict // first-updater-wins
			}
			// Committed-visible or aborted head: supersede it.
		}
		if nv == nil {
			if t.slot != nil {
				nv = t.slot.newVersion()
			} else {
				nv = &Version{}
			}
			nv.data = data
			nv.writer.Store(t)
		}
		nv.prev.Store(h)
		if rec.head.CompareAndSwap(h, nv) {
			t.writes = append(t.writes, writeEntry{rec: rec, ver: nv})
			return nil
		}
		// Lost the install race; re-examine the new head, reusing nv.
	}
}

// Delete writes a tombstone version.
func (t *Txn) Delete(rec *Record) error { return t.Update(rec, nil) }

// Oracle issues begin/commit timestamps from a centralized counter (§2.2)
// and tracks active snapshots for version garbage collection.
type Oracle struct {
	clock  atomic.Uint64
	nextID atomic.Uint64

	// slots is an atomically-published snapshot of the slot table. Writers
	// (RegisterSlot growing the table) copy-on-write under mu and publish the
	// new slice; MinActiveBegin — called on every vacuum cycle, and scanning
	// a table that now also carries per-query morsel helper slots — iterates
	// a loaded snapshot without taking mu, so GC never blocks registration.
	// Slots are only ever appended, never removed (unregistration recycles
	// them through freeSlots with begin=0), so a stale snapshot misses at
	// most slots registered after the load — and any transaction on such a
	// slot began at or after the clock value already loaded as the horizon
	// bound, exactly the argument Begin's conservative advertisement makes.
	slots atomic.Pointer[[]*ActiveSlot]

	mu        sync.Mutex
	freeSlots []int // indexes of unregistered slots available for reuse

	// commitMu serializes Serializable validation+publication (backward
	// OCC). Snapshot-isolation commits never touch it.
	commitMu sync.Mutex
}

// arenaChunk is the number of versions allocated per arena refill. Update
// hands out versions from the owning slot's arena, so the steady-state write
// path performs one bulk allocation per arenaChunk versions instead of one
// per version; a chunk becomes ordinary garbage once every version in it is
// unreachable (trimmed or superseded and unreferenced).
const arenaChunk = 256

// ActiveSlot advertises one context's active snapshot to the GC and carries
// the context's transaction scratch: a pooled Txn (with its read/write set
// capacity) and the version arena. The scratch is touched only by the slot's
// owning context, so it needs no synchronization — the same confinement
// argument CLS makes for the WAL buffer (paper §4.3).
type ActiveSlot struct {
	begin atomic.Uint64 // 0 = idle

	idx        int  // position in Oracle.slots, for free-list reuse
	registered bool // guarded by Oracle.mu

	cached *Txn      // recycled transaction object, nil when in use
	arena  []Version // bump allocator for new versions
	next   int       // next free index in arena
}

// newVersion returns a zeroed version from the slot's arena.
func (s *ActiveSlot) newVersion() *Version {
	if s.next == len(s.arena) {
		s.arena = make([]Version, arenaChunk)
		s.next = 0
	}
	v := &s.arena[s.next]
	s.next++
	return v
}

// NewOracle returns an oracle with the clock at 0 (first commit gets ts 1).
func NewOracle() *Oracle {
	o := &Oracle{}
	o.slots.Store(&[]*ActiveSlot{})
	return o
}

// Clock returns the current value of the commit-timestamp counter.
func (o *Oracle) Clock() uint64 { return o.clock.Load() }

// Begin starts a transaction at the current snapshot on ctx. The slot, if
// non-nil, marks the snapshot active for GC purposes and supplies the pooled
// transaction object; obtain one per worker context with RegisterSlot and
// pass it to every Begin on that context.
func (o *Oracle) Begin(ctx *pcontext.Context, iso IsolationLevel, slot *ActiveSlot) *Txn {
	var t *Txn
	if slot != nil && slot.cached != nil {
		t = slot.cached
		slot.cached = nil
		t.writes = t.writes[:0]
		t.reads = t.reads[:0]
	} else {
		t = &Txn{}
	}
	t.id = o.nextID.Add(1)
	if slot != nil {
		// Advertise a conservative snapshot bound *before* reading the
		// snapshot itself (both +1 so a begin of 0 stays distinguishable
		// from idle). A GC pass that misses this store computed its horizon
		// from an older clock than the snapshot we are about to take, and
		// one that sees it keeps everything the snapshot can read; either
		// way Trim can never reclaim this transaction's visible versions.
		// Reading the clock first and advertising after would leave a
		// window where neither holds.
		slot.begin.Store(o.clock.Load() + 1)
		t.begin = o.clock.Load()
		slot.begin.Store(t.begin + 1)
	} else {
		t.begin = o.clock.Load()
	}
	t.iso = iso
	t.ctx = ctx
	t.oracle = o
	t.slot = slot
	t.prepared = false
	t.state.Store(statusActive)
	return t
}

// BeginAt starts a read-only helper transaction pinned at the snapshot
// timestamp begin instead of the current clock — the entry point for morsel
// helpers that share one analytical query's snapshot across contexts. The
// slot advertises the shared begin so the vacuum horizon can never pass it
// while the helper runs; there is no clock re-read race here because safety
// comes from the parent, not from this store: the caller must guarantee that
// the transaction whose begin this is stays active on its own slot for the
// helper's whole lifetime, which keeps MinActiveBegin <= begin throughout,
// so advertising the same value can never un-protect a version the parent
// could still read. Read-only SI reads are latch-free, so several helpers
// may read under one snapshot concurrently; the returned transaction must
// not write (first-updater-wins checks assume a writer's begin came from the
// live clock) and must finish with Abort, never Commit.
func (o *Oracle) BeginAt(ctx *pcontext.Context, iso IsolationLevel, slot *ActiveSlot, begin uint64) *Txn {
	var t *Txn
	if slot != nil && slot.cached != nil {
		t = slot.cached
		slot.cached = nil
		t.writes = t.writes[:0]
		t.reads = t.reads[:0]
	} else {
		t = &Txn{}
	}
	t.id = o.nextID.Add(1)
	t.begin = begin
	if slot != nil {
		slot.begin.Store(begin + 1)
	}
	t.iso = iso
	t.ctx = ctx
	t.oracle = o
	t.slot = slot
	t.prepared = false
	t.state.Store(statusActive)
	return t
}

// Release returns a finished transaction object to its slot's pool for reuse
// by the next Begin on that slot. Call only after Commit or Abort returned
// and only from the slot's owning context; the Txn must not be used again.
// Safe (a no-op) for slotless or still-active transactions.
func (t *Txn) Release() {
	if t.slot == nil || t.Active() {
		return
	}
	t.slot.cached = t
}

// RegisterSlot returns a snapshot-tracking slot for a worker context, reusing
// a previously unregistered slot when one is free so the slot table — which
// MinActiveBegin scans on every GC cycle — stays bounded by the high-water
// mark of concurrently attached contexts rather than growing forever.
func (o *Oracle) RegisterSlot() *ActiveSlot {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := *o.slots.Load()
	if n := len(o.freeSlots); n > 0 {
		s := cur[o.freeSlots[n-1]]
		o.freeSlots = o.freeSlots[:n-1]
		s.registered = true
		return s
	}
	s := &ActiveSlot{idx: len(cur), registered: true}
	// Copy-on-write publication: concurrent MinActiveBegin scans keep
	// iterating the old snapshot, which is safe (see the slots field doc).
	grown := make([]*ActiveSlot, len(cur)+1)
	copy(grown, cur)
	grown[len(cur)] = s
	o.slots.Store(&grown)
	return s
}

// UnregisterSlot releases a slot obtained from RegisterSlot back to the
// oracle for reuse. The slot must be idle (no transaction in flight on it).
// Double-unregistration is a harmless no-op.
func (o *Oracle) UnregisterSlot(s *ActiveSlot) {
	if s == nil {
		return
	}
	s.begin.Store(0)
	o.mu.Lock()
	defer o.mu.Unlock()
	if !s.registered {
		return
	}
	s.registered = false
	o.freeSlots = append(o.freeSlots, s.idx)
}

// SlotCount returns the size of the slot table and how many entries are free
// for reuse (observability and leak tests).
func (o *Oracle) SlotCount() (total, free int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(*o.slots.Load()), len(o.freeSlots)
}

// MinActiveBegin returns the smallest active snapshot timestamp, or the
// current clock when no transaction is active. Versions strictly older than
// the version visible at this timestamp are unreachable and may be reclaimed.
// It is lock-free: the scan walks the published slot snapshot, so a GC cycle
// never blocks (or is blocked by) slot registration. The clock must be
// loaded before the snapshot: a slot published after the load can only carry
// begins at or after that clock value, which the result already bounds.
func (o *Oracle) MinActiveBegin() uint64 {
	min := o.clock.Load()
	for _, s := range *o.slots.Load() {
		if b := s.begin.Load(); b != 0 && b-1 < min {
			min = b - 1
		}
	}
	return min
}

// Commit finishes the transaction. Under Serializable it first validates the
// read set; the validation+publication pair runs inside the oracle's commit
// critical section, which the caller's engine wraps in a non-preemptible
// region. logFn, when non-nil, is invoked with the commit timestamp after
// validation and before publication — the hook the storage engine uses to
// flush its CLS redo buffer so the log never contains an unpublishable
// transaction.
func (t *Txn) Commit(logFn func(cts uint64) error) (uint64, error) {
	if !t.Active() {
		return 0, ErrTxnDone
	}
	if err := t.ctx.Err(); err != nil {
		// A canceled or deadline-expired transaction must never publish:
		// its submitter has already been (or will be) told it failed.
		t.abortLocked()
		if t.slot != nil {
			t.slot.begin.Store(0)
		}
		return 0, err
	}
	release := func() {
		if t.slot != nil {
			t.slot.begin.Store(0)
		}
	}
	finish := func() (uint64, error) {
		// Enter the publication window BEFORE drawing the commit timestamp:
		// once the clock advances, any new reader's begin covers our (still
		// unpublished) versions, and resolve must make such readers wait
		// rather than read around them — see statusCommitting.
		t.state.Store(statusCommitting)
		cts := t.oracle.clock.Add(1)
		if logFn != nil {
			if err := logFn(cts); err != nil {
				t.abortLocked()
				release()
				return 0, err
			}
		}
		// The atomic commit point: all our versions become visible at once.
		t.state.Store(statusCommitted | cts<<statusBits)
		// Eagerly stamp versions so readers take the fast path, then drop
		// the writer references to unpin the Txn.
		for i := range t.writes {
			v := t.writes[i].ver
			v.cts.CompareAndSwap(0, cts)
			v.writer.Store(nil)
		}
		release()
		return cts, nil
	}

	// Commit/validation is a latch-holding critical section: the engine
	// layer additionally wraps Commit in a non-preemptible region (§4.4).
	if t.iso != Serializable {
		return finish()
	}
	t.oracle.commitMu.Lock()
	defer t.oracle.commitMu.Unlock()
	if err := t.validateReads(); err != nil {
		t.abortLocked()
		release()
		return 0, err
	}
	return finish()
}

// Prepare runs the first phase of a two-phase commit: validation (under
// Serializable, inside the commit critical section) and logging via logFn,
// which receives a provisional timestamp drawn from the clock. On success the
// transaction stays Active and marked prepared — its versions remain
// in-flight, blocking conflicting writers and invisible to readers, until
// CommitPrepared publishes them or Abort rolls them back. On any failure
// (lifecycle error, validation, logFn) the transaction aborts cleanly and
// nothing was published.
//
// Serializable caveat: read validation happens here, not at CommitPrepared —
// between the two, the participant holds no latch, so a local serializable
// transaction can commit in the window. Write-write conflicts are still
// excluded (the prepared versions stay in-flight); only read-antidependencies
// across the window are unchecked, the classic 2PC-over-OCC relaxation.
func (t *Txn) Prepare(logFn func(cts uint64) error) (uint64, error) {
	if !t.Active() {
		return 0, ErrTxnDone
	}
	if t.prepared {
		return 0, ErrAlreadyPrepared
	}
	release := func() {
		if t.slot != nil {
			t.slot.begin.Store(0)
		}
	}
	if err := t.ctx.Err(); err != nil {
		t.abortLocked()
		release()
		return 0, err
	}
	prep := func() (uint64, error) {
		cts := t.oracle.clock.Add(1)
		if logFn != nil {
			if err := logFn(cts); err != nil {
				t.abortLocked()
				release()
				return 0, err
			}
		}
		t.prepared = true
		return cts, nil
	}
	if t.iso != Serializable {
		return prep()
	}
	t.oracle.commitMu.Lock()
	defer t.oracle.commitMu.Unlock()
	if err := t.validateReads(); err != nil {
		t.abortLocked()
		release()
		return 0, err
	}
	return prep()
}

// CommitPrepared publishes a prepared transaction. It draws a FRESH commit
// timestamp — not the prepare-time one — because the in-doubt window is
// unbounded: publishing the stale prepare timestamp would make the versions
// visible retroactively to snapshots taken mid-window, breaking snapshot
// isolation. (The prepare timestamp is used only when recovery itself
// resolves an in-doubt transaction, where no live snapshot ever observed the
// intermediate state.) logFn stages the resolution record; unlike Commit, a
// logFn error does NOT abort — the coordinator's decision is already durable,
// so recovery would commit this transaction anyway, and the in-memory state
// must agree. The error is returned alongside the published timestamp with
// "committed here, resolution not durable" semantics.
func (t *Txn) CommitPrepared(logFn func(cts uint64) error) (uint64, error) {
	if !t.Active() {
		return 0, ErrTxnDone
	}
	if !t.prepared {
		return 0, ErrNotPrepared
	}
	t.prepared = false
	finish := func() (uint64, error) {
		// Same publication-window discipline as Commit: readers that begin
		// after the clock draw must wait out the store below, not read around
		// the still-unpublished versions.
		t.state.Store(statusCommitting)
		cts := t.oracle.clock.Add(1)
		var lerr error
		if logFn != nil {
			lerr = logFn(cts)
		}
		t.state.Store(statusCommitted | cts<<statusBits)
		for i := range t.writes {
			v := t.writes[i].ver
			v.cts.CompareAndSwap(0, cts)
			v.writer.Store(nil)
		}
		if t.slot != nil {
			t.slot.begin.Store(0)
		}
		return cts, lerr
	}
	if t.iso != Serializable {
		return finish()
	}
	// Publication still serializes with local serializable commits so their
	// validation scans never race our stamping.
	t.oracle.commitMu.Lock()
	defer t.oracle.commitMu.Unlock()
	return finish()
}

// validateReads implements backward OCC: every record read must still expose
// the same version as the newest committed one. Runs under commitMu, so no
// concurrent serializable transaction can publish in between.
func (t *Txn) validateReads() error {
	for _, re := range t.reads {
		if re.ver != nil && re.ver.writer.Load() == t {
			// Read-own-write: covered by write-write conflict detection.
			continue
		}
		if newestCommitted(re.rec) != re.ver {
			return ErrReadValidation
		}
	}
	return nil
}

// newestCommitted returns the newest committed version of rec (nil if none).
func newestCommitted(rec *Record) *Version {
	for v := rec.head.Load(); v != nil; v = v.prev.Load() {
		if _, committed, _ := v.resolve(); committed {
			return v
		}
	}
	return nil
}

// ReadCommittedAt returns the payload and true commit timestamp of the newest
// version committed at or before ts. ok is false when no such version exists;
// a tombstone returns ok true with nil data. Checkpointing uses this to
// record each row's real commit timestamp, so replaying an overlapping log
// region over the restored checkpoint can skip already-included versions
// (apply-if-newer) instead of double-installing them.
func ReadCommittedAt(rec *Record, ts uint64) (data []byte, cts uint64, ok bool) {
	for v := rec.head.Load(); v != nil; v = v.prev.Load() {
		c, committed, _ := v.resolve()
		if committed && c <= ts {
			return v.data, c, true
		}
	}
	return nil, 0, false
}

// NewestCommittedTS returns the commit timestamp of rec's newest committed
// version, or 0 when none exists. Recovery-only: the apply-if-newer guard for
// replaying a log region that overlaps a restored checkpoint.
func NewestCommittedTS(rec *Record) uint64 {
	if v := newestCommitted(rec); v != nil {
		cts, _, _ := v.resolve()
		return cts
	}
	return 0
}

// InstallCommitted prepends an already-committed version with the given
// commit timestamp. Recovery-only: it bypasses conflict detection and assumes
// versions are installed in non-decreasing timestamp order per record.
func InstallCommitted(rec *Record, data []byte, cts uint64) {
	v := &Version{data: data}
	v.cts.Store(cts)
	v.prev.Store(rec.head.Load())
	rec.head.Store(v)
}

// AdvanceTo raises the commit clock to at least ts (recovery-only).
func (o *Oracle) AdvanceTo(ts uint64) {
	for {
		cur := o.clock.Load()
		if cur >= ts || o.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Abort rolls the transaction back: its versions become permanently
// invisible and are unlinked from chain heads where possible.
func (t *Txn) Abort() error {
	if !t.Active() {
		return ErrTxnDone
	}
	t.abortLocked()
	if t.slot != nil {
		t.slot.begin.Store(0)
	}
	return nil
}

func (t *Txn) abortLocked() {
	t.prepared = false
	t.state.Store(statusAborted)
	for i := range t.writes {
		w := t.writes[i]
		w.ver.cts.CompareAndSwap(0, ctsAborted)
		w.ver.writer.Store(nil)
		// Best-effort unlink: if our version still heads the chain, pop it.
		// Failure means a later writer superseded it; readers skip aborted
		// versions regardless, and GC trims them eventually.
		w.rec.head.CompareAndSwap(w.ver, w.ver.prev.Load())
	}
}
