package mvcc

// Version garbage collection. Memory-optimized multi-version engines must
// trim version chains or long-running readers make every update leak: once
// no active snapshot can reach a version's predecessors, the tail of the
// chain is unlinked and becomes ordinary garbage for the Go collector.
//
// The rule: let m = Oracle.MinActiveBegin(). Walking new-to-old, the first
// committed version with cts <= m is the oldest version any current or
// future snapshot can read; everything strictly older is unreachable.
// Aborted versions are skipped and dropped along the way.

// Trim prunes rec's chain given the oldest active snapshot m. It returns the
// number of versions unlinked. Safe to run concurrently with readers and
// writers: unlinking is an atomic prev-pointer store on a version that stays
// reachable, so an in-flight reader either sees the old tail (still intact,
// merely unlinked) or the trimmed chain.
func Trim(rec *Record, m uint64) int {
	v := rec.head.Load()
	if v == nil {
		return 0
	}
	// Fast path: a single-version chain has nothing to trim. This skips the
	// resolve() machinery entirely for the overwhelmingly common case of
	// records written once and never updated, which is what the background
	// vacuum spends most of its scan visiting.
	if v.prev.Load() == nil {
		return 0
	}
	// Find the cut point: the newest version visible at m (or the last
	// resolvable version). In-flight and too-new versions are kept.
	var cut *Version
	for v != nil {
		cts, committed, owner := v.resolve()
		if owner == nil && committed && cts <= m {
			cut = v
			break
		}
		v = v.prev.Load()
	}
	if cut == nil {
		return 0
	}
	// Everything older than the cut point is unreachable by any snapshot
	// ≥ m. Count and unlink.
	n := 0
	for p := cut.prev.Load(); p != nil; p = p.prev.Load() {
		n++
	}
	if n > 0 {
		cut.prev.Store(nil)
	}
	return n
}

// ChainLength returns the number of versions in rec's chain (for tests and
// observability).
func ChainLength(rec *Record) int {
	n := 0
	for v := rec.head.Load(); v != nil; v = v.prev.Load() {
		n++
	}
	return n
}
