package mvcc

import (
	"fmt"
	"testing"
)

// Ablation: cost of MVCC primitives, including the indirect-commit-stamp
// design (a version's first read resolves through its writer's state word
// and help-stamps; later reads take the stamped fast path).

func BenchmarkReadStampedHead(b *testing.B) {
	o := NewOracle()
	rec := NewRecord()
	tx := o.Begin(nil, SnapshotIsolation, nil)
	tx.Update(rec, []byte("v"))
	tx.Commit(nil)
	r := o.Begin(nil, SnapshotIsolation, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Read(rec); !ok {
			b.Fatal("lost row")
		}
	}
}

func BenchmarkReadUnstampedIndirection(b *testing.B) {
	// Unstamped committed versions: measures the writer-state resolution
	// path including the help-stamp CAS. A bounded pool is re-unstamped
	// between passes so memory stays constant at any b.N.
	const pool = 1 << 15
	o := NewOracle()
	recs := make([]*Record, pool)
	txns := make([]*Txn, pool)
	for i := range recs {
		recs[i] = NewRecord()
		tx := o.Begin(nil, SnapshotIsolation, nil)
		tx.Update(recs[i], []byte("v"))
		// Commit without eager stamping: publish the state word only.
		cts := o.clock.Add(1)
		tx.state.Store(statusCommitted | cts<<statusBits)
		txns[i] = tx
	}
	r := o.Begin(nil, SnapshotIsolation, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i & (pool - 1)
		if idx == 0 && i > 0 {
			b.StopTimer()
			for j := range recs {
				v := recs[j].head.Load()
				v.cts.Store(0)
				v.writer.Store(txns[j])
			}
			b.StartTimer()
		}
		if _, ok := r.Read(recs[idx]); !ok {
			b.Fatal("lost row")
		}
	}
}

func BenchmarkReadChainDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			o := NewOracle()
			rec := NewRecord()
			// Old snapshot pins the bottom version; build `depth` newer ones.
			base := o.Begin(nil, SnapshotIsolation, nil)
			base.Update(rec, []byte("v0"))
			base.Commit(nil)
			reader := o.Begin(nil, SnapshotIsolation, nil)
			for i := 0; i < depth-1; i++ {
				tx := o.Begin(nil, SnapshotIsolation, nil)
				tx.Update(rec, []byte("vn"))
				tx.Commit(nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := reader.Read(rec); !ok {
					b.Fatal("pinned version lost")
				}
			}
		})
	}
}

func BenchmarkUpdateCommit(b *testing.B) {
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, SnapshotIsolation, nil)
	setup.Update(rec, []byte("v"))
	setup.Commit(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := o.Begin(nil, SnapshotIsolation, nil)
		if err := tx.Update(rec, []byte("v")); err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Commit(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	Trim(rec, o.Clock())
}

func BenchmarkSerializableCommit(b *testing.B) {
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, Serializable, nil)
	setup.Update(rec, []byte("v"))
	setup.Commit(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := o.Begin(nil, Serializable, nil)
		tx.Read(rec)
		if err := tx.Update(rec, []byte("v")); err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Commit(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	Trim(rec, o.Clock())
}

func BenchmarkTrimChain16(b *testing.B) {
	// Measures building a 16-version chain (InstallCommitted) plus trimming
	// it back to one version — the GC unit of work — with bounded memory.
	rec := NewRecord()
	val := []byte("v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := uint64(i)*16 + 1
		for v := uint64(0); v < 16; v++ {
			InstallCommitted(rec, val, base+v)
		}
		if n := Trim(rec, base+16); n == 0 && i > 0 {
			b.Fatal("nothing trimmed")
		}
	}
}

// BenchmarkMinActiveBegin measures the vacuum-side horizon scan over a slot
// table sized like a busy process (workers + morsel helper slots). The scan
// walks the atomically-published snapshot without taking the registration
// lock, so its cost is pure iteration.
func BenchmarkMinActiveBegin(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("slots=%d", n), func(b *testing.B) {
			o := NewOracle()
			for i := 0; i < n; i++ {
				s := o.RegisterSlot()
				s.begin.Store(uint64(i + 1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if o.MinActiveBegin() != 0 {
					b.Fatal("horizon moved")
				}
			}
		})
	}
}

// BenchmarkRegisterUnderGC measures slot register/unregister while a
// concurrent goroutine runs the GC horizon scan in a tight loop — the
// contention pattern the snapshot publication removes (a mu-guarded scan
// would serialize every Register against every vacuum cycle).
func BenchmarkRegisterUnderGC(b *testing.B) {
	o := NewOracle()
	for i := 0; i < 256; i++ {
		s := o.RegisterSlot()
		s.begin.Store(uint64(i + 1))
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				o.MinActiveBegin()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := o.RegisterSlot()
		o.UnregisterSlot(s)
	}
	b.StopTimer()
	close(stop)
}
