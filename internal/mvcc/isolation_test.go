package mvcc

import (
	"sync"
	"testing"
)

// Isolation-level characterization tests: each anomaly the levels differ on
// is demonstrated positively and negatively, documenting exactly what each
// level does and does not permit.

func TestReadCommittedPermitsNonRepeatableRead(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, SnapshotIsolation, nil)
	setup.Update(rec, []byte("v1"))
	setup.Commit(nil)

	rc := o.Begin(nil, ReadCommitted, nil)
	first, _ := rc.Read(rec)
	if string(first) != "v1" {
		t.Fatalf("first read %q", first)
	}
	w := o.Begin(nil, SnapshotIsolation, nil)
	w.Update(rec, []byte("v2"))
	w.Commit(nil)
	second, _ := rc.Read(rec)
	if string(second) != "v2" {
		t.Fatalf("read committed must see the new commit, got %q", second)
	}
}

func TestSnapshotForbidsNonRepeatableRead(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, SnapshotIsolation, nil)
	setup.Update(rec, []byte("v1"))
	setup.Commit(nil)

	si := o.Begin(nil, SnapshotIsolation, nil)
	si.Read(rec)
	w := o.Begin(nil, SnapshotIsolation, nil)
	w.Update(rec, []byte("v2"))
	w.Commit(nil)
	again, _ := si.Read(rec)
	if string(again) != "v1" {
		t.Fatalf("snapshot repeated read changed: %q", again)
	}
}

func TestReadCommittedNeverSeesDirty(t *testing.T) {
	// Even at the weakest level, uncommitted (dirty) data is invisible.
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, SnapshotIsolation, nil)
	setup.Update(rec, []byte("clean"))
	setup.Commit(nil)

	w := o.Begin(nil, SnapshotIsolation, nil)
	w.Update(rec, []byte("dirty"))
	rc := o.Begin(nil, ReadCommitted, nil)
	if d, _ := rc.Read(rec); string(d) != "clean" {
		t.Fatalf("dirty read: %q", d)
	}
	w.Abort()
	if d, _ := rc.Read(rec); string(d) != "clean" {
		t.Fatalf("post-abort read: %q", d)
	}
}

func TestSerializableLostUpdatePrevented(t *testing.T) {
	// Read-modify-write race: both read 10, both try to write 11. The
	// second writer must fail (here via first-updater-wins, before
	// validation even runs).
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, Serializable, nil)
	setup.Update(rec, []byte{10})
	setup.Commit(nil)

	a := o.Begin(nil, Serializable, nil)
	b := o.Begin(nil, Serializable, nil)
	av, _ := a.Read(rec)
	bv, _ := b.Read(rec)
	if err := a.Update(rec, []byte{av[0] + 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(rec, []byte{bv[0] + 1}); err == nil {
		t.Fatal("second updater admitted")
	}
	b.Abort()
	if _, err := a.Commit(nil); err != nil {
		t.Fatal(err)
	}
	check := o.Begin(nil, Serializable, nil)
	if v, _ := check.Read(rec); v[0] != 11 {
		t.Fatalf("value = %d", v[0])
	}
}

func TestSerializableReadOnlyAnomalyConcurrent(t *testing.T) {
	// Stress: concurrent serializable increments of one counter must
	// serialize to an exact total despite aborts.
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, Serializable, nil)
	setup.Update(rec, []byte{0, 0})
	setup.Commit(nil)

	const workers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					tx := o.Begin(nil, Serializable, nil)
					v, ok := tx.Read(rec)
					if !ok {
						tx.Abort()
						continue
					}
					n := uint16(v[0]) | uint16(v[1])<<8
					n++
					if tx.Update(rec, []byte{byte(n), byte(n >> 8)}) != nil {
						tx.Abort()
						continue
					}
					if _, err := tx.Commit(nil); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	check := o.Begin(nil, Serializable, nil)
	v, _ := check.Read(rec)
	if n := uint16(v[0]) | uint16(v[1])<<8; n != workers*per {
		t.Fatalf("counter = %d, want %d", n, workers*per)
	}
}

func TestGCDoesNotDisturbConcurrentReaders(t *testing.T) {
	// Readers traverse chains while Trim unlinks tails; every read must
	// still resolve to a committed value. Readers advertise their snapshots
	// through registered slots — that is the GC contract: Trim only reclaims
	// versions no *advertised* snapshot can reach, so a reader that skipped
	// RegisterSlot could race with Trim and legitimately lose its version.
	o := NewOracle()
	rec := NewRecord()
	setup := o.Begin(nil, SnapshotIsolation, nil)
	setup.Update(rec, []byte{0})
	setup.Commit(nil)

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer + GC
		defer writerWG.Done()
		for i := byte(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := o.Begin(nil, SnapshotIsolation, nil)
			if tx.Update(rec, []byte{i}) == nil {
				tx.Commit(nil)
			} else {
				tx.Abort()
			}
			Trim(rec, o.MinActiveBegin())
		}
	}()
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			slot := o.RegisterSlot()
			defer o.UnregisterSlot(slot)
			for j := 0; j < 20000; j++ {
				tx := o.Begin(nil, SnapshotIsolation, slot)
				_, ok := tx.Read(rec)
				tx.Abort()
				if !ok {
					t.Error("reader lost the record during GC")
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}
