package mvcc

import (
	"sync"
	"testing"
)

// TestTxnPoolingReusesObject verifies that Release returns the transaction
// object to its slot and the next Begin on that slot hands it back.
func TestTxnPoolingReusesObject(t *testing.T) {
	o := NewOracle()
	slot := o.RegisterSlot()
	rec := NewRecord()

	t1 := o.Begin(nil, SnapshotIsolation, slot)
	if err := t1.Update(rec, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(nil); err != nil {
		t.Fatal(err)
	}
	t1.Release()

	t2 := o.Begin(nil, SnapshotIsolation, slot)
	if t2 != t1 {
		t.Fatal("Begin did not reuse the released Txn")
	}
	if !t2.Active() || t2.NumWrites() != 0 {
		t.Fatalf("recycled txn not reset: active=%v writes=%d", t2.Active(), t2.NumWrites())
	}
	if d, ok := t2.Read(rec); !ok || d[0] != 1 {
		t.Fatalf("recycled txn read = %v %v", d, ok)
	}
	// Releasing a still-active transaction must be refused.
	t2.Release()
	if t3 := o.Begin(nil, SnapshotIsolation, slot); t3 == t2 {
		t.Fatal("active txn was recycled")
	} else {
		t3.Abort()
		t3.Release()
	}
	t2.Abort()
	t2.Release()
}

// TestRecycledTxnDoesNotConfuseReaders hammers the stale-writer-pointer
// window: readers resolve versions whose writer Txn is being committed,
// released, and recycled for the next transaction on the same slot. Every
// read must still observe a committed value.
func TestRecycledTxnDoesNotConfuseReaders(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	seed := o.Begin(nil, SnapshotIsolation, nil)
	seed.Update(rec, []byte{0})
	seed.Commit(nil)

	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer recycling one Txn object as fast as possible
		defer wg.Done()
		slot := o.RegisterSlot()
		defer o.UnregisterSlot(slot)
		for i := byte(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := o.Begin(nil, SnapshotIsolation, slot)
			if tx.Update(rec, []byte{i}) == nil {
				tx.Commit(nil)
			} else {
				tx.Abort()
			}
			tx.Release()
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			slot := o.RegisterSlot()
			defer o.UnregisterSlot(slot)
			defer stopOnce.Do(func() { close(stop) })
			for j := 0; j < 30000; j++ {
				tx := o.Begin(nil, ReadCommitted, slot)
				_, ok := tx.Read(rec)
				tx.Abort()
				tx.Release()
				if !ok {
					t.Error("reader observed no committed version")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSlotFreeListReuse verifies that UnregisterSlot recycles slot-table
// entries instead of growing the table forever (the MinActiveBegin scan set).
func TestSlotFreeListReuse(t *testing.T) {
	o := NewOracle()
	for i := 0; i < 100; i++ {
		s := o.RegisterSlot()
		tx := o.Begin(nil, SnapshotIsolation, s)
		tx.Abort()
		o.UnregisterSlot(s)
	}
	if total, free := o.SlotCount(); total != 1 || free != 1 {
		t.Fatalf("slot table = %d (%d free), want 1 (1 free)", total, free)
	}
	s := o.RegisterSlot()
	o.UnregisterSlot(s)
	o.UnregisterSlot(s) // double unregister must be a no-op
	if total, free := o.SlotCount(); total != 1 || free != 1 {
		t.Fatalf("after double unregister: %d (%d free)", total, free)
	}
	// A freed slot must not pin the GC horizon.
	if min := o.MinActiveBegin(); min != o.Clock() {
		t.Fatalf("min active = %d, want clock %d", min, o.Clock())
	}
}

// TestTrimSingleVersionFastPath covers the fast path: a record with exactly
// one version is skipped without resolving the chain, even when that version
// is in-flight (writer still set) or older than the horizon.
func TestTrimSingleVersionFastPath(t *testing.T) {
	o := NewOracle()

	// Committed single version, far older than the horizon.
	rec := NewRecord()
	tx := o.Begin(nil, SnapshotIsolation, nil)
	tx.Update(rec, []byte{1})
	tx.Commit(nil)
	o.AdvanceTo(o.Clock() + 100)
	if n := Trim(rec, o.MinActiveBegin()); n != 0 {
		t.Fatalf("trimmed %d from single-version chain", n)
	}
	if ChainLength(rec) != 1 {
		t.Fatalf("chain = %d", ChainLength(rec))
	}

	// In-flight single version: fast path must not resolve (and must not
	// disturb) the uncommitted head.
	rec2 := NewRecord()
	inflight := o.Begin(nil, SnapshotIsolation, nil)
	inflight.Update(rec2, []byte{2})
	if n := Trim(rec2, o.MinActiveBegin()); n != 0 {
		t.Fatalf("trimmed %d under in-flight head", n)
	}
	if err := inflight.Abort(); err != nil {
		t.Fatal(err)
	}

	// Two-version chain still trims through the slow path.
	rec3 := NewRecord()
	for i := byte(0); i < 2; i++ {
		tx := o.Begin(nil, SnapshotIsolation, nil)
		tx.Update(rec3, []byte{i})
		tx.Commit(nil)
	}
	if n := Trim(rec3, o.MinActiveBegin()); n != 1 {
		t.Fatalf("trimmed %d, want 1", n)
	}
}

// TestVersionArenaServesUpdates checks that slot-backed transactions draw
// versions from the arena across chunk boundaries.
func TestVersionArenaServesUpdates(t *testing.T) {
	o := NewOracle()
	slot := o.RegisterSlot()
	rec := NewRecord()
	for i := 0; i < arenaChunk*2+3; i++ {
		tx := o.Begin(nil, SnapshotIsolation, slot)
		if err := tx.Update(rec, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(nil); err != nil {
			t.Fatal(err)
		}
		tx.Release()
	}
	want := byte((arenaChunk*2 + 2) % 256)
	check := o.Begin(nil, SnapshotIsolation, nil)
	if d, ok := check.Read(rec); !ok || d[0] != want {
		t.Fatalf("read = %v %v, want [%d]", d, ok, want)
	}
}
