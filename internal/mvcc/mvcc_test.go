package mvcc

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func begin(o *Oracle, iso IsolationLevel) *Txn { return o.Begin(nil, iso, nil) }

func mustCommit(t *testing.T, tx *Txn) uint64 {
	t.Helper()
	cts, err := tx.Commit(nil)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return cts
}

func TestReadYourOwnWrites(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	tx := begin(o, SnapshotIsolation)
	if _, ok := tx.Read(rec); ok {
		t.Fatal("empty record readable")
	}
	if err := tx.Update(rec, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, ok := tx.Read(rec)
	if !ok || string(data) != "v1" {
		t.Fatalf("own write invisible: %q %v", data, ok)
	}
	// Second write folds into the same version.
	if err := tx.Update(rec, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if tx.NumWrites() != 1 {
		t.Fatalf("writes = %d, want 1 folded", tx.NumWrites())
	}
	data, _ = tx.Read(rec)
	if string(data) != "v2" {
		t.Fatalf("fold failed: %q", data)
	}
	mustCommit(t, tx)
}

func TestUncommittedInvisible(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	writer := begin(o, SnapshotIsolation)
	writer.Update(rec, []byte("secret"))
	reader := begin(o, SnapshotIsolation)
	if _, ok := reader.Read(rec); ok {
		t.Fatal("in-flight write visible to another txn")
	}
	mustCommit(t, writer)
	// Still invisible: reader began before the commit.
	if _, ok := reader.Read(rec); ok {
		t.Fatal("snapshot read saw later commit")
	}
	// A new transaction sees it.
	later := begin(o, SnapshotIsolation)
	data, ok := later.Read(rec)
	if !ok || string(data) != "secret" {
		t.Fatal("committed write invisible to later txn")
	}
}

func TestSnapshotStability(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(rec, []byte("old"))
	mustCommit(t, setup)

	reader := begin(o, SnapshotIsolation)
	w := begin(o, SnapshotIsolation)
	w.Update(rec, []byte("new"))
	mustCommit(t, w)

	for i := 0; i < 3; i++ {
		data, ok := reader.Read(rec)
		if !ok || string(data) != "old" {
			t.Fatalf("snapshot unstable: %q %v", data, ok)
		}
	}
}

func TestReadCommittedSeesLatest(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(rec, []byte("old"))
	mustCommit(t, setup)

	rc := begin(o, ReadCommitted)
	if d, _ := rc.Read(rec); string(d) != "old" {
		t.Fatalf("got %q", d)
	}
	w := begin(o, SnapshotIsolation)
	w.Update(rec, []byte("new"))
	mustCommit(t, w)
	if d, _ := rc.Read(rec); string(d) != "new" {
		t.Fatalf("read committed stuck at %q", d)
	}
}

func TestWriteWriteConflictInFlight(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	a := begin(o, SnapshotIsolation)
	b := begin(o, SnapshotIsolation)
	if err := a.Update(rec, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(rec, []byte("b")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want write conflict", err)
	}
	b.Abort()
	mustCommit(t, a)
}

func TestWriteWriteConflictCommittedNewer(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	base := begin(o, SnapshotIsolation)
	base.Update(rec, []byte("base"))
	mustCommit(t, base)

	a := begin(o, SnapshotIsolation) // snapshot before b's commit
	b := begin(o, SnapshotIsolation)
	b.Update(rec, []byte("b"))
	mustCommit(t, b)
	if err := a.Update(rec, []byte("a")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want write conflict (lost update)", err)
	}
}

func TestUpdateAfterConflictingWriterAborts(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	a := begin(o, SnapshotIsolation)
	a.Update(rec, []byte("a"))
	a.Abort()
	b := begin(o, SnapshotIsolation)
	if err := b.Update(rec, []byte("b")); err != nil {
		t.Fatalf("update over aborted head: %v", err)
	}
	mustCommit(t, b)
	r := begin(o, SnapshotIsolation)
	if d, ok := r.Read(rec); !ok || string(d) != "b" {
		t.Fatalf("got %q %v", d, ok)
	}
}

func TestAbortUnlinksHead(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(rec, []byte("keep"))
	mustCommit(t, setup)
	tx := begin(o, SnapshotIsolation)
	tx.Update(rec, []byte("drop"))
	if ChainLength(rec) != 2 {
		t.Fatalf("chain = %d", ChainLength(rec))
	}
	tx.Abort()
	if ChainLength(rec) != 1 {
		t.Fatalf("aborted version not unlinked: chain = %d", ChainLength(rec))
	}
	r := begin(o, SnapshotIsolation)
	if d, _ := r.Read(rec); string(d) != "keep" {
		t.Fatalf("got %q", d)
	}
}

func TestTombstoneDelete(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(rec, []byte("alive"))
	mustCommit(t, setup)

	reader := begin(o, SnapshotIsolation)
	del := begin(o, SnapshotIsolation)
	if err := del.Delete(rec); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, del)

	// Old snapshot still sees the row; new snapshot sees the delete.
	if _, ok := reader.Read(rec); !ok {
		t.Fatal("old snapshot lost the row")
	}
	after := begin(o, SnapshotIsolation)
	if _, ok := after.Read(rec); ok {
		t.Fatal("deleted row visible")
	}
}

func TestTxnDoneErrors(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	tx := begin(o, SnapshotIsolation)
	mustCommit(t, tx)
	if err := tx.Update(rec, []byte("x")); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("update after commit: %v", err)
	}
	if _, err := tx.Commit(nil); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestCommitLogHookReceivesCTS(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	tx := begin(o, SnapshotIsolation)
	tx.Update(rec, []byte("v"))
	var logged uint64
	cts, err := tx.Commit(func(c uint64) error { logged = c; return nil })
	if err != nil || logged != cts || cts == 0 {
		t.Fatalf("cts=%d logged=%d err=%v", cts, logged, err)
	}
}

func TestCommitLogHookFailureAborts(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	tx := begin(o, SnapshotIsolation)
	tx.Update(rec, []byte("v"))
	sentinel := errors.New("disk full")
	if _, err := tx.Commit(func(uint64) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	r := begin(o, SnapshotIsolation)
	if _, ok := r.Read(rec); ok {
		t.Fatal("failed commit left visible data")
	}
}

func TestSerializableReadValidation(t *testing.T) {
	// Classic write-skew: two txns each read both records and update the
	// other one. Under SI both commit; under our serializable mode the
	// second must fail validation.
	o := NewOracle()
	r1, r2 := NewRecord(), NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(r1, []byte("1"))
	setup.Update(r2, []byte("1"))
	mustCommit(t, setup)

	a := begin(o, Serializable)
	b := begin(o, Serializable)
	a.Read(r1)
	a.Read(r2)
	b.Read(r1)
	b.Read(r2)
	if err := a.Update(r1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(r2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(nil); err != nil {
		t.Fatalf("first committer must succeed: %v", err)
	}
	if _, err := b.Commit(nil); !errors.Is(err, ErrReadValidation) {
		t.Fatalf("write skew admitted: err = %v", err)
	}
}

func TestSerializableReadOwnWriteValidates(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	setup := begin(o, Serializable)
	setup.Update(rec, []byte("0"))
	mustCommit(t, setup)

	tx := begin(o, Serializable)
	tx.Read(rec)
	tx.Update(rec, []byte("1"))
	tx.Read(rec) // reads own in-flight version
	if _, err := tx.Commit(nil); err != nil {
		t.Fatalf("read-own-write failed validation: %v", err)
	}
}

func TestSerializableWriteSkewUnderSIAdmitted(t *testing.T) {
	// Control: the same schedule under plain SI commits both ways,
	// demonstrating the anomaly serializable mode removes.
	o := NewOracle()
	r1, r2 := NewRecord(), NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(r1, []byte("1"))
	setup.Update(r2, []byte("1"))
	mustCommit(t, setup)

	a := begin(o, SnapshotIsolation)
	b := begin(o, SnapshotIsolation)
	a.Read(r1)
	a.Read(r2)
	b.Read(r1)
	b.Read(r2)
	a.Update(r1, []byte("a"))
	b.Update(r2, []byte("b"))
	mustCommit(t, a)
	mustCommit(t, b)
}

func TestCommitAtomicityUnderConcurrency(t *testing.T) {
	// A transaction writes two records; concurrent readers must observe
	// either both updates or neither — the indirect-commit-stamp property.
	o := NewOracle()
	r1, r2 := NewRecord(), NewRecord()
	setup := begin(o, SnapshotIsolation)
	setup.Update(r1, u64(0))
	setup.Update(r2, u64(0))
	mustCommit(t, setup)

	stop := make(chan struct{})
	var torn atomic.Int64
	var rwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := begin(o, SnapshotIsolation)
				d1, ok1 := r.Read(r1)
				d2, ok2 := r.Read(r2)
				if !ok1 || !ok2 {
					torn.Add(1)
					return
				}
				if binary.LittleEndian.Uint64(d1) != binary.LittleEndian.Uint64(d2) {
					torn.Add(1)
					return
				}
			}
		}()
	}
	for i := uint64(1); i <= 2000; i++ {
		for {
			w := begin(o, SnapshotIsolation)
			if w.Update(r1, u64(i)) != nil || w.Update(r2, u64(i)) != nil {
				w.Abort()
				continue
			}
			if _, err := w.Commit(nil); err == nil {
				break
			}
		}
	}
	close(stop)
	rwg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestConcurrentCountersConserveTotal(t *testing.T) {
	// Bank-transfer invariant: concurrent transfers between accounts keep
	// the total constant; SI write-conflict aborts must not corrupt state.
	o := NewOracle()
	const accounts = 8
	recs := make([]*Record, accounts)
	setup := begin(o, SnapshotIsolation)
	for i := range recs {
		recs[i] = NewRecord()
		setup.Update(recs[i], u64(100))
	}
	mustCommit(t, setup)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for i := 0; i < 2000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				from := int(x % accounts)
				to := int((x >> 8) % accounts)
				if from == to {
					continue
				}
				tx := begin(o, SnapshotIsolation)
				df, ok1 := tx.Read(recs[from])
				dt, ok2 := tx.Read(recs[to])
				if !ok1 || !ok2 {
					tx.Abort()
					continue
				}
				f := binary.LittleEndian.Uint64(df)
				g := binary.LittleEndian.Uint64(dt)
				if f == 0 {
					tx.Abort()
					continue
				}
				if tx.Update(recs[from], u64(f-1)) != nil || tx.Update(recs[to], u64(g+1)) != nil {
					tx.Abort()
					continue
				}
				tx.Commit(nil)
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	check := begin(o, SnapshotIsolation)
	total := uint64(0)
	for _, r := range recs {
		d, ok := check.Read(r)
		if !ok {
			t.Fatal("account vanished")
		}
		total += binary.LittleEndian.Uint64(d)
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d", total, accounts*100)
	}
}

func TestMinActiveBeginAndTrim(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	slot := o.RegisterSlot()

	// Build a 5-version chain.
	for i := 0; i < 5; i++ {
		tx := begin(o, SnapshotIsolation)
		tx.Update(rec, u64(uint64(i)))
		mustCommit(t, tx)
	}
	if ChainLength(rec) != 5 {
		t.Fatalf("chain = %d", ChainLength(rec))
	}

	// An active reader at an old snapshot pins versions.
	reader := o.Begin(nil, SnapshotIsolation, slot)
	oldMin := o.MinActiveBegin()
	if oldMin != reader.Begin() {
		t.Fatalf("min active = %d, want %d", oldMin, reader.Begin())
	}
	for i := 5; i < 8; i++ {
		tx := begin(o, SnapshotIsolation)
		tx.Update(rec, u64(uint64(i)))
		mustCommit(t, tx)
	}
	trimmed := Trim(rec, o.MinActiveBegin())
	// The version visible at the reader's snapshot must survive.
	if d, ok := reader.Read(rec); !ok || binary.LittleEndian.Uint64(d) != 4 {
		t.Fatalf("pinned version lost: %v %v", d, ok)
	}
	_ = trimmed

	// Release the reader: everything but the newest version is trimmable.
	mustCommit(t, reader)
	n := Trim(rec, o.MinActiveBegin())
	if n == 0 {
		t.Fatal("nothing trimmed after reader release")
	}
	if ChainLength(rec) != 1 {
		t.Fatalf("chain = %d after trim, want 1", ChainLength(rec))
	}
	final := begin(o, SnapshotIsolation)
	if d, ok := final.Read(rec); !ok || binary.LittleEndian.Uint64(d) != 7 {
		t.Fatalf("newest version lost: %v %v", d, ok)
	}
}

func TestTrimEmptyAndSingle(t *testing.T) {
	rec := NewRecord()
	if Trim(rec, 100) != 0 {
		t.Fatal("trim on empty record")
	}
	o := NewOracle()
	tx := begin(o, SnapshotIsolation)
	tx.Update(rec, []byte("only"))
	mustCommit(t, tx)
	if Trim(rec, o.Clock()) != 0 {
		t.Fatal("single version must not be trimmed")
	}
}

func TestTrimKeepsInFlightHead(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	a := begin(o, SnapshotIsolation)
	a.Update(rec, []byte("v1"))
	mustCommit(t, a)
	b := begin(o, SnapshotIsolation)
	b.Update(rec, []byte("v2"))
	// In-flight head: the committed v1 beneath it must survive (it is the
	// version any reader, and b's own abort path, still needs).
	Trim(rec, o.Clock())
	b.Abort()
	r := begin(o, SnapshotIsolation)
	if d, ok := r.Read(rec); !ok || string(d) != "v1" {
		t.Fatalf("got %q %v", d, ok)
	}
}

func TestIsolationLevelString(t *testing.T) {
	if SnapshotIsolation.String() != "snapshot" || ReadCommitted.String() != "read-committed" ||
		Serializable.String() != "serializable" {
		t.Fatal("bad strings")
	}
	if IsolationLevel(9).String() == "" {
		t.Fatal("unknown level must format")
	}
}

func TestOracleClockMonotonic(t *testing.T) {
	o := NewOracle()
	rec := NewRecord()
	var last uint64
	for i := 0; i < 100; i++ {
		tx := begin(o, SnapshotIsolation)
		tx.Update(rec, []byte("x"))
		cts := mustCommit(t, tx)
		if cts <= last {
			t.Fatalf("cts %d not monotonic after %d", cts, last)
		}
		last = cts
	}
}
