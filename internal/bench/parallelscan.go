package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
	"preemptdb/internal/sched"
	"preemptdb/internal/tpch"
)

// ScanPoint is one parallel data point of the parallelscan experiment: Q2
// executed as a morsel-parallel scan at a given worker count.
type ScanPoint struct {
	Workers           int     `json:"workers"`
	Morsels           int     `json:"morsels"`
	Queries           uint64  `json:"queries"`
	MeanQueryNs       float64 `json:"mean_query_ns"`
	P50QueryNs        int64   `json:"p50_query_ns"`
	MakespanNs        int64   `json:"makespan_ns"`
	Speedup           float64 `json:"speedup_vs_sequential"`
	MorselsStolen     uint64  `json:"morsels_stolen"`
	PartitionRestarts uint64  `json:"partition_restarts"`
}

// ScanResult is the full parallelscan experiment output.
type ScanResult struct {
	// Sequential is the single-threaded baseline: Q2 with one morsel on the
	// same scheduler configuration as the widest parallel point.
	Sequential struct {
		Workers     int     `json:"workers"`
		Queries     uint64  `json:"queries"`
		MeanQueryNs float64 `json:"mean_query_ns"`
		P50QueryNs  int64   `json:"p50_query_ns"`
		MakespanNs  int64   `json:"makespan_ns"`
	} `json:"sequential"`
	Points []ScanPoint `json:"points"`
	// HiSeq / HiPar are high-priority TPC-C end-to-end latency summaries
	// measured while sequential / morsel-parallel scans run continuously
	// under PolicyPreempt — the "does stealing hurt preemption?" check.
	HiSeq metrics.Summary `json:"-"`
	HiPar metrics.Summary `json:"-"`
	// JSON-friendly views of the two summaries.
	HiSeqP50Ns int64 `json:"hi_seq_p50_ns"`
	HiSeqP99Ns int64 `json:"hi_seq_p99_ns"`
	HiParP50Ns int64 `json:"hi_par_p50_ns"`
	HiParP99Ns int64 `json:"hi_par_p99_ns"`
	// HiSeqPhases / HiParPhases decompose the high-priority latency above into
	// scheduler phases (queue wait, exec, pauses, resume, WAL wait, total),
	// from the always-on registry of each latency phase's scheduler.
	HiSeqPhases metrics.PhaseSummaries `json:"hi_seq_phases"`
	HiParPhases metrics.PhaseSummaries `json:"hi_par_phases"`
	NumCPU      int                    `json:"num_cpu"`
}

// scanPhase runs the given Q2 queries one at a time at low priority and
// reports the makespan, the per-query latency histogram, and scheduler
// counters. Every mode executes the identical query list, so makespans are
// directly comparable. With hiTraffic, TPC-C batches arrive every
// opt.ArrivalInterval and their end-to-end latencies are recorded in hi; the
// query list then repeats until the duration elapses (latency under steady
// analytical load, not makespan, is the object there).
func (f *Fixture) scanPhase(workers, morsels int, queries []tpch.Q2Params, duration time.Duration, hiTraffic bool, reg *metrics.Registry) (makespan time.Duration, query, hi metrics.Histogram, stolen, restarts uint64) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := sched.New(sched.Config{
		Policy:              sched.PolicyPreempt,
		Workers:             workers,
		HiQueueSize:         f.opts.HiQueueSize,
		LoQueueSize:         f.opts.LoQueueSize,
		YieldInterval:       f.opts.YieldInterval,
		StarvationThreshold: f.opts.StarvationThreshold,
		Metrics:             reg,
	})
	restartsBefore := f.Engine.PartitionRestarts()
	s.Start()

	stop := make(chan struct{})
	hiDone := make(chan struct{})
	if hiTraffic {
		go func() {
			defer close(hiDone)
			gen := rng.New(0x5ca1ab1e)
			warehouses := f.TPCC.Scale().Warehouses
			var mu sync.Mutex
			ticker := time.NewTicker(f.opts.ArrivalInterval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				now := clock.Nanos()
				batch := make([]*sched.Request, workers*2)
				for i := range batch {
					w := uint32(gen.IntRange(1, warehouses))
					req := &sched.Request{EnqueuedAt: now}
					req.Work = func(ctx *pcontext.Context) error {
						return f.TPCC.Payment(ctx, ctxRand(ctx), w)
					}
					req.OnDone = func(r *sched.Request) {
						mu.Lock()
						hi.Record(r.Latency())
						mu.Unlock()
					}
					batch[i] = req
				}
				s.SubmitHighBatch(batch)
			}
		}()
	} else {
		close(hiDone)
	}

	// One analytical query in flight at a time: the makespan over the fixed
	// list is the scan completion time the speedup is computed from.
	phaseStart := clock.Nanos()
	deadline := phaseStart + int64(duration)
	for i := 0; ; i++ {
		if hiTraffic {
			// Latency phase: loop the list until the window closes.
			if clock.Nanos() >= deadline {
				break
			}
		} else if i >= len(queries) {
			break
		}
		p := queries[i%len(queries)]
		done := make(chan error, 1)
		start := clock.Nanos()
		ok := s.SubmitLow(0, &sched.Request{Work: func(ctx *pcontext.Context) error {
			_, err := f.TPCH.Q2Ex(ctx, p, tpch.Q2Exec{Morsels: morsels})
			return err
		}, OnDone: func(r *sched.Request) { done <- r.Err }})
		if !ok {
			time.Sleep(100 * time.Microsecond)
			i--
			continue
		}
		if err := <-done; err == nil {
			query.Record(clock.Nanos() - start)
		}
	}
	makespan = time.Duration(clock.Nanos() - phaseStart)
	close(stop)
	<-hiDone
	stolen = s.MorselsStolen()
	s.Stop()
	return makespan, query, hi, stolen, f.Engine.PartitionRestarts() - restartsBefore
}

// ParallelScan runs the morsel-driven analytical scan experiment: Q2
// completion time sequentially vs morsel-parallel across worker counts, and
// high-priority p99 while each scan mode runs continuously. Morsel fan-out is
// 4x the worker count so the work-stealing queue stays non-trivially
// populated. True wall-clock speedup requires spare physical CPUs: with
// GOMAXPROCS=1 every helper timeshares one core and speedup tops out at ~1x
// (the shape, not the host, is the reproduction target — see NumCPU in the
// result).
func ParallelScan(opt Options, workerCounts []int) (*ScanResult, error) {
	opt = opt.withDefaults()
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	res := &ScanResult{NumCPU: runtime.NumCPU()}
	maxW := workerCounts[len(workerCounts)-1]

	// Fixed query list, identical in every mode so makespans compare the
	// execution strategy and nothing else. Sized so the sequential pass runs
	// for roughly opt.Duration (a Q2 at the default scale takes tens of ms).
	nq := int(opt.Duration / (40 * time.Millisecond))
	if nq < 4 {
		nq = 4
	}
	gen := rng.New(0xbeefcafe)
	queries := make([]tpch.Q2Params, nq)
	for i := range queries {
		queries[i] = tpch.RandomQ2Params(gen)
	}

	// Single-threaded baseline: one morsel, so the whole scan runs inline on
	// the submitting worker, on the same scheduler width as the widest point.
	seqWall, seqQ, _, _, _ := f.scanPhase(maxW, 1, queries, opt.Duration, false, nil)
	seq := seqQ.Summarize()
	res.Sequential.Workers = maxW
	res.Sequential.Queries = seq.Count
	res.Sequential.MeanQueryNs = seq.Mean
	res.Sequential.P50QueryNs = seq.P50
	res.Sequential.MakespanNs = int64(seqWall)

	tbl := metrics.NewTable("mode", "workers", "morsels", "queries", "makespan", "mean", "p50", "speedup", "stolen", "restarts")
	tbl.AddRow("sequential", maxW, 1, seq.Count, seqWall.Round(time.Millisecond), fmtNs(int64(seq.Mean)), fmtNs(seq.P50), "1.00x", 0, 0)
	for _, w := range workerCounts {
		morsels := 4 * w
		wall, q, _, stolen, restarts := f.scanPhase(w, morsels, queries, opt.Duration, false, nil)
		sum := q.Summarize()
		pt := ScanPoint{
			Workers: w, Morsels: morsels,
			Queries: sum.Count, MeanQueryNs: sum.Mean, P50QueryNs: sum.P50,
			MakespanNs:    int64(wall),
			MorselsStolen: stolen, PartitionRestarts: restarts,
		}
		if wall > 0 {
			pt.Speedup = float64(seqWall) / float64(wall)
		}
		res.Points = append(res.Points, pt)
		tbl.AddRow("parallel", w, morsels, sum.Count, wall.Round(time.Millisecond), fmtNs(int64(sum.Mean)), fmtNs(sum.P50),
			fmt.Sprintf("%.2fx", pt.Speedup), stolen, restarts)
	}
	fmt.Fprintf(opt.Out, "Morsel-parallel Q2: makespan of %d identical queries (NumCPU=%d)\n", nq, res.NumCPU)
	fmt.Fprint(opt.Out, tbl.String())

	// High-priority latency while scans run continuously: sequential vs
	// parallel at the widest worker count, under PolicyPreempt. Each phase
	// gets its own registry so the per-phase decomposition of the hi-prio
	// latency lands beside the end-to-end summary in the artifact.
	seqReg, parReg := metrics.NewRegistry(), metrics.NewRegistry()
	_, _, hiSeq, _, _ := f.scanPhase(maxW, 1, queries, opt.Duration, true, seqReg)
	_, _, hiPar, _, _ := f.scanPhase(maxW, 4*maxW, queries, opt.Duration, true, parReg)
	res.HiSeq = hiSeq.Summarize()
	res.HiPar = hiPar.Summarize()
	res.HiSeqP50Ns, res.HiSeqP99Ns = res.HiSeq.P50, res.HiSeq.P99
	res.HiParP50Ns, res.HiParP99Ns = res.HiPar.P50, res.HiPar.P99
	res.HiSeqPhases = seqReg.Snapshot().Hi
	res.HiParPhases = parReg.Snapshot().Hi

	tbl2 := metrics.NewTable("scan mode", "hi n", "hi p50", "hi p99", "hi p99.9")
	tbl2.AddRow("sequential", res.HiSeq.Count, fmtNs(res.HiSeq.P50), fmtNs(res.HiSeq.P99), fmtNs(res.HiSeq.P999))
	tbl2.AddRow("parallel", res.HiPar.Count, fmtNs(res.HiPar.P50), fmtNs(res.HiPar.P99), fmtNs(res.HiPar.P999))
	fmt.Fprintln(opt.Out, "High-priority Payment latency during continuous scans (PolicyPreempt)")
	fmt.Fprint(opt.Out, tbl2.String())
	return res, nil
}

// WriteScanJSON emits a ScanResult in the same envelope as BENCH_commit.json.
func WriteScanJSON(path, command string, res *ScanResult, notes []string) error {
	return WriteBenchJSON(path, command, res, notes)
}

// WriteBenchJSON emits any experiment result in the standard artifact
// envelope (BENCH_*.json): date, cpu model, go platform, the exact command,
// and num_cpu — the host's CPU count, so single-CPU-host caveats are
// machine-checkable rather than prose.
func WriteBenchJSON(path, command string, results any, notes []string) error {
	doc := map[string]any{
		"date":    time.Now().Format("2006-01-02"),
		"cpu":     cpuModel(),
		"num_cpu": runtime.NumCPU(),
		"go":      runtime.GOOS + "/" + runtime.GOARCH,
		"command": command,
		"results": results,
		"notes":   notes,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// cpuModel best-effort reads the CPU model name (linux), falling back to the
// architecture string.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				return strings.TrimLeft(rest, " \t:")
			}
		}
	}
	return runtime.GOARCH
}
