package bench

import (
	"fmt"
	"runtime"
	"time"

	"preemptdb"
	"preemptdb/internal/clock"
	"preemptdb/internal/dtx"
	"preemptdb/internal/engine"
	"preemptdb/internal/keys"
	"preemptdb/internal/metrics"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
)

// TraceOverheadPoint is one tracing-mode data point: the BenchmarkCommitSI
// single-context commit loop (begin/update/commit against a preloaded key
// pool) with transaction tracing off, sampled (the default 1-in-2^5 WAL
// probe), or always-on.
type TraceOverheadPoint struct {
	Mode         string  `json:"mode"`
	Txns         uint64  `json:"txns"`
	TxnsPerSec   float64 `json:"txns_per_sec"`
	MeanNs       float64 `json:"mean_ns"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	// OverheadPct is this mode's mean commit latency relative to the "off"
	// row, in percent (0 for the off row itself). The mean, not p50: the
	// histogram's p50 is bucket-quantized to ~3-4% at microsecond latencies,
	// which would drown the thing being measured.
	OverheadPct float64 `json:"overhead_pct"`
}

// TraceOverheadResult is the full traceoverhead experiment output
// (BENCH_trace.json).
type TraceOverheadResult struct {
	Reps   int                  `json:"reps"`
	Keys   int                  `json:"keys"`
	Points []TraceOverheadPoint `json:"points"`
	NumCPU int                  `json:"num_cpu"`
}

// traceOverheadModes maps mode names to trace configuration. "off" disables
// the rings and span recording entirely; "sampled" is the shipping default
// (rings on, WAL spans on the 1-in-32 probe); "always" records every span.
var traceOverheadModes = []struct {
	name               string
	capacity, sampling int
}{
	{"off", -1, -1},
	{"sampled", 0, 0},
	{"always", 0, 1},
}

// TraceOverhead measures what transaction tracing costs on the commit path:
// the BenchmarkCommitSI loop (single context, begin/update/commit, pooled
// allocations) under each tracing mode, reporting per-commit mean/p50/p99 and
// whole-process allocations per transaction. Unlike the engine benchmark's
// pcontext.Detached() context, each mode runs on a live core with a trace
// ring attached, so span recording is actually exercised — the reproduction
// target is the sampled (shipping-default) row staying within the paper's
// ~5% observability budget of the off row.
//
// The three modes' measurement windows are interleaved round-robin (off,
// sampled, always, off, ...) and each mode keeps its lowest-mean window:
// host-load drift during the run then hits every mode equally instead of
// whichever mode happened to be measuring, and GC pauses or scheduling
// hiccups — which only ever inflate a window — are filtered by the best-of.
func TraceOverhead(opt Options) (*TraceOverheadResult, error) {
	opt = opt.withDefaults()
	const reps, nkeys = 5, 1024
	res := &TraceOverheadResult{
		Reps: reps, Keys: nkeys,
		NumCPU: runtime.NumCPU(),
	}

	window := opt.Duration / (reps * time.Duration(len(traceOverheadModes)))

	type windowResult struct {
		txns   uint64
		lat    metrics.Histogram
		allocs float64
		err    error
	}
	type modeRun struct {
		core *pcontext.Core
		req  chan int64 // window length in ns; closed to stop
		resp chan windowResult

		best       metrics.Histogram
		bestTxns   uint64
		bestAllocs float64
	}

	runs := make([]*modeRun, len(traceOverheadModes))
	for i, mode := range traceOverheadModes {
		e := engine.New(engine.Config{TraceSampling: mode.sampling})
		core := pcontext.NewCore(0, 1)
		if mode.capacity >= 0 {
			core.SetTracer(pcontext.NewTracer(1 << 12))
		}
		tab := e.CreateTable("bench")
		pool := make([][]byte, nkeys)
		for k := range pool {
			pool[k] = keys.Uint32(nil, uint32(k))
		}
		val := make([]byte, 64)
		mr := &modeRun{core: core, req: make(chan int64), resp: make(chan windowResult)}
		runs[i] = mr
		core.Start([]func(*pcontext.Context){func(ctx *pcontext.Context) {
			commit := func(k []byte) error {
				tx := e.BeginIso(ctx, mvcc.SnapshotIsolation)
				if err := tx.Update(tab, k, val); err != nil {
					return err
				}
				return tx.Commit()
			}
			gen := rng.New(0x7ace)
			for _, k := range pool {
				tx := e.BeginIso(ctx, mvcc.SnapshotIsolation)
				err := tx.Insert(tab, k, val)
				if err == nil {
					err = tx.Commit()
				}
				if err != nil {
					<-mr.req
					mr.resp <- windowResult{err: err}
					return
				}
			}
			for w := range mr.req {
				var r windowResult
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				deadline := clock.Nanos() + w
				for clock.Nanos() < deadline {
					k := pool[gen.Intn(nkeys)]
					start := clock.Nanos()
					if r.err = commit(k); r.err != nil {
						break
					}
					r.txns++
					r.lat.Record(clock.Nanos() - start)
				}
				runtime.ReadMemStats(&after)
				if r.txns > 0 {
					r.allocs = float64(after.Mallocs-before.Mallocs) / float64(r.txns)
				}
				mr.resp <- r
			}
		}})
	}
	shutdown := func() {
		for _, mr := range runs {
			close(mr.req)
			mr.core.Shutdown()
		}
	}

	// One discarded warmup window per mode (allocator/arena warmup would
	// otherwise land on whichever mode runs first), then the interleaved
	// measured rounds.
	for round := 0; round < reps+1; round++ {
		for _, mr := range runs {
			w := int64(window)
			if round == 0 {
				w = int64(window / 2)
			}
			mr.req <- w
			r := <-mr.resp
			if r.err != nil {
				shutdown()
				return nil, r.err
			}
			if round == 0 || r.txns == 0 {
				continue
			}
			if mr.bestTxns == 0 || r.lat.Summarize().Mean < mr.best.Summarize().Mean {
				mr.best, mr.bestTxns, mr.bestAllocs = r.lat, r.txns, r.allocs
			}
		}
	}
	shutdown()

	tbl := metrics.NewTable("mode", "txns", "txns/s", "mean", "p50", "p99", "allocs/txn", "overhead")
	var offMean float64
	for i, mode := range traceOverheadModes {
		mr := runs[i]
		sum := mr.best.Summarize()
		pt := TraceOverheadPoint{
			Mode: mode.name, Txns: mr.bestTxns,
			TxnsPerSec:   float64(mr.bestTxns) / window.Seconds(),
			MeanNs:       sum.Mean,
			P50Ns:        sum.P50,
			P99Ns:        sum.P99,
			AllocsPerTxn: mr.bestAllocs,
		}
		if mode.name == "off" {
			offMean = sum.Mean
		} else if offMean > 0 {
			pt.OverheadPct = 100 * (sum.Mean - offMean) / offMean
		}
		res.Points = append(res.Points, pt)
		tbl.AddRow(mode.name, mr.bestTxns, fmt.Sprintf("%.0f", pt.TxnsPerSec),
			fmtNs(int64(sum.Mean)), fmtNs(sum.P50), fmtNs(sum.P99),
			fmt.Sprintf("%.1f", pt.AllocsPerTxn), fmt.Sprintf("%+.1f%%", pt.OverheadPct))
	}
	fmt.Fprintf(opt.Out, "Commit-path latency by tracing mode (single-context engine loop, best of %d interleaved windows, NumCPU=%d)\n", reps, res.NumCPU)
	fmt.Fprint(opt.Out, tbl.String())
	return res, nil
}

// CrossShardTraceExport runs one cross-shard read-modify-write transaction on
// a 2-shard always-traced database and returns its merged Chrome trace-event
// document (DB.TraceTxn) — the artifact CI validates with cmd/validatetrace:
// admission, scheduling, WAL, and 2PC prepare/resolve spans from every
// participant shard under one transaction-scoped trace id.
func CrossShardTraceExport() ([]byte, error) {
	db, err := preemptdb.Open("", preemptdb.Config{
		Shards:        2,
		Workers:       2,
		Policy:        preemptdb.PolicyPreempt,
		TraceSampling: 1,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	db.CreateTable("kv")
	ka := []byte("xs-a")
	kb := ka
	for i := 0; dtx.ShardOf(kb, 2) == dtx.ShardOf(ka, 2); i++ {
		kb = []byte(fmt.Sprintf("xs-b%d", i))
	}
	var val [8]byte
	pending, err := db.SubmitOpts(preemptdb.TxnOptions{Priority: preemptdb.High}, func(tx *preemptdb.Txn) error {
		for _, k := range [][]byte{ka, kb} {
			if err := tx.Put("kv", k, val[:]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := pending.Wait(); err != nil {
		return nil, err
	}
	return db.TraceTxnWait(pending.TraceID(), time.Second)
}
