package bench

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"preemptdb/internal/engine"
	"preemptdb/internal/keys"
	"preemptdb/internal/mvcc"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/sched"
)

// TestParallelScanTorture is the morsel-parallelism torture test: parallel
// scans run under a preemptive scheduler while transfer writers churn the
// table on disjoint AND overlapping key ranges and a high-priority storm
// preempts every helper. Each scan must observe a snapshot-consistent total
// (transfers are balance-preserving) and exactly one version of every key —
// zero lost, zero duplicated. Run it under -race: the morsel claim protocol,
// the shared-snapshot Begin, the partition latches, and the stealing queue
// all get exercised at once.
//
// The writers only Update existing keys (MVCC version-chain appends), never
// insert or delete: concurrent structural B+tree writers are a pre-existing
// TSan exposure of the optimistic tree that this test deliberately avoids —
// the operator under test is the reader side.
func TestParallelScanTorture(t *testing.T) {
	const (
		nKeys   = 8000
		balance = 1000
		workers = 4
		morsels = 16
	)
	e := engine.New(engine.Config{})
	tab := e.CreateTable("acct")
	load := e.Begin(nil)
	for i := 0; i < nKeys; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], balance)
		if err := load.Insert(tab, keys.Uint32(nil, uint32(i)), v[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := load.Commit(); err != nil {
		t.Fatal(err)
	}
	const wantTotal = uint64(nKeys * balance)

	s := sched.New(sched.Config{Policy: sched.PolicyPreempt, Workers: workers})
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Transfer writers: move amounts between two keys of their range in one
	// transaction, preserving the global total. Ranges: two disjoint halves
	// plus one full-range writer overlapping both.
	transfer := func(lo, hi uint32, seed uint64) {
		defer wg.Done()
		state := seed
		next := func() uint32 {
			state = state*6364136223846793005 + 1442695040888963407
			return lo + uint32(state>>33)%(hi-lo)
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			a, b := next(), next()
			if a == b {
				continue
			}
			tx := e.Begin(nil)
			err := func() error {
				va, err := tx.Get(tab, keys.Uint32(nil, a))
				if err != nil {
					return err
				}
				vb, err := tx.Get(tab, keys.Uint32(nil, b))
				if err != nil {
					return err
				}
				amtA, amtB := binary.LittleEndian.Uint64(va), binary.LittleEndian.Uint64(vb)
				if amtA == 0 {
					return nil // nothing to move
				}
				var na, nb [8]byte
				binary.LittleEndian.PutUint64(na[:], amtA-1)
				binary.LittleEndian.PutUint64(nb[:], amtB+1)
				if err := tx.Update(tab, keys.Uint32(nil, a), na[:]); err != nil {
					return err
				}
				return tx.Update(tab, keys.Uint32(nil, b), nb[:])
			}()
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Abort()
			}
			if err != nil && !errors.Is(err, mvcc.ErrWriteConflict) {
				t.Errorf("transfer: %v", err)
				return
			}
		}
	}
	wg.Add(3)
	go transfer(0, nKeys/2, 1)     // disjoint lower half
	go transfer(nKeys/2, nKeys, 2) // disjoint upper half
	go transfer(0, nKeys, 3)       // overlaps both

	// High-priority storm: batches of point reads arrive every 200µs and
	// preempt whatever morsel each worker happens to be running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := uint32(0)
		for {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			batch := make([]*sched.Request, workers)
			for i := range batch {
				n++
				k := keys.Uint32(nil, n%nKeys)
				batch[i] = &sched.Request{Work: func(ctx *pcontext.Context) error {
					tx := e.Begin(ctx)
					defer tx.Abort()
					if _, err := tx.Get(tab, k); err != nil {
						return err
					}
					return tx.Commit()
				}}
			}
			s.SubmitHighBatch(batch)
		}
	}()

	// Morsel partials carry the keys seen, so the merged result proves
	// exactly-once row delivery in addition to the snapshot-consistent sum.
	type part struct {
		sum  uint64
		keys []uint32
	}
	deadline := time.Now().Add(2 * time.Second)
	scans := 0
	for time.Now().Before(deadline) {
		done := make(chan error, 1)
		var res part
		ok := s.SubmitLow(0, &sched.Request{Work: func(ctx *pcontext.Context) error {
			tx := e.Begin(ctx)
			defer tx.Abort()
			got, err := engine.ParallelScan(tx, tab, nil, nil,
				engine.ParallelScanConfig{Morsels: morsels, Spawn: sched.MorselSpawner(ctx)},
				func(sub *engine.Txn, m engine.Morsel) (part, error) {
					var p part
					err := sub.Scan(tab, m.From, m.To, func(k, v []byte) bool {
						p.sum += binary.LittleEndian.Uint64(v)
						p.keys = append(p.keys, binary.BigEndian.Uint32(k))
						return true
					})
					return p, err
				},
				func(a, b part) part { return part{a.sum + b.sum, append(a.keys, b.keys...)} })
			if err != nil {
				return err
			}
			res = got
			return tx.Commit()
		}, OnDone: func(r *sched.Request) { done <- r.Err }})
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if err := <-done; err != nil {
			t.Fatalf("scan %d: %v", scans, err)
		}
		if res.sum != wantTotal {
			t.Fatalf("scan %d: snapshot-inconsistent total %d, want %d", scans, res.sum, wantTotal)
		}
		if len(res.keys) != nKeys {
			t.Fatalf("scan %d: %d rows, want %d", scans, len(res.keys), nKeys)
		}
		seen := make([]bool, nKeys)
		for _, k := range res.keys {
			if seen[k] {
				t.Fatalf("scan %d: key %d delivered twice", scans, k)
			}
			seen[k] = true
		}
		scans++
	}
	close(stop)
	wg.Wait()
	if scans == 0 {
		t.Fatal("no scan completed inside the window")
	}
	t.Logf("%d consistent parallel scans, %d morsels stolen, %d partition restarts",
		scans, s.MorselsStolen(), e.PartitionRestarts())
}
