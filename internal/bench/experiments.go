package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/sched"
	"preemptdb/internal/tpcc"
	"preemptdb/internal/tpch"
	"preemptdb/internal/uintr"
)

// threePolicies are the paper's competing methods for the latency figures.
var threePolicies = []sched.Policy{sched.PolicyWait, sched.PolicyCooperative, sched.PolicyPreempt}

func fmtNs(v int64) string { return metrics.FormatNanos(float64(v)) }

// Fig1 reproduces Figure 1 (right): the scheduling-latency distribution of
// high-priority short transactions under Wait, Yield (cooperative) and
// Preempt, in a workload mixed with long-running transactions.
func Fig1(opt Options) ([]MixedResult, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	var results []MixedResult
	tbl := metrics.NewTable("policy", "p50", "p90", "p99", "p99.9", "max")
	for _, p := range threePolicies {
		r := f.RunMixed(MixedConfig{Policy: p})
		results = append(results, r)
		s := r.NewOrderSched
		tbl.AddRow(r.Policy, fmtNs(s.P50), fmtNs(s.P90), fmtNs(s.P99), fmtNs(s.P999), fmtNs(s.Max))
	}
	fmt.Fprintln(opt.Out, "Figure 1 (right): scheduling latency of high-priority NewOrder")
	fmt.Fprint(opt.Out, tbl.String())
	return results, nil
}

// UintrResult reports the §6.1 delivery-latency microbenchmark.
type UintrResult struct {
	Deliveries uint64
	MeanNanos  float64
}

// UintrLatency measures user-interrupt delivery latency between the
// scheduling thread and a polling worker context (§6.1 reports < 1µs on
// real hardware; the simulated substrate should be the same order). The
// sender spins on an acknowledgment counter rather than parking on a
// channel, so the measurement captures post→recognition time, not Go
// scheduler wake-up quanta.
func UintrLatency(opt Options, rounds int) (UintrResult, error) {
	opt = opt.withDefaults()
	if rounds == 0 {
		rounds = 20000
	}
	core := pcontext.NewCore(0, 2)
	var acked atomic.Uint64
	core.SetHandler(func(cur *pcontext.Context, vectors uint64) {
		if uintr.Has(vectors, uintr.VecPing) {
			acked.Add(1)
		}
	})
	core.Start([]func(*pcontext.Context){
		func(ctx *pcontext.Context) {
			for !core.Done() {
				for i := 0; i < 512; i++ {
					ctx.Poll()
				}
				// Yield so the sender goroutine can run on a single-CPU
				// host; on real hardware sender and receiver own cores.
				runtime.Gosched()
			}
		},
		nil,
	})
	upid := core.Receiver().UPID()
	deadline := time.Now().Add(2 * time.Minute)
	for i := uint64(1); i <= uint64(rounds); i++ {
		uintr.SendUIPI(upid, uintr.VecPing)
		for acked.Load() < i {
			runtime.Gosched() // hand the CPU to the polling worker
			if time.Now().After(deadline) {
				core.Shutdown()
				return UintrResult{}, fmt.Errorf("bench: delivery timed out at round %d", i)
			}
		}
	}
	core.Shutdown()
	n, mean := core.DeliveryStats()
	res := UintrResult{Deliveries: n, MeanNanos: mean}
	fmt.Fprintf(opt.Out, "uintr delivery latency: %d deliveries, mean %s (paper: <1µs)\n",
		res.Deliveries, metrics.FormatNanos(res.MeanNanos))
	return res, nil
}

// SwitchResult reports the context-switch microbenchmark.
type SwitchResult struct {
	RoundTrips    int
	MeanRoundTrip time.Duration
}

// ContextSwitch measures the voluntary SwapContext round trip between two
// contexts on one core — the §4.2 "lightweight transaction context switch".
func ContextSwitch(opt Options, rounds int) (SwitchResult, error) {
	opt = opt.withDefaults()
	if rounds == 0 {
		rounds = 200000
	}
	core := pcontext.NewCore(0, 2)
	done := make(chan time.Duration, 1)
	core.Start([]func(*pcontext.Context){
		func(ctx *pcontext.Context) {
			other := core.Context(1)
			start := clock.Nanos()
			for i := 0; i < rounds; i++ {
				ctx.SwapContext(other)
			}
			done <- time.Duration(clock.Nanos() - start)
		},
		func(ctx *pcontext.Context) {
			other := core.Context(0)
			for !core.Done() {
				ctx.SwapContext(other)
			}
		},
	})
	total := <-done
	core.Shutdown()
	res := SwitchResult{RoundTrips: rounds, MeanRoundTrip: total / time.Duration(rounds)}
	fmt.Fprintf(opt.Out, "context switch: %d round trips, mean %v per round trip (two switches)\n",
		res.RoundTrips, res.MeanRoundTrip)
	return res, nil
}

// Fig8Result reports the uintr overhead experiment.
type Fig8Result struct {
	BaselineTPS float64 // no uintr machinery
	WithUintrTPS float64 // scheduler pings every interval, no hi work
	OverheadPct float64
}

// Fig8 reproduces Figure 8: standard TPC-C (all transactions low-priority)
// with and without the user-interrupt machinery; the paper measures ~1.7%
// slowdown. The workload is closed-loop — every completed transaction
// resubmits itself from its completion callback, which runs on the worker —
// so throughput measures the engine + scheduling machinery, not the
// generator goroutine's share of the CPU. Each variant gets a warm-up
// window before measurement.
func Fig8(opt Options) (Fig8Result, error) {
	opt = opt.withDefaults()
	run := func(policy sched.Policy, ping bool) (float64, error) {
		f, err := NewFixture(opt)
		if err != nil {
			return 0, err
		}
		s := sched.New(sched.Config{
			Policy:      policy,
			Workers:     opt.Workers,
			HiQueueSize: opt.HiQueueSize,
			LoQueueSize: 64,
		})
		var stop atomic.Bool
		mixWork := func(ctx *pcontext.Context) error {
			r := ctxRand(ctx)
			w := uint32(r.IntRange(1, f.TPCC.Scale().Warehouses))
			err := f.TPCC.Run(tpcc.PickMix(r), ctx, r, w)
			if err == tpcc.ErrUserAbort {
				return nil
			}
			return err
		}
		// Self-perpetuating chains: OnDone runs on the worker's context and
		// requeues into the same worker's queue, keeping it saturated.
		var newReq func(wid int) *sched.Request
		newReq = func(wid int) *sched.Request {
			return &sched.Request{
				Work: mixWork,
				OnDone: func(*sched.Request) {
					if !stop.Load() {
						s.SubmitLow(wid, newReq(wid))
					}
				},
			}
		}
		// Prime before Start: four chains per worker.
		for wid := 0; wid < opt.Workers; wid++ {
			for c := 0; c < 4; c++ {
				s.SubmitLow(wid, newReq(wid))
			}
		}
		s.Start()

		warmup := opt.Duration / 3
		pinger := time.NewTicker(opt.ArrivalInterval)
		defer pinger.Stop()
		spin := func(d time.Duration) uint64 {
			deadline := clock.Nanos() + int64(d)
			for clock.Nanos() < deadline {
				if ping {
					s.PingAll()
				}
				<-pinger.C
			}
			var n uint64
			for _, w := range s.Workers() {
				n += w.ExecutedLow()
			}
			return n
		}
		before := spin(warmup)
		startNanos := clock.Nanos()
		after := spin(opt.Duration)
		elapsed := time.Duration(clock.Nanos() - startNanos)
		stop.Store(true)
		s.Stop()
		return float64(after-before) / elapsed.Seconds(), nil
	}

	// Heap/allocator state carries across in-process runs (the first run
	// pays heap growth the second inherits), so discard one run of each
	// variant first and force a collection before every measurement.
	runtime.GC()
	if _, err := run(sched.PolicyWait, false); err != nil {
		return Fig8Result{}, err
	}
	runtime.GC()
	if _, err := run(sched.PolicyPreempt, true); err != nil {
		return Fig8Result{}, err
	}
	runtime.GC()
	base, err := run(sched.PolicyWait, false)
	if err != nil {
		return Fig8Result{}, err
	}
	runtime.GC()
	with, err := run(sched.PolicyPreempt, true)
	if err != nil {
		return Fig8Result{}, err
	}
	res := Fig8Result{BaselineTPS: base, WithUintrTPS: with}
	if base > 0 {
		res.OverheadPct = (base - with) / base * 100
	}
	fmt.Fprintf(opt.Out, "Figure 8: standard TPC-C throughput\n")
	tbl := metrics.NewTable("variant", "kTPS")
	tbl.AddRow("no uintr (Wait)", fmt.Sprintf("%.1f", base/1000))
	tbl.AddRow("with uintr (empty interrupts)", fmt.Sprintf("%.1f", with/1000))
	fmt.Fprint(opt.Out, tbl.String())
	fmt.Fprintf(opt.Out, "overhead: %.1f%% (paper: ~1.7%%)\n", res.OverheadPct)
	return res, nil
}

// Fig9Point is one (workers, policy) scalability measurement.
type Fig9Point struct {
	Workers int
	Result  MixedResult
}

// Fig9 reproduces Figure 9: mixed-workload throughput under varying worker
// counts for all policies. Worker counts sweep powers of two up to at least
// 4 (oversubscribing physical CPUs if needed: the reproduction target is the
// paper's "all policies perform alike at each scale", since absolute scaling
// on an oversubscribed host measures the Go scheduler, not PreemptDB).
func Fig9(opt Options) ([]Fig9Point, error) {
	opt = opt.withDefaults()
	maxWorkers := opt.Workers
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	var counts []int
	for n := 1; n <= maxWorkers; n *= 2 {
		counts = append(counts, n)
	}
	// The fixture's warehouse count must cover the largest sweep point.
	if opt.TPCC.Warehouses < maxWorkers {
		opt.TPCC.Warehouses = maxWorkers
	}
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	var points []Fig9Point
	tbl := metrics.NewTable("workers", "policy", "Q2/s", "NewOrder/s", "Payment/s")
	for _, n := range counts {
		for _, p := range threePolicies {
			r := f.RunMixed(MixedConfig{Policy: p, Workers: n,
				HiBatchPerInterval: n * opt.HiQueueSize})
			points = append(points, Fig9Point{Workers: n, Result: r})
			tbl.AddRow(n, r.Policy,
				fmt.Sprintf("%.1f", r.Q2TPS),
				fmt.Sprintf("%.0f", r.NewOrderTPS),
				fmt.Sprintf("%.0f", r.PaymentTPS))
		}
	}
	fmt.Fprintln(opt.Out, "Figure 9: mixed-workload scalability")
	fmt.Fprint(opt.Out, tbl.String())
	return points, nil
}

// Fig10 reproduces Figure 10: end-to-end latency percentiles of NewOrder
// (top) and Q2 (bottom) under the three policies.
func Fig10(opt Options) ([]MixedResult, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	var results []MixedResult
	no := metrics.NewTable("policy", "p50", "p90", "p99", "p99.9")
	q2 := metrics.NewTable("policy", "p50", "p90", "p99", "p99.9")
	for _, p := range threePolicies {
		r := f.RunMixed(MixedConfig{Policy: p})
		results = append(results, r)
		no.AddRow(r.Policy, fmtNs(r.NewOrder.P50), fmtNs(r.NewOrder.P90), fmtNs(r.NewOrder.P99), fmtNs(r.NewOrder.P999))
		q2.AddRow(r.Policy, fmtNs(r.Q2.P50), fmtNs(r.Q2.P90), fmtNs(r.Q2.P99), fmtNs(r.Q2.P999))
	}
	fmt.Fprintln(opt.Out, "Figure 10 (top): NewOrder end-to-end latency")
	fmt.Fprint(opt.Out, no.String())
	fmt.Fprintln(opt.Out, "Figure 10 (bottom): Q2 end-to-end latency")
	fmt.Fprint(opt.Out, q2.String())
	return results, nil
}

// Fig11Point is one yield-interval measurement.
type Fig11Point struct {
	Label         string
	YieldInterval uint64
	Result        MixedResult
}

// Fig11 reproduces Figure 11: cooperative yield-interval sweep (throughput
// and latency of both transaction classes), plus the handcrafted variant and
// the PreemptDB reference.
func Fig11(opt Options) ([]Fig11Point, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	var points []Fig11Point
	tbl := metrics.NewTable("variant", "NewOrder/s", "Q2/s", "NewOrder p99", "Q2 p99")
	add := func(label string, yi uint64, r MixedResult) {
		points = append(points, Fig11Point{Label: label, YieldInterval: yi, Result: r})
		tbl.AddRow(label,
			fmt.Sprintf("%.0f", r.NewOrderTPS),
			fmt.Sprintf("%.1f", r.Q2TPS),
			fmtNs(r.NewOrder.P99), fmtNs(r.Q2.P99))
	}
	for _, yi := range []uint64{1, 10, 100, 1000, 10000, 100000} {
		r := f.RunMixed(MixedConfig{Policy: sched.PolicyCooperative, YieldInterval: yi})
		add(fmt.Sprintf("Cooperative/%d", yi), yi, r)
	}
	// Handcrafted: yields placed right outside Q2's nested query block
	// (§6.3). The paper yields every 1000 blocks at TPC-H scale; our scaled
	// Q2 executes ~250 nested blocks per run, so yielding every 4 blocks
	// preserves the paper's ~sub-millisecond gap between handcrafted yields.
	rh := f.RunMixed(MixedConfig{Policy: sched.PolicyCooperativeHandcrafted, HandcraftedYieldEvery: 4})
	add("Cooperative (Handcrafted)", 0, rh)
	rp := f.RunMixed(MixedConfig{Policy: sched.PolicyPreempt})
	add("PreemptDB", 0, rp)

	fmt.Fprintln(opt.Out, "Figure 11: yield interval vs throughput and latency")
	fmt.Fprint(opt.Out, tbl.String())
	return points, nil
}

// Fig12Point is one starvation-threshold measurement.
type Fig12Point struct {
	Label     string
	Threshold float64
	Result    MixedResult
}

// Fig12 reproduces Figure 12: the starvation-prevention sweep under a
// high-priority overload (large queues, large batches). Wait is the
// reference collapse point.
func Fig12(opt Options) ([]Fig12Point, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	// Overload the system: deep queues and a large per-interval batch
	// (paper: queue 100, 1600 txns/ms across 16 workers).
	hiQ := 100
	batch := opt.Workers * hiQ
	var points []Fig12Point
	tbl := metrics.NewTable("variant", "Q2/s", "Q2 p99", "NewOrder/s", "NewOrder p99")
	add := func(label string, thr float64, r MixedResult) {
		points = append(points, Fig12Point{Label: label, Threshold: thr, Result: r})
		tbl.AddRow(label, fmt.Sprintf("%.2f", r.Q2TPS), fmtNs(r.Q2.P99),
			fmt.Sprintf("%.0f", r.NewOrderTPS), fmtNs(r.NewOrder.P99))
	}
	rw := f.RunMixed(MixedConfig{Policy: sched.PolicyWait, HiQueueSize: hiQ, HiBatchPerInterval: batch})
	add("Wait", 0, rw)
	for _, thr := range []float64{0.000001, 0.25, 0.5, 0.75, 100} {
		label := fmt.Sprintf("PreemptDB thr=%.2f", thr)
		if thr >= 1 {
			label = "PreemptDB thr=off"
		}
		r := f.RunMixed(MixedConfig{Policy: sched.PolicyPreempt, HiQueueSize: hiQ,
			HiBatchPerInterval: batch, StarvationThreshold: thr})
		add(label, thr, r)
	}
	fmt.Fprintln(opt.Out, "Figure 12: starvation thresholds under overload")
	fmt.Fprint(opt.Out, tbl.String())
	return points, nil
}

// Fig13Point is one arrival-interval measurement.
type Fig13Point struct {
	Interval time.Duration
	Result   MixedResult
}

// Fig13 reproduces Figure 13: geometric-mean end-to-end latency of NewOrder
// and Q2 across arrival intervals from 50µs to 50ms for all policies.
func Fig13(opt Options) (map[string][]Fig13Point, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	intervals := []time.Duration{50 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 50 * time.Millisecond}
	out := make(map[string][]Fig13Point)
	tbl := metrics.NewTable("interval", "policy", "NewOrder geomean", "Q2 geomean")
	for _, iv := range intervals {
		for _, p := range threePolicies {
			r := f.RunMixed(MixedConfig{Policy: p, ArrivalInterval: iv})
			out[p.String()] = append(out[p.String()], Fig13Point{Interval: iv, Result: r})
			tbl.AddRow(iv, r.Policy,
				metrics.FormatNanos(r.NewOrder.Geomean),
				metrics.FormatNanos(r.Q2.Geomean))
		}
	}
	fmt.Fprintln(opt.Out, "Figure 13: geomean latency vs arrival interval")
	fmt.Fprint(opt.Out, tbl.String())
	return out, nil
}

// Trace runs a short preemptive mixed workload on a scheduler with its
// default always-on tracers and prints the resulting scheduling timeline — a
// concrete rendering of the paper's Figure 2/5 flow: interrupt recognition,
// passive switch to the preemptive context, and the active switch back. The
// per-core event rings come back alongside the flat worker-0 timeline so the
// caller can export them (see WriteChromeTrace).
func Trace(opt Options) ([]pcontext.Event, []pcontext.CoreEvents, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, nil, err
	}
	s := sched.New(sched.Config{
		Policy:      sched.PolicyPreempt,
		Workers:     1,
		HiQueueSize: opt.HiQueueSize,
		LoQueueSize: 1,
	})
	s.Start()
	defer s.Stop()

	done := make(chan struct{})
	s.SubmitLow(0, &sched.Request{Work: func(ctx *pcontext.Context) error {
		_, err := f.TPCH.Q2(ctx, tpch.Q2Params{Size: 10, TypeSuffix: "TIN", Region: "ASIA"}, 0)
		close(done)
		return err
	}})
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		hiDone := make(chan struct{})
		s.SubmitHighBatch([]*sched.Request{{
			Work: func(ctx *pcontext.Context) error {
				return f.TPCC.Payment(ctx, ctxRand(ctx), 1)
			},
			OnDone: func(*sched.Request) { close(hiDone) },
		}})
		select {
		case <-hiDone:
		case <-time.After(10 * time.Second):
			return nil, nil, fmt.Errorf("bench: traced high-priority txn never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-done
	cores := s.TraceSnapshot()
	var events []pcontext.Event
	if len(cores) > 0 {
		events = cores[0].Events
	}
	fmt.Fprintln(opt.Out, "Preemption timeline (worker 0, Q2 preempted by three Payments):")
	fmt.Fprint(opt.Out, pcontext.Timeline(events))
	return events, cores, nil
}

// WriteChromeTrace renders the per-core event rings as Chrome trace-event
// JSON (loadable in ui.perfetto.dev / chrome://tracing) and writes the
// document to path.
func WriteChromeTrace(path string, cores []pcontext.CoreEvents) error {
	data, err := pcontext.ChromeTrace(cores)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// SortedPolicies returns the policy names in canonical order, for stable
// report generation from Fig13's map.
func SortedPolicies(m map[string][]Fig13Point) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Shed exercises the transaction-lifecycle layer on top of the paper's
// mixed workload: every high-priority request carries a deadline of a few
// arrival intervals, so requests that the policy cannot start in time are
// shed at dispatch (never burning a core) and requests preempted too late
// unwind mid-flight at the next poll. Policies that deliver low scheduling
// latency (Preempt) complete nearly everything; policies that make
// high-priority work wait behind Q2 (Wait) shed instead — the same contrast
// as Figure 1, read through the shed/abort counters.
func Shed(opt Options) ([]MixedResult, error) {
	opt = opt.withDefaults()
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	deadline := 4 * opt.ArrivalInterval
	var results []MixedResult
	tbl := metrics.NewTable("policy", "deadline", "completed", "shed (expired)", "missed mid-flight", "hi p99")
	for _, p := range threePolicies {
		r := f.RunMixed(MixedConfig{Policy: p, HiDeadline: deadline})
		results = append(results, r)
		completed := r.NewOrder.Count + r.Payment.Count
		tbl.AddRow(r.Policy, deadline.String(),
			fmt.Sprintf("%d", completed),
			fmt.Sprintf("%d", r.ShedExpired),
			fmt.Sprintf("%d", r.HiDeadlineMisses),
			fmtNs(r.NewOrder.P99))
	}
	fmt.Fprintln(opt.Out, "Deadline shedding: high-priority requests with deadline = 4 arrival intervals")
	fmt.Fprint(opt.Out, tbl.String())
	return results, nil
}
