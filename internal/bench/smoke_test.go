package bench

import (
	"os"
	"testing"
	"time"
)

func TestSmokeFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	opt := Options{
		Workers:  0,
		Duration: 2 * time.Second,
		Out:      os.Stderr,
	}
	rs, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		t.Logf("%s: NO n=%d schedP50=%v Q2 n=%d noTPS=%.0f q2TPS=%.1f intr=%d drop=%d",
			r.Policy, r.NewOrderSched.Count, time.Duration(r.NewOrderSched.P50), r.Q2.Count, r.NewOrderTPS, r.Q2TPS, r.InterruptsSent, r.DroppedHi)
	}
}
