package bench

import (
	"preemptdb/internal/pcontext"
	"preemptdb/internal/tpch"

	"os"
	"testing"
	"time"
)

func TestSmokeFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	opt := Options{
		Workers:  0,
		Duration: 2 * time.Second,
		Out:      os.Stderr,
	}
	rs, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		t.Logf("%s: NO n=%d schedP50=%v Q2 n=%d noTPS=%.0f q2TPS=%.1f intr=%d drop=%d",
			r.Policy, r.NewOrderSched.Count, time.Duration(r.NewOrderSched.P50), r.Q2.Count, r.NewOrderTPS, r.Q2TPS, r.InterruptsSent, r.DroppedHi)
	}
}

// TestSmokeParallelScan exercises the parallelscan experiment end to end at a
// small scale; CI runs it in short mode as the benchmark smoke step.
func TestSmokeParallelScan(t *testing.T) {
	opt := Options{
		Workers:  2,
		Duration: 200 * time.Millisecond,
		TPCH:     tpch.ScaleConfig{Parts: 4000, Suppliers: 100},
		Out:      os.Stderr,
	}
	res, err := ParallelScan(opt, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Sequential.Queries == 0 {
		t.Fatal("baseline ran no queries")
	}
	for _, p := range res.Points {
		if p.Queries != res.Sequential.Queries {
			t.Fatalf("point %+v ran %d queries, baseline %d — makespans not comparable",
				p, p.Queries, res.Sequential.Queries)
		}
	}
	if res.HiSeq.Count == 0 || res.HiPar.Count == 0 {
		t.Fatal("hi-priority phases recorded nothing")
	}
	// The per-phase decomposition rides along in the artifact: end-to-end and
	// queue-wait summaries must have samples in both scan modes.
	if res.HiSeqPhases.Total.Count == 0 || res.HiParPhases.Total.Count == 0 {
		t.Fatalf("hi-priority phase decomposition empty: seq=%d par=%d",
			res.HiSeqPhases.Total.Count, res.HiParPhases.Total.Count)
	}
	if res.HiSeqPhases.QueueWait.Count == 0 || res.HiSeqPhases.Exec.Count == 0 {
		t.Fatal("hi-priority phase decomposition missing queue_wait/exec samples")
	}
}

// TestSmokeTraceExport: the trace experiment's per-core rings render to a
// valid Chrome trace-event document on disk.
func TestSmokeTraceExport(t *testing.T) {
	opt := Options{
		Workers:  1,
		Duration: 100 * time.Millisecond,
		TPCH:     tpch.ScaleConfig{Parts: 4000, Suppliers: 100},
		Out:      os.Stderr,
	}
	events, cores, err := Trace(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || len(cores) == 0 {
		t.Fatalf("trace empty: %d events, %d cores", len(events), len(cores))
	}
	path := t.TempDir() + "/trace.json"
	if err := WriteChromeTrace(path, cores); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pcontext.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
}
