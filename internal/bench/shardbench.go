package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"preemptdb"
	"preemptdb/internal/clock"
	"preemptdb/internal/dtx"
	"preemptdb/internal/metrics"
	"preemptdb/internal/rng"
)

// ShardPoint is one single-shard-transaction scaling data point: a closed-loop
// point workload (read-modify-write of one key, routed by hash) against a
// database with a given shard count.
type ShardPoint struct {
	Shards     int     `json:"shards"`
	Txns       uint64  `json:"txns"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	MeanNs     float64 `json:"mean_ns"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
}

// ShardXPoint is one cross-shard-ratio data point at a fixed shard count: a
// mix where cross_pct percent of transactions touch two keys on different
// shards (committing through 2PC) and the rest stay single-shard.
type ShardXPoint struct {
	CrossPct   int     `json:"cross_pct"`
	Txns       uint64  `json:"txns"`
	CrossTxns  uint64  `json:"cross_txns"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	CrossP50Ns int64   `json:"cross_p50_ns"`
	CrossP99Ns int64   `json:"cross_p99_ns"`
}

// ShardHiPoint is one shard's high-priority end-to-end latency summary under
// PolicyPreempt while low-priority load runs on every shard — each shard has
// its own scheduler cores, so hi-prio isolation must hold per shard.
type ShardHiPoint struct {
	Shard int    `json:"shard"`
	Count uint64 `json:"hi_count"`
	P50Ns int64  `json:"hi_p50_ns"`
	P99Ns int64  `json:"hi_p99_ns"`
}

// ShardResult is the full shardbench experiment output (BENCH_shard.json).
type ShardResult struct {
	WorkersPerShard int            `json:"workers_per_shard"`
	Keys            int            `json:"keys"`
	Clients         int            `json:"clients"`
	Scaling         []ShardPoint   `json:"scaling"`
	CrossSweep      []ShardXPoint  `json:"cross_sweep_4_shards"`
	HiPerShard      []ShardHiPoint `json:"hi_per_shard_4_shards"`
	NumCPU          int            `json:"num_cpu"`
}

const shardBenchKeys = 4096

// openShardBenchDB opens an in-memory database with n shards, preloads the
// key space, and returns the per-shard key pools (bucketed by the same hash
// the facade routes with).
func openShardBenchDB(n, workers int) (*preemptdb.DB, [][][]byte, error) {
	db, err := preemptdb.Open("", preemptdb.Config{
		Shards:  n,
		Workers: workers,
		Policy:  preemptdb.PolicyPreempt,
	})
	if err != nil {
		return nil, nil, err
	}
	db.CreateTable("kv")
	pools := make([][][]byte, n)
	var val [8]byte
	for i := 0; i < shardBenchKeys; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		s := dtx.ShardOf(k, n)
		pools[s] = append(pools[s], k)
		if err := db.Run(func(tx *preemptdb.Txn) error {
			return tx.Put("kv", k, val[:])
		}); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	return db, pools, nil
}

// shardLoad drives a closed-loop point workload: clients goroutines each keep
// one transaction outstanding for the duration. crossPct percent of
// transactions read-modify-write two keys on two different shards (2PC); the
// rest touch one hash-routed key. Conflicted attempts retry without being
// recorded; latencies are wall-clock from submission to completion.
func shardLoad(db *preemptdb.DB, pools [][][]byte, crossPct, clients int, dur time.Duration) (txns, cross uint64, lat, crossLat metrics.Histogram) {
	n := len(pools)
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := clock.Nanos() + int64(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := rng.New(uint64(0xd1ce + c*7919))
			var myTxns, myCross uint64
			var myLat, myCrossLat metrics.Histogram
			var val [8]byte
			for clock.Nanos() < deadline {
				isCross := n > 1 && gen.Intn(100) < crossPct
				start := clock.Nanos()
				var err error
				if isCross {
					sa := gen.Intn(n)
					sb := (sa + 1 + gen.Intn(n-1)) % n
					ka := pools[sa][gen.Intn(len(pools[sa]))]
					kb := pools[sb][gen.Intn(len(pools[sb]))]
					err = db.ExecOpts(preemptdb.TxnOptions{RouteKey: ka}, func(tx *preemptdb.Txn) error {
						for _, k := range [][]byte{ka, kb} {
							if _, err := tx.Get("kv", k); err != nil {
								return err
							}
							if err := tx.Put("kv", k, val[:]); err != nil {
								return err
							}
						}
						return nil
					})
				} else {
					s := gen.Intn(n)
					k := pools[s][gen.Intn(len(pools[s]))]
					err = db.ExecOpts(preemptdb.TxnOptions{RouteKey: k}, func(tx *preemptdb.Txn) error {
						if _, err := tx.Get("kv", k); err != nil {
							return err
						}
						return tx.Put("kv", k, val[:])
					})
				}
				if err != nil {
					continue // conflict: retry, unrecorded
				}
				d := clock.Nanos() - start
				myTxns++
				myLat.Record(d)
				if isCross {
					myCross++
					myCrossLat.Record(d)
				}
			}
			mu.Lock()
			txns += myTxns
			cross += myCross
			lat.Merge(&myLat)
			crossLat.Merge(&myCrossLat)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return txns, cross, lat, crossLat
}

// ShardBench measures the hash-sharded engine: single-shard-transaction
// throughput vs shard count, throughput and latency across a cross-shard
// transaction ratio sweep at 4 shards, and per-shard high-priority p99 under
// PolicyPreempt with background low-priority load. Every shard carries its
// own scheduler cores, timestamp oracle, and WAL stream, so single-shard
// points have zero cross-shard coordination; wall-clock scaling additionally
// requires spare physical CPUs (see NumCPU in the result).
func ShardBench(opt Options) (*ShardResult, error) {
	opt = opt.withDefaults()
	const workers = 2
	res := &ShardResult{
		WorkersPerShard: workers,
		Keys:            shardBenchKeys,
		NumCPU:          runtime.NumCPU(),
	}

	// Phase A: single-shard-txn throughput vs shard count.
	tbl := metrics.NewTable("shards", "txns", "txns/s", "mean", "p50", "p99")
	for _, n := range []int{1, 2, 4} {
		db, pools, err := openShardBenchDB(n, workers)
		if err != nil {
			return nil, err
		}
		clients := 2 * n
		if res.Clients < clients {
			res.Clients = clients
		}
		txns, _, lat, _ := shardLoad(db, pools, 0, clients, opt.Duration)
		db.Close()
		sum := lat.Summarize()
		pt := ShardPoint{
			Shards: n, Txns: txns,
			TxnsPerSec: float64(txns) / opt.Duration.Seconds(),
			MeanNs:     sum.Mean, P50Ns: sum.P50, P99Ns: sum.P99,
		}
		res.Scaling = append(res.Scaling, pt)
		tbl.AddRow(n, txns, fmt.Sprintf("%.0f", pt.TxnsPerSec), fmtNs(int64(sum.Mean)), fmtNs(sum.P50), fmtNs(sum.P99))
	}
	fmt.Fprintf(opt.Out, "Single-shard txn throughput vs shard count (closed loop, NumCPU=%d)\n", res.NumCPU)
	fmt.Fprint(opt.Out, tbl.String())

	// Phase B: cross-shard ratio sweep at 4 shards.
	tbl2 := metrics.NewTable("cross%", "txns", "cross", "txns/s", "p50", "p99", "cross p50", "cross p99")
	for _, pct := range []int{0, 10, 50} {
		db, pools, err := openShardBenchDB(4, workers)
		if err != nil {
			return nil, err
		}
		txns, cross, lat, crossLat := shardLoad(db, pools, pct, 8, opt.Duration)
		db.Close()
		sum, xsum := lat.Summarize(), crossLat.Summarize()
		pt := ShardXPoint{
			CrossPct: pct, Txns: txns, CrossTxns: cross,
			TxnsPerSec: float64(txns) / opt.Duration.Seconds(),
			P50Ns:      sum.P50, P99Ns: sum.P99,
			CrossP50Ns: xsum.P50, CrossP99Ns: xsum.P99,
		}
		res.CrossSweep = append(res.CrossSweep, pt)
		tbl2.AddRow(pct, txns, cross, fmt.Sprintf("%.0f", pt.TxnsPerSec),
			fmtNs(sum.P50), fmtNs(sum.P99), fmtNs(xsum.P50), fmtNs(xsum.P99))
	}
	fmt.Fprintln(opt.Out, "Cross-shard 2PC ratio sweep, 4 shards")
	fmt.Fprint(opt.Out, tbl2.String())

	// Phase C: per-shard high-priority latency under background low load.
	// Low-priority clients hammer every shard; one high-priority client per
	// shard submits hash-routed point transactions at the arrival interval.
	// Per-shard preemption isolation shows up in each shard's own registry.
	db, pools, err := openShardBenchDB(4, workers)
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	var loWG sync.WaitGroup
	for c := 0; c < 4; c++ {
		loWG.Add(1)
		go func(c int) {
			defer loWG.Done()
			gen := rng.New(uint64(0x10ad + c))
			var val [8]byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := gen.Intn(len(pools))
				k := pools[s][gen.Intn(len(pools[s]))]
				db.ExecOpts(preemptdb.TxnOptions{RouteKey: k}, func(tx *preemptdb.Txn) error {
					if _, err := tx.Get("kv", k); err != nil {
						return err
					}
					return tx.Put("kv", k, val[:])
				})
			}
		}(c)
	}
	var hiWG sync.WaitGroup
	hiDeadline := clock.Nanos() + int64(opt.Duration)
	for s := 0; s < 4; s++ {
		hiWG.Add(1)
		go func(s int) {
			defer hiWG.Done()
			gen := rng.New(uint64(0x41 + s))
			for clock.Nanos() < hiDeadline {
				k := pools[s][gen.Intn(len(pools[s]))]
				db.ExecOpts(preemptdb.TxnOptions{Priority: preemptdb.High, RouteKey: k}, func(tx *preemptdb.Txn) error {
					_, err := tx.Get("kv", k)
					return err
				})
				time.Sleep(opt.ArrivalInterval)
			}
		}(s)
	}
	hiWG.Wait()
	close(stop)
	loWG.Wait()
	tbl3 := metrics.NewTable("shard", "hi n", "hi p50", "hi p99")
	for s := 0; s < 4; s++ {
		hi := db.ShardMetrics(s).Hi.Total
		pt := ShardHiPoint{Shard: s, Count: hi.Count, P50Ns: hi.P50, P99Ns: hi.P99}
		res.HiPerShard = append(res.HiPerShard, pt)
		tbl3.AddRow(s, hi.Count, fmtNs(hi.P50), fmtNs(hi.P99))
	}
	db.Close()
	fmt.Fprintln(opt.Out, "High-priority point-read latency per shard under low-priority load (PolicyPreempt)")
	fmt.Fprint(opt.Out, tbl3.String())
	return res, nil
}
