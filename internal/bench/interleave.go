package bench

import (
	"fmt"
	"runtime"

	"preemptdb/internal/metrics"
	"preemptdb/internal/sched"
	"preemptdb/internal/tpch"
)

// InterleavePoint is one data point of the interleave experiment: the mixed
// TP/AP workload under PolicyPreempt at a given contexts-per-core K.
type InterleavePoint struct {
	ContextsPerCore int `json:"contexts_per_core"`
	// Q2TPS is the low-priority batch (analytical) throughput — the quantity
	// K-way interleaving exists to raise by hiding stalls.
	Q2TPS float64 `json:"q2_tps"`
	// HiTPS and the latency fields cover both high-priority kinds
	// (NewOrder + Payment): interleaving must not move the hi tail.
	HiTPS    float64 `json:"hi_tps"`
	HiP50Ns  int64   `json:"hi_p50_ns"`
	HiP99Ns  int64   `json:"hi_p99_ns"`
	HiP999Ns int64   `json:"hi_p999_ns"`
	Q2P50Ns  int64   `json:"q2_p50_ns"`
	Q2P99Ns  int64   `json:"q2_p99_ns"`
	// StallYields counts rotations away at stall boundaries;
	// InterleaveSwitches counts resumptions of stall-parked transactions.
	// Both zero at K=2 by construction (the hook is never installed).
	StallYields        uint64 `json:"stall_yields"`
	InterleaveSwitches uint64 `json:"interleave_switches"`
	InterruptsSent     uint64 `json:"interrupts_sent"`
	PassiveSwitches    uint64 `json:"passive_switches"`
	ActiveSwitches     uint64 `json:"active_switches"`
	// DroppedHi counts generated high-priority requests never admitted
	// before the next arrival interval. Comparable hi latency populations
	// across K require this to stay near zero at every point.
	DroppedHi uint64 `json:"dropped_hi"`
}

// InterleaveResult is the full interleave experiment output.
type InterleaveResult struct {
	Points []InterleavePoint `json:"points"`
	// StallInterval is the rotation period used (stall boundaries between
	// rotations); Workers the simulated core count per point.
	StallInterval uint64 `json:"stall_interval"`
	Workers       int    `json:"workers"`
	NumCPU        int    `json:"num_cpu"`
}

// Interleave sweeps contexts-per-core K ∈ {2, 4, 8} over the paper's mixed
// workload (low-priority Q2 + batched high-priority NewOrder/Payment,
// PolicyPreempt) and reports batch throughput next to the high-priority tail.
// K=2 is the paper's evaluated configuration and takes the exact two-context
// code path (no stall hook installed); K>2 turns each worker into a
// stall-hiding batch executor that rotates among K-1 low-priority slots at
// simulated stall boundaries while the preemptive context keeps absolute
// priority — so the acceptance shape is a flat hi-priority p99 across K.
//
// On hosts where the simulated stall carries no real memory-stall cost
// (notably single-CPU containers), rotation is pure switch overhead and the
// batch column is expected flat-to-slightly-down; the artifact records
// num_cpu so that caveat is machine-checkable.
func Interleave(opt Options) (*InterleaveResult, error) {
	opt = opt.withDefaults()
	if opt.TPCH.Parts == 0 || opt.TPCH.Parts == 60000 {
		// A lighter analytical scale than the figures' default: Q2 of a few
		// milliseconds instead of tens. The K=2 baseline (no rotation) must
		// admit the full high-priority load on small hosts, or the per-K hi
		// latency populations are not comparable; batch-throughput headroom
		// is unaffected — every K runs the same queries.
		opt.TPCH = tpch.ScaleConfig{Parts: 15000, Suppliers: 200}
	}
	f, err := NewFixture(opt)
	if err != nil {
		return nil, err
	}
	res := &InterleaveResult{
		StallInterval: 32,
		Workers:       opt.Workers,
		NumCPU:        runtime.NumCPU(),
	}
	tbl := metrics.NewTable("K", "q2 tps", "hi tps", "hi p50", "hi p99", "hi p99.9", "stall yields", "interleaves", "dropped hi")
	for _, k := range []int{2, 4, 8} {
		r := f.RunMixed(MixedConfig{
			Policy:          sched.PolicyPreempt,
			ContextsPerCore: k,
			// Keep every low-priority slot fed: the refill loop tops the
			// queue up once per arrival interval, so depth ≥ K-1 lets a
			// worker fill all slots between refills.
			LoQueueSize:   2 * k,
			StallInterval: res.StallInterval,
			// A light high-priority load (one request per worker per
			// arrival interval) that every K can admit in full: comparing
			// the hi tail across K is only meaningful when the admitted
			// population is the same — at saturating rates the K=2 point
			// drops most arrivals at the full queue and its surviving
			// latencies are not the same distribution. The deeper hi queue
			// absorbs the coalesced arrival bursts a CPU-starved generator
			// goroutine produces (it stamps one shared arrival time per
			// burst, so admission — not latency — is what it changes).
			HiBatchPerInterval: f.Options().Workers,
			HiQueueSize:        16,
		})
		res.Points = append(res.Points, InterleavePoint{
			ContextsPerCore:    k,
			Q2TPS:              r.Q2TPS,
			HiTPS:              r.NewOrderTPS + r.PaymentTPS,
			HiP50Ns:            r.Hi.P50,
			HiP99Ns:            r.Hi.P99,
			HiP999Ns:           r.Hi.P999,
			Q2P50Ns:            r.Q2.P50,
			Q2P99Ns:            r.Q2.P99,
			StallYields:        r.StallYields,
			InterleaveSwitches: r.InterleaveSwitches,
			InterruptsSent:     r.InterruptsSent,
			PassiveSwitches:    r.PassiveSwitches,
			ActiveSwitches:     r.ActiveSwitches,
			DroppedHi:          r.DroppedHi,
		})
		p := res.Points[len(res.Points)-1]
		tbl.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.1f", p.Q2TPS), fmt.Sprintf("%.0f", p.HiTPS),
			fmtNs(p.HiP50Ns), fmtNs(p.HiP99Ns), fmtNs(p.HiP999Ns),
			fmt.Sprintf("%d", p.StallYields), fmt.Sprintf("%d", p.InterleaveSwitches),
			fmt.Sprintf("%d", p.DroppedHi))
	}
	fmt.Fprintln(opt.Out, "K-way context multiplexing: batch throughput vs high-priority tail (PolicyPreempt)")
	fmt.Fprint(opt.Out, tbl.String())
	return res, nil
}

// WriteInterleaveJSON emits an InterleaveResult in the standard artifact
// envelope (BENCH_interleave.json).
func WriteInterleaveJSON(path, command string, res *InterleaveResult, notes []string) error {
	return WriteBenchJSON(path, command, res, notes)
}
