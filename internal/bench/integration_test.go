package bench

import (
	"testing"
	"time"

	"preemptdb/internal/sched"
)

// TestConsistencyUnderEveryPolicy is the end-to-end correctness oracle for
// the scheduling machinery: after a mixed run with preemption, context
// switches, paused transactions and conflict aborts, the TPC-C consistency
// conditions must hold exactly. A lost update, a torn commit, or CLS/WAL
// cross-contamination between contexts would surface here.
func TestConsistencyUnderEveryPolicy(t *testing.T) {
	for _, policy := range []sched.Policy{
		sched.PolicyWait,
		sched.PolicyCooperative,
		sched.PolicyCooperativeHandcrafted,
		sched.PolicyPreempt,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			opt := tinyOptions()
			opt.Duration = 700 * time.Millisecond
			f, err := NewFixture(opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.TPCC.CheckConsistency(); err != nil {
				t.Fatalf("inconsistent after load: %v", err)
			}
			cfg := MixedConfig{Policy: policy}
			if policy == sched.PolicyCooperativeHandcrafted {
				cfg.HandcraftedYieldEvery = 4
			}
			r := f.RunMixed(cfg)
			if r.NewOrder.Count+r.Payment.Count == 0 {
				t.Fatal("no high-priority work executed")
			}
			if err := f.TPCC.CheckConsistency(); err != nil {
				t.Fatalf("inconsistent after %s run: %v", policy, err)
			}
		})
	}
}

// TestConsistencyUnderStarvationOverload repeats the oracle under the
// fig12-style overload where the preemptive context and starvation
// prevention are exercised hardest.
func TestConsistencyUnderStarvationOverload(t *testing.T) {
	opt := tinyOptions()
	opt.Duration = 700 * time.Millisecond
	f, err := NewFixture(opt)
	if err != nil {
		t.Fatal(err)
	}
	r := f.RunMixed(MixedConfig{
		Policy:              sched.PolicyPreempt,
		HiQueueSize:         100,
		HiBatchPerInterval:  100,
		StarvationThreshold: 0.5,
	})
	_ = r
	if err := f.TPCC.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent after overload: %v", err)
	}
}
