// Package bench contains the experiment harness that regenerates every
// figure in the paper's evaluation (§6). It follows the paper's benchmark
// driver design: workload generation is decoupled from execution, with a
// dedicated scheduling thread that, at every arrival interval, refills each
// worker's low-priority queue (Q2) and dispatches a batch of high-priority
// TPC-C transactions (NewOrder, Payment) round-robin — sending user
// interrupts under the PreemptDB policy.
//
// Latency is measured end-to-end from generation (EnqueuedAt) to completion;
// scheduling latency from generation to first execution.
package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/engine"
	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
	"preemptdb/internal/sched"
	"preemptdb/internal/tpcc"
	"preemptdb/internal/tpch"
)

// Options parameterizes one experiment run. Zero values take defaults sized
// for a small host (the paper used 16 workers on a 32-core Xeon; shapes, not
// absolute numbers, are the reproduction target).
type Options struct {
	Workers             int           // default 4
	Duration            time.Duration // measurement window; default 3s
	ArrivalInterval     time.Duration // default 1ms (§6.1)
	HiQueueSize         int           // default 4
	LoQueueSize         int           // default 1
	YieldInterval       uint64        // default 10000 (§6.1)
	StarvationThreshold float64       // default 100 (≈ disabled, §6.1)
	HiBatchPerInterval  int           // default Workers*HiQueueSize (§6.1)

	TPCC tpcc.ScaleConfig
	TPCH tpch.ScaleConfig

	// VacuumInterval enables the engine's background incremental vacuum for
	// the run; long experiments with update-heavy mixes keep version chains
	// short without a stop-the-world sweep between data points. Zero keeps
	// the seed behavior (manual Vacuum between runs).
	VacuumInterval time.Duration

	Out io.Writer // table output; default io.Discard
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		// One simulated core per spare physical CPU: an interrupt is only
		// recognized while its target goroutine is on-CPU, so oversubscribing
		// physical CPUs inflates delivery latency with Go-scheduler quanta
		// rather than anything the paper measures. (The paper pins 16 workers
		// + 1 scheduler on 32 real cores — also no oversubscription.)
		o.Workers = runtime.NumCPU() - 1
		if o.Workers < 1 {
			o.Workers = 1
		}
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Duration == 0 {
		o.Duration = 3 * time.Second
	}
	if o.ArrivalInterval == 0 {
		o.ArrivalInterval = time.Millisecond
	}
	if o.HiQueueSize == 0 {
		o.HiQueueSize = 4
	}
	if o.LoQueueSize == 0 {
		o.LoQueueSize = 1
	}
	if o.YieldInterval == 0 {
		o.YieldInterval = 10000
	}
	if o.StarvationThreshold == 0 {
		o.StarvationThreshold = 100
	}
	if o.HiBatchPerInterval == 0 {
		// The paper uses Workers×HiQueueSize (64 for 16 workers) per 1 ms on
		// a 32-core Xeon, a light high-priority load relative to capacity.
		// On this simulated substrate a NewOrder costs ~100µs of wall time,
		// so 2 per worker per millisecond reproduces the same ~10–20%
		// high-priority utilization.
		o.HiBatchPerInterval = o.Workers * 2
	}
	if o.TPCC.Warehouses == 0 {
		// Paper: as many warehouses as worker threads.
		o.TPCC = tpcc.ScaleConfig{Warehouses: o.Workers, Districts: 4, Customers: 64, Items: 2000}
	}
	if o.TPCH.Parts == 0 {
		// Sized so one Q2 runs for tens of milliseconds — several hundred
		// times a NewOrder, as in the paper's mix.
		o.TPCH = tpch.ScaleConfig{Parts: 60000, Suppliers: 400}
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Fixture is a loaded engine shared by several runs of one experiment so the
// (expensive) load happens once per figure, not once per data point.
type Fixture struct {
	Engine *engine.Engine
	TPCC   *tpcc.Client
	TPCH   *tpch.Client
	opts   Options
}

// NewFixture loads TPC-C and the TPC-H subset into one engine.
func NewFixture(opt Options) (*Fixture, error) {
	opt = opt.withDefaults()
	e := engine.New(engine.Config{VacuumInterval: opt.VacuumInterval})
	tpcc.CreateSchema(e)
	tpch.CreateSchema(e)
	ccCfg, err := tpcc.Load(e, opt.TPCC)
	if err != nil {
		return nil, fmt.Errorf("bench: tpcc load: %w", err)
	}
	hCfg, err := tpch.Load(e, opt.TPCH)
	if err != nil {
		return nil, fmt.Errorf("bench: tpch load: %w", err)
	}
	return &Fixture{
		Engine: e,
		TPCC:   tpcc.NewClient(e, ccCfg),
		TPCH:   tpch.NewClient(e, hCfg),
		opts:   opt,
	}, nil
}

// Options returns the fixture's effective options.
func (f *Fixture) Options() Options { return f.opts }

// MixedResult aggregates one mixed-workload run.
type MixedResult struct {
	Policy string

	// End-to-end latency (generation → completion).
	Q2, NewOrder, Payment metrics.Summary
	// Hi is the end-to-end latency across both high-priority kinds
	// (NewOrder + Payment merged exactly, bucket-wise).
	Hi metrics.Summary
	// Scheduling latency (generation → first execution).
	Q2Sched, NewOrderSched, PaymentSched metrics.Summary

	// Throughput in transactions/second over the measurement window.
	Q2TPS, NewOrderTPS, PaymentTPS float64

	InterruptsSent  uint64
	StarvationSkips uint64
	PassiveSwitches uint64
	ActiveSwitches  uint64
	// StallYields / InterleaveSwitches count K-way stall-boundary rotations
	// and resumptions of stall-parked transactions (zero at the default two
	// contexts per core).
	StallYields        uint64
	InterleaveSwitches uint64
	DroppedHi          uint64 // generated but never admitted before the run ended

	// ShedExpired / ShedCanceled count queued requests the workers dropped
	// at dispatch: deadline already passed / canceled by the submitter.
	// Non-zero only when HiDeadline is set (or requests are canceled).
	ShedExpired  uint64
	ShedCanceled uint64
	// HiDeadlineMisses counts high-priority requests that executed but
	// finished with a lifecycle error (deadline tripped mid-flight).
	HiDeadlineMisses uint64
}

// collector accumulates latencies; sharded per worker would be overkill at
// single-host rates, so a mutex suffices.
type collector struct {
	mu                       sync.Mutex
	q2, newOrder, payment    metrics.Histogram
	q2S, newOrderS, paymentS metrics.Histogram
	q2N, newOrderN, paymentN uint64
}

type txKind uint8

const (
	kindQ2 txKind = iota
	kindNewOrder
	kindPayment
)

func (c *collector) done(kind txKind, r *sched.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch kind {
	case kindQ2:
		c.q2.Record(r.Latency())
		c.q2S.Record(r.SchedulingLatency())
		c.q2N++
	case kindNewOrder:
		c.newOrder.Record(r.Latency())
		c.newOrderS.Record(r.SchedulingLatency())
		c.newOrderN++
	case kindPayment:
		c.payment.Record(r.Latency())
		c.paymentS.Record(r.SchedulingLatency())
		c.paymentN++
	}
}

// seedCounter hands every transaction context a distinct RNG stream.
var seedCounter atomic.Uint64

// ctxRand returns the context's CLS RNG, creating it on first use.
func ctxRand(ctx *pcontext.Context) *rng.Rand {
	if ctx == nil {
		return rng.New(seedCounter.Add(1) * 0x9e3779b97f4a7c15)
	}
	cls := ctx.CLS()
	if r, ok := cls.Get(pcontext.SlotRand).(*rng.Rand); ok {
		return r
	}
	r := rng.New(seedCounter.Add(1) * 0x9e3779b97f4a7c15)
	cls.Set(pcontext.SlotRand, r)
	return r
}

// MixedConfig are the per-run knobs RunMixed accepts on top of the fixture.
type MixedConfig struct {
	Policy              sched.Policy
	Workers             int
	Duration            time.Duration
	ArrivalInterval     time.Duration
	HiQueueSize         int
	YieldInterval       uint64
	StarvationThreshold float64
	HiBatchPerInterval  int
	// ContextsPerCore > 2 turns each worker into a K-way stall-hiding
	// executor (the interleave experiment); 0 keeps the scheduler default.
	ContextsPerCore int
	// LoQueueSize overrides the fixture's low-priority queue depth (K-way
	// runs need more than the default one queued Q2 per worker so the extra
	// slots have work to pick up).
	LoQueueSize int
	// StallInterval overrides the stall-boundary rotation period (0: the
	// scheduler default).
	StallInterval uint64
	// HandcraftedYieldEvery enables the workload-level Q2 yield point (the
	// paper uses every 1000 nested blocks) when > 0.
	HandcraftedYieldEvery int
	// DisableHiTraffic runs Q2-only (used by overhead probes).
	DisableHiTraffic bool
	// PingEveryInterval sends an empty interrupt to every worker at each
	// arrival interval (fig8's overhead measurement).
	PingEveryInterval bool
	// HiDeadline, when > 0, stamps every high-priority request with an
	// absolute deadline of arrival + HiDeadline: requests still queued past
	// it are shed at dispatch, and running ones unwind at the next poll.
	HiDeadline time.Duration
}

func (m MixedConfig) withDefaults(opt Options) MixedConfig {
	if m.Workers == 0 {
		m.Workers = opt.Workers
	}
	if m.Duration == 0 {
		m.Duration = opt.Duration
	}
	if m.ArrivalInterval == 0 {
		m.ArrivalInterval = opt.ArrivalInterval
	}
	if m.HiQueueSize == 0 {
		m.HiQueueSize = opt.HiQueueSize
	}
	if m.YieldInterval == 0 {
		m.YieldInterval = opt.YieldInterval
	}
	if m.StarvationThreshold == 0 {
		m.StarvationThreshold = opt.StarvationThreshold
	}
	if m.HiBatchPerInterval == 0 {
		m.HiBatchPerInterval = m.Workers * m.HiQueueSize
	}
	if m.LoQueueSize == 0 {
		m.LoQueueSize = opt.LoQueueSize
	}
	return m
}

// RunMixed executes the paper's mixed workload (§6.1): low-priority Q2 per
// worker plus batched high-priority NewOrder/Payment arrivals, under the
// given policy, and reports latency and throughput.
func (f *Fixture) RunMixed(cfg MixedConfig) MixedResult {
	cfg = cfg.withDefaults(f.opts)
	s := sched.New(sched.Config{
		Policy:              cfg.Policy,
		Workers:             cfg.Workers,
		ContextsPerCore:     cfg.ContextsPerCore,
		HiQueueSize:         cfg.HiQueueSize,
		LoQueueSize:         cfg.LoQueueSize,
		YieldInterval:       cfg.YieldInterval,
		StarvationThreshold: cfg.StarvationThreshold,
		StallInterval:       cfg.StallInterval,
	})
	col := &collector{}
	warehouses := f.TPCC.Scale().Warehouses

	q2Work := func(ctx *pcontext.Context) error {
		r := ctxRand(ctx)
		_, err := f.TPCH.Q2(ctx, tpch.RandomQ2Params(r), cfg.HandcraftedYieldEvery)
		return err
	}
	newQ2Request := func() *sched.Request {
		req := &sched.Request{Work: q2Work}
		req.OnDone = func(r *sched.Request) { col.done(kindQ2, r) }
		return req
	}
	newHiRequest := func(gen *rng.Rand) *sched.Request {
		kind := kindNewOrder
		if gen.Bool(0.5) {
			kind = kindPayment
		}
		w := uint32(gen.IntRange(1, warehouses))
		req := &sched.Request{}
		if kind == kindNewOrder {
			req.Work = func(ctx *pcontext.Context) error {
				err := f.TPCC.NewOrder(ctx, ctxRand(ctx), w)
				if errors.Is(err, tpcc.ErrUserAbort) {
					return nil // expected 1% rollback
				}
				return err
			}
		} else {
			req.Work = func(ctx *pcontext.Context) error {
				return f.TPCC.Payment(ctx, ctxRand(ctx), w)
			}
		}
		req.OnDone = func(r *sched.Request) { col.done(kind, r) }
		return req
	}
	var hiMisses atomic.Uint64
	if cfg.HiDeadline > 0 {
		// Lifecycle-failed requests don't enter the latency histograms: a
		// shed request never ran, and a mid-flight miss produced no result.
		// They are accounted separately (ShedExpired / HiDeadlineMisses).
		base := newHiRequest
		newHiRequest = func(gen *rng.Rand) *sched.Request {
			req := base(gen)
			inner := req.OnDone
			req.OnDone = func(r *sched.Request) {
				if errors.Is(r.Err, pcontext.ErrDeadlineExceeded) || errors.Is(r.Err, pcontext.ErrCanceled) {
					if r.StartedAt != r.FinishedAt {
						hiMisses.Add(1) // executed but unwound mid-flight
					}
					return
				}
				inner(r)
			}
			return req
		}
	}

	s.Start()
	start := clock.Nanos()
	deadline := start + int64(cfg.Duration)
	gen := rng.New(0xd1e5e1 + uint64(cfg.Policy))
	var dropped uint64

	ticker := time.NewTicker(cfg.ArrivalInterval)
	lastTick := clock.Nanos()
	for clock.Nanos() < deadline {
		// Refill low-priority queues: one Q2 per worker slot.
		for wid := 0; wid < cfg.Workers; wid++ {
			for s.SubmitLow(wid, newQ2Request()) {
			}
		}
		if !cfg.DisableHiTraffic {
			// Generate this interval's batch, stamped with one arrival time
			// (the paper's "same start timestamp"). Requests that do not fit
			// the queues before the next interval are discarded — §6.1's
			// driver moves a batch "until the batch is depleted or the next
			// arrival interval passes".
			//
			// On an oversubscribed host the generator goroutine can be
			// descheduled across several intervals; scale the batch by the
			// intervals actually elapsed (capped) so the offered *rate*
			// matches the configuration — the paper's generator owns a
			// dedicated core and never falls behind.
			now := clock.Nanos()
			intervals := int((now - lastTick) / int64(cfg.ArrivalInterval))
			if intervals < 1 {
				intervals = 1
			}
			if intervals > 16 {
				intervals = 16
			}
			lastTick = now
			batch := make([]*sched.Request, cfg.HiBatchPerInterval*intervals)
			for i := range batch {
				batch[i] = newHiRequest(gen)
				batch[i].EnqueuedAt = now
				if cfg.HiDeadline > 0 {
					batch[i].Deadline = now + int64(cfg.HiDeadline)
				}
			}
			n := s.SubmitHighBatch(batch)
			dropped += uint64(len(batch) - n)
		}
		if cfg.PingEveryInterval {
			s.PingAll()
		}
		<-ticker.C
	}
	ticker.Stop()
	elapsed := time.Duration(clock.Nanos() - start)
	// Give in-flight transactions a moment to finish, then stop.
	time.Sleep(50 * time.Millisecond)
	s.Stop()

	res := MixedResult{
		Policy:             cfg.Policy.String(),
		InterruptsSent:     s.InterruptsSent(),
		StarvationSkips:    s.StarvationSkips(),
		StallYields:        s.StallYields(),
		InterleaveSwitches: s.InterleaveSwitches(),
		DroppedHi:          dropped,
		ShedExpired:        s.ShedExpired(),
		ShedCanceled:       s.ShedCanceled(),
		HiDeadlineMisses:   hiMisses.Load(),
	}
	for _, w := range s.Workers() {
		for i := 0; i < w.Core().NumContexts(); i++ {
			tcb := w.Core().Context(i).TCB()
			res.PassiveSwitches += tcb.PassiveSwitches()
			res.ActiveSwitches += tcb.ActiveSwitches()
		}
	}
	col.mu.Lock()
	res.Q2 = col.q2.Summarize()
	res.NewOrder = col.newOrder.Summarize()
	res.Payment = col.payment.Summarize()
	var hi metrics.Histogram
	hi.Merge(&col.newOrder)
	hi.Merge(&col.payment)
	res.Hi = hi.Summarize()
	res.Q2Sched = col.q2S.Summarize()
	res.NewOrderSched = col.newOrderS.Summarize()
	res.PaymentSched = col.paymentS.Summarize()
	sec := elapsed.Seconds()
	res.Q2TPS = float64(col.q2N) / sec
	res.NewOrderTPS = float64(col.newOrderN) / sec
	res.PaymentTPS = float64(col.paymentN) / sec
	col.mu.Unlock()
	return res
}
