package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"preemptdb"
	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/rng"
	"preemptdb/server"
)

// Frontend benchmarks the network front-end end to end over loopback TCP:
//
//   - Phase A (cache A/B): closed-loop clients issue single-key Gets with a
//     Zipfian key distribution against the same server twice — hot-key cache
//     off, then on. The cached run reports its hit rate (skewed workloads
//     should exceed 80%) and both runs report wire round-trip latency; cache
//     hits answer on the event-loop thread without entering a scheduler core.
//   - Phase B (admission A/B): a low-priority RMW flood shares the server
//     with paced high-priority point reads, with the front-end's per-class
//     in-flight limit off, then on. Admission sheds the flood at the edge
//     with typed statusQueueFull frames (counted), and the high-priority
//     tail must not regress when admission is enabled.
//
// Both phases exercise the sharded event loop and zero-copy framing; the
// figures are closed-loop and CPU-sensitive, so results carry NumCPU.

// FrontendCachePoint is one cache on/off data point of Phase A.
type FrontendCachePoint struct {
	Cache      bool            `json:"cache"`
	Gets       uint64          `json:"gets"`
	GetsPerSec float64         `json:"gets_per_sec"`
	HitRate    float64         `json:"hit_rate"`
	Latency    metrics.Summary `json:"latency"`
}

// FrontendFloodPoint is one admission on/off data point of Phase B.
type FrontendFloodPoint struct {
	Admission bool            `json:"admission"`
	HiLatency metrics.Summary `json:"hi_latency"`
	LoTxns    uint64          `json:"lo_txns"`
	LoShed    uint64          `json:"lo_shed"`
	ConnsShed uint64          `json:"conns_shed"`
}

// FrontendResult is the frontend experiment's JSON document
// (BENCH_frontend.json).
type FrontendResult struct {
	ConnShards  int                  `json:"conn_shards"`
	Keys        int                  `json:"keys"`
	ZipfTheta   float64              `json:"zipf_theta"`
	ReadClients int                  `json:"read_clients"`
	NumCPU      int                  `json:"num_cpu"`
	CacheSweep  []FrontendCachePoint `json:"cache_sweep"`
	Flood       []FrontendFloodPoint `json:"admission_flood"`
}

const (
	frontendKeys    = 4096
	frontendTheta   = 0.99
	frontendClients = 4
	frontendValue   = 64
)

func frontendKey(i uint64) []byte {
	return []byte(fmt.Sprintf("key-%06d", i))
}

// startFrontendServer opens an in-memory DB with the given front-end config,
// preloads the key space, and serves it on a loopback listener.
func startFrontendServer(cfg preemptdb.Config) (*preemptdb.DB, *server.Server, string, error) {
	db, err := preemptdb.Open("", cfg)
	if err != nil {
		return nil, nil, "", err
	}
	db.CreateTable("kv")
	val := make([]byte, frontendValue)
	for base := 0; base < frontendKeys; base += 256 {
		lo, hi := base, base+256
		if hi > frontendKeys {
			hi = frontendKeys
		}
		if err := db.Run(func(tx *preemptdb.Txn) error {
			for i := lo; i < hi; i++ {
				if err := tx.Put("kv", frontendKey(uint64(i)), val); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, nil, "", err
		}
	}
	srv := server.New(db)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		return nil, nil, "", err
	}
	return db, srv, addr.String(), nil
}

// frontendCachePhase runs the Zipfian read workload against one server
// configuration and reports throughput, latency, and the cache hit rate.
func frontendCachePhase(dur time.Duration, cacheBytes int64) (FrontendCachePoint, error) {
	pt := FrontendCachePoint{Cache: cacheBytes > 0}
	db, srv, addr, err := startFrontendServer(preemptdb.Config{Workers: 2, CacheBytes: cacheBytes})
	if err != nil {
		return pt, err
	}
	defer db.Close()
	defer srv.Close()

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		hist   metrics.Histogram
		gets   uint64
		runErr error
	)
	deadline := clock.Nanos() + int64(dur)
	for c := 0; c < frontendClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
				return
			}
			defer cl.Close()
			r := rng.New(uint64(0x9e3779b9*(c+1)) | 1)
			zipf := rng.NewZipf(r, frontendKeys, frontendTheta)
			var local metrics.Histogram
			var n uint64
			for clock.Nanos() < deadline {
				k := frontendKey(zipf.Next())
				start := clock.Nanos()
				if _, err := cl.Get("kv", k); err != nil {
					mu.Lock()
					runErr = fmt.Errorf("get: %w", err)
					mu.Unlock()
					return
				}
				local.Record(clock.Nanos() - start)
				n++
			}
			mu.Lock()
			hist.Merge(&local)
			gets += n
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if runErr != nil {
		return pt, runErr
	}
	st := db.Stats()
	pt.Gets = gets
	pt.GetsPerSec = float64(gets) / dur.Seconds()
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		pt.HitRate = float64(st.CacheHits) / float64(lookups)
	}
	pt.Latency = hist.Summarize()
	return pt, nil
}

// frontendFloodPhase runs the low-priority flood + paced high-priority reads
// against one admission configuration.
func frontendFloodPhase(dur, arrival time.Duration, admission bool) (FrontendFloodPoint, error) {
	pt := FrontendFloodPoint{Admission: admission}
	cfg := preemptdb.Config{Workers: 2}
	if admission {
		// Bound low-priority in-flight requests at the edge; high priority
		// stays unlimited. Shed requests get typed statusQueueFull frames and
		// the connections survive to retry.
		cfg.LoInFlightLimit = 2
	}
	db, srv, addr, err := startFrontendServer(cfg)
	if err != nil {
		return pt, err
	}
	defer db.Close()
	defer srv.Close()

	var (
		wg             sync.WaitGroup
		mu             sync.Mutex
		hiHist         metrics.Histogram
		loTxns, loShed uint64
		runErr         error
	)
	deadline := clock.Nanos() + int64(dur)

	// Low-priority flood: closed-loop read-modify-write scripts.
	const loClients = 8
	for c := 0; c < loClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
				return
			}
			defer cl.Close()
			r := rng.New(uint64(0xdeadbeef*(c+1)) | 1)
			val := make([]byte, frontendValue)
			var txns, shed uint64
			for clock.Nanos() < deadline {
				k := frontendKey(r.Uint64n(frontendKeys))
				ops := []server.ScriptOp{
					server.GetOp("kv", k),
					server.PutOp("kv", k, val),
				}
				switch _, err := cl.Txn(preemptdb.Low, ops); {
				case err == nil:
					txns++
				case errors.Is(err, server.ErrQueueFull):
					shed++ // typed shed: back off and retry on the same conn
				case errors.Is(err, server.ErrConflict):
					// write-write collision with another flood client; retry
				default:
					mu.Lock()
					runErr = fmt.Errorf("lo txn: %w", err)
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			loTxns += txns
			loShed += shed
			mu.Unlock()
		}(c)
	}

	// High-priority clients: paced single-key reads; the wire round-trip is
	// the figure of merit.
	const hiClients = 2
	for c := 0; c < hiClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
				return
			}
			defer cl.Close()
			r := rng.New(uint64(0xfeedface*(c+1)) | 1)
			var local metrics.Histogram
			for clock.Nanos() < deadline {
				k := frontendKey(r.Uint64n(frontendKeys))
				ops := []server.ScriptOp{server.GetOp("kv", k)}
				start := clock.Nanos()
				if _, err := cl.Txn(preemptdb.High, ops); err != nil {
					mu.Lock()
					runErr = fmt.Errorf("hi txn: %w", err)
					mu.Unlock()
					return
				}
				local.Record(clock.Nanos() - start)
				time.Sleep(arrival)
			}
			mu.Lock()
			hiHist.Merge(&local)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if runErr != nil {
		return pt, runErr
	}
	pt.HiLatency = hiHist.Summarize()
	pt.LoTxns = loTxns
	pt.LoShed = loShed
	pt.ConnsShed = db.Stats().ConnsShed
	return pt, nil
}

// Frontend runs both phases and prints the two data series.
func Frontend(opt Options) (*FrontendResult, error) {
	opt = opt.withDefaults()
	res := &FrontendResult{
		Keys:        frontendKeys,
		ZipfTheta:   frontendTheta,
		ReadClients: frontendClients,
		NumCPU:      runtime.NumCPU(),
	}
	// Mirror the server's default shard count (see newFrontend) for the
	// record; the servers below all use ConnShards=0 (auto).
	res.ConnShards = runtime.GOMAXPROCS(0) / 2
	if res.ConnShards < 1 {
		res.ConnShards = 1
	}
	if res.ConnShards > 8 {
		res.ConnShards = 8
	}

	fmt.Fprintf(opt.Out, "Front-end wire Gets, Zipf(theta=%.2f) over %d keys, %d closed-loop clients (NumCPU=%d)\n",
		frontendTheta, frontendKeys, frontendClients, res.NumCPU)
	cacheTab := metrics.NewTable("cache", "gets/s", "hit-rate", "p50", "p99")
	for _, cacheBytes := range []int64{0, 8 << 20} {
		pt, err := frontendCachePhase(opt.Duration, cacheBytes)
		if err != nil {
			return nil, err
		}
		res.CacheSweep = append(res.CacheSweep, pt)
		cacheTab.AddRow(fmt.Sprintf("%v", pt.Cache),
			fmt.Sprintf("%.0f", pt.GetsPerSec),
			fmt.Sprintf("%.1f%%", pt.HitRate*100),
			metrics.FormatNanos(float64(pt.Latency.P50)),
			metrics.FormatNanos(float64(pt.Latency.P99)))
	}
	fmt.Fprintln(opt.Out, cacheTab)

	fmt.Fprintf(opt.Out, "High-priority reads (paced %v) under a low-priority RMW flood\n", opt.ArrivalInterval)
	floodTab := metrics.NewTable("admission", "hi-p50", "hi-p99", "lo-txns", "lo-shed")
	for _, admission := range []bool{false, true} {
		pt, err := frontendFloodPhase(opt.Duration, opt.ArrivalInterval, admission)
		if err != nil {
			return nil, err
		}
		res.Flood = append(res.Flood, pt)
		floodTab.AddRow(fmt.Sprintf("%v", pt.Admission),
			metrics.FormatNanos(float64(pt.HiLatency.P50)),
			metrics.FormatNanos(float64(pt.HiLatency.P99)),
			pt.LoTxns, pt.LoShed)
	}
	fmt.Fprintln(opt.Out, floodTab)
	return res, nil
}
