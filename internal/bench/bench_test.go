package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"preemptdb/internal/sched"
	"preemptdb/internal/tpcc"
	"preemptdb/internal/tpch"
)

// tinyOptions keeps unit-test runs fast; the real figures use defaults.
func tinyOptions() Options {
	return Options{
		Workers:  1,
		Duration: 300 * time.Millisecond,
		TPCC:     tpcc.ScaleConfig{Warehouses: 1, Districts: 2, Customers: 20, Items: 200},
		TPCH:     tpch.ScaleConfig{Parts: 800, Suppliers: 40},
		Out:      io.Discard,
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers < 1 || o.HiQueueSize != 4 || o.LoQueueSize != 1 ||
		o.YieldInterval != 10000 || o.StarvationThreshold != 100 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.HiBatchPerInterval != o.Workers*2 {
		t.Fatalf("batch default: %d", o.HiBatchPerInterval)
	}
	if o.TPCC.Warehouses != o.Workers {
		t.Fatal("warehouses must default to worker count")
	}
}

func TestFixtureLoadsBothSchemas(t *testing.T) {
	f, err := NewFixture(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.TPCC.Scale().Warehouses != 1 || f.TPCH.Scale().Parts != 800 {
		t.Fatal("fixture scales wrong")
	}
	// Both clients must be runnable against the shared engine.
	if _, err := f.TPCH.Q2(nil, tpch.Q2Params{Size: 1, TypeSuffix: "TIN", Region: "ASIA"}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunMixedProducesData(t *testing.T) {
	f, err := NewFixture(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := f.RunMixed(MixedConfig{Policy: sched.PolicyPreempt})
	if r.Policy != "PreemptDB" {
		t.Fatalf("policy = %q", r.Policy)
	}
	if r.NewOrder.Count == 0 && r.Payment.Count == 0 {
		t.Fatal("no high-priority transactions completed")
	}
	if r.Q2.Count == 0 {
		t.Fatal("no Q2 completed")
	}
	if r.InterruptsSent == 0 {
		t.Fatal("no interrupts under PolicyPreempt")
	}
	if r.NewOrderTPS <= 0 && r.PaymentTPS <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunMixedWaitPolicySendsNoInterrupts(t *testing.T) {
	f, err := NewFixture(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := f.RunMixed(MixedConfig{Policy: sched.PolicyWait})
	if r.InterruptsSent != 0 {
		t.Fatalf("Wait sent %d interrupts", r.InterruptsSent)
	}
}

func TestUintrLatencyMicrobench(t *testing.T) {
	res, err := UintrLatency(tinyOptions(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries != 500 {
		t.Fatalf("deliveries = %d", res.Deliveries)
	}
	if res.MeanNanos <= 0 || res.MeanNanos > float64(100*time.Millisecond) {
		t.Fatalf("implausible mean delivery latency %v ns", res.MeanNanos)
	}
}

func TestContextSwitchMicrobench(t *testing.T) {
	res, err := ContextSwitch(tinyOptions(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundTrips != 20000 {
		t.Fatalf("round trips = %d", res.RoundTrips)
	}
	if res.MeanRoundTrip <= 0 || res.MeanRoundTrip > time.Millisecond {
		t.Fatalf("implausible switch cost %v", res.MeanRoundTrip)
	}
}

func TestFig8Overhead(t *testing.T) {
	opt := tinyOptions()
	res, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineTPS <= 0 || res.WithUintrTPS <= 0 {
		t.Fatalf("throughputs: %+v", res)
	}
	// The overhead must be small in magnitude (the paper reports ~1.7%);
	// allow generous noise bounds for a shared CI box.
	if res.OverheadPct > 50 || res.OverheadPct < -50 {
		t.Fatalf("overhead out of sane range: %.1f%%", res.OverheadPct)
	}
}

func TestFig1TableOutput(t *testing.T) {
	opt := tinyOptions()
	var sb strings.Builder
	opt.Out = &sb
	rs, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	out := sb.String()
	for _, want := range []string{"Wait", "Cooperative", "PreemptDB", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCtxRandPerContext(t *testing.T) {
	r1 := ctxRand(nil)
	r2 := ctxRand(nil)
	if r1 == r2 {
		t.Fatal("nil-context rands must be distinct")
	}
}

func TestSortedPolicies(t *testing.T) {
	m := map[string][]Fig13Point{"b": nil, "a": nil}
	got := SortedPolicies(m)
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("got %v", got)
	}
}
