// Package mlsched generalizes PreemptDB's two-level preemptive scheduler to
// N priority levels — the extension the paper sketches in its §5 discussion:
// "one may easily extend PreemptDB to support more fine-grained priority
// levels by using multiple contexts/TCBs. A high-priority transaction that
// has already interrupted a previous lower-priority transaction could then
// be interrupted again."
//
// Each worker core hosts one transaction context per level; context k serves
// only level-k requests. The scheduler posts the request's level as the
// interrupt vector, and the handler preempts whenever the incoming level is
// strictly higher than the running context's level — so preemptions nest.
// Paused contexts form a per-worker LIFO stack: when level k's queue drains,
// the core is actively switched back to the most recently paused context,
// unwinding the preemption nesting exactly like a hardware interrupt stack.
//
// Dynamic priority promotion (§5's Polaris-style discussion) is supported
// through Scheduler.ResubmitPromoted: a transaction that keeps losing
// conflicts can be resubmitted one level higher.
package mlsched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/queue"
	"preemptdb/internal/uintr"
)

// MaxLevels bounds the number of priority levels (one interrupt vector and
// one transaction context per level).
const MaxLevels = 16

// vecBase offsets level vectors above the reserved ones (VecPreempt, VecPing,
// VecShutdown), so a shutdown ping can never masquerade as a level interrupt.
const vecBase = 32

// Request is one leveled transaction request.
type Request struct {
	// Level is the priority level, 0 (lowest) .. Levels-1 (highest).
	Level int
	// Work runs the transaction body on the executing context.
	Work func(ctx *pcontext.Context) error

	EnqueuedAt int64
	StartedAt  int64
	FinishedAt int64
	Err        error
	// Promotions counts how many times the request was resubmitted at a
	// higher level.
	Promotions int

	OnDone func(*Request)
}

// SchedulingLatency returns StartedAt-EnqueuedAt in nanoseconds.
func (r *Request) SchedulingLatency() int64 { return r.StartedAt - r.EnqueuedAt }

// Latency returns FinishedAt-EnqueuedAt in nanoseconds.
func (r *Request) Latency() int64 { return r.FinishedAt - r.EnqueuedAt }

// Config sizes the multi-level scheduler.
type Config struct {
	// Levels is the number of priority levels (default 3).
	Levels int
	// Workers is the number of simulated cores (default 2).
	Workers int
	// QueueSize is the per-worker per-level queue capacity (default 16;
	// level 0 gets 4x as the baseload queue).
	QueueSize int
	// Metrics, when set, receives per-level scheduling-latency samples
	// (Registry.ObserveLevel, one histogram per level) and uintr
	// delivery-latency observations from every worker core. Nil disables
	// recording.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Levels == 0 {
		c.Levels = 3
	}
	if c.Levels > MaxLevels {
		c.Levels = MaxLevels
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueSize == 0 {
		c.QueueSize = 16
	}
	return c
}

// Scheduler dispatches leveled requests to its workers.
type Scheduler struct {
	cfg     Config
	workers []*Worker
	rr      []int // per-level round-robin cursors

	interrupts atomic.Uint64
	started    bool
}

// Worker is one simulated core with Levels contexts and queues.
type Worker struct {
	id     int
	s      *Scheduler
	core   *pcontext.Core
	queues []*queue.MPMC[*Request]

	// paused is the LIFO stack of preempted contexts; only the running
	// context manipulates it, so no synchronization is needed.
	paused []*pcontext.Context

	// running[i] is the level of the request context i is currently
	// executing, or -1 when idle. The base context can execute *elevated*
	// leftovers (regular path), so preemption decisions compare request
	// levels, not context ids.
	running []atomic.Int32

	executed []atomic.Uint64 // per level
}

// ID returns the worker index.
func (w *Worker) ID() int { return w.id }

// Core exposes the worker's simulated core.
func (w *Worker) Core() *pcontext.Core { return w.core }

// Executed returns the number of completed requests at the given level.
func (w *Worker) Executed(level int) uint64 { return w.executed[level].Load() }

// New builds a scheduler; Start launches the workers.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, rr: make([]int, cfg.Levels)}
	for i := 0; i < cfg.Workers; i++ {
		w := &Worker{
			id:       i,
			s:        s,
			core:     pcontext.NewCore(i, cfg.Levels),
			running:  make([]atomic.Int32, cfg.Levels),
			executed: make([]atomic.Uint64, cfg.Levels),
		}
		for l := range w.running {
			w.running[l].Store(-1)
		}
		for l := 0; l < cfg.Levels; l++ {
			size := cfg.QueueSize
			if l == 0 {
				size *= 4
			}
			w.queues = append(w.queues, queue.NewMPMC[*Request](size))
		}
		w.core.SetUserData(w)
		if reg := cfg.Metrics; reg != nil {
			id := i
			w.core.SetDeliveryObserver(func(ns int64) { reg.ObserveDelivery(id, ns) })
		}
		s.workers = append(s.workers, w)
	}
	return s
}

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Workers returns the worker set.
func (s *Scheduler) Workers() []*Worker { return s.workers }

// InterruptsSent returns the number of user interrupts issued.
func (s *Scheduler) InterruptsSent() uint64 { return s.interrupts.Load() }

// Start launches every worker.
func (s *Scheduler) Start() {
	if s.started {
		panic("mlsched: Start called twice")
	}
	s.started = true
	for _, w := range s.workers {
		w.install()
		entries := make([]func(*pcontext.Context), s.cfg.Levels)
		entries[0] = w.baseLoop
		for l := 1; l < s.cfg.Levels; l++ {
			entries[l] = w.levelLoop
		}
		w.core.Start(entries)
	}
}

// Stop shuts all workers down; queued requests are dropped.
func (s *Scheduler) Stop() {
	for _, w := range s.workers {
		uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecShutdown)
	}
	for _, w := range s.workers {
		w.core.Shutdown()
	}
}

// install wires the nested-preemption interrupt handler.
func (w *Worker) install() {
	w.core.SetHandler(func(cur *pcontext.Context, vectors uint64) {
		if w.core.Done() {
			return
		}
		// Highest posted level with work actually queued, strictly above the
		// level of the request the interrupted context is running.
		curLevel := int(w.running[cur.ID()].Load())
		for l := w.s.cfg.Levels - 1; l > curLevel && l > 0; l-- {
			if !uintr.Has(vectors, uintr.Vector(vecBase+l)) {
				continue
			}
			if w.queues[l].Empty() {
				continue
			}
			// Nested preemption: push the interrupted context and hand the
			// core to the higher level. Lower posted vectors stay consumed —
			// their work is picked up when their level's context resumes or
			// the base loop drains them (the paper's regular path ②).
			w.paused = append(w.paused, cur)
			cur.SwitchTo(w.core.Context(l))
			return
		}
	})
}

// baseLoop is context 0's body: the regular scheduling path. It drains
// queues from the highest level down, so leftover elevated requests (whose
// interrupts were dropped) still run ahead of base work.
func (w *Worker) baseLoop(ctx *pcontext.Context) {
	idle := 0
	for !w.core.Done() {
		ran := false
		for l := w.s.cfg.Levels - 1; l >= 0; l-- {
			if req, ok := w.queues[l].Pop(); ok {
				w.execute(ctx, req)
				ran = true
				break
			}
		}
		if ran {
			idle = 0
			continue
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// levelLoop is the body of every context above the base: wake when switched
// to, drain the level's queue, then unwind to the most recently paused
// context.
func (w *Worker) levelLoop(ctx *pcontext.Context) {
	level := ctx.ID()
	for !w.core.Done() {
		for {
			req, ok := w.queues[level].Pop()
			if !ok {
				break
			}
			w.execute(ctx, req)
		}
		w.unwind(ctx)
	}
}

// unwind actively switches back to the most recently paused context
// (or the base context if the stack is somehow empty).
func (w *Worker) unwind(ctx *pcontext.Context) {
	target := w.core.Context(0)
	if n := len(w.paused); n > 0 {
		target = w.paused[n-1]
		w.paused = w.paused[:n-1]
	}
	ctx.SwapContext(target)
}

func (w *Worker) execute(ctx *pcontext.Context, req *Request) {
	prev := w.running[ctx.ID()].Swap(int32(req.Level))
	req.StartedAt = clock.Nanos()
	if reg := w.s.cfg.Metrics; reg != nil {
		reg.ObserveLevel(req.Level, w.id, req.SchedulingLatency())
	}
	req.Err = req.Work(ctx)
	req.FinishedAt = clock.Nanos()
	w.running[ctx.ID()].Store(prev)
	w.executed[req.Level].Add(1)
	if req.OnDone != nil {
		req.OnDone(req)
	}
}

// Submit offers a request at its level, round-robin across workers, posting
// a user interrupt for levels above the base. It reports false when every
// worker's queue for that level is full.
func (s *Scheduler) Submit(req *Request) bool {
	l := req.Level
	if l < 0 || l >= s.cfg.Levels {
		panic(fmt.Sprintf("mlsched: level %d out of range [0,%d)", l, s.cfg.Levels))
	}
	if req.EnqueuedAt == 0 {
		req.EnqueuedAt = clock.Nanos()
	}
	for attempts := 0; attempts < len(s.workers); attempts++ {
		w := s.workers[s.rr[l]]
		s.rr[l] = (s.rr[l] + 1) % len(s.workers)
		if w.queues[l].Push(req) {
			if l > 0 {
				uintr.SendUIPI(w.core.Receiver().UPID(), uintr.Vector(vecBase+l))
				s.interrupts.Add(1)
			}
			return true
		}
	}
	return false
}

// ResubmitPromoted resubmits a finished request one level higher (capped at
// the top level), implementing dynamic priority adjustment for transactions
// that keep aborting (§5's discussion, after Polaris). The request's
// latency clock keeps its original EnqueuedAt so end-to-end latency spans
// all attempts.
func (s *Scheduler) ResubmitPromoted(req *Request) bool {
	if req.Level < s.cfg.Levels-1 {
		req.Level++
		req.Promotions++
	}
	return s.Submit(req)
}
