package mlsched

import (
	"testing"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/pcontext"
)

// BenchmarkLevelSeparation is the multi-level ablation: with a long level-0
// job monopolizing the worker, it measures the scheduling latency of a
// mid-level and a top-level request — top-level requests nest over the
// mid-level ones, so both stay in the microsecond range while the base job
// is paused, demonstrating that adding levels does not dilute preemption.
func BenchmarkLevelSeparation(b *testing.B) {
	s := New(Config{Levels: 3, Workers: 1, QueueSize: 64})
	s.Start()
	defer s.Stop()

	// A base job that runs for the whole benchmark.
	stopBase := make(chan struct{})
	baseDone := make(chan struct{})
	s.Submit(&Request{Level: 0, Work: func(ctx *pcontext.Context) error {
		for {
			select {
			case <-stopBase:
				close(baseDone)
				return nil
			default:
			}
			for i := 0; i < 256; i++ {
				ctx.Poll()
			}
		}
	}})
	time.Sleep(2 * time.Millisecond)

	var sumL1, sumL2 int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, level := range []int{1, 2} {
			done := make(chan *Request, 1)
			req := &Request{Level: level,
				Work:   func(ctx *pcontext.Context) error { return nil },
				OnDone: func(r *Request) { done <- r }}
			req.EnqueuedAt = clock.Nanos()
			for !s.Submit(req) {
				time.Sleep(50 * time.Microsecond)
			}
			r := <-done
			if level == 1 {
				sumL1 += r.SchedulingLatency()
			} else {
				sumL2 += r.SchedulingLatency()
			}
		}
	}
	b.StopTimer()
	close(stopBase)
	<-baseDone
	b.ReportMetric(float64(sumL1)/float64(b.N), "level1-sched-ns")
	b.ReportMetric(float64(sumL2)/float64(b.N), "level2-sched-ns")
}
