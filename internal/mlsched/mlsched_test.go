package mlsched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
)

func spinFor(ctx *pcontext.Context, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			ctx.Poll()
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Levels != 3 || c.Workers != 2 || c.QueueSize != 16 {
		t.Fatalf("defaults: %+v", c)
	}
	if (Config{Levels: 99}).withDefaults().Levels != MaxLevels {
		t.Fatal("levels not capped")
	}
}

func TestBasicExecutionAllLevels(t *testing.T) {
	s := New(Config{Levels: 4, Workers: 1})
	s.Start()
	defer s.Stop()

	var done sync.WaitGroup
	var counts [4]atomic.Int64
	for l := 0; l < 4; l++ {
		done.Add(1)
		l := l
		if !s.Submit(&Request{Level: l, Work: func(ctx *pcontext.Context) error {
			counts[l].Add(1)
			return nil
		}, OnDone: func(*Request) { done.Done() }}) {
			t.Fatalf("submit level %d failed", l)
		}
	}
	waitDone(t, &done)
	for l := 0; l < 4; l++ {
		if counts[l].Load() != 1 {
			t.Fatalf("level %d ran %d times", l, counts[l].Load())
		}
	}
	if s.Workers()[0].Executed(3) != 1 {
		t.Fatal("per-level counter wrong")
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("requests never completed")
	}
}

func TestLevelOutOfRangePanics(t *testing.T) {
	s := New(Config{Levels: 2, Workers: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(&Request{Level: 7, Work: func(*pcontext.Context) error { return nil }})
}

func TestNestedPreemption(t *testing.T) {
	// A level-0 job is preempted by level 1, which is preempted by level 2.
	// Completion order must be 2, 1, 0 and the paused stack must unwind.
	s := New(Config{Levels: 3, Workers: 1})
	s.Start()
	defer s.Stop()

	var mu sync.Mutex
	var order []int
	record := func(level int) {
		mu.Lock()
		order = append(order, level)
		mu.Unlock()
	}

	l0Started := make(chan struct{})
	l0Done := make(chan struct{})
	s.Submit(&Request{Level: 0, Work: func(ctx *pcontext.Context) error {
		close(l0Started)
		spinFor(ctx, 120*time.Millisecond)
		record(0)
		return nil
	}, OnDone: func(*Request) { close(l0Done) }})
	<-l0Started
	time.Sleep(5 * time.Millisecond)

	l1Started := make(chan struct{})
	l1Done := make(chan struct{})
	s.Submit(&Request{Level: 1, Work: func(ctx *pcontext.Context) error {
		close(l1Started)
		spinFor(ctx, 60*time.Millisecond)
		record(1)
		return nil
	}, OnDone: func(*Request) { close(l1Done) }})
	<-l1Started // level 1 preempted level 0
	time.Sleep(5 * time.Millisecond)

	l2Done := make(chan struct{})
	s.Submit(&Request{Level: 2, Work: func(ctx *pcontext.Context) error {
		record(2)
		return nil
	}, OnDone: func(*Request) { close(l2Done) }})

	for _, ch := range []chan struct{}{l2Done, l1Done, l0Done} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("nested preemption wedged")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{2, 1, 0}
	for i, l := range want {
		if order[i] != l {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
	// The level-2 transaction must have finished while both lower levels
	// were still paused — i.e. it truly nested.
	w := s.Workers()[0]
	if w.Core().Context(0).TCB().PassiveSwitches() == 0 ||
		w.Core().Context(1).TCB().PassiveSwitches() == 0 {
		t.Fatal("expected passive switches on both lower contexts")
	}
	if len(w.paused) != 0 {
		t.Fatalf("paused stack not unwound: %d", len(w.paused))
	}
}

func TestSameLevelDoesNotPreempt(t *testing.T) {
	s := New(Config{Levels: 2, Workers: 1})
	s.Start()
	defer s.Stop()

	firstDone := make(chan struct{})
	var firstFinished atomic.Bool
	s.Submit(&Request{Level: 1, Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 50*time.Millisecond)
		firstFinished.Store(true)
		return nil
	}, OnDone: func(*Request) { close(firstDone) }})
	time.Sleep(5 * time.Millisecond)

	secondDone := make(chan *Request, 1)
	s.Submit(&Request{Level: 1, Work: func(ctx *pcontext.Context) error {
		if !firstFinished.Load() {
			t.Error("same-level request preempted a running peer")
		}
		return nil
	}, OnDone: func(r *Request) { secondDone <- r }})

	select {
	case <-secondDone:
	case <-time.After(10 * time.Second):
		t.Fatal("second request starved")
	}
	<-firstDone
}

func TestPromotion(t *testing.T) {
	s := New(Config{Levels: 3, Workers: 1})
	s.Start()
	defer s.Stop()

	done := make(chan *Request, 1)
	req := &Request{Level: 0, Work: func(ctx *pcontext.Context) error { return nil }}
	req.OnDone = func(r *Request) { done <- r }
	if !s.ResubmitPromoted(req) {
		t.Fatal("promotion submit failed")
	}
	select {
	case r := <-done:
		if r.Level != 1 || r.Promotions != 1 {
			t.Fatalf("level=%d promotions=%d", r.Level, r.Promotions)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("promoted request never ran")
	}
	// Promotion is capped at the top level.
	req2 := &Request{Level: 2, Work: func(ctx *pcontext.Context) error { return nil }}
	ch := make(chan *Request, 1)
	req2.OnDone = func(r *Request) { ch <- r }
	s.ResubmitPromoted(req2)
	select {
	case r := <-ch:
		if r.Level != 2 || r.Promotions != 0 {
			t.Fatalf("cap violated: level=%d promotions=%d", r.Level, r.Promotions)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("capped request never ran")
	}
}

func TestSubmitFullQueues(t *testing.T) {
	s := New(Config{Levels: 2, Workers: 1, QueueSize: 2})
	// Not started: queues only fill.
	nop := func(ctx *pcontext.Context) error { return nil }
	accepted := 0
	for i := 0; i < 10; i++ {
		if s.Submit(&Request{Level: 1, Work: nop}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2", accepted)
	}
}

func TestHighLevelLatencyUnderBaseLoad(t *testing.T) {
	// The top level must see microsecond-scale scheduling latency even while
	// every worker grinds a long base job.
	s := New(Config{Levels: 3, Workers: 1})
	s.Start()
	defer s.Stop()

	baseDone := make(chan struct{})
	s.Submit(&Request{Level: 0, Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 150*time.Millisecond)
		return nil
	}, OnDone: func(*Request) { close(baseDone) }})
	time.Sleep(5 * time.Millisecond)

	for i := 0; i < 5; i++ {
		done := make(chan *Request, 1)
		s.Submit(&Request{Level: 2, Work: func(ctx *pcontext.Context) error { return nil },
			OnDone: func(r *Request) { done <- r }})
		select {
		case r := <-done:
			if lat := time.Duration(r.SchedulingLatency()); lat > 50*time.Millisecond {
				t.Fatalf("round %d: top-level latency %v", i, lat)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("top-level request starved")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-baseDone
}

func TestManyWorkersManyLevelsStress(t *testing.T) {
	s := New(Config{Levels: 4, Workers: 2, QueueSize: 32})
	s.Start()
	defer s.Stop()

	const total = 400
	var done sync.WaitGroup
	var executed atomic.Int64
	for i := 0; i < total; i++ {
		done.Add(1)
		level := i % 4
		req := &Request{Level: level, Work: func(ctx *pcontext.Context) error {
			for j := 0; j < 100; j++ {
				ctx.Poll()
			}
			executed.Add(1)
			return nil
		}, OnDone: func(*Request) { done.Done() }}
		for !s.Submit(req) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitDone(t, &done)
	if executed.Load() != total {
		t.Fatalf("executed %d of %d", executed.Load(), total)
	}
	// Work spread across workers.
	for _, w := range s.Workers() {
		sum := uint64(0)
		for l := 0; l < 4; l++ {
			sum += w.Executed(l)
		}
		if sum == 0 {
			t.Fatalf("worker %d executed nothing", w.ID())
		}
	}
}

func TestStopWithPausedStack(t *testing.T) {
	// Shutdown must reap a worker whose contexts are mid-nest.
	s := New(Config{Levels: 3, Workers: 1})
	s.Start()

	started := make(chan struct{})
	s.Submit(&Request{Level: 0, Work: func(ctx *pcontext.Context) error {
		close(started)
		spinFor(ctx, 30*time.Millisecond)
		return nil
	}})
	<-started
	time.Sleep(2 * time.Millisecond)
	s.Submit(&Request{Level: 1, Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 30*time.Millisecond)
		return nil
	}})
	time.Sleep(5 * time.Millisecond)

	finished := make(chan struct{})
	go func() {
		s.Stop()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung with nested contexts")
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Levels: 4, Workers: 1, Metrics: reg})
	s.Start()
	defer s.Stop()

	var done sync.WaitGroup
	for l := 0; l < 4; l++ {
		for i := 0; i < 8; i++ {
			done.Add(1)
			if !s.Submit(&Request{Level: l, Work: func(ctx *pcontext.Context) error {
				return nil
			}, OnDone: func(*Request) { done.Done() }}) {
				done.Done()
			}
		}
	}
	waitDone(t, &done)

	snap := reg.Snapshot()
	if len(snap.LevelSchedLatency) == 0 {
		t.Fatal("no per-level scheduling-latency histograms recorded")
	}
	seen := make(map[int]bool)
	for _, ls := range snap.LevelSchedLatency {
		seen[ls.Level] = true
		if ls.SchedLatency.Count == 0 {
			t.Fatalf("level %d summary present but empty", ls.Level)
		}
	}
	// Every level got at least one executed request (full queues may have
	// shed some, but level 0's queue is 4x and the loop submits only 8).
	if !seen[0] {
		t.Fatal("level 0 recorded no scheduling-latency samples")
	}
}
