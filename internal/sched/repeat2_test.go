package sched

import (
	"encoding/binary"
	"testing"
	"time"

	"preemptdb/internal/engine"
	"preemptdb/internal/pcontext"
)

func TestRepeatedPreemptionEngineScan(t *testing.T) {
	e := engine.New(engine.Config{})
	tab := e.CreateTable("data")
	load := e.Begin(nil)
	v := make([]byte, 32)
	var k [8]byte
	for i := 0; i < 60000; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i))
		load.Insert(tab, k[:], v)
	}
	load.Commit()

	s := New(Config{Policy: PolicyPreempt, Workers: 1})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		tx := e.Begin(ctx)
		defer tx.Abort()
		for r := 0; r < 40; r++ {
			tx.Scan(tab, nil, nil, func(k, v []byte) bool { return true })
		}
		err := tx.Commit()
		close(loDone)
		return err
	}})
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 10; i++ {
		hiDone := make(chan *Request, 1)
		req := &Request{Work: func(ctx *pcontext.Context) error {
			tx := e.Begin(ctx)
			defer tx.Abort()
			var kk [8]byte
			binary.BigEndian.PutUint64(kk[:], 5)
			tx.Get(tab, kk[:])
			return tx.Commit()
		}, OnDone: func(r *Request) { hiDone <- r }}
		if s.SubmitHighBatch([]*Request{req}) != 1 {
			t.Fatalf("round %d: not accepted", i)
		}
		select {
		case r := <-hiDone:
			if lat := time.Duration(r.SchedulingLatency()); lat > 50*time.Millisecond {
				t.Fatalf("round %d: scheduling latency %v through the engine scan", i, lat)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stuck")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-loDone
}
